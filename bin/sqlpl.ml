(* sqlpl — command-line interface of the customizable SQL parser product
   line.

   Subcommands:
     dialects            list the built-in dialects
     features            model statistics / full feature listing
     diagram NAME        render a published feature diagram
     validate            validate a feature selection
     grammar             print the composed grammar of a dialect/selection
     tokens              print the composed token set
     parse SQL           parse a statement and print its CST
     parse --batch FILE  parse a whole statement batch through one session
     emit                print generated OCaml parser source
     report              grammar report for a selection
     lint DIALECT        static-analysis diagnostics for a selection
     diff A B            commonality/variability between two dialects
     cache stats|key     the configuration-keyed parser cache
     serve               long-running parser daemon (TCP / Unix sockets)
     client              send statement batches to a running daemon
     configure           interactive feature selection (the paper's UI)
     run [SCRIPT]        execute statements against an in-memory database

   Every subcommand resolves its front-end through the process-wide
   Service.Cache, so a selection is composed and generated at most once
   per invocation no matter how many times it is referenced. *)

open Cmdliner

(* --- shared options -------------------------------------------------- *)

let dialect_arg =
  let doc =
    Printf.sprintf "Dialect to generate. One of: %s."
      (String.concat ", "
         (List.map (fun (d : Dialects.Dialect.t) -> d.name) Dialects.Dialect.all))
  in
  Arg.(value & opt string "full" & info [ "d"; "dialect" ] ~docv:"DIALECT" ~doc)

let features_arg =
  let doc =
    "Select an explicit feature (repeatable). The selection seed is closed \
     under parents, mandatory children and requires-constraints; when given, \
     it replaces $(b,--dialect)."
  in
  Arg.(value & opt_all string [] & info [ "f"; "feature" ] ~docv:"FEATURE" ~doc)

let config_file_arg =
  let doc =
    "Read the feature selection from $(docv) (one feature per line, '#' \
     comments). Combines with $(b,--feature); replaces $(b,--dialect)."
  in
  Arg.(value & opt (some file) None & info [ "c"; "config" ] ~docv:"FILE" ~doc)

let fail fmt = Printf.ksprintf (fun msg -> `Error (false, msg)) fmt

let resolve_config dialect features config_file =
  let from_file =
    match config_file with
    | None -> Feature.Config.of_names []
    | Some path -> Config_file.load path
  in
  let seeds = Feature.Config.union from_file (Feature.Config.of_names features) in
  if Feature.Config.cardinal seeds = 0 then
    match Dialects.Dialect.find dialect with
    | Some d -> Ok (d.Dialects.Dialect.name, d.Dialects.Dialect.config)
    | None -> Error (Printf.sprintf "unknown dialect %S" dialect)
  else Ok ("custom", Sql.Model.close seeds)

let generate_front_end dialect features config_file =
  match resolve_config dialect features config_file with
  | Error msg -> Error msg
  | Ok (label, config) -> (
    match Service.Cache.generate ~label Service.Cache.default config with
    | Ok g -> Ok g
    | Error e -> Error (Fmt.str "%a" Core.pp_error e))

(* --- dialects -------------------------------------------------------- *)

let dialects_cmd =
  let run () =
    List.iter
      (fun (d : Dialects.Dialect.t) ->
        Printf.printf "%-10s %s\n           %s\n           %d features\n" d.name
          d.title d.description
          (Feature.Config.cardinal d.config))
      Dialects.Dialect.all;
    `Ok ()
  in
  Cmd.v (Cmd.info "dialects" ~doc:"List the built-in dialects")
    Term.(ret (const run $ const ()))

(* --- features --------------------------------------------------------- *)

let features_cmd =
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print decomposition statistics only.")
  in
  let run stats =
    let s = Sql.Model.stats in
    Printf.printf "feature diagrams:          %d\n" s.Sql.Model.diagram_count;
    Printf.printf "features across diagrams:  %d\n" s.Sql.Model.features_across_diagrams;
    Printf.printf "distinct features:         %d\n" s.Sql.Model.features_in_model;
    Printf.printf "cross-tree constraints:    %d\n" s.Sql.Model.constraint_count;
    if not stats then begin
      print_newline ();
      print_string
        (Feature.Diagram.render Sql.Model.model.Feature.Model.concept)
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "features"
       ~doc:"Show the SQL:2003 feature model (statistics and full diagram)")
    Term.(ret (const run $ stats_flag))

(* --- diagram ----------------------------------------------------------- *)

let diagram_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Diagram name, e.g. 'Query Specification' (paper Figure 1).")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List available diagram names.")
  in
  let selected_arg =
    let doc =
      "Show [x]/[ ] checkboxes for the given dialect's selection."
    in
    Arg.(value & opt (some string) None & info [ "selected" ] ~docv:"DIALECT" ~doc)
  in
  let run list_them selected name =
    if list_them then begin
      List.iter (fun (n, _) -> print_endline n) Sql.Model.diagrams;
      `Ok ()
    end
    else
      match name with
      | None -> fail "a diagram name is required (or use --list)"
      | Some name -> (
        match Sql.Model.diagram name with
        | None -> fail "no diagram named %S (try --list)" name
        | Some tree -> (
          match selected with
          | None ->
            print_string (Feature.Diagram.render tree);
            `Ok ()
          | Some dialect -> (
            match Dialects.Dialect.find dialect with
            | None -> fail "unknown dialect %S" dialect
            | Some d ->
              print_string
                (Feature.Diagram.render_selected d.Dialects.Dialect.config tree);
              `Ok ())))
  in
  Cmd.v
    (Cmd.info "diagram" ~doc:"Render a published per-construct feature diagram")
    Term.(ret (const run $ list_flag $ selected_arg $ name_arg))

(* --- validate ----------------------------------------------------------- *)

let validate_cmd =
  let run dialect features config_file =
    match resolve_config dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok (label, config) -> (
      match Sql.Model.validate config with
      | [] ->
        Printf.printf "%s: valid (%d features)\n" label
          (Feature.Config.cardinal config);
        `Ok ()
      | violations ->
        List.iter
          (fun v ->
            Printf.printf "violation: %s\n" (Fmt.str "%a" Feature.Config.pp_violation v))
          violations;
        fail "%s: %d violation(s)" label (List.length violations))
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a feature selection against the model")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg))

(* --- grammar / tokens ------------------------------------------------------ *)

let grammar_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("ebnf", `Ebnf); ("bnf", `Bnf); ("antlr", `Antlr) ]) `Ebnf
      & info [ "format" ] ~docv:"FMT" ~doc:"Output notation: ebnf, bnf or antlr.")
  in
  let run dialect features config_file format =
    match generate_front_end dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok g ->
      let text =
        match format with
        | `Ebnf -> Grammar.Printer.to_ebnf g.Core.grammar
        | `Bnf -> Grammar.Printer.to_bnf g.Core.grammar
        | `Antlr -> Grammar.Printer.to_antlr g.Core.grammar
      in
      print_string text;
      Printf.printf "\n-- %d rules, %d alternatives, %d tokens\n"
        (Grammar.Cfg.rule_count g.Core.grammar)
        (Grammar.Cfg.alternative_count g.Core.grammar)
        (List.length g.Core.tokens);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "grammar" ~doc:"Print the composed grammar for a selection")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg $ format_arg))

let tokens_cmd =
  let run dialect features config_file =
    match generate_front_end dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok g ->
      print_string (Fmt.str "%a" Lexing_gen.Spec.pp g.Core.tokens);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "tokens" ~doc:"Print the composed token set for a selection")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg))

(* --- parse -------------------------------------------------------------------- *)

let parse_cmd =
  let sql_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"Statement to parse (omit with $(b,--batch)).")
  in
  let ast_flag =
    Arg.(value & flag & info [ "ast" ] ~doc:"Print the lowered AST re-printed as SQL.")
  in
  let batch_arg =
    let doc =
      "Parse a whole batch: read semicolon-separated statements from $(docv) \
       and run them through one parse session, reusing the generated parser \
       and scanner across the batch. Prints one line per statement and \
       aggregate throughput statistics; exits nonzero when any statement is \
       rejected."
    in
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE" ~doc)
  in
  let domains_arg =
    let doc =
      "Shard a $(b,--batch) run across $(docv) OCaml domains (parallel \
       workers sharing the one generated front-end). Results and statistics \
       are identical to a single-domain run; only the wall time changes. \
       Requests beyond the runtime's recommended domain count are clamped \
       with a warning."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let engine_arg =
    let doc =
      "Parsing engine: $(b,committed) (prediction-compiled LL(k) dispatch on \
       the normalized grammar — the default), $(b,vm) (the committed region \
       compiled further, to flat bytecode executed over the zero-allocation \
       struct-of-arrays token stream), $(b,fused) (the bytecode VM pulling \
       tokens straight from the scanner — one pass over the bytes, no \
       up-front tokenization), $(b,memo) (memoized backtracking on the \
       composed grammar, no dispatch tables) or $(b,reference) (the \
       executable-specification engine; single statements only). All five \
       accept the same language and build the same trees; they differ in \
       speed."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("committed", `Committed); ("vm", `Vm); ("fused", `Fused);
               ("memo", `Memo); ("reference", `Reference) ])
          `Committed
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let stdin_flag =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Stream semicolon-separated statements from standard input in \
             fixed-size chunks, parsing each statement as soon as its \
             terminating $(b,;) arrives. Memory stays bounded by the chunk \
             size plus the largest single statement, so unbounded scripts \
             are fine.")
  in
  let chunk_size_arg =
    let doc = "Chunk size for $(b,--stdin) streaming, in bytes." in
    Arg.(value & opt int 65536 & info [ "chunk-size" ] ~docv:"BYTES" ~doc)
  in
  let run_batch g engine path domains =
    if domains < 1 then fail "--domains must be at least 1"
    else begin
    let session =
      Service.Session.create
        ~engine:
          (match engine with
          | `Vm -> `Vm
          | `Fused -> `Fused
          | _ -> `Committed)
        g
    in
    let script = In_channel.with_open_text path In_channel.input_all in
    let batch = Service.Session.parse_script ~domains session script in
    List.iter
      (fun (item : Service.Session.item) ->
        match item.Service.Session.result with
        | Ok _ ->
          Printf.printf "#%d ok (%d tokens)\n" item.Service.Session.index
            item.Service.Session.token_count
        | Error e ->
          Printf.printf "#%d FAIL %s\n" item.Service.Session.index
            (Fmt.str "%a" Core.pp_error e))
      batch.Service.Session.items;
    let stats = batch.Service.Session.batch_stats in
    Fmt.pr "-- %a@." Service.Session.pp_stats stats;
    if stats.Service.Session.rejected = 0 then `Ok ()
    else fail "%d of %d statement(s) rejected" stats.Service.Session.rejected
        stats.Service.Session.statements
    end
  in
  let run_stdin g engine chunk_size =
    if chunk_size < 1 then fail "--chunk-size must be at least 1"
    else begin
      let session =
        Service.Session.create
          ~engine:
            (match engine with
            | `Vm -> `Vm
            | `Committed | `Memo -> `Committed
            | _ -> `Fused)
          g
      in
      let stats =
        Service.Session.parse_stream ~chunk_size session
          ~on_item:(fun (item : Service.Session.item) ->
            match item.Service.Session.result with
            | Ok _ ->
              Printf.printf "#%d ok (%d tokens)\n" item.Service.Session.index
                item.Service.Session.token_count
            | Error e ->
              Printf.printf "#%d FAIL %s\n" item.Service.Session.index
                (Fmt.str "%a" Core.pp_error e))
          ~read:(fun buf off len -> In_channel.input In_channel.stdin buf off len)
      in
      Fmt.pr "-- %a@." Service.Session.pp_stats stats;
      if stats.Service.Session.rejected = 0 then `Ok ()
      else
        fail "%d of %d statement(s) rejected" stats.Service.Session.rejected
          stats.Service.Session.statements
    end
  in
  (* [memo] swaps the session's parser for one generated without dispatch
     tables from the composed (unnormalized) grammar — exactly the previous
     engine, and the E17 baseline. *)
  let with_memo_engine g =
    match
      Parser_gen.Engine.generate ~dispatch:false
        ~interner:(Lexing_gen.Scanner.interner g.Core.scanner)
        g.Core.grammar
    with
    | Ok parser -> Ok { g with Core.parser }
    | Error e -> Error (Fmt.str "%a" Parser_gen.Engine.pp_gen_error e)
  in
  let run_reference g sql =
    match Parser_gen.Reference.generate g.Core.grammar with
    | Error e -> fail "%s" (Fmt.str "%a" Parser_gen.Engine.pp_gen_error e)
    | Ok refp -> (
      match Core.scan_tokens g sql with
      | Error e -> fail "%s" (Fmt.str "%a" Core.pp_error e)
      | Ok toks -> (
        match Parser_gen.Reference.parse refp (Array.to_list toks) with
        | Ok cst ->
          Fmt.pr "%a@." Parser_gen.Cst.pp cst;
          `Ok ()
        | Error e -> fail "%s" (Fmt.str "%a" Parser_gen.Engine.pp_parse_error e)))
  in
  let run dialect features config_file ast batch domains engine use_stdin
      chunk_size sql =
    match generate_front_end dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok g -> (
      let g =
        match engine with `Memo -> with_memo_engine g | _ -> Ok g
      in
      match g with
      | Error msg -> fail "%s" msg
      | Ok g -> (
        match (batch, sql) with
        | _ when use_stdin ->
          if engine = `Reference then
            fail "--engine reference parses single statements only"
          else if batch <> None || sql <> None then
            fail "--stdin excludes --batch and SQL arguments"
          else run_stdin g engine chunk_size
        | Some _, _ when engine = `Reference ->
          fail "--engine reference parses single statements only"
        | Some path, None -> run_batch g engine path domains
        | Some _, Some _ -> fail "--batch and a SQL argument are exclusive"
        | None, None ->
          fail "a SQL statement (or --batch FILE, or --stdin) is required"
        | None, Some sql when engine = `Reference ->
          if ast then fail "--engine reference prints the CST only"
          else run_reference g sql
        | None, Some sql ->
          if ast then (
            match Core.parse_statement g sql with
            | Ok stmt ->
              print_endline (Sql_ast.Sql_printer.statement stmt);
              `Ok ()
            | Error e -> fail "%s" (Fmt.str "%a" Core.pp_error e))
          else (
            let parse =
              match engine with
              | `Vm -> Core.parse_cst_vm
              | `Fused -> Core.parse_cst_fused
              | _ -> Core.parse_cst
            in
            match parse g sql with
            | Ok cst ->
              Fmt.pr "%a@." Parser_gen.Cst.pp cst;
              `Ok ()
            | Error e -> fail "%s" (Fmt.str "%a" Core.pp_error e))))
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Parse one statement — or a whole batched session, or a \
             streamed script — with a tailored parser")
    Term.(
      ret
        (const run $ dialect_arg $ features_arg $ config_file_arg $ ast_flag
        $ batch_arg $ domains_arg $ engine_arg $ stdin_flag $ chunk_size_arg
        $ sql_arg))

(* --- emit --------------------------------------------------------------------- *)

let emit_cmd =
  let run dialect features config_file =
    match generate_front_end dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok g ->
      print_string (Core.emit_ocaml_parser g);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit standalone OCaml parser source for a selection")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg))

(* --- report -------------------------------------------------------------------- *)

let report_cmd =
  let run dialect features config_file =
    match generate_front_end dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok g ->
      print_string (Report.to_string g);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Grammar report for a selection: sizes, statement classes, LL(1) \
             diagnostics, per-feature contributions")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg))

(* --- lint ---------------------------------------------------------------------- *)

let lint_cmd =
  let dialect_pos_arg =
    let doc =
      Printf.sprintf
        "Dialect to lint. One of: %s. Ignored when $(b,--feature) or \
         $(b,--config) give an explicit selection."
        (String.concat ", "
           (List.map (fun (d : Dialects.Dialect.t) -> d.name) Dialects.Dialect.all))
    in
    Arg.(value & pos 0 string "full" & info [] ~docv:"DIALECT" ~doc)
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: text (human-readable report) or json \
                (one JSON object per diagnostic, one per line).")
  in
  let family_flag =
    Arg.(
      value & flag
      & info [ "family" ]
          ~doc:
            "Additionally report the family-based analysis: lint runs once \
             over the variability-aware 150% grammar and its findings are \
             filtered to this configuration by presence condition. \
             Informational — the per-product lint above stays the \
             authoritative gate.")
  in
  let run features config_file format family dialect =
    match resolve_config dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok (label, config) -> (
      match Sql.Model.compose_linted config with
      | Error e -> fail "%s: %s" label (Fmt.str "%a" Compose.Composer.pp_error e)
      | Ok out ->
        let diags = out.Compose.Composer.diagnostics in
        (match format with
         | `Text ->
           Printf.printf "lint %s (%d features)\n" label
             (Feature.Config.cardinal config);
           Fmt.pr "%a@." Lint.pp_report diags;
           (* Where the generated parser will actually backtrack: classify
              the choice points of the normalized grammar, as generation
              does, and name the rules whose conflicts force fallback. *)
           let factored, _ =
             Grammar.Factor.normalize out.Compose.Composer.grammar
           in
           (match Parser_gen.Engine.generate factored with
            | Error _ -> ()
            | Ok parser ->
              let s = Parser_gen.Engine.summary parser in
              Fmt.pr "dispatch: %a@." Parser_gen.Engine.pp_summary s;
              List.iter
                (fun (c : Parser_gen.Engine.nt_class) ->
                  if c.Parser_gen.Engine.nt_fallbacks > 0 then
                    Fmt.pr "  backtracks: <%s> (%d ambiguous point(s))@."
                      c.Parser_gen.Engine.nt_name
                      c.Parser_gen.Engine.nt_fallbacks)
                s.Parser_gen.Engine.classes);
           if family then begin
             let fam = Core.family () in
             let fdiags = Family.diagnostics_for fam config in
             Fmt.pr "family (pc-filtered, informational): %d finding(s)@."
               (List.length fdiags);
             Fmt.pr "%a@." Lint.pp_report fdiags
           end
         | `Json -> print_string (Lint.to_json_lines diags));
        if Lint.Diagnostic.has_errors diags then
          fail "%s: lint found %d error(s)" label
            (List.length (Lint.Diagnostic.errors diags))
        else `Ok ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static-analysis pass over a composed product: grammar \
             (reachability, productivity, duplicate alternatives, LL(k) \
             conflicts for k <= 2), token set (overlaps, keyword shadowing, \
             unused/undeclared terminals) and feature model (dead features, \
             false optionals, redundant constraints, fragment coverage). \
             Exits nonzero when any Error-severity diagnostic is found.")
    Term.(
      ret
        (const run $ features_arg $ config_file_arg $ format_arg $ family_flag
       $ dialect_pos_arg))

(* --- diff ---------------------------------------------------------------------- *)

let diff_cmd =
  let a_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIALECT_A" ~doc:"First dialect.")
  in
  let b_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIALECT_B" ~doc:"Second dialect.")
  in
  let run a b =
    match Dialects.Dialect.find a, Dialects.Dialect.find b with
    | None, _ -> fail "unknown dialect %S" a
    | _, None -> fail "unknown dialect %S" b
    | Some da, Some db ->
      let ca = da.Dialects.Dialect.config and cb = db.Dialects.Dialect.config in
      let names = Feature.Tree.names Sql.Model.model.Feature.Model.concept in
      let shared, only_a, only_b =
        List.fold_left
          (fun (shared, oa, ob) n ->
            match Feature.Config.mem n ca, Feature.Config.mem n cb with
            | true, true -> (n :: shared, oa, ob)
            | true, false -> (shared, n :: oa, ob)
            | false, true -> (shared, oa, n :: ob)
            | false, false -> (shared, oa, ob))
          ([], [], []) names
      in
      Printf.printf "commonality: %d shared feature(s)\n" (List.length shared);
      Printf.printf "\nonly in %s (%d):\n" a (List.length only_a);
      List.iter (fun n -> Printf.printf "  %s\n" n) (List.rev only_a);
      Printf.printf "\nonly in %s (%d):\n" b (List.length only_b);
      List.iter (fun n -> Printf.printf "  %s\n" n) (List.rev only_b);
      (match Core.generate_dialect da, Core.generate_dialect db with
       | Ok ga, Ok gb ->
         Printf.printf "\ngrammar size: %s %d rules / %d tokens, %s %d rules / %d tokens\n"
           a
           (Grammar.Cfg.rule_count ga.Core.grammar)
           (List.length ga.Core.tokens)
           b
           (Grammar.Cfg.rule_count gb.Core.grammar)
           (List.length gb.Core.tokens)
       | _, _ -> ());
      `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Commonality/variability analysis between two dialects")
    Term.(ret (const run $ a_arg $ b_arg))

(* --- cache --------------------------------------------------------------------- *)

let cache_stats_cmd =
  let family_flag =
    Arg.(
      value & flag
      & info [ "family" ]
          ~doc:
            "Serve cache misses from the variability-aware family artifact \
             (one shared compilation, per-config mask/replay) instead of the \
             cold compose+generate pipeline, and print the artifact's \
             statistics.")
  in
  let run family =
    (* Resolve every shipped dialect twice through the shared cache: the
       first pass pays compose+generate (misses), the second hits. *)
    let cache = Service.Cache.default in
    Service.Cache.use_family cache family;
    let time f =
      let t0 = Sys.time () in
      let r = f () in
      (r, (Sys.time () -. t0) *. 1e3)
    in
    Printf.printf "%-10s %-32s %10s %10s\n" "dialect" "digest" "cold" "warm";
    let rec go = function
      | [] ->
        Fmt.pr "--@.%a@." Service.Cache.pp_stats (Service.Cache.stats cache);
        Option.iter
          (fun s -> Fmt.pr "family: %a@." Family.pp_stats s)
          (Core.family_stats ());
        `Ok ()
      | (d : Dialects.Dialect.t) :: rest -> (
        let digest = Service.Digest_key.of_config d.config in
        match time (fun () -> Service.Cache.generate_dialect cache d) with
        | Error e, _ ->
          fail "generate %s: %s" d.name (Fmt.str "%a" Core.pp_error e)
        | Ok _, cold ->
          let _, warm = time (fun () -> Service.Cache.generate_dialect cache d) in
          Printf.printf "%-10s %-32s %8.2fms %8.2fms\n" d.name
            (Service.Digest_key.to_hex digest)
            cold warm;
          go rest)
    in
    go Dialects.Dialect.all
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Resolve all shipped dialects through the configuration-keyed \
             parser cache (cold, then warm) and print its hit/miss/eviction \
             counters")
    Term.(ret (const run $ family_flag))

let cache_key_cmd =
  let run dialect features config_file =
    match resolve_config dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok (label, config) ->
      Printf.printf "%s %s (%d features)\n"
        (Service.Digest_key.to_hex (Service.Digest_key.of_config config))
        label
        (Feature.Config.cardinal config);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "key"
       ~doc:"Print the canonical (order-insensitive) cache digest of a \
             selection")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg))

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:"The configuration-keyed parser cache: canonical digests and \
             hit/miss statistics")
    [ cache_stats_cmd; cache_key_cmd ]

(* --- bench -------------------------------------------------------------------- *)

let bench_report_cmd =
  let dir_arg =
    let doc =
      "Directory holding the $(b,BENCH_*.json) artifacts (the repository \
       root by default)."
    in
    Arg.(value & opt dir "." & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let output_arg =
    let doc = "Write the markdown report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let strict_flag =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail (exit non-zero) on any schema-mismatched artifact instead \
             of skipping it with a warning — the CI posture, where a \
             drifted artifact is a bug, not noise.")
  in
  let run dir output strict =
    match Bench_report.run ~strict ~dir ~output () with
    | Ok () -> `Ok ()
    | Error msg -> fail "%s" msg
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Merge every checked-in BENCH_*.json benchmark artifact into one \
             markdown trajectory: per experiment and dialect, each measured \
             engine's throughput, plus the cross-experiment frontier")
    Term.(ret (const run $ dir_arg $ output_arg $ strict_flag))

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Benchmark artifacts: the measurement runs live in bench/main \
             (dune exec bench/main.exe -- eNN); this group reads their \
             recorded results")
    [ bench_report_cmd ]

(* --- serve / client -------------------------------------------------------------- *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      Ok (Service.Wire.Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "bad port %S in %S" port s))

let resolve_address listen unix_path =
  match (listen, unix_path) with
  | _, Some path -> Ok (Service.Wire.Unix_socket path)
  | Some hp, None -> parse_host_port hp
  | None, None -> Ok (Service.Wire.Tcp ("127.0.0.1", 7433))

let listen_arg =
  let doc = "TCP address to serve on / connect to, as $(i,HOST:PORT)." in
  Arg.(value & opt (some string) None & info [ "listen"; "connect" ] ~docv:"HOST:PORT" ~doc)

let unix_arg =
  let doc = "Unix-domain socket path (overrides the TCP address)." in
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)

let max_frame_arg =
  let doc = "Largest accepted wire frame, in bytes." in
  Arg.(
    value
    & opt int Service.Wire.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES" ~doc)

let serve_cmd =
  let workers_arg =
    let doc =
      "Worker domains serving connections in parallel (the acceptor deals \
       connections onto a shared queue, exactly like parse --batch \
       --domains deals statements)."
    in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let preload_flag =
    Arg.(
      value & flag
      & info [ "preload" ]
          ~doc:
            "Compose and generate every shipped dialect into the server \
             cache before accepting connections, so digest-pinned hellos \
             resolve immediately and first requests never pay a cold \
             compose.")
  in
  let stream_flag =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Additionally accept raw streaming connections: first byte \
             $(b,S), one $(i,<dialect> [engine]) header line, then \
             unframed SQL bytes to EOF — answered one $(b,ok)/$(b,err) \
             line per statement at a fixed memory ceiling.")
  in
  let family_flag =
    Arg.(
      value & flag
      & info [ "family" ]
          ~doc:
            "Serve cache misses from the variability-aware family artifact: \
             the product line is compiled once into a shared artifact and \
             each cold hello is instantiated by a cheap mask/replay instead \
             of the full compose+generate pipeline. With $(b,--preload), \
             the dialect warm-up is one family build plus six near-free \
             instantiations.")
  in
  let gc_space_overhead_arg =
    let doc =
      "Set the OCaml GC's space_overhead before serving (percent; the \
       runtime default is 120). Larger values trade resident memory for \
       fewer major collections — a tail-latency knob for long-running \
       service processes."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-space-overhead" ] ~docv:"PERCENT" ~doc)
  in
  let run listen unix_path workers max_frame preload stream family
      gc_space_overhead =
    if workers < 1 then fail "--workers must be at least 1"
    else
      match resolve_address listen unix_path with
      | Error msg -> fail "%s" msg
      | Ok addr -> (
        (match gc_space_overhead with
        | Some pct when pct > 0 ->
          Gc.set { (Gc.get ()) with Gc.space_overhead = pct }
        | _ -> ());
        match Service.Server.start ~workers ~max_frame ~stream addr with
        | Error msg -> fail "%s" msg
        | Ok server ->
          Service.Cache.use_family (Service.Server.cache server) family;
          if preload then
            List.iter
              (fun (d : Dialects.Dialect.t) ->
                match
                  Service.Cache.generate_dialect (Service.Server.cache server) d
                with
                | Ok _ -> ()
                | Error e ->
                  Printf.eprintf "sqlpl: preload %s: %s\n%!" d.name
                    (Fmt.str "%a" Core.pp_error e))
              Dialects.Dialect.all;
          Fmt.pr "sqlpl: serving on %a (%d worker(s)%s)@."
            Service.Wire.pp_address
            (Service.Server.address server)
            workers
            ((if family then ", family-backed" else "")
            ^ if preload then ", dialects preloaded" else "");
          let stop_now = Atomic.make false in
          let on_signal _ = Atomic.set stop_now true in
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
          while not (Atomic.get stop_now) do
            try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done;
          Service.Server.stop server;
          let s = Service.Server.stats server in
          Fmt.pr
            "sqlpl: stopped after %d connection(s), %d request(s), %d wire \
             error(s)@."
            s.Service.Server.connections s.Service.Server.requests
            s.Service.Server.wire_errors;
          `Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the parser service: a long-running daemon speaking \
          length-prefixed binary frames (or newline-JSON, auto-detected \
          per connection) over TCP or Unix sockets. Each connection pins \
          one front-end via its hello (dialect, feature list, or resident \
          cache digest) and streams statement batches through it.")
    Term.(
      ret
        (const run $ listen_arg $ unix_arg $ workers_arg $ max_frame_arg
       $ preload_flag $ stream_flag $ family_flag $ gc_space_overhead_arg))

let client_cmd =
  let digest_arg =
    let doc =
      "Pin the front-end by the hex digest of a configuration already \
       resident in the server's cache (see $(b,sqlpl cache key))."
    in
    Arg.(value & opt (some string) None & info [ "digest" ] ~docv:"HEX" ~doc)
  in
  let engine_arg =
    let doc = "Session engine on the server: committed, vm or fused." in
    Arg.(
      value
      & opt
          (enum [ ("committed", `Committed); ("vm", `Vm); ("fused", `Fused) ])
          `Committed
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Speak the newline-JSON debug encoding instead of binary \
                frames.")
  in
  let recognize_flag =
    Arg.(
      value & flag
      & info [ "recognize" ]
          ~doc:"Accept/reject only; skip CST rendering and transfer.")
  in
  let batch_arg =
    let doc = "Read semicolon-separated statements from $(docv)." in
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE" ~doc)
  in
  let sql_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SQL" ~doc:"Statements to send (each one statement).")
  in
  let run listen unix_path dialect features config_file digest engine json
      recognize max_frame batch sqls =
    let selection =
      match digest with
      | Some hex -> Ok (Service.Wire.Digest hex)
      | None ->
        if features = [] && config_file = None then
          Ok (Service.Wire.Dialect dialect)
        else (
          match resolve_config dialect features config_file with
          | Error msg -> Error msg
          | Ok (_, config) ->
            Ok (Service.Wire.Features (Feature.Config.to_names config)))
    in
    let statements =
      match batch with
      | Some path ->
        Core.split_statements
          (In_channel.with_open_text path In_channel.input_all)
      | None -> sqls
    in
    match (selection, resolve_address listen unix_path) with
    | Error msg, _ | _, Error msg -> fail "%s" msg
    | Ok selection, Ok addr -> (
      if statements = [] then fail "no statements (give SQL or --batch FILE)"
      else
        let encoding = if json then Service.Wire.Json else Service.Wire.Binary in
        match
          Service.Client.connect ~encoding ~engine ~max_frame ~selection addr
        with
        | Error e -> fail "%s" (Fmt.str "%a" Service.Wire.pp_error e)
        | Ok (client, ok) ->
          Fmt.pr "connected: %s (%d features, digest %s)@." ok.Service.Wire.label
            ok.Service.Wire.features ok.Service.Wire.digest;
          let mode =
            if recognize then Service.Wire.Recognize else Service.Wire.Cst
          in
          let result =
            match Service.Client.request ~mode client statements with
            | Error e -> fail "%s" (Fmt.str "%a" Service.Wire.pp_error e)
            | Ok reply ->
              List.iteri
                (fun i outcome ->
                  match outcome with
                  | Service.Wire.Accepted { tokens; cst } ->
                    Printf.printf "#%d ok (%d tokens)\n" i tokens;
                    Option.iter print_endline cst
                  | Service.Wire.Rejected e ->
                    Fmt.pr "#%d FAIL %a@." i Service.Wire.pp_error e)
                reply.Service.Wire.items;
              let s = reply.Service.Wire.stats in
              Printf.printf
                "-- %d statement(s): %d accepted, %d rejected; %d token(s) \
                 in %.3fms server-side\n"
                s.Service.Wire.statements s.Service.Wire.accepted
                s.Service.Wire.rejected s.Service.Wire.tokens
                (Int64.to_float s.Service.Wire.elapsed_ns /. 1e6);
              if s.Service.Wire.rejected = 0 then `Ok ()
              else
                fail "%d of %d statement(s) rejected" s.Service.Wire.rejected
                  s.Service.Wire.statements
          in
          Service.Client.close client;
          result)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send statements to a running $(b,sqlpl serve) daemon and print \
          the per-statement results and server-side statistics.")
    Term.(
      ret
        (const run $ listen_arg $ unix_arg $ dialect_arg $ features_arg
       $ config_file_arg $ digest_arg $ engine_arg $ json_flag
       $ recognize_flag $ max_frame_arg $ batch_arg $ sql_arg))

(* --- configure ----------------------------------------------------------------- *)

let configure_cmd =
  (* Unlike the other subcommands, configuring starts from an empty selection
     unless a starting point is requested explicitly. *)
  let start_dialect_arg =
    let doc = "Start from a built-in dialect instead of an empty selection." in
    Arg.(value & opt (some string) None & info [ "d"; "dialect" ] ~docv:"DIALECT" ~doc)
  in
  let run dialect features config_file =
    let initial =
      match dialect, features, config_file with
      | None, [], None -> Ok ("empty", Sql.Model.close (Feature.Config.of_names []))
      | Some d, _, _ -> resolve_config d features config_file
      | None, _, _ -> resolve_config "" features config_file
    in
    match initial with
    | Error msg -> fail "%s" msg
    | Ok (_, config) ->
      Configure.run config;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "configure"
       ~doc:"Interactively select features and generate parsers (the paper's \
             envisioned configuration UI)")
    Term.(ret (const run $ start_dialect_arg $ features_arg $ config_file_arg))

(* --- run ------------------------------------------------------------------------ *)

let print_outcome = function
  | Engine.Executor.Rows rs ->
    print_endline (String.concat " | " rs.Engine.Executor.columns);
    List.iter
      (fun row ->
        print_endline (String.concat " | " (List.map Engine.Value.to_string row)))
      rs.Engine.Executor.rows;
    Printf.printf "(%d rows)\n" (List.length rs.Engine.Executor.rows)
  | Engine.Executor.Affected n -> Printf.printf "%d row(s) affected\n" n
  | Engine.Executor.Done msg -> print_endline msg

let run_cmd =
  let script_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:"SQL script (semicolon-separated). Reads stdin when omitted.")
  in
  let run dialect features config_file script =
    match generate_front_end dialect features config_file with
    | Error msg -> fail "%s" msg
    | Ok g ->
      let session = Core.session g in
      let text =
        match script with
        | Some path -> In_channel.with_open_text path In_channel.input_all
        | None -> In_channel.input_all stdin
      in
      let rec go = function
        | [] -> `Ok ()
        | sql :: rest -> (
          Printf.printf "> %s\n" (String.trim sql);
          match Core.run session sql with
          | Ok outcome ->
            print_outcome outcome;
            go rest
          | Error e -> fail "%s" (Fmt.str "%a" Core.pp_error e))
      in
      go (Core.split_statements text)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a SQL script against an in-memory database with a \
             tailored front-end")
    Term.(ret (const run $ dialect_arg $ features_arg $ config_file_arg $ script_arg))

let () =
  let info =
    Cmd.info "sqlpl" ~version:"1.0.0"
      ~doc:"Customizable SQL parsers from feature compositions (EDBT'08 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            dialects_cmd; features_cmd; diagram_cmd; validate_cmd; grammar_cmd;
            tokens_cmd; parse_cmd; emit_cmd; report_cmd; lint_cmd; diff_cmd;
            cache_cmd; bench_cmd; serve_cmd; client_cmd; configure_cmd;
            run_cmd;
          ]))
