(* [sqlpl bench report]: merge the checked-in BENCH_*.json artifacts into
   one markdown trajectory — per experiment, per dialect, the throughput of
   every engine that experiment measured, plus a cross-experiment frontier
   table showing how the fastest engine moved as the pipeline grew
   (reference -> interned -> committed dispatch -> bytecode VM).

   The artifacts are written by [bench/main.ml] with plain [Printf], so the
   reader below is a deliberately small recursive-descent JSON parser — no
   dependency is worth pulling in for files we generate ourselves. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

(* --- parsing ------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let skip_ws s =
  while
    s.pos < String.length s.src
    && (match s.src.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    s.pos <- s.pos + 1
  done

let expect s c =
  skip_ws s;
  match peek s with
  | Some d when d = c -> s.pos <- s.pos + 1
  | Some d -> raise (Bad (Printf.sprintf "expected %C, found %C at %d" c d s.pos))
  | None -> raise (Bad (Printf.sprintf "expected %C, found end of input" c))

let parse_string s =
  expect s '"';
  let b = Buffer.create 16 in
  let rec go () =
    if s.pos >= String.length s.src then raise (Bad "unterminated string")
    else
      match s.src.[s.pos] with
      | '"' -> s.pos <- s.pos + 1
      | '\\' ->
        if s.pos + 1 >= String.length s.src then raise (Bad "bad escape");
        (match s.src.[s.pos + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* Artifacts we write are ASCII; map the escape to '?' rather than
             decode surrogate pairs. *)
          if s.pos + 5 >= String.length s.src then raise (Bad "bad \\u");
          s.pos <- s.pos + 4;
          Buffer.add_char b '?'
        | c -> raise (Bad (Printf.sprintf "bad escape \\%C" c)));
        s.pos <- s.pos + 2;
        go ()
      | c ->
        Buffer.add_char b c;
        s.pos <- s.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number s =
  let start = s.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while s.pos < String.length s.src && is_num_char s.src.[s.pos] do
    s.pos <- s.pos + 1
  done;
  match float_of_string_opt (String.sub s.src start (s.pos - start)) with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "bad number at %d" start))

let literal s word v =
  let n = String.length word in
  if
    s.pos + n <= String.length s.src
    && String.sub s.src s.pos n = word
  then begin
    s.pos <- s.pos + n;
    v
  end
  else raise (Bad (Printf.sprintf "bad literal at %d" s.pos))

let rec parse_value s =
  skip_ws s;
  match peek s with
  | Some '{' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some '}' then begin
      s.pos <- s.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws s;
        let key = parse_string s in
        expect s ':';
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          s.pos <- s.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> raise (Bad "expected , or } in object")
      in
      members []
    end
  | Some '[' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some ']' then begin
      s.pos <- s.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          s.pos <- s.pos + 1;
          Arr (List.rev (v :: acc))
        | _ -> raise (Bad "expected , or ] in array")
      in
      elements []
    end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some _ -> Num (parse_number s)
  | None -> raise (Bad "unexpected end of input")

let parse_file path =
  let src = In_channel.with_open_text path In_channel.input_all in
  let s = { src; pos = 0 } in
  let v = parse_value s in
  skip_ws s;
  v

(* --- extraction --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let as_str = function Some (Str s) -> Some s | _ -> None
let as_num = function Some (Num f) -> Some f | _ -> None
let as_arr = function Some (Arr l) -> l | _ -> []

(* One throughput measurement: experiment, dialect, engine label, rates. *)
type point = {
  experiment : string;
  dialect : string;
  engine : string;
  stmts_per_s : float option;
  tokens_per_s : float option;
}

let strip_suffix ~suffix s =
  if String.length s > String.length suffix
     && String.sub s (String.length s - String.length suffix)
          (String.length suffix)
        = suffix
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

(* An engine is any field family [<engine>_tokens_per_s] /
   [<engine>_stmts_per_s] in a row object — the artifacts name engines in
   the fields, so new experiments join the report without code changes. *)
let points_of_row experiment row =
  match as_str (member "dialect" row) with
  | None -> []
  | Some dialect ->
    let fields = match row with Obj kvs -> kvs | _ -> [] in
    let engines =
      List.filter_map
        (fun (k, _) -> strip_suffix ~suffix:"_tokens_per_s" k)
        fields
    in
    List.map
      (fun engine ->
        {
          experiment;
          dialect;
          engine;
          stmts_per_s = as_num (member (engine ^ "_stmts_per_s") row);
          tokens_per_s = as_num (member (engine ^ "_tokens_per_s") row);
        })
      engines

(* --- schema validation ---------------------------------------------------

   Every known experiment id has a structural schema; an artifact that
   declares an unknown experiment, or a known one whose shape does not
   match, is skipped with a warning instead of contributing half-parsed
   rows to the trajectory. (A stale BENCH_e19.json from an abandoned
   experiment family once did exactly that.) *)

let has_num key row = as_num (member key row) <> None
let has_str key row = as_str (member key row) <> None

let nonempty_all key j ok =
  match member key j with
  | Some (Arr rows) -> rows <> [] && List.for_all ok rows
  | _ -> false

(* e16/e17/e18 rows: a dialect plus at least one engine field family. *)
let throughput_row row =
  has_str "dialect" row
  &&
  match row with
  | Obj kvs ->
    List.exists
      (fun (k, v) ->
        strip_suffix ~suffix:"_tokens_per_s" k <> None
        && match v with Num _ -> true | _ -> false)
      kvs
  | _ -> false

let validate experiment j =
  match experiment with
  | "e15" ->
    if
      nonempty_all "cache" j (fun r ->
          has_str "dialect" r && has_num "cold_ms" r && has_num "warm_ms" r)
      && nonempty_all "batch" j (fun r ->
             has_str "dialect" r && has_num "batched_stmts_per_s" r)
    then Ok ()
    else Error "expected \"cache\"/\"batch\" arrays of per-dialect timings"
  | "e16" | "e17" | "e18" ->
    if nonempty_all "rows" j throughput_row then Ok ()
    else Error "expected \"rows\" of {dialect, <engine>_tokens_per_s, ...}"
  | "e20" ->
    if
      nonempty_all "rows" j throughput_row
      && has_num "byte_scan_mb_per_s" j
      &&
      match member "stream" j with
      | Some stream ->
        has_num "bytes" stream && has_num "max_resident_kb" stream
      | None -> false
    then Ok ()
    else
      Error
        "expected fused schema {rows: [{dialect, <engine>_tokens_per_s, \
         ...}], byte_scan_mb_per_s, stream: {bytes, max_resident_kb}}"
  | "e19" ->
    if
      has_num "workers" j && has_num "connections" j
      && nonempty_all "rows" j (fun r ->
             has_str "dialect" r && has_str "engine" r && has_num "p50_ms" r
             && has_num "p99_ms" r && has_num "qps" r)
    then Ok ()
    else
      Error
        "expected service schema {workers, connections, rows: [{dialect, \
         engine, p50_ms, p99_ms, qps}]}"
  | "e21" ->
    if
      has_num "family_build_ms" j
      && nonempty_all "rows" j (fun r ->
             has_str "dialect" r && has_num "cold_ms" r
             && has_num "family_ms" r && has_num "speedup" r)
    then Ok ()
    else
      Error
        "expected family schema {family_build_ms, rows: [{dialect, cold_ms, \
         family_ms, speedup}]}"
  | _ -> Error "unknown experiment"

(* The E19 service artifact measures latency and QPS, not tokens/s, so it
   gets its own row type and table instead of joining the frontier. *)
type service_row = {
  s_dialect : string;
  s_engine : string;
  s_p50_ms : float;
  s_p99_ms : float;
  s_qps : float;
  s_stmts_per_s : float option;
}

let service_of_row row =
  match
    ( as_str (member "dialect" row),
      as_str (member "engine" row),
      as_num (member "p50_ms" row),
      as_num (member "p99_ms" row),
      as_num (member "qps" row) )
  with
  | Some s_dialect, Some s_engine, Some s_p50_ms, Some s_p99_ms, Some s_qps ->
    Some
      {
        s_dialect;
        s_engine;
        s_p50_ms;
        s_p99_ms;
        s_qps;
        s_stmts_per_s = as_num (member "stmts_per_s" row);
      }
  | _ -> None

(* The E21 family artifact measures generation latency, not parse
   throughput: cold pipeline vs family instantiation per dialect. *)
type family_row = {
  f_dialect : string;
  f_cold_ms : float;
  f_family_ms : float;
  f_speedup : float;
}

let family_of_row row =
  match
    ( as_str (member "dialect" row),
      as_num (member "cold_ms" row),
      as_num (member "family_ms" row),
      as_num (member "speedup" row) )
  with
  | Some f_dialect, Some f_cold_ms, Some f_family_ms, Some f_speedup ->
    Some { f_dialect; f_cold_ms; f_family_ms; f_speedup }
  | _ -> None

let family_notes j =
  let build =
    match as_num (member "family_build_ms" j) with
    | Some ms ->
      [
        Printf.sprintf
          "Family artifact built once in %.2f ms, shared by every product."
          ms;
      ]
    | None -> []
  in
  let connects =
    List.filter_map
      (fun r ->
        match
          ( as_str (member "dialect" r),
            as_num (member "plain_ms" r),
            as_num (member "family_ms" r) )
        with
        | Some d, Some plain, Some fam ->
          Some (Printf.sprintf "%s %.1f → %.1f ms" d plain fam)
        | _ -> None)
      (as_arr (member "serve_cold_connect" j))
  in
  build
  @
  if connects = [] then []
  else
    [
      "Serve cold-connection latency (plain → family-backed cache): "
      ^ String.concat ", " connects
      ^ ".";
    ]

type artifact = {
  a_experiment : string;
  a_basis : string option;  (* what the rates measure, from the artifact *)
  a_points : point list;
  a_service : service_row list;
  a_family : family_row list;
  a_notes : string list;  (* extra lines under the experiment's table *)
}

(* The E20 streaming run is a single measurement (one corpus, one chunk
   size), so it renders as a note line instead of a table row. *)
let stream_note j =
  match member "stream" j with
  | Some stream -> (
    match
      (as_num (member "bytes" stream), as_num (member "max_resident_kb" stream))
    with
    | Some bytes, Some rss_kb ->
      let rate =
        match as_num (member "tokens_per_s" stream) with
        | Some r -> Printf.sprintf " at %.0f tokens/s" r
        | None -> ""
      in
      [
        Printf.sprintf
          "Streamed corpus: %.0f MB parsed%s with max resident memory %.0f \
           MB."
          (bytes /. 1e6) rate (rss_kb /. 1e3);
      ]
    | _ -> [])
  | None -> []

let artifact_of_file path =
  let skip msg = Error (Printf.sprintf "%s: %s" path msg) in
  match parse_file path with
  | exception Bad msg -> skip msg
  | j -> (
    match as_str (member "experiment" j) with
    | None -> skip "no \"experiment\" field"
    | Some experiment -> (
      match validate experiment j with
      | Error msg -> skip (Printf.sprintf "%s: %s" experiment msg)
      | Ok () ->
        let rows = as_arr (member "rows" j) in
        Ok
          {
            a_experiment = experiment;
            a_basis = as_str (member "basis" j);
            a_points = List.concat_map (points_of_row experiment) rows;
            a_service =
              (if experiment = "e19" then List.filter_map service_of_row rows
               else []);
            a_family =
              (if experiment = "e21" then List.filter_map family_of_row rows
               else []);
            a_notes =
              (if experiment = "e20" then stream_note j
               else if experiment = "e21" then family_notes j
               else []);
          }))

(* --- rendering ---------------------------------------------------------- *)

let rate ppf = function
  | None -> Fmt.pf ppf "—"
  | Some f -> Fmt.pf ppf "%.0f" f

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* What an experiment's rates measure. Experiments that predate the basis
   field are parse-only (they time parsing of pre-scanned tokens); newer
   artifacts declare their basis themselves. *)
let basis_of ~bases experiment =
  match List.assoc_opt experiment bases with
  | Some (Some basis) -> basis
  | _ -> "parse-only (pre-scanned tokens)"

let render ppf ~sources ~experiments ~bases ~notes ~service ~family points =
  Fmt.pf ppf "# Benchmark trajectory@\n@\n";
  Fmt.pf ppf
    "Generated by `sqlpl bench report` from %s. Rates are end-of-run@\n\
     throughputs as recorded by each experiment; experiments measure on@\n\
     different bases (the frontier's basis row names each), so compare@\n\
     engines within a row's experiment, and read a dialect's row across@\n\
     experiments as the trajectory of the shipped configuration.@\n@\n"
    (String.concat ", " (List.map Filename.basename sources));
  (* Per-experiment tables. *)
  List.iter
    (fun experiment ->
      let mine = List.filter (fun p -> p.experiment = experiment) points in
      if mine <> [] then begin
        Fmt.pf ppf "## %s@\n@\n" experiment;
        Fmt.pf ppf "Basis: %s.@\n@\n" (basis_of ~bases experiment);
        Fmt.pf ppf "| dialect | engine | stmts/s | tokens/s |@\n";
        Fmt.pf ppf "|---|---|---:|---:|@\n";
        List.iter
          (fun p ->
            Fmt.pf ppf "| %s | %s | %a | %a |@\n" p.dialect p.engine rate
              p.stmts_per_s rate p.tokens_per_s)
          mine;
        Fmt.pf ppf "@\n";
        List.iter
          (fun note -> Fmt.pf ppf "%s@\n@\n" note)
          (match List.assoc_opt experiment notes with
          | Some ns -> ns
          | None -> [])
      end)
    experiments;
  (* The service experiment measures the wire, not the parser: latency
     percentiles and sustained QPS per connection pool, rendered as its
     own table rather than forced into the throughput frontier. *)
  if service <> [] then begin
    Fmt.pf ppf "## e19 (parser service under concurrent load)@\n@\n";
    Fmt.pf ppf "| dialect | engine | p50 ms | p99 ms | req/s | stmts/s |@\n";
    Fmt.pf ppf "|---|---|---:|---:|---:|---:|@\n";
    List.iter
      (fun r ->
        Fmt.pf ppf "| %s | %s | %.3f | %.3f | %.0f | %a |@\n" r.s_dialect
          r.s_engine r.s_p50_ms r.s_p99_ms r.s_qps rate r.s_stmts_per_s)
      service;
    Fmt.pf ppf "@\n"
  end;
  (* The family experiment measures generation latency (cold pipeline vs
     instantiation from the variability-aware artifact), so it too gets
     its own table instead of joining the throughput frontier. *)
  if family <> [] then begin
    Fmt.pf ppf "## e21 (family-based compilation)@\n@\n";
    Fmt.pf ppf "| dialect | cold ms | family ms | speedup |@\n";
    Fmt.pf ppf "|---|---:|---:|---:|@\n";
    List.iter
      (fun r ->
        Fmt.pf ppf "| %s | %.2f | %.2f | %.1fx |@\n" r.f_dialect r.f_cold_ms
          r.f_family_ms r.f_speedup)
      family;
    Fmt.pf ppf "@\n";
    List.iter
      (fun note -> Fmt.pf ppf "%s@\n@\n" note)
      (match List.assoc_opt "e21" notes with Some ns -> ns | None -> [])
  end;
  (* Frontier: per dialect, the best tokens/s any engine reached in each
     experiment. *)
  let dialects = dedup (List.map (fun p -> p.dialect) points) in
  let with_rows =
    List.filter
      (fun e -> List.exists (fun p -> p.experiment = e) points)
      experiments
  in
  if dialects <> [] && with_rows <> [] then begin
    Fmt.pf ppf "## Frontier (best tokens/s per experiment)@\n@\n";
    Fmt.pf ppf "| dialect |%s@\n"
      (String.concat ""
         (List.map (fun e -> Printf.sprintf " %s |" e) with_rows));
    Fmt.pf ppf "|---|%s@\n"
      (String.concat "" (List.map (fun _ -> "---:|") with_rows));
    (* The basis row makes the bases explicit instead of mixing parse-only
       and scan+parse rates silently: rates in one column are comparable,
       rates across columns only after reading this row. *)
    Fmt.pf ppf "| *basis* |%s@\n"
      (String.concat ""
         (List.map
            (fun e -> Printf.sprintf " *%s* |" (basis_of ~bases e))
            with_rows));
    List.iter
      (fun dialect ->
        Fmt.pf ppf "| %s |" dialect;
        List.iter
          (fun e ->
            let best =
              List.fold_left
                (fun acc p ->
                  if p.experiment = e && p.dialect = dialect then
                    match (p.tokens_per_s, acc) with
                    | Some f, Some b -> Some (max f b)
                    | Some f, None -> Some f
                    | None, _ -> acc
                  else acc)
                None points
            in
            Fmt.pf ppf " %a |" rate best)
          with_rows;
        Fmt.pf ppf "@\n")
      dialects;
    Fmt.pf ppf "@\n"
  end

let run ?(strict = false) ~dir ~output () =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then Error (Printf.sprintf "no BENCH_*.json files in %s" dir)
  else begin
    let artifacts, bad =
      List.fold_left
        (fun (ok, bad) path ->
          match artifact_of_file path with
          | Ok a -> (a :: ok, bad)
          | Error msg -> (ok, msg :: bad))
        ([], []) files
    in
    let artifacts = List.rev artifacts and bad = List.rev bad in
    (* Under [--strict] a schema-mismatched artifact fails the whole report
       (the CI posture: a drifted artifact is a bug, not noise); otherwise
       it is skipped with a warning, so a half-regenerated checkout still
       renders what it has. *)
    if strict && bad <> [] then
      Error
        (Printf.sprintf "invalid artifact(s):\n  %s"
           (String.concat "\n  " bad))
    else begin
      List.iter
        (fun msg -> Printf.eprintf "sqlpl: warning: skipping %s\n%!" msg)
        bad;
      let experiments = List.map (fun a -> a.a_experiment) artifacts in
      let bases = List.map (fun a -> (a.a_experiment, a.a_basis)) artifacts in
      let notes = List.map (fun a -> (a.a_experiment, a.a_notes)) artifacts in
      let points = List.concat_map (fun a -> a.a_points) artifacts in
      let service = List.concat_map (fun a -> a.a_service) artifacts in
      let family = List.concat_map (fun a -> a.a_family) artifacts in
      let doc =
        Fmt.str "%a"
          (fun ppf () ->
            render ppf ~sources:files ~experiments ~bases ~notes ~service
              ~family points)
          ()
      in
      (match output with
      | None -> print_string doc
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc doc));
      Ok ()
    end
  end
