(* [sqlpl bench report]: merge the checked-in BENCH_*.json artifacts into
   one markdown trajectory — per experiment, per dialect, the throughput of
   every engine that experiment measured, plus a cross-experiment frontier
   table showing how the fastest engine moved as the pipeline grew
   (reference -> interned -> committed dispatch -> bytecode VM).

   The artifacts are written by [bench/main.ml] with plain [Printf], so the
   reader below is a deliberately small recursive-descent JSON parser — no
   dependency is worth pulling in for files we generate ourselves. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

(* --- parsing ------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let skip_ws s =
  while
    s.pos < String.length s.src
    && (match s.src.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    s.pos <- s.pos + 1
  done

let expect s c =
  skip_ws s;
  match peek s with
  | Some d when d = c -> s.pos <- s.pos + 1
  | Some d -> raise (Bad (Printf.sprintf "expected %C, found %C at %d" c d s.pos))
  | None -> raise (Bad (Printf.sprintf "expected %C, found end of input" c))

let parse_string s =
  expect s '"';
  let b = Buffer.create 16 in
  let rec go () =
    if s.pos >= String.length s.src then raise (Bad "unterminated string")
    else
      match s.src.[s.pos] with
      | '"' -> s.pos <- s.pos + 1
      | '\\' ->
        if s.pos + 1 >= String.length s.src then raise (Bad "bad escape");
        (match s.src.[s.pos + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* Artifacts we write are ASCII; map the escape to '?' rather than
             decode surrogate pairs. *)
          if s.pos + 5 >= String.length s.src then raise (Bad "bad \\u");
          s.pos <- s.pos + 4;
          Buffer.add_char b '?'
        | c -> raise (Bad (Printf.sprintf "bad escape \\%C" c)));
        s.pos <- s.pos + 2;
        go ()
      | c ->
        Buffer.add_char b c;
        s.pos <- s.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number s =
  let start = s.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while s.pos < String.length s.src && is_num_char s.src.[s.pos] do
    s.pos <- s.pos + 1
  done;
  match float_of_string_opt (String.sub s.src start (s.pos - start)) with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "bad number at %d" start))

let literal s word v =
  let n = String.length word in
  if
    s.pos + n <= String.length s.src
    && String.sub s.src s.pos n = word
  then begin
    s.pos <- s.pos + n;
    v
  end
  else raise (Bad (Printf.sprintf "bad literal at %d" s.pos))

let rec parse_value s =
  skip_ws s;
  match peek s with
  | Some '{' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some '}' then begin
      s.pos <- s.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws s;
        let key = parse_string s in
        expect s ':';
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          s.pos <- s.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> raise (Bad "expected , or } in object")
      in
      members []
    end
  | Some '[' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some ']' then begin
      s.pos <- s.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          s.pos <- s.pos + 1;
          Arr (List.rev (v :: acc))
        | _ -> raise (Bad "expected , or ] in array")
      in
      elements []
    end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some _ -> Num (parse_number s)
  | None -> raise (Bad "unexpected end of input")

let parse_file path =
  let src = In_channel.with_open_text path In_channel.input_all in
  let s = { src; pos = 0 } in
  let v = parse_value s in
  skip_ws s;
  v

(* --- extraction --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let as_str = function Some (Str s) -> Some s | _ -> None
let as_num = function Some (Num f) -> Some f | _ -> None
let as_arr = function Some (Arr l) -> l | _ -> []

(* One throughput measurement: experiment, dialect, engine label, rates. *)
type point = {
  experiment : string;
  dialect : string;
  engine : string;
  stmts_per_s : float option;
  tokens_per_s : float option;
}

let strip_suffix ~suffix s =
  if String.length s > String.length suffix
     && String.sub s (String.length s - String.length suffix)
          (String.length suffix)
        = suffix
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

(* An engine is any field family [<engine>_tokens_per_s] /
   [<engine>_stmts_per_s] in a row object — the artifacts name engines in
   the fields, so new experiments join the report without code changes. *)
let points_of_row experiment row =
  match as_str (member "dialect" row) with
  | None -> []
  | Some dialect ->
    let fields = match row with Obj kvs -> kvs | _ -> [] in
    let engines =
      List.filter_map
        (fun (k, _) -> strip_suffix ~suffix:"_tokens_per_s" k)
        fields
    in
    List.map
      (fun engine ->
        {
          experiment;
          dialect;
          engine;
          stmts_per_s = as_num (member (engine ^ "_stmts_per_s") row);
          tokens_per_s = as_num (member (engine ^ "_tokens_per_s") row);
        })
      engines

let points_of_file path =
  match parse_file path with
  | exception Bad msg ->
    Printf.eprintf "sqlpl: warning: skipping %s: %s\n%!" path msg;
    (None, [])
  | j ->
    let experiment =
      match as_str (member "experiment" j) with
      | Some e -> e
      | None -> Filename.remove_extension (Filename.basename path)
    in
    let rows = as_arr (member "rows" j) in
    (Some experiment, List.concat_map (points_of_row experiment) rows)

(* --- rendering ---------------------------------------------------------- *)

let rate ppf = function
  | None -> Fmt.pf ppf "—"
  | Some f -> Fmt.pf ppf "%.0f" f

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let render ppf ~sources ~experiments points =
  Fmt.pf ppf "# Benchmark trajectory@\n@\n";
  Fmt.pf ppf
    "Generated by `sqlpl bench report` from %s. Rates are end-of-run@\n\
     throughputs as recorded by each experiment; experiments measure on@\n\
     different bases (parse-only vs scan+parse), so compare engines within@\n\
     a row's experiment, and read a dialect's row across experiments as the@\n\
     trajectory of the shipped configuration.@\n@\n"
    (String.concat ", " (List.map Filename.basename sources));
  (* Per-experiment tables. *)
  List.iter
    (fun experiment ->
      let mine = List.filter (fun p -> p.experiment = experiment) points in
      if mine <> [] then begin
        Fmt.pf ppf "## %s@\n@\n" experiment;
        Fmt.pf ppf "| dialect | engine | stmts/s | tokens/s |@\n";
        Fmt.pf ppf "|---|---|---:|---:|@\n";
        List.iter
          (fun p ->
            Fmt.pf ppf "| %s | %s | %a | %a |@\n" p.dialect p.engine rate
              p.stmts_per_s rate p.tokens_per_s)
          mine;
        Fmt.pf ppf "@\n"
      end)
    experiments;
  (* Frontier: per dialect, the best tokens/s any engine reached in each
     experiment. *)
  let dialects = dedup (List.map (fun p -> p.dialect) points) in
  let with_rows =
    List.filter
      (fun e -> List.exists (fun p -> p.experiment = e) points)
      experiments
  in
  if dialects <> [] && with_rows <> [] then begin
    Fmt.pf ppf "## Frontier (best tokens/s per experiment)@\n@\n";
    Fmt.pf ppf "| dialect |%s@\n"
      (String.concat ""
         (List.map (fun e -> Printf.sprintf " %s |" e) with_rows));
    Fmt.pf ppf "|---|%s@\n"
      (String.concat "" (List.map (fun _ -> "---:|") with_rows));
    List.iter
      (fun dialect ->
        Fmt.pf ppf "| %s |" dialect;
        List.iter
          (fun e ->
            let best =
              List.fold_left
                (fun acc p ->
                  if p.experiment = e && p.dialect = dialect then
                    match (p.tokens_per_s, acc) with
                    | Some f, Some b -> Some (max f b)
                    | Some f, None -> Some f
                    | None, _ -> acc
                  else acc)
                None points
            in
            Fmt.pf ppf " %a |" rate best)
          with_rows;
        Fmt.pf ppf "@\n")
      dialects;
    Fmt.pf ppf "@\n"
  end

let run ~dir ~output =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then Error (Printf.sprintf "no BENCH_*.json files in %s" dir)
  else begin
    let parsed = List.map points_of_file files in
    let experiments = List.filter_map fst parsed in
    let points = List.concat_map snd parsed in
    let doc =
      Fmt.str "%a" (fun ppf () -> render ppf ~sources:files ~experiments points) ()
    in
    (match output with
    | None -> print_string doc
    | Some path -> Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc doc));
    Ok ()
  end
