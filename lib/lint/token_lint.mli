(** Lint of composed token sets against the composed grammar.

    The scanner generated from a composed token set recognizes keywords by
    scanning an identifier-shaped word and consulting the (lowercased)
    keyword table, and punctuation by longest-match over literals. Four
    things can silently go wrong after composition:

    - {b colliding literals} ([token/overlap], Error): two token names bound
      to the same spelling — only one of the terminals can ever be produced
      (for keywords the table keeps one entry per lowercased spelling; for
      punctuation the first longest-match entry wins).
    - {b unscannable keywords} ([token/keyword-shadowed], Error): a keyword
      whose spelling is not identifier-shaped never reaches the keyword
      table — the identifier rule's lexical shape shadows it.
    - {b prefix punctuation} ([token/punct-prefix], Info): a literal that is
      a strict prefix of another; longest-match resolves it, but the
      ordering dependency is worth surfacing.
    - {b declared/referenced mismatches}: a terminal referenced by the
      grammar but declared by no token ([token/undeclared], Error — the
      scanner can never produce it), and a token declared but referenced
      nowhere ([token/unused], Warning — dead weight in the scanner). *)

val identifier_shaped : string -> bool
(** Whether a spelling matches the identifier rule's lexical shape
    ([\[A-Za-z_\]\[A-Za-z0-9_\]*]) — the shape a keyword must have to be
    recognized. *)

val check : grammar:Grammar.Cfg.t -> Lexing_gen.Spec.set -> Diagnostic.t list
