(** Static lint of composed grammars.

    Five analyses over a {!Grammar.Cfg.t}:

    - {b undefined non-terminals} ([grammar/undefined-nt], Error): a rule
      references a non-terminal no rule defines — the composed product
      cannot parse the construct; the witness is the reference chain.
    - {b unproductive rules} ([grammar/unproductive], Error when reachable,
      Warning otherwise): the non-terminal derives no terminal string, so
      every parse through it fails.
    - {b unreachable rules} ([grammar/unreachable], Warning): dead weight
      from composition, often a helper whose only user was not selected.
    - {b duplicate alternatives} ([grammar/duplicate-alt], Warning): two
      alternatives of a rule are structurally equal — the second can never
      match first.
    - {b LL(k) conflicts} (k ≤ 2): a pair of alternatives indistinguishable
      under k-token lookahead. A conflict that persists at [k = 2]
      ([grammar/ll2-conflict], Warning) forces the generated parser to
      backtrack; one resolved by the second token ([grammar/ll1-conflict],
      Info) merely needs LL(2) prediction. Each carries a concrete witness
      lookahead sequence. *)

val unproductive : Grammar.Cfg.t -> string list
(** Non-terminals that derive no terminal string (undefined references
    count as unproductive ground). *)

val duplicate_alternatives : Grammar.Cfg.t -> (string * Grammar.Production.alt) list
(** [(lhs, alt)] pairs where [alt] occurs more than once in the rule. *)

val check : ?k:int -> Grammar.Cfg.t -> Diagnostic.t list
(** All grammar diagnostics. [k] bounds the conflict analysis (1 or 2,
    default 2). *)
