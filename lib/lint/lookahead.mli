(** LL(k) lookahead analysis for k ≤ 2.

    {!Grammar.Analysis} computes single-token FIRST/FOLLOW sets; this module
    generalizes them to sets of token {e sequences} of length at most [k]
    (strong-LL FIRST{_k} / FOLLOW{_k}), which is what lets the lint
    subsystem attach concrete witness sequences to each conflict: the exact
    one- or two-token lookahead on which two alternatives of a rule are
    indistinguishable.

    A sequence shorter than [k] in any of these sets is a {e complete}
    yield — derivation ends there (e.g. [\["EOF"\]] after the start
    symbol); sequences of length [k] are truncations of possibly longer
    yields. *)

module Seq_set : Set.S with type elt = string list

type t
(** FIRST{_k} and FOLLOW{_k} tables of a grammar for a fixed [k]. *)

val compute : k:int -> Grammar.Cfg.t -> t
(** Fixpoint computation. [k] must be 1 or 2 — larger bounds raise
    [Invalid_argument] (the sequence-set representation is exact but its
    cost grows with the k-th power of the token count). *)

val first : t -> string -> Seq_set.t
(** FIRST{_k} of a non-terminal. *)

val follow : t -> string -> Seq_set.t
(** FOLLOW{_k} of a non-terminal; FOLLOW{_k} of the start symbol contains
    [\["EOF"\]]. *)

val seq_first : t -> Grammar.Production.alt -> Seq_set.t
(** FIRST{_k} of a term sequence. *)

val predict : t -> lhs:string -> Grammar.Production.alt -> Seq_set.t
(** The k-token prediction set of one alternative of rule [lhs]:
    FIRST{_k}(alt · FOLLOW{_k}(lhs)). An LL(k) parser commits to the
    alternative whose prediction set contains the next [k] tokens. *)

type conflict = {
  lhs : string;
  alt_a : int;
  alt_b : int;
  witnesses : string list list;
      (** token sequences (length ≤ k) predicting both alternatives,
          shortest first; never empty *)
}

val conflicts : k:int -> Grammar.Cfg.t -> conflict list
(** All pairs of alternatives whose k-token prediction sets overlap. At
    [k = 1] this reports exactly the pairs of
    {!Grammar.Analysis.ll1_conflicts}; at [k = 2] a pair that disappears is
    resolved by one extra token of lookahead. *)

val pp_conflict : conflict Fmt.t
