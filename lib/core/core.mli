(** Facade of the customizable-SQL-parser product line.

    This is the API a downstream user works with:

    {[
      let parser = Core.generate_dialect Dialects.Dialect.tinysql |> Result.get_ok in
      let stmt = Core.parse_statement parser "SELECT nodeid, AVG(temp) FROM sensors GROUP BY nodeid EPOCH DURATION 1024" in
      ...
    ]}

    [generate] runs the paper's pipeline: validate the feature instance
    description, determine the composition sequence, compose the
    sub-grammars and token files, and hand the composed grammar to the
    parser generator. The result bundles the generated scanner and parser.

    [session] adds the engine: an in-memory database executing the parsed
    statements, turning a tailored parser into a tailored DBMS front-end. *)

type generated = {
  label : string;                      (** dialect or configuration name *)
  config : Feature.Config.t;
  grammar : Grammar.Cfg.t;             (** the composed grammar, as written *)
  tokens : Lexing_gen.Spec.set;
  scanner : Lexing_gen.Scanner.t;
  parser : Parser_gen.Engine.t;
      (** generated from {!Grammar.Factor.normalize} of [grammar]: same
          language, same CSTs, more committed dispatch points *)
  sequence : string list;              (** composition sequence used *)
}

type error =
  | Compose_error of Compose.Composer.error
  | Generation_error of Parser_gen.Engine.gen_error
  | Lex_error of Lexing_gen.Scanner.error
  | Parse_error of Parser_gen.Engine.parse_error
  | Lowering_error of Lower.error
  | Execution_error of string

val pp_error : error Fmt.t

val generate : ?label:string -> Feature.Config.t -> (generated, error) result
(** Generate the parser for a configuration of {!Sql.Model.model}. *)

val generate_dialect : Dialects.Dialect.t -> (generated, error) result

(** {2 Family-based generation}

    The family fast path: {!Sql.Model.model}'s fragments compiled once
    into a process-wide variability-aware artifact ({!Family.build}, lazy,
    shared), from which any configuration is instantiated by a cheap
    mask/replay plus interned LL(k) classification instead of the full
    cold pipeline. Products are behavior-identical to {!generate}'s —
    same grammars, tokens, CSTs, errors and dispatch classifications —
    which the differential suite enforces. *)

val family : unit -> Family.t
(** The process-wide family artifact, built on first use. *)

val family_stats : unit -> Family.stats option
(** Stats of the artifact; [None] when nothing has forced its build. *)

val generate_family :
  ?label:string -> Feature.Config.t -> (generated, error) result
(** As {!generate}, through the family artifact: validate, mask/replay
    ({!Family.instantiate}), then specialize (scanner, left-factoring,
    engine generation with the interned classifier). *)

val generate_family_dialect : Dialects.Dialect.t -> (generated, error) result

val scan_tokens :
  generated -> string -> (Lexing_gen.Token.t array, error) result
(** Tokenize one statement into materialized [Token.t] records. The array
    ends with the [EOF] sentinel, so the statement's token count is
    [Array.length tokens - 1]. *)

val scan_soa :
  generated -> string -> (Lexing_gen.Scanner.soa, error) result
(** Tokenize into the scanner's per-domain struct-of-arrays arena: zero
    per-token allocation, invalidated by the next scan on the same domain.
    See {!Lexing_gen.Scanner.scan_soa}. *)

val parse_cst : generated -> string -> (Parser_gen.Cst.t, error) result
(** Scan and parse one statement to a concrete syntax tree (committed
    dispatch engine). *)

val parse_cst_vm : generated -> string -> (Parser_gen.Cst.t, error) result
(** As {!parse_cst}, on the bytecode VM over the SoA token stream: same
    CSTs, same errors, byte for byte. *)

val recognize : generated -> string -> (unit, error) result
(** Accept/reject one statement on the VM without building a CST — the
    zero-allocation accept path (no token records, no tree). Errors are
    identical to {!parse_cst}'s. *)

val parse_cst_fused : generated -> string -> (Parser_gen.Cst.t, error) result
(** As {!parse_cst_vm}, on the fused engine: the VM pulls token kinds from a
    scanner cursor, so the committed region of the statement is a single
    pass over the raw bytes with no up-front tokenization. The token stream
    is completed lazily only when memoized fallback or error reporting needs
    random access. Same CSTs, same errors, byte for byte. *)

val parse_cst_fused_counted :
  generated -> string -> int * (Parser_gen.Cst.t, error) result
(** {!parse_cst_fused} paired with the statement's token count (0 on a
    lexical error) — on the fused path the count is a by-product of the run,
    not a second scan. *)

val recognize_fused : generated -> string -> (unit, error) result
(** As {!recognize}, on the fused engine: one pass over the bytes, zero
    per-token allocation on the committed accept path. *)

val recognize_fused_counted :
  generated -> string -> int * (unit, error) result
(** {!recognize_fused} with the statement's token count. *)

val parse_statement : generated -> string -> (Sql_ast.Ast.statement, error) result
(** Scan, parse and lower one statement. *)

val accepts : generated -> string -> bool
(** Does the tailored parser accept the statement? (Lexical errors count as
    rejection: an unknown keyword simply is no keyword in the dialect.) *)

val dispatch_summary : generated -> Parser_gen.Engine.summary
(** Choice-point classification of the generated parser: how much of the
    (left-factored) grammar parses on committed LL(1)/LL(2) dispatch and
    which rules still need backtracking. *)

val emit_ocaml_parser : generated -> string
(** Source text of a standalone OCaml parser for the composed grammar
    (mirrors ANTLR's code generation). *)

(** Sessions: a generated front-end bound to an in-memory database. *)
type session

val session : generated -> session
val session_parser : session -> generated
val database : session -> Engine.Database.t

val run : session -> string -> (Engine.Executor.outcome, error) result
(** Parse and execute one statement. *)

val run_prepared :
  session -> string -> Engine.Value.t list ->
  (Engine.Executor.outcome, error) result
(** Parse a statement containing dynamic parameter markers ([?], the
    "Dynamic Parameters" feature), bind the given values positionally, and
    execute. *)

val run_script : session -> string list -> (Engine.Executor.outcome list, error) result
(** Run statements in order, stopping at the first error. *)

val split_statements : string -> string list
(** Split a script on top-level semicolons (string literals respected);
    blank statements are dropped. *)

val fold_statements :
  ?chunk_size:int ->
  read:(bytes -> int -> int -> int) ->
  ('a -> string -> 'a) ->
  'a ->
  'a
(** Streaming {!split_statements}: pull the script from [read] (a
    [Unix.read]-style function returning 0 at end of input) in
    [chunk_size]-byte chunks (default 64 KiB) and fold [f] over each
    completed statement. Yields exactly the statements
    [split_statements] would on the concatenated input, without ever
    holding the whole script: memory is bounded by [chunk_size] plus the
    largest single statement. *)

type stream_stats = {
  stream_statements : int;
  stream_tokens : int;
  stream_errors : int;
}

val recognize_stream :
  ?chunk_size:int ->
  generated ->
  read:(bytes -> int -> int -> int) ->
  stream_stats
(** Recognize every statement of a streamed script on the fused engine:
    fixed memory ceiling, one pass over the bytes per statement. Statements
    that fail (lexically or syntactically) are counted, not raised. *)
