type generated = {
  label : string;
  config : Feature.Config.t;
  grammar : Grammar.Cfg.t;
  tokens : Lexing_gen.Spec.set;
  scanner : Lexing_gen.Scanner.t;
  parser : Parser_gen.Engine.t;
  sequence : string list;
}

type error =
  | Compose_error of Compose.Composer.error
  | Generation_error of Parser_gen.Engine.gen_error
  | Lex_error of Lexing_gen.Scanner.error
  | Parse_error of Parser_gen.Engine.parse_error
  | Lowering_error of Lower.error
  | Execution_error of string

let pp_error ppf = function
  | Compose_error e -> Compose.Composer.pp_error ppf e
  | Generation_error e -> Parser_gen.Engine.pp_gen_error ppf e
  | Lex_error e -> Lexing_gen.Scanner.pp_error ppf e
  | Parse_error e -> Parser_gen.Engine.pp_parse_error ppf e
  | Lowering_error e -> Lower.pp_error ppf e
  | Execution_error msg -> Fmt.pf ppf "execution error: %s" msg

let ( let* ) = Result.bind

let generate ?(label = "custom") config =
  let* out =
    Result.map_error (fun e -> Compose_error e) (Sql.Model.compose config)
  in
  (* One interner spans scanner and parser, so the parser trusts the
     [kind_id] stamped on every token without re-hashing kind strings. *)
  let scanner = Lexing_gen.Scanner.create out.Compose.Composer.tokens in
  (* The engine runs on the left-factored grammar (same language, same
     CSTs, more committed dispatch points); the composed grammar is what
     [grammar] exposes for reports, printing and code emission. *)
  let factored, _ = Grammar.Factor.normalize out.Compose.Composer.grammar in
  let* parser =
    Result.map_error
      (fun e -> Generation_error e)
      (Parser_gen.Engine.generate
         ~interner:(Lexing_gen.Scanner.interner scanner)
         factored)
  in
  Ok
    {
      label;
      config;
      grammar = out.Compose.Composer.grammar;
      tokens = out.Compose.Composer.tokens;
      scanner;
      parser;
      sequence = out.Compose.Composer.sequence;
    }

let generate_dialect (d : Dialects.Dialect.t) =
  generate ~label:d.Dialects.Dialect.name d.Dialects.Dialect.config

(* The family artifact is process-wide and built on first use: the SQL
   product line has exactly one model/registry, so one variability-aware
   compilation serves every configuration the process will ever see. *)
let family_artifact =
  lazy
    (Family.build ~start:Sql.Model.start_symbol Sql.Model.model
       Sql.Model.registry)

let family () = Lazy.force family_artifact

let family_stats () =
  if Lazy.is_val family_artifact then
    Some (Family.stats (Lazy.force family_artifact))
  else None

let generate_family ?(label = "custom") config =
  let fam = Lazy.force family_artifact in
  let* out =
    Result.map_error (fun e -> Compose_error e) (Family.instantiate fam config)
  in
  Family.time_specialize fam @@ fun () ->
  let scanner = Lexing_gen.Scanner.create out.Compose.Composer.tokens in
  let factored, _ = Grammar.Factor.normalize out.Compose.Composer.grammar in
  let* parser =
    Result.map_error
      (fun e -> Generation_error e)
      (Parser_gen.Engine.generate
         ~interner:(Lexing_gen.Scanner.interner scanner)
         ~classify:(Family.Ilookahead.classifier factored)
         factored)
  in
  Ok
    {
      label;
      config;
      grammar = out.Compose.Composer.grammar;
      tokens = out.Compose.Composer.tokens;
      scanner;
      parser;
      sequence = out.Compose.Composer.sequence;
    }

let generate_family_dialect (d : Dialects.Dialect.t) =
  generate_family ~label:d.Dialects.Dialect.name d.Dialects.Dialect.config

let scan_tokens g sql =
  Result.map_error
    (fun e -> Lex_error e)
    (Lexing_gen.Scanner.scan_tokens g.scanner sql)

let scan_soa g sql =
  Result.map_error
    (fun e -> Lex_error e)
    (Lexing_gen.Scanner.scan_soa g.scanner sql)

let parse_cst g sql =
  let* tokens = scan_tokens g sql in
  Result.map_error
    (fun e -> Parse_error e)
    (Parser_gen.Engine.parse_tokens g.parser tokens)

let parse_cst_vm g sql =
  let* soa = scan_soa g sql in
  Result.map_error
    (fun e -> Parse_error e)
    (Parser_gen.Engine.parse_soa g.parser ~scanner:g.scanner soa)

let recognize g sql =
  let* soa = scan_soa g sql in
  Result.map_error
    (fun e -> Parse_error e)
    (Parser_gen.Engine.recognize_soa g.parser ~scanner:g.scanner soa)

(* Fused engine: the VM pulls token kinds from a scanner cursor, so the
   committed region of the statement is a single pass over the raw bytes.
   The counted variant also reports the statement's token count — the
   service layer's throughput stats need it, and on the fused path it is
   a by-product of the run rather than a second scan. *)
let fused_error = function
  | `Lex e -> Lex_error e
  | `Parse e -> Parse_error e

let parse_cst_fused_counted g sql =
  let count, result =
    Parser_gen.Engine.parse_fused g.parser ~scanner:g.scanner sql
  in
  (count, Result.map_error fused_error result)

let parse_cst_fused g sql = snd (parse_cst_fused_counted g sql)

let recognize_fused_counted g sql =
  let count, result =
    Parser_gen.Engine.recognize_fused g.parser ~scanner:g.scanner sql
  in
  (count, Result.map_error fused_error result)

let recognize_fused g sql = snd (recognize_fused_counted g sql)

let parse_statement g sql =
  let* cst = parse_cst g sql in
  Result.map_error (fun e -> Lowering_error e) (Lower.statement cst)

let accepts g sql = Result.is_ok (parse_cst g sql)
let dispatch_summary g = Parser_gen.Engine.summary g.parser

let emit_ocaml_parser g =
  Parser_gen.Codegen.emit
    ~module_doc:
      (Printf.sprintf "Generated parser for the %S feature configuration."
         g.label)
    g.grammar

type session = {
  front_end : generated;
  db : Engine.Database.t;
}

let session front_end = { front_end; db = Engine.Database.create () }
let session_parser s = s.front_end
let database s = s.db

let run s sql =
  let* stmt = parse_statement s.front_end sql in
  Result.map_error (fun m -> Execution_error m) (Engine.Database.execute s.db stmt)

let run_prepared s sql values =
  let* stmt = parse_statement s.front_end sql in
  let* bound =
    Result.map_error (fun m -> Execution_error m) (Engine.Params.bind stmt values)
  in
  Result.map_error (fun m -> Execution_error m) (Engine.Database.execute s.db bound)

(* Split a script on semicolons at top level (string literals respected). *)
let split_statements text =
  let buf = Buffer.create 128 in
  let out = ref [] in
  let in_string = ref false in
  String.iter
    (fun c ->
      if c = '\'' then begin
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if c = ';' && not !in_string then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    text;
  out := Buffer.contents buf :: !out;
  List.rev (List.filter (fun s -> String.trim s <> "") !out)

(* Streaming view of [split_statements]: consume input in fixed-size chunks
   from [read] and fold over completed statements without ever materializing
   the whole script. The splitting semantics are byte-for-byte those of
   [split_statements] — top-level [;] with ['] toggling string state, blank
   statements dropped — so a streamed script yields exactly the statement
   list reading the whole file would. Memory stays bounded by [chunk_size]
   plus the largest single statement (the carry-over buffer). *)
let fold_statements ?(chunk_size = 65536) ~read f acc =
  if chunk_size <= 0 then
    invalid_arg "Core.fold_statements: chunk_size must be positive";
  let chunk = Bytes.create chunk_size in
  let buf = Buffer.create 256 in
  let in_string = ref false in
  let acc = ref acc in
  let flush () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if String.trim s <> "" then acc := f !acc s
  in
  let rec drain () =
    let n = read chunk 0 chunk_size in
    if n > 0 then begin
      for i = 0 to n - 1 do
        let c = Bytes.unsafe_get chunk i in
        if c = '\'' then begin
          in_string := not !in_string;
          Buffer.add_char buf c
        end
        else if c = ';' && not !in_string then flush ()
        else Buffer.add_char buf c
      done;
      drain ()
    end
  in
  drain ();
  flush ();
  !acc

type stream_stats = {
  stream_statements : int;
  stream_tokens : int;
  stream_errors : int;
}

let recognize_stream ?chunk_size g ~read =
  fold_statements ?chunk_size ~read
    (fun s sql ->
      let count, result = recognize_fused_counted g sql in
      {
        stream_statements = s.stream_statements + 1;
        stream_tokens = s.stream_tokens + count;
        stream_errors =
          (s.stream_errors + if Result.is_ok result then 0 else 1);
      })
    { stream_statements = 0; stream_tokens = 0; stream_errors = 0 }

let run_script s statements =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | sql :: rest ->
      let* outcome = run s sql in
      go (outcome :: acc) rest
  in
  go [] statements
