(** Grammar normalization for prediction-compiled parsing.

    A composed grammar is written for readability of the fragments, not for
    determinism: many rules spell out alternatives that share a leading
    keyword ([ALTER TABLE ... | ALTER INDEX ...]), which forces an LL(1)
    predictor to give up on the whole rule even though one or two tokens
    decide the suffix. {!left_factor} rewrites such rules before engine
    generation so the conflict moves from the rule's alternatives (where the
    shared prefix hides the distinguishing token) into a nested group
    placed {e after} the prefix (where a single token commits).

    Both passes are applied to the {e composed} grammar, between
    {!Compose.Composer.compose} and {!Parser_gen.Engine.generate}; the
    original grammar is kept for reports, printing and code emission.

    {b CST preservation.} Left-factoring is exactly CST-preserving: only
    runs of {e adjacent} alternatives whose common prefix consists of plain
    terminal symbols are merged, and the shared prefix plus a
    [Group] of the residual suffixes produces the same flat child list
    under the same node label, enumerated in the same priority order (a
    terminal prefix has a single derivation, so factoring cannot reorder
    the derivation enumeration the backtracking engines perform). The
    differential suite verifies this tree-for-tree. Parse-{e error}
    positions are also preserved; the {e expected} token set at a failure
    may widen to a superset (a pruned group records the whole FIRST set of
    a residual suffix where the unfactored grammar silently skipped an
    optional prefix of it).

    {!inline_trivial} is {e not} CST-preserving — replacing a reference to
    a unit rule [b : c] with [c] removes the [b] node from the tree — so it
    is opt-in ({!normalize} applies it only when asked) and is exercised by
    the differential suite with all engines running the same inlined
    grammar. *)

type stats = {
  factored_runs : int;
      (** adjacent alternative runs merged under a common terminal prefix *)
  factored_rules : int;  (** rules in which at least one run was merged *)
  inlined_refs : int;    (** references to unit rules replaced *)
  inlined_rules : int;   (** unit rules removed from the grammar *)
}

val left_factor : Cfg.t -> Cfg.t * stats
(** Left-factor every rule (and, recursively, every nested group): maximal
    runs of adjacent alternatives that start with the same terminal are
    replaced by one alternative carrying the longest common terminal
    prefix followed by a group of the residual suffixes, themselves
    factored recursively. Alternatives whose head is not a terminal are
    never moved or merged, so ordered-choice priority is unchanged. *)

val inline_trivial : Cfg.t -> Cfg.t * stats
(** Inline unit rules: a rule with exactly one alternative consisting of a
    single symbol ([b : c] or [b : "T"]) is removed and every reference to
    it replaced by that symbol. Chains ([a : b], [b : c]) are resolved;
    cyclic unit rules and the start symbol are left alone. Changes the CST
    (the inlined rule's node disappears); see the module preamble. *)

val normalize : ?inline:bool -> Cfg.t -> Cfg.t * stats
(** [normalize g] is {!left_factor} after (optionally) {!inline_trivial}.
    [inline] defaults to [false] — the CST-preserving pipeline used by
    {!Core.generate}. *)
