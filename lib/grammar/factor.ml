type stats = {
  factored_runs : int;
  factored_rules : int;
  inlined_refs : int;
  inlined_rules : int;
}

let no_stats =
  { factored_runs = 0; factored_rules = 0; inlined_refs = 0; inlined_rules = 0 }

(* ------------------------------------------------------------------ *)
(* Left factoring                                                      *)
(* ------------------------------------------------------------------ *)

let head_terminal = function
  | Production.Sym (Symbol.Terminal t) :: _ -> Some t
  | _ -> None

(* Longest common prefix of plain terminal symbols over a run of
   alternatives that is already known to share its first terminal. *)
let rec common_terminal_prefix alts =
  let heads = List.map head_terminal alts in
  match heads with
  | Some t :: rest when List.for_all (function Some u -> String.equal u t | None -> false) rest
    -> t :: common_terminal_prefix (List.map List.tl alts)
  | _ -> []

let rec drop k xs = if k = 0 then xs else drop (k - 1) (List.tl xs)

(* Factor one ordered alternative list. Only maximal runs of *adjacent*
   alternatives with the same leading terminal are merged: a terminal
   prefix has a single derivation, so pulling it out cannot reorder the
   derivation enumeration, and [Group] introduces no CST node, so the
   child list under the rule's node is unchanged. *)
let rec factor_alts runs alts =
  match alts with
  | [] -> []
  | a :: rest -> (
    match head_terminal a with
    | None -> a :: factor_alts runs rest
    | Some t ->
      let run, others =
        let rec take acc = function
          | b :: more when head_terminal b = Some t -> take (b :: acc) more
          | more -> (List.rev acc, more)
        in
        take [ a ] rest
      in
      if List.length run < 2 then a :: factor_alts runs others
      else begin
        incr runs;
        let prefix = common_terminal_prefix run in
        let np = List.length prefix in
        let suffixes = factor_alts runs (List.map (drop np) run) in
        let tail =
          match suffixes with
          | [ s ] -> s (* inner factoring merged the whole run: no choice left *)
          | _ -> [ Production.Group suffixes ]
        in
        let head =
          List.map (fun u -> Production.Sym (Symbol.Terminal u)) prefix
        in
        (head @ tail) :: factor_alts runs others
      end)

(* Recurse into nested constructs so groups produced by composition (and by
   factoring itself) are normalized too. *)
let rec factor_term runs = function
  | Production.Sym _ as s -> s
  | Production.Opt ts -> Production.Opt (factor_seq runs ts)
  | Production.Star ts -> Production.Star (factor_seq runs ts)
  | Production.Plus ts -> Production.Plus (factor_seq runs ts)
  | Production.Group alts ->
    Production.Group (factor_alts runs (List.map (factor_seq runs) alts))

and factor_seq runs ts = List.map (factor_term runs) ts

let left_factor (g : Cfg.t) =
  let total_runs = ref 0 in
  let touched = ref 0 in
  let rules =
    List.map
      (fun (r : Production.t) ->
        let runs = ref 0 in
        let alts = factor_alts runs (List.map (factor_seq runs) r.alts) in
        if !runs > 0 then begin
          incr touched;
          total_runs := !total_runs + !runs
        end;
        Production.make r.lhs alts)
      g.rules
  in
  ( Cfg.make ~start:g.start rules,
    { no_stats with factored_runs = !total_runs; factored_rules = !touched } )

(* ------------------------------------------------------------------ *)
(* Unit-rule inlining (opt-in: removes the unit rule's CST node)       *)
(* ------------------------------------------------------------------ *)

let inline_trivial (g : Cfg.t) =
  let unit_body (r : Production.t) =
    match r.alts with
    | [ [ Production.Sym s ] ] when not (String.equal r.lhs g.start) -> Some s
    | _ -> None
  in
  let units =
    List.filter_map
      (fun r -> Option.map (fun s -> (r.Production.lhs, s)) (unit_body r))
      g.rules
  in
  (* Resolve chains (a : b, b : c => a maps to c); a cycle of unit rules
     derives nothing useful and is left untouched. *)
  let rec resolve seen s =
    match s with
    | Symbol.Terminal _ -> Some s
    | Symbol.Nonterminal n -> (
      if List.mem n seen then None
      else
        match List.assoc_opt n units with
        | None -> Some s
        | Some next -> resolve (n :: seen) next)
  in
  let resolved =
    List.filter_map
      (fun (lhs, s) -> Option.map (fun s' -> (lhs, s')) (resolve [ lhs ] s))
      units
  in
  let refs = ref 0 in
  let subst = function
    | Symbol.Nonterminal n as s -> (
      match List.assoc_opt n resolved with
      | Some s' ->
        incr refs;
        s'
      | None -> s)
    | s -> s
  in
  let rec subst_term = function
    | Production.Sym s -> Production.Sym (subst s)
    | Production.Opt ts -> Production.Opt (subst_seq ts)
    | Production.Star ts -> Production.Star (subst_seq ts)
    | Production.Plus ts -> Production.Plus (subst_seq ts)
    | Production.Group alts -> Production.Group (List.map subst_seq alts)
  and subst_seq ts = List.map subst_term ts in
  let rules =
    List.filter_map
      (fun (r : Production.t) ->
        if List.mem_assoc r.lhs resolved then None
        else
          Some (Production.make r.lhs (List.map subst_seq r.alts)))
      g.rules
  in
  ( Cfg.make ~start:g.start rules,
    { no_stats with inlined_refs = !refs; inlined_rules = List.length resolved }
  )

let normalize ?(inline = false) g =
  let g, si =
    if inline then inline_trivial g else (g, no_stats)
  in
  let g, sf = left_factor g in
  ( g,
    {
      factored_runs = sf.factored_runs;
      factored_rules = sf.factored_rules;
      inlined_refs = si.inlined_refs;
      inlined_rules = si.inlined_rules;
    } )
