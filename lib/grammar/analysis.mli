(** Static analysis of EBNF grammars: nullability, FIRST and FOLLOW sets,
    LL(1) conflict detection and left-recursion detection.

    These analyses serve two purposes in the reproduction: they drive the
    FIRST-set pruning of the generated parsers (standing in for ANTLR's LL(k)
    prediction), and they power the grammar reports that let a product-line
    engineer judge whether a composed grammar is still deterministic. *)

module String_set : Set.S with type elt = string
module String_map : Map.S with type key = string

type t = {
  nullable : String_set.t;              (** non-terminals deriving epsilon *)
  first : String_set.t String_map.t;    (** FIRST sets per non-terminal *)
  follow : String_set.t String_map.t;   (** FOLLOW sets per non-terminal *)
}

val compute : Cfg.t -> t
(** Fixpoint computation of all three analyses directly on the EBNF structure
    (no desugaring to plain BNF). FOLLOW of the start symbol contains
    ["EOF"]. *)

val seq_nullable : t -> Cfg.t -> Production.alt -> bool
(** Whether a term sequence can derive the empty string. *)

val seq_first : t -> Cfg.t -> Production.alt -> String_set.t
(** FIRST set of a term sequence. *)

type conflict = {
  lhs : string;
  alt_a : int;        (** index of the first conflicting alternative *)
  alt_b : int;        (** index of the second conflicting alternative *)
  overlap : String_set.t;  (** terminals predicting both alternatives *)
}

val ll1_conflicts : Cfg.t -> conflict list
(** Pairs of alternatives of a rule whose prediction sets (FIRST, extended
    with FOLLOW for nullable alternatives) overlap: the places where an LL(1)
    parser needs more lookahead or backtracking. *)

val pp_conflict : conflict Fmt.t
(** One-line rendering: rule, alternative indices and the overlapping
    terminal set. *)

val pp_conflict_in : Cfg.t -> conflict Fmt.t
(** Grammar-aware rendering: like {!pp_conflict}, followed by the body of
    each conflicting alternative (looked up in the grammar) so the reader
    sees which productions compete for the overlapping terminals. *)

val left_recursive : Cfg.t -> string list
(** Non-terminals involved in (direct or indirect) left recursion, which the
    parser generator rejects — as LL(k) generators such as ANTLR do. *)

val first_of_alt : t -> Cfg.t -> Production.alt -> String_set.t
(** Alias of {!seq_first}, exported under the name used by the parser
    engine. *)
