exception Unproductive of string

let inf = max_int
let lift h = if h >= inf then inf else h + 1

(* Minimal derivation height per non-terminal: 1 + the smallest over the
   rule's alternatives of the largest height among the alternative's
   required non-terminals (optional and starred groups can always derive
   epsilon and cost nothing). Undefined or unproductive non-terminals keep
   height [inf]. Expanding a non-terminal through a minimal alternative
   strictly decreases the height, which is what guarantees termination of
   the fallback phase. *)
let heights (g : Cfg.t) =
  let h = Hashtbl.create 64 in
  let height nt = Option.value ~default:inf (Hashtbl.find_opt h nt) in
  let rec term_height = function
    | Production.Sym (Symbol.Terminal _) -> 0
    | Production.Sym (Symbol.Nonterminal nt) -> height nt
    | Production.Opt _ | Production.Star _ -> 0
    | Production.Plus ts -> seq_height ts
    | Production.Group alts ->
      List.fold_left (fun acc ts -> min acc (seq_height ts)) inf alts
  and seq_height ts =
    List.fold_left (fun acc t -> max acc (term_height t)) 0 ts
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (rule : Production.t) ->
        let best =
          List.fold_left (fun acc alt -> min acc (seq_height alt)) inf rule.alts
        in
        let best = lift best in
        if best < height rule.lhs then begin
          Hashtbl.replace h rule.lhs best;
          changed := true
        end)
      g.Cfg.rules
  done;
  (height, seq_height)

let sentence ~rand ?start ?(budget = 40) (g : Cfg.t) =
  let height, seq_height = heights g in
  let start = Option.value ~default:g.Cfg.start start in
  if height start >= inf then raise (Unproductive start);
  let fuel = ref budget in
  let out = ref [] in
  let emit name =
    decr fuel;
    out := name :: !out
  in
  let pick_uniform xs = List.nth xs (Random.State.int rand (List.length xs)) in
  let pick_minimal alts =
    let best = List.fold_left (fun acc ts -> min acc (seq_height ts)) inf alts in
    List.find (fun ts -> seq_height ts = best) alts
  in
  let rec expand_nt nt =
    match Cfg.find g nt with
    | None -> raise (Unproductive nt)
    | Some rule ->
      decr fuel;
      let alt =
        if !fuel > 0 then pick_uniform rule.Production.alts
        else if height nt >= inf then raise (Unproductive nt)
        else pick_minimal rule.Production.alts
      in
      expand_seq alt
  and expand_seq ts = List.iter expand_term ts
  and expand_term = function
    | Production.Sym (Symbol.Terminal name) -> emit name
    | Production.Sym (Symbol.Nonterminal nt) -> expand_nt nt
    | Production.Opt ts ->
      if !fuel > 0 && Random.State.bool rand then expand_seq ts
    | Production.Star ts ->
      if !fuel > 0 then
        for _ = 1 to Random.State.int rand 3 do
          expand_seq ts
        done
    | Production.Plus ts ->
      expand_seq ts;
      if !fuel > 0 && Random.State.bool rand then expand_seq ts
    | Production.Group alts ->
      if alts <> [] then
        expand_seq
          (if !fuel > 0 then pick_uniform alts else pick_minimal alts)
  in
  expand_nt start;
  List.rev !out

let sentences ~seed ?start ?(budget = 40) ~count (g : Cfg.t) =
  let rand = Random.State.make [| seed |] in
  List.init count (fun i ->
      let budget = max 1 (budget / 4) + (i mod 4 * (budget / 4)) in
      sentence ~rand ?start ~budget g)
