(** Grammar-driven sentence sampling.

    [sentence] draws a random derivation from a grammar and returns the
    terminal names of its yield, in order. Any returned sentence is in the
    grammar's language by construction, which makes the sampler the positive
    half of conformance testing: every sentence sampled from a tailored
    grammar must be accepted by the parser generated from it (and, by
    subset containment, by any parser generated from a superset grammar).

    Sampling is budgeted: while budget remains, alternatives are chosen
    uniformly, optional groups are flipped and repetitions run 0–2 times;
    once the budget is exhausted the sampler switches to the precomputed
    {e minimal} derivation of every non-terminal (the alternative with the
    smallest derivation height), so generation always terminates, even on
    deeply recursive grammars. Unproductive non-terminals (those with no
    finite derivation) raise — composed grammars that pass the coherence
    check never contain any. *)

exception Unproductive of string
(** Raised when the requested start symbol (or a non-terminal reachable from
    it) has no finite derivation. *)

val sentence :
  rand:Random.State.t -> ?start:string -> ?budget:int -> Cfg.t -> string list
(** [sentence ~rand g] is the terminal-name yield of one random derivation
    from [g]'s start symbol (or [start]). [budget] (default [40]) bounds the
    free-choice phase: roughly the number of terminals emitted plus
    non-terminal expansions before the sampler falls back to minimal
    derivations. Deterministic in [rand]'s state. *)

val sentences :
  seed:int -> ?start:string -> ?budget:int -> count:int -> Cfg.t ->
  string list list
(** [sentences ~seed ~count g] draws [count] sentences from one PRNG seeded
    with [seed]; sizes are varied by cycling the budget over
    [budget/4 .. budget]. *)
