(* Lint.Lookahead's FIRST_k / FOLLOW_k fixpoints and Predict's claim
   tables, recomputed over bitset-represented sequence sets. A set of
   token sequences of length <= 2 over [n] interned terminal kinds is

     eps      : does the set contain the empty sequence
     singles  : n-bit plane, bit [a] for sequence [a]
     pairs    : n x n bit plane (row-major), bit [a, c] for [a; c]

   which is a canonical representation: two sets are equal exactly when
   their planes are. Every operation below mirrors its counterpart in
   Lint.Lookahead set-theoretically — the string version's
   [take k (x @ y)] case analysis becomes plane algebra:

     concat_1 a b = { eps     = a.eps && b.eps
                    ; singles = a.singles | (a.eps ? b.singles) }
     concat_2 a b = { eps     = a.eps && b.eps
                    ; singles = (b.eps ? a.singles) | (a.eps ? b.singles)
                    ; pairs   = a.pairs | (a.eps ? b.pairs)
                              | row s := heads(b)  for each single s of a }

   where heads(b) marks the first token of every non-empty sequence of
   [b]. Two algorithmic liberties are taken relative to the string
   version, both sound because FIRST_k and FOLLOW_k are least fixpoints
   of monotone equations (the solution is unique, so any fair iteration
   strategy converges to the same sets):
   - FIRST iterates a dependency worklist instead of whole-grammar
     Jacobi passes;
   - FOLLOW and prediction memoize FIRST_k of alternatives and star
     closures, which are pure once FIRST has converged. *)

exception Unknown_terminal

(* Bit planes use 63-bit words (OCaml's native int). *)
let word_bits = 63

module Bset = struct
  type t = {
    mutable eps : bool;  (* mutated only by [grow], on privately owned sets *)
    singles : int array;  (* sw words over n bits *)
    mutable pairs : int array;
        (* n * sw words, row-major; [||] means all-zero — the pairs plane
           is only materialized once a set actually contains a pair, so
           the singletons and epsilon sets that dominate the fixpoint
           iteration stay a handful of words instead of n rows *)
  }

  let words n = (n + word_bits - 1) / word_bits
  let no_pairs p = Array.length p = 0
  let all_zero p = Array.for_all (fun w -> w = 0) p

  let empty ~k:_ ~n =
    { eps = false; singles = Array.make (words n) 0; pairs = [||] }

  let eps_set ~k ~n =
    let s = empty ~k ~n in
    s.eps <- true;
    s

  let singleton1 ~k ~n a =
    let s = empty ~k ~n in
    s.singles.(a / word_bits) <-
      s.singles.(a / word_bits) lor (1 lsl (a mod word_bits));
    s

  let copy s =
    { eps = s.eps; singles = Array.copy s.singles; pairs = Array.copy s.pairs }

  (* Shares planes: callers treat sets as immutable ([grow] only ever
     targets the FOLLOW table's privately owned accumulator entries). *)
  let with_eps s =
    if s.eps then s else { eps = true; singles = s.singles; pairs = s.pairs }

  let or_into dst src =
    let changed = ref false in
    for i = 0 to Array.length src - 1 do
      let w = dst.(i) lor src.(i) in
      if w <> dst.(i) then begin
        dst.(i) <- w;
        changed := true
      end
    done;
    !changed

  let union_pairs a b =
    if no_pairs a then Array.copy b
    else if no_pairs b then Array.copy a
    else begin
      let p = Array.copy a in
      ignore (or_into p b);
      p
    end

  let union a b =
    let singles = Array.copy a.singles in
    ignore (or_into singles b.singles);
    { eps = a.eps || b.eps; singles; pairs = union_pairs a.pairs b.pairs }

  (* Union [src] into a privately owned accumulator; true when it grew —
     the change detection driving the FOLLOW fixpoint. *)
  let grow dst src =
    let c1 = or_into dst.singles src.singles in
    let c2 =
      if no_pairs src.pairs then false
      else if no_pairs dst.pairs then
        if all_zero src.pairs then false
        else begin
          dst.pairs <- Array.copy src.pairs;
          true
        end
      else or_into dst.pairs src.pairs
    in
    let c3 = src.eps && not dst.eps in
    if c3 then dst.eps <- true;
    c1 || c2 || c3

  let equal a b =
    a.eps = b.eps
    && a.singles = b.singles
    && (if Array.length a.pairs = Array.length b.pairs then a.pairs = b.pairs
        else all_zero a.pairs && all_zero b.pairs)

  (* First token of every non-empty sequence: the singles plane plus a
     bit for every non-empty pairs row. *)
  let heads ~n a =
    let sw = words n in
    let h = Array.copy a.singles in
    if not (no_pairs a.pairs) then
      for r = 0 to n - 1 do
        let base = r * sw in
        let nonzero = ref false in
        for i = base to base + sw - 1 do
          if a.pairs.(i) <> 0 then nonzero := true
        done;
        if !nonzero then h.(r / word_bits) <- h.(r / word_bits) lor (1 lsl (r mod word_bits))
      done;
    h

  let concat ~k ~n a b =
    let sw = words n in
    if k = 1 then begin
      let singles = Array.copy a.singles in
      if a.eps then ignore (or_into singles b.singles);
      { eps = a.eps && b.eps; singles; pairs = [||] }
    end
    else begin
      let singles = if b.eps then Array.copy a.singles else Array.make sw 0 in
      if a.eps then ignore (or_into singles b.singles);
      let res = { eps = a.eps && b.eps; singles; pairs = [||] } in
      if not (no_pairs a.pairs) then res.pairs <- Array.copy a.pairs;
      if a.eps && not (no_pairs b.pairs) then
        if no_pairs res.pairs then res.pairs <- Array.copy b.pairs
        else ignore (or_into res.pairs b.pairs);
      (* every single s of a extends with the head of every non-empty
         continuation: row s |= heads b *)
      if Array.exists (fun w -> w <> 0) a.singles then begin
        let h = heads ~n b in
        if Array.exists (fun w -> w <> 0) h then begin
          if no_pairs res.pairs then res.pairs <- Array.make (n * sw) 0;
          let pairs = res.pairs in
          for s = 0 to n - 1 do
            if a.singles.(s / word_bits) land (1 lsl (s mod word_bits)) <> 0
            then begin
              let base = s * sw in
              for i = 0 to sw - 1 do
                pairs.(base + i) <- pairs.(base + i) lor h.(i)
              done
            end
          done
        end
      end;
      res
    end

  let star_closure ~k ~n s =
    let rec fix acc =
      let acc' = union acc (concat ~k ~n s acc) in
      if equal acc acc' then acc else fix acc'
    in
    fix (eps_set ~k ~n)

  let iter_singles ~n f a =
    for s = 0 to n - 1 do
      if a.singles.(s / word_bits) land (1 lsl (s mod word_bits)) <> 0 then f s
    done

  let iter_pairs ~n f a =
    let sw = words n in
    if Array.length a.pairs > 0 then
      for r = 0 to n - 1 do
        let base = r * sw in
        for i = 0 to sw - 1 do
          let w = a.pairs.(base + i) in
          if w <> 0 then
            for b = 0 to word_bits - 1 do
              if w land (1 lsl b) <> 0 then f r ((i * word_bits) + b)
            done
        done
      done
end

let rec term_first ~k ~n ~tid env = function
  | Grammar.Production.Sym (Grammar.Symbol.Terminal t) ->
    Bset.singleton1 ~k ~n (tid t)
  | Grammar.Production.Sym (Grammar.Symbol.Nonterminal nt) -> (
    match Hashtbl.find_opt env nt with
    | Some s -> s
    | None -> Bset.empty ~k ~n)
  | Grammar.Production.Opt ts -> Bset.with_eps (alt_first ~k ~n ~tid env ts)
  | Grammar.Production.Star ts ->
    Bset.star_closure ~k ~n (alt_first ~k ~n ~tid env ts)
  | Grammar.Production.Plus ts ->
    let f = alt_first ~k ~n ~tid env ts in
    Bset.concat ~k ~n f (Bset.star_closure ~k ~n f)
  | Grammar.Production.Group alts ->
    List.fold_left
      (fun acc a -> Bset.union acc (alt_first ~k ~n ~tid env a))
      (Bset.empty ~k ~n) alts

and alt_first ~k ~n ~tid env = function
  | [] -> Bset.eps_set ~k ~n
  | term :: rest ->
    Bset.concat ~k ~n (term_first ~k ~n ~tid env term)
      (alt_first ~k ~n ~tid env rest)

let rec term_nonterminals acc = function
  | Grammar.Production.Sym (Grammar.Symbol.Terminal _) -> acc
  | Grammar.Production.Sym (Grammar.Symbol.Nonterminal nt) -> nt :: acc
  | Grammar.Production.Opt ts
  | Grammar.Production.Star ts
  | Grammar.Production.Plus ts ->
    List.fold_left term_nonterminals acc ts
  | Grammar.Production.Group alts ->
    List.fold_left (List.fold_left term_nonterminals) acc alts

(* Worklist Gauss-Seidel: recompute a rule's FIRST when a non-terminal it
   references changed. Same least fixpoint as the string version's Jacobi
   sweeps (the equations are monotone over a finite lattice). *)
let compute_first ~k ~n ~tid (g : Grammar.Cfg.t) =
  let rules = Array.of_list g.rules in
  let nrules = Array.length rules in
  let rule_of_lhs = Hashtbl.create (2 * nrules) in
  Array.iteri
    (fun i (r : Grammar.Production.t) ->
      if not (Hashtbl.mem rule_of_lhs r.lhs) then
        Hashtbl.add rule_of_lhs r.lhs i)
    rules;
  let dependents = Array.make nrules [] in
  Array.iteri
    (fun i (r : Grammar.Production.t) ->
      let refs =
        List.sort_uniq String.compare
          (List.fold_left (List.fold_left term_nonterminals) [] r.alts)
      in
      List.iter
        (fun nt ->
          match Hashtbl.find_opt rule_of_lhs nt with
          | Some j -> dependents.(j) <- i :: dependents.(j)
          | None -> ())
        refs)
    rules;
  Array.iteri (fun i ds -> dependents.(i) <- List.rev ds) dependents;
  let env : (string, Bset.t) Hashtbl.t = Hashtbl.create (2 * nrules) in
  let queue = Queue.create () in
  let queued = Array.make nrules false in
  Array.iteri
    (fun i _ ->
      queued.(i) <- true;
      Queue.add i queue)
    rules;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    queued.(i) <- false;
    let r = rules.(i) in
    let cur =
      match Hashtbl.find_opt env r.lhs with
      | Some s -> s
      | None -> Bset.empty ~k ~n
    in
    let f =
      List.fold_left
        (fun s a -> Bset.union s (alt_first ~k ~n ~tid env a))
        cur r.alts
    in
    if not (Bset.equal cur f) then begin
      Hashtbl.replace env r.lhs f;
      List.iter
        (fun j ->
          if not queued.(j) then begin
            queued.(j) <- true;
            Queue.add j queue
          end)
        dependents.(i)
    end
  done;
  env

(* Memoized FIRST_k of alternatives / star closures over the *converged*
   FIRST map — pure, so caching is observationally invisible. Keys are the
   structural term lists (suffixes and branch phrases reuse them heavily in
   FOLLOW's fixpoint and in prediction). *)
let memoized_first ~k ~n ~tid env =
  let first_memo : (Grammar.Production.alt, Bset.t) Hashtbl.t =
    Hashtbl.create 512
  in
  let star_memo : (Grammar.Production.alt, Bset.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let first_of alt =
    match Hashtbl.find_opt first_memo alt with
    | Some s -> s
    | None ->
      let s = alt_first ~k ~n ~tid env alt in
      Hashtbl.replace first_memo alt s;
      s
  in
  let star_of ts =
    match Hashtbl.find_opt star_memo ts with
    | Some s -> s
    | None ->
      let s = Bset.star_closure ~k ~n (first_of ts) in
      Hashtbl.replace star_memo ts s;
      s
  in
  (first_of, star_of)

let compute_follow ~k ~n ~first_of ~star_of ~eof (g : Grammar.Cfg.t) =
  let follow : (string, Bset.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace follow g.start (Bset.singleton1 ~k ~n eof);
  let changed = ref true in
  let lookup nt =
    match Hashtbl.find_opt follow nt with
    | Some s -> s
    | None -> Bset.empty ~k ~n
  in
  let add nt set =
    match Hashtbl.find_opt follow nt with
    | None ->
      (* copy: [set] is shared (a memoized FIRST or a caller's tail) *)
      Hashtbl.replace follow nt (Bset.copy set);
      changed := true
    | Some cur -> if Bset.grow cur set then changed := true
  in
  let rec walk_seq lhs seq cont =
    match seq with
    | [] -> ()
    | term :: rest ->
      let tail = Bset.concat ~k ~n (first_of rest) cont in
      walk_term lhs term tail;
      walk_seq lhs rest cont
  and walk_term lhs term cont =
    match term with
    | Grammar.Production.Sym (Grammar.Symbol.Terminal _) -> ()
    | Grammar.Production.Sym (Grammar.Symbol.Nonterminal nt) -> add nt cont
    | Grammar.Production.Opt ts -> walk_seq lhs ts cont
    | Grammar.Production.Star ts | Grammar.Production.Plus ts ->
      (* Inside a repetition the phrase may be followed by further
         iterations of itself before the outer continuation. *)
      walk_seq lhs ts (Bset.concat ~k ~n (star_of ts) cont)
    | Grammar.Production.Group alts ->
      List.iter (fun a -> walk_seq lhs a cont) alts
  in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Grammar.Production.t) ->
        (* snapshot: [add] mutates entries in place, and the walk must
           see one consistent FOLLOW(lhs) per alternative sweep *)
        let frozen = Bset.copy (lookup r.lhs) in
        List.iter (fun a -> walk_seq r.lhs a frozen) r.alts)
      g.rules
  done;
  follow

type tables = {
  k : int;
  n : int;
  first_of : Grammar.Production.alt -> Bset.t;
  follow : (string, Bset.t) Hashtbl.t;
}

let predict la ~lhs alt =
  let fol =
    match Hashtbl.find_opt la.follow lhs with
    | Some s -> s
    | None -> Bset.empty ~k:la.k ~n:la.n
  in
  Bset.concat ~k:la.k ~n:la.n (la.first_of alt) fol

type t = {
  n : int;
  eof : int;
  la1 : tables;
  la2 : tables Lazy.t;
}

let make ~term_id ~n_terms (g : Grammar.Cfg.t) =
  match term_id "EOF" with
  | None -> None
  | Some eof -> (
    let tid name =
      match term_id name with
      | Some id -> id
      | None -> raise Unknown_terminal
    in
    let tables k =
      let env = compute_first ~k ~n:n_terms ~tid g in
      let first_of, star_of = memoized_first ~k ~n:n_terms ~tid env in
      let follow = compute_follow ~k ~n:n_terms ~first_of ~star_of ~eof g in
      { k; n = n_terms; first_of; follow }
    in
    (* The eager k = 1 pass visits every terminal occurrence of the
       grammar, so an un-interned terminal surfaces here — the lazy k = 2
       pass walks the same symbols and cannot raise later. *)
    try Some { n = n_terms; eof; la1 = tables 1; la2 = lazy (tables 2) }
    with Unknown_terminal -> None)

exception Conflict

(* Mirrors Predict.try1: k = 1 prediction sets hold only the empty
   sequence (padded to EOF, exactly Predict.seq_ids) and singletons. *)
let try1 t sets =
  let table = Array.make t.n (-1) in
  let claim id b =
    if table.(id) = -1 then table.(id) <- b
    else if table.(id) <> b then raise Conflict
  in
  try
    List.iteri
      (fun b (set : Bset.t) ->
        if set.Bset.eps then claim t.eof b;
        Bset.iter_singles ~n:t.n (fun s -> claim s b) set)
      sets;
    Some (Parser_gen.Predict.Commit1 table)
  with Conflict -> None

(* Mirrors Predict.try2, including the collapse to a first-token table
   with per-token second rows. The collapse is order-independent (each
   first token is visited once; second-row entries have distinct keys),
   so hash iteration order cannot make the tables diverge. *)
let try2 t sets =
  let pairs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let claim a c b =
    let key = (a * t.n) + c in
    match Hashtbl.find_opt pairs key with
    | None -> Hashtbl.replace pairs key b
    | Some b' -> if b' <> b then raise Conflict
  in
  try
    List.iteri
      (fun b (set : Bset.t) ->
        if set.Bset.eps then claim t.eof t.eof b;
        Bset.iter_singles ~n:t.n (fun s -> claim s t.eof b) set;
        Bset.iter_pairs ~n:t.n (fun a c -> claim a c b) set)
      sets;
    let tbl1 = Array.make t.n (-1) in
    let by_first : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun key b ->
        let a = key / t.n and c = key mod t.n in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_first a) in
        Hashtbl.replace by_first a ((c, b) :: prev))
      pairs;
    let second : (int, int array) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun a entries ->
        let branches = List.sort_uniq compare (List.map snd entries) in
        match branches with
        | [ b ] -> tbl1.(a) <- b
        | _ ->
          tbl1.(a) <- -2;
          let row = Array.make t.n (-1) in
          List.iter (fun (c, b) -> row.(c) <- b) entries;
          Hashtbl.replace second a row)
      by_first;
    Some (Parser_gen.Predict.Commit2 (tbl1, second))
  with Conflict -> None

let decide t ~lhs branches =
  match branches with
  | [] | [ _ ] -> Parser_gen.Predict.Always
  | _ -> (
    let predicts la = List.map (fun alt -> predict la ~lhs alt) branches in
    match try1 t (predicts t.la1) with
    | Some d -> d
    | None -> (
      match try2 t (predicts (Lazy.force t.la2)) with
      | Some d -> d
      | None -> Parser_gen.Predict.Fallback))

let classifier g =
  let ctx = ref None in
  fun ~term_id ~n_terms ~lhs branches ->
    let c =
      match !ctx with
      | Some c -> c
      | None ->
        let c =
          match make ~term_id ~n_terms g with
          | Some fast -> `Interned fast
          | None -> `Strings (Parser_gen.Predict.make ~term_id ~n_terms g)
        in
        ctx := Some c;
        c
    in
    match c with
    | `Interned fast -> decide fast ~lhs branches
    | `Strings slow -> Parser_gen.Predict.decide slow ~lhs branches
