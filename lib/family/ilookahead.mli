(** Interned LL(k ≤ 2) choice-point classification.

    The per-config specialization step must reproduce the cold pipeline's
    dispatch classification {e exactly} — the differential gate compares
    dispatch summaries and parse behavior byte for byte — but
    {!Lint.Lookahead}'s string-list sequence sets dominate cold generation
    time (the k = 2 fixpoint is ~95% of a cold [Core.generate] on the full
    dialect). This module recomputes the same least fixpoints over bitset
    planes: a set of token sequences of length ≤ 2 over [n] interned
    terminal kinds is an epsilon flag, an [n]-bit singles plane (bit [a]
    for the sequence [\[a\]]) and a lazily materialized [n × n] pairs
    plane (bit [(a, c)] for [\[a; c\]]), so unions, concatenations and
    change detection are word-parallel instead of element-wise.

    Exactness: the planes are a canonical representation of exactly the
    string sequence sets {!Lint.Lookahead} manipulates (restricted to
    interned terminals), and every operation ([concat_k] as plane algebra,
    star closure, the FIRST/FOLLOW fixpoints, prediction) mirrors its
    counterpart in {!Lint.Lookahead} set for set. Least-fixpoint
    uniqueness makes the iteration order irrelevant; set equality of the
    prediction sets then forces {!Parser_gen.Predict.decide}'s claim
    tables to come out identical. When some grammar terminal is {e not}
    interned, {!make} returns [None] and the caller falls back to the
    string path — which handles that case by classifying the affected
    points [Fallback]. *)

type t

val make :
  term_id:(string -> int option) -> n_terms:int -> Grammar.Cfg.t -> t option
(** Build the k = 1 tables eagerly (k = 2 lazily, forced by the first
    k = 1 conflict — same staging as {!Parser_gen.Predict.make}). [None]
    when ["EOF"] or any terminal of the grammar has no interned id. *)

val decide :
  t -> lhs:string -> Grammar.Production.alt list -> Parser_gen.Predict.decision
(** Drop-in replacement for {!Parser_gen.Predict.decide}: same decisions,
    same dense tables, on the interned analysis. *)

val classifier :
  Grammar.Cfg.t ->
  term_id:(string -> int option) ->
  n_terms:int ->
  lhs:string ->
  Grammar.Production.alt list ->
  Parser_gen.Predict.decision
(** A [?classify] oracle for {!Parser_gen.Engine.generate}, closed over
    lazily-built analysis state for [grammar] (the engine's left-factored
    grammar): the first call builds the interned tables — or the
    string-based {!Parser_gen.Predict} context if {!make} declines — and
    subsequent calls reuse them. *)
