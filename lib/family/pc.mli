(** Presence conditions over the feature model.

    Every artifact of the family-compiled product line — a fragment event,
    a rule, a token-spec entry — carries a presence condition: the formula
    over feature selections under which the artifact is part of a product.
    Because fragments are owned by exactly one feature and composition only
    ever {e adds} a feature's contribution when that feature is selected,
    the conditions arising here are disjunctions of positive atoms ("any of
    these features is selected"), not arbitrary boolean formulas — a
    BDD-lite that evaluates in O(atoms) against a configuration bitset.

    [requires] / [excludes] constraints of {!Feature.Model} do not appear
    inside conditions: they restrict which configuration bitsets are
    admissible (checked by {!Feature.Config.validate} before any masking),
    not which artifacts a given admissible bitset selects. What they do
    contribute is the {e core} classification: a condition whose atoms
    include a feature forced by the mandatory/[requires] closure of the
    concept holds in every valid product. *)

type t =
  | True  (** present in every product *)
  | Atom of int  (** present when this feature (by index) is selected *)
  | Any of int list
      (** present when any of these features is selected; sorted, distinct,
          length at least 2 *)

val atom : int -> t

val any : int list -> t
(** Normalizing constructor: sorts, dedups, collapses singletons to
    {!Atom}. The list must be non-empty — there is no unsatisfiable
    condition in this algebra. *)

val union : t -> t -> t
(** Disjunction: the artifact is present when either condition holds. *)

val eval : t -> selected:(int -> bool) -> bool
(** Evaluate against a configuration bitset. *)

val atoms : t -> int list
(** The feature indices mentioned; [[]] for {!True}. *)

val always : t -> core:(int -> bool) -> bool
(** Does the condition hold in {e every} valid configuration? [core i]
    must answer whether feature [i] is in the mandatory/[requires] closure
    of the concept. *)

val size : t -> int
(** Atom count ({!True} is 0) — the condition's footprint in the artifact
    size accounting. *)

val pp : names:string array -> t Fmt.t
