type t = True | Atom of int | Any of int list

let atom i = Atom i

let any ids =
  match List.sort_uniq Int.compare ids with
  | [] -> invalid_arg "Pc.any: empty disjunction"
  | [ i ] -> Atom i
  | is -> Any is

let union a b =
  match (a, b) with
  | True, _ | _, True -> True
  | Atom i, Atom j -> any [ i; j ]
  | Atom i, Any is | Any is, Atom i -> any (i :: is)
  | Any is, Any js -> any (is @ js)

let eval pc ~selected =
  match pc with
  | True -> true
  | Atom i -> selected i
  | Any is -> List.exists selected is

let atoms = function True -> [] | Atom i -> [ i ] | Any is -> is

let always pc ~core =
  match pc with
  | True -> true
  | Atom i -> core i
  | Any is -> List.exists core is

let size = function True -> 0 | Atom _ -> 1 | Any is -> List.length is

let pp ~names ppf = function
  | True -> Fmt.string ppf "true"
  | Atom i -> Fmt.string ppf names.(i)
  | Any is ->
    Fmt.(list ~sep:(any " | ") string) ppf (List.map (fun i -> names.(i)) is)
