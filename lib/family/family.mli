(** Family-based compilation: the whole product line as one artifact.

    The per-config pipeline re-runs compose → generate → classify →
    bytecode-compile on every {!Service.Cache} miss. This module lifts the
    front half of that pipeline to the {e family}: {!build} walks the
    feature diagram once and compiles every fragment's contribution —
    rules, token-spec entries — into a presence-condition-tagged event
    table (the product line's 150% program), together with the composed
    family grammar and family-wide lint diagnostics. {!instantiate} then
    turns a configuration into a product by evaluating presence conditions
    against the config's feature bitset and {e replaying} the composition
    calculus over the surviving events only.

    Replay — not structural masking — is the load-bearing design decision.
    The composition calculus is non-monotonic: a Merged outcome unions
    optional parts into an anchored alternative, so the {e shape} of a
    rule in the full-family grammar is not a superset-with-holes of its
    shape in a sub-configuration ([F1] contributing [\[a\]] and [F2]
    contributing [\[b; a\]] yields optionals ordered [\[a; b\]] in the
    family but [\[b; a\]] under [{F2}] alone). Token tables reorder the
    same way (first-occurrence order across the {e filtered} sequence).
    Masking bits out of the family grammar or its bytecode therefore
    cannot be behavior-identical; replaying the fold over the pc-filtered
    event sequence is — it {e is} the per-config fold, minus fragment
    lookup, validation bitsets precomputed. The expensive back half
    (LL(k ≤ 2) classification) is made cheap instead of skipped:
    {!Ilookahead} recomputes the exact per-config analysis over packed
    integer sequences, ~25–80x faster than the string-based pass.

    Invalid configurations (violating the model, including [requires] /
    [excludes]) are rejected by {!Feature.Config.validate} {e before} any
    masking, exactly as {!Compose.Composer.compose} rejects them. *)

module Pc = Pc
module Ilookahead = Ilookahead

type t

val build : start:string -> Feature.Model.t -> Compose.Fragment.registry -> t
(** Compile the family artifact: one pass over the diagram pre-order,
    tagging each fragment event, each rule and each token entry with its
    presence condition, composing the 150% family grammar, and computing
    the core-feature closure (mandatory chain + [requires] from the
    concept) that classifies conditions as always-on. *)

val instantiate :
  t ->
  Feature.Config.t ->
  (Compose.Composer.output, Compose.Composer.error) result
(** Mask and replay: validate the configuration, evaluate presence
    conditions against its feature bitset, fold the composition calculus
    over the surviving events. The result — grammar, token set,
    composition sequence, error cases including hints — is exactly what
    {!Compose.Composer.compose} returns for the same configuration
    (without a [?lint] hook). *)

val time_specialize : t -> (unit -> 'a) -> 'a
(** Run the downstream specialization step (scanner build, left-factoring,
    engine generation) under the artifact's specialize-time counter. *)

val family_grammar : t -> Grammar.Cfg.t
(** The 150% grammar: every fragment composed, all features on. *)

val rule_pc : t -> string -> Pc.t option
(** Presence condition of a non-terminal: the features whose fragments
    contribute rules for it. *)

val token_pc : t -> string -> Pc.t option
(** Presence condition of a token-spec entry. *)

val diagnostics : t -> Lint.Diagnostic.t list
(** Family-wide lint: the grammar/token/model analyses run {e once} over
    the 150% program (computed lazily, cached). Sound for every product
    whose artifacts survive filtering — see {!diagnostics_for}. *)

val diagnostics_for : t -> Feature.Config.t -> Lint.Diagnostic.t list
(** {!diagnostics} filtered to a configuration: a finding is kept when the
    presence condition of its subject (rule, token or feature) holds under
    the config's bitset. This is the lifted-analysis view — an
    over-approximation of the per-config lint (witnesses may mention
    artifacts of other features); the authoritative per-product gate
    remains [compose_linted]. *)

type stats = {
  features : int;  (** features in the model *)
  fragments : int;  (** pc-tagged fragment events in the artifact *)
  core_fragments : int;  (** events present in every valid product *)
  rules : int;  (** rules of the 150% family grammar *)
  tokens : int;  (** distinct token-spec entries across the family *)
  size_ints : int;
      (** artifact footprint: grammar symbols + token entries + pc atoms *)
  instantiations : int;  (** successful {!instantiate} calls *)
  mask_ms : float;  (** cumulative mask+replay time *)
  specialize_ms : float;  (** cumulative {!time_specialize} time *)
}

val stats : t -> stats
val pp_stats : stats Fmt.t
