module Pc = Pc
module Ilookahead = Ilookahead

type event = {
  ev_feature : int;  (* index into [names], diagram pre-order *)
  ev_name : string;
  ev_rules : Grammar.Production.t list;
  ev_tokens : Lexing_gen.Spec.set;
}

type t = {
  model : Feature.Model.t;
  registry : Compose.Fragment.registry;
  start : string;
  names : string array;  (* diagram pre-order; index = feature id *)
  index : (string, int) Hashtbl.t;
  events : event array;
  core : bool array;  (* mandatory/requires closure of the concept *)
  rule_pcs : (string, Pc.t) Hashtbl.t;
  token_pcs : (string, Pc.t) Hashtbl.t;
  family_grammar : Grammar.Cfg.t;
  family_tokens : Lexing_gen.Spec.set;
  size_ints : int;
  diags : Lint.Diagnostic.t list Lazy.t;
  mutable instantiations : int;
  mutable mask_ms : float;
  mutable specialize_ms : float;
}

let rec term_size = function
  | Grammar.Production.Sym _ -> 1
  | Grammar.Production.Opt ts
  | Grammar.Production.Star ts
  | Grammar.Production.Plus ts ->
    1 + alt_size ts
  | Grammar.Production.Group alts ->
    1 + List.fold_left (fun a al -> a + alt_size al) 0 alts

and alt_size ts = List.fold_left (fun a tm -> a + term_size tm) 0 ts

let production_size (r : Grammar.Production.t) =
  List.fold_left (fun a al -> 1 + a + alt_size al) 0 r.alts

(* The family token table keeps the first definition of each name. A
   cross-feature definition conflict would surface here only for feature
   pairs no valid product may combine ([excludes]); per-product conflicts
   are still reported exactly, by the replay in [instantiate]. *)
let merge_first_def set additions =
  List.fold_left
    (fun acc (name, def) ->
      if List.mem_assoc name acc then acc else acc @ [ (name, def) ])
    set additions

let build ~start (model : Feature.Model.t) registry =
  let names = Array.of_list (Feature.Tree.names model.concept) in
  let index = Hashtbl.create (2 * Array.length names) in
  Array.iteri (fun i name -> Hashtbl.replace index name i) names;
  let events =
    Array.of_list
      (List.filter_map
         (fun (i, name) ->
           match Compose.Fragment.find registry name with
           | None -> None
           | Some frag ->
             Some
               {
                 ev_feature = i;
                 ev_name = name;
                 ev_rules = frag.Compose.Fragment.rules;
                 ev_tokens = frag.Compose.Fragment.tokens;
               })
         (List.mapi (fun i n -> (i, n)) (Array.to_list names)))
  in
  let core = Array.make (Array.length names) false in
  if Array.length names > 0 then
    Feature.Config.String_set.iter
      (fun name ->
        match Hashtbl.find_opt index name with
        | Some i -> core.(i) <- true
        | None -> ())
      (Feature.Config.close model (Feature.Config.of_names [ names.(0) ]));
  let rule_pcs = Hashtbl.create 64 in
  let token_pcs = Hashtbl.create 64 in
  let note tbl key pc =
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.replace tbl key pc
    | Some prev -> Hashtbl.replace tbl key (Pc.union prev pc)
  in
  let family_rules, family_tokens =
    Array.fold_left
      (fun (rules, tokens) ev ->
        let pc = Pc.atom ev.ev_feature in
        List.iter
          (fun (r : Grammar.Production.t) -> note rule_pcs r.lhs pc)
          ev.ev_rules;
        List.iter (fun (name, _) -> note token_pcs name pc) ev.ev_tokens;
        ( Compose.Rules.compose_rules rules ev.ev_rules,
          merge_first_def tokens ev.ev_tokens ))
      ([], []) events
  in
  let family_grammar = Grammar.Cfg.make ~start family_rules in
  let pc_atoms tbl =
    Hashtbl.fold (fun _ pc acc -> acc + Pc.size pc) tbl 0
  in
  let size_ints =
    Array.fold_left
      (fun acc ev ->
        acc
        + List.fold_left (fun a r -> a + production_size r) 0 ev.ev_rules
        + List.length ev.ev_tokens)
      0 events
    + pc_atoms rule_pcs + pc_atoms token_pcs
  in
  let diags =
    lazy
      (Lint.run ~model
         ~config:(Feature.Config.full model)
         ~fragments:
           (List.map
              (fun ev -> (ev.ev_name, ev.ev_rules))
              (Array.to_list events))
         ~tokens:family_tokens family_grammar)
  in
  {
    model;
    registry;
    start;
    names;
    index;
    events;
    core;
    rule_pcs;
    token_pcs;
    family_grammar;
    family_tokens;
    size_ints;
    diags;
    instantiations = 0;
    mask_ms = 0.;
    specialize_ms = 0.;
  }

exception Conflict of Compose.Composer.error

(* Mirrors Compose.Composer.compose step for step (minus the [?lint]
   hook): validation first, then the fold of the composition calculus over
   the pc-filtered event sequence, then the coherence check with
   defining-feature hints. The fold is a replay, not a mask of the family
   grammar — see the .mli headnote for why masking is unsound. *)
let instantiate t config =
  match Feature.Config.validate t.model config with
  | _ :: _ as violations ->
    Error (Compose.Composer.Invalid_configuration violations)
  | [] -> (
    let t0 = Unix.gettimeofday () in
    let selected = Array.make (Array.length t.names) false in
    Feature.Config.String_set.iter
      (fun name ->
        match Hashtbl.find_opt t.index name with
        | Some i -> selected.(i) <- true
        | None -> ())
      config;
    try
      let rules, tokens =
        Array.fold_left
          (fun ((rules, tokens) as acc) ev ->
            if not selected.(ev.ev_feature) then acc
            else
              let rules = Compose.Rules.compose_rules rules ev.ev_rules in
              let tokens =
                match Lexing_gen.Spec.merge tokens ev.ev_tokens with
                | Ok merged -> merged
                | Error conflict ->
                  raise
                    (Conflict
                       (Compose.Composer.Token_conflict
                          { feature = ev.ev_name; conflict }))
              in
              (rules, tokens))
          ([], []) t.events
      in
      let grammar = Grammar.Cfg.make ~start:t.start rules in
      let fatal =
        List.filter
          (function
            | Grammar.Cfg.Unreachable_rule _ -> false
            | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start
              -> true)
          (Grammar.Cfg.check grammar)
      in
      if fatal <> [] then
        let hints =
          List.filter_map
            (function
              | Grammar.Cfg.Undefined_nonterminal { nonterminal; _ } ->
                Option.map
                  (fun feat -> (nonterminal, feat))
                  (Compose.Fragment.defining_feature t.registry nonterminal)
              | Grammar.Cfg.Unreachable_rule _ | Grammar.Cfg.Undefined_start ->
                None)
            fatal
        in
        Error (Compose.Composer.Incoherent_grammar { problems = fatal; hints })
      else begin
        t.instantiations <- t.instantiations + 1;
        t.mask_ms <- t.mask_ms +. ((Unix.gettimeofday () -. t0) *. 1000.);
        Ok
          {
            Compose.Composer.grammar;
            tokens;
            sequence =
              List.filter
                (fun name -> Feature.Config.mem name config)
                (Array.to_list t.names);
            diagnostics = [];
          }
      end
    with Conflict e -> Error e)

let time_specialize t f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    t.specialize_ms <- t.specialize_ms +. ((Unix.gettimeofday () -. t0) *. 1000.)
  in
  Fun.protect ~finally f

let family_grammar t = t.family_grammar
let rule_pc t lhs = Hashtbl.find_opt t.rule_pcs lhs
let token_pc t name = Hashtbl.find_opt t.token_pcs name
let diagnostics t = Lazy.force t.diags

let diagnostics_for t config =
  let selected i =
    i >= 0
    && i < Array.length t.names
    && Feature.Config.mem t.names.(i) config
  in
  let subject_pc subject =
    match Hashtbl.find_opt t.rule_pcs subject with
    | Some pc -> pc
    | None -> (
      match Hashtbl.find_opt t.token_pcs subject with
      | Some pc -> pc
      | None -> (
        match Hashtbl.find_opt t.index subject with
        | Some i -> Pc.atom i
        | None -> Pc.True))
  in
  List.filter
    (fun (d : Lint.Diagnostic.t) ->
      Pc.eval (subject_pc d.subject) ~selected)
    (diagnostics t)

type stats = {
  features : int;
  fragments : int;
  core_fragments : int;
  rules : int;
  tokens : int;
  size_ints : int;
  instantiations : int;
  mask_ms : float;
  specialize_ms : float;
}

let stats t =
  {
    features = Array.length t.names;
    fragments = Array.length t.events;
    core_fragments =
      Array.fold_left
        (fun acc ev -> if t.core.(ev.ev_feature) then acc + 1 else acc)
        0 t.events;
    rules = Grammar.Cfg.rule_count t.family_grammar;
    tokens = List.length t.family_tokens;
    size_ints = t.size_ints;
    instantiations = t.instantiations;
    mask_ms = t.mask_ms;
    specialize_ms = t.specialize_ms;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "%d features, %d fragments (%d core), %d family rules, %d tokens, \
     artifact %d ints; %d instantiations (mask %.2f ms, specialize %.2f ms)"
    s.features s.fragments s.core_fragments s.rules s.tokens s.size_ints
    s.instantiations s.mask_ms s.specialize_ms
