(** Rendering grammar-sampled sentences back into SQL text.

    {!Grammar.Sampler} yields sentences as terminal {e names}; this module
    maps each name through the composed token set to a concrete lexeme
    (keywords and punctuation print themselves, lexeme classes print fixed
    representatives chosen to re-scan unambiguously in {e every} dialect —
    identifiers that are no dialect's keyword, plain literals) and joins
    them with spaces. The result is a statement guaranteed to be in the
    sampled grammar's language, usable end-to-end through scanner and
    parser — the generative half of the conformance suite and the workload
    synthesizer of bench E15. *)

val lexeme : Lexing_gen.Spec.set -> string -> string
(** [lexeme tokens name] is a concrete spelling for terminal [name].
    Unknown terminals (absent from the composed set) fall back to their own
    name — the lint pass flags those grammars anyway. *)

val render : Lexing_gen.Spec.set -> string list -> string
(** Space-join the lexemes of a sampled sentence. *)

val sample :
  ?count:int -> ?budget:int -> seed:int -> Core.generated -> string list
(** [sample ~seed g] draws [count] (default [100]) statements from [g]'s
    composed grammar ([budget] as in {!Grammar.Sampler.sentence}) and
    renders them against [g]'s token set. Deterministic in [seed]. *)
