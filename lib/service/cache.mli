(** Configuration-keyed parser cache.

    [generate] memoizes the expensive half of the paper's pipeline — feature
    validation, fragment composition and LL(k) parser generation — keyed by
    the {!Digest_key} of the configuration. The cached value is the complete
    {!Core.generated} front-end (grammar, token set, scanner, parser —
    including the parser's compiled bytecode {!Parser_gen.Program}, built
    eagerly at generation time), which is immutable and safe to share
    between sessions: the parser engine keeps its memo tables per [parse]
    call, not per parser value, so a cache hit serves committed-loop and VM
    sessions alike.

    The cache is a bounded LRU: each hit refreshes the entry's recency and
    inserting into a full cache evicts the least recently used entry.
    Compose/generation {e errors} are never cached — an invalid
    configuration costs a validation run each time, and the counters only
    ever count successful products.

    Not thread-safe; confine a cache to one domain. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty cache. [capacity] (default [32], clipped to at
    least [1]) bounds the number of retained front-ends. *)

val capacity : t -> int
val length : t -> int

val use_family : t -> bool -> unit
(** Route cache misses through {!Core.generate_family} — the process-wide
    variability-aware artifact plus a cheap per-config mask/replay —
    instead of the cold {!Core.generate} pipeline. Products are
    behavior-identical either way (the differential suite enforces it);
    only miss latency changes. Off by default. *)

val family_enabled : t -> bool

val default : t
(** The process-wide shared cache ([capacity = 32]) through which the CLI
    resolves every selection, so all six shipped dialects (and repeated
    custom selections) are composed and generated at most once per
    process. *)

type stats = {
  capacity : int;
  entries : int;      (** front-ends currently retained *)
  lookups : int;      (** = hits + misses, always *)
  hits : int;
  misses : int;
  evictions : int;    (** LRU evictions, counted within [misses] inserts *)
}

val stats : t -> stats
val reset_stats : t -> unit
(** Zero the counters; retained entries are kept. *)

val pp_stats : stats Fmt.t

val generate :
  ?label:string -> t -> Feature.Config.t -> (Core.generated, Core.error) result
(** [generate cache config] is {!Core.generate}, memoized on
    [Digest_key.of_config config]. A hit returns the cached front-end
    (with its original label); a miss runs the full pipeline and, on
    success, inserts the result. *)

val generate_dialect :
  t -> Dialects.Dialect.t -> (Core.generated, Core.error) result

val find : t -> Feature.Config.t -> Core.generated option
(** Peek without counting a lookup or refreshing recency. *)

val find_hex : t -> string -> Core.generated option
(** Peek by hex digest — how the parser service resolves a client that
    pins its configuration by {!Digest_key} instead of re-sending the
    feature list. Like {!find}, counts nothing and refreshes nothing. *)

val mem : t -> Feature.Config.t -> bool
