(* Fixed representatives per lexeme class. Identifier spellings must not
   collide with any dialect's keywords (the full SQL:2003 token set included),
   or a sentence sampled from a small grammar would re-scan differently under
   a larger one; "zq"-prefixed names are safely outside SQL vocabulary. *)
let class_lexeme = function
  | Lexing_gen.Spec.Identifier -> "zq1"
  | Lexing_gen.Spec.Unsigned_integer -> "42"
  | Lexing_gen.Spec.Decimal_number -> "0.5"
  | Lexing_gen.Spec.String_literal -> "'zz'"
  | Lexing_gen.Spec.Quoted_identifier -> "\"Zq\""

let lexeme tokens name =
  match List.assoc_opt name tokens with
  | Some (Lexing_gen.Spec.Keyword spelling) -> spelling
  | Some (Lexing_gen.Spec.Punct literal) -> literal
  | Some (Lexing_gen.Spec.Class cls) -> class_lexeme cls
  | None -> name

let render tokens sentence =
  String.concat " " (List.map (lexeme tokens) sentence)

let sample ?(count = 100) ?budget ~seed (g : Core.generated) =
  List.map
    (render g.Core.tokens)
    (Grammar.Sampler.sentences ~seed ?budget ~count g.Core.grammar)
