type stats = {
  capacity : int;
  entries : int;
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
}

type entry = {
  value : Core.generated;
  mutable stamp : int;  (** recency: larger = more recently used *)
}

type t = {
  cap : int;
  table : (Digest_key.t, entry) Hashtbl.t;
  mutable clock : int;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable family : bool;
}

let create ?(capacity = 32) () =
  {
    cap = max 1 capacity;
    table = Hashtbl.create 64;
    clock = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    family = false;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let use_family t enabled = t.family <- enabled
let family_enabled t = t.family
let default = create ()

let stats t =
  {
    capacity = t.cap;
    entries = Hashtbl.length t.table;
    lookups = t.lookups;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let reset_stats t =
  t.lookups <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let pp_stats ppf s =
  Fmt.pf ppf
    "entries %d/%d, lookups %d (hits %d, misses %d, hit rate %.0f%%), \
     evictions %d"
    s.entries s.capacity s.lookups s.hits s.misses
    (if s.lookups = 0 then 0. else 100. *. float s.hits /. float s.lookups)
    s.evictions

let touch t entry =
  t.clock <- t.clock + 1;
  entry.stamp <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, oldest) when oldest.stamp <= entry.stamp -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let insert t key value =
  if Hashtbl.length t.table >= t.cap then evict_lru t;
  let entry = { value; stamp = 0 } in
  touch t entry;
  Hashtbl.replace t.table key entry

let generate ?label t config =
  let key = Digest_key.of_config config in
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    t.hits <- t.hits + 1;
    touch t entry;
    Ok entry.value
  | None ->
    t.misses <- t.misses + 1;
    let result =
      if t.family then Core.generate_family ?label config
      else Core.generate ?label config
    in
    Result.iter (fun g -> insert t key g) result;
    result

let generate_dialect t (d : Dialects.Dialect.t) =
  generate ~label:d.Dialects.Dialect.name t d.Dialects.Dialect.config

let find t config =
  Option.map
    (fun e -> e.value)
    (Hashtbl.find_opt t.table (Digest_key.of_config config))

let find_hex t hex =
  Hashtbl.fold
    (fun key entry acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if String.equal (Digest_key.to_hex key) hex then Some entry.value
        else None)
    t.table None

let mem t config = find t config <> None
