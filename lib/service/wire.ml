type address =
  | Tcp of string * int
  | Unix_socket of string

let pp_address ppf = function
  | Tcp (host, port) -> Fmt.pf ppf "%s:%d" host port
  | Unix_socket path -> Fmt.pf ppf "unix:%s" path

type span = Lexing_gen.Token.position

type code =
  | Bad_frame
  | Oversized
  | Bad_hello
  | Unknown_dialect
  | Invalid_config
  | Unknown_digest
  | Lex_error
  | Parse_error
  | Unsupported
  | Io
  | Internal

let codes =
  [
    (Bad_frame, "bad_frame");
    (Oversized, "oversized");
    (Bad_hello, "bad_hello");
    (Unknown_dialect, "unknown_dialect");
    (Invalid_config, "invalid_config");
    (Unknown_digest, "unknown_digest");
    (Lex_error, "lex_error");
    (Parse_error, "parse_error");
    (Unsupported, "unsupported");
    (Io, "io");
    (Internal, "internal");
  ]

let code_to_string c = List.assoc c codes
let code_of_string s =
  List.find_map (fun (c, n) -> if n = s then Some c else None) codes

type error = {
  code : code;
  message : string;
  query : string option;
  span : span option;
  found : string option;
  expected : string list;
}

let error ?query ?span ?found ?(expected = []) code message =
  { code; message; query; span; found; expected }

let pp_error ppf e =
  Fmt.pf ppf "[%s] %s" (code_to_string e.code) e.message;
  Option.iter
    (fun s -> Fmt.pf ppf " at %a" Lexing_gen.Token.pp_position s)
    e.span;
  Option.iter (fun f -> Fmt.pf ppf ", found %s" f) e.found;
  if e.expected <> [] then
    Fmt.pf ppf ", expected %a" Fmt.(list ~sep:(any " | ") string) e.expected;
  Option.iter (fun q -> Fmt.pf ppf " in %S" q) e.query

let error_of_core ~query = function
  | Core.Lex_error le ->
    error ~query ~span:le.Lexing_gen.Scanner.pos Lex_error
      le.Lexing_gen.Scanner.message
  | Core.Parse_error pe ->
    (* [pp_error] renders span/found/expected from the structured fields;
       a verbose message here would print them twice. *)
    error ~query ~span:pe.Parser_gen.Engine.pos
      ~found:pe.Parser_gen.Engine.found
      ~expected:pe.Parser_gen.Engine.expected Parse_error "parse error"
  | e -> error ~query Internal (Fmt.str "%a" Core.pp_error e)

type engine = [ `Committed | `Vm | `Fused ]

type selection =
  | Dialect of string
  | Features of string list
  | Digest of string

type hello = { client : string; engine : engine; selection : selection }

type hello_ok = {
  digest : string;
  label : string;
  features : int;
  engine : engine;
}

type mode = Cst | Recognize

type request = { id : int; mode : mode; statements : string list }

type outcome =
  | Accepted of { tokens : int; cst : string option }
  | Rejected of error

type reply_stats = {
  statements : int;
  accepted : int;
  rejected : int;
  tokens : int;
  elapsed_ns : int64;
}

type reply = { id : int; items : outcome list; stats : reply_stats }

type frame =
  | Hello of hello
  | Hello_ok of hello_ok
  | Request of request
  | Reply of reply
  | Error of error
  | Ping of string
  | Pong of string
  | Bye

let pp_frame ppf = function
  | Hello h ->
    Fmt.pf ppf "hello (client %S, %s)" h.client
      (match h.engine with
      | `Committed -> "committed"
      | `Vm -> "vm"
      | `Fused -> "fused")
  | Hello_ok ok -> Fmt.pf ppf "hello-ok (%s, digest %s)" ok.label ok.digest
  | Request r ->
    Fmt.pf ppf "request #%d (%d statement(s))" r.id (List.length r.statements)
  | Reply r -> Fmt.pf ppf "reply #%d (%d item(s))" r.id (List.length r.items)
  | Error e -> Fmt.pf ppf "error %a" pp_error e
  | Ping p -> Fmt.pf ppf "ping %S" p
  | Pong p -> Fmt.pf ppf "pong %S" p
  | Bye -> Fmt.string ppf "bye"

type encoding = Binary | Json

let default_max_frame = 16 * 1024 * 1024

(* --- binary encoding --------------------------------------------------- *)

(* Frame tags. The length prefix of any legal frame begins with 0x00 (a
   frame would have to exceed 16 MiB for its high byte to be nonzero, and
   the default limit rejects that), so the first byte of a connection
   distinguishes binary (0x00) from JSON ('{'). *)
let tag_hello = 1
and tag_hello_ok = 2
and tag_request = 3
and tag_reply = 4
and tag_error = 5
and tag_ping = 6
and tag_pong = 7
and tag_bye = 8

let hello_version = 1

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u64 b (v : int64) =
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt put b = function
  | None -> put_u8 b 0
  | Some v ->
    put_u8 b 1;
    put b v

let put_list put b xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_engine b = function
  | `Committed -> put_u8 b 0
  | `Vm -> put_u8 b 1
  | `Fused -> put_u8 b 2
let put_mode b = function Cst -> put_u8 b 0 | Recognize -> put_u8 b 1

let put_span b (s : span) =
  put_u32 b s.Lexing_gen.Token.line;
  put_u32 b s.Lexing_gen.Token.column;
  put_u32 b s.Lexing_gen.Token.offset

let code_index c =
  let rec go i = function
    | [] -> assert false
    | (c', _) :: rest -> if c = c' then i else go (i + 1) rest
  in
  go 0 codes

let code_of_index i = Option.map fst (List.nth_opt codes i)

let put_error b e =
  put_u8 b (code_index e.code);
  put_str b e.message;
  put_opt put_str b e.query;
  put_opt put_span b e.span;
  put_opt put_str b e.found;
  put_list put_str b e.expected

let put_outcome b = function
  | Accepted { tokens; cst } ->
    put_u8 b 0;
    put_u32 b tokens;
    put_opt put_str b cst
  | Rejected e ->
    put_u8 b 1;
    put_error b e

let put_selection b = function
  | Dialect name ->
    put_u8 b 0;
    put_str b name
  | Features names ->
    put_u8 b 1;
    put_list put_str b names
  | Digest hex ->
    put_u8 b 2;
    put_str b hex

let put_payload b = function
  | Hello h ->
    put_u8 b tag_hello;
    put_u8 b hello_version;
    put_str b h.client;
    put_engine b h.engine;
    put_selection b h.selection
  | Hello_ok ok ->
    put_u8 b tag_hello_ok;
    put_str b ok.digest;
    put_str b ok.label;
    put_u32 b ok.features;
    put_engine b ok.engine
  | Request r ->
    put_u8 b tag_request;
    put_u32 b r.id;
    put_mode b r.mode;
    put_list put_str b r.statements
  | Reply r ->
    put_u8 b tag_reply;
    put_u32 b r.id;
    put_list put_outcome b r.items;
    put_u32 b r.stats.statements;
    put_u32 b r.stats.accepted;
    put_u32 b r.stats.rejected;
    put_u32 b r.stats.tokens;
    put_u64 b r.stats.elapsed_ns
  | Error e ->
    put_u8 b tag_error;
    put_error b e
  | Ping p ->
    put_u8 b tag_ping;
    put_str b p
  | Pong p ->
    put_u8 b tag_pong;
    put_str b p
  | Bye -> put_u8 b tag_bye

let encode frame =
  let payload = Buffer.create 256 in
  put_payload payload frame;
  let b = Buffer.create (Buffer.length payload + 4) in
  put_u32 b (Buffer.length payload);
  Buffer.add_buffer b payload;
  Buffer.contents b

let encode_items items =
  let b = Buffer.create 256 in
  put_list put_outcome b items;
  Buffer.contents b

(* --- binary decoding --------------------------------------------------- *)

(* Total decoding over untrusted bytes: every read is bounds-checked
   against the remaining input *before* any allocation sized by a wire
   integer, so hostile length fields fail cleanly instead of raising or
   triggering gigabyte allocations. [Fail] never escapes [decode]. *)
exception Fail of string

type cursor = { src : string; limit : int; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

let need c n what =
  if n < 0 || c.limit - c.pos < n then
    fail "truncated frame: %s needs %d byte(s), %d left" what n
      (c.limit - c.pos)

let get_u8 c what =
  need c 1 what;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c what =
  need c 4 what;
  let b i = Char.code c.src.[c.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  v

let get_u64 c what =
  need c 8 what;
  let v = ref 0L in
  for i = 0 to 7 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code c.src.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_str c what =
  let n = get_u32 c what in
  need c n what;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt get c what =
  match get_u8 c what with
  | 0 -> None
  | 1 -> Some (get c what)
  | t -> fail "%s: bad option tag %d" what t

let get_list get c what =
  let n = get_u32 c what in
  (* Every element takes at least one byte on the wire, so a count beyond
     the remaining payload is a lie — reject it before allocating. *)
  need c n what;
  List.init n (fun _ -> get c what)

let get_engine c what =
  match get_u8 c what with
  | 0 -> `Committed
  | 1 -> `Vm
  | 2 -> `Fused
  | t -> fail "%s: bad engine %d" what t

let get_mode c what =
  match get_u8 c what with
  | 0 -> Cst
  | 1 -> Recognize
  | t -> fail "%s: bad mode %d" what t

let get_span c what : span =
  let line = get_u32 c what in
  let column = get_u32 c what in
  let offset = get_u32 c what in
  { Lexing_gen.Token.line; column; offset }

let get_error c =
  let code =
    let i = get_u8 c "error code" in
    match code_of_index i with
    | Some code -> code
    | None -> fail "bad error code %d" i
  in
  let message = get_str c "error message" in
  let query = get_opt get_str c "error query" in
  let span = get_opt get_span c "error span" in
  let found = get_opt get_str c "error found" in
  let expected = get_list get_str c "error expected" in
  { code; message; query; span; found; expected }

let get_outcome c _what =
  match get_u8 c "outcome tag" with
  | 0 ->
    let tokens = get_u32 c "outcome tokens" in
    let cst = get_opt get_str c "outcome cst" in
    Accepted { tokens; cst }
  | 1 -> Rejected (get_error c)
  | t -> fail "bad outcome tag %d" t

let get_selection c =
  match get_u8 c "selection tag" with
  | 0 -> Dialect (get_str c "selection dialect")
  | 1 -> Features (get_list get_str c "selection features")
  | 2 -> Digest (get_str c "selection digest")
  | t -> fail "bad selection tag %d" t

let get_payload c =
  let tag = get_u8 c "frame tag" in
  let frame =
    if tag = tag_hello then begin
      let version = get_u8 c "hello version" in
      if version <> hello_version then
        fail "unsupported hello version %d" version;
      let client = get_str c "hello client" in
      let engine = get_engine c "hello engine" in
      let selection = get_selection c in
      Hello { client; engine; selection }
    end
    else if tag = tag_hello_ok then begin
      let digest = get_str c "hello-ok digest" in
      let label = get_str c "hello-ok label" in
      let features = get_u32 c "hello-ok features" in
      let engine = get_engine c "hello-ok engine" in
      Hello_ok { digest; label; features; engine }
    end
    else if tag = tag_request then begin
      let id = get_u32 c "request id" in
      let mode = get_mode c "request mode" in
      let statements = get_list get_str c "request statements" in
      Request { id; mode; statements }
    end
    else if tag = tag_reply then begin
      let id = get_u32 c "reply id" in
      let items = get_list get_outcome c "reply items" in
      let statements = get_u32 c "stats statements" in
      let accepted = get_u32 c "stats accepted" in
      let rejected = get_u32 c "stats rejected" in
      let tokens = get_u32 c "stats tokens" in
      let elapsed_ns = get_u64 c "stats elapsed" in
      Reply
        { id; items;
          stats = { statements; accepted; rejected; tokens; elapsed_ns } }
    end
    else if tag = tag_error then Error (get_error c)
    else if tag = tag_ping then Ping (get_str c "ping payload")
    else if tag = tag_pong then Pong (get_str c "pong payload")
    else if tag = tag_bye then Bye
    else fail "unknown frame tag %d" tag
  in
  if c.pos <> c.limit then
    fail "frame has %d trailing byte(s)" (c.limit - c.pos);
  frame

let bad_frame message = { code = Bad_frame; message; query = None;
                          span = None; found = None; expected = [] }

let oversized limit len =
  {
    code = Oversized;
    message =
      Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len limit;
    query = None;
    span = None;
    found = None;
    expected = [];
  }

let decode ?(max_frame = default_max_frame) s =
  let c = { src = s; limit = String.length s; pos = 0 } in
  match
    let len = get_u32 c "length prefix" in
    if len > max_frame then Result.Error (oversized max_frame len)
    else if len = 0 then Result.Error (bad_frame "empty frame")
    else begin
      need c len "frame payload";
      let payload = { src = s; limit = c.pos + len; pos = c.pos } in
      let frame = get_payload payload in
      if c.pos + len <> String.length s then
        Result.Error (bad_frame "trailing bytes after frame")
      else Result.Ok frame
    end
  with
  | result -> result
  | exception Fail m -> Result.Error (bad_frame m)

(* --- JSON encoding ------------------------------------------------------ *)

(* The debug encoding: one frame per line. Strings escape every byte
   outside printable ASCII as \u00XX, so arbitrary payloads (newlines, NUL,
   raw UTF-8) survive the line discipline and round-trip bytewise. *)

let json_escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | ' ' .. '~' -> Buffer.add_char b ch
      | c -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c)))
    s;
  Buffer.add_char b '"'

let json_fields b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char b ',';
      json_escape b k;
      Buffer.add_char b ':';
      emit b)
    fields;
  Buffer.add_char b '}'

let jstr s b = json_escape b s
let jint (n : int) b = Buffer.add_string b (string_of_int n)
let jarr emit xs b =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      emit x b)
    xs;
  Buffer.add_char b ']'

let jengine e =
  jstr (match e with `Committed -> "committed" | `Vm -> "vm" | `Fused -> "fused")
let jmode m = jstr (match m with Cst -> "cst" | Recognize -> "recognize")

let jspan (s : span) b =
  json_fields b
    [
      ("line", jint s.Lexing_gen.Token.line);
      ("column", jint s.Lexing_gen.Token.column);
      ("offset", jint s.Lexing_gen.Token.offset);
    ]

let jerror e b =
  json_fields b
    (("code", jstr (code_to_string e.code))
     :: ("message", jstr e.message)
     :: (match e.query with None -> [] | Some q -> [ ("query", jstr q) ])
    @ (match e.span with None -> [] | Some s -> [ ("span", jspan s) ])
    @ (match e.found with None -> [] | Some f -> [ ("found", jstr f) ])
    @ [ ("expected", jarr jstr e.expected) ])

let joutcome o b =
  match o with
  | Accepted { tokens; cst } ->
    json_fields b
      (("tokens", jint tokens)
      :: (match cst with None -> [] | Some c -> [ ("cst", jstr c) ]))
  | Rejected e -> json_fields b [ ("error", jerror e) ]

let jselection sel b =
  match sel with
  | Dialect name -> json_fields b [ ("dialect", jstr name) ]
  | Features names -> json_fields b [ ("features", jarr jstr names) ]
  | Digest hex -> json_fields b [ ("digest", jstr hex) ]

let encode_json frame =
  let b = Buffer.create 256 in
  (match frame with
  | Hello h ->
    json_fields b
      [
        ("frame", jstr "hello");
        ("version", jint hello_version);
        ("client", jstr h.client);
        ("engine", jengine h.engine);
        ("selection", jselection h.selection);
      ]
  | Hello_ok ok ->
    json_fields b
      [
        ("frame", jstr "hello_ok");
        ("digest", jstr ok.digest);
        ("label", jstr ok.label);
        ("features", jint ok.features);
        ("engine", jengine ok.engine);
      ]
  | Request r ->
    json_fields b
      [
        ("frame", jstr "request");
        ("id", jint r.id);
        ("mode", jmode r.mode);
        ("statements", jarr jstr r.statements);
      ]
  | Reply r ->
    json_fields b
      [
        ("frame", jstr "reply");
        ("id", jint r.id);
        ("items", jarr joutcome r.items);
        ( "stats",
          fun b ->
            json_fields b
              [
                ("statements", jint r.stats.statements);
                ("accepted", jint r.stats.accepted);
                ("rejected", jint r.stats.rejected);
                ("tokens", jint r.stats.tokens);
                ("elapsed_ns", jstr (Int64.to_string r.stats.elapsed_ns));
              ] );
      ]
  | Error e -> json_fields b [ ("frame", jstr "error"); ("error", jerror e) ]
  | Ping p -> json_fields b [ ("frame", jstr "ping"); ("payload", jstr p) ]
  | Pong p -> json_fields b [ ("frame", jstr "pong"); ("payload", jstr p) ]
  | Bye -> json_fields b [ ("frame", jstr "bye") ]);
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- JSON decoding ------------------------------------------------------ *)

(* A tiny total JSON reader (the same recursive-descent shape as the bench
   report's): only what the frames above need, every failure a [Fail]. *)

type jvalue =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of jvalue list
  | Jobj of (string * jvalue) list

let jskip_ws c =
  while
    c.pos < c.limit
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let jexpect c ch =
  jskip_ws c;
  if c.pos < c.limit && c.src.[c.pos] = ch then c.pos <- c.pos + 1
  else fail "expected %C at %d" ch c.pos

let jstring c =
  jexpect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= c.limit then fail "unterminated string"
    else
      match c.src.[c.pos] with
      | '"' -> c.pos <- c.pos + 1
      | '\\' ->
        if c.pos + 1 >= c.limit then fail "bad escape";
        (match c.src.[c.pos + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.pos + 5 >= c.limit then fail "bad unicode escape";
          let hex = String.sub c.src (c.pos + 2) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some v ->
            (* Our encoder only emits \u00XX (one escaped byte); anything
               above that folds to its low byte rather than failing, so
               foreign encoders still get *a* decode. *)
            Buffer.add_char b (Char.chr (v land 0xff))
          | None -> fail "bad unicode escape %S" hex);
          c.pos <- c.pos + 4
        | e -> fail "bad escape \\%C" e);
        c.pos <- c.pos + 2;
        go ()
      | ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let jnumber c =
  let start = c.pos in
  let numch = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < c.limit && numch c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail "bad number at %d" start

let jliteral c word v =
  let n = String.length word in
  if c.pos + n <= c.limit && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "bad literal at %d" c.pos

let rec jvalue c =
  jskip_ws c;
  if c.pos >= c.limit then fail "unexpected end of input"
  else
    match c.src.[c.pos] with
    | '{' ->
      c.pos <- c.pos + 1;
      jskip_ws c;
      if c.pos < c.limit && c.src.[c.pos] = '}' then begin
        c.pos <- c.pos + 1;
        Jobj []
      end
      else begin
        let rec members acc =
          jskip_ws c;
          let key = jstring c in
          jexpect c ':';
          let v = jvalue c in
          jskip_ws c;
          if c.pos >= c.limit then fail "unterminated object"
          else
            match c.src.[c.pos] with
            | ',' ->
              c.pos <- c.pos + 1;
              members ((key, v) :: acc)
            | '}' ->
              c.pos <- c.pos + 1;
              Jobj (List.rev ((key, v) :: acc))
            | ch -> fail "expected , or } but found %C" ch
        in
        members []
      end
    | '[' ->
      c.pos <- c.pos + 1;
      jskip_ws c;
      if c.pos < c.limit && c.src.[c.pos] = ']' then begin
        c.pos <- c.pos + 1;
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = jvalue c in
          jskip_ws c;
          if c.pos >= c.limit then fail "unterminated array"
          else
            match c.src.[c.pos] with
            | ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
            | ']' ->
              c.pos <- c.pos + 1;
              Jarr (List.rev (v :: acc))
            | ch -> fail "expected , or ] but found %C" ch
        in
        elements []
      end
    | '"' -> Jstr (jstring c)
    | 't' -> jliteral c "true" (Jbool true)
    | 'f' -> jliteral c "false" (Jbool false)
    | 'n' -> jliteral c "null" Jnull
    | _ -> Jnum (jnumber c)

let jmember key = function
  | Jobj kvs -> List.assoc_opt key kvs
  | _ -> None

let jget_str what = function
  | Some (Jstr s) -> s
  | _ -> fail "missing or non-string %s" what

let jget_int what = function
  | Some (Jnum f) ->
    let i = int_of_float f in
    if float_of_int i <> f || i < 0 then fail "non-integer %s" what else i
  | _ -> fail "missing or non-numeric %s" what

let jget_strlist what = function
  | Some (Jarr xs) ->
    List.map (function Jstr s -> s | _ -> fail "non-string in %s" what) xs
  | _ -> fail "missing or non-array %s" what

let jget_engine what v =
  match jget_str what v with
  | "committed" -> `Committed
  | "vm" -> `Vm
  | "fused" -> `Fused
  | e -> fail "bad engine %S" e

let jget_span = function
  | Jobj _ as o ->
    {
      Lexing_gen.Token.line = jget_int "span line" (jmember "line" o);
      column = jget_int "span column" (jmember "column" o);
      offset = jget_int "span offset" (jmember "offset" o);
    }
  | _ -> fail "non-object span"

let jget_error = function
  | Jobj _ as o ->
    let code =
      let s = jget_str "error code" (jmember "code" o) in
      match code_of_string s with
      | Some c -> c
      | None -> fail "unknown error code %S" s
    in
    {
      code;
      message = jget_str "error message" (jmember "message" o);
      query = Option.map (fun v -> jget_str "query" (Some v)) (jmember "query" o);
      span = Option.map jget_span (jmember "span" o);
      found = Option.map (fun v -> jget_str "found" (Some v)) (jmember "found" o);
      expected = jget_strlist "expected" (jmember "expected" o);
    }
  | _ -> fail "non-object error"

let jget_outcome = function
  | Jobj _ as o -> (
    match jmember "error" o with
    | Some e -> Rejected (jget_error e)
    | None ->
      Accepted
        {
          tokens = jget_int "outcome tokens" (jmember "tokens" o);
          cst =
            Option.map (fun v -> jget_str "cst" (Some v)) (jmember "cst" o);
        })
  | _ -> fail "non-object outcome"

let jget_selection = function
  | Jobj _ as o -> (
    match (jmember "dialect" o, jmember "features" o, jmember "digest" o) with
    | Some d, None, None -> Dialect (jget_str "dialect" (Some d))
    | None, Some _, None -> Features (jget_strlist "features" (jmember "features" o))
    | None, None, Some d -> Digest (jget_str "digest" (Some d))
    | _ -> fail "selection needs exactly one of dialect/features/digest")
  | _ -> fail "non-object selection"

let frame_of_jvalue o =
  match jget_str "frame kind" (jmember "frame" o) with
  | "hello" ->
    let version = jget_int "hello version" (jmember "version" o) in
    if version <> hello_version then fail "unsupported hello version %d" version;
    Hello
      {
        client = jget_str "client" (jmember "client" o);
        engine = jget_engine "engine" (jmember "engine" o);
        selection =
          (match jmember "selection" o with
          | Some s -> jget_selection s
          | None -> fail "missing selection");
      }
  | "hello_ok" ->
    Hello_ok
      {
        digest = jget_str "digest" (jmember "digest" o);
        label = jget_str "label" (jmember "label" o);
        features = jget_int "features" (jmember "features" o);
        engine = jget_engine "engine" (jmember "engine" o);
      }
  | "request" ->
    Request
      {
        id = jget_int "id" (jmember "id" o);
        mode =
          (match jget_str "mode" (jmember "mode" o) with
          | "cst" -> Cst
          | "recognize" -> Recognize
          | m -> fail "bad mode %S" m);
        statements = jget_strlist "statements" (jmember "statements" o);
      }
  | "reply" ->
    let stats =
      match jmember "stats" o with
      | Some (Jobj _ as s) ->
        {
          statements = jget_int "stats statements" (jmember "statements" s);
          accepted = jget_int "stats accepted" (jmember "accepted" s);
          rejected = jget_int "stats rejected" (jmember "rejected" s);
          tokens = jget_int "stats tokens" (jmember "tokens" s);
          elapsed_ns =
            (let raw = jget_str "stats elapsed_ns" (jmember "elapsed_ns" s) in
             match Int64.of_string_opt raw with
             | Some v when v >= 0L -> v
             | _ -> fail "bad elapsed_ns %S" raw);
        }
      | _ -> fail "missing reply stats"
    in
    Reply
      {
        id = jget_int "id" (jmember "id" o);
        items =
          (match jmember "items" o with
          | Some (Jarr xs) -> List.map jget_outcome xs
          | _ -> fail "missing reply items");
        stats;
      }
  | "error" -> (
    match jmember "error" o with
    | Some e -> Error (jget_error e)
    | None -> fail "missing error body")
  | "ping" -> Ping (jget_str "payload" (jmember "payload" o))
  | "pong" -> Pong (jget_str "payload" (jmember "payload" o))
  | "bye" -> Bye
  | k -> fail "unknown frame kind %S" k

let decode_json ?(max_frame = default_max_frame) s =
  if String.length s > max_frame + 1 then
    Result.Error (oversized max_frame (String.length s))
  else
    let c = { src = s; limit = String.length s; pos = 0 } in
    match
      let v = jvalue c in
      jskip_ws c;
      if c.pos <> c.limit then fail "trailing bytes after frame"
      else frame_of_jvalue v
    with
    | frame -> Result.Ok frame
    | exception Fail m -> Result.Error (bad_frame m)

let encode_as = function Binary -> encode | Json -> encode_json

let decode_as ?max_frame = function
  | Binary -> decode ?max_frame
  | Json -> decode_json ?max_frame

(* --- buffered reader ----------------------------------------------------- *)

type reader = {
  read : bytes -> int -> int -> int;
  buf : Buffer.t;
  chunk : bytes;
  max_frame : int;
  mutable enc : encoding option;
  mutable eof : bool;
}

let reader ?(max_frame = default_max_frame) read =
  { read; buf = Buffer.create 4096; chunk = Bytes.create 4096;
    max_frame; enc = None; eof = false }

let reader_encoding r = r.enc

(* One refill step: [true] if bytes arrived. [Unix.read] exceptions are
   treated as end-of-stream: whether the peer reset or vanished mid-frame,
   the caller sees the same truncation discipline. *)
let refill r =
  if r.eof then false
  else
    let n =
      try r.read r.chunk 0 (Bytes.length r.chunk) with
      | Unix.Unix_error _ | Sys_error _ | End_of_file -> 0
    in
    if n = 0 then begin
      r.eof <- true;
      false
    end
    else begin
      Buffer.add_subbytes r.buf r.chunk 0 n;
      true
    end

let buffered r = Buffer.length r.buf

let consume r n =
  let rest = Buffer.sub r.buf n (Buffer.length r.buf - n) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf rest

let rec read_frame r =
  match r.enc with
  | None ->
    if buffered r > 0 || refill r then begin
      r.enc <-
        Some (if Buffer.nth r.buf 0 = '{' then Json else Binary);
      read_frame r
    end
    else Result.Ok None
  | Some Binary -> read_binary r
  | Some Json -> read_json r

and read_binary r =
  if buffered r >= 4 then begin
    let b i = Char.code (Buffer.nth r.buf i) in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > r.max_frame then Result.Error (oversized r.max_frame len)
    else if len = 0 then Result.Error (bad_frame "empty frame")
    else if buffered r >= 4 + len then begin
      let raw = Buffer.sub r.buf 0 (4 + len) in
      consume r (4 + len);
      match decode ~max_frame:r.max_frame raw with
      | Result.Ok f -> Result.Ok (Some f)
      | Result.Error e -> Result.Error e
    end
    else if refill r then read_binary r
    else
      Result.Error
        (bad_frame
           (Printf.sprintf
              "stream ended mid-frame: %d of %d payload byte(s) received"
              (buffered r - 4) len))
  end
  else if refill r then read_binary r
  else if buffered r = 0 then Result.Ok None
  else
    Result.Error
      (bad_frame
         (Printf.sprintf "stream ended mid-frame: %d header byte(s) received"
            (buffered r)))

and read_json r =
  let newline () =
    let n = buffered r in
    let rec scan i = if i >= n then None
      else if Buffer.nth r.buf i = '\n' then Some i
      else scan (i + 1)
    in
    scan 0
  in
  match newline () with
  | Some i ->
    let line = Buffer.sub r.buf 0 i in
    consume r (i + 1);
    (match decode_json ~max_frame:r.max_frame line with
    | Result.Ok f -> Result.Ok (Some f)
    | Result.Error e -> Result.Error e)
  | None ->
    if buffered r > r.max_frame then
      Result.Error (oversized r.max_frame (buffered r))
    else if refill r then read_json r
    else if buffered r = 0 then Result.Ok None
    else
      Result.Error
        (bad_frame
           (Printf.sprintf "stream ended mid-frame: %d byte(s) without newline"
              (buffered r)))
