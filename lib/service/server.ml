(* The parser-service daemon. One acceptor domain deals connections onto a
   shared queue; [workers] worker domains each pop and serve one connection
   to completion — the same Domain.spawn fan-out as
   [Session.parse_batch ~domains], lifted from statements to connections.
   Everything the domains share (the front-end cache, counters, the live
   connection set) sits behind one mutex; the generated front-ends
   themselves are immutable and are parsed on lock-free. *)

type stats = {
  connections : int;
  active : int;
  requests : int;
  wire_errors : int;
}

type t = {
  listen_fd : Unix.file_descr;
  addr : Wire.address;
  max_frame : int;
  stream : bool;  (* accept raw ['S'] streaming connections *)
  cache : Cache.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  pending : Unix.file_descr Queue.t;
  mutable live : Unix.file_descr list;  (* connections being served *)
  mutable stopping : bool;
  mutable stopped : bool;
  mutable connections : int;
  mutable active : int;
  mutable requests : int;
  mutable wire_errors : int;
  mutable acceptor : unit Domain.t option;
  mutable pool : unit Domain.t list;
}

let address t = t.addr
let cache t = t.cache

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      connections = t.connections;
      active = t.active;
      requests = t.requests;
      wire_errors = t.wire_errors;
    }
  in
  Mutex.unlock t.lock;
  s

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- plumbing ---------------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let written = Unix.write_substring fd s off (n - off) in
      go (off + written)
  in
  go 0

(* Best-effort frame send: the peer may already be gone (mid-frame
   disconnect tests do exactly this); a failed courtesy error must never
   take the worker down. *)
let send fd enc frame =
  try
    write_all fd (Wire.encode_as enc frame);
    true
  with Unix.Unix_error _ | Sys_error _ -> false

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- per-connection protocol ------------------------------------------- *)

let outcome_of_item mode (item : Session.item) =
  match item.Session.result with
  | Ok cst ->
    Wire.Accepted
      {
        tokens = item.Session.token_count;
        cst =
          (match mode with
          | Wire.Cst -> Some (Fmt.str "%a" Parser_gen.Cst.pp cst)
          | Wire.Recognize -> None);
      }
  | Error e -> Wire.Rejected (Wire.error_of_core ~query:item.Session.sql e)

let reply_of_batch mode id (batch : Session.batch) =
  let s = batch.Session.batch_stats in
  {
    Wire.id;
    items = List.map (outcome_of_item mode) batch.Session.items;
    stats =
      {
        Wire.statements = s.Session.statements;
        accepted = s.Session.accepted;
        rejected = s.Session.rejected;
        tokens = s.Session.tokens;
        elapsed_ns = Int64.of_float (s.Session.elapsed *. 1e9);
      };
  }

let resolve_hello t (h : Wire.hello) =
  let generate label config =
    match locked t (fun () -> Cache.generate ~label t.cache config) with
    | Ok g -> Ok g
    | Error e ->
      Error
        (Wire.error Wire.Invalid_config
           (Fmt.str "%s: %a" label Core.pp_error e))
  in
  match h.Wire.selection with
  | Wire.Dialect name -> (
    match Dialects.Dialect.find name with
    | Some d -> generate d.Dialects.Dialect.name d.Dialects.Dialect.config
    | None ->
      Error
        (Wire.error Wire.Unknown_dialect
           (Printf.sprintf "unknown dialect %S (known: %s)" name
              (String.concat ", "
                 (List.map
                    (fun (d : Dialects.Dialect.t) -> d.name)
                    Dialects.Dialect.all)))))
  | Wire.Features names ->
    generate "custom" (Sql.Model.close (Feature.Config.of_names names))
  | Wire.Digest hex -> (
    match locked t (fun () -> Cache.find_hex t.cache hex) with
    | Some g -> Ok g
    | None ->
      Error
        (Wire.error Wire.Unknown_digest
           (Printf.sprintf
              "no resident front-end has digest %S; hello with the dialect \
               or feature list first"
              hex)))

let count_error t = locked t (fun () -> t.wire_errors <- t.wire_errors + 1)

(* --- raw streaming mode ------------------------------------------------- *)

(* A streaming connection opens with ['S'] (no framed protocol can: binary
   frames start [0x00], JSON ones ['{']), then one header line
   [<dialect> [committed|vm|fused]\n], then unframed SQL bytes until the
   client shuts down its write side. The server pipes the bytes through
   {!Session.parse_stream} — fixed memory ceiling, statements split at
   top-level [;] exactly like {!Core.split_statements} — answering one line
   per statement as it completes, and a final [done] line with totals. *)

let stream_line_of_item (item : Session.item) =
  match item.Session.result with
  | Ok _ -> Printf.sprintf "ok %d\n" item.Session.token_count
  | Error e ->
    let flat =
      String.map
        (function '\n' -> ' ' | c -> c)
        (Fmt.str "%a" Core.pp_error e)
    in
    Printf.sprintf "err %s\n" flat

let stream_done_line (s : Session.stats) =
  Printf.sprintf "done %d %d %d\n" s.Session.statements s.Session.tokens
    s.Session.rejected

(* The header is read byte-wise: reading in chunks could swallow the first
   bytes of the SQL body. *)
let read_stream_header fd =
  let b = Buffer.create 32 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> None
    | _ ->
      let c = Bytes.get one 0 in
      if c = '\n' then Some (Buffer.contents b)
      else if Buffer.length b >= 256 then None
      else begin
        Buffer.add_char b c;
        go ()
      end
    | exception Unix.Unix_error _ -> None
  in
  go ()

let stream_engine_of_string = function
  | "committed" -> Some `Committed
  | "vm" -> Some `Vm
  | "fused" -> Some `Fused
  | _ -> None

let serve_stream t fd =
  let fail msg =
    (try write_all fd ("err " ^ msg ^ "\n")
     with Unix.Unix_error _ | Sys_error _ -> ());
    (* Drain what the client already streamed before the connection closes:
       closing with unread bytes in the receive queue resets the connection
       and can destroy the error line before the client reads it. Bounded,
       so a hostile endless stream cannot pin the worker. *)
    let buf = Bytes.create 8192 in
    let rec drain budget =
      if budget > 0 then
        match Unix.read fd buf 0 8192 with
        | 0 -> ()
        | n -> drain (budget - n)
        | exception Unix.Unix_error _ -> ()
    in
    drain (16 * 1024 * 1024);
    count_error t
  in
  if not t.stream then
    fail "streaming disabled (start the server with --stream)"
  else
    match read_stream_header fd with
    | None -> fail "missing stream header line (<dialect> [engine])"
    | Some header -> (
      let parts =
        List.filter
          (fun s -> s <> "")
          (String.split_on_char ' ' (String.trim header))
      in
      let resolved =
        match parts with
        | [ d ] -> Ok (d, `Fused)
        | [ d; e ] -> (
          match stream_engine_of_string e with
          | Some engine -> Ok (d, engine)
          | None ->
            Error
              (Printf.sprintf "unknown engine %S (try committed, vm, fused)" e))
        | _ -> Error "stream header must be: <dialect> [committed|vm|fused]"
      in
      match resolved with
      | Error msg -> fail msg
      | Ok (name, engine) -> (
        match Dialects.Dialect.find name with
        | None -> fail (Printf.sprintf "unknown dialect %S" name)
        | Some d -> (
          match
            locked t (fun () ->
                Cache.generate ~label:d.Dialects.Dialect.name t.cache
                  d.Dialects.Dialect.config)
          with
          | Error e -> fail (Fmt.str "%a" Core.pp_error e)
          | Ok g -> (
            let session = Session.create ~engine g in
            match
              Session.parse_stream session
                ~on_item:(fun item -> write_all fd (stream_line_of_item item))
                ~read:(fun buf off len -> Unix.read fd buf off len)
            with
            | stats ->
              locked t (fun () -> t.requests <- t.requests + 1);
              (try write_all fd (stream_done_line stats)
               with Unix.Unix_error _ | Sys_error _ -> ())
            | exception (Unix.Unix_error _ | Sys_error _) ->
              (* the peer vanished mid-stream *)
              count_error t))))

(* Serve one framed connection to completion. Every exit path is
   structured: the client either saw a [Reply]/[Pong] per frame, or one
   final [Error] explaining why the server is hanging up. The routing in
   [serve] consumed the connection's first byte, so it is pushed back in
   front of the {!Wire.reader}'s reads (the reader needs it: it is the
   encoding magic). *)
let serve_framed t fd ~first =
  let pushed_back = ref true in
  let reader =
    Wire.reader ~max_frame:t.max_frame (fun buf off len ->
        if !pushed_back then begin
          pushed_back := false;
          Bytes.set buf off first;
          1
        end
        else Unix.read fd buf off len)
  in
  let enc () = Option.value (Wire.reader_encoding reader) ~default:Wire.Binary in
  let bail error =
    ignore (send fd (enc ()) (Wire.Error error));
    count_error t
  in
  match Wire.read_frame reader with
  | Ok None -> () (* connected and left without a word *)
  | Error e -> bail e
  | Ok (Some (Wire.Hello hello)) -> (
    match resolve_hello t hello with
    | Error e -> bail e
    | Ok g ->
      let session = Session.create ~engine:hello.Wire.engine g in
      let ok =
        send fd (enc ())
          (Wire.Hello_ok
             {
               Wire.digest =
                 Digest_key.to_hex (Digest_key.of_config g.Core.config);
               label = g.Core.label;
               features = Feature.Config.cardinal g.Core.config;
               engine = hello.Wire.engine;
             })
      in
      let rec loop () =
        match Wire.read_frame reader with
        | Ok None -> ()
        | Error e -> bail e
        | Ok (Some frame) -> (
          match frame with
          | Wire.Request r ->
            let reply =
              match Session.parse_batch session r.Wire.statements with
              | batch -> Wire.Reply (reply_of_batch r.Wire.mode r.Wire.id batch)
              | exception exn ->
                (* A poisoned statement must poison its request only. *)
                count_error t;
                Wire.Error
                  (Wire.error Wire.Internal
                     (Printf.sprintf "request %d failed: %s" r.Wire.id
                        (Printexc.to_string exn)))
            in
            locked t (fun () -> t.requests <- t.requests + 1);
            if send fd (enc ()) reply then loop ()
          | Wire.Ping payload ->
            if send fd (enc ()) (Wire.Pong payload) then loop ()
          | Wire.Bye -> ()
          | Wire.Hello _ | Wire.Hello_ok _ | Wire.Reply _ | Wire.Error _
          | Wire.Pong _ ->
            bail
              (Wire.error Wire.Unsupported
                 (Fmt.str "unexpected %a" Wire.pp_frame frame)))
      in
      if ok then loop ())
  | Ok (Some frame) ->
    bail
      (Wire.error Wire.Bad_hello
         (Fmt.str "expected hello, got %a" Wire.pp_frame frame))

(* First-byte routing: ['S'] opens the raw streaming mode, anything else
   (the [0x00]/['{'] encoding magic) goes to the framed protocol. *)
let serve t fd =
  let first = Bytes.create 1 in
  let got = try Unix.read fd first 0 1 with Unix.Unix_error _ -> 0 in
  if got = 0 then () (* connected and left without a word *)
  else if Bytes.get first 0 = 'S' then serve_stream t fd
  else serve_framed t fd ~first:(Bytes.get first 0)

(* --- pool -------------------------------------------------------------- *)

let worker t () =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.pending && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if t.stopping then begin
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let fd = Queue.pop t.pending in
      t.active <- t.active + 1;
      t.live <- fd :: t.live;
      Mutex.unlock t.lock;
      (try serve t fd with _ -> ());
      close_quietly fd;
      locked t (fun () ->
          t.active <- t.active - 1;
          t.live <- List.filter (fun fd' -> fd' != fd) t.live);
      next ()
    end
  in
  next ()

(* Poll-accept so shutdown is race-free: closing an fd another domain is
   blocked in [accept] on is not guaranteed to wake it, but a [select] with
   a short timeout re-checks the stopping flag on its own. *)
let acceptor t () =
  let rec loop () =
    if not (locked t (fun () -> t.stopping)) then
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> () (* listener closed: shutting down *)
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          Mutex.lock t.lock;
          if t.stopping then begin
            Mutex.unlock t.lock;
            close_quietly fd
          end
          else begin
            t.connections <- t.connections + 1;
            Queue.push fd t.pending;
            Condition.signal t.nonempty;
            Mutex.unlock t.lock;
            loop ()
          end)
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

let bind_listener addr ~backlog =
  let protect fd f =
    match f () with
    | v -> Ok v
    | exception Unix.Unix_error (err, _, _) ->
      close_quietly fd;
      Error
        (Fmt.str "cannot listen on %a: %s" Wire.pp_address addr
           (Unix.error_message err))
  in
  match addr with
  | Wire.Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    protect fd (fun () ->
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ ->
            (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd backlog;
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> Wire.Tcp (host, p)
          | _ -> addr
        in
        (fd, bound))
  | Wire.Unix_socket path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    protect fd (fun () ->
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd backlog;
        (fd, addr))

let start ?(workers = 4) ?(backlog = 64) ?(max_frame = Wire.default_max_frame)
    ?(stream = false) ?cache addr =
  (* A worker writing a reply into a connection the client already closed
     must see EPIPE, not die of SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match bind_listener addr ~backlog with
  | Error _ as e -> e
  | Ok (listen_fd, bound) ->
    let t =
      {
        listen_fd;
        addr = bound;
        max_frame;
        stream;
        cache = (match cache with Some c -> c | None -> Cache.create ());
        lock = Mutex.create ();
        nonempty = Condition.create ();
        pending = Queue.create ();
        live = [];
        stopping = false;
        stopped = false;
        connections = 0;
        active = 0;
        requests = 0;
        wire_errors = 0;
        acceptor = None;
        pool = [];
      }
    in
    t.pool <- List.init (max 1 workers) (fun _ -> Domain.spawn (worker t));
    t.acceptor <- Some (Domain.spawn (acceptor t));
    Ok t

let stop t =
  let proceed =
    locked t (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          t.stopping <- true;
          Condition.broadcast t.nonempty;
          true
        end)
  in
  if proceed then begin
    (* The acceptor re-checks the flag on its poll tick; workers blocked on
       the queue were woken by the broadcast, and workers mid-read get their
       connection shut down under them. *)
    Option.iter Domain.join t.acceptor;
    close_quietly t.listen_fd;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      (locked t (fun () -> t.live));
    List.iter Domain.join t.pool;
    Queue.iter close_quietly t.pending;
    Queue.clear t.pending;
    match t.addr with
    | Wire.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Wire.Tcp _ -> ()
  end
