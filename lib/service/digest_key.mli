(** Canonical cache keys for feature configurations.

    The composed grammar and the parser generated from it are a pure
    function of the selected-feature set, so a configuration's digest can
    key memoized compose+generate results. The digest is order-insensitive
    by construction: it hashes the sorted feature names (each prefixed with
    its length so concatenation is unambiguous), which is exactly the
    set-equality quotient of {!Feature.Config.t}. *)

type t = private string
(** Hex digest, 32 characters. *)

val of_config : Feature.Config.t -> t
(** [of_config c] is the canonical digest of the selected-feature set of
    [c]. Two configurations have equal digests iff they select the same
    features. *)

val to_hex : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
