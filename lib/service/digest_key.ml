type t = string

let of_config config =
  (* String_set.elements is sorted, so the digest never depends on how the
     selection was built up. Length-prefixing keeps distinct name lists from
     colliding after concatenation ("ab"+"c" vs "a"+"bc"). *)
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string buf (string_of_int (String.length name));
      Buffer.add_char buf ':';
      Buffer.add_string buf name;
      Buffer.add_char buf ';')
    (Feature.Config.to_names config);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let to_hex d = d
let equal = String.equal
let compare = String.compare
let pp = Fmt.string
