(** The [sqlpl serve] daemon.

    A long-running parser service speaking the {!Wire} protocol over TCP or
    Unix sockets. The process model mirrors {!Session.parse_batch}'s domain
    sharding, lifted from statements to connections: one acceptor domain
    deals incoming connections onto a shared queue, and a pool of worker
    domains each serves one connection to completion at a time — so up to
    [workers] connections parse truly in parallel, all sharing the one
    config-keyed front-end {!Cache} (every mutation of which is serialized
    behind the server's lock).

    {2 Connection lifecycle}

    - the first byte picks the encoding: [0x00] binary, ['{'] newline-JSON
      debug — the server answers in kind;
    - the first frame must be a [Hello] carrying the client's engine choice
      and configuration selection (dialect name, explicit feature list, or
      the hex digest of a front-end already resident in the cache); the
      server resolves it through the shared cache and answers [Hello_ok]
      with the canonical digest — or a structured [Error]
      ([unknown_dialect], [invalid_config], [unknown_digest], [bad_hello])
      and closes;
    - each [Request] runs the whole statement batch through one
      {!Session.parse_batch} on the pinned front-end and answers a [Reply]
      whose items are byte-identical to the library results: accepted
      statements carry token counts (and the rendered CST in [cst] mode),
      rejected ones a wire error with the query text, span, found token and
      decoded expected set attached;
    - [Ping] answers [Pong]; [Bye] or end-of-stream closes. A malformed or
      oversized frame draws a best-effort structured [Error] before the
      close. No client behavior — disconnects mid-frame, dribbled writes,
      hostile length prefixes, poisoned statements — takes the daemon or
      any other connection down.

    {2 Raw streaming mode}

    When the server was started with [~stream:true], a connection whose
    first byte is ['S'] bypasses the framed protocol entirely: the client
    sends one header line [<dialect> [committed|vm|fused]\n] (engine
    defaults to [fused]) followed by raw SQL bytes until it shuts down its
    write side. The server pipes the bytes through
    {!Session.parse_stream} — statements split at top-level [;] exactly
    like {!Core.split_statements}, memory bounded by the chunk size plus
    the largest statement — answering one [ok <tokens>] or
    [err <message>] line per statement as it completes, then a final
    [done <statements> <tokens> <rejected>] line. A bad header draws one
    [err ...] line and the close. *)

type t

val start :
  ?workers:int ->
  ?backlog:int ->
  ?max_frame:int ->
  ?stream:bool ->
  ?cache:Cache.t ->
  Wire.address ->
  (t, string) result
(** Bind, listen and spin up the acceptor + worker pool. [workers]
    (default [4], clipped to at least [1]) is the number of connections
    served in parallel; [max_frame] (default {!Wire.default_max_frame})
    bounds accepted frames. [stream] (default [false]) additionally
    accepts raw streaming connections (see the lifecycle notes above).
    [cache] (a fresh one per server by default) is shared by every
    connection, so concurrent sessions on one configuration compose it
    exactly once. Binding a TCP port that is already in use — or a Unix
    path whose socket file exists — fails with a clean [Error] naming the
    address; nothing is left running. *)

val address : t -> Wire.address
(** The bound address. For TCP requests with port [0] this carries the
    port actually allocated. *)

val cache : t -> Cache.t

type stats = {
  connections : int;  (** accepted since start *)
  active : int;       (** currently being served *)
  requests : int;     (** parse requests answered *)
  wire_errors : int;  (** structured errors sent (protocol faults included) *)
}

val stats : t -> stats
(** A consistent snapshot; safe from any domain. *)

val stop : t -> unit
(** Shut down: stop accepting, interrupt in-flight connections, join every
    domain, and unlink the Unix socket path if one was bound. Idempotent. *)

val outcome_of_item : Wire.mode -> Session.item -> Wire.outcome
(** The exact library-result-to-wire mapping replies are built from —
    exposed so the determinism tests and the service bench can render
    {!Session.parse_batch} output locally and demand byte equality with
    what came over the wire. *)

val reply_of_batch : Wire.mode -> int -> Session.batch -> Wire.reply

val stream_line_of_item : Session.item -> string
(** The exact per-statement line of the raw streaming mode
    ([ok <tokens>\n] / [err <flattened message>\n]) — exposed so tests can
    render {!Session.parse_stream} output locally and demand byte equality
    with what came over the socket. *)

val stream_done_line : Session.stats -> string
(** The final [done <statements> <tokens> <rejected>\n] line. *)
