type t = {
  fd : Unix.file_descr;
  encoding : Wire.encoding;
  reader : Wire.reader;
  mutable next_id : int;
  mutable closed : bool;
}

let io_error fmt =
  Printf.ksprintf (fun m -> Error (Wire.error Wire.Io m)) fmt

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let written = Unix.write_substring fd s off (n - off) in
      go (off + written)
  in
  go 0

let send t frame =
  match write_all t.fd (Wire.encode_as t.encoding frame) with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
    io_error "send failed: %s" (Unix.error_message err)

(* One round trip. The server answers every frame with exactly one frame,
   so reading is a simple blocking pull; a server-sent [Error] is the
   result, not an exception. *)
let roundtrip t frame =
  match send t frame with
  | Error _ as e -> e
  | Ok () -> (
    match Wire.read_frame t.reader with
    | Ok (Some f) -> Ok f
    | Ok None -> io_error "server closed the connection"
    | Error e -> Error e)

let dial addr =
  let domain, sockaddr =
    match addr with
    | Wire.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    | Wire.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    io_error "connect %s failed: %s"
      (Fmt.str "%a" Wire.pp_address addr)
      (Unix.error_message err)

let connect ?(encoding = Wire.Binary) ?(client = "sqlpl-client")
    ?(engine = `Committed) ?max_frame ~selection addr =
  match dial addr with
  | Error e -> Error e
  | Ok fd ->
    let t =
      {
        fd;
        encoding;
        reader =
          Wire.reader ?max_frame (fun buf off len -> Unix.read fd buf off len);
        next_id = 0;
        closed = false;
      }
    in
    let close_on_error r =
      match r with
      | Ok _ -> r
      | Error _ ->
        t.closed <- true;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        r
    in
    close_on_error
      (match
         roundtrip t (Wire.Hello { Wire.client; engine; selection })
       with
      | Error _ as e -> e
      | Ok (Wire.Hello_ok ok) -> Ok (t, ok)
      | Ok (Wire.Error e) -> Error e
      | Ok f ->
        Error
          (Wire.error Wire.Bad_frame
             (Fmt.str "expected hello_ok, got %a" Wire.pp_frame f)))

let request ?(mode = Wire.Cst) t statements =
  let id = t.next_id in
  t.next_id <- id + 1;
  match roundtrip t (Wire.Request { Wire.id; mode; statements }) with
  | Error _ as e -> e
  | Ok (Wire.Reply r) when r.Wire.id = id -> Ok r
  | Ok (Wire.Reply r) ->
    Error
      (Wire.error Wire.Bad_frame
         (Printf.sprintf "reply for request %d, expected %d" r.Wire.id id))
  | Ok (Wire.Error e) -> Error e
  | Ok f ->
    Error
      (Wire.error Wire.Bad_frame (Fmt.str "expected reply, got %a" Wire.pp_frame f))

let ping t payload =
  match roundtrip t (Wire.Ping payload) with
  | Error _ as e -> e
  | Ok (Wire.Pong p) -> Ok p
  | Ok (Wire.Error e) -> Error e
  | Ok f ->
    Error
      (Wire.error Wire.Bad_frame (Fmt.str "expected pong, got %a" Wire.pp_frame f))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try write_all t.fd (Wire.encode_as t.encoding Wire.Bye)
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
