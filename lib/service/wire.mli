(** Wire protocol of the parser service.

    [sqlpl serve] speaks length-prefixed binary frames over TCP or Unix
    sockets, with a newline-JSON debug encoding carrying exactly the same
    frames. The two encodings are distinguished by the first byte a client
    sends: a binary frame's length prefix of any frame small enough to be
    legal starts with [0x00], while a JSON frame starts with ['{'] — so the
    server auto-detects the encoding per connection and answers in kind.

    {2 Binary frame layout}

    {v
    frame     := u32(len) u8(tag) payload[len-1]     len = |tag+payload|
    str       := u32(n) byte[n]                      bytes are opaque
    opt(x)    := u8(0) | u8(1) x
    list(x)   := u32(n) x*n
    u32/u64   — big-endian
    v}

    Every integer field is bounds-checked against the remaining payload
    before anything is allocated, so decoding arbitrary bytes returns a
    structured {!error} — it never raises and never over-allocates.

    {2 Error discipline}

    Modeled on [ocaml-mssql]'s [Mssql_error]: a wire error always carries
    enough to act on without the server's logs — a machine-readable
    {!code}, a human message, and (whenever the failure concerns a
    statement) the offending query text, the source {!span}, the token
    found there and the decoded expected set. *)

type address =
  | Tcp of string * int  (** host, port *)
  | Unix_socket of string  (** filesystem path *)

val pp_address : address Fmt.t

type span = Lexing_gen.Token.position

type code =
  | Bad_frame  (** malformed or truncated frame *)
  | Oversized  (** length prefix beyond the connection's frame limit *)
  | Bad_hello  (** first frame was not a well-formed [Hello] *)
  | Unknown_dialect
  | Invalid_config  (** selection failed validation or composition *)
  | Unknown_digest  (** [Digest] hello names no resident front-end *)
  | Lex_error
  | Parse_error
  | Unsupported  (** well-formed frame the peer does not serve *)
  | Io  (** transport-level failure: refused, reset, unexpected EOF *)
  | Internal

val code_to_string : code -> string
val code_of_string : string -> code option

type error = {
  code : code;
  message : string;
  query : string option;  (** the offending statement, verbatim *)
  span : span option;  (** failure position within [query] *)
  found : string option;  (** token kind found at [span] *)
  expected : string list;  (** decoded expected set, sorted *)
}

val error : ?query:string -> ?span:span -> ?found:string ->
  ?expected:string list -> code -> string -> error

val pp_error : error Fmt.t

val error_of_core : query:string -> Core.error -> error
(** Attach the statement to a library error: lex and parse errors keep
    their span/found/expected, anything else maps to {!Internal}. *)

type engine = [ `Committed | `Vm | `Fused ]

type selection =
  | Dialect of string  (** a shipped dialect, by name *)
  | Features of string list  (** explicit features, closed server-side *)
  | Digest of string  (** hex digest of a front-end already resident in the
                          server's cache *)

type hello = { client : string; engine : engine; selection : selection }

type hello_ok = {
  digest : string;  (** canonical config digest, hex *)
  label : string;
  features : int;
  engine : engine;
}

type mode =
  | Cst  (** parse and return the rendered concrete syntax tree *)
  | Recognize  (** accept/reject with token counts only *)

type request = { id : int; mode : mode; statements : string list }

type outcome =
  | Accepted of { tokens : int; cst : string option }
      (** [cst] is the rendered tree in {!Cst} mode, [None] in
          {!Recognize} mode *)
  | Rejected of error

type reply_stats = {
  statements : int;
  accepted : int;
  rejected : int;
  tokens : int;
  elapsed_ns : int64;  (** server-side wall time for the batch *)
}

type reply = { id : int; items : outcome list; stats : reply_stats }

type frame =
  | Hello of hello
  | Hello_ok of hello_ok
  | Request of request
  | Reply of reply
  | Error of error
  | Ping of string
  | Pong of string
  | Bye

val pp_frame : frame Fmt.t

(** {1 Codecs} *)

val default_max_frame : int
(** 16 MiB. *)

type encoding = Binary | Json

val encode : frame -> string
(** Complete binary frame, length prefix included. *)

val decode : ?max_frame:int -> string -> (frame, error) result
(** Decode exactly one binary frame; trailing bytes are a {!Bad_frame}.
    Total, never raises. *)

val encode_json : frame -> string
(** One line of JSON, ['\n']-terminated. Every byte outside printable
    ASCII is escaped, so the line contains no raw control characters and
    round-trips arbitrary payloads. *)

val decode_json : ?max_frame:int -> string -> (frame, error) result
(** Decode one JSON frame (with or without the trailing newline). Total,
    never raises. *)

val encode_as : encoding -> frame -> string
val decode_as : ?max_frame:int -> encoding -> string -> (frame, error) result

val encode_items : outcome list -> string
(** Canonical byte encoding of a reply's items section — the determinism
    tests compare server replies against library results on these exact
    bytes. *)

(** {1 Buffered frame reader}

    Pulls frames out of a byte stream via a [read] function with
    [Unix.read]'s contract ([read buf off len] returns [0] at end of
    stream). The encoding is detected from the first byte. *)

type reader

val reader : ?max_frame:int -> (bytes -> int -> int -> int) -> reader

val reader_encoding : reader -> encoding option
(** [None] until the first byte has been read. *)

val read_frame : reader -> (frame option, error) result
(** The next frame; [Ok None] on a clean end of stream at a frame
    boundary. A stream ending mid-frame is a {!Bad_frame}, a length prefix
    beyond the limit an {!Oversized}, and an I/O exception from [read] an
    {!Io} — all returned, never raised. *)
