(** Client side of the {!Wire} protocol.

    A thin blocking client: [connect] dials the daemon, performs the hello
    handshake (pinning a front-end by dialect, feature list, or resident
    digest) and hands back the negotiated {!Wire.hello_ok}; [request] sends
    one statement batch and waits for its reply. Transport failures and
    server-sent [Error] frames both surface as {!Wire.error} values —
    nothing here raises for protocol reasons. One client is one
    connection; use one per thread. *)

type t

val connect :
  ?encoding:Wire.encoding ->
  ?client:string ->
  ?engine:Wire.engine ->
  ?max_frame:int ->
  selection:Wire.selection ->
  Wire.address ->
  (t * Wire.hello_ok, Wire.error) result
(** Dial, send [Hello], await [Hello_ok]. [encoding] (default {!Wire.Binary})
    picks the binary frames or the newline-JSON debug encoding — the server
    follows the client's choice. A server-rejected hello returns the
    server's structured error; a failed dial returns an {!Wire.Io} error. *)

val request :
  ?mode:Wire.mode -> t -> string list -> (Wire.reply, Wire.error) result
(** Send one batch (default mode {!Wire.Cst}) and block for the reply. *)

val ping : t -> string -> (string, Wire.error) result

val close : t -> unit
(** Send [Bye] best-effort and close the socket. Idempotent. *)
