type item = {
  index : int;
  sql : string;
  token_count : int;
  result : (Parser_gen.Cst.t, Core.error) result;
}

type stats = {
  statements : int;
  accepted : int;
  rejected : int;
  tokens : int;
  elapsed : float;
  statements_per_second : float;
  tokens_per_second : float;
  furthest_error : (int * Parser_gen.Engine.parse_error) option;
}

type engine = [ `Committed | `Vm | `Fused ]

type t = {
  front_end : Core.generated;
  engine : engine;
  mutable acc_statements : int;
  mutable acc_accepted : int;
  mutable acc_tokens : int;
  mutable acc_elapsed : float;
  mutable acc_furthest : (int * Parser_gen.Engine.parse_error) option;
}

let create ?(engine = `Committed) front_end =
  {
    front_end;
    engine;
    acc_statements = 0;
    acc_accepted = 0;
    acc_tokens = 0;
    acc_elapsed = 0.;
    acc_furthest = None;
  }

let of_cache ?label ?engine cache config =
  Result.map (create ?engine) (Cache.generate ?label cache config)

let front_end t = t.front_end
let engine t = t.engine

type batch = {
  items : item list;
  batch_stats : stats;
  shards : int;
}

let dispatch_summary t = Parser_gen.Engine.summary t.front_end.Core.parser

let further (a : (int * Parser_gen.Engine.parse_error) option) b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (_, ea), Some (_, eb) ->
    if eb.Parser_gen.Engine.pos.Lexing_gen.Token.offset
       > ea.Parser_gen.Engine.pos.Lexing_gen.Token.offset
    then b
    else a

let rates ~statements ~tokens elapsed =
  if elapsed > 1e-9 then (float statements /. elapsed, float tokens /. elapsed)
  else (0., 0.)

(* Wall-clock timing: [Sys.time] reports processor time, which misstates
   throughput and sums over workers when the batch is sharded across
   domains. *)
let now () = Unix.gettimeofday ()

let pp_stats ppf s =
  let pp_furthest ppf = function
    | None -> Fmt.string ppf "none"
    | Some (i, e) ->
      Fmt.pf ppf "statement %d, %a" i Parser_gen.Engine.pp_parse_error e
  in
  Fmt.pf ppf
    "%d statement(s): %d accepted, %d rejected; %d token(s) in %.3fms \
     (%.0f statements/s, %.0f tokens/s); furthest error: %a"
    s.statements s.accepted s.rejected s.tokens (s.elapsed *. 1e3)
    s.statements_per_second s.tokens_per_second pp_furthest s.furthest_error

(* Scan and parse one statement against the pinned front-end. On the
   committed engine the scanner's token array is threaded straight into the
   parser and its length gives the token count, so the stream is never
   re-walked. On the VM engine the statement goes through the
   struct-of-arrays stream instead — no token records on the accept path —
   which is safe under sharding because the stream arena and the VM's
   stacks are domain-local. *)
let parse_one engine front_end index sql =
  let token_count, result =
    match engine with
    | `Committed -> (
      match Core.scan_tokens front_end sql with
      | Error e -> (0, Error e)
      | Ok tokens -> (
        (* Drop the EOF sentinel from the count. *)
        let token_count = Array.length tokens - 1 in
        match Parser_gen.Engine.parse_tokens front_end.Core.parser tokens with
        | Ok cst -> (token_count, Ok cst)
        | Error e -> (token_count, Error (Core.Parse_error e))))
    | `Vm -> (
      match Core.scan_soa front_end sql with
      | Error e -> (0, Error e)
      | Ok soa -> (
        let token_count = Lexing_gen.Scanner.soa_count soa in
        match
          Parser_gen.Engine.parse_soa front_end.Core.parser
            ~scanner:front_end.Core.scanner soa
        with
        | Ok cst -> (token_count, Ok cst)
        | Error e -> (token_count, Error (Core.Parse_error e))))
    | `Fused ->
      (* Single pass over the bytes: the VM drives the scanner cursor, and
         the token count falls out of the run. *)
      Core.parse_cst_fused_counted front_end sql
  in
  { index; sql; token_count; result }

(* Shard statements across [domains] workers. The front-end is immutable
   after generation (interner, scanner tables and compiled rules are never
   written post-[create]), so sharing it across domains is safe. Indices
   are dealt round-robin for balance; each worker returns its own results
   and the merge reassembles original order, so the outcome is identical
   to the single-domain run. *)
let run_sharded engine front_end domains stmts =
  let n = Array.length stmts in
  let shard d =
    let rec go i acc =
      if i >= n then List.rev acc
      else go (i + domains) (parse_one engine front_end i stmts.(i) :: acc)
    in
    go d []
  in
  let workers =
    List.init (domains - 1) (fun d -> Domain.spawn (fun () -> shard (d + 1)))
  in
  let mine = shard 0 in
  let shards = mine :: List.map Domain.join workers in
  let out = Array.make n None in
  List.iter
    (List.iter (fun (it : item) -> out.(it.index) <- Some (it)))
    shards;
  Array.to_list
    (Array.map
       (function Some it -> it | None -> assert false (* every index dealt *))
       out)

let parse_batch ?(clamp = true) ?(domains = 1) t sqls =
  let stmts = Array.of_list sqls in
  let n = Array.length stmts in
  (* Oversharding a small host is strictly counterproductive (E16 recorded
     a 0.04x collapse at 4 domains on 1 core): unless the caller opts out,
     the requested shard count is clamped to what the runtime recommends. *)
  let domains =
    let available = Domain.recommended_domain_count () in
    if clamp && domains > available then begin
      Printf.eprintf
        "sqlpl: warning: %d domain(s) requested but the runtime recommends \
         %d; clamping\n\
         %!"
        domains available;
      available
    end
    else domains
  in
  let shards = if domains <= 1 || n < 2 then 1 else min domains n in
  let t0 = now () in
  let items =
    if shards = 1 then
      List.init n (fun i -> parse_one t.engine t.front_end i stmts.(i))
    else run_sharded t.engine t.front_end shards stmts
  in
  let elapsed = now () -. t0 in
  let statements = n in
  let accepted =
    List.length (List.filter (fun i -> Result.is_ok i.result) items)
  in
  let tokens = List.fold_left (fun acc i -> acc + i.token_count) 0 items in
  let furthest_error =
    List.fold_left
      (fun acc i ->
        match i.result with
        | Error (Core.Parse_error e) -> further acc (Some (i.index, e))
        | _ -> acc)
      None items
  in
  let statements_per_second, tokens_per_second = rates ~statements ~tokens elapsed in
  let batch_stats =
    {
      statements;
      accepted;
      rejected = statements - accepted;
      tokens;
      elapsed;
      statements_per_second;
      tokens_per_second;
      furthest_error;
    }
  in
  t.acc_statements <- t.acc_statements + statements;
  t.acc_accepted <- t.acc_accepted + accepted;
  t.acc_tokens <- t.acc_tokens + tokens;
  t.acc_elapsed <- t.acc_elapsed +. elapsed;
  t.acc_furthest <- further t.acc_furthest furthest_error;
  { items; batch_stats; shards }

let parse_script ?clamp ?domains t script =
  parse_batch ?clamp ?domains t (Core.split_statements script)

(* Streaming intake: statements are pulled from [read] in fixed-size chunks
   and parsed one at a time on the session's engine, so an unbounded script
   runs at a memory ceiling of [chunk_size] plus the largest statement —
   nothing is batched, no statement list is materialized. [on_item] sees
   each item as it completes (its [sql] is the only live copy). *)
let parse_stream ?chunk_size ?on_item t ~read =
  let t0 = now () in
  let statements = ref 0 in
  let accepted = ref 0 in
  let tokens = ref 0 in
  let furthest = ref None in
  Core.fold_statements ?chunk_size ~read
    (fun () sql ->
      let index = !statements in
      let item = parse_one t.engine t.front_end index sql in
      incr statements;
      if Result.is_ok item.result then incr accepted;
      tokens := !tokens + item.token_count;
      (match item.result with
      | Error (Core.Parse_error e) ->
        furthest := further !furthest (Some (index, e))
      | _ -> ());
      match on_item with None -> () | Some f -> f item)
    ();
  let elapsed = now () -. t0 in
  let statements = !statements and accepted = !accepted and tokens = !tokens in
  let statements_per_second, tokens_per_second =
    rates ~statements ~tokens elapsed
  in
  let stats =
    {
      statements;
      accepted;
      rejected = statements - accepted;
      tokens;
      elapsed;
      statements_per_second;
      tokens_per_second;
      furthest_error = !furthest;
    }
  in
  t.acc_statements <- t.acc_statements + statements;
  t.acc_accepted <- t.acc_accepted + accepted;
  t.acc_tokens <- t.acc_tokens + tokens;
  t.acc_elapsed <- t.acc_elapsed +. elapsed;
  t.acc_furthest <- further t.acc_furthest !furthest;
  stats

let totals t =
  let statements_per_second, tokens_per_second =
    rates ~statements:t.acc_statements ~tokens:t.acc_tokens t.acc_elapsed
  in
  {
    statements = t.acc_statements;
    accepted = t.acc_accepted;
    rejected = t.acc_statements - t.acc_accepted;
    tokens = t.acc_tokens;
    elapsed = t.acc_elapsed;
    statements_per_second;
    tokens_per_second;
    furthest_error = t.acc_furthest;
  }
