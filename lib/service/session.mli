(** Batched parse sessions.

    A session pins one generated front-end (scanner + parser) and runs
    batches of statements through it, so the compose+generate cost is paid
    once per configuration instead of once per statement. Each batch
    returns per-statement results plus aggregate statistics (token and
    statement throughput, furthest parse-error position); the session also
    accumulates the same statistics across all batches it has run
    ({!totals}).

    A batch can be sharded across OCaml 5 domains
    ([parse_batch ~domains:4]): the generated front-end is immutable after
    interning, so workers share it directly, and per-statement results are
    merged back into submission order — the outcome is bit-identical to the
    single-domain run, only faster. All timings are wall-clock
    ([Unix.gettimeofday]), so multi-domain rates reflect real elapsed
    time. *)

type t

type engine = [ `Committed | `Vm | `Fused ]
(** Which parse path a session's batches run on: the committed dispatch
    loop over materialized token arrays (the default), the bytecode VM
    over the struct-of-arrays token stream ({!Core.parse_cst_vm}'s path),
    or the fused VM that pulls tokens straight from the scanner cursor in
    one pass over the bytes ({!Core.parse_cst_fused}'s path). Results are
    byte-identical on all three — the choice is a performance knob, and
    sessions on any engine can share one {!Cache} entry because the
    compiled {!Parser_gen.Program} is part of the cached front-end. *)

val create : ?engine:engine -> Core.generated -> t

val of_cache :
  ?label:string ->
  ?engine:engine ->
  Cache.t ->
  Feature.Config.t ->
  (t, Core.error) result
(** Resolve the front-end through a {!Cache} and open a session on it. *)

val front_end : t -> Core.generated

val engine : t -> engine

type item = {
  index : int;                   (** 0-based position within the batch *)
  sql : string;
  token_count : int;             (** 0 when scanning failed *)
  result : (Parser_gen.Cst.t, Core.error) result;
}

type stats = {
  statements : int;
  accepted : int;
  rejected : int;
  tokens : int;                  (** tokens scanned over accepted+rejected,
                                     excluding the EOF sentinel *)
  elapsed : float;               (** seconds of wall-clock time *)
  statements_per_second : float; (** 0 when [elapsed] is unmeasurably small *)
  tokens_per_second : float;
  furthest_error : (int * Parser_gen.Engine.parse_error) option;
      (** statement index and error of the parse failure whose position is
          furthest into its statement — the most informative rejection *)
}

val pp_stats : stats Fmt.t

type batch = {
  items : item list;
  batch_stats : stats;
  shards : int;  (** domains the batch actually ran on, after clamping *)
}

val parse_batch : ?clamp:bool -> ?domains:int -> t -> string list -> batch
(** Scan and parse each statement with the pinned front-end. Failures don't
    stop the batch; they are recorded per item and aggregated.

    [domains] (default [1]) shards the statements round-robin across that
    many domains ([Domain.spawn] workers, capped at the batch size). Items
    come back in submission order with results identical to the sequential
    run; [elapsed] and the derived rates measure the sharded wall time.

    By default a request exceeding [Domain.recommended_domain_count ()] is
    clamped to it with a warning on stderr — oversharding only adds spawn
    and contention cost. [~clamp:false] restores the unclamped behavior
    (used by the benchmark harness to measure that collapse honestly);
    [shards] in the result records what actually ran. *)

val parse_script : ?clamp:bool -> ?domains:int -> t -> string -> batch
(** [parse_batch] over {!Core.split_statements} of a script. *)

val parse_stream :
  ?chunk_size:int ->
  ?on_item:(item -> unit) ->
  t ->
  read:(bytes -> int -> int -> int) ->
  stats
(** Parse a streamed script: statements are pulled from [read] (a
    [Unix.read]-style function, 0 at end of input) in [chunk_size]-byte
    chunks (default 64 KiB, see {!Core.fold_statements}) and parsed one at
    a time on the session's engine, so memory stays bounded by the chunk
    size plus the largest single statement — an unbounded script runs at a
    fixed memory ceiling. Statement splitting matches
    {!Core.split_statements} byte for byte. [on_item] observes each item
    as it completes; the item (and its [sql]) is not retained afterwards.
    [furthest_error] indexes statements in stream order. Statistics
    accumulate into {!totals} like any batch. *)

val dispatch_summary : t -> Parser_gen.Engine.summary
(** Choice-point classification of the pinned front-end's parser (see
    {!Parser_gen.Engine.summary}): how much of each batch parses on
    committed dispatch rather than backtracking. *)

val totals : t -> stats
(** Statistics accumulated over every batch run in this session. *)
