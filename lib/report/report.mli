(** Grammar reports for composed dialects.

    A report gathers what a product-line engineer wants to inspect before
    shipping a tailored parser: size measures, determinism diagnostics
    (LL(1) conflicts — the places where the generated parser relies on
    backtracking, standing in for ANTLR's syntactic predicates), the
    statement classes available, and each feature's contribution. *)

type t = {
  label : string;
  feature_count : int;
  rule_count : int;
  alternative_count : int;
  symbol_count : int;
  token_count : int;
  keyword_count : int;
  punct_count : int;
  statement_classes : string list;
      (** the non-terminals reachable as direct [sql_statement] alternatives *)
  ll1_conflicts : Grammar.Analysis.conflict list;
  unreachable_rules : string list;
  contributions : (string * int * int) list;
      (** (feature, rules contributed, tokens contributed), composition order,
          organizational features omitted *)
  grammar : Grammar.Cfg.t;
      (** the composed grammar itself, kept for grammar-aware rendering of
          the conflicts *)
}

val build : Core.generated -> t
(** Compute a report for a generated front-end. *)

val pp : t Fmt.t
(** Multi-section human-readable rendering. *)

val to_string : Core.generated -> string
