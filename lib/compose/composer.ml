type output = {
  grammar : Grammar.Cfg.t;
  tokens : Lexing_gen.Spec.set;
  sequence : string list;
  diagnostics : Lint.Diagnostic.t list;
}

type error =
  | Invalid_configuration of Feature.Config.violation list
  | Token_conflict of { feature : string; conflict : Lexing_gen.Spec.conflict }
  | Incoherent_grammar of {
      problems : Grammar.Cfg.problem list;
      hints : (string * string) list;
    }

let pp_error ppf = function
  | Invalid_configuration vs ->
    Fmt.pf ppf "@[<v>invalid configuration:@ %a@]"
      Fmt.(list ~sep:cut Feature.Config.pp_violation)
      vs
  | Token_conflict { feature; conflict } ->
    Fmt.pf ppf "token conflict while composing feature %S: %a" feature
      Lexing_gen.Spec.pp_conflict conflict
  | Incoherent_grammar { problems; hints } ->
    Fmt.pf ppf "@[<v>composed grammar is incoherent:@ %a@ %a@]"
      Fmt.(list ~sep:cut Grammar.Cfg.pp_problem)
      problems
      Fmt.(
        list ~sep:cut (fun ppf (nt, feat) ->
            Fmt.pf ppf "hint: feature %S defines <%s>" feat nt))
      hints

(* Diagram pre-order restricted to the configuration: parents (bases)
   compose before children (extensions), siblings in diagram order. This is
   what keeps merged optional clauses in syntactic order — WHERE before
   GROUP BY under Table Expression, for instance. *)
let sequence (model : Feature.Model.t) config =
  List.filter
    (fun name -> Feature.Config.mem name config)
    (Feature.Tree.names model.concept)

type trace_event = {
  feature : string;
  lhs : string;
  outcome : Rules.outcome option;
}

let trace (model : Feature.Model.t) registry config =
  let events = ref [] in
  let rules = ref [] in
  List.iter
    (fun feature_name ->
      match Fragment.find registry feature_name with
      | None -> ()
      | Some frag ->
        List.iter
          (fun (fragment_rule : Grammar.Production.t) ->
            let existing =
              List.find_opt
                (fun (r : Grammar.Production.t) ->
                  String.equal r.lhs fragment_rule.lhs)
                !rules
            in
            (match existing with
             | None ->
               events :=
                 { feature = feature_name; lhs = fragment_rule.lhs; outcome = None }
                 :: !events
             | Some old ->
               List.iter
                 (fun alt ->
                   let _, outcome = Rules.compose_alt old.alts alt in
                   events :=
                     {
                       feature = feature_name;
                       lhs = fragment_rule.lhs;
                       outcome = Some outcome;
                     }
                     :: !events)
                 fragment_rule.alts);
            rules := Rules.compose_rules !rules [ fragment_rule ])
          frag.Fragment.rules)
    (sequence model config);
  List.rev !events

exception Conflict of error

let compose ?lint ~start (model : Feature.Model.t) registry config =
  match Feature.Config.validate model config with
  | _ :: _ as violations -> Error (Invalid_configuration violations)
  | [] -> (
    let seq = sequence model config in
    try
      let rules, tokens =
        List.fold_left
          (fun (rules, tokens) feature_name ->
            match Fragment.find registry feature_name with
            | None -> (rules, tokens)
            | Some frag ->
              let rules = Rules.compose_rules rules frag.rules in
              let tokens =
                match Lexing_gen.Spec.merge tokens frag.tokens with
                | Ok merged -> merged
                | Error conflict ->
                  raise (Conflict (Token_conflict { feature = feature_name; conflict }))
              in
              (rules, tokens))
          ([], []) seq
      in
      let grammar = Grammar.Cfg.make ~start rules in
      let fatal =
        List.filter
          (function
            | Grammar.Cfg.Unreachable_rule _ -> false
            | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start
              -> true)
          (Grammar.Cfg.check grammar)
      in
      if fatal <> [] then
        let hints =
          List.filter_map
            (function
              | Grammar.Cfg.Undefined_nonterminal { nonterminal; _ } ->
                Option.map
                  (fun feat -> (nonterminal, feat))
                  (Fragment.defining_feature registry nonterminal)
              | Grammar.Cfg.Unreachable_rule _ | Grammar.Cfg.Undefined_start ->
                None)
            fatal
        in
        Error (Incoherent_grammar { problems = fatal; hints })
      else
        let out = { grammar; tokens; sequence = seq; diagnostics = [] } in
        let out =
          match lint with
          | None -> out
          | Some check -> { out with diagnostics = check out }
        in
        Ok out
    with Conflict e -> Error e)
