(** Composing a configuration's fragments into a grammar and token set.

    Given a feature model, a fragment registry and a valid configuration,
    the composer determines the {e composition sequence} and folds the
    composition calculus over it. The sequence is the pre-order of the
    selected features in the diagram: a parent (base) always composes before
    its children (extensions), and siblings compose in diagram order — which
    is what anchors merged optional clauses in the right syntactic position
    (e.g. [WHERE] before [GROUP BY] under Table Expression). The [requires] /
    [excludes] constraints decide {e which} selections are admissible (they
    are enforced by validation), not the order. *)

type output = {
  grammar : Grammar.Cfg.t;
  tokens : Lexing_gen.Spec.set;
  sequence : string list;  (** composition sequence actually used *)
  diagnostics : Lint.Diagnostic.t list;
      (** findings of the [?lint] hook passed to {!compose}; [[]] when no
          hook was given *)
}

type error =
  | Invalid_configuration of Feature.Config.violation list
  | Token_conflict of { feature : string; conflict : Lexing_gen.Spec.conflict }
  | Incoherent_grammar of {
      problems : Grammar.Cfg.problem list;
      hints : (string * string) list;
          (** (undefined non-terminal, feature whose fragment defines it) *)
    }

val pp_error : error Fmt.t

val sequence : Feature.Model.t -> Feature.Config.t -> string list
(** The composition sequence for a configuration: the selected features in
    diagram pre-order. *)

type trace_event = {
  feature : string;         (** fragment owner *)
  lhs : string;             (** rule being composed *)
  outcome : Rules.outcome option;
      (** per composed alternative; [None] when the feature introduced the
          rule *)
}

val trace :
  Feature.Model.t ->
  Fragment.registry ->
  Feature.Config.t ->
  trace_event list
(** Replay the composition and report, per fragment rule, which of the
    paper's composition rules fired (the §3.2 narrative, mechanized). The
    configuration is assumed valid; invalid selections yield a best-effort
    trace. *)

val compose :
  ?lint:(output -> Lint.Diagnostic.t list) ->
  start:string ->
  Feature.Model.t ->
  Fragment.registry ->
  Feature.Config.t ->
  (output, error) result
(** Validate the configuration, determine the sequence, compose all
    fragments. The composed grammar is checked for coherence (undefined
    non-terminals indicate a fragment whose dependency feature is missing —
    the error carries hints naming the features that would define them).

    [?lint] is the static-analysis hook: it receives the composed output
    (with an empty [diagnostics] field) and its findings are attached to
    the returned [output.diagnostics]. Pass
    [fun out -> Lint.Lint.run ~tokens:out.tokens out.grammar] (optionally
    with the model/registry views) to certify the product at compose
    time. *)
