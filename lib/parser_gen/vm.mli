(** Executor for compiled {!Program} bytecode.

    One tail-recursive loop over explicit integer stacks held in per-domain
    arenas; see the implementation header for the backtracking contract it
    shares with the committed dispatch loop. *)

val exec :
  Program.t ->
  ids:int array ->
  n:int ->
  build:bool ->
  leaf:(int -> Cst.t) ->
  fallback:(int -> int -> (int * Cst.t list) list) ->
  Cst.t option
(** [exec prog ~ids ~n ~build ~leaf ~fallback] runs the program's start
    rule over the token-kind ids [ids.(0 .. n-1)] (positions [>= n] read as
    EOF, so a trailing EOF sentinel inside or beyond the array is
    equivalent). Requires [Program.start_entry prog >= 0].

    [leaf i] materializes the CST leaf for token [i]; it is only called when
    [build] is true — recognition runs ([build = false]) never touch the CST
    stack and return a dummy node on acceptance.

    [fallback nt pos] must return the priority-ordered complete derivations
    (end position, children) of non-terminal [nt] at [pos], as the memoized
    engine's [nonterm_results] does.

    [None] means this run rejected; the caller decides whether to re-derive
    on the pure backtracking path (for error reporting). *)

val exec_fused :
  Program.t ->
  cursor:Lexing_gen.Scanner.cursor ->
  build:bool ->
  leaf:(int -> Cst.t) ->
  fallback:(int -> int -> (int * Cst.t list) list) ->
  Cst.t option
(** [exec_fused prog ~cursor ~build ~leaf ~fallback] is {!exec} with the
    scan fused into the dispatch loop: MATCH/D1/D2/HALT pull token kinds
    from the cursor on demand instead of indexing a pre-scanned array, so
    the input is tokenized exactly as far as the parse needs lookahead.
    [leaf]/[fallback] receive absolute token indices into the cursor's
    arena ([fallback] should {!Lexing_gen.Scanner.cursor_complete} the scan
    before random access). May raise [Lexing_gen.Scanner.Lex_error] from a
    pull; the VM arena is cleaned up before the exception escapes. *)
