(** Executor for compiled {!Program} bytecode.

    One tail-recursive loop over explicit integer stacks held in per-domain
    arenas; see the implementation header for the backtracking contract it
    shares with the committed dispatch loop. *)

val exec :
  Program.t ->
  ids:int array ->
  n:int ->
  build:bool ->
  leaf:(int -> Cst.t) ->
  fallback:(int -> int -> (int * Cst.t list) list) ->
  Cst.t option
(** [exec prog ~ids ~n ~build ~leaf ~fallback] runs the program's start
    rule over the token-kind ids [ids.(0 .. n-1)] (positions [>= n] read as
    EOF, so a trailing EOF sentinel inside or beyond the array is
    equivalent). Requires [Program.start_entry prog >= 0].

    [leaf i] materializes the CST leaf for token [i]; it is only called when
    [build] is true — recognition runs ([build = false]) never touch the CST
    stack and return a dummy node on acceptance.

    [fallback nt pos] must return the priority-ordered complete derivations
    (end position, children) of non-terminal [nt] at [pos], as the memoized
    engine's [nonterm_results] does.

    [None] means this run rejected; the caller decides whether to re-derive
    on the pure backtracking path (for error reporting). *)
