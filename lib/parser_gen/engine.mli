(** Parser generation and execution.

    This module stands in for the paper's use of the ANTLR parser generator:
    {!generate} turns a composed grammar into a parser value (rejecting
    grammars an LL(k) generator would reject — undefined non-terminals, left
    recursion); {!parse_tokens} runs it over a token stream, producing a CST.

    The execution strategy is {e prediction-compiled} recursive descent:
    at generation time every choice point (a rule's alternatives, a nested
    group, an optional/repetition enter-vs-skip) is classified through
    {!Lint.Lookahead} prediction sets. Points whose branches are LL(1)- or
    LL(2)-disjoint become {e committed} — a dense [token id -> branch]
    table picks the only branch that can succeed — and a non-terminal all
    of whose points (transitively) commit parses on a direct dispatch
    loop: no continuation closures, no memo traffic, no derivation lists,
    CST children accumulated in a reusable stack arena. Points that stay
    ambiguous at k = 2 retain memoized backtracking with ordered
    alternatives and FIRST-set pruning (standing in for ANTLR's syntactic
    predicates), scoped to the enclosing non-terminal's subtree. Both
    paths produce identical CSTs; parse errors are always derived by the
    backtracking path (a failed dispatching parse is re-run without
    dispatch), so error positions and expected sets are those of the
    backtracking engine, exactly.

    The generated parser is {e interned}: every terminal kind and every
    non-terminal of the composed grammar is compiled down to a dense
    integer id at generation time. Terminal matching is an [int] compare
    against the token's {!Lexing_gen.Token.kind_id}, FIRST-set prediction
    is a bitset probe, rules live in an int-indexed array, and the
    backtracking memo is a flat array indexed by
    [nt_id * (n_tokens + 1) + pos]. String names survive only at the edges:
    CST node labels and parse-error expected sets (rendered back through
    the interner). A generated parser is immutable and safe to share
    across domains; {!Reference} keeps the original string-keyed engine as
    the executable specification the differential tests compare against. *)

type t

type gen_error = Engine_types.gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
      (** the grammar is not well-formed (typically an incoherent feature
          selection) *)
  | Left_recursion of string list
      (** non-terminals involved in left recursion *)

val pp_gen_error : gen_error Fmt.t

val generate :
  ?memoize:bool ->
  ?prune:bool ->
  ?dispatch:bool ->
  ?interner:Lexing_gen.Interner.t ->
  ?classify:
    (term_id:(string -> int option) ->
    n_terms:int ->
    lhs:string ->
    Grammar.Production.alt list ->
    Predict.decision) ->
  Grammar.Cfg.t ->
  (t, gen_error) result
(** Compile a grammar to a parser. Prediction sets and dispatch tables are
    precomputed here so that parsing does no grammar analysis.

    [interner] is the scanner's terminal interner: passing it (as
    {!Core.generate} does) makes the parser trust the [kind_id] stamped on
    tokens without re-hashing kind strings. It is extended — existing ids
    preserved — with any grammar terminal it does not cover; when omitted, a
    fresh interner over the grammar's terminals is built and every token is
    re-interned at the parse boundary.

    The three flags exist for ablation benchmarks and default to [true]:
    [memoize] caches each non-terminal's complete derivation set per input
    position (without it, nested constructs re-parse exponentially); [prune]
    skips alternatives whose FIRST set excludes the lookahead token;
    [dispatch] classifies choice points against LL(1)/LL(2) prediction sets
    and commits without backtracking wherever they are disjoint
    ([~dispatch:false] skips the lookahead analysis entirely and is the
    previous backtracking-everywhere engine). Disabling any flag only
    affects performance, never a parse result.

    [classify] replaces the default {!Predict} decision oracle (built over
    {!Lint.Lookahead}'s string-sequence sets) with a caller-supplied one —
    the family fast path injects an interned analysis that returns the
    same decisions an order of magnitude faster. The oracle receives the
    interner view and the choice point exactly as {!Predict.decide} would;
    it must be {e exact} (same decisions on the same grammar), or dispatch
    summaries and parse behavior diverge from the per-config pipeline. *)

(** {2 Choice-point classification} *)

type nt_class = {
  nt_name : string;
  nt_committed : bool;
      (** the whole subtree below this non-terminal parses on the committed
          dispatch loop *)
  nt_k : int;  (** max lookahead its own committed points consume (0–2) *)
  nt_fallbacks : int;
      (** its own choice points that stayed ambiguous at k = 2 — exactly
          the rules lint reports as conflicted *)
}

type summary = {
  committed_points : int;  (** choice points with disjoint prediction sets *)
  k1_points : int;         (** of those, decided by one token *)
  k2_points : int;         (** of those, needing a second token *)
  ambiguous_points : int;  (** choice points retaining backtracking *)
  committed_nts : int;
  total_nts : int;         (** reachable non-terminals *)
  classes : nt_class list; (** reachable non-terminals, grammar order *)
}

val summary : t -> summary
(** The classification computed at {!generate} time. All zeros (and no
    committed non-terminals) when the parser was generated with
    [~dispatch:false]. Single-branch pseudo-choices are not counted. *)

val coverage : summary -> float
(** Committed fraction of real choice points, in [0, 1]; [1.0] when the
    grammar has none. *)

val pp_summary : summary Fmt.t

val dispatch_enabled : t -> bool

val grammar : t -> Grammar.Cfg.t
val start_symbol : t -> string

val interner : t -> Lexing_gen.Interner.t
(** The terminal interner the parser matches against (the scanner's,
    possibly extended). *)

type parse_error = Engine_types.parse_error = {
  pos : Lexing_gen.Token.position;  (** position of the furthest failure *)
  found : string;                   (** token kind found there *)
  expected : string list;           (** token kinds that would have allowed
                                        progress, sorted *)
}

val pp_parse_error : parse_error Fmt.t

val parse_tokens :
  ?start:string -> t -> Lexing_gen.Token.t array -> (Cst.t, parse_error) result
(** [parse_tokens p tokens] parses a complete token stream (ending in [EOF])
    from the grammar's start symbol (or [start]). The whole input must be
    consumed. This is the hot entry point: {!Lexing_gen.Scanner.scan_tokens}
    output flows in without conversion, and tokens stamped by the shared
    interner are trusted by id.

    A parse failing past the last token reports the position just past that
    token's span and [EOF] as the found kind. On scanner streams this is
    the trailing [EOF] sentinel's own position; it differs from
    {!Reference} (which clamps to the last token's start) only on
    hand-built streams without the sentinel. *)

val parse :
  ?start:string -> t -> Lexing_gen.Token.t list -> (Cst.t, parse_error) result
(** List view of {!parse_tokens}. Tokens carrying {!Lexing_gen.Token.no_id}
    (built by hand rather than by a scanner) are re-interned by kind. *)

val accepts : ?start:string -> t -> Lexing_gen.Token.t list -> bool

(** {2 Bytecode VM entry points}

    At {!generate} time (unless [~dispatch:false]) the committed region of
    the grammar is additionally lowered to flat bytecode ({!Program}),
    executed by {!Vm} with explicit integer stacks. The VM falls back to the
    memoized engine at references to uncommitted rules — the same boundary,
    with the same scoped backtracking, as the committed dispatch loop — and
    any rejecting run is re-derived on the pure backtracking path, so CSTs
    and parse errors are byte-identical across all engines. *)

val program : t -> Program.t option
(** The compiled bytecode, [None] iff generated with [~dispatch:false]. The
    program is built eagerly so caching the engine (as [Service.Cache] does)
    caches the compiled program alongside the front-end. *)

val parse_tokens_vm :
  ?start:string -> t -> Lexing_gen.Token.t array -> (Cst.t, parse_error) result
(** As {!parse_tokens}, but the first run executes on the bytecode VM when
    the start rule is compiled (falling back to the committed loop when it
    is not). Exists for differential testing over hand-built token streams;
    the production VM path is {!parse_soa}. *)

val parse_soa :
  ?start:string ->
  t ->
  scanner:Lexing_gen.Scanner.t ->
  Lexing_gen.Scanner.soa ->
  (Cst.t, parse_error) result
(** Parse a struct-of-arrays token stream in place: kind ids are read
    straight out of the scanner's arena, and [Token.t] records are
    materialized lazily — only when a CST leaf or an error edge needs them.
    [scanner] must be the scanner that produced the stream; when it shares
    the engine's interner (as under {!Core.generate}) its ids are trusted
    without re-stamping. *)

val recognize_soa :
  ?start:string ->
  t ->
  scanner:Lexing_gen.Scanner.t ->
  Lexing_gen.Scanner.soa ->
  (unit, parse_error) result
(** Accept/reject without building a CST. On the fully committed VM path
    this allocates nothing per token — the zero-allocation accept path the
    SoA stream exists for. Errors are still re-derived exactly. *)

val parse_fused :
  t ->
  scanner:Lexing_gen.Scanner.t ->
  string ->
  int
  * ( Cst.t,
      [ `Lex of Lexing_gen.Scanner.error | `Parse of parse_error ] )
    result
(** Fused scan+parse from raw bytes: the bytecode VM pulls token kinds from
    a {!Lexing_gen.Scanner.cursor}, so the committed region of the statement
    is a single pass over the input with no up-front tokenization. The SoA
    stream is completed lazily only when an FB opcode needs the memoized
    fallback's random access, or when a rejection triggers the pure
    error-reporting rerun — results and diagnostics are identical to
    {!parse_soa} over a whole-buffer scan. Returns the statement's token
    count (0 on lexical error) alongside the result. Requires the engine to
    have a compiled program and [scanner] to share its interner; otherwise
    it falls back to the two-pass pipeline. *)

val recognize_fused :
  t ->
  scanner:Lexing_gen.Scanner.t ->
  string ->
  int
  * ( unit,
      [ `Lex of Lexing_gen.Scanner.error | `Parse of parse_error ] )
    result
(** {!parse_fused} without building a CST: single pass, zero per-token
    allocation on the committed accept path. *)
