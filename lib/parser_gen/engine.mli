(** Parser generation and execution.

    This module stands in for the paper's use of the ANTLR parser generator:
    {!generate} turns a composed grammar into a parser value (rejecting
    grammars an LL(k) generator would reject — undefined non-terminals, left
    recursion); {!parse_tokens} runs it over a token stream, producing a CST.

    The execution strategy is recursive descent with ordered alternatives,
    FIRST-set prediction (the LL(k) fast path) and full backtracking as
    fallback (standing in for ANTLR's syntactic predicates). Optional and
    repeated groups match greedily but are backtracked into when the
    continuation fails.

    The generated parser is {e interned}: every terminal kind and every
    non-terminal of the composed grammar is compiled down to a dense
    integer id at generation time. Terminal matching is an [int] compare
    against the token's {!Lexing_gen.Token.kind_id}, FIRST-set prediction
    is a bitset probe, rules live in an int-indexed array, and the
    backtracking memo is a flat array indexed by
    [nt_id * (n_tokens + 1) + pos]. String names survive only at the edges:
    CST node labels and parse-error expected sets (rendered back through
    the interner). A generated parser is immutable and safe to share
    across domains; {!Reference} keeps the original string-keyed engine as
    the executable specification the differential tests compare against. *)

type t

type gen_error = Engine_types.gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
      (** the grammar is not well-formed (typically an incoherent feature
          selection) *)
  | Left_recursion of string list
      (** non-terminals involved in left recursion *)

val pp_gen_error : gen_error Fmt.t

val generate :
  ?memoize:bool ->
  ?prune:bool ->
  ?interner:Lexing_gen.Interner.t ->
  Grammar.Cfg.t ->
  (t, gen_error) result
(** Compile a grammar to a parser. Prediction sets are precomputed here so
    that parsing does no grammar analysis.

    [interner] is the scanner's terminal interner: passing it (as
    {!Core.generate} does) makes the parser trust the [kind_id] stamped on
    tokens without re-hashing kind strings. It is extended — existing ids
    preserved — with any grammar terminal it does not cover; when omitted, a
    fresh interner over the grammar's terminals is built and every token is
    re-interned at the parse boundary.

    The two flags exist for the ablation benchmarks and default to [true]:
    [memoize] caches each non-terminal's complete derivation set per input
    position (without it, nested constructs re-parse exponentially); [prune]
    skips alternatives whose FIRST set excludes the lookahead token (the
    LL(k) fast path). Disabling either only affects performance, never the
    accepted language. *)

val grammar : t -> Grammar.Cfg.t
val start_symbol : t -> string

val interner : t -> Lexing_gen.Interner.t
(** The terminal interner the parser matches against (the scanner's,
    possibly extended). *)

type parse_error = Engine_types.parse_error = {
  pos : Lexing_gen.Token.position;  (** position of the furthest failure *)
  found : string;                   (** token kind found there *)
  expected : string list;           (** token kinds that would have allowed
                                        progress, sorted *)
}

val pp_parse_error : parse_error Fmt.t

val parse_tokens :
  ?start:string -> t -> Lexing_gen.Token.t array -> (Cst.t, parse_error) result
(** [parse_tokens p tokens] parses a complete token stream (ending in [EOF])
    from the grammar's start symbol (or [start]). The whole input must be
    consumed. This is the hot entry point: {!Lexing_gen.Scanner.scan_tokens}
    output flows in without conversion, and tokens stamped by the shared
    interner are trusted by id. *)

val parse :
  ?start:string -> t -> Lexing_gen.Token.t list -> (Cst.t, parse_error) result
(** List view of {!parse_tokens}. Tokens carrying {!Lexing_gen.Token.no_id}
    (built by hand rather than by a scanner) are re-interned by kind. *)

val accepts : ?start:string -> t -> Lexing_gen.Token.t list -> bool
