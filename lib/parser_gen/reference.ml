(* The string-keyed parsing engine the interned Engine replaced: terminals
   match by [String.equal], prediction sets are balanced-tree string sets,
   and the memo is a polymorphic-hashed [(string * int)] hashtable. It is
   retained verbatim as the executable specification of the parsing
   semantics — the differential test suite checks Engine against it, and
   bench E16 uses it as the measured baseline. Keep it simple, not fast. *)

module String_set = Grammar.Analysis.String_set
module String_map = Grammar.Analysis.String_map

(* Internal representation: the grammar with a prediction record attached to
   every choice point, so the parser does set lookups only. *)
type pred = {
  first : String_set.t;
  nullable : bool;
}

type iterm =
  | ITerm of string
  | INonterm of string
  | IOpt of iseq * pred
  | IStar of iseq * pred
  | IPlus of iseq * pred
  | IGroup of (iseq * pred) list

and iseq = iterm list

type t = {
  grammar : Grammar.Cfg.t;
  start : string;
  rules : (iseq * pred) array String_map.t;
  memoize : bool;
  prune : bool;
}

let grammar t = t.grammar
let start_symbol t = t.start

let generate ?(memoize = true) ?(prune = true) g =
  let problems =
    (* Unreachable rules are tolerated in generated parsers (a fragment may
       define helpers only some alternatives use); undefined references and a
       missing start rule are fatal. *)
    List.filter
      (function
        | Grammar.Cfg.Unreachable_rule _ -> false
        | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start ->
          true)
      (Grammar.Cfg.check g)
  in
  if problems <> [] then Error (Engine_types.Grammar_problems problems)
  else
    match Grammar.Analysis.left_recursive g with
    | _ :: _ as nts -> Error (Engine_types.Left_recursion nts)
    | [] ->
      let an = Grammar.Analysis.compute g in
      let pred_of_seq seq =
        {
          first = Grammar.Analysis.seq_first an g seq;
          nullable = Grammar.Analysis.seq_nullable an g seq;
        }
      in
      let rec compile_term = function
        | Grammar.Production.Sym (Grammar.Symbol.Terminal n) -> ITerm n
        | Grammar.Production.Sym (Grammar.Symbol.Nonterminal n) -> INonterm n
        | Grammar.Production.Opt ts -> IOpt (compile_seq ts, pred_of_seq ts)
        | Grammar.Production.Star ts -> IStar (compile_seq ts, pred_of_seq ts)
        | Grammar.Production.Plus ts -> IPlus (compile_seq ts, pred_of_seq ts)
        | Grammar.Production.Group alts ->
          IGroup (List.map (fun a -> (compile_seq a, pred_of_seq a)) alts)
      and compile_seq ts = List.map compile_term ts in
      let rules =
        List.fold_left
          (fun m (r : Grammar.Production.t) ->
            let alts =
              Array.of_list
                (List.map (fun a -> (compile_seq a, pred_of_seq a)) r.alts)
            in
            String_map.add r.lhs alts m)
          String_map.empty g.rules
      in
      Ok { grammar = g; start = g.start; rules; memoize; prune }

let parse ?start t token_list =
  let toks = Array.of_list token_list in
  let n = Array.length toks in
  let kind i =
    if i < n then toks.(i).Lexing_gen.Token.kind else Lexing_gen.Token.eof_kind
  in
  (* Furthest-failure tracking for error reporting. *)
  let best_pos = ref (-1) in
  let best_expected = ref String_set.empty in
  let expect i what =
    if i > !best_pos then begin
      best_pos := i;
      best_expected := what
    end
    else if i = !best_pos then
      best_expected := String_set.union !best_expected what
  in
  let start = Option.value ~default:t.start start in
  (* With pruning disabled (ablation), every alternative is attempted. *)
  let enter_nullable (pred : pred) i =
    (not t.prune) || pred.nullable || String_set.mem (kind i) pred.first
  in
  let enter_strict (pred : pred) i =
    (not t.prune) || String_set.mem (kind i) pred.first
  in
  (* Memoized complete-results parsing. For each (non-terminal, position) the
     full ordered set of derivations is computed once; since a continuation's
     success depends only on where a derivation ends, derivations are deduped
     by end position (first — highest-priority — tree wins). This keeps the
     full-backtracking semantics while avoiding the exponential re-parsing
     that naive backtracking exhibits on nested parenthesized constructs.
     Left recursion is rejected at generation time, so the memo computation
     never re-enters its own key. *)
  let memo : (string * int, (int * Cst.t list) list) Hashtbl.t =
    Hashtbl.create 512
  in
  let rec p_seq seq i acc (k : int -> Cst.t list -> Cst.t option) =
    match seq with
    | [] -> k i acc
    | term :: rest -> p_term term i acc (fun j acc -> p_seq rest j acc k)
  and p_term term i acc k =
    match term with
    | ITerm name ->
      if String.equal (kind i) name then k (i + 1) (Cst.Leaf toks.(i) :: acc)
      else begin
        expect i (String_set.singleton name);
        None
      end
    | INonterm name ->
      let rec try_results = function
        | [] -> None
        | (j, children) :: rest -> (
          match k j (Cst.Node (name, children) :: acc) with
          | Some _ as r -> r
          | None -> try_results rest)
      in
      try_results (nonterm_results name i)
    | IOpt (s, pred) ->
      if enter_strict pred i then (
        match p_seq s i acc k with
        | Some _ as r -> r
        | None -> k i acc)
      else k i acc
    | IStar (s, pred) -> p_star s pred i acc k
    | IPlus (s, pred) -> p_seq s i acc (fun j acc -> p_star s pred j acc k)
    | IGroup alts ->
      let rec go = function
        | [] -> None
        | (s, pred) :: rest ->
          if enter_nullable pred i then (
            match p_seq s i acc k with
            | Some _ as r -> r
            | None -> go rest)
          else begin
            expect i pred.first;
            go rest
          end
      in
      go alts
  and p_star s pred i acc k =
    if enter_strict pred i then (
      match
        p_seq s i acc (fun j acc2 ->
            (* Guard against zero-progress iterations of a nullable body. *)
            if j > i then p_star s pred j acc2 k else k j acc2)
      with
      | Some _ as r -> r
      | None -> k i acc)
    else k i acc
  and nonterm_results name i =
    match (if t.memoize then Hashtbl.find_opt memo (name, i) else None) with
    | Some results -> results
    | None ->
      let results = ref [] in
      (match String_map.find_opt name t.rules with
       | None -> ()
       | Some alts ->
         Array.iter
           (fun (s, pred) ->
             if enter_nullable pred i then
               ignore
                 (p_seq s i [] (fun j acc ->
                      if not (List.exists (fun (j', _) -> j' = j) !results) then
                        results := !results @ [ (j, List.rev acc) ];
                      (* Refuse so the enumeration continues. *)
                      None))
             else expect i pred.first)
           alts);
      if t.memoize then Hashtbl.add memo (name, i) !results;
      !results
  in
  let result =
    p_term (INonterm start) 0 []
      (fun i acc ->
        if String.equal (kind i) Lexing_gen.Token.eof_kind then
          match acc with [ tree ] -> Some tree | _ -> None
        else begin
          expect i (String_set.singleton Lexing_gen.Token.eof_kind);
          None
        end)
  in
  match result with
  | Some tree -> Ok tree
  | None ->
    let i = max 0 (min !best_pos (n - 1)) in
    let pos =
      if n = 0 then { Lexing_gen.Token.line = 1; column = 1; offset = 0 }
      else toks.(i).Lexing_gen.Token.pos
    in
    Error
      {
        Engine_types.pos;
        found = kind i;
        expected = String_set.elements !best_expected;
      }

let accepts ?start t tokens =
  match parse ?start t tokens with Ok _ -> true | Error _ -> false
