(* Bytecode executor for {!Program}.

   The interpreter is a single tail-recursive loop over four explicit
   integer stacks (frames, star-loop marks, scope marks, choice points) plus
   a CST value stack, all held in growable per-domain arenas. The hot path —
   committed MATCH/CALL/RET/D1/D2 — touches only flat [int array]s: no
   closures, no [iterm] ADT matching, no memo traffic.

   Backtracking semantics replicate the committed dispatch loop of
   {!Engine.parse_tokens} exactly:

   - [FB nt] asks the memoized engine ([fallback]) for the complete,
     priority-ordered derivation list of a non-fast non-terminal and takes
     the first end; remaining ends become a choice point.
   - A choice point lives until the [COMMIT] closing the sequence that
     created it: once the rest of the enclosing sequence succeeds the choice
     is final, exactly as the engine's [try_ends] recursion whose scope ends
     when the enclosing [c_seq] returns.
   - On failure the most recent live choice is resumed with its next end
     (LIFO = innermost-first, matching native-stack unwinding), restoring
     the four stack depths saved at its creation.
   - A run that exhausts its choices rejects; the caller re-derives the
     statement on the pure memoized path for a byte-identical error report,
     as it already does for the committed loop.

   In recognition mode ([build = false]) the CST stack is untouched: the
   fully committed accept path allocates nothing per token. *)

let dummy = Cst.Node ("", [])

type arena = {
  mutable cst : Cst.t array;
  mutable frames : int array; (* 2 ints per frame: ret_ip, cst_mark *)
  mutable loops : int array; (* star-iteration start positions *)
  mutable scopes : int array; (* choice-stack marks *)
  mutable ch_ints : int array;
      (* 5 ints per choice: resume_ip, cst_sp, frame_sp, loop_sp, scope_sp *)
  mutable ch_ends : (int * Cst.t list) list array; (* remaining ends *)
}

let arena_key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        cst = Array.make 256 dummy;
        frames = Array.make 128 0;
        loops = Array.make 64 0;
        scopes = Array.make 64 0;
        ch_ints = Array.make 80 0;
        ch_ends = Array.make 16 [];
      })

let grow_int (a : int array) =
  let b = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let exec prog ~(ids : int array) ~n ~build ~(leaf : int -> Cst.t)
    ~(fallback : int -> int -> (int * Cst.t list) list) =
  let code = Program.code prog in
  let t1 = Program.t1 prog in
  let t2_first = Program.t2_first prog in
  let t2_second = Program.t2_second prog in
  let a = Domain.DLS.get arena_key in
  let csp = ref 0 and fsp = ref 0 and lsp = ref 0 and ssp = ref 0 in
  let cp = ref 0 in
  let push_cst v =
    if !csp = Array.length a.cst then begin
      let b = Array.make (2 * Array.length a.cst) dummy in
      Array.blit a.cst 0 b 0 (Array.length a.cst);
      a.cst <- b
    end;
    Array.unsafe_set a.cst !csp v;
    incr csp
  in
  let push_frame ret_ip =
    if !fsp + 2 > Array.length a.frames then a.frames <- grow_int a.frames;
    Array.unsafe_set a.frames !fsp ret_ip;
    Array.unsafe_set a.frames (!fsp + 1) !csp;
    fsp := !fsp + 2
  in
  let push_loop pos =
    if !lsp = Array.length a.loops then a.loops <- grow_int a.loops;
    Array.unsafe_set a.loops !lsp pos;
    incr lsp
  in
  let push_scope () =
    if !ssp = Array.length a.scopes then a.scopes <- grow_int a.scopes;
    Array.unsafe_set a.scopes !ssp !cp;
    incr ssp
  in
  let push_choice resume_ip rest =
    let base = !cp * 5 in
    if base + 5 > Array.length a.ch_ints then a.ch_ints <- grow_int a.ch_ints;
    if !cp = Array.length a.ch_ends then begin
      let b = Array.make (2 * Array.length a.ch_ends) [] in
      Array.blit a.ch_ends 0 b 0 (Array.length a.ch_ends);
      a.ch_ends <- b
    end;
    a.ch_ints.(base) <- resume_ip;
    a.ch_ints.(base + 1) <- !csp;
    a.ch_ints.(base + 2) <- !fsp;
    a.ch_ints.(base + 3) <- !lsp;
    a.ch_ints.(base + 4) <- !ssp;
    a.ch_ends.(!cp) <- rest;
    incr cp
  in
  let tid pos = if pos < n then Array.unsafe_get ids pos else 0 in
  let rec step ip pos =
    let op = Array.unsafe_get code ip in
    if op = Program.op_match then begin
      if pos < n && Array.unsafe_get ids pos = Array.unsafe_get code (ip + 1)
      then begin
        if build then push_cst (leaf pos);
        step (ip + 2) (pos + 1)
      end
      else backtrack ()
    end
    else if op = Program.op_call then begin
      push_frame (ip + 2);
      step (Program.entry prog (Array.unsafe_get code (ip + 1))) pos
    end
    else if op = Program.op_ret then begin
      fsp := !fsp - 2;
      let ret_ip = Array.unsafe_get a.frames !fsp in
      if build then begin
        let mark = Array.unsafe_get a.frames (!fsp + 1) in
        let stack = a.cst in
        let rec collect k acc =
          if k < mark then acc
          else collect (k - 1) (Array.unsafe_get stack k :: acc)
        in
        let children = collect (!csp - 1) [] in
        csp := mark;
        push_cst (Cst.Node (Program.nt_name prog code.(ip + 1), children))
      end;
      step ret_ip pos
    end
    else if op = Program.op_d1 then begin
      let k = tid pos in
      let b =
        if k < 0 then -1
        else Array.unsafe_get (Array.unsafe_get t1 code.(ip + 1)) k
      in
      if b < 0 then backtrack () else step (Array.unsafe_get code (ip + 3 + b)) pos
    end
    else if op = Program.op_d2 then begin
      let k1 = tid pos in
      let b =
        if k1 < 0 then -1
        else
          match Array.unsafe_get (Array.unsafe_get t2_first code.(ip + 1)) k1 with
          | -2 -> (
            match Hashtbl.find_opt (Array.unsafe_get t2_second code.(ip + 1)) k1 with
            | None -> -1
            | Some row ->
              let k2 = tid (pos + 1) in
              if k2 < 0 then -1 else Array.unsafe_get row k2)
          | b -> b
      in
      if b < 0 then backtrack () else step (Array.unsafe_get code (ip + 3 + b)) pos
    end
    else if op = Program.op_jmp then step (Array.unsafe_get code (ip + 1)) pos
    else if op = Program.op_fb then begin
      let nid = Array.unsafe_get code (ip + 1) in
      match fallback nid pos with
      | [] -> backtrack ()
      | (j, children) :: rest ->
        if rest <> [] then push_choice (ip + 2) rest;
        if build then push_cst (Cst.Node (Program.nt_name prog nid, children));
        step (ip + 2) j
    end
    else if op = Program.op_spush then begin
      push_loop pos;
      step (ip + 1) pos
    end
    else if op = Program.op_sloop then begin
      decr lsp;
      let entered_at = Array.unsafe_get a.loops !lsp in
      (* Loop only on progress: a zero-progress iteration of a nullable
         body exits, as the committed loop's [j > i] guard does. *)
      if pos > entered_at then step (Array.unsafe_get code (ip + 1)) pos
      else step (ip + 2) pos
    end
    else if op = Program.op_scope then begin
      push_scope ();
      step (ip + 1) pos
    end
    else if op = Program.op_commit then begin
      decr ssp;
      let mark = Array.unsafe_get a.scopes !ssp in
      (* Choices opened inside the scope are final now that the sequence
         that created them has completed. *)
      for k = mark to !cp - 1 do
        a.ch_ends.(k) <- []
      done;
      if !cp > mark then cp := mark;
      step (ip + 1) pos
    end
    else begin
      (* HALT: accept iff the remaining lookahead is EOF. The compiler
         commits every choice before its rule returns, so no live choice
         can exist here — a non-EOF residue rejects outright, exactly as
         the committed loop does. *)
      if tid pos = 0 then
        if build then Some (Array.unsafe_get a.cst (!csp - 1)) else Some dummy
      else None
    end
  and backtrack () =
    if !cp = 0 then None
    else begin
      let base = (!cp - 1) * 5 in
      match a.ch_ends.(!cp - 1) with
      | [] -> assert false (* exhausted choices are popped eagerly *)
      | (j, children) :: rest ->
        csp := a.ch_ints.(base + 1);
        fsp := a.ch_ints.(base + 2);
        lsp := a.ch_ints.(base + 3);
        ssp := a.ch_ints.(base + 4);
        let resume_ip = a.ch_ints.(base) in
        if rest = [] then begin
          a.ch_ends.(!cp - 1) <- [];
          decr cp
        end
        else a.ch_ends.(!cp - 1) <- rest;
        if build then
          push_cst
            (Cst.Node (Program.nt_name prog code.(resume_ip - 1), children));
        step resume_ip j
    end
  in
  let start = Program.start_entry prog in
  assert (start >= 0);
  push_frame 0 (* returns to the HALT at address 0 *);
  let result = step start 0 in
  (* Drop references to derivation lists so the arena does not retain CSTs
     across parses. *)
  for k = 0 to !cp - 1 do
    a.ch_ends.(k) <- []
  done;
  result

(* Fused scan+parse: the same interpreter, but MATCH/D1/D2/HALT pull the
   token kind from a {!Lexing_gen.Scanner.cursor} instead of indexing a
   pre-scanned array — the scanner runs exactly as far as the parse needs
   lookahead, one pass over the input for the committed region. Every token
   pulled lands in the cursor's arena at an absolute index, so positions
   stored in star-loop marks and choice points seek back losslessly, and
   [fallback] (which needs random access for the memoized engine) can
   finish the scan lazily on first use.

   The cursor (and [fallback], which completes it) may raise
   [Scanner.Lex_error] mid-run; the arena's choice lists are cleared before
   the exception propagates so no CSTs are retained across parses. *)
let exec_fused prog ~(cursor : Lexing_gen.Scanner.cursor) ~build
    ~(leaf : int -> Cst.t)
    ~(fallback : int -> int -> (int * Cst.t list) list) =
  let code = Program.code prog in
  let t1 = Program.t1 prog in
  let t2_first = Program.t2_first prog in
  let t2_second = Program.t2_second prog in
  let a = Domain.DLS.get arena_key in
  let csp = ref 0 and fsp = ref 0 and lsp = ref 0 and ssp = ref 0 in
  let cp = ref 0 in
  let push_cst v =
    if !csp = Array.length a.cst then begin
      let b = Array.make (2 * Array.length a.cst) dummy in
      Array.blit a.cst 0 b 0 (Array.length a.cst);
      a.cst <- b
    end;
    Array.unsafe_set a.cst !csp v;
    incr csp
  in
  let push_frame ret_ip =
    if !fsp + 2 > Array.length a.frames then a.frames <- grow_int a.frames;
    Array.unsafe_set a.frames !fsp ret_ip;
    Array.unsafe_set a.frames (!fsp + 1) !csp;
    fsp := !fsp + 2
  in
  let push_loop pos =
    if !lsp = Array.length a.loops then a.loops <- grow_int a.loops;
    Array.unsafe_set a.loops !lsp pos;
    incr lsp
  in
  let push_scope () =
    if !ssp = Array.length a.scopes then a.scopes <- grow_int a.scopes;
    Array.unsafe_set a.scopes !ssp !cp;
    incr ssp
  in
  let push_choice resume_ip rest =
    let base = !cp * 5 in
    if base + 5 > Array.length a.ch_ints then a.ch_ints <- grow_int a.ch_ints;
    if !cp = Array.length a.ch_ends then begin
      let b = Array.make (2 * Array.length a.ch_ends) [] in
      Array.blit a.ch_ends 0 b 0 (Array.length a.ch_ends);
      a.ch_ends <- b
    end;
    a.ch_ints.(base) <- resume_ip;
    a.ch_ints.(base + 1) <- !csp;
    a.ch_ints.(base + 2) <- !fsp;
    a.ch_ints.(base + 3) <- !lsp;
    a.ch_ints.(base + 4) <- !ssp;
    a.ch_ends.(!cp) <- rest;
    incr cp
  in
  (* The EOF sentinel id is 0 and no MATCH/dispatch entry uses id 0, so the
     classic [pos < n] guard is subsumed by the kind comparison itself. *)
  let rec step ip =
    let op = Array.unsafe_get code ip in
    if op = Program.op_match then begin
      if Lexing_gen.Scanner.cursor_kind cursor = Array.unsafe_get code (ip + 1)
      then begin
        if build then push_cst (leaf (Lexing_gen.Scanner.cursor_pos cursor));
        Lexing_gen.Scanner.cursor_advance cursor;
        step (ip + 2)
      end
      else backtrack ()
    end
    else if op = Program.op_call then begin
      push_frame (ip + 2);
      step (Program.entry prog (Array.unsafe_get code (ip + 1)))
    end
    else if op = Program.op_ret then begin
      fsp := !fsp - 2;
      let ret_ip = Array.unsafe_get a.frames !fsp in
      if build then begin
        let mark = Array.unsafe_get a.frames (!fsp + 1) in
        let stack = a.cst in
        let rec collect k acc =
          if k < mark then acc
          else collect (k - 1) (Array.unsafe_get stack k :: acc)
        in
        let children = collect (!csp - 1) [] in
        csp := mark;
        push_cst (Cst.Node (Program.nt_name prog code.(ip + 1), children))
      end;
      step ret_ip
    end
    else if op = Program.op_d1 then begin
      let k = Lexing_gen.Scanner.cursor_kind cursor in
      let b = Array.unsafe_get (Array.unsafe_get t1 code.(ip + 1)) k in
      if b < 0 then backtrack () else step (Array.unsafe_get code (ip + 3 + b))
    end
    else if op = Program.op_d2 then begin
      let k1 = Lexing_gen.Scanner.cursor_kind cursor in
      let b =
        match Array.unsafe_get (Array.unsafe_get t2_first code.(ip + 1)) k1 with
        | -2 -> (
          match Hashtbl.find_opt (Array.unsafe_get t2_second code.(ip + 1)) k1 with
          | None -> -1
          | Some row ->
            Array.unsafe_get row (Lexing_gen.Scanner.cursor_kind2 cursor))
        | b -> b
      in
      if b < 0 then backtrack () else step (Array.unsafe_get code (ip + 3 + b))
    end
    else if op = Program.op_jmp then step (Array.unsafe_get code (ip + 1))
    else if op = Program.op_fb then begin
      let nid = Array.unsafe_get code (ip + 1) in
      match fallback nid (Lexing_gen.Scanner.cursor_pos cursor) with
      | [] -> backtrack ()
      | (j, children) :: rest ->
        if rest <> [] then push_choice (ip + 2) rest;
        if build then push_cst (Cst.Node (Program.nt_name prog nid, children));
        Lexing_gen.Scanner.cursor_seek cursor j;
        step (ip + 2)
    end
    else if op = Program.op_spush then begin
      push_loop (Lexing_gen.Scanner.cursor_pos cursor);
      step (ip + 1)
    end
    else if op = Program.op_sloop then begin
      decr lsp;
      let entered_at = Array.unsafe_get a.loops !lsp in
      (* Loop only on progress: a zero-progress iteration of a nullable
         body exits, as the committed loop's [j > i] guard does. *)
      if Lexing_gen.Scanner.cursor_pos cursor > entered_at then
        step (Array.unsafe_get code (ip + 1))
      else step (ip + 2)
    end
    else if op = Program.op_scope then begin
      push_scope ();
      step (ip + 1)
    end
    else if op = Program.op_commit then begin
      decr ssp;
      let mark = Array.unsafe_get a.scopes !ssp in
      (* Choices opened inside the scope are final now that the sequence
         that created them has completed. *)
      for k = mark to !cp - 1 do
        a.ch_ends.(k) <- []
      done;
      if !cp > mark then cp := mark;
      step (ip + 1)
    end
    else begin
      (* HALT: accept iff the remaining lookahead is EOF — which also
         means the fused scan has consumed the entire input. *)
      if Lexing_gen.Scanner.cursor_kind cursor = 0 then
        if build then Some (Array.unsafe_get a.cst (!csp - 1)) else Some dummy
      else None
    end
  and backtrack () =
    if !cp = 0 then None
    else begin
      let base = (!cp - 1) * 5 in
      match a.ch_ends.(!cp - 1) with
      | [] -> assert false (* exhausted choices are popped eagerly *)
      | (j, children) :: rest ->
        csp := a.ch_ints.(base + 1);
        fsp := a.ch_ints.(base + 2);
        lsp := a.ch_ints.(base + 3);
        ssp := a.ch_ints.(base + 4);
        let resume_ip = a.ch_ints.(base) in
        if rest = [] then begin
          a.ch_ends.(!cp - 1) <- [];
          decr cp
        end
        else a.ch_ends.(!cp - 1) <- rest;
        if build then
          push_cst
            (Cst.Node (Program.nt_name prog code.(resume_ip - 1), children));
        Lexing_gen.Scanner.cursor_seek cursor j;
        step resume_ip
    end
  in
  let start = Program.start_entry prog in
  assert (start >= 0);
  push_frame 0 (* returns to the HALT at address 0 *);
  let finish () =
    for k = 0 to !cp - 1 do
      a.ch_ends.(k) <- []
    done
  in
  match step start with
  | result ->
    finish ();
    result
  | exception e ->
    finish ();
    raise e
