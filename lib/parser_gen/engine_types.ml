type gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
  | Left_recursion of string list

let pp_gen_error ppf = function
  | Grammar_problems ps ->
    Fmt.pf ppf "@[<v>grammar not well-formed:@ %a@]"
      Fmt.(list ~sep:cut Grammar.Cfg.pp_problem)
      ps
  | Left_recursion nts ->
    Fmt.pf ppf "left-recursive non-terminals: %a"
      Fmt.(list ~sep:comma string)
      nts

type parse_error = {
  pos : Lexing_gen.Token.position;
  found : string;
  expected : string list;
}

let pp_parse_error ppf e =
  Fmt.pf ppf "parse error at %a: found %s, expected %a"
    Lexing_gen.Token.pp_position e.pos e.found
    Fmt.(list ~sep:(any " | ") string)
    e.expected
