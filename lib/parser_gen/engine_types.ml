type gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
  | Left_recursion of string list

let pp_gen_error ppf = function
  | Grammar_problems ps ->
    Fmt.pf ppf "@[<v>grammar not well-formed:@ %a@]"
      Fmt.(list ~sep:cut Grammar.Cfg.pp_problem)
      ps
  | Left_recursion nts ->
    Fmt.pf ppf "left-recursive non-terminals: %a"
      Fmt.(list ~sep:comma string)
      nts

type parse_error = {
  pos : Lexing_gen.Token.position;
  found : string;
  expected : string list;
}

(* FIRST sets as bitsets over dense terminal ids: membership is a shift and
   a mask instead of a balanced-tree descent over string comparisons. *)
type bitset = Bytes.t

(* The grammar compiled down to integers, with a prediction record attached
   to every choice point. Terminal occurrences are interner ids, non-terminal
   occurrences index the engine's [rules] array. Every choice point
   additionally carries its {!Predict.decision}. Shared between the engine
   (which interprets it) and {!Program} (which lowers it to bytecode). *)
type pred = {
  first : bitset;
  nullable : bool;
}

type iterm =
  | ITerm of int
  | INonterm of int
  | IOpt of iseq * pred * Predict.decision
  | IStar of iseq * pred * Predict.decision
  | IPlus of iseq * pred * Predict.decision
      (* decision of the repetition continuing *after* the mandatory first
         iteration — the same enter-vs-skip choice as [IStar] *)
  | IGroup of (iseq * pred) array * Predict.decision

and iseq = iterm array

let pp_parse_error ppf e =
  Fmt.pf ppf "parse error at %a: found %s, expected %a"
    Lexing_gen.Token.pp_position e.pos e.found
    Fmt.(list ~sep:(any " | ") string)
    e.expected
