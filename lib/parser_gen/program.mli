(** Flat bytecode programs compiled from a classified grammar.

    {!Engine.generate} lowers each [nt_fast] non-terminal — one whose own
    choice points all committed under LL(1)/LL(2) prediction — into a single
    contiguous [int array] of opcodes plus dense dispatch side tables. The
    {!Vm} executes this representation with explicit integer stacks instead
    of walking the boxed {!Engine_types.iterm} trees: no closures, no ADT
    matching, no pointer chasing on the accept path.

    The compiled program is part of the {!Engine.t} built at generation
    time, so it is cached alongside the front-end by [Service.Cache] and
    shared freely across domains (it is immutable after [compile]).

    See DESIGN.md for the opcode table and the fallback contract. *)

type t

val compile :
  nt_names:string array ->
  nt_fast:bool array ->
  rules:(Engine_types.iseq * Engine_types.pred) array array ->
  alt_dispatch:Predict.decision array ->
  start:int ->
  t
(** Lower every [nt_fast] rule. References to non-fast rules become [FB]
    fallback boundaries; the VM resolves those by calling back into the
    memoized engine. *)

val entry : t -> int -> int
(** Entry address of a non-terminal's compiled body, [-1] when the rule was
    not compiled (not [nt_fast]). *)

val start_entry : t -> int
(** [entry] of the grammar's start symbol. The VM can run a parse only when
    this is [>= 0]. *)

val size : t -> int
(** Total code length in ints, a size measure for experiments. *)

val compiled_nts : t -> int
(** Number of non-terminals with compiled bodies. *)

val pp : t Fmt.t
(** Disassembler, for debugging and docs. *)

(** {1 VM interface}

    The raw representation, consumed by {!Vm.exec}. Opcode values are
    stable within a build; nothing outside [parser_gen] should interpret
    them. *)

val code : t -> int array

val op_halt : int
val op_match : int
val op_call : int
val op_ret : int
val op_jmp : int
val op_d1 : int
val op_d2 : int
val op_fb : int
val op_spush : int
val op_sloop : int
val op_scope : int
val op_commit : int

val t1 : t -> int array array
val t2_first : t -> int array array
val t2_second : t -> (int, int array) Hashtbl.t array

val nt_name : t -> int -> string
(** CST label of a non-terminal (used by the VM when reducing). *)
