module LA = Lint.Lookahead

type decision =
  | Always
  | Commit1 of int array
  | Commit2 of int array * (int, int array) Hashtbl.t
  | Fallback

type t = {
  term_id : string -> int option;
  n_terms : int;
  la1 : LA.t;
  la2 : LA.t Lazy.t;
}

let make ~term_id ~n_terms g =
  {
    term_id;
    n_terms;
    la1 = LA.compute ~k:1 g;
    la2 = lazy (LA.compute ~k:2 g);
  }

(* A yield shorter than [k] is a complete derivation: the input there is
   exhausted, which the engine observes as the EOF sentinel — pad with it.
   [None] when some predicted terminal was never interned. *)
let seq_ids t ~k names =
  let rec go k = function
    | [] -> Some (List.init k (fun _ -> Lexing_gen.Interner.eof_id))
    | x :: rest ->
      Option.bind (t.term_id x) (fun id ->
          Option.map (fun tl -> id :: tl) (go (k - 1) rest))
  in
  go k names

exception Conflict

let try1 t sets =
  let table = Array.make t.n_terms (-1) in
  try
    List.iteri
      (fun b set ->
        LA.Seq_set.iter
          (fun seq ->
            match seq_ids t ~k:1 seq with
            | None -> raise Conflict
            | Some [ id ] ->
              if table.(id) = -1 then table.(id) <- b
              else if table.(id) <> b then raise Conflict
            | Some _ -> assert false)
          set)
      sets;
    Some (Commit1 table)
  with Conflict -> None

let try2 t sets =
  (* Exact pair map first; collapsed to a first-token table with per-token
     second rows only once disjointness is established. *)
  let pairs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  try
    List.iteri
      (fun b set ->
        LA.Seq_set.iter
          (fun seq ->
            match seq_ids t ~k:2 seq with
            | None -> raise Conflict
            | Some [ a; c ] -> (
              let key = (a * t.n_terms) + c in
              match Hashtbl.find_opt pairs key with
              | None -> Hashtbl.replace pairs key b
              | Some b' -> if b' <> b then raise Conflict)
            | Some _ -> assert false)
          set)
      sets;
    let tbl1 = Array.make t.n_terms (-1) in
    let by_first : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun key b ->
        let a = key / t.n_terms and c = key mod t.n_terms in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_first a) in
        Hashtbl.replace by_first a ((c, b) :: prev))
      pairs;
    let second : (int, int array) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun a entries ->
        let branches = List.sort_uniq compare (List.map snd entries) in
        match branches with
        | [ b ] -> tbl1.(a) <- b (* second token never needed *)
        | _ ->
          tbl1.(a) <- -2;
          let row = Array.make t.n_terms (-1) in
          List.iter (fun (c, b) -> row.(c) <- b) entries;
          Hashtbl.replace second a row)
      by_first;
    Some (Commit2 (tbl1, second))
  with Conflict -> None

let decide t ~lhs branches =
  match branches with
  | [] | [ _ ] -> Always
  | _ -> (
    let predicts la = List.map (fun alt -> LA.predict la ~lhs alt) branches in
    match try1 t (predicts t.la1) with
    | Some d -> d
    | None -> (
      match try2 t (predicts (Lazy.force t.la2)) with
      | Some d -> d
      | None -> Fallback))

let committed = function
  | Always | Commit1 _ | Commit2 _ -> true
  | Fallback -> false

let k_used = function
  | Always | Fallback -> 0
  | Commit1 _ -> 1
  | Commit2 _ -> 2
