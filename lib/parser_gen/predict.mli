(** Choice-point classification: compile {!Lint.Lookahead} prediction sets
    into dense dispatch tables.

    {!Engine.generate} asks, for every choice point it compiles — a rule's
    alternatives, a nested group, an optional/repetition enter-vs-skip —
    whether the branches' strong-LL(k) prediction sets are pairwise
    disjoint. When they are, the engine emits a {e committed} dispatch
    table (one or two tokens of lookahead pick the only branch that can
    possibly succeed) and parses that point with a direct loop: no
    continuation closures, no memo traffic, no derivation lists. When they
    overlap even at k = 2, the point keeps the memoized backtracking
    semantics ({!Fallback}).

    Soundness of commitment: for a branch phrase β of rule [lhs],
    [Lookahead.predict] returns FIRST{_k}(β · FOLLOW{_k}(lhs)) — a
    {e superset} of the prediction set in any concrete parse context
    (strong-LL FOLLOW is the union over all contexts). So lookahead outside
    a branch's set proves that branch cannot lead to a successful parse,
    and disjoint sets leave at most one viable branch: committing is
    exactly what exhaustive backtracking would have chosen. *)

type decision =
  | Always  (** fewer than two branches: nothing to choose *)
  | Commit1 of int array
      (** [table.(tid)] is the branch committed to by one token of
          lookahead, or [-1] when no branch can succeed *)
  | Commit2 of int array * (int, int array) Hashtbl.t
      (** first-token table as in [Commit1], with [-2] marking entries
          decided by the second token via the keyed row
          [row.(tid2) = branch | -1] *)
  | Fallback  (** prediction sets overlap at k = 2: keep backtracking *)

type t
(** Lookahead tables of one grammar, shared across all of its choice
    points. k = 1 tables are computed eagerly; k = 2 tables only when the
    first k = 1 conflict forces the escalation. *)

val make :
  term_id:(string -> int option) -> n_terms:int -> Grammar.Cfg.t -> t
(** [term_id] maps a terminal name to its interned id ([None] for names the
    interner has never seen — any branch predicting one is conservatively
    uncommittable); [n_terms] bounds the dense tables. *)

val decide : t -> lhs:string -> Grammar.Production.alt list -> decision
(** Classify one choice point of rule [lhs]. Each element of the list is a
    full branch {e phrase}: the branch's own symbols followed by the
    continuation to the end of the enclosing alternative (the engine builds
    these when compiling), so that [predict] covers everything up to
    FOLLOW(lhs). *)

val committed : decision -> bool
(** [true] for [Always], [Commit1], [Commit2]. *)

val k_used : decision -> int
(** Tokens of lookahead the decision consumes: 0, 1 or 2 ([Fallback] is
    0). *)
