(* Lowering of the classified grammar into flat bytecode.

   Every [nt_fast] non-terminal — one whose own choice points all committed —
   is compiled to a contiguous run of integer opcodes in one shared [code]
   array. The {!Vm} executes this with an explicit int stack: no closures,
   no ADT matching, no boxed iterm trees on the hot path. References to
   non-fast non-terminals compile to [FB], the fallback boundary at which
   the VM calls back into the memoized engine, mirroring the committed
   dispatch loop's behaviour exactly.

   Opcode layout (each opcode followed inline by its operands):

     HALT                      end of parse; accept iff lookahead is EOF
     MATCH t                   consume one token of kind [t] or fail
     CALL nt                   push frame, jump to [entries.(nt)]
     RET nt                    pop frame, reduce children to a [nt] node
     JMP a                     unconditional jump (branch join points)
     D1 x n a0..a(n-1)         k=1 dispatch: probe [t1.(x)] with the current
                               token id, jump to the selected branch address
     D2 x n a0..a(n-1)         k=2 dispatch via [t2_first.(x)] and, for
                               entries marked -2, the second-token row in
                               [t2_second.(x)]
     FB nt                     fallback boundary: derivations of the non-fast
                               [nt] come from the memoized engine; ends are
                               tried in priority order (a VM choice point)
     SPUSH                     save the position entering a star iteration
     SLOOP a                   end of a star iteration: loop to [a] if the
                               iteration consumed input, else exit
     SCOPE                     open a backtracking scope (save choice mark)
     COMMIT                    close the scope: choice points opened inside
                               are final once the sequence completes

   Dispatch tables are not copied into the code array; [D1]/[D2] reference
   the dense side tables by index, so the VM probes a flat [int array] (and,
   for k=2 escalations only, one small [Hashtbl] row). *)

open Engine_types

type t = {
  code : int array;
  entries : int array; (* nt id -> entry address, -1 for non-fast rules *)
  t1 : int array array;
  t2_first : int array array;
  t2_second : (int, int array) Hashtbl.t array;
  nt_names : string array; (* for the disassembler only *)
  start_entry : int; (* entries.(start), -1 when the start rule is not fast *)
}

(* Opcodes. *)
let op_halt = 0
let op_match = 1
let op_call = 2
let op_ret = 3
let op_jmp = 4
let op_d1 = 5
let op_d2 = 6
let op_fb = 7
let op_spush = 8
let op_sloop = 9
let op_scope = 10
let op_commit = 11

let code t = t.code
let entry t nt = t.entries.(nt)
let start_entry t = t.start_entry
let size t = Array.length t.code
let t1 t = t.t1
let t2_first t = t.t2_first
let t2_second t = t.t2_second
let nt_name t nt = t.nt_names.(nt)

(* Growable code emitter. *)
type emitter = {
  mutable buf : int array;
  mutable len : int;
  mutable e_t1 : int array list; (* reversed *)
  mutable e_t1_n : int;
  mutable e_t2 : (int array * (int, int array) Hashtbl.t) list; (* reversed *)
  mutable e_t2_n : int;
}

let emit e v =
  let cap = Array.length e.buf in
  if e.len = cap then begin
    let bigger = Array.make (2 * cap) 0 in
    Array.blit e.buf 0 bigger 0 cap;
    e.buf <- bigger
  end;
  e.buf.(e.len) <- v;
  e.len <- e.len + 1

let here e = e.len

(* Reserve a slot to be patched once the target address is known. *)
let emit_hole e =
  let at = e.len in
  emit e (-1);
  at

let patch e at v = e.buf.(at) <- v

let register_t1 e table =
  let idx = e.e_t1_n in
  e.e_t1 <- table :: e.e_t1;
  e.e_t1_n <- idx + 1;
  idx

let register_t2 e table second =
  let idx = e.e_t2_n in
  e.e_t2 <- (table, second) :: e.e_t2;
  e.e_t2_n <- idx + 1;
  idx

(* Emit a dispatch over [branches] (addresses patched as each branch is
   compiled); [compile_branch b jump_out] compiles branch [b], where
   [jump_out = true] means control must join after the dispatch rather than
   fall through (the last branch falls through naturally). *)
let emit_dispatch e decision n_branches compile_branch =
  (match decision with
  | Predict.Commit1 table ->
    emit e op_d1;
    emit e (register_t1 e table)
  | Predict.Commit2 (table, second) ->
    emit e op_d2;
    emit e (register_t2 e table second)
  | Predict.Always | Predict.Fallback ->
    (* [Always] never reaches here (single-branch points are inlined) and
       [Fallback] never occurs inside an [nt_fast] body by construction. *)
    assert false);
  emit e n_branches;
  let holes = Array.init n_branches (fun _ -> emit_hole e) in
  let joins = ref [] in
  for b = 0 to n_branches - 1 do
    patch e holes.(b) (here e);
    let join = compile_branch b (b < n_branches - 1) in
    joins := join @ !joins
  done;
  List.iter (fun at -> patch e at (here e)) !joins

(* Does this sequence contain a fallback boundary at its own level? Such a
   sequence brackets its body in SCOPE/COMMIT so the VM's backtracking stays
   scoped exactly as the committed loop's [try_ends] recursion does: a
   choice made by a fallback boundary is final once the rest of its
   enclosing sequence has succeeded. *)
let seq_has_fb nt_fast (seq : iseq) =
  Array.exists
    (function INonterm nid -> not nt_fast.(nid) | _ -> false)
    seq

let compile ~nt_names ~nt_fast ~(rules : (iseq * pred) array array)
    ~(alt_dispatch : Predict.decision array) ~start =
  let e =
    {
      buf = Array.make 256 0;
      len = 0;
      e_t1 = [];
      e_t1_n = 0;
      e_t2 = [];
      e_t2_n = 0;
    }
  in
  emit e op_halt;
  let n_nts = Array.length rules in
  let entries = Array.make n_nts (-1) in
  let rec emit_seq seq =
    let scoped = seq_has_fb nt_fast seq in
    if scoped then emit e op_scope;
    Array.iter emit_term seq;
    if scoped then emit e op_commit
  and emit_term = function
    | ITerm id ->
      emit e op_match;
      emit e id
    | INonterm nid ->
      if nt_fast.(nid) then begin
        emit e op_call;
        emit e nid
      end
      else begin
        emit e op_fb;
        emit e nid
      end
    | IOpt (s, _, d) ->
      (* branch 0: enter the body; branch 1: skip. *)
      emit_dispatch e d 2 (fun b jump_out ->
          if b = 0 then begin
            emit_seq s;
            if jump_out then [ (emit e op_jmp; emit_hole e) ] else []
          end
          else [])
    | IStar (s, _, d) -> emit_star s d
    | IPlus (s, _, d) ->
      (* Mandatory first iteration, then the star loop. The body is emitted
         twice; sharing it would need a subroutine frame for no measured
         win. *)
      emit_seq s;
      emit_star s d
    | IGroup (alts, d) ->
      (match Array.length alts with
      | 0 -> ()
      | 1 -> emit_seq (fst alts.(0))
      | n ->
        emit_dispatch e d n (fun b jump_out ->
            emit_seq (fst alts.(b));
            if jump_out then [ (emit e op_jmp; emit_hole e) ] else []))
  and emit_star s d =
    (* head: D 2 [body; exit]; body: SPUSH <s> SLOOP head. [SLOOP] loops
       only on progress, preserving the committed loop's zero-progress
       guard for nullable bodies. *)
    let head = here e in
    emit_dispatch e d 2 (fun b _jump_out ->
        if b = 0 then begin
          emit e op_spush;
          emit_seq s;
          emit e op_sloop;
          emit e head;
          (* [SLOOP] either jumps to [head] or falls through to the join —
             which is exactly the exit branch's address. *)
          []
        end
        else [])
  in
  for nt = 0 to n_nts - 1 do
    if nt_fast.(nt) then begin
      entries.(nt) <- here e;
      let alts = rules.(nt) in
      (match Array.length alts with
      | 0 -> assert false (* grammar rules always have an alternative *)
      | 1 -> emit_seq (fst alts.(0))
      | n ->
        emit_dispatch e alt_dispatch.(nt) n (fun b jump_out ->
            emit_seq (fst alts.(b));
            if jump_out then [ (emit e op_jmp; emit_hole e) ] else []));
      emit e op_ret;
      emit e nt
    end
  done;
  {
    code = Array.sub e.buf 0 e.len;
    entries;
    t1 = Array.of_list (List.rev e.e_t1);
    t2_first = Array.of_list (List.rev (List.map fst e.e_t2));
    t2_second = Array.of_list (List.rev (List.map snd e.e_t2));
    nt_names;
    start_entry = (if start >= 0 && start < n_nts then entries.(start) else -1);
  }

let compiled_nts t =
  Array.fold_left (fun n a -> if a >= 0 then n + 1 else n) 0 t.entries

let pp ppf t =
  let name nt = t.nt_names.(nt) in
  let entry_of = Hashtbl.create 64 in
  Array.iteri
    (fun nt addr -> if addr >= 0 then Hashtbl.replace entry_of addr nt)
    t.entries;
  let i = ref 0 in
  let code = t.code in
  while !i < Array.length code do
    (match Hashtbl.find_opt entry_of !i with
    | Some nt -> Fmt.pf ppf "%s:@." (name nt)
    | None -> ());
    Fmt.pf ppf "%4d  " !i;
    let op = code.(!i) in
    if op = op_halt then begin
      Fmt.pf ppf "HALT@.";
      incr i
    end
    else if op = op_match then begin
      Fmt.pf ppf "MATCH %d@." code.(!i + 1);
      i := !i + 2
    end
    else if op = op_call then begin
      Fmt.pf ppf "CALL %s@." (name code.(!i + 1));
      i := !i + 2
    end
    else if op = op_ret then begin
      Fmt.pf ppf "RET %s@." (name code.(!i + 1));
      i := !i + 2
    end
    else if op = op_jmp then begin
      Fmt.pf ppf "JMP %d@." code.(!i + 1);
      i := !i + 2
    end
    else if op = op_d1 || op = op_d2 then begin
      let n = code.(!i + 2) in
      Fmt.pf ppf "%s t%d [%a]@."
        (if op = op_d1 then "D1" else "D2")
        code.(!i + 1)
        Fmt.(list ~sep:sp int)
        (Array.to_list (Array.sub code (!i + 3) n));
      i := !i + 3 + n
    end
    else if op = op_fb then begin
      Fmt.pf ppf "FB %s@." (name code.(!i + 1));
      i := !i + 2
    end
    else if op = op_spush then begin
      Fmt.pf ppf "SPUSH@.";
      incr i
    end
    else if op = op_sloop then begin
      Fmt.pf ppf "SLOOP %d@." code.(!i + 1);
      i := !i + 2
    end
    else if op = op_scope then begin
      Fmt.pf ppf "SCOPE@.";
      incr i
    end
    else if op = op_commit then begin
      Fmt.pf ppf "COMMIT@.";
      incr i
    end
    else begin
      Fmt.pf ppf "?%d@." op;
      incr i
    end
  done
