(** Error types shared by the interned {!Engine} and the string-path
    {!Reference} engine, so the differential test suite can compare the two
    implementations' results structurally. *)

type gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
      (** the grammar is not well-formed (typically an incoherent feature
          selection) *)
  | Left_recursion of string list
      (** non-terminals involved in left recursion *)

val pp_gen_error : gen_error Fmt.t

type parse_error = {
  pos : Lexing_gen.Token.position;  (** position of the furthest failure *)
  found : string;                   (** token kind found there *)
  expected : string list;           (** token kinds that would have allowed
                                        progress, sorted *)
}

val pp_parse_error : parse_error Fmt.t
