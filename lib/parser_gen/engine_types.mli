(** Error types shared by the interned {!Engine} and the string-path
    {!Reference} engine, so the differential test suite can compare the two
    implementations' results structurally. *)

type gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
      (** the grammar is not well-formed (typically an incoherent feature
          selection) *)
  | Left_recursion of string list
      (** non-terminals involved in left recursion *)

val pp_gen_error : gen_error Fmt.t

type parse_error = {
  pos : Lexing_gen.Token.position;  (** position of the furthest failure *)
  found : string;                   (** token kind found there *)
  expected : string list;           (** token kinds that would have allowed
                                        progress, sorted *)
}

val pp_parse_error : parse_error Fmt.t

(** {1 Compiled grammar representation}

    The interned form {!Engine.generate} lowers a grammar into, exposed here
    so {!Program} can compile it further into flat bytecode without the
    engine's internals being public. *)

type bitset = Bytes.t
(** FIRST sets as bitsets over dense terminal ids. *)

type pred = {
  first : bitset;
  nullable : bool;
}
(** Prediction data of one phrase: its FIRST set and nullability. *)

type iterm =
  | ITerm of int  (** terminal occurrence, by interned id *)
  | INonterm of int  (** non-terminal occurrence, by rule index *)
  | IOpt of iseq * pred * Predict.decision
  | IStar of iseq * pred * Predict.decision
  | IPlus of iseq * pred * Predict.decision
      (** the decision is the enter-vs-skip choice of the repetition
          continuing {e after} the mandatory first iteration *)
  | IGroup of (iseq * pred) array * Predict.decision

and iseq = iterm array
