module String_set = Grammar.Analysis.String_set
module Interner = Lexing_gen.Interner

type gen_error = Engine_types.gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
  | Left_recursion of string list

let pp_gen_error = Engine_types.pp_gen_error

type parse_error = Engine_types.parse_error = {
  pos : Lexing_gen.Token.position;
  found : string;
  expected : string list;
}

let pp_parse_error = Engine_types.pp_parse_error

(* FIRST sets as bitsets over dense terminal ids: membership is a shift and
   a mask instead of a balanced-tree descent over string comparisons. *)
type bitset = Engine_types.bitset

let bitset_make n_terms : bitset = Bytes.make ((n_terms + 7) lsr 3) '\000'

let bitset_add (b : bitset) id =
  let byte = id lsr 3 in
  Bytes.unsafe_set b byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl (id land 7))))

let bitset_mem (b : bitset) id =
  id >= 0
  && Char.code (Bytes.unsafe_get b (id lsr 3)) land (1 lsl (id land 7)) <> 0

let bitset_union_into ~into:(dst : bitset) (src : bitset) =
  for byte = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst byte)
         lor Char.code (Bytes.unsafe_get src byte)))
  done

(* Internal representation: the grammar compiled down to integers, with a
   prediction record attached to every choice point. Terminal occurrences
   are interner ids, non-terminal occurrences index the [rules] array.
   Every choice point additionally carries its {!Predict.decision}: the
   dense LL(1)/LL(2) dispatch table when the branch prediction sets are
   disjoint, [Fallback] when only backtracking can decide. The types live
   in {!Engine_types} so {!Program} can lower the same structures to
   bytecode. *)
type pred = Engine_types.pred = {
  first : bitset;
  nullable : bool;
}

type iterm = Engine_types.iterm =
  | ITerm of int
  | INonterm of int
  | IOpt of iseq * pred * Predict.decision
  | IStar of iseq * pred * Predict.decision
  | IPlus of iseq * pred * Predict.decision
  | IGroup of (iseq * pred) array * Predict.decision

and iseq = Engine_types.iseq

type nt_class = {
  nt_name : string;
  nt_committed : bool;
  nt_k : int;
  nt_fallbacks : int;
}

type summary = {
  committed_points : int;
  k1_points : int;
  k2_points : int;
  ambiguous_points : int;
  committed_nts : int;
  total_nts : int;
  classes : nt_class list;
}

type t = {
  grammar : Grammar.Cfg.t;
  interner : Interner.t;            (* terminal kinds, shared with the scanner *)
  nt_names : string array;          (* non-terminal id -> name (CST labels) *)
  nt_ids : (string, int) Hashtbl.t;
  start : string;
  rules : (iseq * pred) array array; (* non-terminal id -> alternatives *)
  alt_dispatch : Predict.decision array; (* nt id -> rule-level decision *)
  nt_fast : bool array;
      (* every choice point of this non-terminal's own rule is committed, so
         its body runs on the dispatch loop — dropping into the memoized
         engine only at references to non-[nt_fast] non-terminals *)
  nt_committed : bool array;
      (* transitively committed: this non-terminal's whole subtree parses on
         the direct dispatch loop, no memo, no backtracking *)
  dispatch : bool;
  summary : summary;
  memoize : bool;
  prune : bool;
  program : Program.t option;
      (* the [nt_fast] region lowered to flat bytecode at generation time
         (so caching the engine caches the compiled program); [None] only
         when dispatch is off *)
}

let grammar t = t.grammar
let start_symbol t = t.start
let interner t = t.interner
let summary t = t.summary
let dispatch_enabled t = t.dispatch
let program t = t.program

let coverage s =
  let total = s.committed_points + s.ambiguous_points in
  if total = 0 then 1.0
  else float_of_int s.committed_points /. float_of_int total

let pp_summary ppf s =
  Fmt.pf ppf
    "%d/%d choice points committed (k=1: %d, k=2: %d), %.1f%% coverage; %d/%d \
     non-terminals fully committed"
    s.committed_points
    (s.committed_points + s.ambiguous_points)
    s.k1_points s.k2_points
    (100. *. coverage s)
    s.committed_nts s.total_nts

(* Every terminal occurring anywhere in the grammar, in occurrence order. *)
let grammar_terminals (g : Grammar.Cfg.t) =
  let acc = ref [] in
  let rec term = function
    | Grammar.Production.Sym (Grammar.Symbol.Terminal n) -> acc := n :: !acc
    | Grammar.Production.Sym (Grammar.Symbol.Nonterminal _) -> ()
    | Grammar.Production.Opt ts
    | Grammar.Production.Star ts
    | Grammar.Production.Plus ts ->
      List.iter term ts
    | Grammar.Production.Group alts -> List.iter (List.iter term) alts
  in
  List.iter
    (fun (r : Grammar.Production.t) -> List.iter (List.iter term) r.alts)
    g.rules;
  List.rev !acc

let generate ?(memoize = true) ?(prune = true) ?(dispatch = true) ?interner
    ?classify g =
  let all_problems = Grammar.Cfg.check g in
  let problems =
    (* Unreachable rules are tolerated in generated parsers (a fragment may
       define helpers only some alternatives use); undefined references and a
       missing start rule are fatal. *)
    List.filter
      (function
        | Grammar.Cfg.Unreachable_rule _ -> false
        | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start ->
          true)
      all_problems
  in
  if problems <> [] then Error (Grammar_problems problems)
  else
    match Grammar.Analysis.left_recursive g with
    | _ :: _ as nts -> Error (Left_recursion nts)
    | [] ->
      let an = Grammar.Analysis.compute g in
      (* Extending the scanner's interner preserves its ids, so tokens it
         stamps remain trusted; terminals the token set lacks (none in a
         coherent composition) are appended. *)
      let interner =
        match interner with
        | Some i -> Interner.extend i (grammar_terminals g)
        | None -> Interner.of_names (grammar_terminals g)
      in
      let n_terms = Interner.size interner in
      let term_id name =
        match Interner.id_opt interner name with
        | Some id -> id
        | None -> assert false (* interner covers grammar_terminals *)
      in
      let nt_names =
        Array.of_list
          (List.map (fun (r : Grammar.Production.t) -> r.lhs) g.rules)
      in
      let nt_ids = Hashtbl.create (2 * Array.length nt_names) in
      Array.iteri (fun id name -> Hashtbl.replace nt_ids name id) nt_names;
      let pred_of_seq seq =
        let first = bitset_make n_terms in
        String_set.iter
          (fun name -> bitset_add first (term_id name))
          (Grammar.Analysis.seq_first an g seq);
        { first; nullable = Grammar.Analysis.seq_nullable an g seq }
      in
      (* Choice-point classification. The lookahead tables are only built
         when dispatch is on ([~dispatch:false] is exactly the previous
         backtracking-everywhere engine, used as the E17 baseline).
         Unreachable rules are classified [Fallback] without analysis:
         their FOLLOW sets are empty, so prediction there is meaningless —
         and they are excluded from the summary for the same reason. *)
      let unreachable =
        List.filter_map
          (function Grammar.Cfg.Unreachable_rule nt -> Some nt | _ -> None)
          all_problems
      in
      let reachable lhs = not (List.mem lhs unreachable) in
      (* [?classify] swaps the decision oracle: the family fast path
         injects an interned reimplementation of the same analysis. Either
         oracle is built lazily — [~dispatch:false] never pays for it. *)
      let decide =
        match classify with
        | Some oracle ->
          fun ~lhs branches ->
            oracle ~term_id:(Interner.id_opt interner) ~n_terms ~lhs branches
        | None ->
          let pctx =
            lazy (Predict.make ~term_id:(Interner.id_opt interner) ~n_terms g)
          in
          fun ~lhs branches -> Predict.decide (Lazy.force pctx) ~lhs branches
      in
      let k1_points = ref 0 and k2_points = ref 0 and ambiguous = ref 0 in
      let nt_k : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let nt_fb : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let bump tbl lhs f =
        Hashtbl.replace tbl lhs
          (f (Option.value ~default:0 (Hashtbl.find_opt tbl lhs)))
      in
      let classify lhs branches =
        match branches with
        | [] | [ _ ] -> Predict.Always
        | _ ->
          if dispatch && reachable lhs then begin
            let d = decide ~lhs branches in
            (match d with
            | Predict.Always -> ()
            | Predict.Commit1 _ ->
              incr k1_points;
              bump nt_k lhs (max 1)
            | Predict.Commit2 _ ->
              incr k2_points;
              bump nt_k lhs (max 2)
            | Predict.Fallback ->
              incr ambiguous;
              bump nt_fb lhs (fun c -> c + 1));
            d
          end
          else Predict.Fallback
      in
      (* [cont] is the rest of the enclosing alternative after the term
         being compiled — the branch phrases handed to [classify] must
         extend to the end of the alternative so that
         [Lookahead.predict lhs] (which appends FOLLOW(lhs)) covers the
         complete right context of the choice. *)
      let module P = Grammar.Production in
      let rec compile_term lhs cont = function
        | P.Sym (Grammar.Symbol.Terminal n) -> ITerm (term_id n)
        | P.Sym (Grammar.Symbol.Nonterminal n) ->
          INonterm (Hashtbl.find nt_ids n) (* defined: checked above *)
        | P.Opt ts ->
          IOpt
            ( compile_seq lhs cont ts,
              pred_of_seq ts,
              classify lhs [ ts @ cont; cont ] )
        | P.Star ts ->
          IStar
            ( compile_seq lhs (P.Star ts :: cont) ts,
              pred_of_seq ts,
              classify lhs [ ts @ (P.Star ts :: cont); cont ] )
        | P.Plus ts ->
          IPlus
            ( compile_seq lhs (P.Star ts :: cont) ts,
              pred_of_seq ts,
              classify lhs [ ts @ (P.Star ts :: cont); cont ] )
        | P.Group alts ->
          IGroup
            ( Array.of_list
                (List.map
                   (fun a -> (compile_seq lhs cont a, pred_of_seq a))
                   alts),
              classify lhs (List.map (fun a -> a @ cont) alts) )
      and compile_seq lhs cont ts =
        let rec go = function
          | [] -> []
          | term :: rest -> compile_term lhs (rest @ cont) term :: go rest
        in
        Array.of_list (go ts)
      in
      let rules =
        Array.of_list
          (List.map
             (fun (r : P.t) ->
               Array.of_list
                 (List.map
                    (fun a -> (compile_seq r.lhs [] a, pred_of_seq a))
                    r.alts))
             g.rules)
      in
      let alt_dispatch =
        Array.of_list (List.map (fun (r : P.t) -> classify r.lhs r.alts) g.rules)
      in
      (* A non-terminal runs on the dispatch loop only when every choice
         point of its own rule is committed *and* every rule it references
         (transitively) is too: greatest fixpoint, demoting on any
         uncommitted reference. Reachability is closed under reference, so
         committed rules never point into the unreachable (Fallback)
         region. *)
      let nt_fast =
        Array.map
          (fun name ->
            dispatch && reachable name
            && Option.value ~default:0 (Hashtbl.find_opt nt_fb name) = 0)
          nt_names
      in
      let nt_committed = Array.copy nt_fast in
      let refs =
        Array.of_list
          (List.map
             (fun (r : P.t) ->
               List.map (Hashtbl.find nt_ids) (P.mentioned_nonterminals r))
             g.rules)
      in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun id ok ->
            if
              ok
              && List.exists
                   (fun r -> not (Array.unsafe_get nt_committed r))
                   refs.(id)
            then begin
              nt_committed.(id) <- false;
              changed := true
            end)
          nt_committed
      done;
      let classes =
        List.concat
          (List.mapi
             (fun id (r : P.t) ->
               if not (reachable r.lhs) then []
               else
                 [
                   {
                     nt_name = r.lhs;
                     nt_committed = nt_committed.(id);
                     nt_k =
                       Option.value ~default:0 (Hashtbl.find_opt nt_k r.lhs);
                     nt_fallbacks =
                       Option.value ~default:0 (Hashtbl.find_opt nt_fb r.lhs);
                   };
                 ])
             g.rules)
      in
      let summary =
        {
          committed_points = !k1_points + !k2_points;
          k1_points = !k1_points;
          k2_points = !k2_points;
          ambiguous_points = !ambiguous;
          committed_nts =
            List.length
              (List.filter (fun (c : nt_class) -> c.nt_committed) classes);
          total_nts = List.length classes;
          classes;
        }
      in
      let program =
        if dispatch then
          let start_id =
            Option.value ~default:(-1) (Hashtbl.find_opt nt_ids g.start)
          in
          Some
            (Program.compile ~nt_names ~nt_fast ~rules ~alt_dispatch
               ~start:start_id)
        else None
      in
      Ok
        {
          grammar = g;
          interner;
          nt_names;
          nt_ids;
          start = g.start;
          rules;
          alt_dispatch;
          nt_fast;
          nt_committed;
          dispatch;
          summary;
          memoize;
          prune;
          program;
        }

(* The memo is a flat array indexed by [nt_id * (n_tokens + 1) + pos]. A
   shared physical sentinel marks empty slots, so a legitimately empty
   result list is still a hit. The array is domain-local scratch, reused
   across parses (grown when a statement needs more slots, cleared with a
   single [Array.fill]): steady-state parsing allocates nothing for
   memoization. Domain-locality keeps the sharded batch path safe — each
   worker clears and fills only its own arena. *)
let memo_unset : (int * Cst.t list) list = [ (min_int, []) ]

let memo_arena : (int * Cst.t list) list array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let acquire_memo need =
  let arena = Domain.DLS.get memo_arena in
  if Array.length !arena < need then arena := Array.make need memo_unset
  else Array.fill !arena 0 need memo_unset;
  !arena

(* CST child arena for the committed dispatch loop: a domain-local stack of
   completed subtrees, reused across parses. A rule pushes its children as
   they complete and pops them into a [Node] when it finishes; on failure
   the saved stack mark is restored and the slots are simply abandoned. *)
let dummy_cst = Cst.Node ("", [])

let cst_arena : Cst.t array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Array.make 256 dummy_cst))

(* One run's machinery: the committed dispatch loop (c_ functions) and the
   memoized backtracking engine (p_ functions) over a fixed token-id
   stream, packaged so the three drivers — [parse_ids]'s mode ladder, the
   VM's fallback boundary, and the fused scan+parse entry points — share a
   single implementation. Each value owns a fresh memo, CST stack pointer
   and furthest-failure tracker, i.e. it is one logical run. *)
type run_machinery = {
  rm_results : int -> int -> (int * Cst.t list) list;
      (* [rm_results nid i]: the complete, priority-ordered derivation set
         (end position, children) of non-terminal [nid] at position [i] —
         the VM's FB oracle and the committed loop's fallback boundary *)
  rm_top : int -> (Cst.t, parse_error) result;
      (* run the whole statement from start non-terminal id [sid]: the
         committed loop when dispatching and [sid] is own-committed, the
         memoized engine otherwise *)
  rm_fail : unit -> (Cst.t, parse_error) result;
      (* the furthest-failure report accumulated so far (used directly when
         a VM run rejects, or when the start symbol has no rule) *)
  rm_reset : unit -> unit; (* reset the CST stack between uses *)
}

(* Token kinds arrive as dense ids ([tids], valid for this engine's
   interner); the tokens themselves stay behind the [tok] accessor, touched
   only at CST leaves and error edges — which is how the SoA path parses
   without materializing [Token.t] records, and the classic path reads its
   pre-built array.

   The two engines are one mutually recursive group.

   Committed dispatch loop (c_ functions): runs wherever an own-committed
   non-terminal's choice points all commit ([nt_fast]) — one or two [tid]
   probes select the only branch that can possibly succeed, so parsing is a
   direct int-returning recursion: no continuation closures, no memo
   traffic, children on the stack arena. At a reference to a non-[nt_fast]
   non-terminal it drops into the memoized engine for that subtree and
   tries each derivation end in priority order — backtracking stays scoped
   to the ambiguous subtree. No expectation tracking happens on this path;
   any failure of a dispatching run is re-derived on the pure memoized
   path, which reproduces the backtracking engine's error exactly.

   Memoized backtracking engine (p_ functions): the previous engine, with
   two hooks active when [use_dispatch] is on — a transitively committed
   non-terminal's complete derivation set is the single derivation the
   dispatch loop produces, and every committed choice point (even inside
   non-terminals that are not committed) explores only the branch its table
   selects: branches outside the prediction set cannot take part in any
   successful parse, whatever the context, because FOLLOW is the union over
   all contexts. *)
let machinery t ~(tids : int array) ~n ~(tok : int -> Lexing_gen.Token.t)
    ~(kind_name : int -> string) ~use_dispatch =
  let n_terms = Interner.size t.interner in
  let tid i = if i < n then Array.unsafe_get tids i else Interner.eof_id in
  let stride = n + 1 in
  let stack = Domain.DLS.get cst_arena in
  let sp = ref 0 in
  let push c =
    let s = !stack in
    let len = Array.length s in
    if !sp = len then begin
      let s' = Array.make (2 * len) dummy_cst in
      Array.blit s 0 s' 0 len;
      stack := s'
    end;
    Array.unsafe_set !stack !sp c;
    incr sp
  in
  let select d i =
    match d with
    | Predict.Always -> 0
    | Predict.Fallback -> -1 (* never reached inside a committed subtree *)
    | Predict.Commit1 table ->
      let k = tid i in
      if k < 0 then -1 else Array.unsafe_get table k
    | Predict.Commit2 (table, second) -> (
      let k1 = tid i in
      if k1 < 0 then -1
      else
        match Array.unsafe_get table k1 with
        | -2 -> (
          match Hashtbl.find_opt second k1 with
          | None -> -1
          | Some row ->
            let k2 = tid (i + 1) in
            if k2 < 0 then -1 else Array.unsafe_get row k2)
        | b -> b)
  in
  (* The memo is acquired (and its O(rules × tokens) clear paid) only when
     a fallback boundary is actually reached: a fully committed parse never
     touches it. *)
  let memo = lazy (acquire_memo (Array.length t.rules * stride)) in
    (* Furthest-failure tracking for error reporting: expected terminals are
       accumulated as a bitset and rendered back through the interner only
       when the parse actually fails. *)
    let best_pos = ref (-1) in
    let best_expected = bitset_make n_terms in
    let advance_to i =
      if i > !best_pos then begin
        best_pos := i;
        Bytes.fill best_expected 0 (Bytes.length best_expected) '\000';
        true
      end
      else i = !best_pos
    in
    let expect_one i id = if advance_to i then bitset_add best_expected id in
    let expect_set i set =
      if advance_to i then bitset_union_into ~into:best_expected set
    in
    (* With pruning disabled (ablation), every alternative is attempted. *)
    let enter_nullable (pred : pred) i =
      (not t.prune) || pred.nullable || bitset_mem pred.first (tid i)
    in
    let enter_strict (pred : pred) i =
      (not t.prune) || bitset_mem pred.first (tid i)
    in
    let rec c_seq seq si i =
    if si = Array.length seq then i
    else
      match Array.unsafe_get seq si with
      | INonterm nid when not (Array.unsafe_get t.nt_fast nid) ->
        (* Fallback boundary: this rule has an ambiguous point of its own,
           so its derivations come from the memoized engine; each end
           position is tried against the rest of this sequence in priority
           order. The backtracking is scoped: once the rest of the sequence
           succeeds the choice is final (should the parse fail further out,
           the run aborts and the pure path re-derives the statement). *)
        let name = Array.unsafe_get t.nt_names nid in
        let rec try_ends = function
          | [] -> -1
          | (j, children) :: rest ->
            let sp0 = !sp in
            push (Cst.Node (name, children));
            let r = c_seq seq (si + 1) j in
            if r >= 0 then r
            else begin
              sp := sp0;
              try_ends rest
            end
        in
        try_ends (nonterm_results nid i)
      | term ->
        let j = c_term term i in
        if j < 0 then -1 else c_seq seq (si + 1) j
  and c_term term i =
    match term with
    | ITerm id ->
      if i < n && tid i = id then begin
        push (Cst.Leaf (tok i));
        i + 1
      end
      else -1
    | INonterm nid -> c_nt nid i
    | IOpt (s, _, d) -> if select d i = 0 then c_seq s 0 i else i
    | IStar (s, _, d) -> c_star s d i
    | IPlus (s, _, d) ->
      let j = c_seq s 0 i in
      if j < 0 then -1 else c_star s d j
    | IGroup (alts, d) ->
      let b = select d i in
      if b < 0 then -1 else c_seq (fst (Array.unsafe_get alts b)) 0 i
  and c_star s d i =
    if select d i = 0 then begin
      let j = c_seq s 0 i in
      if j < 0 then -1
        (* A committed loop body cannot be nullable (its enter set would
           contain the skip set), so [j > i] always — kept as a guard. *)
      else if j > i then c_star s d j
      else i
    end
    else i
  and c_nt nid i =
    let sp0 = !sp in
    let b =
      select (Array.unsafe_get t.alt_dispatch nid) i
    in
    if b < 0 then -1
    else
      let alt, _ = Array.unsafe_get (Array.unsafe_get t.rules nid) b in
      let j = c_seq alt 0 i in
      if j < 0 then begin
        sp := sp0;
        -1
      end
      else begin
        let s = !stack in
        let rec collect k acc =
          if k < sp0 then acc else collect (k - 1) (Array.unsafe_get s k :: acc)
        in
        let children = collect (!sp - 1) [] in
        sp := sp0;
        push (Cst.Node (Array.unsafe_get t.nt_names nid, children));
        j
      end
    (* Memoized complete-results parsing. For each (non-terminal, position)
       the full ordered set of derivations is computed once; since a
       continuation's success depends only on where a derivation ends,
       derivations are deduped by end position (first — highest-priority —
       tree wins). This keeps the full-backtracking semantics while avoiding
       the exponential re-parsing that naive backtracking exhibits on nested
       parenthesized constructs. Left recursion is rejected at generation
       time, so the memo computation never re-enters its own key. *)
    and p_seq seq si i acc (k : int -> Cst.t list -> Cst.t option) =
      if si = Array.length seq then k i acc
      else
        p_term (Array.unsafe_get seq si) i acc (fun j acc ->
            p_seq seq (si + 1) j acc k)
    and p_term term i acc k =
      match term with
      | ITerm id ->
        if tid i = id && i < n then k (i + 1) (Cst.Leaf (tok i) :: acc)
        else begin
          expect_one i id;
          None
        end
      | INonterm nid ->
        let name = Array.unsafe_get t.nt_names nid in
        let rec try_results = function
          | [] -> None
          | (j, children) :: rest -> (
            match k j (Cst.Node (name, children) :: acc) with
            | Some _ as r -> r
            | None -> try_results rest)
        in
        try_results (nonterm_results nid i)
      | IOpt (s, pred, d) ->
        if use_dispatch && d <> Predict.Fallback then (
          (* Committed enter-vs-skip: the non-selected side cannot belong to
             any successful parse, so neither it nor a backtrack into it is
             tried. -1 (foreign token / no viable side) fails the point. *)
          match select d i with
          | 0 -> p_seq s 0 i acc k
          | 1 -> k i acc
          | _ -> None)
        else if enter_strict pred i then (
          match p_seq s 0 i acc k with
          | Some _ as r -> r
          | None -> k i acc)
        else k i acc
      | IStar (s, pred, d) -> p_star s pred d i acc k
      | IPlus (s, pred, d) ->
        p_seq s 0 i acc (fun j acc -> p_star s pred d j acc k)
      | IGroup (alts, d) ->
        if use_dispatch && d <> Predict.Fallback then (
          match select d i with
          | b when b >= 0 -> p_seq (fst (Array.unsafe_get alts b)) 0 i acc k
          | _ -> None)
        else
          let len = Array.length alts in
          let rec go a =
            if a = len then None
            else
              let s, pred = Array.unsafe_get alts a in
              if enter_nullable pred i then (
                match p_seq s 0 i acc k with
                | Some _ as r -> r
                | None -> go (a + 1))
              else begin
                expect_set i pred.first;
                go (a + 1)
              end
          in
          go 0
    and p_star s pred d i acc k =
      if use_dispatch && d <> Predict.Fallback then (
        (* Committed loop: each enter-vs-stop choice is decided by lookahead,
           so a failed iteration fails the loop — no backtracking into a
           shorter repetition. *)
        match select d i with
        | 0 ->
          p_seq s 0 i acc (fun j acc2 ->
              if j > i then p_star s pred d j acc2 k else k j acc2)
        | 1 -> k i acc
        | _ -> None)
      else if enter_strict pred i then (
        match
          p_seq s 0 i acc (fun j acc2 ->
              (* Guard against zero-progress iterations of a nullable body. *)
              if j > i then p_star s pred d j acc2 k else k j acc2)
        with
        | Some _ as r -> r
        | None -> k i acc)
      else k i acc
    and nonterm_results nid i =
      if t.memoize && i <= n then begin
        let memo = Lazy.force memo in
        let idx = (nid * stride) + i in
        let cached = Array.unsafe_get memo idx in
        if cached != memo_unset then cached
        else begin
          let results = compute_results nid i in
          Array.unsafe_set memo idx results;
          results
        end
      end
      else compute_results nid i
    and compute_results nid i =
      if use_dispatch && Array.unsafe_get t.nt_committed nid then begin
        (* Committed subtree: its derivation is the unique one the dispatch
           loop computes (every choice inside is decided by lookahead), so
           the complete result set is that single derivation — or nothing. *)
        let sp0 = !sp in
        let j = c_nt nid i in
        if j < 0 then []
        else begin
          let children =
            match Array.unsafe_get !stack (!sp - 1) with
            | Cst.Node (_, cs) -> cs
            | Cst.Leaf _ -> assert false
          in
          sp := sp0;
          [ (j, children) ]
        end
      end
      else begin
        (* Priority order is preserved by consing onto a reversed accumulator
           and reversing once at the end — the old [!results @ [...]] rebuilt
           the whole list per accepted candidate. The end-position membership
           probe scans only the distinct accepted ends (almost always 0 or 1),
           comparing unboxed ints. *)
        let results = ref [] in
        let rec seen j = function
          | [] -> false
          | (j', _) :: rest -> j = j' || seen j rest
        in
        let collect (s, (pred : pred)) =
          if enter_nullable pred i then
            ignore
              (p_seq s 0 i [] (fun j acc ->
                   if not (seen j !results) then
                     results := (j, List.rev acc) :: !results;
                   (* Refuse so the enumeration continues. *)
                   None))
          else expect_set i pred.first
        in
        let alts = Array.unsafe_get t.rules nid in
        let d = Array.unsafe_get t.alt_dispatch nid in
        (if use_dispatch && d <> Predict.Fallback && d <> Predict.Always then
           (* Committed rule inside an uncommitted subtree (some *referenced*
              non-terminal backtracks, but this rule's own alternatives are
              lookahead-disjoint): only the selected alternative can yield a
              derivation that survives into any successful parse. *)
           let b = select d i in
           if b >= 0 then collect (Array.unsafe_get alts b) else ()
         else Array.iter collect alts);
        List.rev !results
      end
    in
    let fail_result () =
      let bp = max 0 !best_pos in
      let pos =
        if n = 0 then { Lexing_gen.Token.line = 1; column = 1; offset = 0 }
        else if bp >= n then begin
          (* Failure past the last token: report the position just past its
             span (scanner streams end in an EOF sentinel of width 0, whose
             own position this reproduces; the fix is visible only on
             hand-built streams without one. The reference engine keeps the
             historical clamp to the last token's start). *)
          let last = tok (n - 1) in
          let len = String.length last.Lexing_gen.Token.text in
          {
            Lexing_gen.Token.line = last.Lexing_gen.Token.pos.line;
            column = last.Lexing_gen.Token.pos.column + len;
            offset = last.Lexing_gen.Token.pos.offset + len;
          }
        end
        else (tok bp).Lexing_gen.Token.pos
      in
      let expected = ref [] in
      for id = n_terms - 1 downto 0 do
        if bitset_mem best_expected id then
          expected := Interner.name t.interner id :: !expected
      done;
      Error
        {
          Engine_types.pos;
          found = kind_name bp;
          expected = List.sort_uniq compare !expected;
        }
    in
  let top sid =
    if use_dispatch && Array.unsafe_get t.nt_fast sid then begin
      sp := 0;
      let j = c_nt sid 0 in
      if j >= 0 && tid j = Interner.eof_id then begin
        let tree = Array.unsafe_get !stack (!sp - 1) in
        sp := 0;
        Ok tree
      end
      else begin
        sp := 0;
        (* Error payload discarded: the caller re-derives on the pure
           path, which tracks expectations. *)
        fail_result ()
      end
    end
    else
      let result =
        p_term (INonterm sid) 0 [] (fun i acc ->
            if tid i = Interner.eof_id then
              match acc with [ tree ] -> Some tree | _ -> None
            else begin
              expect_one i Interner.eof_id;
              None
            end)
      in
      match result with Some tree -> Ok tree | None -> fail_result ()
  in
  {
    rm_results = nonterm_results;
    rm_top = top;
    rm_fail = fail_result;
    rm_reset = (fun () -> sp := 0);
  }

(* The shared parse driver over the machinery above. [want_vm] prefers the
   bytecode VM for the first (dispatching) run; [build] is threaded to the
   VM so recognition runs skip CST construction entirely. *)
let parse_ids ?start t ~(tids : int array) ~n
    ~(tok : int -> Lexing_gen.Token.t) ~(kind_name : int -> string) ~want_vm
    ~build =
  let run mode start_name =
    let use_dispatch = match mode with `P -> false | `C | `V _ -> true in
    let m = machinery t ~tids ~n ~tok ~kind_name ~use_dispatch in
    match Hashtbl.find_opt t.nt_ids start_name with
    | None ->
      (* No rule to enter: fail at the first token with an empty expected
         set, as the string engine did for an unknown start symbol. *)
      m.rm_fail ()
    | Some sid -> (
      match mode with
      | `V prog -> (
        (* Bytecode run. The engine's CST stack is reset because the VM's
           fallback boundary reuses [compute_results]/[c_nt], which work on
           it; the VM's own stacks live in {!Vm}'s arena. *)
        m.rm_reset ();
        match
          Vm.exec prog ~ids:tids ~n ~build
            ~leaf:(fun i -> Cst.Leaf (tok i))
            ~fallback:m.rm_results
        with
        | Some tree -> Ok tree
        | None ->
          (* Error payload discarded: the caller re-derives on the pure
             path, which tracks expectations. *)
          m.rm_fail ())
      | `C | `P -> m.rm_top sid)
  in
  let start_name = Option.value ~default:t.start start in
  (* Prediction tables bake in FOLLOW sets computed for the grammar's own
     start symbol, so an overridden entry point parses on the pure memoized
     path. Any failure of a dispatching run is re-derived without dispatch:
     the fast paths track no expectations, and re-running the (rare)
     rejected statement reproduces the backtracking engine's error
     exactly. *)
  if not (t.dispatch && String.equal start_name t.start) then
    run `P start_name
  else
    let first_mode =
      if want_vm then
        match t.program with
        | Some p when Program.start_entry p >= 0 -> `V p
        | _ -> `C
      else `C
    in
    match run first_mode start_name with
    | Ok _ as ok -> ok
    | Error _ -> run `P start_name

(* Token kinds resolved to engine ids once, at the boundary: tokens stamped
   by the shared scanner pass a physical-equality check; foreign or
   unstamped tokens are re-interned; unknown kinds become [-1], which
   matches no terminal and belongs to no bitset. *)
let stamped_ids t toks =
  Array.map
    (fun tok ->
      Interner.stamp_of t.interner ~kind:tok.Lexing_gen.Token.kind
        tok.Lexing_gen.Token.kind_id)
    toks

let parse_tokens ?start t toks =
  let n = Array.length toks in
  parse_ids ?start t ~tids:(stamped_ids t toks) ~n
    ~tok:(fun i -> toks.(i))
    ~kind_name:(fun i ->
      if i < n then toks.(i).Lexing_gen.Token.kind
      else Lexing_gen.Token.eof_kind)
    ~want_vm:false ~build:true

let parse_tokens_vm ?start t toks =
  let n = Array.length toks in
  parse_ids ?start t ~tids:(stamped_ids t toks) ~n
    ~tok:(fun i -> toks.(i))
    ~kind_name:(fun i ->
      if i < n then toks.(i).Lexing_gen.Token.kind
      else Lexing_gen.Token.eof_kind)
    ~want_vm:true ~build:true

module Scanner = Lexing_gen.Scanner

(* SoA boundary: the scanner's kind ids are trusted directly when the
   scanner shares this engine's interner (what [Core.generate] arranges —
   [Interner.extend] preserves ids, and a coherent composition returns the
   scanner's interner itself). A foreign scanner's ids are re-stamped
   through their names, slow but correct. *)
let soa_ids t ~scanner (soa : Scanner.soa) ~n =
  if Scanner.interner scanner == t.interner then soa.Scanner.kind_ids
  else
    let si = Scanner.interner scanner in
    Array.init n (fun i ->
        let id = soa.Scanner.kind_ids.(i) in
        Interner.stamp_of t.interner ~kind:(Interner.name si id) id)

let parse_soa ?start t ~scanner soa =
  (* [n] counts the EOF sentinel, like the token arrays [scan_tokens]
     produces, so all engines see identical streams. *)
  let n = Scanner.soa_count soa + 1 in
  let tids = soa_ids t ~scanner soa ~n in
  (* Tokens are materialized lazily, in one batch, only if a CST leaf or an
     error edge actually needs them — the recognition path never does. *)
  let mat = lazy (Scanner.tokens_of_soa scanner soa) in
  parse_ids ?start t ~tids ~n
    ~tok:(fun i -> (Lazy.force mat).(i))
    ~kind_name:(fun i ->
      if i < n then (Lazy.force mat).(i).Lexing_gen.Token.kind
      else Lexing_gen.Token.eof_kind)
    ~want_vm:true ~build:true

let recognize_soa ?start t ~scanner soa =
  let n = Scanner.soa_count soa + 1 in
  let tids = soa_ids t ~scanner soa ~n in
  let mat = lazy (Scanner.tokens_of_soa scanner soa) in
  Result.map
    (fun (_ : Cst.t) -> ())
    (parse_ids ?start t ~tids ~n
       ~tok:(fun i -> (Lazy.force mat).(i))
       ~kind_name:(fun i ->
         if i < n then (Lazy.force mat).(i).Lexing_gen.Token.kind
         else Lexing_gen.Token.eof_kind)
       ~want_vm:true ~build:false)

(* Fused scan+parse: the bytecode VM drives the scanner through a pull
   cursor, so the committed region of a statement is a single pass over the
   raw bytes — no up-front tokenization. Random access (the FB oracle's
   memoized fallback, and the pure rerun that reproduces errors) completes
   the scan lazily on first use; because the cursor appends into the same
   arena a whole-buffer scan fills, the completed stream is identical to
   [scan_soa]'s and all diagnostics stay byte-identical to the two-pass
   engines.

   Lexical errors also match the two-pass pipeline exactly: acceptance
   requires the EOF lookahead, which forces the scan to the end of input,
   so an accepted statement is lexically clean; a rejected or failed run
   completes the scan (hitting any lexical error at the same byte the
   whole-buffer scan would) before the parse error is derived. *)
let fused_eligible t ~scanner =
  Scanner.interner scanner == t.interner
  &&
  match t.program with
  | Some p -> Program.start_entry p >= 0
  | None -> false

let fused_machinery t ~scanner soa ~use_dispatch =
  let n = Scanner.soa_count soa + 1 in
  let mat = lazy (Scanner.tokens_of_soa scanner soa) in
  machinery t ~tids:soa.Scanner.kind_ids ~n
    ~tok:(fun i -> (Lazy.force mat).(i))
    ~kind_name:(fun i ->
      if i < n then (Lazy.force mat).(i).Lexing_gen.Token.kind
      else Lexing_gen.Token.eof_kind)
    ~use_dispatch

(* The pure rerun for a rejected fused run: identical to the [`P] rerun the
   two-pass driver performs, over the now-complete stream. *)
let fused_reject t ~scanner soa =
  let m = fused_machinery t ~scanner soa ~use_dispatch:false in
  let result =
    match Hashtbl.find_opt t.nt_ids t.start with
    | None -> m.rm_fail ()
    | Some sid -> m.rm_top sid
  in
  ( Scanner.soa_count soa,
    match result with Ok cst -> Ok cst | Error e -> Error (`Parse e) )

let fused_run ~build t ~scanner input =
  if not (fused_eligible t ~scanner) then
    (* No compiled program (dispatch off) or a foreign scanner: fall back
       to the two-pass pipeline, same results at two-pass speed. *)
    match Scanner.scan_soa scanner input with
    | Error e -> (0, Error (`Lex e))
    | Ok soa -> (
      let count = Scanner.soa_count soa in
      let run = if build then parse_soa else fun ?start:_ t ~scanner soa ->
        Result.map (fun () -> dummy_cst) (recognize_soa t ~scanner soa)
      in
      match run t ~scanner soa with
      | Ok cst -> (count, Ok cst)
      | Error e -> (count, Error (`Parse e)))
  else
    let prog = Option.get t.program in
    let cursor = Scanner.cursor scanner input in
    (* The FB oracle is built lazily, once, over the completed stream: the
       memo must persist across FB calls within the run. *)
    let oracle = ref None in
    let fallback nid pos =
      let m =
        match !oracle with
        | Some m -> m
        | None ->
          let soa = Scanner.cursor_complete cursor in
          let m = fused_machinery t ~scanner soa ~use_dispatch:true in
          m.rm_reset ();
          oracle := Some m;
          m
      in
      m.rm_results nid pos
    in
    match
      Vm.exec_fused prog ~cursor ~build
        ~leaf:(fun i -> Cst.Leaf (Scanner.cursor_token_at cursor i))
        ~fallback
    with
    | Some tree ->
      (* Acceptance pulled the EOF lookahead, so the whole input is scanned
         and the count is the statement's full token count. *)
      (Scanner.cursor_count cursor, Ok tree)
    | None -> (
      (* A rejected run may not have scanned past the failure point; the
         completing scan can still hit a lexical error, exactly where the
         two-pass pipeline's whole-buffer scan would have. *)
      match Scanner.cursor_complete cursor with
      | soa -> fused_reject t ~scanner soa
      | exception Scanner.Lex_error e -> (0, Error (`Lex e)))
    | exception Scanner.Lex_error e -> (0, Error (`Lex e))

let parse_fused t ~scanner input = fused_run ~build:true t ~scanner input

let recognize_fused t ~scanner input =
  let count, result = fused_run ~build:false t ~scanner input in
  (count, Result.map (fun (_ : Cst.t) -> ()) result)

let parse ?start t token_list = parse_tokens ?start t (Array.of_list token_list)

let accepts ?start t tokens =
  match parse ?start t tokens with Ok _ -> true | Error _ -> false
