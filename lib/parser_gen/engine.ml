module String_set = Grammar.Analysis.String_set
module Interner = Lexing_gen.Interner

type gen_error = Engine_types.gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
  | Left_recursion of string list

let pp_gen_error = Engine_types.pp_gen_error

type parse_error = Engine_types.parse_error = {
  pos : Lexing_gen.Token.position;
  found : string;
  expected : string list;
}

let pp_parse_error = Engine_types.pp_parse_error

(* FIRST sets as bitsets over dense terminal ids: membership is a shift and
   a mask instead of a balanced-tree descent over string comparisons. *)
type bitset = Bytes.t

let bitset_make n_terms : bitset = Bytes.make ((n_terms + 7) lsr 3) '\000'

let bitset_add (b : bitset) id =
  let byte = id lsr 3 in
  Bytes.unsafe_set b byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl (id land 7))))

let bitset_mem (b : bitset) id =
  id >= 0
  && Char.code (Bytes.unsafe_get b (id lsr 3)) land (1 lsl (id land 7)) <> 0

let bitset_union_into ~into:(dst : bitset) (src : bitset) =
  for byte = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst byte)
         lor Char.code (Bytes.unsafe_get src byte)))
  done

(* Internal representation: the grammar compiled down to integers, with a
   prediction record attached to every choice point. Terminal occurrences
   are interner ids, non-terminal occurrences index the [rules] array. *)
type pred = {
  first : bitset;
  nullable : bool;
}

type iterm =
  | ITerm of int
  | INonterm of int
  | IOpt of iseq * pred
  | IStar of iseq * pred
  | IPlus of iseq * pred
  | IGroup of (iseq * pred) array

and iseq = iterm array

type t = {
  grammar : Grammar.Cfg.t;
  interner : Interner.t;            (* terminal kinds, shared with the scanner *)
  nt_names : string array;          (* non-terminal id -> name (CST labels) *)
  nt_ids : (string, int) Hashtbl.t;
  start : string;
  rules : (iseq * pred) array array; (* non-terminal id -> alternatives *)
  memoize : bool;
  prune : bool;
}

let grammar t = t.grammar
let start_symbol t = t.start
let interner t = t.interner

(* Every terminal occurring anywhere in the grammar, in occurrence order. *)
let grammar_terminals (g : Grammar.Cfg.t) =
  let acc = ref [] in
  let rec term = function
    | Grammar.Production.Sym (Grammar.Symbol.Terminal n) -> acc := n :: !acc
    | Grammar.Production.Sym (Grammar.Symbol.Nonterminal _) -> ()
    | Grammar.Production.Opt ts
    | Grammar.Production.Star ts
    | Grammar.Production.Plus ts ->
      List.iter term ts
    | Grammar.Production.Group alts -> List.iter (List.iter term) alts
  in
  List.iter
    (fun (r : Grammar.Production.t) -> List.iter (List.iter term) r.alts)
    g.rules;
  List.rev !acc

let generate ?(memoize = true) ?(prune = true) ?interner g =
  let problems =
    (* Unreachable rules are tolerated in generated parsers (a fragment may
       define helpers only some alternatives use); undefined references and a
       missing start rule are fatal. *)
    List.filter
      (function
        | Grammar.Cfg.Unreachable_rule _ -> false
        | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start ->
          true)
      (Grammar.Cfg.check g)
  in
  if problems <> [] then Error (Grammar_problems problems)
  else
    match Grammar.Analysis.left_recursive g with
    | _ :: _ as nts -> Error (Left_recursion nts)
    | [] ->
      let an = Grammar.Analysis.compute g in
      (* Extending the scanner's interner preserves its ids, so tokens it
         stamps remain trusted; terminals the token set lacks (none in a
         coherent composition) are appended. *)
      let interner =
        match interner with
        | Some i -> Interner.extend i (grammar_terminals g)
        | None -> Interner.of_names (grammar_terminals g)
      in
      let n_terms = Interner.size interner in
      let term_id name =
        match Interner.id_opt interner name with
        | Some id -> id
        | None -> assert false (* interner covers grammar_terminals *)
      in
      let nt_names =
        Array.of_list
          (List.map (fun (r : Grammar.Production.t) -> r.lhs) g.rules)
      in
      let nt_ids = Hashtbl.create (2 * Array.length nt_names) in
      Array.iteri (fun id name -> Hashtbl.replace nt_ids name id) nt_names;
      let pred_of_seq seq =
        let first = bitset_make n_terms in
        String_set.iter
          (fun name -> bitset_add first (term_id name))
          (Grammar.Analysis.seq_first an g seq);
        { first; nullable = Grammar.Analysis.seq_nullable an g seq }
      in
      let rec compile_term = function
        | Grammar.Production.Sym (Grammar.Symbol.Terminal n) -> ITerm (term_id n)
        | Grammar.Production.Sym (Grammar.Symbol.Nonterminal n) ->
          INonterm (Hashtbl.find nt_ids n) (* defined: checked above *)
        | Grammar.Production.Opt ts -> IOpt (compile_seq ts, pred_of_seq ts)
        | Grammar.Production.Star ts -> IStar (compile_seq ts, pred_of_seq ts)
        | Grammar.Production.Plus ts -> IPlus (compile_seq ts, pred_of_seq ts)
        | Grammar.Production.Group alts ->
          IGroup
            (Array.of_list
               (List.map (fun a -> (compile_seq a, pred_of_seq a)) alts))
      and compile_seq ts = Array.of_list (List.map compile_term ts) in
      let rules =
        Array.of_list
          (List.map
             (fun (r : Grammar.Production.t) ->
               Array.of_list
                 (List.map (fun a -> (compile_seq a, pred_of_seq a)) r.alts))
             g.rules)
      in
      Ok { grammar = g; interner; nt_names; nt_ids; start = g.start; rules;
           memoize; prune }

(* The memo is a flat array indexed by [nt_id * (n_tokens + 1) + pos]. A
   shared physical sentinel marks empty slots, so a legitimately empty
   result list is still a hit. The array is domain-local scratch, reused
   across parses (grown when a statement needs more slots, cleared with a
   single [Array.fill]): steady-state parsing allocates nothing for
   memoization. Domain-locality keeps the sharded batch path safe — each
   worker clears and fills only its own arena. *)
let memo_unset : (int * Cst.t list) list = [ (min_int, []) ]

let memo_arena : (int * Cst.t list) list array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let acquire_memo need =
  let arena = Domain.DLS.get memo_arena in
  if Array.length !arena < need then arena := Array.make need memo_unset
  else Array.fill !arena 0 need memo_unset;
  !arena

let parse_tokens ?start t toks =
  let n = Array.length toks in
  let n_terms = Interner.size t.interner in
  (* Token kinds resolved to engine ids once, at the boundary: tokens
     stamped by the shared scanner pass a physical-equality check; foreign
     or unstamped tokens are re-interned; unknown kinds become [-1], which
     matches no terminal and belongs to no bitset. *)
  let tids =
    Array.map
      (fun tok ->
        Interner.stamp_of t.interner ~kind:tok.Lexing_gen.Token.kind
          tok.Lexing_gen.Token.kind_id)
      toks
  in
  let tid i = if i < n then Array.unsafe_get tids i else Interner.eof_id in
  let kind_name i =
    if i < n then toks.(i).Lexing_gen.Token.kind else Lexing_gen.Token.eof_kind
  in
  (* Furthest-failure tracking for error reporting: expected terminals are
     accumulated as a bitset and rendered back through the interner only
     when the parse actually fails. *)
  let best_pos = ref (-1) in
  let best_expected = bitset_make n_terms in
  let advance_to i =
    if i > !best_pos then begin
      best_pos := i;
      Bytes.fill best_expected 0 (Bytes.length best_expected) '\000';
      true
    end
    else i = !best_pos
  in
  let expect_one i id = if advance_to i then bitset_add best_expected id in
  let expect_set i set =
    if advance_to i then bitset_union_into ~into:best_expected set
  in
  (* With pruning disabled (ablation), every alternative is attempted. *)
  let enter_nullable (pred : pred) i =
    (not t.prune) || pred.nullable || bitset_mem pred.first (tid i)
  in
  let enter_strict (pred : pred) i =
    (not t.prune) || bitset_mem pred.first (tid i)
  in
  (* Memoized complete-results parsing. For each (non-terminal, position) the
     full ordered set of derivations is computed once; since a continuation's
     success depends only on where a derivation ends, derivations are deduped
     by end position (first — highest-priority — tree wins). This keeps the
     full-backtracking semantics while avoiding the exponential re-parsing
     that naive backtracking exhibits on nested parenthesized constructs.
     Left recursion is rejected at generation time, so the memo computation
     never re-enters its own key. The memo is a flat array indexed by
     [nt_id * (n + 1) + pos]; a shared sentinel marks empty slots so that a
     legitimately empty result list is still a hit. *)
  let stride = n + 1 in
  let memo =
    if t.memoize then acquire_memo (Array.length t.rules * stride)
    else [||]
  in
  let rec p_seq seq si i acc (k : int -> Cst.t list -> Cst.t option) =
    if si = Array.length seq then k i acc
    else p_term (Array.unsafe_get seq si) i acc (fun j acc -> p_seq seq (si + 1) j acc k)
  and p_term term i acc k =
    match term with
    | ITerm id ->
      if tid i = id && i < n then k (i + 1) (Cst.Leaf toks.(i) :: acc)
      else begin
        expect_one i id;
        None
      end
    | INonterm nid ->
      let name = Array.unsafe_get t.nt_names nid in
      let rec try_results = function
        | [] -> None
        | (j, children) :: rest -> (
          match k j (Cst.Node (name, children) :: acc) with
          | Some _ as r -> r
          | None -> try_results rest)
      in
      try_results (nonterm_results nid i)
    | IOpt (s, pred) ->
      if enter_strict pred i then (
        match p_seq s 0 i acc k with
        | Some _ as r -> r
        | None -> k i acc)
      else k i acc
    | IStar (s, pred) -> p_star s pred i acc k
    | IPlus (s, pred) -> p_seq s 0 i acc (fun j acc -> p_star s pred j acc k)
    | IGroup alts ->
      let len = Array.length alts in
      let rec go a =
        if a = len then None
        else
          let s, pred = Array.unsafe_get alts a in
          if enter_nullable pred i then (
            match p_seq s 0 i acc k with
            | Some _ as r -> r
            | None -> go (a + 1))
          else begin
            expect_set i pred.first;
            go (a + 1)
          end
      in
      go 0
  and p_star s pred i acc k =
    if enter_strict pred i then (
      match
        p_seq s 0 i acc (fun j acc2 ->
            (* Guard against zero-progress iterations of a nullable body. *)
            if j > i then p_star s pred j acc2 k else k j acc2)
      with
      | Some _ as r -> r
      | None -> k i acc)
    else k i acc
  and nonterm_results nid i =
    if t.memoize && i <= n then begin
      let idx = (nid * stride) + i in
      let cached = Array.unsafe_get memo idx in
      if cached != memo_unset then cached
      else begin
        let results = compute_results nid i in
        Array.unsafe_set memo idx results;
        results
      end
    end
    else compute_results nid i
  and compute_results nid i =
    (* Priority order is preserved by consing onto a reversed accumulator
       and reversing once at the end — the old [!results @ [...]] rebuilt
       the whole list per accepted candidate. The end-position membership
       probe scans only the distinct accepted ends (almost always 0 or 1),
       comparing unboxed ints. *)
    let results = ref [] in
    let rec seen j = function
      | [] -> false
      | (j', _) :: rest -> j = j' || seen j rest
    in
    Array.iter
      (fun (s, pred) ->
        if enter_nullable pred i then
          ignore
            (p_seq s 0 i [] (fun j acc ->
                 if not (seen j !results) then
                   results := (j, List.rev acc) :: !results;
                 (* Refuse so the enumeration continues. *)
                 None))
        else expect_set i pred.first)
      (Array.unsafe_get t.rules nid);
    List.rev !results
  in
  let fail_result () =
    let i = max 0 (min !best_pos (n - 1)) in
    let pos =
      if n = 0 then { Lexing_gen.Token.line = 1; column = 1; offset = 0 }
      else toks.(i).Lexing_gen.Token.pos
    in
    let expected = ref [] in
    for id = n_terms - 1 downto 0 do
      if bitset_mem best_expected id then
        expected := Interner.name t.interner id :: !expected
    done;
    Error
      {
        Engine_types.pos;
        found = kind_name i;
        expected = List.sort_uniq compare !expected;
      }
  in
  let start_name = Option.value ~default:t.start start in
  match Hashtbl.find_opt t.nt_ids start_name with
  | None ->
    (* No rule to enter: fail at the first token with an empty expected
       set, as the string engine did for an unknown start symbol. *)
    fail_result ()
  | Some sid -> (
    let result =
      p_term (INonterm sid) 0 [] (fun i acc ->
          if tid i = Interner.eof_id then
            match acc with [ tree ] -> Some tree | _ -> None
          else begin
            expect_one i Interner.eof_id;
            None
          end)
    in
    match result with
    | Some tree -> Ok tree
    | None -> fail_result ())

let parse ?start t token_list = parse_tokens ?start t (Array.of_list token_list)

let accepts ?start t tokens =
  match parse ?start t tokens with Ok _ -> true | Error _ -> false
