(** The string-keyed parsing engine the interned {!Engine} replaced.

    Retained verbatim as the executable specification of the parsing
    semantics: terminals match by [String.equal], prediction sets are
    balanced-tree string sets, and the memo is a polymorphic-hashed
    [(string * int)] hashtable. The differential test suite checks
    {!Engine} against this module on the conformance corpus, and bench E16
    measures the interned engine's speedup over it. Keep it simple, not
    fast. *)

type t

val generate :
  ?memoize:bool -> ?prune:bool -> Grammar.Cfg.t ->
  (t, Engine_types.gen_error) result

val grammar : t -> Grammar.Cfg.t
val start_symbol : t -> string

val parse :
  ?start:string -> t -> Lexing_gen.Token.t list ->
  (Cst.t, Engine_types.parse_error) result

val accepts : ?start:string -> t -> Lexing_gen.Token.t list -> bool
