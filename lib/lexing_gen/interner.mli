(** Dense symbol interning.

    The composed front-end is compiled down to integers at generation time:
    every terminal kind (and, inside the parser engine, every non-terminal)
    receives a dense id, so the hot path compares and indexes [int]s instead
    of hashing strings. An interner is immutable once built, which makes it
    safe to share across domains; string names survive only at the edges
    (CST labels, error messages), recovered through {!name}.

    The EOF sentinel is always interned and always receives id {!eof_id},
    so every interner agrees on it. *)

type t

val eof_id : int
(** Id of the [EOF] terminal in every interner (0). *)

val of_names : string list -> t
(** [of_names names] assigns dense ids in first-occurrence order (duplicates
    ignored). ["EOF"] is interned first — explicitly listed or not — so it
    gets {!eof_id}. *)

val extend : t -> string list -> t
(** [extend t names] is an interner covering [t]'s symbols plus any of
    [names] not already present, appended in order. Existing ids are
    preserved, so tokens stamped against [t] remain valid. Returns [t]
    itself when nothing is new. *)

val id_opt : t -> string -> int option
(** The id of a name, or [None] when the name was never interned. *)

val stamp_of : t -> kind:string -> int -> int
(** [stamp_of t ~kind id] returns a trusted id for a token stamped
    [(kind, id)]: [id] itself when it is [t]'s id for [kind] (the physical
    fast path for tokens produced by a scanner sharing [t]), the id of
    [kind] in [t] when the token was stamped by a foreign interner (or not
    stamped at all, {!Token.no_id}), and [-1] when [kind] is unknown to
    [t] — a kind that matches no terminal and belongs to no prediction
    set. *)

val mem : t -> string -> bool
val name : t -> int -> string
(** The name behind an id. Raises [Invalid_argument] when out of range. *)

val size : t -> int
(** Number of interned symbols; valid ids are [0 .. size - 1]. *)
