(** Immutable hash table keyed by ASCII-case-insensitive strings, designed
    to be probed against a substring of a larger string without allocating.

    The scanner uses this for its keyword table: classifying an identifier
    used to cost a [String.sub] plus a [String.lowercase_ascii] per token;
    [find_sub] folds the case conversion into the hash/equality functions so
    the probe touches only the input bytes in place. *)

type 'a t

val of_list : (string * 'a) list -> 'a t
(** [of_list bindings] builds a table from [(key, value)] pairs. Keys are
    case-folded; when two keys collide case-insensitively the last binding
    wins (mirroring [Hashtbl.replace]). Empty keys are rejected. *)

val find_sub : 'a t -> string -> int -> int -> 'a option
(** [find_sub t s i j] looks up the substring [s[i..j)] (case-insensitively)
    without copying it. Performs no allocation beyond the returned option. *)

val find_idx : 'a t -> string -> int -> int -> int
(** As {!find_sub}, but returns a slot index ([-1] when absent) instead of
    an option: the fully allocation-free probe the scanner's hot loop uses.
    The index is only meaningful as an argument to {!value}. *)

val value : 'a t -> int -> 'a
(** The value stored at a slot index returned by {!find_idx} (which must
    not have been [-1]). *)

val find : 'a t -> string -> 'a option
(** [find t key] is [find_sub t key 0 (String.length key)]. *)

val length : 'a t -> int
(** Number of distinct (case-folded) keys. *)
