(** Tokens produced by generated scanners.

    A token's [kind] names the terminal it matches in the composed grammar
    (e.g. ["SELECT"], ["IDENT"], ["COMMA"]); its [text] is the matched
    lexeme (keywords keep their source spelling, quoted identifiers and
    string literals are unescaped).

    [kind_id] is the dense integer id of [kind] in the scanner's
    {!Interner} — the parser engine's hot path matches and indexes on it
    instead of hashing the kind string. Tokens built outside a scanner may
    carry {!no_id}; the engine's list entry point re-interns those. *)

type position = {
  line : int;    (** 1-based *)
  column : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset *)
}

type t = {
  kind : string;
  kind_id : int;
  text : string;
  pos : position;
}

val eof_kind : string
(** The pseudo-terminal appended at the end of every token stream
    (["EOF"]). *)

val eof_id : int
(** [kind_id] of the EOF token — {!Interner.eof_id} in every interner. *)

val no_id : int
(** Sentinel [kind_id] ([-1]) for tokens not stamped by an interner; it is
    a member of no prediction set. *)

val eof : position -> t

val pp_position : position Fmt.t
val pp : t Fmt.t
