(** Generated scanners.

    [create] compiles a composed token set into a scanner value; [scan]
    tokenizes a string. The scanner skips SQL whitespace and comments
    ([-- ...] to end of line and [/* ... */]). Keywords are matched
    case-insensitively and only when declared in the set: in a dialect whose
    selected features never declare [WINDOW], the word [window] scans as a
    plain identifier.

    The compiled scanner is interned: keyword lookup goes through a
    pre-sized hash table, punctuation dispatch through a table indexed by
    first character (longest match within the bucket), and every emitted
    token carries the dense [kind_id] of its terminal in the scanner's
    {!Interner}. Pass [?interner] to share one interner between the scanner
    and the generated parser (as {!Core.generate} does), so token ids can be
    trusted without re-hashing kind strings. A scanner is immutable after
    [create] and safe to share across domains. *)

type t

val create : ?interner:Interner.t -> Spec.set -> t
(** Compile a token set. When [interner] is given it must cover every
    terminal name of the set (raises [Invalid_argument] otherwise);
    when omitted a fresh interner over the set's terminals is built. *)

val interner : t -> Interner.t

type error = {
  pos : Token.position;
  message : string;
}

val pp_error : error Fmt.t

val scan_tokens : t -> string -> (Token.t array, error) result
(** Tokenize the whole input in one pass. On success the array always ends
    with the [EOF] token, so the statement's token count is
    [Array.length tokens - 1]. *)

val scan : t -> string -> (Token.t list, error) result
(** List view of {!scan_tokens}, kept for call sites that consume tokens
    incrementally. *)

val keyword_count : t -> int
val punct_count : t -> int
(** Size measures of the generated scanner, used by the tailoring
    experiments. *)
