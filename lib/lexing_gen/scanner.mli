(** Generated scanners.

    [create] compiles a composed token set into a scanner value. The scanner
    skips SQL whitespace and comments ([-- ...] to end of line and
    [/* ... */]). Keywords are matched case-insensitively and only when
    declared in the set: in a dialect whose selected features never declare
    [WINDOW], the word [window] scans as a plain identifier.

    The compiled scanner is interned: keyword lookup goes through a
    case-folding hash table probed directly on the input (no substring or
    lowercasing allocation), punctuation dispatch through a table indexed by
    first character (longest match within the bucket), and every emitted
    token carries the dense [kind_id] of its terminal in the scanner's
    {!Interner}. Pass [?interner] to share one interner between the scanner
    and the generated parser (as {!Core.generate} does), so token ids can be
    trusted without re-hashing kind strings. A scanner is immutable after
    [create] and safe to share across domains.

    The primitive scan is {!scan_soa}: it fills a reusable per-domain
    struct-of-arrays buffer with one [(kind_id, start, stop)] triple per
    token plus a newline index, allocating nothing per token. [Token.t]
    records — text strings and line/column positions included — are
    materialized on demand from that buffer ({!token_of_soa},
    {!tokens_of_soa}); {!scan_tokens} is scan-then-materialize-all. *)

type t

val create : ?interner:Interner.t -> Spec.set -> t
(** Compile a token set. When [interner] is given it must cover every
    terminal name of the set (raises [Invalid_argument] otherwise);
    when omitted a fresh interner over the set's terminals is built. *)

val interner : t -> Interner.t

type error = {
  pos : Token.position;
  message : string;
}

val pp_error : error Fmt.t

exception Lex_error of error
(** Raised by the incremental {!cursor} operations when the input has a
    lexical error. The whole-buffer entry points ({!scan_soa},
    {!scan_tokens}) catch it and return [Error] instead. *)

(** {1 Struct-of-arrays token stream} *)

type soa = private {
  mutable src : string;         (** the scanned input *)
  mutable kind_ids : int array; (** dense terminal ids; slot [count] is EOF *)
  mutable starts : int array;   (** byte offset of each token's first char *)
  mutable stops : int array;    (** byte offset one past each token's last char *)
  mutable count : int;          (** number of real tokens, excluding EOF *)
  mutable newlines : int array; (** offsets of every ['\n'], ascending *)
  mutable nl_count : int;
}
(** A scanned token stream as parallel integer arrays. Only the first
    [count + 1] slots of [kind_ids]/[starts]/[stops] (and [nl_count] slots of
    [newlines]) are meaningful; the arrays are capacity-managed buffers. *)

val scan_soa : t -> string -> (soa, error) result
(** Tokenize the whole input into this domain's reusable SoA arena. Zero
    per-token allocation: the returned buffers are owned by the arena and are
    {b invalidated by the next [scan_soa] call on the same domain} — consume
    or materialize before rescanning. *)

val soa_count : soa -> int
(** Number of real tokens (the EOF sentinel at index [count] excluded). *)

val token_of_soa : t -> soa -> int -> Token.t
(** Materialize token [i] (valid for [0..count], where [count] is the EOF
    token): kind name from the interner, text via [String.sub] — with
    doubled-quote unescaping for string/quoted-identifier literals — and
    line/column recovered by binary search of the newline index. *)

val tokens_of_soa : t -> soa -> Token.t array
(** Materialize the whole stream (EOF token included, as the last element),
    walking the newline index sequentially. *)

val scan_tokens : t -> string -> (Token.t array, error) result
(** Tokenize the whole input in one pass. On success the array always ends
    with the [EOF] token, so the statement's token count is
    [Array.length tokens - 1]. Equivalent to {!scan_soa} followed by
    {!tokens_of_soa}. *)

(** {1 Pull cursor}

    A cursor scans the input incrementally, producing the next token's kind
    id on demand so a parser can drive the scanner directly (the fused
    execution mode of [Parser_gen.Vm]) instead of paying a separate up-front
    tokenization pass. Every token pulled is appended to the same per-domain
    SoA arena {!scan_soa} fills, so token indices are absolute,
    {!cursor_seek} may return to any index already produced (memoized
    fallback, VM backtracking), and {!cursor_complete} yields exactly the
    [soa] a whole-buffer scan would have built. Creating a cursor
    {b invalidates the previous [soa]/cursor of the same domain}, and the
    pull operations raise {!Lex_error} when they hit a lexical error. *)

type cursor

val cursor : t -> string -> cursor
(** Start scanning [input] from its first byte. Zero per-token allocation:
    one cursor record per call, then only arena writes. *)

val cursor_kind : cursor -> int
(** Kind id of the token at the cursor's position, scanning it on demand;
    [Interner.eof_id] at end of input. Raises {!Lex_error}. *)

val cursor_kind2 : cursor -> int
(** Kind id of the token {e after} the cursor's position (LL(2) lookahead);
    [Interner.eof_id] past end of input. Raises {!Lex_error}. *)

val cursor_pos : cursor -> int
(** The cursor's current token index. *)

val cursor_advance : cursor -> unit
(** Move to the next token index (no scanning happens until the next pull). *)

val cursor_seek : cursor -> int -> unit
(** Reposition to token index [i]. Valid for any index at or below the
    highest token scanned so far (all pulled tokens stay in the arena). *)

val cursor_count : cursor -> int
(** Number of tokens scanned so far. *)

val cursor_token_at : cursor -> int -> Token.t
(** Materialize an already-scanned token (a CST leaf or an error edge). *)

val cursor_complete : cursor -> soa
(** Finish scanning to end of input and return the completed stream —
    identical to what {!scan_soa} on the whole input would have produced.
    Raises {!Lex_error} if the unscanned tail has a lexical error. *)

val keyword_count : t -> int
val punct_count : t -> int
(** Size measures of the generated scanner, used by the tailoring
    experiments. *)
