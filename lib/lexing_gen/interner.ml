type t = {
  names : string array;
  ids : (string, int) Hashtbl.t;
}

let eof_name = "EOF"
let eof_id = 0

let build names =
  let ids = Hashtbl.create (2 * (List.length names + 1)) in
  let rev = ref [] in
  let count = ref 0 in
  let add n =
    if not (Hashtbl.mem ids n) then begin
      Hashtbl.add ids n !count;
      rev := n :: !rev;
      incr count
    end
  in
  add eof_name;
  List.iter add names;
  { names = Array.of_list (List.rev !rev); ids }

let of_names names = build names

let id_opt t name = Hashtbl.find_opt t.ids name
let mem t name = Hashtbl.mem t.ids name

let stamp_of t ~kind id =
  if
    id >= 0
    && id < Array.length t.names
    && (t.names.(id) == kind || String.equal t.names.(id) kind)
  then id
  else match Hashtbl.find_opt t.ids kind with Some i -> i | None -> -1

let extend t names =
  if List.for_all (mem t) names then t
  else build (Array.to_list t.names @ names)

let name t id =
  if id < 0 || id >= Array.length t.names then
    invalid_arg (Printf.sprintf "Interner.name: id %d out of range" id)
  else t.names.(id)

let size t = Array.length t.names
