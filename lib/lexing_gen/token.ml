type position = {
  line : int;
  column : int;
  offset : int;
}

type t = {
  kind : string;
  kind_id : int;
  text : string;
  pos : position;
}

let eof_kind = "EOF"
let eof_id = Interner.eof_id
let no_id = -1
let eof pos = { kind = eof_kind; kind_id = eof_id; text = ""; pos }

let pp_position ppf p = Fmt.pf ppf "%d:%d" p.line p.column

let pp ppf t =
  if String.equal t.kind t.text || t.text = "" then Fmt.pf ppf "%s" t.kind
  else Fmt.pf ppf "%s(%s)" t.kind t.text
