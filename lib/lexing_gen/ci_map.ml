(* Open-addressing hash table keyed by ASCII-case-insensitive strings,
   probed directly against a substring of the scanner's input. The point is
   the probe: [find_sub t input i j] hashes and compares [input[i..j)]
   in place, so the scanner's identifier hot loop allocates neither the
   [String.sub] nor the [String.lowercase_ascii] copy the previous
   [Hashtbl] probe needed. *)

type 'a t = {
  mask : int;                 (* capacity - 1, capacity a power of two *)
  keys : string array;        (* lowercased keys; "" marks an empty slot *)
  values : 'a array;
  count : int;
}

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

(* FNV-1a over case-folded bytes. *)
let fnv_prime = 0x01000193
let fnv_seed = 0x811c9dc5

(* The probing helpers take every variable as an argument: closure-free, so
   a keyword probe in the scanner's hot loop allocates nothing at all. *)
let rec hash_fold s k j h =
  if k = j then h land max_int
  else
    hash_fold s (k + 1) j
      ((h lxor Char.code (lower (String.unsafe_get s k))) * fnv_prime)

let hash_sub s i j = hash_fold s i j fnv_seed

let rec equal_from key s i j k =
  k = j - i
  || lower (String.unsafe_get s (i + k)) = String.unsafe_get key k
     && equal_from key s i j (k + 1)

let equal_sub key s i j = String.length key = j - i && equal_from key s i j 0

let rec next_pow2 n c = if c >= n then c else next_pow2 n (2 * c)

let of_list bindings =
  match bindings with
  | [] -> { mask = 7; keys = Array.make 8 ""; values = [||]; count = 0 }
  | (_, filler) :: _ ->
      (* Load factor <= 0.5 keeps probe chains short. *)
      let cap = next_pow2 (max 8 (2 * List.length bindings)) 8 in
      let mask = cap - 1 in
      let keys = Array.make cap "" in
      (* Slots whose key stays "" are never read by [find_sub]. *)
      let values = Array.make cap filler in
      List.iter
        (fun (key, v) ->
          let key = String.lowercase_ascii key in
          if key = "" then invalid_arg "Ci_map.of_list: empty key";
          let rec place slot =
            if keys.(slot) = "" || String.equal keys.(slot) key then begin
              keys.(slot) <- key;
              values.(slot) <- v (* last binding wins, as Hashtbl.replace *)
            end
            else place ((slot + 1) land mask)
          in
          place (hash_sub key 0 (String.length key) land mask))
        bindings;
      let count =
        Array.fold_left (fun n k -> if k = "" then n else n + 1) 0 keys
      in
      { mask; keys; values; count }

let rec probe_idx keys mask s i j slot =
  let key = Array.unsafe_get keys slot in
  if key = "" then -1
  else if equal_sub key s i j then slot
  else probe_idx keys mask s i j ((slot + 1) land mask)

let find_idx t s i j = probe_idx t.keys t.mask s i j (hash_sub s i j land t.mask)
let value t slot = Array.unsafe_get t.values slot

let find_sub t s i j =
  match find_idx t s i j with -1 -> None | slot -> Some (value t slot)

let find t s = find_sub t s 0 (String.length s)
let length t = t.count
