type kinded = {
  k_name : string;
  k_id : int;
}

type t = {
  interner : Interner.t;
  keywords : (string, kinded) Hashtbl.t; (* lowercase spelling -> kind *)
  keyword_count : int;
  (* Punct dispatch: literals bucketed by first character, longest first
     within a bucket, so matching probes only literals that can start here
     instead of scanning the whole punct list. *)
  puncts : (string * kinded) list array; (* 256 buckets *)
  punct_count : int;
  ident_kind : kinded option;
  integer_kind : kinded option;
  decimal_kind : kinded option;
  string_kind : kinded option;
  quoted_ident_kind : kinded option;
}

let create ?interner set =
  let interner =
    match interner with
    | Some i ->
      List.iter
        (fun (name, _) ->
          if not (Interner.mem i name) then
            invalid_arg
              (Printf.sprintf
                 "Scanner.create: terminal %S is not covered by the supplied \
                  interner"
                 name))
        set;
      i
    | None -> Interner.of_names (List.map fst set)
  in
  let kinded name =
    match Interner.id_opt interner name with
    | Some k_id -> { k_name = name; k_id }
    | None -> assert false (* covered above / by construction *)
  in
  let kws = Spec.keywords set in
  let keywords = Hashtbl.create (2 * List.length kws + 1) in
  List.iter
    (fun (spelling, name) -> Hashtbl.replace keywords spelling (kinded name))
    kws;
  let punct_list = Spec.puncts set in
  let puncts = Array.make 256 [] in
  (* Reversed insertion keeps each bucket in [Spec.puncts] order, which is
     longest-literal first — the order longest-match needs. *)
  List.iter
    (fun (literal, name) ->
      let c = Char.code literal.[0] in
      puncts.(c) <- (literal, kinded name) :: puncts.(c))
    (List.rev punct_list);
  let class_kind cls = Option.map kinded (List.assoc_opt cls (Spec.classes set)) in
  {
    interner;
    keywords;
    keyword_count = Hashtbl.length keywords;
    puncts;
    punct_count = List.length punct_list;
    ident_kind = class_kind Spec.Identifier;
    integer_kind = class_kind Spec.Unsigned_integer;
    decimal_kind = class_kind Spec.Decimal_number;
    string_kind = class_kind Spec.String_literal;
    quoted_ident_kind = class_kind Spec.Quoted_identifier;
  }

let interner t = t.interner
let keyword_count t = t.keyword_count
let punct_count t = t.punct_count

type error = {
  pos : Token.position;
  message : string;
}

let pp_error ppf e =
  Fmt.pf ppf "lexical error at %a: %s" Token.pp_position e.pos e.message

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

exception Lex_error of error

let scan_tokens t input =
  let n = String.length input in
  let line = ref 1 and bol = ref 0 in
  let position offset =
    { Token.line = !line; column = offset - !bol + 1; offset }
  in
  let fail offset message = raise (Lex_error { pos = position offset; message }) in
  let newline offset =
    incr line;
    bol := offset + 1
  in
  (* Growable token buffer: tokens are produced (and later consumed) as an
     array, so the stream is walked exactly once. *)
  let dummy = Token.eof { Token.line = 0; column = 0; offset = 0 } in
  let buf = ref (Array.make 64 dummy) in
  let len = ref 0 in
  let push tok =
    let cap = Array.length !buf in
    if !len = cap then begin
      let bigger = Array.make (2 * cap) dummy in
      Array.blit !buf 0 bigger 0 cap;
      buf := bigger
    end;
    !buf.(!len) <- tok;
    incr len
  in
  let emit (k : kinded) text offset =
    push { Token.kind = k.k_name; kind_id = k.k_id; text; pos = position offset }
  in
  let rec skip_block_comment i start =
    if i + 1 >= n then fail start "unterminated block comment"
    else if input.[i] = '*' && input.[i + 1] = '/' then i + 2
    else begin
      if input.[i] = '\n' then newline i;
      skip_block_comment (i + 1) start
    end
  in
  let scan_ident i =
    let j = ref i in
    while !j < n && is_ident_char input.[!j] do incr j done;
    let text = String.sub input i (!j - i) in
    (match Hashtbl.find_opt t.keywords (String.lowercase_ascii text) with
     | Some k -> emit k text i
     | None -> (
       match t.ident_kind with
       | Some k -> emit k text i
       | None -> fail i (Printf.sprintf "unexpected word %S (identifiers not enabled)" text)));
    !j
  in
  let scan_number i =
    let j = ref i in
    while !j < n && is_digit input.[!j] do incr j done;
    let decimal = ref false in
    if !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] then begin
      decimal := true;
      incr j;
      while !j < n && is_digit input.[!j] do incr j done
    end;
    if
      !j < n
      && (input.[!j] = 'e' || input.[!j] = 'E')
      && (!j + 1 < n && (is_digit input.[!j + 1]
                        || ((input.[!j + 1] = '+' || input.[!j + 1] = '-')
                           && !j + 2 < n && is_digit input.[!j + 2])))
    then begin
      decimal := true;
      incr j;
      if input.[!j] = '+' || input.[!j] = '-' then incr j;
      while !j < n && is_digit input.[!j] do incr j done
    end;
    let text = String.sub input i (!j - i) in
    (match !decimal, t.decimal_kind, t.integer_kind with
     | true, Some k, _ -> emit k text i
     | true, None, _ -> fail i "decimal literals not enabled"
     | false, _, Some k -> emit k text i
     | false, Some k, None -> emit k text i
     | false, None, None -> fail i "numeric literals not enabled");
    !j
  in
  let scan_quoted i ~quote ~kind_opt ~what =
    match kind_opt with
    | None -> fail i (what ^ " not enabled")
    | Some k ->
      let buf = Buffer.create 16 in
      let rec go j =
        if j >= n then fail i ("unterminated " ^ what)
        else if input.[j] = quote then
          if j + 1 < n && input.[j + 1] = quote then begin
            Buffer.add_char buf quote;
            go (j + 2)
          end
          else begin
            emit k (Buffer.contents buf) i;
            j + 1
          end
        else begin
          if input.[j] = '\n' then newline j;
          Buffer.add_char buf input.[j];
          go (j + 1)
        end
      in
      go (i + 1)
  in
  (* Literal match at [i] without allocating a substring. *)
  let literal_at literal i =
    let len = String.length literal in
    i + len <= n
    &&
    let rec go k = k >= len || (input.[i + k] = literal.[k] && go (k + 1)) in
    go 0
  in
  let scan_punct i =
    let rec probe = function
      | [] -> fail i (Printf.sprintf "unexpected character %C" input.[i])
      | (literal, k) :: rest ->
        if literal_at literal i then begin
          emit k literal i;
          i + String.length literal
        end
        else probe rest
    in
    probe t.puncts.(Char.code input.[i])
  in
  let rec loop i =
    if i >= n then ()
    else
      let c = input.[i] in
      if c = '\n' then begin
        newline i;
        loop (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then loop (i + 1)
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then begin
        let j = ref (i + 2) in
        while !j < n && input.[!j] <> '\n' do incr j done;
        loop !j
      end
      else if c = '/' && i + 1 < n && input.[i + 1] = '*' then
        loop (skip_block_comment (i + 2) i)
      else if is_ident_start c then loop (scan_ident i)
      else if is_digit c then loop (scan_number i)
      else if c = '.' && i + 1 < n && is_digit input.[i + 1] then
        (* Leading-dot decimals: [.5]. *)
        loop (scan_number i)
      else if c = '\'' then
        loop (scan_quoted i ~quote:'\'' ~kind_opt:t.string_kind ~what:"string literal")
      else if c = '"' then
        loop
          (scan_quoted i ~quote:'"' ~kind_opt:t.quoted_ident_kind
             ~what:"quoted identifier")
      else loop (scan_punct i)
  in
  match loop 0 with
  | () ->
    push (Token.eof (position n));
    Ok (Array.sub !buf 0 !len)
  | exception Lex_error e -> Error e

let scan t input = Result.map Array.to_list (scan_tokens t input)
