type kinded = {
  k_name : string;
  k_id : int;
}

type t = {
  interner : Interner.t;
  keywords : kinded Ci_map.t; (* case-insensitive, probed on input substrings *)
  (* Punct dispatch: literals bucketed by first character, longest first
     within a bucket, so matching probes only literals that can start here
     instead of scanning the whole punct list. *)
  puncts : (string * kinded) list array; (* 256 buckets *)
  punct_count : int;
  ident_kind : kinded option;
  integer_kind : kinded option;
  decimal_kind : kinded option;
  string_kind : kinded option;
  quoted_ident_kind : kinded option;
}

let create ?interner set =
  let interner =
    match interner with
    | Some i ->
      List.iter
        (fun (name, _) ->
          if not (Interner.mem i name) then
            invalid_arg
              (Printf.sprintf
                 "Scanner.create: terminal %S is not covered by the supplied \
                  interner"
                 name))
        set;
      i
    | None -> Interner.of_names (List.map fst set)
  in
  let kinded name =
    match Interner.id_opt interner name with
    | Some k_id -> { k_name = name; k_id }
    | None -> assert false (* covered above / by construction *)
  in
  let keywords =
    Ci_map.of_list
      (List.map (fun (spelling, name) -> (spelling, kinded name)) (Spec.keywords set))
  in
  let punct_list = Spec.puncts set in
  let puncts = Array.make 256 [] in
  (* Reversed insertion keeps each bucket in [Spec.puncts] order, which is
     longest-literal first — the order longest-match needs. *)
  List.iter
    (fun (literal, name) ->
      let c = Char.code literal.[0] in
      puncts.(c) <- (literal, kinded name) :: puncts.(c))
    (List.rev punct_list);
  let class_kind cls = Option.map kinded (List.assoc_opt cls (Spec.classes set)) in
  {
    interner;
    keywords;
    puncts;
    punct_count = List.length punct_list;
    ident_kind = class_kind Spec.Identifier;
    integer_kind = class_kind Spec.Unsigned_integer;
    decimal_kind = class_kind Spec.Decimal_number;
    string_kind = class_kind Spec.String_literal;
    quoted_ident_kind = class_kind Spec.Quoted_identifier;
  }

let interner t = t.interner
let keyword_count t = Ci_map.length t.keywords
let punct_count t = t.punct_count

type error = {
  pos : Token.position;
  message : string;
}

let pp_error ppf e =
  Fmt.pf ppf "lexical error at %a: %s" Token.pp_position e.pos e.message

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

exception Lex_error of error

(* Struct-of-arrays token stream. One scan fills three parallel int arrays
   (kind id, start offset, stop offset) plus a newline-offset index; no
   [Token.t] record, no [text] string, no position arithmetic happens until a
   token is actually materialized (at a CST leaf or an error edge). The
   arrays live in a per-domain arena (below) and are reused scan after scan,
   so the accept path performs zero per-token allocation. *)
type soa = {
  mutable src : string;
  mutable kind_ids : int array; (* slot [count] holds the EOF sentinel *)
  mutable starts : int array;
  mutable stops : int array;
  mutable count : int;          (* number of real tokens, excluding EOF *)
  mutable newlines : int array; (* offsets of every '\n', ascending *)
  mutable nl_count : int;
}

let soa_count soa = soa.count

let fresh_soa () =
  {
    src = "";
    kind_ids = Array.make 64 0;
    starts = Array.make 64 0;
    stops = Array.make 64 0;
    count = 0;
    newlines = Array.make 16 0;
    nl_count = 0;
  }

(* Arena: the SoA buffers plus the scratch buffer shared by every
   string-literal materialization on this domain (one [Buffer] total instead
   of a [Buffer.create 16] per literal). Reused across scans; a scan
   invalidates the previous [soa] of the same domain. *)
let arena : (soa * Buffer.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (fresh_soa (), Buffer.create 64))

(* --- the scanning core, one token at a time -----------------------------

   Every helper below is a toplevel function taking its context explicitly
   ([t], the destination [soa], the [input] string and its length [n]) so
   that the per-token path builds no closures. Both the whole-buffer
   [scan_soa] and the pull [cursor] drive the same [scan_step], which scans
   exactly one token per call — token boundaries and error reports cannot
   drift between the two modes. *)

(* Error positions mirror the historical scanner exactly: the line/bol
   counters as of the failure point, even when the reported offset lies
   before newlines already consumed (e.g. an unterminated block comment
   reports the comment's start offset with the line count of its end). *)
let lex_fail soa offset message =
  let bol =
    if soa.nl_count = 0 then 0 else soa.newlines.(soa.nl_count - 1) + 1
  in
  let pos =
    { Token.line = soa.nl_count + 1; column = offset - bol + 1; offset }
  in
  raise (Lex_error { pos; message })

let record_newline soa offset =
  let cap = Array.length soa.newlines in
  if soa.nl_count = cap then begin
    let bigger = Array.make (2 * cap) 0 in
    Array.blit soa.newlines 0 bigger 0 cap;
    soa.newlines <- bigger
  end;
  soa.newlines.(soa.nl_count) <- offset;
  soa.nl_count <- soa.nl_count + 1

let emit soa (k : kinded) start stop =
  let cap = Array.length soa.kind_ids in
  (* Keep one slot of headroom for the EOF sentinel. *)
  if soa.count + 1 >= cap then begin
    let grow a =
      let bigger = Array.make (2 * cap) 0 in
      Array.blit a 0 bigger 0 cap;
      bigger
    in
    soa.kind_ids <- grow soa.kind_ids;
    soa.starts <- grow soa.starts;
    soa.stops <- grow soa.stops
  end;
  soa.kind_ids.(soa.count) <- k.k_id;
  soa.starts.(soa.count) <- start;
  soa.stops.(soa.count) <- stop;
  soa.count <- soa.count + 1

let rec skip_block_comment soa input n i start =
  if i + 1 >= n then lex_fail soa start "unterminated block comment"
  else if input.[i] = '*' && input.[i + 1] = '/' then i + 2
  else begin
    if input.[i] = '\n' then record_newline soa i;
    skip_block_comment soa input n (i + 1) start
  end

(* Hot paths below avoid per-token allocation: extents are found by
   tail-recursive scans over argument ints (no refs, no options, no
   closures), and keyword probes go through the index-returning
   [Ci_map.find_idx]. *)
let rec ident_end input n j =
  if j < n && is_ident_char (String.unsafe_get input j) then
    ident_end input n (j + 1)
  else j

let scan_ident t soa input n i =
  let j = ident_end input n (i + 1) in
  (match Ci_map.find_idx t.keywords input i j with
   | -1 -> (
     match t.ident_kind with
     | Some k -> emit soa k i j
     | None ->
       lex_fail soa i
         (Printf.sprintf "unexpected word %S (identifiers not enabled)"
            (String.sub input i (j - i))))
   | slot -> emit soa (Ci_map.value t.keywords slot) i j);
  j

let scan_number t soa input n i =
  let j = ref i in
  while !j < n && is_digit input.[!j] do incr j done;
  let decimal = ref false in
  if !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] then begin
    decimal := true;
    incr j;
    while !j < n && is_digit input.[!j] do incr j done
  end;
  if
    !j < n
    && (input.[!j] = 'e' || input.[!j] = 'E')
    && (!j + 1 < n && (is_digit input.[!j + 1]
                      || ((input.[!j + 1] = '+' || input.[!j + 1] = '-')
                         && !j + 2 < n && is_digit input.[!j + 2])))
  then begin
    decimal := true;
    incr j;
    if input.[!j] = '+' || input.[!j] = '-' then incr j;
    while !j < n && is_digit input.[!j] do incr j done
  end;
  (match !decimal, t.decimal_kind, t.integer_kind with
   | true, Some k, _ -> emit soa k i !j
   | true, None, _ -> lex_fail soa i "decimal literals not enabled"
   | false, _, Some k -> emit soa k i !j
   | false, Some k, None -> emit soa k i !j
   | false, None, None -> lex_fail soa i "numeric literals not enabled");
  !j

let rec quoted_end soa input n quote what i j =
  if j >= n then lex_fail soa i ("unterminated " ^ what)
  else if String.unsafe_get input j = quote then
    if j + 1 < n && input.[j + 1] = quote then
      quoted_end soa input n quote what i (j + 2)
    else j + 1
  else begin
    if String.unsafe_get input j = '\n' then record_newline soa j;
    quoted_end soa input n quote what i (j + 1)
  end

let scan_quoted soa input n i ~quote ~kind_opt ~what =
  match kind_opt with
  | None -> lex_fail soa i (what ^ " not enabled")
  | Some k ->
    let j = quoted_end soa input n quote what i (i + 1) in
    emit soa k i j;
    j

(* Literal match at [i] without allocating a substring. *)
let rec literal_from input literal len i k =
  k >= len
  || (input.[i + k] = literal.[k] && literal_from input literal len i (k + 1))

let literal_at input n literal i =
  let len = String.length literal in
  i + len <= n && literal_from input literal len i 0

let rec punct_probe soa input n i = function
  | [] -> lex_fail soa i (Printf.sprintf "unexpected character %C" input.[i])
  | (literal, (k : kinded)) :: rest ->
    if literal_at input n literal i then begin
      emit soa k i (i + String.length literal);
      i + String.length literal
    end
    else punct_probe soa input n i rest

let scan_punct t soa input n i =
  punct_probe soa input n i t.puncts.(Char.code input.[i])

let rec line_comment_end input n j =
  if j < n && input.[j] <> '\n' then line_comment_end input n (j + 1) else j

(* Skip whitespace/comments from byte [i], then scan exactly one token into
   [soa]. Returns the byte offset just past the token, or [-1] when the
   input ends without another token. Raises {!Lex_error} on bad input. *)
let rec scan_step t soa input n i =
  if i >= n then -1
  else
    let c = String.unsafe_get input i in
    if c = '\n' then begin
      record_newline soa i;
      scan_step t soa input n (i + 1)
    end
    else if c = ' ' || c = '\t' || c = '\r' then scan_step t soa input n (i + 1)
    else if c = '-' && i + 1 < n && input.[i + 1] = '-' then
      scan_step t soa input n (line_comment_end input n (i + 2))
    else if c = '/' && i + 1 < n && input.[i + 1] = '*' then
      scan_step t soa input n (skip_block_comment soa input n (i + 2) i)
    else if is_ident_start c then scan_ident t soa input n i
    else if is_digit c then scan_number t soa input n i
    else if c = '.' && i + 1 < n && is_digit input.[i + 1] then
      (* Leading-dot decimals: [.5]. *)
      scan_number t soa input n i
    else if c = '\'' then
      scan_quoted soa input n i ~quote:'\'' ~kind_opt:t.string_kind
        ~what:"string literal"
    else if c = '"' then
      scan_quoted soa input n i ~quote:'"' ~kind_opt:t.quoted_ident_kind
        ~what:"quoted identifier"
    else scan_punct t soa input n i

let reset_soa soa input =
  soa.src <- input;
  soa.count <- 0;
  soa.nl_count <- 0

(* [emit] keeps one slot of headroom, so the sentinel store never grows. *)
let seal_soa soa n =
  soa.kind_ids.(soa.count) <- Interner.eof_id;
  soa.starts.(soa.count) <- n;
  soa.stops.(soa.count) <- n

let scan_soa t input =
  let soa, _scratch = Domain.DLS.get arena in
  let n = String.length input in
  reset_soa soa input;
  let rec go i =
    let j = scan_step t soa input n i in
    if j >= 0 then go j
  in
  match go 0 with
  | () ->
    seal_soa soa n;
    Ok soa
  | exception Lex_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Pull cursor                                                        *)
(* ------------------------------------------------------------------ *)

(* A cursor scans the same arena [soa] incrementally: every token the parser
   pulls is appended to the shared arrays, so token indices are absolute,
   [cursor_seek] may return to any index already produced (what memoized
   fallback and VM backtracking need), and finishing the scan yields exactly
   the [soa] a whole-buffer scan would have built. The fused win is skipping
   the separate up-front pass, not the arena writes. *)
type cursor = {
  cur_t : t;
  cur_src : string;
  cur_len : int;
  cur_soa : soa;
  mutable cur_byte : int;  (* byte offset [scan_step] resumes at *)
  mutable cur_pos : int;   (* the cursor's current token index *)
  mutable cur_done : bool; (* the EOF sentinel has been written *)
}

let cursor t input =
  let soa, _scratch = Domain.DLS.get arena in
  reset_soa soa input;
  {
    cur_t = t;
    cur_src = input;
    cur_len = String.length input;
    cur_soa = soa;
    cur_byte = 0;
    cur_pos = 0;
    cur_done = false;
  }

(* Scan one more token into the arena, or seal the stream at end of input. *)
let pump c =
  let j = scan_step c.cur_t c.cur_soa c.cur_src c.cur_len c.cur_byte in
  if j < 0 then begin
    seal_soa c.cur_soa c.cur_len;
    c.cur_done <- true
  end
  else c.cur_byte <- j

let rec ensure c target =
  if c.cur_soa.count < target && not c.cur_done then begin
    pump c;
    ensure c target
  end

let cursor_pos c = c.cur_pos
let cursor_advance c = c.cur_pos <- c.cur_pos + 1
let cursor_seek c i = c.cur_pos <- i
let cursor_count c = c.cur_soa.count

let cursor_kind c =
  ensure c (c.cur_pos + 1);
  let soa = c.cur_soa in
  if c.cur_pos < soa.count then Array.unsafe_get soa.kind_ids c.cur_pos
  else Interner.eof_id

let cursor_kind2 c =
  ensure c (c.cur_pos + 2);
  let soa = c.cur_soa in
  if c.cur_pos + 1 < soa.count then
    Array.unsafe_get soa.kind_ids (c.cur_pos + 1)
  else Interner.eof_id

let rec cursor_complete c =
  if c.cur_done then c.cur_soa
  else begin
    pump c;
    cursor_complete c
  end

(* ------------------------------------------------------------------ *)
(* On-demand materialization                                          *)
(* ------------------------------------------------------------------ *)

(* Number of '\n' offsets strictly below [off]. *)
let newlines_before soa off =
  let lo = ref 0 and hi = ref soa.nl_count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if soa.newlines.(mid) < off then lo := mid + 1 else hi := mid
  done;
  !lo

let position_at soa off =
  let k = newlines_before soa off in
  let bol = if k = 0 then 0 else soa.newlines.(k - 1) + 1 in
  { Token.line = k + 1; column = off - bol + 1; offset = off }

(* Quoted-literal text: the bytes between the delimiters, with doubled
   delimiters collapsed — exactly what the scanner used to build eagerly.
   Allocation-free scan when the literal contains no doubled quote; a shared
   scratch buffer otherwise. *)
let quoted_text ~scratch src start stop ~quote =
  let lo = start + 1 and hi = stop - 1 in
  let rec has_doubled j =
    j < hi && (String.unsafe_get src j = quote || has_doubled (j + 1))
  in
  if not (has_doubled lo) then String.sub src lo (hi - lo)
  else begin
    Buffer.clear scratch;
    let rec go j =
      if j < hi then
        if src.[j] = quote then begin
          (* A quote char inside the literal body is always doubled. *)
          Buffer.add_char scratch quote;
          go (j + 2)
        end
        else begin
          Buffer.add_char scratch src.[j];
          go (j + 1)
        end
    in
    go lo;
    Buffer.contents scratch
  end

let text_at ?scratch t soa i =
  if i >= soa.count then "" (* EOF *)
  else
    let start = soa.starts.(i) and stop = soa.stops.(i) in
    let quoted quote =
      let scratch =
        match scratch with Some b -> b | None -> snd (Domain.DLS.get arena)
      in
      quoted_text ~scratch soa.src start stop ~quote
    in
    match t.string_kind, t.quoted_ident_kind with
    | Some k, _ when k.k_id = soa.kind_ids.(i) -> quoted '\''
    | _, Some k when k.k_id = soa.kind_ids.(i) -> quoted '"'
    | _ -> String.sub soa.src start (stop - start)

let token_of_soa t soa i =
  if i >= soa.count then Token.eof (position_at soa soa.starts.(soa.count))
  else
    {
      Token.kind = Interner.name t.interner soa.kind_ids.(i);
      kind_id = soa.kind_ids.(i);
      text = text_at t soa i;
      pos = position_at soa soa.starts.(i);
    }

let cursor_token_at c i = token_of_soa c.cur_t c.cur_soa i

let tokens_of_soa t soa =
  let _soa0, scratch = Domain.DLS.get arena in
  (* Sequential materialization: walk the newline index with a cursor instead
     of binary-searching per token. *)
  let k = ref 0 in
  Array.init (soa.count + 1) (fun i ->
      let start = soa.starts.(i) in
      while !k < soa.nl_count && soa.newlines.(!k) < start do incr k done;
      let bol = if !k = 0 then 0 else soa.newlines.(!k - 1) + 1 in
      let pos = { Token.line = !k + 1; column = start - bol + 1; offset = start } in
      if i = soa.count then Token.eof pos
      else
        {
          Token.kind = Interner.name t.interner soa.kind_ids.(i);
          kind_id = soa.kind_ids.(i);
          text = text_at ~scratch t soa i;
          pos;
        })

let scan_tokens t input =
  Result.map (fun soa -> tokens_of_soa t soa) (scan_soa t input)
