type kinded = {
  k_name : string;
  k_id : int;
}

type t = {
  interner : Interner.t;
  keywords : kinded Ci_map.t; (* case-insensitive, probed on input substrings *)
  (* Punct dispatch: literals bucketed by first character, longest first
     within a bucket, so matching probes only literals that can start here
     instead of scanning the whole punct list. *)
  puncts : (string * kinded) list array; (* 256 buckets *)
  punct_count : int;
  ident_kind : kinded option;
  integer_kind : kinded option;
  decimal_kind : kinded option;
  string_kind : kinded option;
  quoted_ident_kind : kinded option;
}

let create ?interner set =
  let interner =
    match interner with
    | Some i ->
      List.iter
        (fun (name, _) ->
          if not (Interner.mem i name) then
            invalid_arg
              (Printf.sprintf
                 "Scanner.create: terminal %S is not covered by the supplied \
                  interner"
                 name))
        set;
      i
    | None -> Interner.of_names (List.map fst set)
  in
  let kinded name =
    match Interner.id_opt interner name with
    | Some k_id -> { k_name = name; k_id }
    | None -> assert false (* covered above / by construction *)
  in
  let keywords =
    Ci_map.of_list
      (List.map (fun (spelling, name) -> (spelling, kinded name)) (Spec.keywords set))
  in
  let punct_list = Spec.puncts set in
  let puncts = Array.make 256 [] in
  (* Reversed insertion keeps each bucket in [Spec.puncts] order, which is
     longest-literal first — the order longest-match needs. *)
  List.iter
    (fun (literal, name) ->
      let c = Char.code literal.[0] in
      puncts.(c) <- (literal, kinded name) :: puncts.(c))
    (List.rev punct_list);
  let class_kind cls = Option.map kinded (List.assoc_opt cls (Spec.classes set)) in
  {
    interner;
    keywords;
    puncts;
    punct_count = List.length punct_list;
    ident_kind = class_kind Spec.Identifier;
    integer_kind = class_kind Spec.Unsigned_integer;
    decimal_kind = class_kind Spec.Decimal_number;
    string_kind = class_kind Spec.String_literal;
    quoted_ident_kind = class_kind Spec.Quoted_identifier;
  }

let interner t = t.interner
let keyword_count t = Ci_map.length t.keywords
let punct_count t = t.punct_count

type error = {
  pos : Token.position;
  message : string;
}

let pp_error ppf e =
  Fmt.pf ppf "lexical error at %a: %s" Token.pp_position e.pos e.message

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

exception Lex_error of error

(* Struct-of-arrays token stream. One scan fills three parallel int arrays
   (kind id, start offset, stop offset) plus a newline-offset index; no
   [Token.t] record, no [text] string, no position arithmetic happens until a
   token is actually materialized (at a CST leaf or an error edge). The
   arrays live in a per-domain arena (below) and are reused scan after scan,
   so the accept path performs zero per-token allocation. *)
type soa = {
  mutable src : string;
  mutable kind_ids : int array; (* slot [count] holds the EOF sentinel *)
  mutable starts : int array;
  mutable stops : int array;
  mutable count : int;          (* number of real tokens, excluding EOF *)
  mutable newlines : int array; (* offsets of every '\n', ascending *)
  mutable nl_count : int;
}

let soa_count soa = soa.count

let fresh_soa () =
  {
    src = "";
    kind_ids = Array.make 64 0;
    starts = Array.make 64 0;
    stops = Array.make 64 0;
    count = 0;
    newlines = Array.make 16 0;
    nl_count = 0;
  }

(* Arena: the SoA buffers plus the scratch buffer shared by every
   string-literal materialization on this domain (one [Buffer] total instead
   of a [Buffer.create 16] per literal). Reused across scans; a scan
   invalidates the previous [soa] of the same domain. *)
let arena : (soa * Buffer.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (fresh_soa (), Buffer.create 64))

let scan_soa t input =
  let soa, _scratch = Domain.DLS.get arena in
  let n = String.length input in
  soa.src <- input;
  soa.count <- 0;
  soa.nl_count <- 0;
  (* Error positions mirror the historical scanner exactly: the line/bol
     counters as of the failure point, even when the reported offset lies
     before newlines already consumed (e.g. an unterminated block comment
     reports the comment's start offset with the line count of its end). *)
  let fail offset message =
    let bol =
      if soa.nl_count = 0 then 0 else soa.newlines.(soa.nl_count - 1) + 1
    in
    let pos =
      { Token.line = soa.nl_count + 1; column = offset - bol + 1; offset }
    in
    raise (Lex_error { pos; message })
  in
  let newline offset =
    let cap = Array.length soa.newlines in
    if soa.nl_count = cap then begin
      let bigger = Array.make (2 * cap) 0 in
      Array.blit soa.newlines 0 bigger 0 cap;
      soa.newlines <- bigger
    end;
    soa.newlines.(soa.nl_count) <- offset;
    soa.nl_count <- soa.nl_count + 1
  in
  let emit (k : kinded) start stop =
    let cap = Array.length soa.kind_ids in
    (* Keep one slot of headroom for the EOF sentinel. *)
    if soa.count + 1 >= cap then begin
      let grow a =
        let bigger = Array.make (2 * cap) 0 in
        Array.blit a 0 bigger 0 cap;
        bigger
      in
      soa.kind_ids <- grow soa.kind_ids;
      soa.starts <- grow soa.starts;
      soa.stops <- grow soa.stops
    end;
    soa.kind_ids.(soa.count) <- k.k_id;
    soa.starts.(soa.count) <- start;
    soa.stops.(soa.count) <- stop;
    soa.count <- soa.count + 1
  in
  let rec skip_block_comment i start =
    if i + 1 >= n then fail start "unterminated block comment"
    else if input.[i] = '*' && input.[i + 1] = '/' then i + 2
    else begin
      if input.[i] = '\n' then newline i;
      skip_block_comment (i + 1) start
    end
  in
  (* Hot paths below avoid per-token allocation: extents are found by
     tail-recursive scans over argument ints (no refs), keyword probes go
     through the index-returning [Ci_map.find_idx] (no option), and the
     probing loops live at this level so their closures are built once per
     scan, not once per token. *)
  let rec ident_end j =
    if j < n && is_ident_char (String.unsafe_get input j) then ident_end (j + 1)
    else j
  in
  let scan_ident i =
    let j = ident_end (i + 1) in
    (match Ci_map.find_idx t.keywords input i j with
     | -1 -> (
       match t.ident_kind with
       | Some k -> emit k i j
       | None ->
         fail i
           (Printf.sprintf "unexpected word %S (identifiers not enabled)"
              (String.sub input i (j - i))))
     | slot -> emit (Ci_map.value t.keywords slot) i j);
    j
  in
  let scan_number i =
    let j = ref i in
    while !j < n && is_digit input.[!j] do incr j done;
    let decimal = ref false in
    if !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] then begin
      decimal := true;
      incr j;
      while !j < n && is_digit input.[!j] do incr j done
    end;
    if
      !j < n
      && (input.[!j] = 'e' || input.[!j] = 'E')
      && (!j + 1 < n && (is_digit input.[!j + 1]
                        || ((input.[!j + 1] = '+' || input.[!j + 1] = '-')
                           && !j + 2 < n && is_digit input.[!j + 2])))
    then begin
      decimal := true;
      incr j;
      if input.[!j] = '+' || input.[!j] = '-' then incr j;
      while !j < n && is_digit input.[!j] do incr j done
    end;
    (match !decimal, t.decimal_kind, t.integer_kind with
     | true, Some k, _ -> emit k i !j
     | true, None, _ -> fail i "decimal literals not enabled"
     | false, _, Some k -> emit k i !j
     | false, Some k, None -> emit k i !j
     | false, None, None -> fail i "numeric literals not enabled");
    !j
  in
  let rec quoted_end quote what i j =
    if j >= n then fail i ("unterminated " ^ what)
    else if String.unsafe_get input j = quote then
      if j + 1 < n && input.[j + 1] = quote then quoted_end quote what i (j + 2)
      else j + 1
    else begin
      if String.unsafe_get input j = '\n' then newline j;
      quoted_end quote what i (j + 1)
    end
  in
  let scan_quoted i ~quote ~kind_opt ~what =
    match kind_opt with
    | None -> fail i (what ^ " not enabled")
    | Some k ->
      let j = quoted_end quote what i (i + 1) in
      emit k i j;
      j
  in
  (* Literal match at [i] without allocating a substring. *)
  let rec literal_from literal len i k =
    k >= len || (input.[i + k] = literal.[k] && literal_from literal len i (k + 1))
  in
  let literal_at literal i =
    let len = String.length literal in
    i + len <= n && literal_from literal len i 0
  in
  let rec punct_probe i = function
    | [] -> fail i (Printf.sprintf "unexpected character %C" input.[i])
    | (literal, (k : kinded)) :: rest ->
      if literal_at literal i then begin
        emit k i (i + String.length literal);
        i + String.length literal
      end
      else punct_probe i rest
  in
  let scan_punct i = punct_probe i t.puncts.(Char.code input.[i]) in
  let rec loop i =
    if i >= n then ()
    else
      let c = input.[i] in
      if c = '\n' then begin
        newline i;
        loop (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then loop (i + 1)
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then begin
        let j = ref (i + 2) in
        while !j < n && input.[!j] <> '\n' do incr j done;
        loop !j
      end
      else if c = '/' && i + 1 < n && input.[i + 1] = '*' then
        loop (skip_block_comment (i + 2) i)
      else if is_ident_start c then loop (scan_ident i)
      else if is_digit c then loop (scan_number i)
      else if c = '.' && i + 1 < n && is_digit input.[i + 1] then
        (* Leading-dot decimals: [.5]. *)
        loop (scan_number i)
      else if c = '\'' then
        loop (scan_quoted i ~quote:'\'' ~kind_opt:t.string_kind ~what:"string literal")
      else if c = '"' then
        loop
          (scan_quoted i ~quote:'"' ~kind_opt:t.quoted_ident_kind
             ~what:"quoted identifier")
      else loop (scan_punct i)
  in
  match loop 0 with
  | () ->
    soa.kind_ids.(soa.count) <- Interner.eof_id;
    soa.starts.(soa.count) <- n;
    soa.stops.(soa.count) <- n;
    Ok soa
  | exception Lex_error e -> Error e

(* ------------------------------------------------------------------ *)
(* On-demand materialization                                          *)
(* ------------------------------------------------------------------ *)

(* Number of '\n' offsets strictly below [off]. *)
let newlines_before soa off =
  let lo = ref 0 and hi = ref soa.nl_count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if soa.newlines.(mid) < off then lo := mid + 1 else hi := mid
  done;
  !lo

let position_at soa off =
  let k = newlines_before soa off in
  let bol = if k = 0 then 0 else soa.newlines.(k - 1) + 1 in
  { Token.line = k + 1; column = off - bol + 1; offset = off }

(* Quoted-literal text: the bytes between the delimiters, with doubled
   delimiters collapsed — exactly what the scanner used to build eagerly.
   Allocation-free scan when the literal contains no doubled quote; a shared
   scratch buffer otherwise. *)
let quoted_text ~scratch src start stop ~quote =
  let lo = start + 1 and hi = stop - 1 in
  let rec has_doubled j =
    j < hi && (String.unsafe_get src j = quote || has_doubled (j + 1))
  in
  if not (has_doubled lo) then String.sub src lo (hi - lo)
  else begin
    Buffer.clear scratch;
    let rec go j =
      if j < hi then
        if src.[j] = quote then begin
          (* A quote char inside the literal body is always doubled. *)
          Buffer.add_char scratch quote;
          go (j + 2)
        end
        else begin
          Buffer.add_char scratch src.[j];
          go (j + 1)
        end
    in
    go lo;
    Buffer.contents scratch
  end

let text_at ?scratch t soa i =
  if i >= soa.count then "" (* EOF *)
  else
    let start = soa.starts.(i) and stop = soa.stops.(i) in
    let quoted quote =
      let scratch =
        match scratch with Some b -> b | None -> snd (Domain.DLS.get arena)
      in
      quoted_text ~scratch soa.src start stop ~quote
    in
    match t.string_kind, t.quoted_ident_kind with
    | Some k, _ when k.k_id = soa.kind_ids.(i) -> quoted '\''
    | _, Some k when k.k_id = soa.kind_ids.(i) -> quoted '"'
    | _ -> String.sub soa.src start (stop - start)

let token_of_soa t soa i =
  if i >= soa.count then Token.eof (position_at soa soa.starts.(soa.count))
  else
    {
      Token.kind = Interner.name t.interner soa.kind_ids.(i);
      kind_id = soa.kind_ids.(i);
      text = text_at t soa i;
      pos = position_at soa soa.starts.(i);
    }

let tokens_of_soa t soa =
  let _soa0, scratch = Domain.DLS.get arena in
  (* Sequential materialization: walk the newline index with a cursor instead
     of binary-searching per token. *)
  let k = ref 0 in
  Array.init (soa.count + 1) (fun i ->
      let start = soa.starts.(i) in
      while !k < soa.nl_count && soa.newlines.(!k) < start do incr k done;
      let bol = if !k = 0 then 0 else soa.newlines.(!k - 1) + 1 in
      let pos = { Token.line = !k + 1; column = start - bol + 1; offset = start } in
      if i = soa.count then Token.eof pos
      else
        {
          Token.kind = Interner.name t.interner soa.kind_ids.(i);
          kind_id = soa.kind_ids.(i);
          text = text_at ~scratch t soa i;
          pos;
        })

let scan_tokens t input =
  Result.map (fun soa -> tokens_of_soa t soa) (scan_soa t input)
