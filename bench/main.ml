(* Benchmark harness: regenerates the paper's reported artifacts (E1–E6) and
   the quantitative tailoring experiments (E7–E14) described in DESIGN.md /
   EXPERIMENTS.md.

   Two kinds of output:
   - report tables computed directly (sizes, counts, accept/reject matrices);
   - timed series measured with Bechamel (one Test per experiment series).

   Absolute numbers depend on the machine; the shapes (who wins, by what
   factor) are what EXPERIMENTS.md records. *)

open Bechamel
open Toolkit

let pf = Printf.printf

let generated_dialects =
  List.map
    (fun (d : Dialects.Dialect.t) ->
      match Core.generate_dialect d with
      | Ok g -> (d, g)
      | Error e -> Fmt.failwith "generate %s: %a" d.Dialects.Dialect.name Core.pp_error e)
    Dialects.Dialect.all

let dialect name = List.find (fun (d, _) -> d.Dialects.Dialect.name = name) generated_dialects
let full_parser = snd (dialect "full")

(* ------------------------------------------------------------------ *)
(* E1 — decomposition statistics (paper §3.1/§5)                       *)
(* ------------------------------------------------------------------ *)

let report_e1 () =
  let s = Sql.Model.stats in
  pf "\n== E1: feature-oriented decomposition of SQL Foundation ==\n";
  pf "%-40s %8s %8s\n" "measure" "paper" "ours";
  pf "%-40s %8s %8d\n" "published feature diagrams" ">= 40" s.Sql.Model.diagram_count;
  pf "%-40s %8s %8d\n" "features across diagrams" "> 500" s.Sql.Model.features_across_diagrams;
  pf "%-40s %8s %8d\n" "distinct features in the model" "-" s.Sql.Model.features_in_model;
  pf "%-40s %8s %8d\n" "cross-tree constraints" "-" s.Sql.Model.constraint_count;
  let products = Feature.Count.products Sql.Model.model.Feature.Model.concept in
  pf "%-40s %8s %8s\n" "valid tree selections (digits)" "-"
    (string_of_int (Feature.Bignum.digits products))

(* ------------------------------------------------------------------ *)
(* E6 — prototype parsers: accept/reject matrix                        *)
(* ------------------------------------------------------------------ *)

let report_e6 () =
  pf "\n== E6: dialect x workload acceptance matrix ==\n";
  let workload_names = [ "minimal"; "scql"; "tinysql"; "embedded"; "analytics" ] in
  pf "%-10s" "dialect";
  List.iter (fun w -> pf " %10s" w) workload_names;
  pf "\n";
  List.iter
    (fun ((d : Dialects.Dialect.t), g) ->
      pf "%-10s" d.name;
      List.iter
        (fun w ->
          let queries = Workloads.queries_for w in
          let accepted = List.length (List.filter (Core.accepts g) queries) in
          pf " %6d/%-3d" accepted (List.length queries))
        workload_names;
      pf "\n")
    generated_dialects

(* ------------------------------------------------------------------ *)
(* E7 — tailoring effect: grammar and scanner size per dialect          *)
(* ------------------------------------------------------------------ *)

let report_e7 () =
  pf "\n== E7: grammar/scanner size vs. selected features ==\n";
  pf "%-10s %9s %6s %6s %8s %7s %9s %7s\n" "dialect" "features" "rules" "alts"
    "symbols" "tokens" "keywords" "puncts";
  List.iter
    (fun ((d : Dialects.Dialect.t), (g : Core.generated)) ->
      let scanner = Lexing_gen.Scanner.create g.Core.tokens in
      pf "%-10s %9d %6d %6d %8d %7d %9d %7d\n" d.name
        (Feature.Config.cardinal g.Core.config)
        (Grammar.Cfg.rule_count g.Core.grammar)
        (Grammar.Cfg.alternative_count g.Core.grammar)
        (Grammar.Cfg.symbol_count g.Core.grammar)
        (List.length g.Core.tokens)
        (Lexing_gen.Scanner.keyword_count scanner)
        (Lexing_gen.Scanner.punct_count scanner))
    generated_dialects

(* E7b — the same tailoring curve over random valid configurations, not just
   the six designed dialects: sample selections of growing size and report
   grammar size (figure-style series). *)
let report_e7_sweep () =
  pf "\n== E7b: grammar size over sampled configurations ==\n";
  pf "%9s %6s %6s %7s\n" "features" "rules" "alts" "tokens";
  (* Samples whose requires-closure trips an OR-group are repaired by
     selecting the group's first member (what the configurator suggests). *)
  let rec repair config budget =
    if budget = 0 then config
    else
      match Feature.Config.validate Sql.Model.model config with
      | [] -> config
      | violations ->
        let additions =
          List.filter_map
            (fun v ->
              match v with
              | Feature.Config.Or_group_violation { parent }
              | Feature.Config.Alt_group_violation { parent; selected = [] } -> (
                match Feature.Tree.find Sql.Model.model.Feature.Model.concept parent with
                | Some p ->
                  List.find_map
                    (fun g ->
                      match g with
                      | Feature.Tree.Or_group ((m : Feature.Tree.t) :: _)
                      | Feature.Tree.Alt_group (m :: _) ->
                        Some m.Feature.Tree.name
                      | _ -> None)
                    p.Feature.Tree.groups
                | None -> None)
              | _ -> None)
            violations
        in
        if additions = [] then config
        else
          repair
            (Sql.Model.close
               (Feature.Config.union config (Feature.Config.of_names additions)))
            (budget - 1)
  in
  let samples =
    List.filter_map
      (fun seed ->
        let config = repair (Feature.Config.sample Sql.Model.model ~seed) 8 in
        if Feature.Config.is_valid Sql.Model.model config then
          match Sql.Model.compose config with
          | Ok out -> Some (Feature.Config.cardinal config, out)
          | Error _ -> None
        else None)
      (List.init 40 (fun i -> i * 37 + 1))
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
  List.iter
    (fun (n, (out : Compose.Composer.output)) ->
      pf "%9d %6d %6d %7d\n" n
        (Grammar.Cfg.rule_count out.Compose.Composer.grammar)
        (Grammar.Cfg.alternative_count out.Compose.Composer.grammar)
        (List.length out.Compose.Composer.tokens))
    sorted;
  pf "(%d valid samples out of 40 drawn)\n" (List.length sorted)

(* ------------------------------------------------------------------ *)
(* E14 — lint subsystem: diagnostic counts and wall-time per dialect    *)
(* ------------------------------------------------------------------ *)

let report_e14 () =
  pf "\n== E14: lint diagnostics across the dialect sweep ==\n";
  pf "%-10s %9s %7s %9s %6s %6s %6s %10s\n" "dialect" "features" "rules"
    "conflicts" "error" "warn" "info" "lint-time";
  List.iter
    (fun ((d : Dialects.Dialect.t), (g : Core.generated)) ->
      let t0 = Unix.gettimeofday () in
      let diags =
        Lint.run ~model:Sql.Model.model ~config:g.Core.config
          ~fragments:Sql.Model.fragment_rules ~tokens:g.Core.tokens
          g.Core.grammar
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let conflicts =
        List.length
          (List.filter
             (fun (dg : Lint.Diagnostic.t) ->
               dg.Lint.Diagnostic.code = "grammar/ll1-conflict"
               || dg.Lint.Diagnostic.code = "grammar/ll2-conflict")
             diags)
      in
      pf "%-10s %9d %7d %9d %6d %6d %6d %8.1fms\n" d.name
        (Feature.Config.cardinal g.Core.config)
        (Grammar.Cfg.rule_count g.Core.grammar)
        conflicts
        (Lint.Diagnostic.count Lint.Diagnostic.Error diags)
        (Lint.Diagnostic.count Lint.Diagnostic.Warning diags)
        (Lint.Diagnostic.count Lint.Diagnostic.Info diags)
        (elapsed *. 1e3))
    generated_dialects

(* ------------------------------------------------------------------ *)
(* E15 — parser-service layer: configuration-keyed cache and batched   *)
(* sessions (cold vs. warm compose+generate; session vs. per-statement *)
(* regeneration). Also emits the BENCH_e15.json artifact.              *)
(* ------------------------------------------------------------------ *)

(* Average seconds per run, with the repetition count adapted so that each
   series takes a measurable but bounded slice of wall time. Wall-clock
   ([Unix.gettimeofday]), not [Sys.time]: processor time misstates
   throughput and sums over workers for the domain-sharded series. *)
let now () = Unix.gettimeofday ()

let time_avg f =
  let once () =
    let t0 = now () in
    ignore (Sys.opaque_identity (f ()));
    now () -. t0
  in
  let first = once () in
  let reps = max 3 (min 500 (int_of_float (0.2 /. max 1e-6 first))) in
  let t0 = now () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (now () -. t0) /. float reps

let e15_cache_rows () =
  List.map
    (fun ((d : Dialects.Dialect.t), _) ->
      let cold = time_avg (fun () -> Core.generate_dialect d) in
      let cache = Service.Cache.create () in
      (match Service.Cache.generate_dialect cache d with
      | Ok _ -> ()
      | Error e -> Fmt.failwith "warm %s: %a" d.name Core.pp_error e);
      let warm = time_avg (fun () -> Service.Cache.generate_dialect cache d) in
      (d.name, cold, warm, cold /. warm))
    generated_dialects

let e15_workload (g : Core.generated) (d : Dialects.Dialect.t) =
  (* Corpus statements plus grammar-sampled sentences: a batch large enough
     that per-statement regeneration cost dominates visibly. *)
  let sampled = Service.Sentences.sample ~count:100 ~seed:1517 g in
  let corpus = Workloads.queries_for d.Dialects.Dialect.name in
  sampled @ corpus @ corpus

let e15_batch_rows () =
  List.map
    (fun name ->
      let d, g = dialect name in
      let statements = e15_workload g d in
      let n = List.length statements in
      let batched =
        time_avg (fun () ->
            let session = Service.Session.create g in
            Service.Session.parse_batch session statements)
      in
      let cache = Service.Cache.create () in
      let per_statement_cached =
        time_avg (fun () ->
            List.iter
              (fun sql ->
                match Service.Cache.generate_dialect cache d with
                | Ok g -> ignore (Sys.opaque_identity (Core.parse_cst g sql))
                | Error e -> Fmt.failwith "%a" Core.pp_error e)
              statements)
      in
      let regenerate =
        time_avg (fun () ->
            List.iter
              (fun sql ->
                match Core.generate_dialect d with
                | Ok g -> ignore (Sys.opaque_identity (Core.parse_cst g sql))
                | Error e -> Fmt.failwith "%a" Core.pp_error e)
              statements)
      in
      let per_s t = float n /. t in
      ( name,
        n,
        per_s batched,
        per_s per_statement_cached,
        per_s regenerate,
        regenerate /. batched ))
    [ "embedded"; "analytics" ]

let write_e15_json cache_rows batch_rows =
  let oc = open_out "BENCH_e15.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e15\",\n  \"cache\": [\n";
  List.iteri
    (fun i (name, cold, warm, speedup) ->
      p
        "    {\"dialect\": %S, \"cold_ms\": %.4f, \"warm_ms\": %.4f, \
         \"speedup\": %.1f}%s\n"
        name (cold *. 1e3) (warm *. 1e3) speedup
        (if i = List.length cache_rows - 1 then "" else ","))
    cache_rows;
  p "  ],\n  \"batch\": [\n";
  List.iteri
    (fun i (name, n, batched, cached, regen, speedup) ->
      p
        "    {\"dialect\": %S, \"statements\": %d, \
         \"batched_stmts_per_s\": %.0f, \"cached_stmts_per_s\": %.0f, \
         \"regenerate_stmts_per_s\": %.0f, \"speedup_vs_regenerate\": \
         %.1f}%s\n"
        name n batched cached regen speedup
        (if i = List.length batch_rows - 1 then "" else ","))
    batch_rows;
  p "  ]\n}\n";
  close_out oc

let report_e15 () =
  pf "\n== E15: parser-service cache and batched sessions ==\n";
  let cache_rows = e15_cache_rows () in
  pf "%-10s %12s %12s %9s\n" "dialect" "cold" "warm" "speedup";
  List.iter
    (fun (name, cold, warm, speedup) ->
      pf "%-10s %10.3fms %10.4fms %8.0fx\n" name (cold *. 1e3) (warm *. 1e3)
        speedup)
    cache_rows;
  let batch_rows = e15_batch_rows () in
  pf "\n%-10s %6s %14s %14s %14s %9s\n" "dialect" "stmts" "session"
    "cached" "regenerate" "speedup";
  List.iter
    (fun (name, n, batched, cached, regen, speedup) ->
      pf "%-10s %6d %12.0f/s %12.0f/s %12.0f/s %8.0fx\n" name n batched cached
        regen speedup)
    batch_rows;
  write_e15_json cache_rows batch_rows;
  pf "(wrote BENCH_e15.json)\n"

(* ------------------------------------------------------------------ *)
(* E16 — interned parse pipeline: the integer-id engine vs. the        *)
(* retained string-path Reference engine (the E15 batched baseline),   *)
(* and domain-sharded batch scaling. Emits BENCH_e16.json.             *)
(* ------------------------------------------------------------------ *)

(* The batched stmts/s recorded for `embedded` in EXPERIMENTS.md E15, on
   the string-path engine this PR replaced; kept in the JSON artifact so
   the speedup target is auditable. *)
let e15_recorded_baseline = 52_763.

type e16_row = {
  e16_dialect : string;
  e16_statements : int;
  e16_tokens : int;
  e16_ref_sps : float;          (* reference pipeline, statements/s *)
  e16_ref_tps : float;          (* reference pipeline, tokens/s *)
  e16_int_sps : float;          (* interned single-domain, statements/s *)
  e16_int_tps : float;          (* interned single-domain, tokens/s *)
  e16_shard_statements : int;   (* size of the sharding workload *)
  e16_domains : (int * float * float) list; (* domains, stmts/s, tokens/s *)
}

let e16_workload ~smoke (g : Core.generated) (d : Dialects.Dialect.t) =
  let corpus = Workloads.queries_for d.Dialects.Dialect.name in
  if smoke then corpus
  else Service.Sentences.sample ~count:300 ~seed:1609 g @ corpus @ corpus

let e16_token_total g statements =
  List.fold_left
    (fun acc sql ->
      match Core.scan_tokens g sql with
      | Ok toks -> acc + Array.length toks - 1
      | Error e -> Fmt.failwith "scan %S: %a" sql Core.pp_error e)
    0 statements

let e16_row ~smoke ~domain_counts name =
  let d, g = dialect name in
  let statements = e16_workload ~smoke g d in
  let n = List.length statements in
  let token_total = e16_token_total g statements in
  (* Baseline: the pre-interning batched pipeline — token lists through the
     string-keyed Reference engine, exactly what E15's session measured. *)
  let refp =
    match Parser_gen.Reference.generate g.Core.grammar with
    | Ok p -> p
    | Error e -> Fmt.failwith "%a" Parser_gen.Engine.pp_gen_error e
  in
  let ref_time =
    time_avg (fun () ->
        List.iter
          (fun sql ->
            match Core.scan_tokens g sql with
            | Ok toks ->
              ignore
                (Sys.opaque_identity
                   (Parser_gen.Reference.parse refp (Array.to_list toks)))
            | Error e -> Fmt.failwith "%a" Core.pp_error e)
          statements)
  in
  let session = Service.Session.create g in
  let int_time =
    time_avg (fun () -> Service.Session.parse_batch session statements)
  in
  (* The scaling series runs on a multiplied batch: a shard must be large
     enough that parsing dominates the fixed Domain.spawn cost, as it does
     under sustained traffic. *)
  let shard_statements =
    if smoke then statements
    else List.concat (List.init 8 (fun _ -> statements))
  in
  let shard_n = List.length shard_statements in
  let shard_tokens = token_total * (shard_n / n) in
  let domain_rows =
    List.map
      (fun domains ->
        (* ~clamp:false: the series deliberately measures oversharding
           (including its collapse on small hosts), so the session's
           default clamp must not rewrite the requested count. *)
        let t =
          time_avg (fun () ->
              Service.Session.parse_batch ~clamp:false ~domains session
                shard_statements)
        in
        (domains, float shard_n /. t, float shard_tokens /. t))
      domain_counts
  in
  {
    e16_dialect = name;
    e16_statements = n;
    e16_tokens = token_total;
    e16_ref_sps = float n /. ref_time;
    e16_ref_tps = float token_total /. ref_time;
    e16_int_sps = float n /. int_time;
    e16_int_tps = float token_total /. int_time;
    e16_shard_statements = shard_n;
    e16_domains = domain_rows;
  }

let write_e16_json rows =
  let oc = open_out "BENCH_e16.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e16\",\n";
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"e15_recorded_baseline_stmts_per_s\": %.0f,\n" e15_recorded_baseline;
  p "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      let shard_base =
        match row.e16_domains with (1, _, tps) :: _ -> tps | _ -> 0.
      in
      let scaling =
        List.map
          (fun (k, sps, tps) ->
            Printf.sprintf
              "{\"domains\": %d, \"stmts_per_s\": %.0f, \
               \"tokens_per_s\": %.0f, \"scaling_vs_1_domain\": %.2f}"
              k sps tps
              (if shard_base > 0. then tps /. shard_base else 0.))
          row.e16_domains
      in
      p
        "    {\"dialect\": %S, \"statements\": %d, \"tokens\": %d,\n\
        \     \"reference_stmts_per_s\": %.0f, \"reference_tokens_per_s\": \
         %.0f,\n\
        \     \"interned_stmts_per_s\": %.0f, \"interned_tokens_per_s\": \
         %.0f,\n\
        \     \"speedup_tokens_vs_reference\": %.2f, \
         \"speedup_stmts_vs_e15_recorded\": %.2f,\n\
        \     \"sharded_statements\": %d,\n\
        \     \"sharded\": [%s]}%s\n"
        row.e16_dialect row.e16_statements row.e16_tokens row.e16_ref_sps
        row.e16_ref_tps row.e16_int_sps row.e16_int_tps
        (if row.e16_ref_tps > 0. then row.e16_int_tps /. row.e16_ref_tps
         else 0.)
        (row.e16_int_sps /. e15_recorded_baseline)
        row.e16_shard_statements
        (String.concat ", " scaling)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let report_e16 ?(smoke = false) () =
  pf "\n== E16: interned parse pipeline vs. string-path reference ==\n";
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let names = if smoke then [ "embedded" ] else [ "embedded"; "analytics" ] in
  pf "(%d core(s) recommended by the runtime)\n"
    (Domain.recommended_domain_count ());
  let rows = List.map (e16_row ~smoke ~domain_counts) names in
  pf "%-10s %6s %8s %14s %14s %9s\n" "dialect" "stmts" "tokens" "ref tok/s"
    "interned tok/s" "speedup";
  List.iter
    (fun row ->
      pf "%-10s %6d %8d %12.0f/s %12.0f/s %8.2fx\n" row.e16_dialect
        row.e16_statements row.e16_tokens row.e16_ref_tps row.e16_int_tps
        (if row.e16_ref_tps > 0. then row.e16_int_tps /. row.e16_ref_tps
         else 0.))
    rows;
  pf "\n%-10s %8s %8s %14s %14s %9s\n" "dialect" "stmts" "domains" "stmts/s"
    "tokens/s" "scaling";
  List.iter
    (fun row ->
      let shard_base =
        match row.e16_domains with (1, _, tps) :: _ -> tps | _ -> 0.
      in
      List.iter
        (fun (k, sps, tps) ->
          pf "%-10s %8d %8d %12.0f/s %12.0f/s %8.2fx\n" row.e16_dialect
            row.e16_shard_statements k sps tps
            (if shard_base > 0. then tps /. shard_base else 0.))
        row.e16_domains)
    rows;
  if not smoke then begin
    write_e16_json rows;
    pf "(wrote BENCH_e16.json)\n"
  end

(* Reduced E15 for the @bench-smoke alias: exercises the config cache and
   the batched session end-to-end without timing-dependent assertions. *)
let report_e15_smoke () =
  pf "\n== E15 (smoke): config cache + batched session ==\n";
  let d, g = dialect "embedded" in
  let cache = Service.Cache.create () in
  List.iter
    (fun _ ->
      match Service.Cache.generate_dialect cache d with
      | Ok _ -> ()
      | Error e -> Fmt.failwith "cache %s: %a" d.name Core.pp_error e)
    [ (); (); () ];
  let session = Service.Session.create g in
  let batch =
    Service.Session.parse_batch session (Workloads.queries_for "embedded")
  in
  pf "embedded: %s\n"
    (Fmt.str "%a" Service.Session.pp_stats batch.Service.Session.batch_stats)

(* ------------------------------------------------------------------ *)
(* E17 — committed LL(k) dispatch: the prediction-compiled engine vs.  *)
(* the same engine with dispatch disabled (exactly the E16 interned    *)
(* engine) vs. the string-path Reference, parse-only (tokens are       *)
(* pre-scanned), plus the committed-point coverage per dialect.        *)
(* Emits BENCH_e17.json.                                               *)
(* ------------------------------------------------------------------ *)

type e17_row = {
  e17_dialect : string;
  e17_statements : int;
  e17_tokens : int;
  e17_ref_sps : float;   (* reference engine, statements/s *)
  e17_ref_tps : float;
  e17_memo_sps : float;  (* interned engine, dispatch off = E16 engine *)
  e17_memo_tps : float;
  e17_com_sps : float;   (* committed-dispatch engine (the default) *)
  e17_com_tps : float;
  e17_summary : Parser_gen.Engine.summary;
}

let e17_row ~smoke name =
  let d, g = dialect name in
  let statements = e16_workload ~smoke g d in
  let n = List.length statements in
  (* Parse-only comparison: scanning is identical for all three engines, so
     the workload is pre-scanned once and only [parse] is timed. *)
  let token_arrays =
    List.map
      (fun sql ->
        match Core.scan_tokens g sql with
        | Ok toks -> toks
        | Error e -> Fmt.failwith "scan %S: %a" sql Core.pp_error e)
      statements
  in
  let token_lists = List.map Array.to_list token_arrays in
  let token_total =
    List.fold_left (fun acc a -> acc + Array.length a - 1) 0 token_arrays
  in
  (* The committed engine is the shipped parser: left-factored grammar,
     prediction-compiled dispatch. The memoized baseline is the same
     generator with ~dispatch:false on the *composed* grammar — exactly the
     engine E16 measured. The reference runs the composed grammar too. *)
  let committed = g.Core.parser in
  let memo =
    match
      Parser_gen.Engine.generate ~dispatch:false
        ~interner:(Lexing_gen.Scanner.interner g.Core.scanner)
        g.Core.grammar
    with
    | Ok p -> p
    | Error e -> Fmt.failwith "%a" Parser_gen.Engine.pp_gen_error e
  in
  let refp =
    match Parser_gen.Reference.generate g.Core.grammar with
    | Ok p -> p
    | Error e -> Fmt.failwith "%a" Parser_gen.Engine.pp_gen_error e
  in
  let engine_time p =
    time_avg (fun () ->
        List.iter
          (fun toks ->
            ignore (Sys.opaque_identity (Parser_gen.Engine.parse_tokens p toks)))
          token_arrays)
  in
  let com_time = engine_time committed in
  let memo_time = engine_time memo in
  let ref_time =
    time_avg (fun () ->
        List.iter
          (fun toks ->
            ignore (Sys.opaque_identity (Parser_gen.Reference.parse refp toks)))
          token_lists)
  in
  {
    e17_dialect = name;
    e17_statements = n;
    e17_tokens = token_total;
    e17_ref_sps = float n /. ref_time;
    e17_ref_tps = float token_total /. ref_time;
    e17_memo_sps = float n /. memo_time;
    e17_memo_tps = float token_total /. memo_time;
    e17_com_sps = float n /. com_time;
    e17_com_tps = float token_total /. com_time;
    e17_summary = Parser_gen.Engine.summary committed;
  }

let write_e17_json rows =
  let oc = open_out "BENCH_e17.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e17\",\n";
  p "  \"basis\": \"parse-only (tokens pre-scanned once)\",\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      let s = row.e17_summary in
      p
        "    {\"dialect\": %S, \"statements\": %d, \"tokens\": %d,\n\
        \     \"reference_stmts_per_s\": %.0f, \"reference_tokens_per_s\": \
         %.0f,\n\
        \     \"memoized_stmts_per_s\": %.0f, \"memoized_tokens_per_s\": \
         %.0f,\n\
        \     \"committed_stmts_per_s\": %.0f, \"committed_tokens_per_s\": \
         %.0f,\n\
        \     \"speedup_tokens_vs_memoized\": %.2f, \
         \"speedup_tokens_vs_reference\": %.2f,\n\
        \     \"committed_points\": %d, \"k1_points\": %d, \"k2_points\": \
         %d, \"ambiguous_points\": %d,\n\
        \     \"committed_nonterminals\": %d, \"total_nonterminals\": %d,\n\
        \     \"coverage\": %.4f}%s\n"
        row.e17_dialect row.e17_statements row.e17_tokens row.e17_ref_sps
        row.e17_ref_tps row.e17_memo_sps row.e17_memo_tps row.e17_com_sps
        row.e17_com_tps
        (if row.e17_memo_tps > 0. then row.e17_com_tps /. row.e17_memo_tps
         else 0.)
        (if row.e17_ref_tps > 0. then row.e17_com_tps /. row.e17_ref_tps
         else 0.)
        s.Parser_gen.Engine.committed_points s.Parser_gen.Engine.k1_points
        s.Parser_gen.Engine.k2_points s.Parser_gen.Engine.ambiguous_points
        s.Parser_gen.Engine.committed_nts s.Parser_gen.Engine.total_nts
        (Parser_gen.Engine.coverage s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let report_e17 ?(smoke = false) () =
  pf "\n== E17: committed LL(k) dispatch vs. memoized backtracking ==\n";
  let names =
    if smoke then [ "embedded"; "analytics" ]
    else
      List.map
        (fun ((d : Dialects.Dialect.t), _) -> d.name)
        generated_dialects
  in
  let rows = List.map (e17_row ~smoke) names in
  pf "%-10s %6s %8s %13s %13s %13s %8s %9s\n" "dialect" "stmts" "tokens"
    "ref tok/s" "memo tok/s" "commit tok/s" "vs memo" "coverage";
  List.iter
    (fun row ->
      pf "%-10s %6d %8d %11.0f/s %11.0f/s %11.0f/s %7.2fx %8.1f%%\n"
        row.e17_dialect row.e17_statements row.e17_tokens row.e17_ref_tps
        row.e17_memo_tps row.e17_com_tps
        (if row.e17_memo_tps > 0. then row.e17_com_tps /. row.e17_memo_tps
         else 0.)
        (100. *. Parser_gen.Engine.coverage row.e17_summary))
    rows;
  pf "\nper-dialect classification:\n";
  List.iter
    (fun row ->
      let s = row.e17_summary in
      pf "%-10s %s\n" row.e17_dialect
        (Fmt.str "%a" Parser_gen.Engine.pp_summary s);
      List.iter
        (fun (c : Parser_gen.Engine.nt_class) ->
          if c.Parser_gen.Engine.nt_fallbacks > 0 then
            pf "           fallback: <%s> (%d ambiguous point(s))\n"
              c.Parser_gen.Engine.nt_name c.Parser_gen.Engine.nt_fallbacks)
        s.Parser_gen.Engine.classes)
    rows;
  if not smoke then begin
    write_e17_json rows;
    pf "(wrote BENCH_e17.json)\n"
  end

(* ------------------------------------------------------------------ *)
(* E18: bytecode VM + SoA token stream vs. the committed loop.         *)
(* End-to-end (scan + parse), since the SoA stream's zero-allocation   *)
(* scan is half the point. Emits BENCH_e18.json.                       *)
(* ------------------------------------------------------------------ *)

type e18_row = {
  e18_dialect : string;
  e18_statements : int;
  e18_tokens : int;
  e18_com_sps : float;   (* committed loop over materialized tokens *)
  e18_com_tps : float;
  e18_vm_sps : float;    (* bytecode VM over the SoA stream, building CSTs *)
  e18_vm_tps : float;
  e18_rec_sps : float;   (* VM recognition: no tokens, no CST *)
  e18_rec_tps : float;
  e18_program_size : int;
  e18_compiled_nts : int;
  e18_total_nts : int;
}

let e18_row ~smoke name =
  let d, g = dialect name in
  let statements = e16_workload ~smoke g d in
  let n = List.length statements in
  let token_total = e16_token_total g statements in
  (* End-to-end timing: every engine pays its own scan. The committed
     baseline is exactly the shipped [Core.parse_cst] pipeline
     (materialized token array into the dispatch loop); the VM rows run
     [Core.parse_cst_vm] (SoA stream, lazily materialized leaves) and
     [Core.recognize] (SoA stream, no CST — the zero-allocation path). *)
  let pipeline_time parse =
    time_avg (fun () ->
        List.iter
          (fun sql -> ignore (Sys.opaque_identity (parse g sql)))
          statements)
  in
  let com_time = pipeline_time Core.parse_cst in
  let vm_time = pipeline_time Core.parse_cst_vm in
  let rec_time = pipeline_time Core.recognize in
  let program_size, compiled_nts =
    match Parser_gen.Engine.program g.Core.parser with
    | Some p -> (Parser_gen.Program.size p, Parser_gen.Program.compiled_nts p)
    | None -> (0, 0)
  in
  {
    e18_dialect = name;
    e18_statements = n;
    e18_tokens = token_total;
    e18_com_sps = float n /. com_time;
    e18_com_tps = float token_total /. com_time;
    e18_vm_sps = float n /. vm_time;
    e18_vm_tps = float token_total /. vm_time;
    e18_rec_sps = float n /. rec_time;
    e18_rec_tps = float token_total /. rec_time;
    e18_program_size = program_size;
    e18_compiled_nts = compiled_nts;
    e18_total_nts =
      (Parser_gen.Engine.summary g.Core.parser).Parser_gen.Engine.total_nts;
  }

let write_e18_json rows =
  let oc = open_out "BENCH_e18.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e18\",\n";
  p "  \"basis\": \"end-to-end (scan + parse per engine)\",\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      p
        "    {\"dialect\": %S, \"statements\": %d, \"tokens\": %d,\n\
        \     \"committed_stmts_per_s\": %.0f, \"committed_tokens_per_s\": \
         %.0f,\n\
        \     \"vm_stmts_per_s\": %.0f, \"vm_tokens_per_s\": %.0f,\n\
        \     \"vm_recognize_stmts_per_s\": %.0f, \
         \"vm_recognize_tokens_per_s\": %.0f,\n\
        \     \"speedup_vm_vs_committed\": %.2f, \
         \"speedup_recognize_vs_committed\": %.2f,\n\
        \     \"program_size_ints\": %d, \"compiled_nonterminals\": %d, \
         \"total_nonterminals\": %d}%s\n"
        row.e18_dialect row.e18_statements row.e18_tokens row.e18_com_sps
        row.e18_com_tps row.e18_vm_sps row.e18_vm_tps row.e18_rec_sps
        row.e18_rec_tps
        (if row.e18_com_tps > 0. then row.e18_vm_tps /. row.e18_com_tps
         else 0.)
        (if row.e18_com_tps > 0. then row.e18_rec_tps /. row.e18_com_tps
         else 0.)
        row.e18_program_size row.e18_compiled_nts row.e18_total_nts
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let report_e18 ?(smoke = false) () =
  pf "\n== E18: bytecode VM + SoA stream vs. committed loop (end-to-end) ==\n";
  let names =
    if smoke then [ "embedded"; "analytics" ]
    else
      List.map
        (fun ((d : Dialects.Dialect.t), _) -> d.name)
        generated_dialects
  in
  let rows = List.map (e18_row ~smoke) names in
  pf "%-10s %6s %8s %13s %13s %13s %8s %8s %9s\n" "dialect" "stmts" "tokens"
    "commit tok/s" "vm tok/s" "recog tok/s" "vm x" "recog x" "program";
  List.iter
    (fun row ->
      pf "%-10s %6d %8d %11.0f/s %11.0f/s %11.0f/s %7.2fx %7.2fx %6d ints\n"
        row.e18_dialect row.e18_statements row.e18_tokens row.e18_com_tps
        row.e18_vm_tps row.e18_rec_tps
        (if row.e18_com_tps > 0. then row.e18_vm_tps /. row.e18_com_tps
         else 0.)
        (if row.e18_com_tps > 0. then row.e18_rec_tps /. row.e18_com_tps
         else 0.)
        row.e18_program_size)
    rows;
  (* The smoke run doubles as a correctness gate for the harness itself:
     every statement must agree across the three pipelines. *)
  List.iter
    (fun name ->
      let d, g = dialect name in
      List.iter
        (fun sql ->
          let a = Result.is_ok (Core.parse_cst g sql) in
          let b = Result.is_ok (Core.parse_cst_vm g sql) in
          let c = Result.is_ok (Core.recognize g sql) in
          if a <> b || a <> c then
            Fmt.failwith "engines disagree on %S (%s)" sql
              d.Dialects.Dialect.name)
        (e16_workload ~smoke:true g d))
    names;
  if not smoke then begin
    write_e18_json rows;
    pf "(wrote BENCH_e18.json)\n"
  end

(* ------------------------------------------------------------------ *)
(* E19: the parser service under concurrent load. A real `sqlpl serve` *)
(* daemon (8 worker domains, loopback TCP) takes batched requests from *)
(* 8 concurrent client connections; we report wire round-trip latency  *)
(* (p50/p99) and sustained request/statement throughput per dialect    *)
(* and engine, and cross-check every reply byte-for-byte against the   *)
(* in-process Session results. Emits BENCH_e19.json.                   *)
(* ------------------------------------------------------------------ *)

module Wire = Service.Wire

type e19_row = {
  e19_dialect : string;
  e19_engine : string;
  e19_statements : int;  (* statements per request *)
  e19_requests : int;    (* requests answered across all connections *)
  e19_p50_ms : float;
  e19_p99_ms : float;
  e19_qps : float;       (* requests/s, all connections together *)
  e19_sps : float;       (* statements/s through the service *)
  e19_major : int;       (* GC major collections during the timed run
                            (process-wide: client + server domains) *)
}

let e19_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float n)) - 1)))

(* The per-request batch: the dialect's own corpus (smoke), widened with
   grammar-sampled sentences in the full run — a realistic statement mix,
   small enough that a request measures the wire and dispatch path, not
   one giant parse. *)
let e19_batch ~smoke name g =
  let corpus = Workloads.queries_for name in
  if smoke then corpus
  else Service.Sentences.sample ~count:28 ~seed:7433 g @ corpus

let e19_reference ~mode ~engine g stmts =
  let session = Service.Session.create ~engine g in
  Wire.encode_items
    (List.map
       (Service.Server.outcome_of_item mode)
       (Service.Session.parse_batch session stmts).Service.Session.items)

let e19_row ~smoke ~rounds ~connections server name engine =
  let _, g = dialect name in
  let stmts = e19_batch ~smoke name g in
  let engine_name =
    match engine with
    | `Committed -> "committed"
    | `Vm -> "vm"
    | `Fused -> "fused"
  in
  (* The determinism gate first: one CST-mode and one recognize-mode reply
     must be byte-identical to the library rendering. *)
  let expect_cst = e19_reference ~mode:Wire.Cst ~engine g stmts in
  let expect_rec = e19_reference ~mode:Wire.Recognize ~engine g stmts in
  let addr = Service.Server.address server in
  let latencies = Array.make (connections * rounds) 0.0 in
  let failures = Array.make connections None in
  let run i () =
    match
      Service.Client.connect ~engine ~selection:(Wire.Dialect name) addr
    with
    | Error e -> failures.(i) <- Some (Fmt.str "connect: %a" Wire.pp_error e)
    | Ok (client, _) ->
      let check mode want =
        match Service.Client.request ~mode client stmts with
        | Error e -> failures.(i) <- Some (Fmt.str "request: %a" Wire.pp_error e)
        | Ok reply ->
          if not (String.equal (Wire.encode_items reply.Wire.items) want) then
            failures.(i) <- Some "service reply differs from library results"
      in
      check Wire.Cst expect_cst;
      check Wire.Recognize expect_rec;
      for r = 0 to rounds - 1 do
        let t0 = now () in
        (match Service.Client.request ~mode:Wire.Recognize client stmts with
        | Ok _ -> ()
        | Error e ->
          failures.(i) <- Some (Fmt.str "request: %a" Wire.pp_error e));
        latencies.((i * rounds) + r) <- now () -. t0
      done;
      Service.Client.close client
  in
  let gc0 = Gc.quick_stat () in
  let t0 = now () in
  let threads = List.init connections (fun i -> Thread.create (run i) ()) in
  List.iter Thread.join threads;
  let wall = now () -. t0 in
  let major =
    (Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections
  in
  Array.iter
    (function
      | Some msg -> Fmt.failwith "e19 %s/%s: %s" name engine_name msg
      | None -> ())
    failures;
  Array.sort compare latencies;
  let requests = connections * rounds in
  {
    e19_dialect = name;
    e19_engine = engine_name;
    e19_statements = List.length stmts;
    e19_requests = requests;
    e19_p50_ms = 1e3 *. e19_percentile latencies 0.50;
    e19_p99_ms = 1e3 *. e19_percentile latencies 0.99;
    e19_qps = float requests /. wall;
    e19_sps = float (requests * List.length stmts) /. wall;
    e19_major = major;
  }

let write_e19_json ~workers ~connections rows =
  let oc = open_out "BENCH_e19.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e19\",\n";
  p "  \"basis\": \"wire round-trips against sqlpl serve (loopback TCP, \
     recognize mode)\",\n";
  p "  \"workers\": %d,\n" workers;
  p "  \"connections\": %d,\n" connections;
  p "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      p
        "    {\"dialect\": %S, \"engine\": %S, \"statements\": %d, \
         \"requests\": %d,\n\
        \     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"qps\": %.0f, \
         \"stmts_per_s\": %.0f, \"major_collections\": %d}%s\n"
        row.e19_dialect row.e19_engine row.e19_statements row.e19_requests
        row.e19_p50_ms row.e19_p99_ms row.e19_qps row.e19_sps row.e19_major
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let report_e19 ?(smoke = false) () =
  pf "\n== E19: parser service under concurrent load (8 connections) ==\n";
  let workers = 8 and connections = 8 in
  let rounds = if smoke then 3 else 40 in
  let names =
    if smoke then [ "embedded"; "analytics" ]
    else
      List.map
        (fun ((d : Dialects.Dialect.t), _) -> d.name)
        generated_dialects
  in
  let cache = Service.Cache.create () in
  let server =
    match
      Service.Server.start ~workers ~cache (Wire.Tcp ("127.0.0.1", 0))
    with
    | Ok s -> s
    | Error msg -> Fmt.failwith "e19: %s" msg
  in
  Fun.protect ~finally:(fun () -> Service.Server.stop server) @@ fun () ->
  let rows =
    List.concat_map
      (fun name ->
        List.map (e19_row ~smoke ~rounds ~connections server name)
          [ `Committed; `Vm; `Fused ])
      names
  in
  let s = Service.Server.stats server in
  if s.Service.Server.connections < connections then
    Fmt.failwith "e19: only %d connections served" s.Service.Server.connections;
  pf "%-10s %-9s %6s %8s %9s %9s %9s %11s\n" "dialect" "engine" "stmts"
    "requests" "p50 ms" "p99 ms" "req/s" "stmts/s";
  List.iter
    (fun row ->
      pf "%-10s %-9s %6d %8d %9.3f %9.3f %9.0f %9.0f/s\n" row.e19_dialect
        row.e19_engine row.e19_statements row.e19_requests row.e19_p50_ms
        row.e19_p99_ms row.e19_qps row.e19_sps)
    rows;
  pf "(every reply cross-checked byte-for-byte against Session.parse_batch)\n";
  if not smoke then begin
    write_e19_json ~workers ~connections rows;
    pf "(wrote BENCH_e19.json)\n"
  end

(* ------------------------------------------------------------------ *)
(* E20 — fused scan+parse over raw bytes. Recognition throughput of    *)
(* the fused engine (VM pulls token kinds straight from the scanner    *)
(* cursor, one pass over the bytes) against the two-pass VM pipeline   *)
(* (scan_soa, then recognize_soa), anchored to a raw byte-scan         *)
(* baseline; plus a large streamed corpus to record the fixed memory   *)
(* ceiling. Emits BENCH_e20.json.                                      *)
(* ------------------------------------------------------------------ *)

type e20_row = {
  e20_dialect : string;
  e20_statements : int;
  e20_tokens : int;
  e20_bytes : int;
  e20_twopass_tps : float; (* scan_soa + recognize_soa, tokens/s *)
  e20_fused_tps : float;   (* fused cursor-driven VM, tokens/s *)
  e20_fused_mbs : float;   (* fused engine, input MB/s *)
  e20_major : int;         (* GC major collections during fused timing *)
}

let e20_row ~smoke name =
  let d, g = dialect name in
  let statements = e16_workload ~smoke g d in
  let n = List.length statements in
  let token_total = e16_token_total g statements in
  let byte_total =
    List.fold_left (fun acc sql -> acc + String.length sql) 0 statements
  in
  let pipeline_time recognize =
    time_avg (fun () ->
        List.iter
          (fun sql -> ignore (Sys.opaque_identity (recognize g sql)))
          statements)
  in
  let two_time = pipeline_time Core.recognize in
  let gc0 = Gc.quick_stat () in
  let fused_time = pipeline_time Core.recognize_fused in
  let major =
    (Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections
  in
  {
    e20_dialect = name;
    e20_statements = n;
    e20_tokens = token_total;
    e20_bytes = byte_total;
    e20_twopass_tps = float token_total /. two_time;
    e20_fused_tps = float token_total /. fused_time;
    e20_fused_mbs = float byte_total /. fused_time /. 1e6;
    e20_major = major;
  }

(* The floor every parser sits on: a branch-per-byte pass (newline count)
   over the same statements. Fused throughput as a fraction of this rate
   says how much of the remaining cost is parsing, not memory traffic. *)
let e20_byte_scan_mb_per_s script =
  let n = String.length script in
  let t =
    time_avg (fun () ->
        let count = ref 0 in
        for i = 0 to n - 1 do
          if String.unsafe_get script i = '\n' then incr count
        done;
        !count)
  in
  float n /. t /. 1e6

(* Peak resident set of this process, in KiB, from the kernel's
   high-water mark. 0 where /proc is unavailable. *)
let e20_vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let rec go () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf
            (String.sub line 6 (String.length line - 6))
            " %d" Fun.id
        else go ()
    in
    go ()

type e20_stream = {
  e20s_bytes : int;
  e20s_chunk : int;
  e20s_statements : int;
  e20s_tokens : int;
  e20s_tps : float;
  e20s_hwm_kb : int;
}

(* Stream a fabricated corpus through [Core.recognize_stream]: the reader
   synthesizes statements on the fly, so no input buffer exists anywhere
   and the resident-set high-water mark reflects the parser alone. *)
let e20_stream_run ~smoke g =
  let stmt = "SELECT nodeid, temp FROM sensors WHERE temp > 100;\n" in
  let slen = String.length stmt in
  let target = if smoke then 1_000_000 else 100_000_000 in
  let bytes = target - (target mod slen) in
  let chunk = 65536 in
  let remaining = ref bytes in
  let read buf off len =
    let len = min len !remaining in
    if len <= 0 then 0
    else begin
      for i = 0 to len - 1 do
        Bytes.unsafe_set buf (off + i) stmt.[(bytes - !remaining + i) mod slen]
      done;
      remaining := !remaining - len;
      len
    end
  in
  let t0 = now () in
  let stats = Core.recognize_stream ~chunk_size:chunk g ~read in
  let wall = now () -. t0 in
  if stats.Core.stream_errors > 0 then
    Fmt.failwith "e20 stream: %d statements rejected" stats.Core.stream_errors;
  {
    e20s_bytes = bytes;
    e20s_chunk = chunk;
    e20s_statements = stats.Core.stream_statements;
    e20s_tokens = stats.Core.stream_tokens;
    e20s_tps = float stats.Core.stream_tokens /. wall;
    e20s_hwm_kb = e20_vm_hwm_kb ();
  }

let write_e20_json ~byte_scan rows stream =
  let oc = open_out "BENCH_e20.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e20\",\n";
  p "  \"basis\": \"end-to-end over raw bytes (fused scan+parse vs. \
     two-pass VM, recognize mode)\",\n";
  p "  \"byte_scan_mb_per_s\": %.0f,\n" byte_scan;
  p "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      p
        "    {\"dialect\": %S, \"statements\": %d, \"tokens\": %d, \
         \"bytes\": %d,\n\
        \     \"twopass_tokens_per_s\": %.0f, \"fused_tokens_per_s\": %.0f,\n\
        \     \"speedup_fused_vs_twopass\": %.3f, \"fused_mb_per_s\": %.1f, \
         \"byte_scan_ratio\": %.4f, \"major_collections\": %d}%s\n"
        row.e20_dialect row.e20_statements row.e20_tokens row.e20_bytes
        row.e20_twopass_tps row.e20_fused_tps
        (if row.e20_twopass_tps > 0. then
           row.e20_fused_tps /. row.e20_twopass_tps
         else 0.)
        row.e20_fused_mbs
        (if byte_scan > 0. then row.e20_fused_mbs /. byte_scan else 0.)
        row.e20_major
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p
    "  \"stream\": {\"bytes\": %d, \"chunk\": %d, \"statements\": %d, \
     \"tokens\": %d,\n\
    \    \"tokens_per_s\": %.0f, \"max_resident_kb\": %d}\n"
    stream.e20s_bytes stream.e20s_chunk stream.e20s_statements
    stream.e20s_tokens stream.e20s_tps stream.e20s_hwm_kb;
  p "}\n";
  close_out oc

let report_e20 ?(smoke = false) () =
  pf "\n== E20: fused scan+parse over raw bytes vs. two-pass VM ==\n";
  let names =
    if smoke then [ "embedded"; "analytics" ]
    else
      List.map
        (fun ((d : Dialects.Dialect.t), _) -> d.name)
        generated_dialects
  in
  let rows = List.map (e20_row ~smoke) names in
  let byte_scan =
    let d, g = dialect (List.hd names) in
    e20_byte_scan_mb_per_s (String.concat ";\n" (e16_workload ~smoke g d))
  in
  pf "%-10s %6s %8s %13s %13s %8s %9s %7s\n" "dialect" "stmts" "tokens"
    "2pass tok/s" "fused tok/s" "speedup" "MB/s" "majors";
  List.iter
    (fun row ->
      pf "%-10s %6d %8d %11.0f/s %11.0f/s %7.2fx %8.1f %7d\n" row.e20_dialect
        row.e20_statements row.e20_tokens row.e20_twopass_tps row.e20_fused_tps
        (if row.e20_twopass_tps > 0. then
           row.e20_fused_tps /. row.e20_twopass_tps
         else 0.)
        row.e20_fused_mbs row.e20_major)
    rows;
  pf "raw byte-scan floor: %.0f MB/s\n" byte_scan;
  let _, g = dialect "tinysql" in
  let stream = e20_stream_run ~smoke g in
  pf
    "streamed %.0f MB (chunk %d): %d statements, %d tokens, %.0f tokens/s, \
     max resident %.0f MB\n"
    (float stream.e20s_bytes /. 1e6)
    stream.e20s_chunk stream.e20s_statements stream.e20s_tokens stream.e20s_tps
    (float stream.e20s_hwm_kb /. 1e3);
  if not smoke then begin
    write_e20_json ~byte_scan rows stream;
    pf "(wrote BENCH_e20.json)\n"
  end

(* ------------------------------------------------------------------ *)
(* E21 — family-based compilation. The product line's fragments are    *)
(* compiled once into a variability-aware artifact (Family.build);     *)
(* each configuration is then instantiated by a presence-condition     *)
(* mask/replay plus interned LL(k) classification. We gate on          *)
(* byte-identical products (grammar, tokens, sequence, dispatch        *)
(* summary) against the cold pipeline, then time cold compose+generate *)
(* vs. family instantiation per dialect, and the service angle: cold-  *)
(* connection latency with and without a family-backed server cache.   *)
(* Emits BENCH_e21.json.                                               *)
(* ------------------------------------------------------------------ *)

type e21_row = {
  e21_dialect : string;
  e21_cold_ms : float;
  e21_family_ms : float;
  e21_speedup : float;
}

let e21_render (g : Core.generated) =
  ( Fmt.str "%a" Grammar.Cfg.pp g.Core.grammar,
    g.Core.tokens,
    g.Core.sequence,
    Fmt.str "%a" Parser_gen.Engine.pp_summary (Core.dispatch_summary g) )

let e21_generate name how =
  let d, _ = dialect name in
  let result =
    match how with
    | `Cold -> Core.generate_dialect d
    | `Family -> Core.generate_family_dialect d
  in
  match result with
  | Ok g -> g
  | Error e -> Fmt.failwith "e21 %s: %a" name Core.pp_error e

(* Best-of-[repeats] wall time, so one unlucky GC pause doesn't decide a
   headline ratio. *)
let e21_time ~repeats f =
  let rec go best i =
    if i = 0 then best
    else begin
      let t0 = now () in
      ignore (Sys.opaque_identity (f ()));
      go (min best ((now () -. t0) *. 1e3)) (i - 1)
    end
  in
  go infinity (max 1 repeats)

let e21_row ~repeats name =
  (* The hard gate first: the family product must render byte-identically
     to the cold product (grammar, token set, composition sequence,
     dispatch classification). *)
  if e21_render (e21_generate name `Cold) <> e21_render (e21_generate name `Family)
  then Fmt.failwith "e21 %s: family product differs from cold pipeline" name;
  let cold = e21_time ~repeats (fun () -> e21_generate name `Cold) in
  let family = e21_time ~repeats (fun () -> e21_generate name `Family) in
  {
    e21_dialect = name;
    e21_cold_ms = cold;
    e21_family_ms = family;
    e21_speedup = cold /. family;
  }

(* Cold-connection latency: a fresh cache per server, so every first hello
   pays a miss — resolved by the cold pipeline or by the family artifact. *)
let e21_serve_connect ~family names =
  let cache = Service.Cache.create () in
  Service.Cache.use_family cache family;
  let server =
    match Service.Server.start ~workers:2 ~cache (Wire.Tcp ("127.0.0.1", 0)) with
    | Ok s -> s
    | Error msg -> Fmt.failwith "e21: %s" msg
  in
  Fun.protect ~finally:(fun () -> Service.Server.stop server) @@ fun () ->
  let addr = Service.Server.address server in
  List.map
    (fun name ->
      let t0 = now () in
      (match Service.Client.connect ~selection:(Wire.Dialect name) addr with
      | Ok (client, _) -> Service.Client.close client
      | Error e -> Fmt.failwith "e21 connect %s: %a" name Wire.pp_error e);
      (name, (now () -. t0) *. 1e3))
    names

let write_e21_json ~build_ms rows connect_rows =
  let oc = open_out "BENCH_e21.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"e21\",\n";
  p "  \"basis\": \"family artifact built once per process; per-dialect \
     instantiation (mask/replay + interned LL(k) classification) vs cold \
     compose+generate, best of 3; cold-connection latency against sqlpl \
     serve with a fresh cache\",\n";
  p "  \"family_build_ms\": %.2f,\n" build_ms;
  p "  \"rows\": [\n";
  List.iteri
    (fun i row ->
      p
        "    {\"dialect\": %S, \"cold_ms\": %.2f, \"family_ms\": %.2f, \
         \"speedup\": %.1f}%s\n"
        row.e21_dialect row.e21_cold_ms row.e21_family_ms row.e21_speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n  \"serve_cold_connect\": [\n";
  List.iteri
    (fun i (name, plain_ms, family_ms) ->
      p
        "    {\"dialect\": %S, \"plain_ms\": %.2f, \"family_ms\": %.2f}%s\n"
        name plain_ms family_ms
        (if i = List.length connect_rows - 1 then "" else ","))
    connect_rows;
  p "  ]\n}\n";
  close_out oc

let report_e21 ?(smoke = false) () =
  pf "\n== E21: family-based compilation (one artifact, cheap products) ==\n";
  let build_ms =
    e21_time ~repeats:(if smoke then 1 else 3) (fun () ->
        Family.build ~start:Sql.Model.start_symbol Sql.Model.model
          Sql.Model.registry)
  in
  ignore (Core.family ());
  let names =
    if smoke then [ "embedded"; "analytics" ]
    else
      List.map
        (fun ((d : Dialects.Dialect.t), _) -> d.name)
        generated_dialects
  in
  let repeats = if smoke then 1 else 3 in
  let rows = List.map (e21_row ~repeats) names in
  pf "family build: %.2f ms (shared by every product)\n" build_ms;
  pf "%-10s %12s %12s %9s\n" "dialect" "cold ms" "family ms" "speedup";
  List.iter
    (fun row ->
      pf "%-10s %12.2f %12.2f %8.1fx\n" row.e21_dialect row.e21_cold_ms
        row.e21_family_ms row.e21_speedup)
    rows;
  pf "(every family product gated byte-identical to the cold pipeline)\n";
  let plain = e21_serve_connect ~family:false names in
  let famc = e21_serve_connect ~family:true names in
  let connect_rows =
    List.map2 (fun (n, p) (_, f) -> (n, p, f)) plain famc
  in
  pf "%-10s %15s %17s\n" "dialect" "cold connect ms" "family connect ms";
  List.iter
    (fun (n, p, f) -> pf "%-10s %15.2f %17.2f\n" n p f)
    connect_rows;
  if not smoke then begin
    write_e21_json ~build_ms rows connect_rows;
    pf "(wrote BENCH_e21.json)\n"
  end

(* ------------------------------------------------------------------ *)
(* Timed series (Bechamel)                                             *)
(* ------------------------------------------------------------------ *)

(* E8: composition + parser generation time per dialect. *)
let bench_e8 =
  List.map
    (fun ((d : Dialects.Dialect.t), _) ->
      Test.make
        ~name:(Printf.sprintf "E8 compose+generate %s" d.name)
        (Staged.stage (fun () ->
             match Core.generate_dialect d with
             | Ok g -> ignore (Sys.opaque_identity g)
             | Error e -> Fmt.failwith "%a" Core.pp_error e)))
    generated_dialects

(* E9: parse throughput — each dialect parser on its own workload, and the
   full parser on the same workload (the tailored parser should win). *)
let parse_workload (g : Core.generated) queries () =
  List.iter
    (fun sql ->
      match Core.parse_cst g sql with
      | Ok cst -> ignore (Sys.opaque_identity cst)
      | Error e -> Fmt.failwith "parse %S: %a" sql Core.pp_error e)
    queries

let bench_e9 =
  List.concat_map
    (fun ((d : Dialects.Dialect.t), g) ->
      if d.name = "full" then []
      else
        let queries = Workloads.queries_for d.name in
        [
          Test.make
            ~name:(Printf.sprintf "E9 parse %s/%s" d.name d.name)
            (Staged.stage (parse_workload g queries));
          Test.make
            ~name:(Printf.sprintf "E9 parse full/%s" d.name)
            (Staged.stage (parse_workload full_parser queries));
        ])
    generated_dialects

(* E10: scanner throughput, tailored vs. full token set. *)
let bench_e10 =
  let scan scanner () =
    match Lexing_gen.Scanner.scan_tokens scanner Workloads.scanner_input with
    | Ok tokens -> ignore (Sys.opaque_identity (Array.length tokens))
    | Error e -> Fmt.failwith "%a" Lexing_gen.Scanner.pp_error e
  in
  let tailored = Lexing_gen.Scanner.create (snd (dialect "embedded")).Core.tokens in
  let full = Lexing_gen.Scanner.create full_parser.Core.tokens in
  [
    Test.make ~name:"E10 scan embedded" (Staged.stage (scan tailored));
    Test.make ~name:"E10 scan full" (Staged.stage (scan full));
  ]

(* E11: end-to-end parse+execute workload on the engine (TinySQL-style
   sensor aggregation), through the tailored and the full front-end. *)
let engine_workload g () =
  let s = Core.session g in
  let run sql =
    match Core.run s sql with
    | Ok outcome -> ignore (Sys.opaque_identity outcome)
    | Error e -> Fmt.failwith "run %S: %a" sql Core.pp_error e
  in
  List.iter run Workloads.engine_setup;
  List.iter run (Workloads.engine_inserts 64);
  List.iter run Workloads.engine_queries

let bench_e11 =
  (* The tinysql dialect cannot CREATE/INSERT; use the embedded dialect
     extended with aggregation-ish analytics for the tailored side. *)
  [
    Test.make ~name:"E11 run workload full" (Staged.stage (engine_workload full_parser));
    Test.make ~name:"E11 run workload analytics"
      (Staged.stage (engine_workload (snd (dialect "analytics"))));
  ]

(* E12: feature-model analyses. *)
let bench_e12 =
  let full_config = Feature.Config.full Sql.Model.model in
  let tiny_config = (fst (dialect "tinysql")).Dialects.Dialect.config in
  [
    Test.make ~name:"E12 validate full config"
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (Sql.Model.validate full_config))));
    Test.make ~name:"E12 validate tinysql config"
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (Sql.Model.validate tiny_config))));
    Test.make ~name:"E12 count products"
      (Staged.stage (fun () ->
           ignore
             (Sys.opaque_identity
                (Feature.Count.products Sql.Model.model.Feature.Model.concept))));
    Test.make ~name:"E12 close seed config"
      (Staged.stage (fun () ->
           ignore
             (Sys.opaque_identity
                (Sql.Model.close (Feature.Config.of_names [ "Epoch Duration"; "Where" ])))));
  ]

(* E13 (ablation): the engine's design choices — result memoization and
   FIRST-set pruning — measured on the embedded workload plus a
   nested-parenthesis stress statement. Disabling either never changes the
   accepted language, only the cost. *)
let bench_e13 =
  let d = fst (dialect "analytics") in
  let grammar =
    match Sql.Model.compose d.Dialects.Dialect.config with
    | Ok out -> out
    | Error e -> Fmt.failwith "%a" Compose.Composer.pp_error e
  in
  let variant ~memoize ~prune =
    match
      Parser_gen.Engine.generate ~memoize ~prune grammar.Compose.Composer.grammar
    with
    | Ok p -> p
    | Error e -> Fmt.failwith "%a" Parser_gen.Engine.pp_gen_error e
  in
  let scanner = Lexing_gen.Scanner.create grammar.Compose.Composer.tokens in
  let nested =
    (* Moderately nested parenthesized conditions: the shape that punishes
       naive backtracking. *)
    let rec wrap n acc = if n = 0 then acc else wrap (n - 1) ("(" ^ acc ^ ")") in
    "SELECT a FROM t WHERE " ^ wrap 8 "a = 1 AND b = 2"
  in
  let workload = nested :: Workloads.queries_for "analytics" in
  let tokens =
    List.map
      (fun sql ->
        match Lexing_gen.Scanner.scan_tokens scanner sql with
        | Ok ts -> Array.to_list ts
        | Error e -> Fmt.failwith "%a" Lexing_gen.Scanner.pp_error e)
      workload
  in
  let parse_all p () =
    List.iter
      (fun ts ->
        match Parser_gen.Engine.parse p ts with
        | Ok cst -> ignore (Sys.opaque_identity cst)
        | Error e -> Fmt.failwith "%a" Parser_gen.Engine.pp_parse_error e)
      tokens
  in
  [
    Test.make ~name:"E13 memo+prune (default)"
      (Staged.stage (parse_all (variant ~memoize:true ~prune:true)));
    Test.make ~name:"E13 memo only"
      (Staged.stage (parse_all (variant ~memoize:true ~prune:false)));
    Test.make ~name:"E13 prune only"
      (Staged.stage (parse_all (variant ~memoize:false ~prune:true)));
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                      *)
(* ------------------------------------------------------------------ *)

let run_benchmarks tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  pf "\n%-36s %16s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      List.iter
        (fun tst ->
          let results = Benchmark.run cfg instances tst in
          let estimate = Analyze.one ols Instance.monotonic_clock results in
          let nanos =
            match Analyze.OLS.estimates estimate with
            | Some [ t ] -> t
            | _ -> nan
          in
          let name = Test.Elt.name tst in
          if nanos >= 1e9 then pf "%-36s %13.3f s\n" name (nanos /. 1e9)
          else if nanos >= 1e6 then pf "%-36s %12.3f ms\n" name (nanos /. 1e6)
          else if nanos >= 1e3 then pf "%-36s %12.3f us\n" name (nanos /. 1e3)
          else pf "%-36s %12.1f ns\n" name nanos)
        (Test.elements test))
    tests

let () =
  pf "sqlpl benchmark harness — reproduction of \"Generating Highly \
      Customizable SQL Parsers\" (EDBT'08 SETMDM)\n";
  (* `bench/main.exe e15` (or any experiment name below) runs just that
     report; no argument runs the full harness. *)
  match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
  | Some "e1" -> report_e1 ()
  | Some "e6" -> report_e6 ()
  | Some "e7" ->
    report_e7 ();
    report_e7_sweep ()
  | Some "e14" -> report_e14 ()
  | Some "e15" -> report_e15 ()
  | Some "e15-smoke" -> report_e15_smoke ()
  | Some "e16" -> report_e16 ()
  | Some "e16-smoke" ->
    (* Reduced E16 wired into `dune runtest`: exercises the domain-sharded
       batch path end-to-end without timing-dependent assertions. *)
    report_e16 ~smoke:true ()
  | Some "e17" -> report_e17 ()
  | Some "e17-smoke" -> report_e17 ~smoke:true ()
  | Some "e18" -> report_e18 ()
  | Some "e18-smoke" -> report_e18 ~smoke:true ()
  | Some "e19" -> report_e19 ()
  | Some "e19-smoke" -> report_e19 ~smoke:true ()
  | Some "e20" -> report_e20 ()
  | Some "e20-smoke" -> report_e20 ~smoke:true ()
  | Some "e21" -> report_e21 ()
  | Some "e21-smoke" -> report_e21 ~smoke:true ()
  | Some other ->
    Fmt.failwith
      "unknown experiment %S (try e1 e6 e7 e14 e15 e16 e17 e18 e19 e20 e21)"
      other
  | None ->
    report_e1 ();
    report_e6 ();
    report_e7 ();
    report_e7_sweep ();
    report_e14 ();
    report_e15 ();
    report_e16 ();
    report_e17 ();
    report_e18 ();
    report_e19 ();
    report_e20 ();
    report_e21 ();
    pf "\n== E8-E13: timed series ==\n";
    run_benchmarks
      (bench_e8 @ bench_e9 @ bench_e10 @ bench_e11 @ bench_e12 @ bench_e13)
