(* Quickstart: the paper's §3.2 worked example.

   "Suppose that we want to create a parser for the SELECT statement in
   SQL:2003 represented by the Query Specification feature [...] composing
   the sub-grammars for the Query Specification feature, the optional Set
   Quantifier feature and the optional Where feature [...] gives a grammar
   which can essentially parse a SELECT statement with a single column from
   a single table with optional set quantifier (DISTINCT or ALL) and
   optional where clause."

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The feature instance description: pick features off the diagrams.
        [close] pulls in parents, mandatory children and required features
        (selecting "Where" requires a predicate; we pick equality). *)
  let selection =
    Sql.Model.close
      (Feature.Config.of_names
         [
           "Query Specification"; "Set Quantifier"; "All"; "Distinct";
           "Where"; "Comparison Predicate"; "Equals";
         ])
  in
  Printf.printf "Feature instance description (%d features):\n  %s\n\n"
    (Feature.Config.cardinal selection)
    (String.concat ", " (Feature.Config.to_names selection));

  (* 2. Compose the sub-grammars and generate the parser. *)
  let parser =
    match Core.generate ~label:"minimal-select" selection with
    | Ok g -> g
    | Error e -> Fmt.failwith "%a" Core.pp_error e
  in
  Printf.printf "Composed grammar (%d rules, %d tokens):\n\n%s\n"
    (Grammar.Cfg.rule_count parser.Core.grammar)
    (List.length parser.Core.tokens)
    (Grammar.Printer.to_ebnf parser.Core.grammar);

  (* 3. The parser accepts precisely the selected subset. *)
  let show sql =
    Printf.printf "  %-45s %s\n" sql
      (if Core.accepts parser sql then "accepted" else "rejected")
  in
  print_endline "Parsing with the tailored parser:";
  show "SELECT a FROM t";
  show "SELECT DISTINCT a FROM t";
  show "SELECT ALL a FROM t WHERE a = b";
  show "SELECT a, b FROM t";          (* multiple columns not selected *)
  show "SELECT a FROM t WHERE a < b"; (* only equality was selected *)
  show "SELECT a FROM t ORDER BY a";  (* ORDER BY not selected *)

  (* 4. The same pipeline, one feature richer: add Multiple Select
        Sublists — the paper's sublist/complex-list composition. *)
  let wider =
    Sql.Model.close
      (Feature.Config.union selection
         (Feature.Config.of_names [ "Multiple Select Sublists" ]))
  in
  let parser2 =
    match Core.generate ~label:"minimal+lists" wider with
    | Ok g -> g
    | Error e -> Fmt.failwith "%a" Core.pp_error e
  in
  print_endline "\nAfter adding the 'Multiple Select Sublists' feature:";
  Printf.printf "  %-45s %s\n" "SELECT a, b FROM t"
    (if Core.accepts parser2 "SELECT a, b FROM t" then "accepted" else "rejected")
