(* Tailor-made data management for an embedded device (the FAME-DBMS
   motivation the paper belongs to).

   An embedded deployment should carry only the SQL it uses: this example
   compares the footprint of every dialect's generated front-end, emits the
   standalone OCaml parser a firmware build would vendor, and runs a small
   device workload (configuration store + event log) on the embedded
   dialect.

   Run with: dune exec examples/embedded_dbms.exe *)

let () =
  print_endline "-- front-end footprint per dialect --";
  Printf.printf "%-10s %8s %6s %7s %9s %16s\n" "dialect" "features" "rules"
    "tokens" "keywords" "emitted source";
  List.iter
    (fun (d : Dialects.Dialect.t) ->
      match Core.generate_dialect d with
      | Error e -> Fmt.failwith "%a" Core.pp_error e
      | Ok g ->
        let scanner = Lexing_gen.Scanner.create g.Core.tokens in
        Printf.printf "%-10s %8d %6d %7d %9d %13d B\n" d.name
          (Feature.Config.cardinal g.Core.config)
          (Grammar.Cfg.rule_count g.Core.grammar)
          (List.length g.Core.tokens)
          (Lexing_gen.Scanner.keyword_count scanner)
          (String.length (Core.emit_ocaml_parser g)))
    Dialects.Dialect.all;

  let embedded =
    match Core.generate_dialect Dialects.Dialect.embedded with
    | Ok g -> g
    | Error e -> Fmt.failwith "%a" Core.pp_error e
  in

  print_endline "\n-- device workload (configuration store + event ring) --";
  let session = Core.session embedded in
  let exec sql =
    match Core.run session sql with
    | Ok outcome -> outcome
    | Error e -> Fmt.failwith "%S: %a" sql Core.pp_error e
  in
  ignore
    (exec
       "CREATE TABLE config (cfg_key VARCHAR(24) PRIMARY KEY, cfg_val VARCHAR(64) NOT NULL)");
  ignore
    (exec
       "CREATE TABLE events (seq INTEGER PRIMARY KEY, level INTEGER NOT NULL, msg VARCHAR(48) DEFAULT '')");
  ignore
    (exec
       "INSERT INTO config (cfg_key, cfg_val) VALUES ('wifi.ssid', 'plant-7'), ('sample.hz', '10'), ('fw.rev', '2.4.1')");
  for i = 1 to 40 do
    ignore
      (exec
         (Printf.sprintf
            "INSERT INTO events (seq, level, msg) VALUES (%d, %d, 'event-%d')" i
            (i mod 4) i))
  done;
  (* Ring-buffer style retention: keep the newest 25 events. *)
  ignore (exec "DELETE FROM events WHERE seq <= 15");

  let show sql =
    Printf.printf "embedded> %s\n" sql;
    match exec sql with
    | Engine.Executor.Rows rs ->
      List.iter
        (fun row ->
          Printf.printf "  %s\n"
            (String.concat " | " (List.map Engine.Value.to_string row)))
        rs.Engine.Executor.rows
    | Engine.Executor.Affected n -> Printf.printf "  %d row(s)\n" n
    | Engine.Executor.Done msg -> Printf.printf "  %s\n" msg
  in
  show "SELECT cfg_val FROM config WHERE cfg_key = 'sample.hz'";
  show "SELECT seq, msg FROM events WHERE level >= 3 ORDER BY seq DESC LIMIT 3";
  ignore (exec "UPDATE config SET cfg_val = '25' WHERE cfg_key = 'sample.hz'");
  show "SELECT cfg_key, cfg_val FROM config ORDER BY cfg_key ASC";

  (* Device code uses prepared statements: parse once conceptually, bind per
     lookup (the "Dynamic Parameters" feature). *)
  print_endline "\n-- prepared lookups --";
  List.iter
    (fun key ->
      match
        Core.run_prepared session "SELECT cfg_val FROM config WHERE cfg_key = ?"
          [ Engine.Value.Str key ]
      with
      | Ok (Engine.Executor.Rows { rows = [ [ v ] ]; _ }) ->
        Printf.printf "  %-12s -> %s\n" key (Engine.Value.to_string v)
      | Ok _ -> Printf.printf "  %-12s -> (not set)\n" key
      | Error e -> Printf.printf "  %-12s -> error: %s\n" key (Fmt.str "%a" Core.pp_error e))
    [ "sample.hz"; "fw.rev"; "missing.key" ];

  (* Field diagnostics: the EXPLAIN extension describes the evaluation
     strategy without running the query. *)
  print_endline "\n-- EXPLAIN (diagnostics extension) --";
  show "EXPLAIN SELECT seq, msg FROM events WHERE level >= 3 ORDER BY seq DESC LIMIT 3";

  (* What the firmware build would vendor: a dependency-free parser module
     generated from exactly these features. *)
  let source = Core.emit_ocaml_parser embedded in
  let first_lines =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 6) (String.split_on_char '\n' source))
  in
  Printf.printf
    "\n-- emitted firmware parser (first lines of %d bytes) --\n%s\n"
    (String.length source) first_lines
