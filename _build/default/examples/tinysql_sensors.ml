(* TinySQL over a simulated sensor network.

   TinyDB's TinySQL (the paper's motivating scaled-down dialect) restricts
   SQL — single table, no aliases, no ORDER BY — and extends it with
   acquisitional clauses (EPOCH DURATION / SAMPLE PERIOD). This example:

   1. generates the TinySQL parser from its feature configuration;
   2. simulates a 16-mote sensor field feeding a `sensors` table;
   3. runs acquisitional queries epoch by epoch, honouring EPOCH DURATION;
   4. shows that base-station SQL is rejected by the mote's parser.

   Run with: dune exec examples/tinysql_sensors.exe *)

let mote_count = 16

(* Deterministic synthetic sensor field: temperature and light vary by mote
   and epoch (no real hardware — see DESIGN.md on substitutions). *)
let sample ~epoch ~nodeid =
  let temp = 18 + ((nodeid * 7 + epoch * 3) mod 15) in
  let light = 100 + ((nodeid * 131 + epoch * 17) mod 900) in
  (temp, light)

let () =
  (* The mote firmware carries only the TinySQL front-end... *)
  let tinysql =
    match Core.generate_dialect Dialects.Dialect.tinysql with
    | Ok g -> g
    | Error e -> Fmt.failwith "%a" Core.pp_error e
  in
  Printf.printf "TinySQL parser: %d rules, %d tokens (full SQL: %d rules)\n\n"
    (Grammar.Cfg.rule_count tinysql.Core.grammar)
    (List.length tinysql.Core.tokens)
    127;

  (* ... while the simulation harness uses a full front-end to maintain the
     sensors table the acquisitional queries read. *)
  let harness =
    match Core.generate_dialect Dialects.Dialect.full with
    | Ok g -> Core.session g
    | Error e -> Fmt.failwith "%a" Core.pp_error e
  in
  let admin sql =
    match Core.run harness sql with
    | Ok _ -> ()
    | Error e -> Fmt.failwith "admin %S: %a" sql Core.pp_error e
  in
  admin "CREATE TABLE sensors (nodeid INTEGER, ep INTEGER, temp INTEGER, light INTEGER)";

  let collect_epoch epoch =
    admin "DELETE FROM sensors";
    for nodeid = 0 to mote_count - 1 do
      let temp, light = sample ~epoch ~nodeid in
      admin
        (Printf.sprintf
           "INSERT INTO sensors (nodeid, ep, temp, light) VALUES (%d, %d, %d, %d)"
           nodeid epoch temp light)
    done
  in

  (* An acquisitional query, parsed by the MOTE's parser; its epoch clause
     drives the sampling loop. *)
  let acquire sql =
    Printf.printf "tinysql> %s\n" sql;
    match Core.parse_statement tinysql sql with
    | Error e -> Printf.printf "  rejected by mote parser: %s\n\n" (Fmt.str "%a" Core.pp_error e)
    | Ok (Sql_ast.Ast.Query_stmt q) ->
      let epochs =
        match q.Sql_ast.Ast.epoch with
        | Some { Sql_ast.Ast.duration = Some d; _ } -> max 1 (d / 512)
        | _ -> 1
      in
      for epoch = 1 to epochs do
        collect_epoch epoch;
        (* Execute the mote-parsed query on the collected samples. *)
        match Engine.Database.query (Core.database harness) q with
        | Ok rs ->
          Printf.printf "  epoch %d: %s\n" epoch
            (String.concat "; "
               (List.map
                  (fun row ->
                    String.concat "," (List.map Engine.Value.to_string row))
                  rs.Engine.Executor.rows))
        | Error msg -> Printf.printf "  epoch %d: error %s\n" epoch msg
      done;
      print_newline ()
    | Ok _ -> print_endline "  not a query\n"
  in

  acquire "SELECT COUNT(*), AVG(temp) FROM sensors EPOCH DURATION 1024";
  acquire
    "SELECT nodeid, AVG(light) FROM sensors WHERE temp > 25 GROUP BY nodeid \
     HAVING AVG(light) > 500 EPOCH DURATION 1536 SAMPLE PERIOD 64";
  acquire "SELECT MAX(temp), MIN(temp) FROM sensors EPOCH DURATION 512";

  (* Base-station SQL has no business on a mote. *)
  print_endline "Statements outside the TinySQL feature selection:";
  List.iter
    (fun sql ->
      Printf.printf "  %-60s %s\n" sql
        (if Core.accepts tinysql sql then "ACCEPTED (bug!)" else "rejected"))
    [
      "SELECT s.nodeid AS n FROM sensors AS s";
      "SELECT nodeid FROM sensors ORDER BY nodeid";
      "SELECT a FROM t INNER JOIN u ON t.x = u.x";
      "CREATE TABLE intruder (a INTEGER)";
      "DROP TABLE sensors";
    ]
