(* SCQL on a smart card.

   ISO 7816-7 defines Structured Card Query Language: a tiny SQL for
   interindustry smart cards (the paper cites it as the standardized
   scaled-down SQL). This example plays an electronic-purse card: the SCQL
   front-end creates the purse table, records security attributes with
   GRANT/REVOKE, and serves debit/credit transactions — while everything
   beyond the card's feature selection is rejected at the parser.

   Run with: dune exec examples/smartcard_scql.exe *)

let () =
  let card =
    match Core.generate_dialect Dialects.Dialect.scql with
    | Ok g -> Core.session g
    | Error e -> Fmt.failwith "%a" Core.pp_error e
  in
  let exec sql =
    Printf.printf "scql> %s\n" sql;
    match Core.run card sql with
    | Ok (Engine.Executor.Rows rs) ->
      List.iter
        (fun row ->
          Printf.printf "      %s\n"
            (String.concat " | " (List.map Engine.Value.to_string row)))
        rs.Engine.Executor.rows
    | Ok (Engine.Executor.Affected n) -> Printf.printf "      %d row(s)\n" n
    | Ok (Engine.Executor.Done msg) -> Printf.printf "      %s\n" msg
    | Error e -> Printf.printf "      card error: %s\n" (Fmt.str "%a" Core.pp_error e)
  in

  print_endline "-- card personalization --";
  exec "CREATE TABLE purse (id INTEGER NOT NULL, holder VARCHAR(30), balance INTEGER)";
  exec "INSERT INTO purse (id, holder, balance) VALUES (1, 'alice', 500)";
  exec "INSERT INTO purse (id, holder, balance) VALUES (2, 'bob', 120)";
  exec "GRANT SELECT ON TABLE purse TO PUBLIC";
  exec "GRANT UPDATE ON TABLE purse TO terminal";

  print_endline "\n-- point-of-sale transaction: alice pays 75 --";
  exec "SELECT balance FROM purse WHERE id = 1";
  exec "UPDATE purse SET balance = balance - 75 WHERE id = 1";
  exec "SELECT balance FROM purse WHERE id = 1";

  print_endline "\n-- terminal de-provisioning --";
  exec "REVOKE UPDATE ON TABLE purse FROM terminal";

  (* The recorded security attributes live in the catalog. *)
  let catalog = Engine.Database.catalog (Core.database card) in
  Printf.printf "\nsecurity attributes on card: %d grant record(s)\n"
    (List.length (Engine.Catalog.grants catalog));

  (* Grants are enforced per session user: after de-provisioning, the
     terminal can still read (PUBLIC) but no longer debit. *)
  print_endline "\n-- terminal session after de-provisioning --";
  Engine.Database.set_user (Core.database card) (Some "terminal");
  exec "SELECT balance FROM purse WHERE id = 2";
  exec "UPDATE purse SET balance = 0 WHERE id = 2";
  Engine.Database.set_user (Core.database card) None;

  (* The card's parser is the security boundary for syntax: anything beyond
     the interindustry command set does not even parse. *)
  print_endline "\n-- attack surface: statements outside SCQL --";
  let probe sql =
    Printf.printf "  %-55s %s\n" sql
      (match Core.run card sql with
       | Ok _ -> "EXECUTED (bug!)"
       | Error (Core.Lex_error _) -> "rejected (unknown token)"
       | Error (Core.Parse_error _) -> "rejected (no such syntax)"
       | Error _ -> "rejected")
  in
  probe "SELECT COUNT(balance) FROM purse";
  probe "SELECT p.balance FROM purse p, purse q";
  probe "SELECT balance FROM purse ORDER BY balance";
  probe "CREATE VIEW rich AS SELECT holder FROM purse";
  probe "SELECT balance FROM purse WHERE id IN (1, 2)"
