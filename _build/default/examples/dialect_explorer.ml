(* Dialect explorer: the product line at a glance.

   Renders the paper's two figures, shows the §3.2 composition trace (which
   composition rule fired for each fragment of the minimal dialect), and
   prints the dialect x workload acceptance matrix.

   Run with: dune exec examples/dialect_explorer.exe *)

let probes =
  [
    ("select", "SELECT a FROM t");
    ("multi-col", "SELECT a, b FROM t");
    ("alias", "SELECT a AS x FROM t");
    ("order-by", "SELECT a FROM t ORDER BY a DESC");
    ("join", "SELECT a FROM t INNER JOIN u ON t.k = u.k");
    ("aggregate", "SELECT COUNT(*) FROM t GROUP BY a");
    ("epoch", "SELECT a FROM sensors EPOCH DURATION 1024");
    ("insert", "INSERT INTO t (a) VALUES (1)");
    ("create", "CREATE TABLE t (a INTEGER)");
    ("grant", "GRANT SELECT ON TABLE t TO PUBLIC");
    ("subquery", "SELECT a FROM t WHERE a IN (SELECT b FROM u)");
    ("txn", "COMMIT WORK");
  ]

let () =
  (* The paper's figures, regenerated from the model. *)
  print_endline "== Figure 1: Query Specification feature diagram ==";
  (match Sql.Model.diagram "Query Specification" with
   | Some d -> print_string (Feature.Diagram.render d)
   | None -> assert false);
  print_endline "\n== Figure 2: Table Expression feature diagram ==";
  (match Sql.Model.diagram "Table Expression" with
   | Some d -> print_string (Feature.Diagram.render d)
   | None -> assert false);

  (* Composition trace of the worked example: which of the paper's rules
     fired per composed fragment rule. *)
  print_endline "\n== Composition trace of the minimal-SELECT dialect ==";
  let config = Dialects.Dialect.minimal_select.Dialects.Dialect.config in
  List.iter
    (fun (e : Compose.Composer.trace_event) ->
      match e.outcome with
      | None -> Printf.printf "%-28s introduces <%s>\n" e.feature e.lhs
      | Some outcome ->
        Printf.printf "%-28s %s into <%s>\n" e.feature
          (Fmt.str "%a" Compose.Rules.pp_outcome outcome)
          e.lhs)
    (Compose.Composer.trace Sql.Model.model Sql.Model.registry config);

  (* Acceptance matrix: every dialect against every probe. *)
  print_endline "\n== Dialect x construct acceptance matrix ==";
  let generated =
    List.map
      (fun (d : Dialects.Dialect.t) ->
        match Core.generate_dialect d with
        | Ok g -> (d.name, g)
        | Error e -> Fmt.failwith "%a" Core.pp_error e)
      Dialects.Dialect.all
  in
  Printf.printf "%-11s" "";
  List.iter (fun (name, _) -> Printf.printf "%-10s" name) generated;
  print_newline ();
  List.iter
    (fun (label, sql) ->
      Printf.printf "%-11s" label;
      List.iter
        (fun (_, g) -> Printf.printf "%-10s" (if Core.accepts g sql then "yes" else "-"))
        generated;
      print_newline ())
    probes
