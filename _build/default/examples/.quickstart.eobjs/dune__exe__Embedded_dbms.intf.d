examples/embedded_dbms.mli:
