examples/dialect_explorer.ml: Compose Core Dialects Feature Fmt List Printf Sql
