examples/smartcard_scql.mli:
