examples/quickstart.mli:
