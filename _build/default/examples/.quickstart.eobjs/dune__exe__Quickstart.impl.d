examples/quickstart.ml: Core Feature Fmt Grammar List Printf Sql String
