examples/smartcard_scql.ml: Core Dialects Engine Fmt List Printf String
