examples/embedded_dbms.ml: Core Dialects Engine Feature Fmt Grammar Lexing_gen List Printf String
