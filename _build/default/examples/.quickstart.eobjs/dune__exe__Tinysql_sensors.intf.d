examples/tinysql_sensors.mli:
