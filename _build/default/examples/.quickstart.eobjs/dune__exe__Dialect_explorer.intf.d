examples/dialect_explorer.mli:
