examples/tinysql_sensors.ml: Core Dialects Engine Fmt Grammar List Printf Sql_ast String
