(** Concrete syntax trees.

    A generated parser produces a CST whose inner nodes are labelled with
    non-terminal names and whose leaves are the matched tokens. Semantic
    analyses (e.g. the SQL lowering) navigate the CST by label, which keeps
    them robust against the exact shape a particular feature composition
    produced. *)

type t =
  | Node of string * t list  (** non-terminal name and children in order *)
  | Leaf of Lexing_gen.Token.t

val label : t -> string
(** [label t] is the node's non-terminal name, or the token kind of a
    leaf. *)

val children : t -> t list
(** Children of a node; [[]] for leaves. *)

val child : t -> string -> t option
(** [child t lbl] is the first direct child with the given label (node name
    or token kind). *)

val children_labelled : t -> string -> t list
(** All direct children with the given label. *)

val descendant : t -> string -> t option
(** First node with the given label in a pre-order walk (including [t]
    itself). *)

val token : t -> Lexing_gen.Token.t option
(** The token of a leaf, [None] for nodes. *)

val token_text : t -> string option
(** The text of a leaf token. *)

val first_token : t -> Lexing_gen.Token.t option
(** Leftmost token in the subtree. *)

val tokens : t -> Lexing_gen.Token.t list
(** All tokens of the subtree, in source order. *)

val node_count : t -> int

val pp : t Fmt.t
(** S-expression style rendering, useful in tests and debugging. *)
