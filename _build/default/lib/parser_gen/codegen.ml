let rule_function_name nt = "p_" ^ nt

let emit ?module_doc (g : Grammar.Cfg.t) =
  let buf = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let fresh =
    let counter = ref 0 in
    fun base ->
      incr counter;
      Printf.sprintf "%s_%d" base !counter
  in
  (* Emit statements that parse [seq] appending CSTs to the list ref named
     [dst], at indentation [ind]. *)
  let rec emit_seq ind dst seq =
    List.iter (emit_term ind dst) seq
  and emit_term ind dst term =
    let pad = String.make ind ' ' in
    match term with
    | Grammar.Production.Sym (Grammar.Symbol.Terminal k) ->
      line "%s%s := eat st %S :: !%s;" pad dst k dst
    | Grammar.Production.Sym (Grammar.Symbol.Nonterminal n) ->
      line "%s%s := %s st :: !%s;" pad dst (rule_function_name n) dst
    | Grammar.Production.Opt ts ->
      let local = fresh "opt" in
      line "%s(let %s_saved = st.pos in" pad local;
      line "%s let %s = ref [] in" pad local;
      line "%s match" pad;
      line "%s   (try" pad;
      emit_seq (ind + 6) local ts;
      line "%s      Some !%s" pad local;
      line "%s    with Parse_failure -> st.pos <- %s_saved; None)" pad local;
      line "%s with" pad;
      line "%s | Some made -> %s := made @ !%s" pad dst dst;
      line "%s | None -> ());" pad
    | Grammar.Production.Star ts ->
      let local = fresh "star" in
      line "%s(let %s_continue = ref true in" pad local;
      line "%s while !%s_continue do" pad local;
      line "%s   let %s_saved = st.pos in" pad local;
      line "%s   let %s = ref [] in" pad local;
      line "%s   (try" pad;
      emit_seq (ind + 6) local ts;
      line "%s      if st.pos = %s_saved then %s_continue := false" pad local local;
      line "%s      else %s := !%s @ !%s" pad dst local dst;
      line "%s    with Parse_failure -> st.pos <- %s_saved; %s_continue := false)"
        pad local local;
      line "%s done);" pad
    | Grammar.Production.Plus ts ->
      emit_seq ind dst ts;
      emit_term ind dst (Grammar.Production.Star ts)
    | Grammar.Production.Group alts ->
      let local = fresh "grp" in
      line "%s(let %s_saved = st.pos in" pad local;
      line "%s let %s = ref [] in" pad local;
      line "%s (try" pad;
      emit_alt_chain (ind + 3) local (local ^ "_saved") alts;
      line "%s  with Parse_failure as e -> st.pos <- %s_saved; raise e);" pad local;
      line "%s %s := !%s @ !%s);" pad dst local dst
  (* Emits a unit-typed expression trying the alternatives in order,
     restoring position and partial children between attempts. *)
  and emit_alt_chain ind dst saved alts =
    let pad = String.make ind ' ' in
    match alts with
    | [] -> line "%sraise Parse_failure" pad
    | [ only ] ->
      line "%sbegin" pad;
      emit_seq (ind + 2) dst only;
      line "%s  ()" pad;
      line "%send" pad
    | first :: rest ->
      line "%s(try" pad;
      emit_seq (ind + 3) dst first;
      line "%s   ()" pad;
      line "%s with Parse_failure ->" pad;
      line "%s   st.pos <- %s;" pad saved;
      line "%s   %s := [];" pad dst;
      emit_alt_chain (ind + 3) dst saved rest;
      line "%s)" pad
  in
  let doc =
    Option.value
      ~default:
        "Generated recursive-descent parser. Ordered alternatives with \
         save/restore backtracking; optional and repeated groups are greedy."
      module_doc
  in
  line "(* %s *)" doc;
  line "(* Start symbol: %s. Generated from a composed feature grammar; do not edit. *)" g.start;
  line "";
  line "type token = { kind : string; text : string }";
  line "type tree = Node of string * tree list | Leaf of token";
  line "";
  line "exception Parse_failure";
  line "";
  line "type state = { toks : token array; mutable pos : int }";
  line "";
  line "let look st =";
  line "  if st.pos < Array.length st.toks then st.toks.(st.pos).kind else \"EOF\"";
  line "";
  line "let eat st kind =";
  line "  if String.equal (look st) kind then begin";
  line "    let tok = st.toks.(st.pos) in";
  line "    st.pos <- st.pos + 1;";
  line "    Leaf tok";
  line "  end";
  line "  else raise Parse_failure";
  line "";
  List.iteri
    (fun idx (r : Grammar.Production.t) ->
      let intro = if idx = 0 then "let rec" else "and" in
      line "%s %s st =" intro (rule_function_name r.lhs);
      line "  let children = ref [] in";
      line "  let saved = st.pos in";
      line "  ignore saved;";
      emit_alt_chain 2 "children" "saved" r.alts;
      line "  ;";
      line "  Node (%S, List.rev !children)" r.lhs;
      line "")
    g.rules;
  line "let parse tokens =";
  line "  let st = { toks = Array.of_list tokens; pos = 0 } in";
  line "  let tree = %s st in" (rule_function_name g.start);
  line "  if String.equal (look st) \"EOF\" then tree else raise Parse_failure";
  Buffer.contents buf
