type t =
  | Node of string * t list
  | Leaf of Lexing_gen.Token.t

let label = function
  | Node (l, _) -> l
  | Leaf tok -> tok.Lexing_gen.Token.kind

let children = function
  | Node (_, cs) -> cs
  | Leaf _ -> []

let child t lbl =
  List.find_opt (fun c -> String.equal (label c) lbl) (children t)

let children_labelled t lbl =
  List.filter (fun c -> String.equal (label c) lbl) (children t)

let rec descendant t lbl =
  if String.equal (label t) lbl then Some t
  else
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> descendant c lbl)
      None (children t)

let token = function
  | Leaf tok -> Some tok
  | Node _ -> None

let token_text t = Option.map (fun tok -> tok.Lexing_gen.Token.text) (token t)

let rec first_token = function
  | Leaf tok -> Some tok
  | Node (_, cs) ->
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> first_token c)
      None cs

let rec tokens = function
  | Leaf tok -> [ tok ]
  | Node (_, cs) -> List.concat_map tokens cs

let rec node_count = function
  | Leaf _ -> 1
  | Node (_, cs) -> 1 + List.fold_left (fun n c -> n + node_count c) 0 cs

let rec pp ppf = function
  | Leaf tok -> Lexing_gen.Token.pp ppf tok
  | Node (l, cs) ->
    Fmt.pf ppf "@[<hv 2>(%s%a)@]" l
      Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf "@ %a" pp c))
      cs
