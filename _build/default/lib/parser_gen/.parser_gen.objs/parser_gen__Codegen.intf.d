lib/parser_gen/codegen.mli: Grammar
