lib/parser_gen/engine.ml: Array Cst Fmt Grammar Hashtbl Lexing_gen List Option String
