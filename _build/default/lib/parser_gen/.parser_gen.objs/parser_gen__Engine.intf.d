lib/parser_gen/engine.mli: Cst Fmt Grammar Lexing_gen
