lib/parser_gen/codegen.ml: Buffer Grammar List Option Printf String
