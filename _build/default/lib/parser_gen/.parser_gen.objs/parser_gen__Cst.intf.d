lib/parser_gen/cst.mli: Fmt Lexing_gen
