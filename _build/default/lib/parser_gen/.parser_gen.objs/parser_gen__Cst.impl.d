lib/parser_gen/cst.ml: Fmt Lexing_gen List Option String
