(** Parser generation and execution.

    This module stands in for the paper's use of the ANTLR parser generator:
    {!generate} turns a composed grammar into a parser value (rejecting
    grammars an LL(k) generator would reject — undefined non-terminals, left
    recursion); {!parse} runs it over a token stream, producing a CST.

    The execution strategy is recursive descent with ordered alternatives,
    FIRST-set prediction (the LL(k) fast path) and full backtracking as
    fallback (standing in for ANTLR's syntactic predicates). Optional and
    repeated groups match greedily but are backtracked into when the
    continuation fails. *)

type t

type gen_error =
  | Grammar_problems of Grammar.Cfg.problem list
      (** the grammar is not well-formed (typically an incoherent feature
          selection) *)
  | Left_recursion of string list
      (** non-terminals involved in left recursion *)

val pp_gen_error : gen_error Fmt.t

val generate :
  ?memoize:bool -> ?prune:bool -> Grammar.Cfg.t -> (t, gen_error) result
(** Compile a grammar to a parser. Prediction sets are precomputed here so
    that parsing does no grammar analysis.

    The two flags exist for the ablation benchmarks and default to [true]:
    [memoize] caches each non-terminal's complete derivation set per input
    position (without it, nested constructs re-parse exponentially); [prune]
    skips alternatives whose FIRST set excludes the lookahead token (the
    LL(k) fast path). Disabling either only affects performance, never the
    accepted language. *)

val grammar : t -> Grammar.Cfg.t
val start_symbol : t -> string

type parse_error = {
  pos : Lexing_gen.Token.position;  (** position of the furthest failure *)
  found : string;                   (** token kind found there *)
  expected : string list;           (** token kinds that would have allowed
                                        progress, sorted *)
}

val pp_parse_error : parse_error Fmt.t

val parse :
  ?start:string -> t -> Lexing_gen.Token.t list -> (Cst.t, parse_error) result
(** [parse p tokens] parses a complete token stream (ending in [EOF]) from
    the grammar's start symbol (or [start]). The whole input must be
    consumed. *)

val accepts : ?start:string -> t -> Lexing_gen.Token.t list -> bool
