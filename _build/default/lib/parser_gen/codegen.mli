(** Emission of standalone OCaml parser source code.

    The paper's toolchain emits parser {e source code} (ANTLR generating
    Java). [emit] mirrors that: it renders a composed grammar as a
    self-contained, dependency-free OCaml module implementing a
    recursive-descent parser for it, suitable for vendoring into an embedded
    product that should not carry the composition machinery at run time.

    The emitted parser uses ordered alternatives with save/restore
    backtracking between alternatives and greedy optional/repeated groups
    (PEG-style commitment, slightly stricter than {!Engine.parse}'s full
    backtracking — the difference is documented in the emitted header). *)

val emit : ?module_doc:string -> Grammar.Cfg.t -> string
(** [emit g] is the OCaml source text of the generated parser. The module
    exposes [parse : token list -> tree] and one [parse_<nt>] entry point per
    non-terminal. *)

val rule_function_name : string -> string
(** The generated function name for a non-terminal. *)
