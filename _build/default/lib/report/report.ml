type t = {
  label : string;
  feature_count : int;
  rule_count : int;
  alternative_count : int;
  symbol_count : int;
  token_count : int;
  keyword_count : int;
  punct_count : int;
  statement_classes : string list;
  ll1_conflicts : Grammar.Analysis.conflict list;
  unreachable_rules : string list;
  contributions : (string * int * int) list;
  grammar : Grammar.Cfg.t;
}

let statement_classes (g : Grammar.Cfg.t) =
  match Grammar.Cfg.find g "sql_statement" with
  | None -> []
  | Some rule ->
    List.filter_map
      (fun alt ->
        match alt with
        | [ Grammar.Production.Sym (Grammar.Symbol.Nonterminal nt) ] -> Some nt
        | _ -> None)
      rule.Grammar.Production.alts

let build (g : Core.generated) =
  let scanner = Lexing_gen.Scanner.create g.Core.tokens in
  let grammar = g.Core.grammar in
  {
    label = g.Core.label;
    feature_count = Feature.Config.cardinal g.Core.config;
    rule_count = Grammar.Cfg.rule_count grammar;
    alternative_count = Grammar.Cfg.alternative_count grammar;
    symbol_count = Grammar.Cfg.symbol_count grammar;
    token_count = List.length g.Core.tokens;
    keyword_count = Lexing_gen.Scanner.keyword_count scanner;
    punct_count = Lexing_gen.Scanner.punct_count scanner;
    statement_classes = statement_classes grammar;
    grammar;
    ll1_conflicts = Grammar.Analysis.ll1_conflicts grammar;
    unreachable_rules =
      List.filter_map
        (function
          | Grammar.Cfg.Unreachable_rule nt -> Some nt
          | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start ->
            None)
        (Grammar.Cfg.check grammar);
    contributions =
      List.filter_map
        (fun feature ->
          match Compose.Fragment.find Sql.Model.registry feature with
          | None -> None
          | Some frag ->
            if Compose.Fragment.is_empty frag then None
            else
              Some
                ( feature,
                  List.length frag.Compose.Fragment.rules,
                  List.length frag.Compose.Fragment.tokens ))
        g.Core.sequence;
  }

let pp ppf r =
  Fmt.pf ppf "== grammar report: %s ==@." r.label;
  Fmt.pf ppf "@.-- size --@.";
  Fmt.pf ppf "features     %d@." r.feature_count;
  Fmt.pf ppf "rules        %d@." r.rule_count;
  Fmt.pf ppf "alternatives %d@." r.alternative_count;
  Fmt.pf ppf "symbols      %d@." r.symbol_count;
  Fmt.pf ppf "tokens       %d (%d keywords, %d punctuation)@." r.token_count
    r.keyword_count r.punct_count;
  Fmt.pf ppf "@.-- statement classes --@.";
  (match r.statement_classes with
   | [] -> Fmt.pf ppf "(none)@."
   | cs -> List.iter (fun c -> Fmt.pf ppf "%s@." c) cs);
  Fmt.pf ppf "@.-- determinism --@.";
  Fmt.pf ppf "LL(1) conflicts: %d (resolved by backtracking at parse time)@."
    (List.length r.ll1_conflicts);
  List.iter
    (fun c -> Fmt.pf ppf "  %a@." (Grammar.Analysis.pp_conflict_in r.grammar) c)
    r.ll1_conflicts;
  (match r.unreachable_rules with
   | [] -> ()
   | nts ->
     Fmt.pf ppf "unreachable helper rules: %a@."
       Fmt.(list ~sep:comma string)
       nts);
  Fmt.pf ppf "@.-- feature contributions (composition order) --@.";
  List.iter
    (fun (feature, rules, tokens) ->
      Fmt.pf ppf "%-32s %2d rule(s) %2d token(s)@." feature rules tokens)
    r.contributions

let to_string g = Fmt.str "%a" pp (build g)
