(** Grammar symbols.

    A grammar is built from {e terminal} symbols (token kinds, by convention
    spelled in upper case, e.g. ["SELECT"], ["IDENT"]) and {e non-terminal}
    symbols (syntactic variables, by convention spelled in lower case, e.g.
    ["query_specification"]). *)

type t =
  | Terminal of string      (** a token kind produced by the scanner *)
  | Nonterminal of string   (** a syntactic variable defined by a production *)

val name : t -> string
(** [name s] is the bare name of [s], without its terminal/non-terminal
    classification. *)

val is_terminal : t -> bool
val is_nonterminal : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t
(** [pp] prints terminals verbatim and non-terminals enclosed in angle
    brackets, matching the BNF style used by the SQL standard. *)
