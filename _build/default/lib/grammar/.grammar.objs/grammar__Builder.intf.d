lib/grammar/builder.mli: Cfg Production
