lib/grammar/analysis.ml: Cfg Fmt List Map Option Production Set String Symbol
