lib/grammar/production.ml: Fmt List String Symbol
