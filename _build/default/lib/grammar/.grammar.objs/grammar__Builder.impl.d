lib/grammar/builder.ml: Cfg List Production Symbol
