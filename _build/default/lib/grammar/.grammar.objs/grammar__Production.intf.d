lib/grammar/production.mli: Fmt Symbol
