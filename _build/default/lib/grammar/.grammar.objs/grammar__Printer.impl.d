lib/grammar/printer.ml: Buffer Cfg Fmt List Printf Production String Symbol
