lib/grammar/analysis.mli: Cfg Fmt Map Production Set
