lib/grammar/cfg.mli: Fmt Production
