lib/grammar/symbol.mli: Fmt
