lib/grammar/cfg.ml: Fmt List Production String
