lib/grammar/printer.mli: Cfg
