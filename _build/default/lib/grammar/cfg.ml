type t = {
  start : string;
  rules : Production.t list;
}

(* Merge same-lhs rules by appending alternatives not already present; keeps
   first-occurrence order of both rules and alternatives. *)
let merge_rules rules =
  let add acc (rule : Production.t) =
    let rec insert = function
      | [] -> [ rule ]
      | (r : Production.t) :: rest when String.equal r.lhs rule.lhs ->
        let fresh =
          List.filter
            (fun a -> not (List.exists (Production.alt_equal a) r.alts))
            rule.alts
        in
        { r with alts = r.alts @ fresh } :: rest
      | r :: rest -> r :: insert rest
    in
    insert acc
  in
  List.fold_left add [] rules

let make ~start rules = { start; rules = merge_rules rules }

let find g nt =
  List.find_opt (fun (r : Production.t) -> String.equal r.lhs nt) g.rules

let defined g = List.map (fun (r : Production.t) -> r.lhs) g.rules

let terminals g =
  let add seen n = if List.mem n seen then seen else n :: seen in
  List.rev
    (List.fold_left
       (fun seen r -> List.fold_left add seen (Production.mentioned_terminals r))
       [] g.rules)

let rule_count g = List.length g.rules

let alternative_count g =
  List.fold_left (fun n (r : Production.t) -> n + List.length r.alts) 0 g.rules

let symbol_count g =
  List.fold_left
    (fun n (r : Production.t) ->
      List.fold_left (fun n a -> n + List.length (Production.flatten a)) n r.alts)
    0 g.rules

type problem =
  | Undefined_nonterminal of { nonterminal : string; referenced_from : string }
  | Unreachable_rule of string
  | Undefined_start

let pp_problem ppf = function
  | Undefined_nonterminal { nonterminal; referenced_from } ->
    Fmt.pf ppf "undefined non-terminal <%s> referenced from <%s>" nonterminal
      referenced_from
  | Unreachable_rule nt -> Fmt.pf ppf "rule <%s> unreachable from start" nt
  | Undefined_start -> Fmt.string ppf "start symbol has no defining rule"

let check g =
  let defined_set = defined g in
  let undefined =
    List.concat_map
      (fun (r : Production.t) ->
        List.filter_map
          (fun nt ->
            if List.mem nt defined_set then None
            else
              Some
                (Undefined_nonterminal
                   { nonterminal = nt; referenced_from = r.lhs }))
          (Production.mentioned_nonterminals r))
      g.rules
  in
  let start_problems = if find g g.start = None then [ Undefined_start ] else [] in
  (* Reachability from the start symbol over defined rules. *)
  let rec reach seen nt =
    if List.mem nt seen then seen
    else
      match find g nt with
      | None -> seen
      | Some r ->
        List.fold_left reach (nt :: seen) (Production.mentioned_nonterminals r)
  in
  let reachable = reach [] g.start in
  let unreachable =
    List.filter_map
      (fun nt -> if List.mem nt reachable then None else Some (Unreachable_rule nt))
      defined_set
  in
  start_problems @ undefined @ unreachable

let pp ppf g =
  Fmt.pf ppf "start: <%s>@." g.start;
  List.iter (fun r -> Fmt.pf ppf "%a@." Production.pp r) g.rules
