let to_ebnf (g : Cfg.t) =
  Fmt.str "%a" Cfg.pp g

(* Desugar EBNF constructs into plain BNF by inventing helper rules. Helper
   names are derived from the owning rule and a counter, so output is
   deterministic. *)
let to_bnf (g : Cfg.t) =
  let helpers = ref [] in
  let fresh_name base kind n = Printf.sprintf "%s_%s%d" base kind n in
  let counter = ref 0 in
  let rec desugar_term base = function
    | Production.Sym s -> Production.Sym s
    | Production.Opt ts ->
      incr counter;
      let name = fresh_name base "opt" !counter in
      let body = List.map (desugar_term base) ts in
      helpers := Production.make name [ body; [] ] :: !helpers;
      Production.Sym (Symbol.Nonterminal name)
    | Production.Star ts ->
      incr counter;
      let name = fresh_name base "list" !counter in
      let body = List.map (desugar_term base) ts in
      helpers :=
        Production.make name
          [ body @ [ Production.Sym (Symbol.Nonterminal name) ]; [] ]
        :: !helpers;
      Production.Sym (Symbol.Nonterminal name)
    | Production.Plus ts ->
      incr counter;
      let name = fresh_name base "list1" !counter in
      let body = List.map (desugar_term base) ts in
      helpers :=
        Production.make name
          [ body @ [ Production.Sym (Symbol.Nonterminal name) ]; body ]
        :: !helpers;
      Production.Sym (Symbol.Nonterminal name)
    | Production.Group alts ->
      incr counter;
      let name = fresh_name base "choice" !counter in
      let bodies = List.map (List.map (desugar_term base)) alts in
      helpers := Production.make name bodies :: !helpers;
      Production.Sym (Symbol.Nonterminal name)
  in
  let core =
    List.map
      (fun (r : Production.t) ->
        counter := 0;
        Production.make r.lhs (List.map (List.map (desugar_term r.lhs)) r.alts))
      g.rules
  in
  let all = core @ List.rev !helpers in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : Production.t) ->
      let alt_str a =
        if a = [] then "/* empty */"
        else
          String.concat " "
            (List.map
               (function
                 | Production.Sym s -> Fmt.str "%a" Symbol.pp s
                 | _ -> assert false)
               a)
      in
      Buffer.add_string buf
        (Printf.sprintf "<%s> ::= %s\n" r.lhs
           (String.concat " | " (List.map alt_str r.alts))))
    all;
  Buffer.contents buf

let to_antlr (g : Cfg.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "grammar %s;\n\n" g.start);
  List.iter
    (fun (r : Production.t) ->
      Buffer.add_string buf (Fmt.str "%a ;@." Production.pp r))
    g.rules;
  Buffer.add_string buf "\n// tokens\n";
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf "// %s\n" t))
    (Cfg.terminals g);
  Buffer.contents buf
