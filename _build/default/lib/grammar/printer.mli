(** Rendering composed grammars in external notations.

    The paper hands composed grammars to ANTLR; we render the equivalent
    artifacts as text so a user can inspect — or export — what was
    composed. *)

val to_ebnf : Cfg.t -> string
(** EBNF notation with [\[...\]], [(...)*] and [|], one rule per line. *)

val to_bnf : Cfg.t -> string
(** Plain BNF: optional groups, repetitions and inline choices are desugared
    into fresh helper non-terminals ([x_opt], [x_list], ...), mirroring what
    grammar tools emit. *)

val to_antlr : Cfg.t -> string
(** ANTLR-style grammar file: lower-cased rule names, [;]-terminated rules,
    an initial [grammar] header and a token section listing the terminals. *)
