(** EBNF production rules.

    A production rule associates a non-terminal (its left-hand side) with a
    list of alternatives. Each alternative is a sequence of {!type:term}s:
    plain symbols, optional groups [\[ ... \]], repetitions [( ... )*] and
    [( ... )+], and inline choice groups [( a | b )]. This is the grammar
    class the paper composes (LL(k) grammars "with additional options used by
    the ANTLR parser generator"). *)

type term =
  | Sym of Symbol.t            (** a terminal or non-terminal occurrence *)
  | Opt of term list           (** [\[ ts \]] — optional sequence *)
  | Star of term list          (** [( ts )*] — zero or more repetitions *)
  | Plus of term list          (** [( ts )+] — one or more repetitions *)
  | Group of term list list    (** [( a | b | ... )] — inline choice *)

type alt = term list
(** One alternative (choice) of a production: a sequence of terms. *)

type t = {
  lhs : string;      (** the non-terminal this rule defines *)
  alts : alt list;   (** its alternatives, in priority order *)
}

val make : string -> alt list -> t

val term_equal : term -> term -> bool
val alt_equal : alt -> alt -> bool
val equal : t -> t -> bool

val flatten : alt -> Symbol.t list
(** [flatten alt] is the sequence of all symbols occurring in [alt], in
    left-to-right order, looking through optional groups, repetitions and
    choice groups. This is the basis for the paper's production-containment
    test: production [p] {e contains} production [q] when [flatten q] is a
    subsequence of [flatten p]. *)

val required : alt -> term list
(** [required alt] is the non-optional backbone of [alt]: the terms that must
    be consumed on every derivation, i.e. everything except [Opt] and [Star]
    groups. *)

val is_optional_term : term -> bool
(** [is_optional_term t] is [true] for [Opt] and [Star] terms — the parts of
    an alternative that may derive the empty string by construction. *)

val subsequence : Symbol.t list -> Symbol.t list -> bool
(** [subsequence xs ys] is [true] iff [xs] occurs within [ys] in order (not
    necessarily contiguously). *)

val mentioned_nonterminals : t -> string list
(** All non-terminal names referenced by the rule's alternatives, without
    duplicates, in order of first occurrence. *)

val mentioned_terminals : t -> string list

val pp_term : term Fmt.t
val pp_alt : alt Fmt.t
val pp : t Fmt.t
(** [pp] prints the rule in the [lhs : alt1 | alt2] style used throughout the
    paper. *)
