(** Combinator DSL for writing grammar fragments concisely.

    The SQL:2003 decomposition defines several hundred small sub-grammars;
    this module keeps them readable. *)

val nt : string -> Production.term
(** Non-terminal occurrence. *)

val t : string -> Production.term
(** Terminal (token kind) occurrence. *)

val opt : Production.term list -> Production.term
(** [\[ ... \]] optional sequence. *)

val star : Production.term list -> Production.term
(** [( ... )*]. *)

val plus : Production.term list -> Production.term
(** [( ... )+]. *)

val grp : Production.term list list -> Production.term
(** Inline choice [( a | b )]. *)

val alts1 : string list -> Production.term
(** [alts1 ["A"; "B"]] is the inline terminal choice [( A | B )] — common for
    keyword alternatives such as [( ASC | DESC )]. *)

val comma_list : ?sep:string -> Production.term -> Production.term list
(** [comma_list x] is the paper's {e complex list} [x ( COMMA x )*]. *)

val rule : string -> Production.alt list -> Production.t
(** A rule with several alternatives. *)

val r1 : string -> Production.term list -> Production.t
(** A rule with a single alternative. *)

val grammar : start:string -> Production.t list -> Cfg.t
