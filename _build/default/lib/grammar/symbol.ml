type t =
  | Terminal of string
  | Nonterminal of string

let name = function Terminal n | Nonterminal n -> n

let is_terminal = function Terminal _ -> true | Nonterminal _ -> false
let is_nonterminal = function Nonterminal _ -> true | Terminal _ -> false

let equal a b =
  match a, b with
  | Terminal x, Terminal y | Nonterminal x, Nonterminal y -> String.equal x y
  | Terminal _, Nonterminal _ | Nonterminal _, Terminal _ -> false

let compare a b =
  match a, b with
  | Terminal x, Terminal y | Nonterminal x, Nonterminal y -> String.compare x y
  | Terminal _, Nonterminal _ -> -1
  | Nonterminal _, Terminal _ -> 1

let pp ppf = function
  | Terminal n -> Fmt.string ppf n
  | Nonterminal n -> Fmt.pf ppf "<%s>" n
