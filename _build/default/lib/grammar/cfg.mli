(** Context-free grammars in EBNF form.

    A grammar is a start symbol plus an ordered list of production rules, at
    most one per non-terminal (composition merges alternatives into the
    existing rule). *)

type t = private {
  start : string;
  rules : Production.t list;
}

val make : start:string -> Production.t list -> t
(** [make ~start rules] builds a grammar. Rules sharing a left-hand side are
    merged by appending alternatives (duplicates removed), preserving first
    occurrence order. *)

val find : t -> string -> Production.t option
(** [find g nt] is the rule defining [nt], if any. *)

val defined : t -> string list
(** Non-terminals defined by the grammar, in rule order. *)

val terminals : t -> string list
(** All terminal names mentioned anywhere in the grammar, in order of first
    occurrence. *)

val rule_count : t -> int

val alternative_count : t -> int
(** Total number of alternatives across all rules — a size measure used by
    the tailoring experiments. *)

val symbol_count : t -> int
(** Total number of symbol occurrences across all alternatives. *)

type problem =
  | Undefined_nonterminal of { nonterminal : string; referenced_from : string }
      (** a rule references a non-terminal no rule defines *)
  | Unreachable_rule of string
      (** a rule not reachable from the start symbol *)
  | Undefined_start
      (** the start symbol has no defining rule *)

val pp_problem : problem Fmt.t

val check : t -> problem list
(** [check g] reports well-formedness problems. A composed grammar with a
    non-empty problem list indicates an incoherent feature selection (e.g. a
    fragment referencing a non-terminal whose defining feature was not
    selected). *)

val pp : t Fmt.t
