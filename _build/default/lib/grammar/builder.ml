let nt n = Production.Sym (Symbol.Nonterminal n)
let t n = Production.Sym (Symbol.Terminal n)
let opt ts = Production.Opt ts
let star ts = Production.Star ts
let plus ts = Production.Plus ts
let grp alts = Production.Group alts
let alts1 names = Production.Group (List.map (fun n -> [ t n ]) names)
let comma_list ?(sep = "COMMA") x = [ x; star [ t sep; x ] ]
let rule lhs alts = Production.make lhs alts
let r1 lhs alt = Production.make lhs [ alt ]
let grammar ~start rules = Cfg.make ~start rules
