type term =
  | Sym of Symbol.t
  | Opt of term list
  | Star of term list
  | Plus of term list
  | Group of term list list

type alt = term list

type t = {
  lhs : string;
  alts : alt list;
}

let make lhs alts = { lhs; alts }

let rec term_equal a b =
  match a, b with
  | Sym x, Sym y -> Symbol.equal x y
  | Opt x, Opt y | Star x, Star y | Plus x, Plus y -> alt_equal x y
  | Group x, Group y -> List.equal alt_equal x y
  | (Sym _ | Opt _ | Star _ | Plus _ | Group _), _ -> false

and alt_equal a b = List.equal term_equal a b

let equal a b = String.equal a.lhs b.lhs && List.equal alt_equal a.alts b.alts

let rec flatten_term acc = function
  | Sym s -> s :: acc
  | Opt ts | Star ts | Plus ts -> flatten_seq acc ts
  | Group alts -> List.fold_left flatten_seq acc alts

and flatten_seq acc ts = List.fold_left flatten_term acc ts

let flatten alt = List.rev (flatten_seq [] alt)

let is_optional_term = function
  | Opt _ | Star _ -> true
  | Sym _ | Plus _ | Group _ -> false

let required alt = List.filter (fun t -> not (is_optional_term t)) alt

let rec subsequence xs ys =
  match xs, ys with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' ->
    if Symbol.equal x y then subsequence xs' ys' else subsequence xs ys'

let mentioned filter rule =
  let add seen s =
    let n = Symbol.name s in
    if filter s && not (List.mem n seen) then n :: seen else seen
  in
  let syms = List.concat_map flatten rule.alts in
  List.rev (List.fold_left add [] syms)

let mentioned_nonterminals rule = mentioned Symbol.is_nonterminal rule
let mentioned_terminals rule = mentioned Symbol.is_terminal rule

let rec pp_term ppf = function
  | Sym s -> Symbol.pp ppf s
  | Opt ts -> Fmt.pf ppf "[ %a ]" pp_alt ts
  | Star ts -> Fmt.pf ppf "( %a )*" pp_alt ts
  | Plus ts -> Fmt.pf ppf "( %a )+" pp_alt ts
  | Group alts ->
    Fmt.pf ppf "( %a )" Fmt.(list ~sep:(any " | ") pp_alt) alts

and pp_alt ppf alt =
  if alt = [] then Fmt.string ppf "/* empty */"
  else Fmt.(list ~sep:sp pp_term) ppf alt

let pp ppf rule =
  Fmt.pf ppf "@[<hv 2>%s :@ %a@]" rule.lhs
    Fmt.(list ~sep:(any "@ | ") pp_alt)
    rule.alts
