module String_set = Set.Make (String)
module String_map = Map.Make (String)

type t = {
  nullable : String_set.t;
  first : String_set.t String_map.t;
  follow : String_set.t String_map.t;
}

let lookup m nt = Option.value ~default:String_set.empty (String_map.find_opt nt m)

(* Nullability of a term / sequence given the current nullable set. *)
let rec term_nullable nullable = function
  | Production.Sym (Symbol.Terminal _) -> false
  | Production.Sym (Symbol.Nonterminal n) -> String_set.mem n nullable
  | Production.Opt _ | Production.Star _ -> true
  | Production.Plus ts -> alt_nullable nullable ts
  | Production.Group alts -> List.exists (alt_nullable nullable) alts

and alt_nullable nullable ts = List.for_all (term_nullable nullable) ts

let compute_nullable (g : Cfg.t) =
  let step nullable =
    List.fold_left
      (fun acc (r : Production.t) ->
        if String_set.mem r.lhs acc then acc
        else if List.exists (alt_nullable acc) r.alts then String_set.add r.lhs acc
        else acc)
      nullable g.rules
  in
  let rec fix s =
    let s' = step s in
    if String_set.equal s s' then s else fix s'
  in
  fix String_set.empty

(* FIRST of a term / sequence given current per-non-terminal FIRST sets. *)
let rec term_first nullable first = function
  | Production.Sym (Symbol.Terminal n) -> String_set.singleton n
  | Production.Sym (Symbol.Nonterminal n) -> lookup first n
  | Production.Opt ts | Production.Star ts | Production.Plus ts ->
    alt_first nullable first ts
  | Production.Group alts ->
    List.fold_left
      (fun acc a -> String_set.union acc (alt_first nullable first a))
      String_set.empty alts

and alt_first nullable first = function
  | [] -> String_set.empty
  | term :: rest ->
    let f = term_first nullable first term in
    if term_nullable nullable term then
      String_set.union f (alt_first nullable first rest)
    else f

let compute_first (g : Cfg.t) nullable =
  let step first =
    List.fold_left
      (fun acc (r : Production.t) ->
        let f =
          List.fold_left
            (fun s a -> String_set.union s (alt_first nullable acc a))
            (lookup acc r.lhs) r.alts
        in
        String_map.add r.lhs f acc)
      first g.rules
  in
  let rec fix m =
    let m' = step m in
    if String_map.equal String_set.equal m m' then m else fix m'
  in
  fix String_map.empty

(* FOLLOW: walk every alternative right-to-left, threading the FIRST set and
   nullability of the remaining suffix ("continuation"). When the suffix is
   nullable, FOLLOW of the rule's lhs flows into the occurrence. *)
let compute_follow (g : Cfg.t) nullable first =
  let changed = ref true in
  let follow = ref (String_map.singleton g.start (String_set.singleton "EOF")) in
  let add nt set =
    let cur = lookup !follow nt in
    let next = String_set.union cur set in
    if not (String_set.equal cur next) then begin
      follow := String_map.add nt next !follow;
      changed := true
    end
  in
  (* [cont_first], [cont_nullable] describe what may follow the sequence. *)
  let rec walk_seq lhs seq cont_first cont_nullable =
    match seq with
    | [] -> ()
    | term :: rest ->
      let rest_first = alt_first nullable first rest in
      let rest_nullable = alt_nullable nullable rest in
      let tf =
        if rest_nullable then String_set.union rest_first cont_first
        else rest_first
      and tn = rest_nullable && cont_nullable in
      walk_term lhs term tf tn;
      walk_seq lhs rest cont_first cont_nullable
  and walk_term lhs term cont_first cont_nullable =
    match term with
    | Production.Sym (Symbol.Terminal _) -> ()
    | Production.Sym (Symbol.Nonterminal n) ->
      add n cont_first;
      if cont_nullable then add n (lookup !follow lhs)
    | Production.Opt ts -> walk_seq lhs ts cont_first cont_nullable
    | Production.Star ts | Production.Plus ts ->
      (* Inside a repetition the sequence may be followed by another
         iteration of itself. *)
      let self_first = alt_first nullable first ts in
      walk_seq lhs ts (String_set.union self_first cont_first) cont_nullable
    | Production.Group alts ->
      List.iter (fun a -> walk_seq lhs a cont_first cont_nullable) alts
  in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Production.t) ->
        List.iter
          (fun a -> walk_seq r.lhs a (lookup !follow r.lhs) true)
          r.alts)
      g.rules
  done;
  !follow

let compute g =
  let nullable = compute_nullable g in
  let first = compute_first g nullable in
  let follow = compute_follow g nullable first in
  { nullable; first; follow }

let seq_nullable t _g alt = alt_nullable t.nullable alt
let seq_first t _g alt = alt_first t.nullable t.first alt
let first_of_alt = seq_first

type conflict = {
  lhs : string;
  alt_a : int;
  alt_b : int;
  overlap : String_set.t;
}

let pp_conflict ppf c =
  Fmt.pf ppf "<%s>: alternatives %d and %d overlap on {%a}" c.lhs c.alt_a
    c.alt_b
    Fmt.(list ~sep:comma string)
    (String_set.elements c.overlap)

let pp_conflict_in (g : Cfg.t) ppf c =
  pp_conflict ppf c;
  match Cfg.find g c.lhs with
  | None -> ()
  | Some r ->
    let side i =
      match List.nth_opt r.Production.alts i with
      | None -> ()
      | Some [] -> Fmt.pf ppf "@,      #%d: (empty)" i
      | Some alt -> Fmt.pf ppf "@,      #%d: @[<h>%a@]" i Production.pp_alt alt
    in
    Fmt.pf ppf "@[<v>";
    side c.alt_a;
    side c.alt_b;
    Fmt.pf ppf "@]"

let ll1_conflicts (g : Cfg.t) =
  let an = compute g in
  let predict lhs alt =
    let f = alt_first an.nullable an.first alt in
    if alt_nullable an.nullable alt then
      String_set.union f (lookup an.follow lhs)
    else f
  in
  List.concat_map
    (fun (r : Production.t) ->
      let predicted = List.map (predict r.lhs) r.alts in
      let indexed = List.mapi (fun i p -> (i, p)) predicted in
      List.concat_map
        (fun (i, pi) ->
          List.filter_map
            (fun (j, pj) ->
              if j <= i then None
              else
                let overlap = String_set.inter pi pj in
                if String_set.is_empty overlap then None
                else Some { lhs = r.lhs; alt_a = i; alt_b = j; overlap })
            indexed)
        indexed)
    g.rules

let left_recursive (g : Cfg.t) =
  let an = compute g in
  (* Leftmost non-terminals of a sequence: heads reachable without consuming
     a terminal. *)
  let rec seq_heads acc = function
    | [] -> acc
    | term :: rest ->
      let acc = term_heads acc term in
      if term_nullable an.nullable term then seq_heads acc rest else acc
  and term_heads acc = function
    | Production.Sym (Symbol.Terminal _) -> acc
    | Production.Sym (Symbol.Nonterminal n) -> String_set.add n acc
    | Production.Opt ts | Production.Star ts | Production.Plus ts ->
      seq_heads acc ts
    | Production.Group alts -> List.fold_left seq_heads acc alts
  in
  let direct =
    List.fold_left
      (fun m (r : Production.t) ->
        let heads =
          List.fold_left (fun s a -> seq_heads s a) String_set.empty r.alts
        in
        String_map.add r.lhs heads m)
      String_map.empty g.rules
  in
  (* Transitive closure; a non-terminal reaching itself is left-recursive. *)
  let rec reaches seen n target =
    let heads = lookup direct n in
    String_set.mem target heads
    || String_set.exists
         (fun h -> (not (String_set.mem h seen)) && reaches (String_set.add h seen) h target)
         heads
  in
  List.filter_map
    (fun (r : Production.t) ->
      if reaches String_set.empty r.lhs r.lhs then Some r.lhs else None)
    g.rules
