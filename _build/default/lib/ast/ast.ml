(** Abstract syntax of the supported SQL subset.

    The AST covers the full feature model: queries (including set operations,
    joins, grouping and windows-free SQL:2003 Foundation constructs), DML,
    DDL, access control and transaction statements. Lowering from the CST is
    tolerant — a dialect that omits a feature simply never produces the
    corresponding constructor. *)

type ident = string

(** Possibly schema-qualified object name. *)
type object_name = {
  qualifier : ident option;
  name : ident;
}

let simple_name name = { qualifier = None; name }

(** Interval qualifier: [DAY], [YEAR TO MONTH], ... *)
type interval_qualifier = {
  from_field : ident;
  to_field : ident option;
}

type literal =
  | L_integer of int
  | L_decimal of float
  | L_string of string
  | L_bool of bool
  | L_null
  | L_date of string       (** [DATE '2008-03-29'] — kept textual *)
  | L_time of string
  | L_timestamp of string
  | L_interval of string * interval_qualifier  (** [INTERVAL '5' DAY] *)

type data_type =
  | T_integer
  | T_smallint
  | T_bigint
  | T_decimal of (int * int option) option  (** precision, scale *)
  | T_float
  | T_real
  | T_double
  | T_char of int option
  | T_varchar of int option
  | T_boolean
  | T_date
  | T_time
  | T_timestamp
  | T_interval of interval_qualifier

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Concat

type cmpop =
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge

type set_quantifier =
  | All
  | Distinct

type agg_func =
  | F_count
  | F_sum
  | F_avg
  | F_min
  | F_max
  | F_every
  | F_any

type trim_side =
  | Trim_leading
  | Trim_trailing
  | Trim_both

type expr =
  | Lit of literal
  | Column of ident option * ident       (** optional qualifier, column *)
  | Unary of sign * expr
  | Binop of binop * expr * expr
  | Aggregate of aggregate
  | Call of ident * expr list
      (** built-in scalar functions ([UPPER], [ABS], [MOD], [COALESCE],
          [NULLIF], [CHAR_LENGTH], ...) and user function calls, normalized
          to one shape *)
  | Substring of { arg : expr; from_ : expr; for_ : expr option }
  | Position of { needle : expr; haystack : expr }
  | Trim of { side : trim_side option; removed : expr option; arg : expr }
  | Extract of { field : ident; arg : expr }
  | Case_simple of {
      operand : expr;
      branches : (expr * expr) list;
      else_ : expr option;
    }
  | Case_searched of { branches : (cond * expr) list; else_ : expr option }
  | Cast of expr * data_type
  | Scalar_subquery of query
  | Next_value of ident  (** [NEXT VALUE FOR sequence] *)
  | Parameter of int
      (** dynamic parameter marker [?]; ordinals are 1-based in lexical
          order, assigned during lowering *)
  | Overlay of { arg : expr; placing : expr; from_ : expr; for_ : expr option }
  | Window_call of {
      wfunc : ident;                 (** RANK, DENSE_RANK, ROW_NUMBER *)
      partition_by : expr list;
      win_order_by : expr list;
    }

and sign =
  | S_plus
  | S_minus

and aggregate = {
  func : agg_func;
  agg_quantifier : set_quantifier option;
  arg : agg_arg;
}

and agg_arg =
  | A_star           (** the star argument of [COUNT] *)
  | A_expr of expr

and cond =
  | Comparison of cmpop * expr * expr
  | Quantified_comparison of {
      op : cmpop;
      lhs : expr;
      quantifier : quantifier;
      subquery : query;
    }
  | Between of {
      negated : bool;
      symmetric : bool;  (** [BETWEEN SYMMETRIC] accepts swapped bounds *)
      arg : expr;
      low : expr;
      high : expr;
    }
  | In_list of { negated : bool; arg : expr; values : expr list }
  | In_subquery of { negated : bool; arg : expr; subquery : query }
  | Like of { negated : bool; arg : expr; pattern : expr; escape : expr option }
  | Is_null of { negated : bool; arg : expr }
  | Is_distinct_from of { negated : bool; lhs : expr; rhs : expr }
  | Exists of query
  | Unique of query
  | Not of cond
  | And of cond * cond
  | Or of cond * cond
  | Is_truth of { negated : bool; arg : cond; truth : truth }
  | Overlaps of expr * expr
  | Similar of { negated : bool; arg : expr; pattern : expr }
  | Bool_expr of expr
      (** a value expression in boolean position, e.g. [WHERE active] *)

and quantifier =
  | Q_all
  | Q_some

and truth =
  | True
  | False
  | Unknown

(* Queries *)

and query = {
  with_ : with_clause option;  (** common table expressions *)
  body : query_body;
  order_by : sort_spec list;
  fetch : fetch option;
  epoch : epoch option;  (** TinySQL acquisition clause *)
  updatability : updatability option;  (** cursor updatability clause *)
}

and updatability =
  | For_read_only
  | For_update of ident list  (** [FOR UPDATE \[OF columns\]] *)

and with_clause = {
  recursive : bool;
  ctes : cte list;
}

and cte = {
  cte_name : ident;
  cte_columns : ident list;  (** optional column list *)
  cte_query : query;
}

and query_body =
  | Select of select
  | Set_operation of {
      op : set_op;
      quantifier : set_quantifier option;
      corresponding : bool;  (** match operand columns by name *)
      lhs : query_body;
      rhs : query_body;
    }
  | Values of expr list list
  | Paren_query of query

and set_op =
  | Union
  | Except
  | Intersect

and select = {
  select_quantifier : set_quantifier option;
  projection : select_item list;
  from : table_ref list;
  where : cond option;
  group_by : group_element list;
  having : cond option;
}

and select_item =
  | Star
  | Qualified_star of ident           (** [t.*] *)
  | Expr_item of expr * ident option  (** expression with optional alias *)

and group_element =
  | Group_expr of expr
  | Rollup of expr list
  | Cube of expr list
  | Grouping_sets of expr list list

and table_ref =
  | Table of object_name * correlation option
  | Derived_table of query * correlation
  | Joined of {
      lhs : table_ref;
      kind : join_kind;
      rhs : table_ref;
      condition : join_condition option;
    }

and correlation = {
  alias : ident;
  columns : ident list;  (** optional derived column list *)
}

and join_kind =
  | Inner
  | Left_outer
  | Right_outer
  | Full_outer
  | Cross
  | Natural

and join_condition =
  | On of cond
  | Using of ident list

and sort_spec = {
  sort_expr : expr;
  descending : bool;
  nulls_last : bool option;
}

and fetch =
  | Fetch_first of int   (** [FETCH FIRST n ROWS ONLY] *)
  | Limit of int         (** embedded-systems style [LIMIT n] *)

and epoch = {
  duration : int option;       (** [EPOCH DURATION n] *)
  sample_period : int option;  (** [SAMPLE PERIOD n] *)
}

(* DML *)

type insert_source =
  | Insert_values of expr list list
  | Insert_query of query
  | Insert_defaults

type insert = {
  table : object_name;
  columns : ident list;
  source : insert_source;
}

type set_clause = {
  target : ident;
  value : expr option;  (** [None] means [DEFAULT] *)
}

type update = {
  table : object_name;
  assignments : set_clause list;
  update_where : cond option;
}

type delete = {
  table : object_name;
  delete_where : cond option;
}

type merge_action =
  | When_matched_update of set_clause list
  | When_not_matched_insert of ident list * expr list

type merge = {
  target : object_name;
  target_alias : ident option;
  source : table_ref;
  on : cond;
  actions : merge_action list;
}

(* DDL *)

type referential_action =
  | Ra_cascade
  | Ra_set_null
  | Ra_set_default
  | Ra_restrict
  | Ra_no_action

type references_spec = {
  ref_table : object_name;
  ref_columns : ident list;
  on_delete : referential_action option;
  on_update : referential_action option;
}

type column_constraint =
  | C_not_null
  | C_unique
  | C_primary_key
  | C_references of references_spec
  | C_check of cond

type column_def = {
  column : ident;
  ty : data_type;
  default : expr option;
  constraints : column_constraint list;
}

type table_constraint_body =
  | T_unique of ident list
  | T_primary_key of ident list
  | T_foreign_key of ident list * references_spec
  | T_check of cond

type table_constraint = {
  constraint_name : ident option;
  body : table_constraint_body;
}

type table_element =
  | Column_element of column_def
  | Constraint_element of table_constraint

type create_table = {
  table_name : object_name;
  elements : table_element list;
}

type create_view = {
  view_name : object_name;
  view_columns : ident list;
  view_query : query;
  check_option : bool;
}

type drop_behavior =
  | Cascade
  | Restrict

type drop_kind =
  | Drop_table
  | Drop_view

type drop = {
  drop_kind : drop_kind;
  drop_name : object_name;
  behavior : drop_behavior option;
}

type alter_action =
  | Add_column of column_def
  | Drop_column of ident * drop_behavior option
  | Set_column_default of ident * expr
  | Drop_column_default of ident
  | Add_constraint of table_constraint

type alter_table = {
  altered : object_name;
  action : alter_action;
}

(* Access control *)

type privilege =
  | P_select
  | P_insert
  | P_update of ident list
  | P_delete
  | P_references of ident list
  | P_all

type grantee =
  | Public
  | User of ident

type grant = {
  privileges : privilege list;
  grant_on : object_name;
  grantees : grantee list;
  with_grant_option : bool;
}

type revoke = {
  revoked : privilege list;
  revoke_on : object_name;
  revokees : grantee list;
  grant_option_for : bool;
  revoke_behavior : drop_behavior option;
}

(* Transactions *)

type isolation_level =
  | Read_uncommitted
  | Read_committed
  | Repeatable_read
  | Serializable

type transaction_statement =
  | Commit
  | Rollback of ident option        (** optional savepoint *)
  | Savepoint of ident
  | Release_savepoint of ident
  | Start_transaction of isolation_level option
  | Set_transaction of isolation_level

(* Sessions *)

type session_statement =
  | Set_session_authorization of ident
  | Reset_session_authorization

(* Sequence generators *)

type sequence_statement =
  | Create_sequence of {
      seq_name : ident;
      seq_start : int option;
      seq_increment : int option;
    }
  | Drop_sequence of ident

(* Schemas *)

type schema_statement =
  | Create_schema of ident
  | Drop_schema of ident * drop_behavior option
  | Set_schema of ident

(* Statements *)

type statement =
  | Query_stmt of query
  | Insert_stmt of insert
  | Update_stmt of update
  | Delete_stmt of delete
  | Merge_stmt of merge
  | Create_table_stmt of create_table
  | Create_view_stmt of create_view
  | Drop_stmt of drop
  | Alter_table_stmt of alter_table
  | Grant_stmt of grant
  | Revoke_stmt of revoke
  | Transaction_stmt of transaction_statement
  | Schema_stmt of schema_statement
  | Sequence_stmt of sequence_statement
  | Session_stmt of session_statement
  | Explain_stmt of query  (** diagnostics extension: [EXPLAIN <query>] *)

(* Structural equality: the types are plain algebraic data, so polymorphic
   equality is exact. Named here so call sites read well. *)
let equal_statement (a : statement) (b : statement) = a = b
let equal_expr (a : expr) (b : expr) = a = b
let equal_query (a : query) (b : query) = a = b

let query_of_body body =
  {
    with_ = None; body; order_by = []; fetch = None; epoch = None;
    updatability = None;
  }

let select_of_projection projection =
  {
    select_quantifier = None;
    projection;
    from = [];
    where = None;
    group_by = [];
    having = None;
  }
