(** Rendering ASTs back to SQL text.

    The printer emits SQL that the full-dialect parser accepts, enabling the
    print/parse round-trip property tests. Output is single-line,
    fully-parenthesized only where needed. *)

val literal : Ast.literal -> string
val data_type : Ast.data_type -> string
val expr : Ast.expr -> string
val cond : Ast.cond -> string
val query : Ast.query -> string
val statement : Ast.statement -> string
