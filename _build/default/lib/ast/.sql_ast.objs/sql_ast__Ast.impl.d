lib/ast/ast.ml:
