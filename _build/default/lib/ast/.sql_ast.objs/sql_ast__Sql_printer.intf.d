lib/ast/sql_printer.mli: Ast
