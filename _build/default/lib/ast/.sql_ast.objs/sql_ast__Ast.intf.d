lib/ast/ast.mli:
