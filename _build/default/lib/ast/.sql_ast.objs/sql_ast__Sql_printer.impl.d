lib/ast/sql_printer.ml: Ast Buffer List Printf String
