open Ast

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = '\'' then Buffer.add_char buf '\'')
    s;
  Buffer.contents buf

let interval_qualifier (q : interval_qualifier) =
  match q.to_field with
  | None -> q.from_field
  | Some f -> Printf.sprintf "%s TO %s" q.from_field f

let literal = function
  | L_integer n -> if n < 0 then Printf.sprintf "(- %d)" (-n) else string_of_int n
  | L_decimal f ->
    let s = Printf.sprintf "%.6f" f in
    s
  | L_string s -> Printf.sprintf "'%s'" (escape_string s)
  | L_bool true -> "TRUE"
  | L_bool false -> "FALSE"
  | L_null -> "NULL"
  | L_date s -> Printf.sprintf "DATE '%s'" s
  | L_time s -> Printf.sprintf "TIME '%s'" s
  | L_timestamp s -> Printf.sprintf "TIMESTAMP '%s'" s
  | L_interval (s, q) ->
    Printf.sprintf "INTERVAL '%s' %s" (escape_string s) (interval_qualifier q)

let data_type = function
  | T_integer -> "INTEGER"
  | T_smallint -> "SMALLINT"
  | T_bigint -> "BIGINT"
  | T_decimal None -> "DECIMAL"
  | T_decimal (Some (p, None)) -> Printf.sprintf "DECIMAL(%d)" p
  | T_decimal (Some (p, Some s)) -> Printf.sprintf "DECIMAL(%d, %d)" p s
  | T_float -> "FLOAT"
  | T_real -> "REAL"
  | T_double -> "DOUBLE PRECISION"
  | T_char None -> "CHAR"
  | T_char (Some n) -> Printf.sprintf "CHAR(%d)" n
  | T_varchar None -> "VARCHAR"
  | T_varchar (Some n) -> Printf.sprintf "VARCHAR(%d)" n
  | T_boolean -> "BOOLEAN"
  | T_date -> "DATE"
  | T_time -> "TIME"
  | T_timestamp -> "TIMESTAMP"
  | T_interval q -> "INTERVAL " ^ interval_qualifier q

let object_name o =
  match o.qualifier with
  | None -> o.name
  | Some q -> q ^ "." ^ o.name

let cmpop = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Concat -> "||"

let agg_func = function
  | F_count -> "COUNT"
  | F_sum -> "SUM"
  | F_avg -> "AVG"
  | F_min -> "MIN"
  | F_max -> "MAX"
  | F_every -> "EVERY"
  | F_any -> "ANY"

let quantifier_str = function All -> "ALL" | Distinct -> "DISTINCT"

(* Expressions print in a precedence-free style: every compound arithmetic
   operand is parenthesized, which keeps the grammar round-trip exact without
   a precedence-aware printer. *)
let rec expr = function
  | Lit l -> literal l
  | Column (None, c) -> c
  | Column (Some q, c) -> q ^ "." ^ c
  | Unary (S_plus, e) -> Printf.sprintf "+ %s" (atom e)
  | Unary (S_minus, e) -> Printf.sprintf "- %s" (atom e)
  | Binop (op, a, b) ->
    Printf.sprintf "%s %s %s" (atom a) (binop_str op) (atom b)
  | Aggregate { func; agg_quantifier; arg } ->
    let q = match agg_quantifier with None -> "" | Some q -> quantifier_str q ^ " " in
    let a = match arg with A_star -> "*" | A_expr e -> expr e in
    Printf.sprintf "%s(%s%s)" (agg_func func) q a
  | Call (f, []) -> f  (* niladic functions: CURRENT_DATE, CURRENT_USER, ... *)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Substring { arg; from_; for_ } ->
    let f = match for_ with None -> "" | Some e -> " FOR " ^ expr e in
    Printf.sprintf "SUBSTRING(%s FROM %s%s)" (expr arg) (expr from_) f
  | Position { needle; haystack } ->
    Printf.sprintf "POSITION(%s IN %s)" (expr needle) (expr haystack)
  | Trim { side; removed; arg } ->
    let side_str =
      match side with
      | None -> ""
      | Some Trim_leading -> "LEADING "
      | Some Trim_trailing -> "TRAILING "
      | Some Trim_both -> "BOTH "
    in
    let removed_str = match removed with None -> "" | Some e -> expr e ^ " " in
    if side_str = "" && removed_str = "" then
      Printf.sprintf "TRIM(%s)" (expr arg)
    else Printf.sprintf "TRIM(%s%sFROM %s)" side_str removed_str (expr arg)
  | Extract { field; arg } -> Printf.sprintf "EXTRACT(%s FROM %s)" field (expr arg)
  | Case_simple { operand; branches; else_ } ->
    let b =
      String.concat " "
        (List.map
           (fun (w, t) -> Printf.sprintf "WHEN %s THEN %s" (expr w) (expr t))
           branches)
    in
    let e = match else_ with None -> "" | Some e -> Printf.sprintf " ELSE %s" (expr e) in
    Printf.sprintf "CASE %s %s%s END" (expr operand) b e
  | Case_searched { branches; else_ } ->
    let b =
      String.concat " "
        (List.map
           (fun (w, t) -> Printf.sprintf "WHEN %s THEN %s" (cond w) (expr t))
           branches)
    in
    let e = match else_ with None -> "" | Some e -> Printf.sprintf " ELSE %s" (expr e) in
    Printf.sprintf "CASE %s%s END" b e
  | Cast (e, ty) -> Printf.sprintf "CAST(%s AS %s)" (expr e) (data_type ty)
  | Scalar_subquery q -> Printf.sprintf "(%s)" (query q)
  | Next_value s -> Printf.sprintf "NEXT VALUE FOR %s" s
  | Parameter _ -> "?"
  | Overlay { arg; placing; from_; for_ } ->
    let f = match for_ with None -> "" | Some e -> " FOR " ^ expr e in
    Printf.sprintf "OVERLAY(%s PLACING %s FROM %s%s)" (expr arg) (expr placing)
      (expr from_) f
  | Window_call { wfunc; partition_by; win_order_by } ->
    let partition =
      match partition_by with
      | [] -> ""
      | es -> "PARTITION BY " ^ String.concat ", " (List.map expr es)
    in
    let order =
      match win_order_by with
      | [] -> ""
      | es -> "ORDER BY " ^ String.concat ", " (List.map expr es)
    in
    let spec =
      String.concat " " (List.filter (fun s -> s <> "") [ partition; order ])
    in
    Printf.sprintf "%s() OVER (%s)" wfunc spec

and atom e =
  match e with
  | Lit _ | Column _ | Aggregate _ | Call _ | Substring _ | Position _ | Trim _
  | Extract _ | Case_simple _ | Case_searched _ | Cast _ | Scalar_subquery _
  | Next_value _ | Parameter _ | Overlay _ | Window_call _ ->
    expr e
  | Unary _ | Binop _ -> Printf.sprintf "(%s)" (expr e)

and cond = function
  | Comparison (op, a, b) -> Printf.sprintf "%s %s %s" (expr a) (cmpop op) (expr b)
  | Quantified_comparison { op; lhs; quantifier; subquery } ->
    let q = match quantifier with Q_all -> "ALL" | Q_some -> "SOME" in
    Printf.sprintf "%s %s %s (%s)" (expr lhs) (cmpop op) q (query subquery)
  | Between { negated; symmetric; arg; low; high } ->
    Printf.sprintf "%s %sBETWEEN %s%s AND %s" (expr arg)
      (if negated then "NOT " else "")
      (if symmetric then "SYMMETRIC " else "")
      (expr low) (expr high)
  | In_list { negated; arg; values } ->
    Printf.sprintf "%s %sIN (%s)" (expr arg)
      (if negated then "NOT " else "")
      (String.concat ", " (List.map expr values))
  | In_subquery { negated; arg; subquery } ->
    Printf.sprintf "%s %sIN (%s)" (expr arg)
      (if negated then "NOT " else "")
      (query subquery)
  | Like { negated; arg; pattern; escape } ->
    let esc = match escape with None -> "" | Some e -> " ESCAPE " ^ expr e in
    Printf.sprintf "%s %sLIKE %s%s" (expr arg)
      (if negated then "NOT " else "")
      (expr pattern) esc
  | Is_null { negated; arg } ->
    Printf.sprintf "%s IS %sNULL" (expr arg) (if negated then "NOT " else "")
  | Is_distinct_from { negated; lhs; rhs } ->
    Printf.sprintf "%s IS %sDISTINCT FROM %s" (expr lhs)
      (if negated then "NOT " else "")
      (expr rhs)
  | Exists q -> Printf.sprintf "EXISTS (%s)" (query q)
  | Unique q -> Printf.sprintf "UNIQUE (%s)" (query q)
  | Not c -> Printf.sprintf "NOT %s" (cond_atom c)
  | And (a, b) -> Printf.sprintf "%s AND %s" (cond_atom a) (cond_atom b)
  | Or (a, b) -> Printf.sprintf "%s OR %s" (cond_atom a) (cond_atom b)
  | Is_truth { negated; arg; truth } ->
    let t = match truth with True -> "TRUE" | False -> "FALSE" | Unknown -> "UNKNOWN" in
    Printf.sprintf "%s IS %s%s" (cond_atom arg) (if negated then "NOT " else "") t
  | Overlaps (a, b) -> Printf.sprintf "%s OVERLAPS %s" (expr a) (expr b)
  | Similar { negated; arg; pattern } ->
    Printf.sprintf "%s %sSIMILAR TO %s" (expr arg)
      (if negated then "NOT " else "")
      (expr pattern)
  | Bool_expr e -> expr e

and cond_atom c =
  match c with
  | Bool_expr _ -> cond c
  | Comparison _ | Quantified_comparison _ | Between _ | In_list _
  | In_subquery _ | Like _ | Is_null _ | Is_distinct_from _ | Exists _
  | Unique _ | Not _ | And _ | Or _ | Is_truth _ | Overlaps _ | Similar _ ->
    Printf.sprintf "(%s)" (cond c)

and query q =
  let with_prefix =
    match q.with_ with
    | None -> ""
    | Some { recursive; ctes } ->
      "WITH "
      ^ (if recursive then "RECURSIVE " else "")
      ^ String.concat ", "
          (List.map
             (fun (c : cte) ->
               let cols =
                 match c.cte_columns with
                 | [] -> ""
                 | cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
               in
               Printf.sprintf "%s%s AS (%s)" c.cte_name cols (query c.cte_query))
             ctes)
      ^ " "
  in
  let body = with_prefix ^ query_body q.body in
  let order =
    match q.order_by with
    | [] -> ""
    | specs ->
      " ORDER BY "
      ^ String.concat ", "
          (List.map
             (fun s ->
               let dir = if s.descending then " DESC" else " ASC" in
               let nulls =
                 match s.nulls_last with
                 | None -> ""
                 | Some true -> " NULLS LAST"
                 | Some false -> " NULLS FIRST"
               in
               expr s.sort_expr ^ dir ^ nulls)
             specs)
  in
  let fetch =
    match q.fetch with
    | None -> ""
    | Some (Fetch_first n) -> Printf.sprintf " FETCH FIRST %d ROWS ONLY" n
    | Some (Limit n) -> Printf.sprintf " LIMIT %d" n
  in
  let updatability =
    match q.updatability with
    | None -> ""
    | Some For_read_only -> " FOR READ ONLY"
    | Some (For_update []) -> " FOR UPDATE"
    | Some (For_update cols) ->
      Printf.sprintf " FOR UPDATE OF %s" (String.concat ", " cols)
  in
  let epoch =
    match q.epoch with
    | None -> ""
    | Some { duration; sample_period } ->
      let d = match duration with None -> "" | Some n -> Printf.sprintf " EPOCH DURATION %d" n in
      let s = match sample_period with None -> "" | Some n -> Printf.sprintf " SAMPLE PERIOD %d" n in
      d ^ s
  in
  body ^ order ^ fetch ^ updatability ^ epoch

and query_body = function
  | Select s -> select s
  | Set_operation { op; quantifier; corresponding; lhs; rhs } ->
    let op_str =
      match op with Union -> "UNION" | Except -> "EXCEPT" | Intersect -> "INTERSECT"
    in
    let q = match quantifier with None -> "" | Some q -> " " ^ quantifier_str q in
    let corr = if corresponding then " CORRESPONDING" else "" in
    Printf.sprintf "%s %s%s%s %s" (query_body lhs) op_str q corr (query_body rhs)
  | Values rows ->
    "VALUES "
    ^ String.concat ", "
        (List.map
           (fun row -> Printf.sprintf "(%s)" (String.concat ", " (List.map expr row)))
           rows)
  | Paren_query q -> Printf.sprintf "(%s)" (query q)

and select s =
  let quant =
    match s.select_quantifier with None -> "" | Some q -> quantifier_str q ^ " "
  in
  let proj =
    String.concat ", "
      (List.map
         (function
           | Star -> "*"
           | Qualified_star q -> q ^ ".*"
           | Expr_item (e, None) -> expr e
           | Expr_item (e, Some a) -> Printf.sprintf "%s AS %s" (expr e) a)
         s.projection)
  in
  let from =
    match s.from with
    | [] -> ""
    | refs -> " FROM " ^ String.concat ", " (List.map table_ref refs)
  in
  let where = match s.where with None -> "" | Some c -> " WHERE " ^ cond c in
  let group =
    match s.group_by with
    | [] -> ""
    | els ->
      " GROUP BY "
      ^ String.concat ", "
          (List.map
             (function
               | Group_expr e -> expr e
               | Rollup es ->
                 Printf.sprintf "ROLLUP (%s)" (String.concat ", " (List.map expr es))
               | Cube es ->
                 Printf.sprintf "CUBE (%s)" (String.concat ", " (List.map expr es))
               | Grouping_sets sets ->
                 Printf.sprintf "GROUPING SETS (%s)"
                   (String.concat ", "
                      (List.map
                         (fun es ->
                           Printf.sprintf "(%s)"
                             (String.concat ", " (List.map expr es)))
                         sets)))
             els)
  in
  let having = match s.having with None -> "" | Some c -> " HAVING " ^ cond c in
  Printf.sprintf "SELECT %s%s%s%s%s%s" quant proj from where group having

and correlation (c : Ast.correlation) =
  match c.columns with
  | [] -> Printf.sprintf " AS %s" c.alias
  | cols -> Printf.sprintf " AS %s (%s)" c.alias (String.concat ", " cols)

and table_ref = function
  | Table (name, corr) ->
    object_name name ^ (match corr with None -> "" | Some c -> correlation c)
  | Derived_table (q, corr) ->
    Printf.sprintf "(%s)%s" (query q) (correlation corr)
  | Joined { lhs; kind; rhs; condition } ->
    let kind_str =
      match kind with
      | Inner -> "INNER JOIN"
      | Left_outer -> "LEFT OUTER JOIN"
      | Right_outer -> "RIGHT OUTER JOIN"
      | Full_outer -> "FULL OUTER JOIN"
      | Cross -> "CROSS JOIN"
      | Natural -> "NATURAL JOIN"
    in
    let cond_str =
      match condition with
      | None -> ""
      | Some (On c) -> " ON " ^ cond c
      | Some (Using cols) -> Printf.sprintf " USING (%s)" (String.concat ", " cols)
    in
    Printf.sprintf "%s %s %s%s" (table_ref lhs) kind_str (join_operand rhs) cond_str

and join_operand r =
  match r with
  | Joined _ -> Printf.sprintf "(%s)" (table_ref r)
  | Table _ | Derived_table _ -> table_ref r

let privilege = function
  | P_select -> "SELECT"
  | P_insert -> "INSERT"
  | P_update [] -> "UPDATE"
  | P_update cols -> Printf.sprintf "UPDATE (%s)" (String.concat ", " cols)
  | P_delete -> "DELETE"
  | P_references [] -> "REFERENCES"
  | P_references cols -> Printf.sprintf "REFERENCES (%s)" (String.concat ", " cols)
  | P_all -> "ALL PRIVILEGES"

let grantee = function
  | Public -> "PUBLIC"
  | User u -> u

let referential_action = function
  | Ra_cascade -> "CASCADE"
  | Ra_set_null -> "SET NULL"
  | Ra_set_default -> "SET DEFAULT"
  | Ra_restrict -> "RESTRICT"
  | Ra_no_action -> "NO ACTION"

let references_spec r =
  let cols =
    match r.ref_columns with
    | [] -> ""
    | cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
  in
  let od =
    match r.on_delete with
    | None -> ""
    | Some a -> " ON DELETE " ^ referential_action a
  in
  let ou =
    match r.on_update with
    | None -> ""
    | Some a -> " ON UPDATE " ^ referential_action a
  in
  Printf.sprintf "REFERENCES %s%s%s%s" (object_name r.ref_table) cols od ou

let column_constraint = function
  | C_not_null -> "NOT NULL"
  | C_unique -> "UNIQUE"
  | C_primary_key -> "PRIMARY KEY"
  | C_references r -> references_spec r
  | C_check c -> Printf.sprintf "CHECK (%s)" (cond c)

let column_def c =
  let default =
    match c.default with None -> "" | Some e -> " DEFAULT " ^ expr e
  in
  let constraints =
    String.concat ""
      (List.map (fun cc -> " " ^ column_constraint cc) c.constraints)
  in
  Printf.sprintf "%s %s%s%s" c.column (data_type c.ty) default constraints

let table_constraint tc =
  let name =
    match tc.constraint_name with
    | None -> ""
    | Some n -> Printf.sprintf "CONSTRAINT %s " n
  in
  let body =
    match tc.body with
    | T_unique cols -> Printf.sprintf "UNIQUE (%s)" (String.concat ", " cols)
    | T_primary_key cols ->
      Printf.sprintf "PRIMARY KEY (%s)" (String.concat ", " cols)
    | T_foreign_key (cols, r) ->
      Printf.sprintf "FOREIGN KEY (%s) %s" (String.concat ", " cols)
        (references_spec r)
    | T_check c -> Printf.sprintf "CHECK (%s)" (cond c)
  in
  name ^ body

let drop_behavior = function Cascade -> "CASCADE" | Restrict -> "RESTRICT"

let isolation_level = function
  | Read_uncommitted -> "READ UNCOMMITTED"
  | Read_committed -> "READ COMMITTED"
  | Repeatable_read -> "REPEATABLE READ"
  | Serializable -> "SERIALIZABLE"

let statement = function
  | Query_stmt q -> query q
  | Insert_stmt i ->
    let cols =
      match i.columns with
      | [] -> ""
      | cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
    in
    let source =
      match i.source with
      | Insert_values rows ->
        " VALUES "
        ^ String.concat ", "
            (List.map
               (fun row ->
                 Printf.sprintf "(%s)" (String.concat ", " (List.map expr row)))
               rows)
      | Insert_query q -> " " ^ query q
      | Insert_defaults -> " DEFAULT VALUES"
    in
    Printf.sprintf "INSERT INTO %s%s%s" (object_name i.table) cols source
  | Update_stmt u ->
    let sets =
      String.concat ", "
        (List.map
           (fun (s : set_clause) ->
             match s.value with
             | Some e -> Printf.sprintf "%s = %s" s.target (expr e)
             | None -> Printf.sprintf "%s = DEFAULT" s.target)
           u.assignments)
    in
    let where =
      match u.update_where with None -> "" | Some c -> " WHERE " ^ cond c
    in
    Printf.sprintf "UPDATE %s SET %s%s" (object_name u.table) sets where
  | Delete_stmt d ->
    let where =
      match d.delete_where with None -> "" | Some c -> " WHERE " ^ cond c
    in
    Printf.sprintf "DELETE FROM %s%s" (object_name d.table) where
  | Merge_stmt m ->
    let alias =
      match m.target_alias with None -> "" | Some a -> " AS " ^ a
    in
    let actions =
      String.concat " "
        (List.map
           (function
             | When_matched_update sets ->
               "WHEN MATCHED THEN UPDATE SET "
               ^ String.concat ", "
                   (List.map
                      (fun (s : set_clause) ->
                        match s.value with
                        | Some e -> Printf.sprintf "%s = %s" s.target (expr e)
                        | None -> Printf.sprintf "%s = DEFAULT" s.target)
                      sets)
             | When_not_matched_insert (cols, vals) ->
               let cols_str =
                 match cols with
                 | [] -> ""
                 | cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
               in
               Printf.sprintf "WHEN NOT MATCHED THEN INSERT%s VALUES (%s)"
                 cols_str
                 (String.concat ", " (List.map expr vals)))
           m.actions)
    in
    Printf.sprintf "MERGE INTO %s%s USING %s ON %s %s" (object_name m.target)
      alias (table_ref m.source) (cond m.on) actions
  | Create_table_stmt ct ->
    let elements =
      String.concat ", "
        (List.map
           (function
             | Column_element c -> column_def c
             | Constraint_element tc -> table_constraint tc)
           ct.elements)
    in
    Printf.sprintf "CREATE TABLE %s (%s)" (object_name ct.table_name) elements
  | Create_view_stmt cv ->
    let cols =
      match cv.view_columns with
      | [] -> ""
      | cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
    in
    let check = if cv.check_option then " WITH CHECK OPTION" else "" in
    Printf.sprintf "CREATE VIEW %s%s AS %s%s" (object_name cv.view_name) cols
      (query cv.view_query) check
  | Drop_stmt d ->
    let kind = match d.drop_kind with Drop_table -> "TABLE" | Drop_view -> "VIEW" in
    let behavior =
      match d.behavior with None -> "" | Some b -> " " ^ drop_behavior b
    in
    Printf.sprintf "DROP %s %s%s" kind (object_name d.drop_name) behavior
  | Alter_table_stmt a ->
    let action =
      match a.action with
      | Add_column c -> "ADD COLUMN " ^ column_def c
      | Drop_column (c, b) ->
        Printf.sprintf "DROP COLUMN %s%s" c
          (match b with None -> "" | Some b -> " " ^ drop_behavior b)
      | Set_column_default (c, e) ->
        Printf.sprintf "ALTER COLUMN %s SET DEFAULT %s" c (expr e)
      | Drop_column_default c -> Printf.sprintf "ALTER COLUMN %s DROP DEFAULT" c
      | Add_constraint tc -> "ADD " ^ table_constraint tc
    in
    Printf.sprintf "ALTER TABLE %s %s" (object_name a.altered) action
  | Grant_stmt g ->
    let privs =
      match g.privileges with
      | [ P_all ] -> "ALL PRIVILEGES"
      | ps -> String.concat ", " (List.map privilege ps)
    in
    let wgo = if g.with_grant_option then " WITH GRANT OPTION" else "" in
    Printf.sprintf "GRANT %s ON TABLE %s TO %s%s" privs (object_name g.grant_on)
      (String.concat ", " (List.map grantee g.grantees))
      wgo
  | Revoke_stmt r ->
    let gof = if r.grant_option_for then "GRANT OPTION FOR " else "" in
    let privs =
      match r.revoked with
      | [ P_all ] -> "ALL PRIVILEGES"
      | ps -> String.concat ", " (List.map privilege ps)
    in
    let behavior =
      match r.revoke_behavior with
      | None -> ""
      | Some b -> " " ^ drop_behavior b
    in
    Printf.sprintf "REVOKE %s%s ON TABLE %s FROM %s%s" gof privs
      (object_name r.revoke_on)
      (String.concat ", " (List.map grantee r.revokees))
      behavior
  | Transaction_stmt t -> (
    match t with
    | Commit -> "COMMIT"
    | Rollback None -> "ROLLBACK"
    | Rollback (Some sp) -> Printf.sprintf "ROLLBACK TO SAVEPOINT %s" sp
    | Savepoint sp -> Printf.sprintf "SAVEPOINT %s" sp
    | Release_savepoint sp -> Printf.sprintf "RELEASE SAVEPOINT %s" sp
    | Start_transaction None -> "START TRANSACTION"
    | Start_transaction (Some lvl) ->
      Printf.sprintf "START TRANSACTION ISOLATION LEVEL %s" (isolation_level lvl)
    | Set_transaction lvl ->
      Printf.sprintf "SET TRANSACTION ISOLATION LEVEL %s" (isolation_level lvl))
  | Sequence_stmt s -> (
    match s with
    | Create_sequence { seq_name; seq_start; seq_increment } ->
      Printf.sprintf "CREATE SEQUENCE %s%s%s" seq_name
        (match seq_start with None -> "" | Some n -> Printf.sprintf " START WITH %d" n)
        (match seq_increment with
         | None -> ""
         | Some n -> Printf.sprintf " INCREMENT BY %d" n)
    | Drop_sequence name -> Printf.sprintf "DROP SEQUENCE %s" name)
  | Explain_stmt q -> Printf.sprintf "EXPLAIN %s" (query q)
  | Session_stmt s -> (
    match s with
    | Set_session_authorization u -> Printf.sprintf "SET SESSION AUTHORIZATION %s" u
    | Reset_session_authorization -> "RESET SESSION AUTHORIZATION")
  | Schema_stmt s -> (
    match s with
    | Create_schema name -> Printf.sprintf "CREATE SCHEMA %s" name
    | Drop_schema (name, None) -> Printf.sprintf "DROP SCHEMA %s" name
    | Drop_schema (name, Some b) ->
      Printf.sprintf "DROP SCHEMA %s %s" name (drop_behavior b)
    | Set_schema name -> Printf.sprintf "SET SCHEMA %s" name)
