module String_set = Set.Make (String)

type fragments = (string * Grammar.Production.t list) list

(* A closure is self-contradictory when it selects both sides of an
   [excludes] constraint or more than one member of an ALT group — adding
   features can never repair either, so any configuration containing the
   seed is invalid. *)
let closure_contradiction (model : Feature.Model.t) closure =
  List.find_map
    (fun v ->
      match v with
      | Feature.Config.Excludes_violation { feature; conflicting } ->
        Some (feature, conflicting)
      | Feature.Config.Alt_group_violation { parent; selected = _ :: _ :: _ as selected } ->
        Some (parent, String.concat " | " selected)
      | _ -> None)
    (Feature.Config.validate model closure)

let dead_features (model : Feature.Model.t) =
  List.filter_map
    (fun name ->
      let closure = Feature.Config.close model (Feature.Config.of_names [ name ]) in
      match closure_contradiction model closure with
      | Some _ -> Some name
      | None -> None)
    (Feature.Tree.names model.concept)

(* Optional-ish features with their parent: optional children and OR/ALT
   group members. *)
let optionalish (model : Feature.Model.t) =
  List.concat_map
    (fun (p : Feature.Tree.t) ->
      List.concat_map
        (fun g ->
          match g with
          | Feature.Tree.Child (Feature.Tree.Mandatory, _) -> []
          | Feature.Tree.Child (Feature.Tree.Optional, c) ->
            [ (p.Feature.Tree.name, c.Feature.Tree.name) ]
          | Feature.Tree.Or_group members | Feature.Tree.Alt_group members ->
            List.map
              (fun (m : Feature.Tree.t) ->
                (p.Feature.Tree.name, m.Feature.Tree.name))
              members)
        p.Feature.Tree.groups)
    (Feature.Tree.all_features model.concept)

let false_optional (model : Feature.Model.t) =
  List.filter
    (fun (parent, feature) ->
      Feature.Config.mem feature
        (Feature.Config.close model (Feature.Config.of_names [ parent ])))
    (optionalish model)

let constraint_pair = function
  | Feature.Model.Requires (a, b) | Feature.Model.Excludes (a, b) -> (a, b)

let model_diagnostics model =
  List.map
    (fun p ->
      let subject =
        match p with
        | Feature.Model.Duplicate_feature n
        | Feature.Model.Constraint_on_unknown_feature n ->
          n
      in
      Diagnostic.make ~code:"model/malformed" ~severity:Diagnostic.Error
        ~subject ~witness:[ subject ]
        (Fmt.str "%a" Feature.Model.pp_problem p))
    (Feature.Model.check model)

let dead_diagnostics (model : Feature.Model.t) =
  List.map
    (fun name ->
      let closure =
        Feature.Config.close model (Feature.Config.of_names [ name ])
      in
      let why =
        match closure_contradiction model closure with
        | Some (a, b) -> [ a; b ]
        | None -> []
      in
      Diagnostic.make ~code:"model/dead-feature" ~severity:Diagnostic.Error
        ~subject:name ~witness:(name :: why)
        (Printf.sprintf
           "feature %S is selectable in no valid configuration: its forced \
            closure is self-contradictory (%s)"
           name (String.concat " vs " why)))
    (dead_features model)

let false_optional_diagnostics model =
  List.map
    (fun (parent, feature) ->
      Diagnostic.make ~code:"model/false-optional"
        ~severity:Diagnostic.Warning ~subject:feature
        ~witness:[ parent; feature ]
        (Printf.sprintf
           "feature %S is optional under %S in the diagram, but selecting \
            %S already forces it through the constraint closure"
           feature parent parent))
    (false_optional model)

let constraint_diagnostics (model : Feature.Model.t) =
  let constraints = model.constraints in
  let contradiction =
    List.filter_map
      (fun c ->
        match c with
        | Feature.Model.Excludes (a, b) when String.equal a b ->
          Some
            (Diagnostic.make ~code:"model/contradiction"
               ~severity:Diagnostic.Error ~subject:a ~witness:[ a; b ]
               (Printf.sprintf "feature %S excludes itself" a))
        | Feature.Model.Requires (a, b) ->
          if
            List.exists
              (fun c' ->
                match c' with
                | Feature.Model.Excludes (x, y) ->
                  (String.equal x a && String.equal y b)
                  || (String.equal x b && String.equal y a)
                | Feature.Model.Requires _ -> false)
              constraints
          then
            Some
              (Diagnostic.make ~code:"model/contradiction"
                 ~severity:Diagnostic.Error ~subject:a ~witness:[ a; b ]
                 (Printf.sprintf
                    "%S requires %S while an excludes constraint forbids the \
                     pair; %S is dead"
                    a b a))
          else None
        | Feature.Model.Excludes _ -> None)
      constraints
  in
  (* Exact duplicates ([excludes] compared symmetrically). *)
  let duplicates =
    let equal_constraint c c' =
      match c, c' with
      | Feature.Model.Requires (a, b), Feature.Model.Requires (x, y) ->
        String.equal a x && String.equal b y
      | Feature.Model.Excludes (a, b), Feature.Model.Excludes (x, y) ->
        (String.equal a x && String.equal b y)
        || (String.equal a y && String.equal b x)
      | Feature.Model.Requires _, Feature.Model.Excludes _
      | Feature.Model.Excludes _, Feature.Model.Requires _ ->
        false
    in
    let rec go seen = function
      | [] -> []
      | c :: rest ->
        if List.exists (equal_constraint c) seen then
          let a, b = constraint_pair c in
          Diagnostic.make ~code:"model/redundant-constraint"
            ~severity:Diagnostic.Warning ~subject:a ~witness:[ a; b ]
            (Fmt.str "constraint '%a' is stated more than once"
               Feature.Model.pp_constraint c)
          :: go seen rest
        else go (c :: seen) rest
    in
    go [] constraints
  in
  (* A [requires] already implied by the diagram plus the remaining
     constraints adds nothing. *)
  let implied =
    List.mapi (fun i c -> (i, c)) constraints
    |> List.filter_map (fun (i, c) ->
           match c with
           | Feature.Model.Excludes _ -> None
           | Feature.Model.Requires (a, b) ->
             let without =
               List.filteri (fun j _ -> j <> i) constraints
             in
             let model' = Feature.Model.make ~constraints:without model.concept in
             if
               Feature.Config.mem b
                 (Feature.Config.close model' (Feature.Config.of_names [ a ]))
             then
               Some
                 (Diagnostic.make ~code:"model/redundant-constraint"
                    ~severity:Diagnostic.Info ~subject:a ~witness:[ a; b ]
                    (Printf.sprintf
                       "'%s requires %s' is already implied by the diagram \
                        and the other constraints"
                       a b))
             else None)
  in
  (* [excludes] between two members of the same ALT group restates the
     group's exactly-one semantics. *)
  let alt_excludes =
    let same_alt_group a b =
      List.exists
        (fun (p : Feature.Tree.t) ->
          List.exists
            (fun g ->
              match g with
              | Feature.Tree.Alt_group members ->
                let names =
                  List.map (fun (m : Feature.Tree.t) -> m.Feature.Tree.name) members
                in
                List.mem a names && List.mem b names
              | Feature.Tree.Child _ | Feature.Tree.Or_group _ -> false)
            p.Feature.Tree.groups)
        (Feature.Tree.all_features model.concept)
    in
    List.filter_map
      (fun c ->
        match c with
        | Feature.Model.Excludes (a, b)
          when (not (String.equal a b)) && same_alt_group a b ->
          Some
            (Diagnostic.make ~code:"model/redundant-constraint"
               ~severity:Diagnostic.Info ~subject:a ~witness:[ a; b ]
               (Printf.sprintf
                  "'%s excludes %s' restates the ALT group the two features \
                   already belong to"
                  a b))
        | Feature.Model.Excludes _ | Feature.Model.Requires _ -> None)
      constraints
  in
  contradiction @ duplicates @ implied @ alt_excludes

let defined_nonterminals (fragments : fragments) =
  List.fold_left
    (fun acc (_, rules) ->
      List.fold_left
        (fun acc (r : Grammar.Production.t) -> String_set.add r.lhs acc)
        acc rules)
    String_set.empty fragments

let defining_feature (fragments : fragments) nt =
  List.find_map
    (fun (feature, rules) ->
      if List.exists (fun (r : Grammar.Production.t) -> String.equal r.lhs nt) rules
      then Some feature
      else None)
    fragments

let registry_diagnostics (model : Feature.Model.t) (fragments : fragments) =
  let owners = String_set.of_list (List.map fst fragments) in
  let missing =
    List.filter_map
      (fun name ->
        if String_set.mem name owners then None
        else
          Some
            (Diagnostic.make ~code:"model/fragment-missing"
               ~severity:Diagnostic.Info ~subject:name ~witness:[ name ]
               (Printf.sprintf
                  "feature %S owns no fragment; treated as purely \
                   organizational"
                  name)))
      (Feature.Tree.names model.concept)
  in
  let defined = defined_nonterminals fragments in
  let dangling =
    List.concat_map
      (fun (feature, rules) ->
        List.concat_map
          (fun (r : Grammar.Production.t) ->
            List.filter_map
              (fun nt ->
                if String_set.mem nt defined then None
                else
                  Some
                    (Diagnostic.make ~code:"model/undefined-nt"
                       ~severity:Diagnostic.Error ~subject:nt
                       ~witness:[ feature; r.lhs; nt ]
                       (Printf.sprintf
                          "fragment of %S references <%s> (from <%s>) but no \
                           fragment of any feature defines it"
                          feature nt r.lhs)))
              (Grammar.Production.mentioned_nonterminals r))
          rules)
      fragments
  in
  missing @ dangling

let check ?(fragments = []) model =
  model_diagnostics model @ dead_diagnostics model
  @ false_optional_diagnostics model
  @ constraint_diagnostics model
  @ (match fragments with [] -> [] | _ -> registry_diagnostics model fragments)

let check_selection ~fragments (_model : Feature.Model.t) config =
  let selected =
    List.filter (fun (feature, _) -> Feature.Config.mem feature config) fragments
  in
  let defined = defined_nonterminals selected in
  List.concat_map
    (fun (feature, rules) ->
      List.concat_map
        (fun (r : Grammar.Production.t) ->
          List.filter_map
            (fun nt ->
              if String_set.mem nt defined then None
              else
                let hint = defining_feature fragments nt in
                let hint_text =
                  match hint with
                  | Some f -> Printf.sprintf "; selecting %S would define it" f
                  | None -> ""
                in
                Some
                  (Diagnostic.make ~code:"model/fragment-undefined-nt"
                     ~severity:Diagnostic.Error ~subject:nt
                     ~witness:
                       (feature :: r.lhs :: nt
                        :: (match hint with Some f -> [ f ] | None -> []))
                     (Printf.sprintf
                        "selected fragment of %S references <%s> (from <%s>) \
                         which no selected fragment defines%s"
                        feature nt r.lhs hint_text)))
            (Grammar.Production.mentioned_nonterminals r))
        rules)
    selected
