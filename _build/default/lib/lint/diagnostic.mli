(** Structured lint diagnostics.

    Every analysis of the lint subsystem reports its findings as values of
    {!type:t}: a stable mnemonic code, a severity, the subject of the
    finding (a non-terminal, token or feature name), a human-readable
    message and a {e witness} — the concrete evidence backing the finding
    (a lookahead token sequence for an LL(k) conflict, a reference chain
    for an undefined non-terminal, the features of a contradictory
    constraint pair). Witnesses are what turn "this composition is broken"
    into "here is the input prefix that exposes it". *)

type severity =
  | Error    (** the composed product is broken; fail the build *)
  | Warning  (** suspicious but functional (e.g. backtracking conflicts) *)
  | Info     (** noteworthy observations, no action needed *)

type t = {
  code : string;         (** stable mnemonic, e.g. ["grammar/undefined-nt"] *)
  severity : severity;
  subject : string;      (** non-terminal, token or feature concerned *)
  message : string;
  witness : string list; (** concrete evidence; may be empty *)
}

val make :
  code:string -> severity:severity -> subject:string ->
  ?witness:string list -> string -> t
(** [make ~code ~severity ~subject ?witness message] builds a diagnostic;
    [witness] defaults to the empty list. *)

val severity_rank : severity -> int
(** [Error] ranks 0, [Warning] 1, [Info] 2 — lower is more severe. *)

val compare : t -> t -> int
(** Severity first (most severe first), then code, then subject — the
    presentation order of reports. *)

val count : severity -> t list -> int
val errors : t list -> t list
val has_errors : t list -> bool

val pp_severity : severity Fmt.t
val pp : t Fmt.t
(** One-line rendering: [severity code <subject>: message [witness]]. *)

val pp_report : t list Fmt.t
(** Sorted listing followed by a one-line count summary. *)

val to_json : t -> string
(** One diagnostic as a single-line JSON object with fields [code],
    [severity], [subject], [message], [witness]. *)

val to_json_lines : t list -> string
(** Machine-readable report: one JSON object per line, sorted. *)
