(** Lint of the feature model, its constraints and the fragment registry.

    The analyses work on the forced-selection closure: selecting feature
    [f] forces [close model {f}] (ancestors, mandatory children, [requires]
    closure), so contradictions inside that closure condemn [f] in {e
    every} configuration.

    - {b model well-formedness} ([model/malformed], Error): duplicate
      feature names, constraints naming unknown features.
    - {b dead features} ([model/dead-feature], Error): the closure of [f]
      violates an [excludes] constraint or forces two members of an ALT
      group — no valid configuration can select [f].
    - {b false-optional features} ([model/false-optional], Warning): [f] is
      optional in the diagram (optional child or OR/ALT group member) but
      selecting its parent already forces it through [requires].
    - {b contradictory constraints} ([model/contradiction], Error):
      [a requires b] together with [a excludes b] (either direction), or a
      self-exclusion.
    - {b redundant constraints} ([model/redundant-constraint], Warning for
      exact duplicates, Info for [requires] already implied by the
      diagram/closure or [excludes] between ALT siblings).
    - {b registry coverage} (with [~fragments]): a feature owning no
      fragment at all ([model/fragment-missing], Info) and a fragment
      referencing a non-terminal no fragment anywhere defines
      ([model/undefined-nt], Error).

    {!check_selection} adds the per-configuration coverage check: every
    non-terminal referenced by a selected fragment must be defined by some
    {e selected} fragment ([model/fragment-undefined-nt], Error, with the
    defining feature as hint in the witness) — the lint-level counterpart
    of the composer's coherence rejection. *)

type fragments = (string * Grammar.Production.t list) list
(** [(feature, rules)] view of a fragment registry, kept free of a
    dependency on [Compose] (which itself links against this library). *)

val dead_features : Feature.Model.t -> string list

val false_optional : Feature.Model.t -> (string * string) list
(** [(parent, feature)] pairs: optional [feature] forced whenever [parent]
    is selected. *)

val check : ?fragments:fragments -> Feature.Model.t -> Diagnostic.t list

val check_selection :
  fragments:fragments ->
  Feature.Model.t ->
  Feature.Config.t ->
  Diagnostic.t list
