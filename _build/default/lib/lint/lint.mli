(** The unified static-analysis pass over composed products.

    A composed product has three artifact layers — the grammar, the token
    set and the feature selection it was composed from. {!run} lints
    whichever layers it is given and returns one flat list of structured
    {!Diagnostic.t} values; {!pp_report} and {!to_json_lines} render it for
    humans and machines.

    The intended use is failing at compose time rather than in a user's
    hot path: wire {!run} into {!Compose.Composer.compose}'s [?lint] hook
    (or run [sqlpl lint DIALECT]) and gate on {!Diagnostic.has_errors}. *)

module Diagnostic : module type of Diagnostic
module Lookahead : module type of Lookahead
module Grammar_lint : module type of Grammar_lint
module Token_lint : module type of Token_lint
module Model_lint : module type of Model_lint

val run :
  ?k:int ->
  ?model:Feature.Model.t ->
  ?config:Feature.Config.t ->
  ?fragments:Model_lint.fragments ->
  ?tokens:Lexing_gen.Spec.set ->
  Grammar.Cfg.t ->
  Diagnostic.t list
(** [run grammar] always performs the grammar analyses ({!Grammar_lint},
    with LL(k) conflict detection bounded by [k], default 2). [?tokens]
    adds the token-set analyses ({!Token_lint}); [?model] adds the
    feature-model analyses ({!Model_lint}, with registry coverage when
    [?fragments] is given); [?config] together with [?fragments] adds the
    per-selection fragment coverage check. *)

val pp_report : Diagnostic.t list Fmt.t
(** Human-readable rendering: sorted diagnostics plus a count summary. *)

val to_json_lines : Diagnostic.t list -> string
(** Machine-readable rendering: one JSON object per line. *)
