module String_map = Map.Make (String)

module Seq_set = Set.Make (struct
  type t = string list

  let compare = Stdlib.compare
end)

type t = {
  k : int;
  first_map : Seq_set.t String_map.t;
  follow_map : Seq_set.t String_map.t;
}

let lookup m nt = Option.value ~default:Seq_set.empty (String_map.find_opt nt m)

let rec take n xs =
  match xs with
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Truncated concatenation: sequences of [a] shorter than [k] are complete
   yields and extend with every continuation from [b]; length-k sequences
   are already saturated. *)
let concat_k k a b =
  Seq_set.fold
    (fun x acc ->
      if List.length x >= k then Seq_set.add x acc
      else
        Seq_set.fold (fun y acc -> Seq_set.add (take k (x @ y)) acc) b acc)
    a Seq_set.empty

(* FIRST_k of the Kleene closure of a phrase with FIRST_k set [s]. *)
let star_closure k s =
  let rec fix acc =
    let acc' = Seq_set.union acc (concat_k k s acc) in
    if Seq_set.equal acc acc' then acc else fix acc'
  in
  fix (Seq_set.singleton [])

let rec term_first k env = function
  | Grammar.Production.Sym (Grammar.Symbol.Terminal t) ->
    Seq_set.singleton [ t ]
  | Grammar.Production.Sym (Grammar.Symbol.Nonterminal n) -> lookup env n
  | Grammar.Production.Opt ts -> Seq_set.add [] (alt_first k env ts)
  | Grammar.Production.Star ts -> star_closure k (alt_first k env ts)
  | Grammar.Production.Plus ts ->
    let f = alt_first k env ts in
    concat_k k f (star_closure k f)
  | Grammar.Production.Group alts ->
    List.fold_left
      (fun acc a -> Seq_set.union acc (alt_first k env a))
      Seq_set.empty alts

and alt_first k env = function
  | [] -> Seq_set.singleton []
  | term :: rest -> concat_k k (term_first k env term) (alt_first k env rest)

let compute_first k (g : Grammar.Cfg.t) =
  let step env =
    List.fold_left
      (fun acc (r : Grammar.Production.t) ->
        let f =
          List.fold_left
            (fun s a -> Seq_set.union s (alt_first k acc a))
            (lookup acc r.lhs) r.alts
        in
        String_map.add r.lhs f acc)
      env g.rules
  in
  let rec fix env =
    let env' = step env in
    if String_map.equal Seq_set.equal env env' then env else fix env'
  in
  fix String_map.empty

(* FOLLOW_k: walk every alternative threading the FIRST_k set of the full
   continuation (suffix of the alternative concatenated with FOLLOW_k of the
   rule's left-hand side); mirrors Grammar.Analysis.compute_follow. *)
let compute_follow k (g : Grammar.Cfg.t) first_map =
  let changed = ref true in
  let follow =
    ref (String_map.singleton g.start (Seq_set.singleton [ "EOF" ]))
  in
  let add nt set =
    let cur = lookup !follow nt in
    let next = Seq_set.union cur set in
    if not (Seq_set.equal cur next) then begin
      follow := String_map.add nt next !follow;
      changed := true
    end
  in
  let rec walk_seq lhs seq cont =
    match seq with
    | [] -> ()
    | term :: rest ->
      let tail = concat_k k (alt_first k first_map rest) cont in
      walk_term lhs term tail;
      walk_seq lhs rest cont
  and walk_term lhs term cont =
    match term with
    | Grammar.Production.Sym (Grammar.Symbol.Terminal _) -> ()
    | Grammar.Production.Sym (Grammar.Symbol.Nonterminal n) -> add n cont
    | Grammar.Production.Opt ts -> walk_seq lhs ts cont
    | Grammar.Production.Star ts | Grammar.Production.Plus ts ->
      (* Inside a repetition the phrase may be followed by further
         iterations of itself before the outer continuation. *)
      let self = star_closure k (alt_first k first_map ts) in
      walk_seq lhs ts (concat_k k self cont)
    | Grammar.Production.Group alts ->
      List.iter (fun a -> walk_seq lhs a cont) alts
  in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Grammar.Production.t) ->
        List.iter (fun a -> walk_seq r.lhs a (lookup !follow r.lhs)) r.alts)
      g.rules
  done;
  !follow

let compute ~k g =
  if k < 1 || k > 2 then
    invalid_arg "Lookahead.compute: k must be 1 or 2";
  let first_map = compute_first k g in
  let follow_map = compute_follow k g first_map in
  { k; first_map; follow_map }

let first t nt = lookup t.first_map nt
let follow t nt = lookup t.follow_map nt
let seq_first t alt = alt_first t.k t.first_map alt

let predict t ~lhs alt =
  concat_k t.k (seq_first t alt) (follow t lhs)

type conflict = {
  lhs : string;
  alt_a : int;
  alt_b : int;
  witnesses : string list list;
}

let shortest_first a b =
  match Int.compare (List.length a) (List.length b) with
  | 0 -> Stdlib.compare a b
  | n -> n

let conflicts ~k (g : Grammar.Cfg.t) =
  let t = compute ~k g in
  List.concat_map
    (fun (r : Grammar.Production.t) ->
      let predicted = List.map (predict t ~lhs:r.lhs) r.alts in
      let indexed = List.mapi (fun i p -> (i, p)) predicted in
      List.concat_map
        (fun (i, pi) ->
          List.filter_map
            (fun (j, pj) ->
              if j <= i then None
              else
                let overlap = Seq_set.inter pi pj in
                if Seq_set.is_empty overlap then None
                else
                  Some
                    {
                      lhs = r.lhs;
                      alt_a = i;
                      alt_b = j;
                      witnesses =
                        List.sort shortest_first (Seq_set.elements overlap);
                    })
            indexed)
        indexed)
    g.rules

let pp_conflict ppf c =
  Fmt.pf ppf "<%s>: alternatives %d and %d both predicted by %a" c.lhs
    c.alt_a c.alt_b
    Fmt.(list ~sep:comma (hbox (list ~sep:sp string)))
    c.witnesses
