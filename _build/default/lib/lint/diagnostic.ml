type severity =
  | Error
  | Warning
  | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  witness : string list;
}

let make ~code ~severity ~subject ?(witness = []) message =
  { code; severity; subject; message; witness }

let severity_rank = function
  | Error -> 0
  | Warning -> 1
  | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> (
      match String.compare a.subject b.subject with
      | 0 -> Stdlib.compare (a.message, a.witness) (b.message, b.witness)
      | n -> n)
    | n -> n)
  | n -> n

let count severity ds =
  List.length (List.filter (fun d -> d.severity = severity) ds)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_severity ppf s = Fmt.string ppf (severity_name s)

let pp ppf d =
  Fmt.pf ppf "%-7s %-26s %s: %s" (severity_name d.severity) d.code d.subject
    d.message;
  match d.witness with
  | [] -> ()
  | w -> Fmt.pf ppf "  [%a]" Fmt.(list ~sep:sp string) w

let pp_report ppf ds =
  let sorted = List.sort compare ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) sorted;
  Fmt.pf ppf "%d error(s), %d warning(s), %d info@." (count Error ds)
    (count Warning ds) (count Info ds)

(* Minimal JSON string escaping: the diagnostics only carry grammar/token/
   feature names and plain-ASCII messages, but escape defensively. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"code\":%s,\"severity\":%s,\"subject\":%s,\"message\":%s,\"witness\":[%s]}"
    (json_string d.code)
    (json_string (severity_name d.severity))
    (json_string d.subject) (json_string d.message)
    (String.concat "," (List.map json_string d.witness))

let to_json_lines ds =
  String.concat "" (List.map (fun d -> to_json d ^ "\n") (List.sort compare ds))
