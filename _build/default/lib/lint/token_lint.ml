module String_set = Set.Make (String)
module String_map = Map.Make (String)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let identifier_shaped s =
  String.length s > 0
  && is_ident_start s.[0]
  && String.for_all is_ident_char s

let is_prefix p s =
  String.length p < String.length s
  && String.equal p (String.sub s 0 (String.length p))

(* Group token names by their effective literal: keywords by lowercased
   spelling, puncts by literal. A group with more than one name means only
   one terminal is ever produced by the scanner. *)
let collisions pairs =
  let groups =
    List.fold_left
      (fun m (literal, name) ->
        String_map.update literal
          (fun prev -> Some (name :: Option.value ~default:[] prev))
          m)
      String_map.empty pairs
  in
  String_map.fold
    (fun literal names acc ->
      match names with
      | [] | [ _ ] -> acc
      | _ -> (literal, List.rev names) :: acc)
    groups []

let overlap_diagnostics set =
  let keyword_overlaps =
    List.map
      (fun (spelling, names) ->
        Diagnostic.make ~code:"token/overlap" ~severity:Diagnostic.Error
          ~subject:(List.hd names) ~witness:names
          (Printf.sprintf
             "keyword spelling %S is claimed by tokens %s; only one can be \
              scanned"
             spelling
             (String.concat ", " names)))
      (collisions (Lexing_gen.Spec.keywords set))
  in
  let punct_overlaps =
    List.map
      (fun (literal, names) ->
        Diagnostic.make ~code:"token/overlap" ~severity:Diagnostic.Error
          ~subject:(List.hd names) ~witness:names
          (Printf.sprintf
             "punctuation literal %S is claimed by tokens %s; only one can \
              be scanned"
             literal
             (String.concat ", " names)))
      (collisions (Lexing_gen.Spec.puncts set))
  in
  keyword_overlaps @ punct_overlaps

let keyword_shape_diagnostics set =
  List.filter_map
    (fun (name, def) ->
      match def with
      | Lexing_gen.Spec.Keyword spelling when not (identifier_shaped spelling)
        ->
        Some
          (Diagnostic.make ~code:"token/keyword-shadowed"
             ~severity:Diagnostic.Error ~subject:name ~witness:[ spelling ]
             (Printf.sprintf
                "keyword %s is spelled %S, which the identifier rule can \
                 never scan as a word"
                name spelling))
      | Lexing_gen.Spec.Keyword _ | Lexing_gen.Spec.Punct _
      | Lexing_gen.Spec.Class _ ->
        None)
    set

let punct_prefix_diagnostics set =
  let puncts = Lexing_gen.Spec.puncts set in
  List.concat_map
    (fun (literal, name) ->
      List.filter_map
        (fun (other, other_name) ->
          if is_prefix literal other then
            Some
              (Diagnostic.make ~code:"token/punct-prefix"
                 ~severity:Diagnostic.Info ~subject:name
                 ~witness:[ literal; other ]
                 (Printf.sprintf
                    "literal %S (%s) is a prefix of %S (%s); longest-match \
                     ordering decides"
                    literal name other other_name))
          else None)
        puncts)
    puncts

let reference_diagnostics ~grammar set =
  let declared = String_set.of_list (List.map fst set) in
  let referenced = String_set.of_list (Grammar.Cfg.terminals grammar) in
  let undeclared =
    String_set.fold
      (fun name acc ->
        (* EOF is synthesized by the scanner, never declared. *)
        if String.equal name "EOF" || String_set.mem name declared then acc
        else
          Diagnostic.make ~code:"token/undeclared" ~severity:Diagnostic.Error
            ~subject:name ~witness:[ name ]
            (Printf.sprintf
               "the grammar references terminal %s but no composed token \
                declares it"
               name)
          :: acc)
      referenced []
  in
  let unused =
    List.filter_map
      (fun (name, _) ->
        if String_set.mem name referenced then None
        else
          Some
            (Diagnostic.make ~code:"token/unused" ~severity:Diagnostic.Warning
               ~subject:name ~witness:[ name ]
               (Printf.sprintf
                  "token %s is declared by the composed token set but no \
                   grammar rule references it"
                  name)))
      set
  in
  undeclared @ unused

let check ~grammar set =
  overlap_diagnostics set @ keyword_shape_diagnostics set
  @ punct_prefix_diagnostics set
  @ reference_diagnostics ~grammar set
