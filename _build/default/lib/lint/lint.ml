module Diagnostic = Diagnostic
module Lookahead = Lookahead
module Grammar_lint = Grammar_lint
module Token_lint = Token_lint
module Model_lint = Model_lint

let run ?(k = 2) ?model ?config ?(fragments = []) ?tokens grammar =
  let grammar_diags = Grammar_lint.check ~k grammar in
  let token_diags =
    match tokens with
    | None -> []
    | Some set -> Token_lint.check ~grammar set
  in
  let model_diags =
    match model with
    | None -> []
    | Some m -> Model_lint.check ~fragments m
  in
  let selection_diags =
    match model, config, fragments with
    | Some m, Some c, (_ :: _ as frags) ->
      Model_lint.check_selection ~fragments:frags m c
    | _ -> []
  in
  grammar_diags @ token_diags @ model_diags @ selection_diags

let pp_report = Diagnostic.pp_report
let to_json_lines = Diagnostic.to_json_lines
