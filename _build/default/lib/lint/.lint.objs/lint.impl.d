lib/lint/lint.ml: Diagnostic Grammar_lint Lookahead Model_lint Token_lint
