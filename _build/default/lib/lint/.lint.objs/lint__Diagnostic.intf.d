lib/lint/diagnostic.mli: Fmt
