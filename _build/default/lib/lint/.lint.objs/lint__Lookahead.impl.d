lib/lint/lookahead.ml: Fmt Grammar Int List Map Option Set Stdlib String
