lib/lint/grammar_lint.mli: Diagnostic Grammar
