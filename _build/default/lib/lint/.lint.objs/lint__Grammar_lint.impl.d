lib/lint/grammar_lint.ml: Diagnostic Grammar List Lookahead Printf Set String
