lib/lint/token_lint.ml: Diagnostic Grammar Lexing_gen List Map Option Printf Set String
