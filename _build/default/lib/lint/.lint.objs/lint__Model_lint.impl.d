lib/lint/model_lint.ml: Diagnostic Feature Fmt Grammar List Printf Set String
