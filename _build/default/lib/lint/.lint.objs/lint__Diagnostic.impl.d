lib/lint/diagnostic.ml: Buffer Char Fmt Int List Printf Stdlib String
