lib/lint/lint.mli: Diagnostic Feature Fmt Grammar Grammar_lint Lexing_gen Lookahead Model_lint Token_lint
