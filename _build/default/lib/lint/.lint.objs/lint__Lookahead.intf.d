lib/lint/lookahead.mli: Fmt Grammar Set
