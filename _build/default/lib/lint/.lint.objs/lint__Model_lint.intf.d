lib/lint/model_lint.mli: Diagnostic Feature Grammar
