lib/lint/token_lint.mli: Diagnostic Grammar Lexing_gen
