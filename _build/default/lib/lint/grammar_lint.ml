module String_set = Set.Make (String)

(* Productivity: a non-terminal is productive when some alternative consists
   only of productive terms. Opt/Star are productive by taking zero
   iterations; Plus needs one productive iteration; a reference to an
   undefined non-terminal is never productive. *)
let productive_set (g : Grammar.Cfg.t) =
  let rec term_prod prod = function
    | Grammar.Production.Sym (Grammar.Symbol.Terminal _) -> true
    | Grammar.Production.Sym (Grammar.Symbol.Nonterminal n) ->
      String_set.mem n prod
    | Grammar.Production.Opt _ | Grammar.Production.Star _ -> true
    | Grammar.Production.Plus ts -> List.for_all (term_prod prod) ts
    | Grammar.Production.Group alts ->
      List.exists (fun a -> List.for_all (term_prod prod) a) alts
  in
  let step prod =
    List.fold_left
      (fun acc (r : Grammar.Production.t) ->
        if String_set.mem r.lhs acc then acc
        else if
          List.exists (fun a -> List.for_all (term_prod acc) a) r.alts
        then String_set.add r.lhs acc
        else acc)
      prod g.rules
  in
  let rec fix s =
    let s' = step s in
    if String_set.equal s s' then s else fix s'
  in
  fix String_set.empty

let unproductive (g : Grammar.Cfg.t) =
  let prod = productive_set g in
  List.filter_map
    (fun (r : Grammar.Production.t) ->
      if String_set.mem r.lhs prod then None else Some r.lhs)
    g.rules

let duplicate_alternatives (g : Grammar.Cfg.t) =
  List.concat_map
    (fun (r : Grammar.Production.t) ->
      let rec dups seen = function
        | [] -> []
        | alt :: rest ->
          if List.exists (Grammar.Production.alt_equal alt) seen then
            (r.lhs, alt) :: dups seen rest
          else dups (alt :: seen) rest
      in
      dups [] r.alts)
    g.rules

let alt_witness alt =
  List.map Grammar.Symbol.name (Grammar.Production.flatten alt)

let structure_diagnostics g =
  let reachable, undefined =
    List.fold_left
      (fun (reach, undef) problem ->
        match problem with
        | Grammar.Cfg.Unreachable_rule nt -> (String_set.remove nt reach, undef)
        | Grammar.Cfg.Undefined_nonterminal { nonterminal; referenced_from } ->
          (reach, (nonterminal, referenced_from) :: undef)
        | Grammar.Cfg.Undefined_start -> (reach, undef))
      (String_set.of_list (Grammar.Cfg.defined g), [])
      (Grammar.Cfg.check g)
  in
  let undefined_diags =
    List.rev_map
      (fun (nt, from) ->
        Diagnostic.make ~code:"grammar/undefined-nt" ~severity:Diagnostic.Error
          ~subject:nt
          ~witness:[ from; nt ]
          (Printf.sprintf
             "non-terminal <%s> is referenced from <%s> but no rule defines \
              it"
             nt from))
      undefined
  in
  let unreachable_diags =
    List.filter_map
      (function
        | Grammar.Cfg.Unreachable_rule nt ->
          Some
            (Diagnostic.make ~code:"grammar/unreachable"
               ~severity:Diagnostic.Warning ~subject:nt
               ~witness:[ g.Grammar.Cfg.start ]
               (Printf.sprintf
                  "rule <%s> is not reachable from the start symbol <%s>" nt
                  g.Grammar.Cfg.start))
        | Grammar.Cfg.Undefined_nonterminal _ | Grammar.Cfg.Undefined_start ->
          None)
      (Grammar.Cfg.check g)
  in
  let start_diags =
    if Grammar.Cfg.find g g.Grammar.Cfg.start = None then
      [
        Diagnostic.make ~code:"grammar/undefined-start"
          ~severity:Diagnostic.Error ~subject:g.Grammar.Cfg.start
          ~witness:[ g.Grammar.Cfg.start ]
          "the start symbol has no defining rule";
      ]
    else []
  in
  let unproductive_diags =
    List.map
      (fun nt ->
        let severity =
          if String_set.mem nt reachable then Diagnostic.Error
          else Diagnostic.Warning
        in
        Diagnostic.make ~code:"grammar/unproductive" ~severity ~subject:nt
          ~witness:[ nt ]
          (Printf.sprintf
             "rule <%s> derives no terminal string; every parse through it \
              fails"
             nt))
      (unproductive g)
  in
  let duplicate_diags =
    List.map
      (fun (lhs, alt) ->
        Diagnostic.make ~code:"grammar/duplicate-alt"
          ~severity:Diagnostic.Warning ~subject:lhs ~witness:(alt_witness alt)
          (Printf.sprintf
             "rule <%s> lists a structurally identical alternative twice; \
              the later copy can never match"
             lhs))
      (duplicate_alternatives g)
  in
  start_diags @ undefined_diags @ unproductive_diags @ unreachable_diags
  @ duplicate_diags

let witness_text w = String.concat " " w

let conflict_diagnostics ~k g =
  let ll1 = Lookahead.conflicts ~k:1 g in
  if k <= 1 then
    List.map
      (fun (c : Lookahead.conflict) ->
        let w = List.hd c.witnesses in
        Diagnostic.make ~code:"grammar/ll1-conflict"
          ~severity:Diagnostic.Warning ~subject:c.lhs ~witness:w
          (Printf.sprintf
             "alternatives %d and %d of <%s> are both predicted by lookahead \
              '%s'"
             c.alt_a c.alt_b c.lhs (witness_text w)))
      ll1
  else
    let ll2 = Lookahead.conflicts ~k:2 g in
    let persists (c : Lookahead.conflict) =
      List.find_opt
        (fun (c2 : Lookahead.conflict) ->
          String.equal c2.lhs c.lhs && c2.alt_a = c.alt_a && c2.alt_b = c.alt_b)
        ll2
    in
    List.map
      (fun (c : Lookahead.conflict) ->
        match persists c with
        | Some c2 ->
          let w = List.hd c2.witnesses in
          Diagnostic.make ~code:"grammar/ll2-conflict"
            ~severity:Diagnostic.Warning ~subject:c.lhs ~witness:w
            (Printf.sprintf
               "alternatives %d and %d of <%s> stay ambiguous under 2-token \
                lookahead '%s'; the generated parser backtracks here"
               c.alt_a c.alt_b c.lhs (witness_text w))
        | None ->
          let w = List.hd c.witnesses in
          Diagnostic.make ~code:"grammar/ll1-conflict"
            ~severity:Diagnostic.Info ~subject:c.lhs ~witness:w
            (Printf.sprintf
               "alternatives %d and %d of <%s> overlap on lookahead '%s' but \
                are resolved by the second token"
               c.alt_a c.alt_b c.lhs (witness_text w)))
      ll1

let check ?(k = 2) g = structure_diagnostics g @ conflict_diagnostics ~k g
