(** Minimal arbitrary-precision natural numbers.

    Configuration counts of realistic feature models overflow native
    integers (a model with 500 optional features has ~2{^500} products), so
    the counting analysis needs big naturals. Only the operations the
    counting needs are provided. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** Requires a non-negative argument. *)

val add : t -> t -> t
val mul : t -> t -> t
val pred : t -> t
(** Saturating predecessor: [pred zero = zero]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t
(** Parses a decimal string of digits. Raises [Invalid_argument] on anything
    else. *)

val to_int_opt : t -> int option
(** [None] when the value exceeds [max_int]. *)

val digits : t -> int
(** Number of decimal digits ([digits zero = 1]). *)

val pp : t Fmt.t
