(* A renderable row: its text plus nested rows. Group arcs become rows of
   their own with the group members nested beneath. *)
type row = {
  text : string;
  children : row list;
}

let label ?selected decoration (f : Tree.t) =
  let card =
    match f.card with
    | None -> ""
    | Some c -> Fmt.str " %a" Tree.pp_cardinality c
  in
  let checkbox =
    match selected with
    | None -> ""
    | Some config -> if Config.mem f.name config then "[x] " else "[ ] "
  in
  Printf.sprintf "%s%s%s%s" checkbox decoration f.name card

let render_with ?selected tree =
  let rec feature_row decoration (f : Tree.t) =
    { text = label ?selected decoration f; children = rows_of f }
  and rows_of (f : Tree.t) =
    List.concat_map
      (fun g ->
        match g with
        | Tree.Child (Tree.Mandatory, c) -> [ feature_row "* " c ]
        | Tree.Child (Tree.Optional, c) -> [ feature_row "o " c ]
        | Tree.Or_group members ->
          [ { text = "<or>"; children = List.map (feature_row "") members } ]
        | Tree.Alt_group members ->
          [ { text = "<xor>"; children = List.map (feature_row "") members } ])
      f.groups
  in
  let buf = Buffer.create 1024 in
  let rec draw prefix rows =
    match rows with
    | [] -> ()
    | row :: rest ->
      let is_last = rest = [] in
      Buffer.add_string buf prefix;
      Buffer.add_string buf (if is_last then "`-- " else "|-- ");
      Buffer.add_string buf row.text;
      Buffer.add_char buf '\n';
      draw (prefix ^ if is_last then "    " else "|   ") row.children;
      draw prefix rest
  in
  Buffer.add_string buf (label ?selected "" tree);
  Buffer.add_char buf '\n';
  draw "" (rows_of tree);
  Buffer.contents buf

let render tree = render_with tree
let render_selected config tree = render_with ~selected:config tree
