(** Textual rendering of feature diagrams.

    Renders the tree notation used by the paper's Figures 1 and 2 as ASCII
    art: [*] marks mandatory children, [o] optional children, [<or>] and
    [<xor>] group arcs, and cardinalities are printed after the feature
    name. *)

val render : Tree.t -> string
(** Multi-line rendering, one feature per line. *)

val render_selected : Config.t -> Tree.t -> string
(** Like {!render}, with a [x]/[ ] checkbox per feature showing a
    configuration. *)
