module String_set = Set.Make (String)

type t = String_set.t

let of_names = String_set.of_list
let to_names = String_set.elements
let mem = String_set.mem
let cardinal = String_set.cardinal
let union = String_set.union

type violation =
  | Unknown_feature of string
  | Concept_not_selected of string
  | Parent_not_selected of { feature : string; parent : string }
  | Mandatory_child_missing of { parent : string; child : string }
  | Alt_group_violation of { parent : string; selected : string list }
  | Or_group_violation of { parent : string }
  | Requires_violation of { feature : string; missing : string }
  | Excludes_violation of { feature : string; conflicting : string }

let pp_violation ppf = function
  | Unknown_feature n -> Fmt.pf ppf "unknown feature %S" n
  | Concept_not_selected n -> Fmt.pf ppf "concept %S not selected" n
  | Parent_not_selected { feature; parent } ->
    Fmt.pf ppf "%S selected but its parent %S is not" feature parent
  | Mandatory_child_missing { parent; child } ->
    Fmt.pf ppf "%S selected but mandatory child %S is not" parent child
  | Alt_group_violation { parent; selected } ->
    Fmt.pf ppf "alternative group under %S needs exactly one selection, got {%a}"
      parent Fmt.(list ~sep:comma string) selected
  | Or_group_violation { parent } ->
    Fmt.pf ppf "OR group under %S needs at least one selection" parent
  | Requires_violation { feature; missing } ->
    Fmt.pf ppf "%S requires %S, which is not selected" feature missing
  | Excludes_violation { feature; conflicting } ->
    Fmt.pf ppf "%S excludes %S, but both are selected" feature conflicting

let validate (model : Model.t) config =
  let tree = model.concept in
  let known = Tree.names tree in
  let unknown =
    List.filter_map
      (fun n -> if List.mem n known then None else Some (Unknown_feature n))
      (String_set.elements config)
  in
  let concept =
    if String_set.mem tree.name config then []
    else [ Concept_not_selected tree.name ]
  in
  let structural =
    List.concat_map
      (fun (f : Tree.t) ->
        if not (String_set.mem f.name config) then
          (* An unselected feature constrains nothing, but its selected
             children are orphaned. *)
          List.filter_map
            (fun (c : Tree.t) ->
              if String_set.mem c.name config then
                Some (Parent_not_selected { feature = c.name; parent = f.name })
              else None)
            (Tree.children f)
        else
          List.concat_map
            (fun g ->
              match g with
              | Tree.Child (Tree.Mandatory, c) ->
                if String_set.mem c.name config then []
                else [ Mandatory_child_missing { parent = f.name; child = c.name } ]
              | Tree.Child (Tree.Optional, _) -> []
              | Tree.Alt_group members ->
                let selected =
                  List.filter_map
                    (fun (m : Tree.t) ->
                      if String_set.mem m.name config then Some m.name else None)
                    members
                in
                if List.length selected = 1 then []
                else [ Alt_group_violation { parent = f.name; selected } ]
              | Tree.Or_group members ->
                if
                  List.exists
                    (fun (m : Tree.t) -> String_set.mem m.name config)
                    members
                then []
                else [ Or_group_violation { parent = f.name } ])
            f.groups)
      (Tree.all_features tree)
  in
  let cross =
    List.concat_map
      (fun c ->
        match c with
        | Model.Requires (a, b) ->
          if String_set.mem a config && not (String_set.mem b config) then
            [ Requires_violation { feature = a; missing = b } ]
          else []
        | Model.Excludes (a, b) ->
          if String_set.mem a config && String_set.mem b config then
            [ Excludes_violation { feature = a; conflicting = b } ]
          else [])
      model.constraints
  in
  unknown @ concept @ structural @ cross

let is_valid model config = validate model config = []

let close (model : Model.t) seed =
  let tree = model.concept in
  let step config =
    let config =
      (* Ancestors of selected features. *)
      String_set.fold
        (fun name acc ->
          match Tree.parent tree name with
          | Some p -> String_set.add p.name acc
          | None -> acc)
        config config
    in
    let config =
      (* Mandatory children of selected features. *)
      List.fold_left
        (fun acc (f : Tree.t) ->
          if not (String_set.mem f.name acc) then acc
          else
            List.fold_left
              (fun acc g ->
                match g with
                | Tree.Child (Tree.Mandatory, c) -> String_set.add c.name acc
                | Tree.Child (Tree.Optional, _) | Tree.Or_group _ | Tree.Alt_group _
                  -> acc)
              acc f.groups)
        config (Tree.all_features tree)
    in
    (* Requires closure. *)
    List.fold_left
      (fun acc c ->
        match c with
        | Model.Requires (a, b) when String_set.mem a acc -> String_set.add b acc
        | Model.Requires _ | Model.Excludes _ -> acc)
      config model.constraints
  in
  let rec fix c =
    let c' = step c in
    if String_set.equal c c' then c else fix c'
  in
  fix (String_set.add tree.name seed)

let full (model : Model.t) = of_names (Tree.names model.concept)

(* Small deterministic linear-congruential generator so sampling does not
   depend on global Random state. *)
let sample (model : Model.t) ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let next_bool () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state land 0x10000 <> 0
  in
  let next_index n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 7) mod n
  in
  let rec select acc (f : Tree.t) =
    let acc = String_set.add f.name acc in
    List.fold_left
      (fun acc g ->
        match g with
        | Tree.Child (Tree.Mandatory, c) -> select acc c
        | Tree.Child (Tree.Optional, c) -> if next_bool () then select acc c else acc
        | Tree.Alt_group members ->
          let chosen = List.nth members (next_index (List.length members)) in
          select acc chosen
        | Tree.Or_group members ->
          let picked = List.filter (fun _ -> next_bool ()) members in
          let picked =
            match picked with
            | [] -> [ List.nth members (next_index (List.length members)) ]
            | _ :: _ -> picked
          in
          List.fold_left select acc picked)
      acc f.groups
  in
  close model (select String_set.empty model.concept)
