(** Feature diagrams.

    A feature diagram models a concept as a tree of features (FODA-style):
    every feature owns a list of child {e groups} — single children that are
    mandatory or optional, OR groups (select at least one) and ALT groups
    (select exactly one). A feature may carry a UML-style cardinality
    annotation such as the paper's [Select Sublist \[1..*\]]. *)

type cardinality = {
  min : int;
  max : int option;  (** [None] means unbounded ([*]) *)
}

type relation =
  | Mandatory
  | Optional

type t = {
  name : string;
  card : cardinality option;
  groups : group list;
}

and group =
  | Child of relation * t
  | Or_group of t list   (** select at least one when the parent is selected *)
  | Alt_group of t list  (** select exactly one when the parent is selected *)

val leaf : ?card:cardinality -> string -> t
(** A feature with no children. *)

val feature : ?card:cardinality -> string -> group list -> t

val mandatory : t -> group
val optional : t -> group

val one_or_more : cardinality
(** The [\[1..*\]] cardinality. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all features of the diagram. *)

val all_features : t -> t list
(** All features in pre-order (the diagram's concept first). *)

val names : t -> string list

val feature_count : t -> int

val find : t -> string -> t option
(** [find tree name] is the feature named [name], if present. *)

val parent : t -> string -> t option
(** [parent tree name] is the feature whose groups contain [name]. [None] for
    the root or unknown names. *)

val children : t -> t list
(** Immediate children of a feature across all its groups. *)

val depth : t -> int

val duplicate_names : t -> string list
(** Names used by more than one feature — diagrams must be duplicate-free to
    be usable as configuration spaces. *)

val pp_cardinality : cardinality Fmt.t
