type constraint_ =
  | Requires of string * string
  | Excludes of string * string

type t = {
  concept : Tree.t;
  constraints : constraint_ list;
}

let make ?(constraints = []) concept = { concept; constraints }

let pp_constraint ppf = function
  | Requires (a, b) -> Fmt.pf ppf "%s requires %s" a b
  | Excludes (a, b) -> Fmt.pf ppf "%s excludes %s" a b

type problem =
  | Duplicate_feature of string
  | Constraint_on_unknown_feature of string

let pp_problem ppf = function
  | Duplicate_feature n -> Fmt.pf ppf "duplicate feature name %S" n
  | Constraint_on_unknown_feature n ->
    Fmt.pf ppf "constraint mentions unknown feature %S" n

let check m =
  let dups = List.map (fun n -> Duplicate_feature n) (Tree.duplicate_names m.concept) in
  let known = Tree.names m.concept in
  let unknown =
    List.concat_map
      (fun c ->
        let a, b = match c with Requires (a, b) | Excludes (a, b) -> (a, b) in
        List.filter_map
          (fun n ->
            if List.mem n known then None
            else Some (Constraint_on_unknown_feature n))
          [ a; b ])
      m.constraints
  in
  dups @ unknown

let requires_of m name =
  List.filter_map
    (function
      | Requires (a, b) when String.equal a name -> Some b
      | Requires _ | Excludes _ -> None)
    m.constraints

let feature_count m = Tree.feature_count m.concept
