lib/feature/count.ml: Bignum List Tree
