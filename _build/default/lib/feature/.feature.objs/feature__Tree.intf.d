lib/feature/tree.mli: Fmt
