lib/feature/bignum.mli: Fmt
