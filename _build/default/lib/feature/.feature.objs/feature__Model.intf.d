lib/feature/model.mli: Fmt Tree
