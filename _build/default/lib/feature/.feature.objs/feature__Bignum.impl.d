lib/feature/bignum.ml: Fmt Int List Printf String
