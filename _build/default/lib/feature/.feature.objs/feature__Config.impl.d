lib/feature/config.ml: Fmt List Model Set String Tree
