lib/feature/config.mli: Fmt Model Set
