lib/feature/count.mli: Bignum Tree
