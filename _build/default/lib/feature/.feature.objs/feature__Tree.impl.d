lib/feature/tree.ml: Fmt List String
