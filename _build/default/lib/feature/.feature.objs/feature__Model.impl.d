lib/feature/model.ml: Fmt List String Tree
