lib/feature/diagram.ml: Buffer Config Fmt List Printf Tree
