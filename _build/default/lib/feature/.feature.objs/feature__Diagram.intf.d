lib/feature/diagram.mli: Config Tree
