(* Little-endian limbs in base 10^9. The invariant is: no trailing zero
   limb, except that zero is represented by the empty list. *)

let base = 1_000_000_000

type t = int list

let zero = []
let one = [ 1 ]

let normalize limbs =
  let rec strip = function 0 :: rest -> strip rest | l -> l in
  List.rev (strip (List.rev limbs))

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec go n = if n = 0 then [] else (n mod base) :: go (n / base) in
  go n

let add a b =
  let rec go carry a b =
    match a, b with
    | [], [] -> if carry = 0 then [] else [ carry ]
    | x :: a', [] -> go_one carry x a'
    | [], y :: b' -> go_one carry y b'
    | x :: a', y :: b' ->
      let s = x + y + carry in
      (s mod base) :: go (s / base) a' b'
  and go_one carry x rest =
    let s = x + carry in
    (s mod base) :: (if s / base = 0 then rest else go (s / base) rest [])
  in
  go 0 a b

let mul_small a k =
  if k = 0 then []
  else
    let rec go carry = function
      | [] -> if carry = 0 then [] else of_int carry
      | x :: rest ->
        let p = (x * k) + carry in
        (p mod base) :: go (p / base) rest
    in
    go 0 a

let mul a b =
  let rec go shift acc = function
    | [] -> acc
    | y :: rest ->
      let partial = List.init shift (fun _ -> 0) @ mul_small a y in
      go (shift + 1) (add acc partial) rest
  in
  normalize (go 0 zero b)

let pred = function
  | [] -> []
  | limbs ->
    let rec go = function
      | [] -> []
      | x :: rest -> if x = 0 then (base - 1) :: go rest else (x - 1) :: rest
    in
    normalize (go limbs)

let compare a b =
  let la = List.length a and lb = List.length b in
  if la <> lb then Int.compare la lb
  else List.compare Int.compare (List.rev a) (List.rev b)

let equal a b = compare a b = 0

let to_string = function
  | [] -> "0"
  | limbs ->
    (match List.rev limbs with
     | [] -> assert false
     | hi :: rest ->
       String.concat ""
         (string_of_int hi :: List.map (Printf.sprintf "%09d") rest))

let of_string s =
  if s = "" then invalid_arg "Bignum.of_string: empty";
  String.iter
    (fun c -> if not ('0' <= c && c <= '9') then invalid_arg "Bignum.of_string")
    s;
  let n = String.length s in
  let rec pow10 k = if k = 0 then 1 else 10 * pow10 (k - 1) in
  let rec go acc i =
    if i >= n then acc
    else
      let chunk = min 9 (n - i) in
      let v = int_of_string (String.sub s i chunk) in
      let acc = add (mul_small acc (pow10 chunk)) (of_int v) in
      go acc (i + chunk)
  in
  normalize (go zero 0)

let to_int_opt n =
  (* Horner evaluation from the most significant limb, with overflow check. *)
  let rec horner acc = function
    | [] -> Some acc
    | x :: rest ->
      if acc > (max_int - x) / base then None else horner ((acc * base) + x) rest
  in
  horner 0 (List.rev n)

let digits n = String.length (to_string n)
let pp ppf n = Fmt.string ppf (to_string n)
