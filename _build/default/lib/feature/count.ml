let rec products (f : Tree.t) =
  List.fold_left
    (fun acc g -> Bignum.mul acc (group_products g))
    Bignum.one f.groups

and group_products = function
  | Tree.Child (Tree.Mandatory, c) -> products c
  | Tree.Child (Tree.Optional, c) -> Bignum.add Bignum.one (products c)
  | Tree.Alt_group members ->
    List.fold_left
      (fun acc m -> Bignum.add acc (products m))
      Bignum.zero members
  | Tree.Or_group members ->
    let all =
      List.fold_left
        (fun acc m -> Bignum.mul acc (Bignum.add Bignum.one (products m)))
        Bignum.one members
    in
    Bignum.pred all

let products_per_diagram diagrams =
  List.map (fun (name, tree) -> (name, products tree)) diagrams
