(** Feature models: a feature diagram plus cross-tree constraints.

    The paper expresses feature dependencies as [requires] / [excludes]
    conditions which induce the {e composition sequence} of the selected
    sub-grammars. *)

type constraint_ =
  | Requires of string * string  (** selecting the first needs the second *)
  | Excludes of string * string  (** the two cannot both be selected *)

type t = {
  concept : Tree.t;
  constraints : constraint_ list;
}

val make : ?constraints:constraint_ list -> Tree.t -> t

val pp_constraint : constraint_ Fmt.t

type problem =
  | Duplicate_feature of string
  | Constraint_on_unknown_feature of string

val check : t -> problem list
(** Model well-formedness: duplicate feature names, constraints mentioning
    unknown features. *)

val pp_problem : problem Fmt.t

val requires_of : t -> string -> string list
(** Features directly required by the given feature. *)

val feature_count : t -> int
