(** Counting the products of a feature model.

    [products] counts the valid tree selections of the diagram, ignoring
    cross-tree constraints (the standard "number of configurations" measure
    reported for feature models; exact treatment of requires/excludes needs a
    SAT-based analysis, out of the paper's scope). *)

val products : Tree.t -> Bignum.t
(** Number of distinct valid selections of the diagram rooted at the
    concept:

    - a mandatory child contributes a factor [products child];
    - an optional child contributes [1 + products child];
    - an ALT group contributes the sum of its members' counts;
    - an OR group contributes [∏ (1 + products member) - 1]. *)

val products_per_diagram : (string * Tree.t) list -> (string * Bignum.t) list
(** Counts for a family of published diagrams. *)
