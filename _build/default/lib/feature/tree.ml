type cardinality = {
  min : int;
  max : int option;
}

type relation =
  | Mandatory
  | Optional

type t = {
  name : string;
  card : cardinality option;
  groups : group list;
}

and group =
  | Child of relation * t
  | Or_group of t list
  | Alt_group of t list

let leaf ?card name = { name; card; groups = [] }
let feature ?card name groups = { name; card; groups }
let mandatory f = Child (Mandatory, f)
let optional f = Child (Optional, f)
let one_or_more = { min = 1; max = None }

let group_features = function
  | Child (_, f) -> [ f ]
  | Or_group fs | Alt_group fs -> fs

let children f = List.concat_map group_features f.groups

let rec fold fn acc f =
  let acc = fn acc f in
  List.fold_left (fun acc c -> fold fn acc c) acc (children f)

let all_features f = List.rev (fold (fun acc f -> f :: acc) [] f)
let names f = List.map (fun f -> f.name) (all_features f)
let feature_count f = List.length (all_features f)

let find tree name =
  List.find_opt (fun f -> String.equal f.name name) (all_features tree)

let parent tree name =
  List.find_opt
    (fun f -> List.exists (fun c -> String.equal c.name name) (children f))
    (all_features tree)

let rec depth f =
  match children f with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 cs

let duplicate_names tree =
  let sorted = List.sort String.compare (names tree) in
  let rec dups = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then a :: dups (List.filter (fun x -> not (String.equal x a)) rest)
      else dups rest
    | _ -> []
  in
  dups sorted

let pp_cardinality ppf c =
  match c.max with
  | Some m when m = c.min -> Fmt.pf ppf "[%d]" c.min
  | Some m -> Fmt.pf ppf "[%d..%d]" c.min m
  | None -> Fmt.pf ppf "[%d..*]" c.min
