(** Configurations ({e feature instance descriptions}).

    A configuration is the set of selected feature names. Validity follows
    FODA semantics: the concept is selected; a selected feature's parent is
    selected; mandatory children of selected features are selected; ALT
    groups of a selected parent have exactly one selected member; OR groups
    have at least one; [requires] / [excludes] constraints hold. *)

module String_set : Set.S with type elt = string

type t = String_set.t

val of_names : string list -> t
val to_names : t -> string list
val mem : string -> t -> bool
val cardinal : t -> int
val union : t -> t -> t

type violation =
  | Unknown_feature of string
  | Concept_not_selected of string
  | Parent_not_selected of { feature : string; parent : string }
  | Mandatory_child_missing of { parent : string; child : string }
  | Alt_group_violation of { parent : string; selected : string list }
  | Or_group_violation of { parent : string }
  | Requires_violation of { feature : string; missing : string }
  | Excludes_violation of { feature : string; conflicting : string }

val pp_violation : violation Fmt.t

val validate : Model.t -> t -> violation list
(** All violations of the configuration against the model; a valid
    configuration yields [[]]. *)

val is_valid : Model.t -> t -> bool

val close : Model.t -> t -> t
(** [close model seed] is the least configuration containing [seed] that is
    closed under: ancestors of selected features, mandatory children of
    selected features, and [requires] constraints. This lets dialects be
    written as small seed sets. The result may still violate OR/ALT group or
    [excludes] constraints — run {!validate} afterwards. *)

val full : Model.t -> t
(** Every feature of the model. *)

val sample : Model.t -> seed:int -> t
(** A pseudo-random tree selection (top-down: mandatory children always,
    optional children with probability 1/2, one ALT member, a non-empty OR
    subset), then closed under [requires]. Deterministic in [seed].
    Structurally valid by construction for constraint-free models; when
    [requires] constraints target ALT/OR group members or [excludes]
    constraints exist, the closure can reintroduce violations — run
    {!validate} before using a sample. Used by property-based tests. *)
