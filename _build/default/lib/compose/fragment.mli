(** Grammar fragments: the unit of composition.

    Each feature of the model owns a fragment — the feature's sub-grammar
    plus its token file. Purely organizational features (inner nodes that
    only group others) own the empty fragment. *)

type t = {
  feature : string;                        (** owning feature name *)
  rules : Grammar.Production.t list;       (** sub-grammar *)
  tokens : Lexing_gen.Spec.set;            (** token file *)
}

val empty : string -> t
val make :
  feature:string ->
  ?tokens:Lexing_gen.Spec.set ->
  Grammar.Production.t list ->
  t

val is_empty : t -> bool

type registry
(** Maps feature names to their fragments. *)

val registry : t list -> registry
val find : registry -> string -> t option
val fragments : registry -> t list

val defining_feature : registry -> string -> string option
(** [defining_feature reg nt] is a feature whose fragment defines the
    non-terminal [nt] — used to hint which missing feature would fix an
    undefined-non-terminal composition problem. *)
