lib/compose/fragment.mli: Grammar Lexing_gen
