lib/compose/composer.ml: Feature Fmt Fragment Grammar Lexing_gen List Option Rules String
