lib/compose/composer.ml: Feature Fmt Fragment Grammar Lexing_gen Lint List Option Rules String
