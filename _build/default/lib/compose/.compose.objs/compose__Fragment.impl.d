lib/compose/fragment.ml: Grammar Lexing_gen List Map String
