lib/compose/rules.mli: Fmt Grammar
