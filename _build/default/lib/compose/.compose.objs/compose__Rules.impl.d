lib/compose/rules.ml: Fmt Grammar List Option Production String Symbol
