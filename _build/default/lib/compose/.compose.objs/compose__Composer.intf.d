lib/compose/composer.mli: Feature Fmt Fragment Grammar Lexing_gen Lint Rules
