(** The paper's grammar-composition calculus (§3.2).

    Production rules labelled with the same non-terminal are composed
    alternative by alternative:

    - if the new and old alternatives are equal, nothing changes;
    - if both have the same {e required skeleton} (the sequence of
      non-optional terms), their optional parts are merged, each optional
      group staying anchored after its corresponding non-optional term —
      the paper's "we compose any optional specification within a production
      after the corresponding non optional specification";
    - if the new alternative {e contains} the old one (both start with the
      same symbol and the old flattened symbol sequence is a subsequence of
      the new one — this subsumes the paper's plain [A: BC] vs [A: B],
      optional [A: B\[C\]] vs [A: B], and sublist-vs-complex-list
      [A: B \[, B\]] vs [A: B] cases; anchoring at the head symbol prevents
      unrelated alternatives that merely share a suffix from capturing each
      other), the new one replaces it;
    - if the new alternative is contained in the old one, the old one is
      retained;
    - otherwise the new alternative is appended as an additional choice. *)

type outcome =
  | Kept_old     (** old production retained (equal or containing) *)
  | Merged       (** optional parts merged into the anchored skeleton *)
  | Replaced     (** new production replaced the old one *)
  | Appended     (** appended as an additional choice *)

val pp_outcome : outcome Fmt.t

val mergeable : Grammar.Production.alt -> Grammar.Production.alt -> bool
(** Same required skeleton? *)

val merge : Grammar.Production.alt -> Grammar.Production.alt -> Grammar.Production.alt
(** Anchored merge of optional parts; undefined unless {!mergeable}. *)

val contains : Grammar.Production.alt -> Grammar.Production.alt -> bool
(** [contains a b]: [a] contains [b] in the paper's sense (head-anchored
    flattened-subsequence test). *)

val compose_alt :
  Grammar.Production.alt list ->
  Grammar.Production.alt ->
  Grammar.Production.alt list * outcome
(** Compose one new alternative into the alternatives of an existing rule. *)

val compose_production :
  Grammar.Production.t -> Grammar.Production.t -> Grammar.Production.t
(** Compose two rules for the same non-terminal (raises [Invalid_argument]
    on differing left-hand sides). *)

val compose_rules :
  Grammar.Production.t list ->
  Grammar.Production.t list ->
  Grammar.Production.t list
(** Compose a fragment's rules into an accumulated rule list: same-lhs rules
    compose, fresh rules are appended in order. *)
