open Grammar

type outcome =
  | Kept_old
  | Merged
  | Replaced
  | Appended

let pp_outcome ppf o =
  Fmt.string ppf
    (match o with
     | Kept_old -> "kept-old"
     | Merged -> "merged"
     | Replaced -> "replaced"
     | Appended -> "appended")

(* An alternative segmented into its required anchors and the optional terms
   attached after each anchor (or before the first one). *)
type segments = {
  leading : Production.term list;
  anchored : (Production.term * Production.term list) list;
}

let segment alt =
  let leading, anchored_rev =
    List.fold_left
      (fun (leading, anchored) term ->
        if Production.is_optional_term term then
          match anchored with
          | [] -> (leading @ [ term ], anchored)
          | (anchor, opts) :: rest -> (leading, (anchor, opts @ [ term ]) :: rest)
        else (leading, (term, []) :: anchored))
      ([], []) alt
  in
  { leading; anchored = List.rev anchored_rev }

let skeleton alt = List.map fst (segment alt).anchored

let mergeable a b =
  List.equal Production.term_equal (skeleton a) (skeleton b)

let union_terms xs ys =
  xs @ List.filter (fun y -> not (List.exists (Production.term_equal y) xs)) ys

let merge a b =
  let sa = segment a and sb = segment b in
  let leading = union_terms sa.leading sb.leading in
  let anchored =
    List.map2
      (fun (anchor, opts_a) (_, opts_b) -> (anchor, union_terms opts_a opts_b))
      sa.anchored sb.anchored
  in
  leading @ List.concat_map (fun (anchor, opts) -> anchor :: opts) anchored

(* Containment is anchored at the first symbol: [contains a b] holds when
   both alternatives start with the same symbol and the flattening of [b] is
   a subsequence of the flattening of [a]. Anchoring rules out accidental
   matches between unrelated alternatives that merely share a suffix (e.g.
   [SAVEPOINT <id>] inside [ROLLBACK \[WORK\] \[TO SAVEPOINT <id>\]]); all of
   the paper's containment examples share their head symbol. *)
let contains a b =
  let fa = Production.flatten a and fb = Production.flatten b in
  match fa, fb with
  | x :: _, y :: _ -> Symbol.equal x y && Production.subsequence fb fa
  | _, _ -> false

let compose_alt old_alts new_alt =
  (* An exact duplicate anywhere is a no-op (checked against every existing
     alternative first, so that self-composition is the identity even when an
     earlier alternative would be mergeable with the duplicate). Otherwise
     the first existing alternative the new one relates to (mergeable /
     containing / contained) decides the outcome, and unrelated alternatives
     are appended as an extra choice. *)
  if List.exists (Production.alt_equal new_alt) old_alts then
    (old_alts, Kept_old)
  else
    let rec go = function
      | [] -> None
      | a :: rest ->
        if mergeable a new_alt then Some (merge a new_alt :: rest, Merged)
        else if contains new_alt a then Some (new_alt :: rest, Replaced)
        else if contains a new_alt then Some (a :: rest, Kept_old)
        else
          Option.map (fun (rest', outcome) -> (a :: rest', outcome)) (go rest)
    in
    match go old_alts with
    | Some result -> result
    | None -> (old_alts @ [ new_alt ], Appended)

let compose_production (old_rule : Production.t) (new_rule : Production.t) =
  if not (String.equal old_rule.lhs new_rule.lhs) then
    invalid_arg "Rules.compose_production: differing left-hand sides";
  let alts =
    List.fold_left
      (fun alts new_alt -> fst (compose_alt alts new_alt))
      old_rule.alts new_rule.alts
  in
  { old_rule with alts }

let compose_rules old_rules fragment_rules =
  let add acc (new_rule : Production.t) =
    let rec insert = function
      | [] -> [ new_rule ]
      | (r : Production.t) :: rest when String.equal r.lhs new_rule.lhs ->
        compose_production r new_rule :: rest
      | r :: rest -> r :: insert rest
    in
    insert acc
  in
  List.fold_left add old_rules fragment_rules
