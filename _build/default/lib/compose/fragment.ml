type t = {
  feature : string;
  rules : Grammar.Production.t list;
  tokens : Lexing_gen.Spec.set;
}

let empty feature = { feature; rules = []; tokens = [] }
let make ~feature ?(tokens = []) rules = { feature; rules; tokens }
let is_empty t = t.rules = [] && t.tokens = []

module String_map = Map.Make (String)

type registry = t String_map.t

let registry fragments =
  List.fold_left (fun m f -> String_map.add f.feature f m) String_map.empty
    fragments

let find reg name = String_map.find_opt name reg
let fragments reg = List.map snd (String_map.bindings reg)

let defining_feature reg nt =
  String_map.fold
    (fun name frag acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if
          List.exists
            (fun (r : Grammar.Production.t) -> String.equal r.lhs nt)
            frag.rules
        then Some name
        else None)
    reg None
