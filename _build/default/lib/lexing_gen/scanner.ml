module String_map = Map.Make (String)

type t = {
  keywords : string String_map.t;  (* lowercase spelling -> terminal name *)
  puncts : (string * string) list; (* longest first: literal, terminal name *)
  ident_kind : string option;
  integer_kind : string option;
  decimal_kind : string option;
  string_kind : string option;
  quoted_ident_kind : string option;
}

let create set =
  let class_kind cls =
    List.assoc_opt cls (Spec.classes set)
  in
  {
    keywords =
      List.fold_left
        (fun m (spelling, name) -> String_map.add spelling name m)
        String_map.empty (Spec.keywords set);
    puncts = Spec.puncts set;
    ident_kind = class_kind Spec.Identifier;
    integer_kind = class_kind Spec.Unsigned_integer;
    decimal_kind = class_kind Spec.Decimal_number;
    string_kind = class_kind Spec.String_literal;
    quoted_ident_kind = class_kind Spec.Quoted_identifier;
  }

let keyword_count t = String_map.cardinal t.keywords
let punct_count t = List.length t.puncts

type error = {
  pos : Token.position;
  message : string;
}

let pp_error ppf e =
  Fmt.pf ppf "lexical error at %a: %s" Token.pp_position e.pos e.message

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

exception Lex_error of error

let scan t input =
  let n = String.length input in
  let line = ref 1 and bol = ref 0 in
  let position offset =
    { Token.line = !line; column = offset - !bol + 1; offset }
  in
  let fail offset message = raise (Lex_error { pos = position offset; message }) in
  let newline offset =
    incr line;
    bol := offset + 1
  in
  let tokens = ref [] in
  let emit kind text offset = tokens := { Token.kind; text; pos = position offset } :: !tokens in
  let rec skip_block_comment i start =
    if i + 1 >= n then fail start "unterminated block comment"
    else if input.[i] = '*' && input.[i + 1] = '/' then i + 2
    else begin
      if input.[i] = '\n' then newline i;
      skip_block_comment (i + 1) start
    end
  in
  let scan_ident i =
    let j = ref i in
    while !j < n && is_ident_char input.[!j] do incr j done;
    let text = String.sub input i (!j - i) in
    (match String_map.find_opt (String.lowercase_ascii text) t.keywords with
     | Some kind -> emit kind text i
     | None -> (
       match t.ident_kind with
       | Some kind -> emit kind text i
       | None -> fail i (Printf.sprintf "unexpected word %S (identifiers not enabled)" text)));
    !j
  in
  let scan_number i =
    let j = ref i in
    while !j < n && is_digit input.[!j] do incr j done;
    let decimal = ref false in
    if !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] then begin
      decimal := true;
      incr j;
      while !j < n && is_digit input.[!j] do incr j done
    end;
    if
      !j < n
      && (input.[!j] = 'e' || input.[!j] = 'E')
      && (!j + 1 < n && (is_digit input.[!j + 1]
                        || ((input.[!j + 1] = '+' || input.[!j + 1] = '-')
                           && !j + 2 < n && is_digit input.[!j + 2])))
    then begin
      decimal := true;
      incr j;
      if input.[!j] = '+' || input.[!j] = '-' then incr j;
      while !j < n && is_digit input.[!j] do incr j done
    end;
    let text = String.sub input i (!j - i) in
    (match !decimal, t.decimal_kind, t.integer_kind with
     | true, Some kind, _ -> emit kind text i
     | true, None, _ -> fail i "decimal literals not enabled"
     | false, _, Some kind -> emit kind text i
     | false, Some kind, None -> emit kind text i
     | false, None, None -> fail i "numeric literals not enabled");
    !j
  in
  let scan_quoted i ~quote ~kind_opt ~what =
    match kind_opt with
    | None -> fail i (what ^ " not enabled")
    | Some kind ->
      let buf = Buffer.create 16 in
      let rec go j =
        if j >= n then fail i ("unterminated " ^ what)
        else if input.[j] = quote then
          if j + 1 < n && input.[j + 1] = quote then begin
            Buffer.add_char buf quote;
            go (j + 2)
          end
          else begin
            emit kind (Buffer.contents buf) i;
            j + 1
          end
        else begin
          if input.[j] = '\n' then newline j;
          Buffer.add_char buf input.[j];
          go (j + 1)
        end
      in
      go (i + 1)
  in
  let scan_punct i =
    let matching =
      List.find_opt
        (fun (literal, _) ->
          let len = String.length literal in
          i + len <= n && String.equal (String.sub input i len) literal)
        t.puncts
    in
    match matching with
    | Some (literal, kind) ->
      emit kind literal i;
      i + String.length literal
    | None -> fail i (Printf.sprintf "unexpected character %C" input.[i])
  in
  let rec loop i =
    if i >= n then ()
    else
      let c = input.[i] in
      if c = '\n' then begin
        newline i;
        loop (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then loop (i + 1)
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then begin
        let j = ref (i + 2) in
        while !j < n && input.[!j] <> '\n' do incr j done;
        loop !j
      end
      else if c = '/' && i + 1 < n && input.[i + 1] = '*' then
        loop (skip_block_comment (i + 2) i)
      else if is_ident_start c then loop (scan_ident i)
      else if is_digit c then loop (scan_number i)
      else if c = '.' && i + 1 < n && is_digit input.[i + 1] then
        (* Leading-dot decimals: [.5]. *)
        loop (scan_number i)
      else if c = '\'' then
        loop (scan_quoted i ~quote:'\'' ~kind_opt:t.string_kind ~what:"string literal")
      else if c = '"' then
        loop
          (scan_quoted i ~quote:'"' ~kind_opt:t.quoted_ident_kind
             ~what:"quoted identifier")
      else loop (scan_punct i)
  in
  match loop 0 with
  | () ->
    let eof = Token.eof (position n) in
    Ok (List.rev (eof :: !tokens))
  | exception Lex_error e -> Error e
