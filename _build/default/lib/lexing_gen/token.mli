(** Tokens produced by generated scanners.

    A token's [kind] names the terminal it matches in the composed grammar
    (e.g. ["SELECT"], ["IDENT"], ["COMMA"]); its [text] is the matched
    lexeme (keywords keep their source spelling, quoted identifiers and
    string literals are unescaped). *)

type position = {
  line : int;    (** 1-based *)
  column : int;  (** 1-based *)
  offset : int;  (** 0-based byte offset *)
}

type t = {
  kind : string;
  text : string;
  pos : position;
}

val eof_kind : string
(** The pseudo-terminal appended at the end of every token stream
    (["EOF"]). *)

val eof : position -> t

val pp_position : position Fmt.t
val pp : t Fmt.t
