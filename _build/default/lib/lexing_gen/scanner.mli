(** Generated scanners.

    [create] compiles a composed token set into a scanner value; [scan]
    tokenizes a string. The scanner skips SQL whitespace and comments
    ([-- ...] to end of line and [/* ... */]). Keywords are matched
    case-insensitively and only when declared in the set: in a dialect whose
    selected features never declare [WINDOW], the word [window] scans as a
    plain identifier. *)

type t

val create : Spec.set -> t

type error = {
  pos : Token.position;
  message : string;
}

val pp_error : error Fmt.t

val scan : t -> string -> (Token.t list, error) result
(** Tokenize the whole input. On success the token list always ends with the
    [EOF] token. *)

val keyword_count : t -> int
val punct_count : t -> int
(** Size measures of the generated scanner, used by the tailoring
    experiments. *)
