type def =
  | Keyword of string
  | Punct of string
  | Class of cls

and cls =
  | Identifier
  | Unsigned_integer
  | Decimal_number
  | String_literal
  | Quoted_identifier

type set = (string * def) list

let equal_def a b =
  match a, b with
  | Keyword x, Keyword y | Punct x, Punct y -> String.equal x y
  | Class x, Class y -> x = y
  | (Keyword _ | Punct _ | Class _), _ -> false

type conflict = {
  name : string;
  old_def : def;
  new_def : def;
}

let merge old_set new_set =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (name, def) :: rest -> (
      match List.assoc_opt name old_set with
      | Some existing when equal_def existing def -> go acc rest
      | Some existing -> Error { name; old_def = existing; new_def = def }
      | None ->
        (* A later fragment may re-declare within [new_set] itself. *)
        (match List.assoc_opt name acc with
         | Some existing when equal_def existing def -> go acc rest
         | Some existing -> Error { name; old_def = existing; new_def = def }
         | None -> go ((name, def) :: acc) rest))
  in
  match go [] new_set with
  | Ok fresh -> Ok (old_set @ fresh)
  | Error _ as e -> e

let keywords set =
  List.filter_map
    (function
      | name, Keyword spelling -> Some (String.lowercase_ascii spelling, name)
      | _, (Punct _ | Class _) -> None)
    set

let puncts set =
  let pairs =
    List.filter_map
      (function
        | name, Punct literal -> Some (literal, name)
        | _, (Keyword _ | Class _) -> None)
      set
  in
  List.sort
    (fun (a, _) (b, _) -> Int.compare (String.length b) (String.length a))
    pairs

let classes set =
  List.filter_map
    (function
      | name, Class c -> Some (c, name)
      | _, (Keyword _ | Punct _) -> None)
    set

let pp_cls ppf c =
  Fmt.string ppf
    (match c with
     | Identifier -> "identifier"
     | Unsigned_integer -> "unsigned-integer"
     | Decimal_number -> "decimal-number"
     | String_literal -> "string-literal"
     | Quoted_identifier -> "quoted-identifier")

let pp_def ppf = function
  | Keyword k -> Fmt.pf ppf "keyword %S" k
  | Punct p -> Fmt.pf ppf "punct %S" p
  | Class c -> Fmt.pf ppf "class %a" pp_cls c

let pp_conflict ppf c =
  Fmt.pf ppf "token %S defined both as %a and as %a" c.name pp_def c.old_def
    pp_def c.new_def

let pp ppf set =
  List.iter (fun (name, def) -> Fmt.pf ppf "%s = %a@." name pp_def def) set
