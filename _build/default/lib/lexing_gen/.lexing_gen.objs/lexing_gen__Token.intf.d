lib/lexing_gen/token.mli: Fmt
