lib/lexing_gen/spec.mli: Fmt
