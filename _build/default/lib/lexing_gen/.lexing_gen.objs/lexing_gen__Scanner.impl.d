lib/lexing_gen/scanner.ml: Buffer Fmt List Map Printf Spec String Token
