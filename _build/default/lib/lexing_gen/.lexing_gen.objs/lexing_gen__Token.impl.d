lib/lexing_gen/token.ml: Fmt String
