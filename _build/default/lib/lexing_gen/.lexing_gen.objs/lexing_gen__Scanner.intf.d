lib/lexing_gen/scanner.mli: Fmt Spec Token
