lib/lexing_gen/spec.ml: Fmt Int List String
