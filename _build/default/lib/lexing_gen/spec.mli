(** Token specifications — the "token files" of the paper.

    Every grammar fragment carries the token definitions its terminals need.
    Composing a configuration's fragments also composes their token sets;
    the scanner is then generated from the composed set, so a word is only a
    reserved keyword if some selected feature declares it. *)

type def =
  | Keyword of string
      (** a reserved word, matched case-insensitively against identifiers *)
  | Punct of string
      (** a literal operator or punctuation string, longest-match *)
  | Class of cls
      (** a lexeme class with built-in recognition *)

and cls =
  | Identifier          (** [\[A-Za-z_\]\[A-Za-z0-9_\]*], minus keywords *)
  | Unsigned_integer    (** digit sequences *)
  | Decimal_number      (** [12.5], [.5], [1e-3] — exact and approximate *)
  | String_literal      (** ['...'] with [''] escaping *)
  | Quoted_identifier   (** ["..."] delimited identifiers *)

type set = (string * def) list
(** A token set maps terminal names to definitions. Order is first-occurrence
    order; names are unique. *)

val equal_def : def -> def -> bool

type conflict = {
  name : string;
  old_def : def;
  new_def : def;
}

val merge : set -> set -> (set, conflict) result
(** [merge old new_] unions two token sets. Identical redefinitions are
    ignored; a name bound to two different definitions is a composition
    conflict (the paper's token files must agree). *)

val keywords : set -> (string * string) list
(** [(lowercased spelling, terminal name)] pairs for all keywords. *)

val puncts : set -> (string * string) list
(** [(literal, terminal name)] pairs, sorted longest-literal first so the
    scanner can do longest-match. *)

val classes : set -> (cls * string) list
(** Enabled classes with the terminal name that reports them. *)

val pp_def : def Fmt.t
val pp_conflict : conflict Fmt.t
val pp : set Fmt.t
