(** Runtime values of the relational engine. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val equal : t -> t -> bool
(** Structural equality; [Null] equals [Null] (used for grouping and
    DISTINCT, where SQL treats nulls as not distinct from each other). *)

val compare_sql : t -> t -> int option
(** SQL comparison: [None] when either side is [Null] (unknown); numeric
    values compare across [Int]/[Float]. *)

val compare_total : t -> t -> int
(** Total order for sorting: [Null] sorts first, then numbers, strings,
    booleans. *)

val is_null : t -> bool
val of_literal : Sql_ast.Ast.literal -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic with SQL null propagation; mixing [Int] and [Float] promotes
    to [Float]. Raises [Type_error] on non-numeric operands, [Division_by_zero]
    on zero divisors. *)

val concat : t -> t -> t

exception Type_error of string
exception Division_by_zero

val coerce : Sql_ast.Ast.data_type -> t -> t
(** Coerce a value to a column type (used by INSERT/UPDATE and CAST):
    numeric widening/narrowing, string/number conversion for CAST, length
    truncation for [CHAR(n)]/[VARCHAR(n)]. Raises [Type_error] when the
    value cannot represent the type. *)

val to_string : t -> string
val pp : t Fmt.t
