type relation =
  | Base_table of Table.t
  | View of Sql_ast.Ast.create_view

type grant_record = {
  privileges : Sql_ast.Ast.privilege list;
  on_table : string;
  grantee : Sql_ast.Ast.grantee;
  grant_option : bool;
}

type sequence = {
  mutable next : int;
  increment : int;
}

type t = {
  mutable relations : (string * relation) list;  (* in creation order *)
  mutable grant_records : grant_record list;
  mutable sequence_list : (string * sequence) list;
}

let create () = { relations = []; grant_records = []; sequence_list = [] }

let find t name = List.assoc_opt name t.relations

let add t name relation =
  if find t name <> None then
    Error (Printf.sprintf "relation %S already exists" name)
  else begin
    t.relations <- t.relations @ [ (name, relation) ];
    Ok ()
  end

let add_table t (table : Table.t) =
  add t table.Table.schema.Schema.name (Base_table table)

let add_view t (view : Sql_ast.Ast.create_view) =
  add t view.Sql_ast.Ast.view_name.Sql_ast.Ast.name (View view)

let drop t name =
  if find t name = None then Error (Printf.sprintf "relation %S does not exist" name)
  else begin
    t.relations <- List.filter (fun (n, _) -> not (String.equal n name)) t.relations;
    Ok ()
  end

let replace_table t (table : Table.t) =
  let name = table.Table.schema.Schema.name in
  t.relations <-
    List.map
      (fun (n, r) -> if String.equal n name then (n, Base_table table) else (n, r))
      t.relations

let tables t =
  List.filter_map
    (function _, Base_table table -> Some table | _, View _ -> None)
    t.relations

let relation_names t = List.map fst t.relations

let add_grant t g = t.grant_records <- t.grant_records @ [ g ]

let remove_grants t ~on_table ~grantee ~privileges =
  let matches g =
    String.equal g.on_table on_table
    && g.grantee = grantee
    && (List.mem Sql_ast.Ast.P_all privileges
        || List.exists (fun p -> List.mem p privileges) g.privileges)
  in
  let before = List.length t.grant_records in
  t.grant_records <- List.filter (fun g -> not (matches g)) t.grant_records;
  before - List.length t.grant_records

let grants t = t.grant_records

let create_sequence t ~name ~start ~increment =
  if List.mem_assoc name t.sequence_list then
    Error (Printf.sprintf "sequence %S already exists" name)
  else begin
    t.sequence_list <- t.sequence_list @ [ (name, { next = start; increment }) ];
    Ok ()
  end

let drop_sequence t name =
  if List.mem_assoc name t.sequence_list then begin
    t.sequence_list <- List.remove_assoc name t.sequence_list;
    Ok ()
  end
  else Error (Printf.sprintf "sequence %S does not exist" name)

let next_value t name =
  match List.assoc_opt name t.sequence_list with
  | None -> Error (Printf.sprintf "sequence %S does not exist" name)
  | Some seq ->
    let v = seq.next in
    seq.next <- v + seq.increment;
    Ok v

let sequences t = t.sequence_list

let snapshot t =
  {
    sequence_list =
      List.map (fun (n, s) -> (n, { next = s.next; increment = s.increment }))
        t.sequence_list;
    relations =
      List.map
        (fun (n, r) ->
          match r with
          | Base_table table -> (n, Base_table (Table.snapshot table))
          | View _ -> (n, r))
        t.relations;
    grant_records = t.grant_records;
  }

let restore t ~from =
  t.relations <- from.relations;
  t.grant_records <- from.grant_records;
  t.sequence_list <- from.sequence_list

let overlay base extra =
  {
    relations = extra @ base.relations;
    grant_records = base.grant_records;
    sequence_list = base.sequence_list;
  }
