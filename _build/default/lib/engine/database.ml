open Sql_ast

type t = {
  catalog : Catalog.t;
  mutable transaction : Catalog.t option;       (* snapshot at BEGIN *)
  mutable savepoints : (string * Catalog.t) list;
  mutable user : string option;                 (* None = owner session *)
}

let create () =
  { catalog = Catalog.create (); transaction = None; savepoints = []; user = None }

let set_user t user = t.user <- user
let current_user t = t.user
let catalog t = t.catalog
let in_transaction t = t.transaction <> None
let table_names t = Catalog.relation_names t.catalog

let transaction_statement t (stmt : Ast.transaction_statement) =
  match stmt with
  | Ast.Start_transaction _ ->
    if t.transaction <> None then Error "transaction already in progress"
    else begin
      t.transaction <- Some (Catalog.snapshot t.catalog);
      Ok (Executor.Done "transaction started")
    end
  | Ast.Commit ->
    t.transaction <- None;
    t.savepoints <- [];
    Ok (Executor.Done "committed")
  | Ast.Rollback None -> (
    match t.transaction with
    | None -> Error "no transaction in progress"
    | Some snapshot ->
      Catalog.restore t.catalog ~from:snapshot;
      t.transaction <- None;
      t.savepoints <- [];
      Ok (Executor.Done "rolled back"))
  | Ast.Rollback (Some name) -> (
    match List.assoc_opt name t.savepoints with
    | None -> Error (Printf.sprintf "unknown savepoint %s" name)
    | Some snapshot ->
      Catalog.restore t.catalog ~from:snapshot;
      (* Savepoints established after the restored one are discarded. *)
      let rec keep = function
        | [] -> []
        | (n, _) :: _ as all when String.equal n name -> all
        | _ :: rest -> keep rest
      in
      t.savepoints <- keep t.savepoints;
      Ok (Executor.Done (Printf.sprintf "rolled back to %s" name)))
  | Ast.Savepoint name ->
    t.savepoints <- (name, Catalog.snapshot t.catalog) :: t.savepoints;
    Ok (Executor.Done (Printf.sprintf "savepoint %s" name))
  | Ast.Release_savepoint name ->
    if List.mem_assoc name t.savepoints then begin
      t.savepoints <- List.remove_assoc name t.savepoints;
      Ok (Executor.Done (Printf.sprintf "savepoint %s released" name))
    end
    else Error (Printf.sprintf "unknown savepoint %s" name)
  | Ast.Set_transaction _ ->
    (* Isolation levels are recorded syntax only in a single-session engine. *)
    Ok (Executor.Done "ok")

let execute t (stmt : Ast.statement) =
  let authorized =
    match t.user with
    | None -> Ok ()
    | Some user -> Privileges.check t.catalog ~user stmt
  in
  match authorized with
  | Error _ as e -> e
  | Ok () -> (
  match stmt with
  | Ast.Session_stmt (Ast.Set_session_authorization user) ->
    t.user <- Some user;
    Ok (Executor.Done (Printf.sprintf "session user is now %s" user))
  | Ast.Session_stmt Ast.Reset_session_authorization ->
    t.user <- None;
    Ok (Executor.Done "session user reset")
  | Ast.Transaction_stmt ts -> transaction_statement t ts
  | _ -> (
    try Ok (Executor.run_statement t.catalog stmt) with
    | Executor.Error msg -> Error msg
    | Value.Type_error msg -> Error msg
    | Value.Division_by_zero -> Error "division by zero"))

let query t q =
  try Ok (Executor.run_query t.catalog q) with
  | Executor.Error msg -> Error msg
  | Value.Type_error msg -> Error msg
  | Value.Division_by_zero -> Error "division by zero"
