type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string
exception Division_by_zero

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> false

let compare_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | Int _, (Str _ | Bool _)
  | Float _, (Str _ | Bool _)
  | Str _, (Int _ | Float _ | Bool _)
  | Bool _, (Int _ | Float _ | Str _) ->
    raise (Type_error "comparison between incompatible types")

let rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3

let compare_total a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _, _ -> Int.compare (rank a) (rank b)

let of_literal = function
  | Sql_ast.Ast.L_integer n -> Int n
  | Sql_ast.Ast.L_decimal f -> Float f
  | Sql_ast.Ast.L_string s -> Str s
  | Sql_ast.Ast.L_bool b -> Bool b
  | Sql_ast.Ast.L_null -> Null
  | Sql_ast.Ast.L_date s | Sql_ast.Ast.L_time s | Sql_ast.Ast.L_timestamp s
  | Sql_ast.Ast.L_interval (s, _) ->
    Str s

let arith int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | Float x, Float y -> Float (float_op x y)
  | Int x, Float y -> Float (float_op (float_of_int x) y)
  | Float x, Int y -> Float (float_op x (float_of_int y))
  | (Str _ | Bool _), _ | _, (Str _ | Bool _) ->
    raise (Type_error "arithmetic on non-numeric value")

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match b with
  | Int 0 -> raise Division_by_zero
  | Float f when f = 0. -> raise Division_by_zero
  | _ -> arith ( / ) ( /. ) a b

let to_string = function
  | Null -> "NULL"
  | Int n -> string_of_int n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Str s -> s
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"

let concat a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | _, _ -> Str (to_string a ^ to_string b)

let truncate_string limit s =
  match limit with
  | Some n when String.length s > n -> String.sub s 0 n
  | _ -> s

let coerce ty v =
  match ty, v with
  | _, Null -> Null
  | (Sql_ast.Ast.T_integer | T_smallint | T_bigint), Int n -> Int n
  | (T_integer | T_smallint | T_bigint), Float f -> Int (int_of_float f)
  | (T_integer | T_smallint | T_bigint), Str s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Int n
    | None -> raise (Type_error ("cannot cast '" ^ s ^ "' to integer")))
  | (T_integer | T_smallint | T_bigint), Bool b -> Int (if b then 1 else 0)
  | (T_decimal _ | T_float | T_real | T_double), Float f -> Float f
  | (T_decimal _ | T_float | T_real | T_double), Int n -> Float (float_of_int n)
  | (T_decimal _ | T_float | T_real | T_double), Str s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Float f
    | None -> raise (Type_error ("cannot cast '" ^ s ^ "' to decimal")))
  | (T_decimal _ | T_float | T_real | T_double), Bool _ ->
    raise (Type_error "cannot cast boolean to numeric")
  | T_char limit, v -> Str (truncate_string limit (to_string v))
  | T_varchar limit, v -> Str (truncate_string limit (to_string v))
  | T_boolean, Bool b -> Bool b
  | T_boolean, Int 0 -> Bool false
  | T_boolean, Int _ -> Bool true
  | T_boolean, Str s -> (
    match String.lowercase_ascii (String.trim s) with
    | "true" | "t" | "1" -> Bool true
    | "false" | "f" | "0" -> Bool false
    | _ -> raise (Type_error ("cannot cast '" ^ s ^ "' to boolean")))
  | T_boolean, Float _ -> raise (Type_error "cannot cast float to boolean")
  | (T_date | T_time | T_timestamp | T_interval _), Str s -> Str s
  | (T_date | T_time | T_timestamp | T_interval _), _ ->
    raise (Type_error "datetime values must be strings")

let pp ppf v = Fmt.string ppf (to_string v)
