open Sql_ast

type requirement = {
  table : string;
  privilege : Ast.privilege;
}

(* --- tables a query reads -------------------------------------------------- *)

let rec tables_of_query (q : Ast.query) acc =
  let acc =
    match q.Ast.with_ with
    | None -> acc
    | Some wc ->
      List.fold_left
        (fun acc (cte : Ast.cte) -> tables_of_query cte.Ast.cte_query acc)
        acc wc.Ast.ctes
  in
  tables_of_body q.Ast.body acc

and tables_of_body (b : Ast.query_body) acc =
  match b with
  | Ast.Select s ->
    let acc = List.fold_left (fun acc r -> tables_of_ref r acc) acc s.Ast.from in
    let acc =
      List.fold_left
        (fun acc item ->
          match item with
          | Ast.Expr_item (e, _) -> tables_of_expr e acc
          | Ast.Star | Ast.Qualified_star _ -> acc)
        acc s.Ast.projection
    in
    let acc = Option.fold ~none:acc ~some:(fun c -> tables_of_cond c acc) s.Ast.where in
    Option.fold ~none:acc ~some:(fun c -> tables_of_cond c acc) s.Ast.having
  | Ast.Set_operation { lhs; rhs; _ } -> tables_of_body rhs (tables_of_body lhs acc)
  | Ast.Values rows ->
    List.fold_left (List.fold_left (fun acc e -> tables_of_expr e acc)) acc rows
  | Ast.Paren_query q -> tables_of_query q acc

and tables_of_ref (r : Ast.table_ref) acc =
  match r with
  | Ast.Table (name, _) -> name.Ast.name :: acc
  | Ast.Derived_table (q, _) -> tables_of_query q acc
  | Ast.Joined { lhs; rhs; condition; _ } ->
    let acc = tables_of_ref rhs (tables_of_ref lhs acc) in
    (match condition with
     | Some (Ast.On c) -> tables_of_cond c acc
     | Some (Ast.Using _) | None -> acc)

and tables_of_expr (e : Ast.expr) acc =
  match e with
  | Ast.Scalar_subquery q -> tables_of_query q acc
  | Ast.Lit _ | Ast.Column _ | Ast.Next_value _ | Ast.Parameter _ -> acc
  | Ast.Unary (_, e) -> tables_of_expr e acc
  | Ast.Binop (_, a, b) -> tables_of_expr b (tables_of_expr a acc)
  | Ast.Aggregate { arg = Ast.A_expr e; _ } -> tables_of_expr e acc
  | Ast.Aggregate { arg = Ast.A_star; _ } -> acc
  | Ast.Call (_, args) -> List.fold_left (fun acc e -> tables_of_expr e acc) acc args
  | Ast.Substring { arg; from_; for_ } ->
    let acc = tables_of_expr from_ (tables_of_expr arg acc) in
    Option.fold ~none:acc ~some:(fun e -> tables_of_expr e acc) for_
  | Ast.Position { needle; haystack } ->
    tables_of_expr haystack (tables_of_expr needle acc)
  | Ast.Trim { removed; arg; _ } ->
    let acc = tables_of_expr arg acc in
    Option.fold ~none:acc ~some:(fun e -> tables_of_expr e acc) removed
  | Ast.Extract { arg; _ } -> tables_of_expr arg acc
  | Ast.Overlay { arg; placing; from_; for_ } ->
    let acc = tables_of_expr from_ (tables_of_expr placing (tables_of_expr arg acc)) in
    Option.fold ~none:acc ~some:(fun e -> tables_of_expr e acc) for_
  | Ast.Case_simple { operand; branches; else_ } ->
    let acc = tables_of_expr operand acc in
    let acc =
      List.fold_left
        (fun acc (w, t) -> tables_of_expr t (tables_of_expr w acc))
        acc branches
    in
    Option.fold ~none:acc ~some:(fun e -> tables_of_expr e acc) else_
  | Ast.Case_searched { branches; else_ } ->
    let acc =
      List.fold_left
        (fun acc (w, t) -> tables_of_expr t (tables_of_cond w acc))
        acc branches
    in
    Option.fold ~none:acc ~some:(fun e -> tables_of_expr e acc) else_
  | Ast.Cast (e, _) -> tables_of_expr e acc
  | Ast.Window_call { partition_by; win_order_by; _ } ->
    List.fold_left
      (fun acc e -> tables_of_expr e acc)
      acc
      (partition_by @ win_order_by)

and tables_of_cond (c : Ast.cond) acc =
  match c with
  | Ast.Comparison (_, a, b) -> tables_of_expr b (tables_of_expr a acc)
  | Ast.Quantified_comparison { lhs; subquery; _ } ->
    tables_of_query subquery (tables_of_expr lhs acc)
  | Ast.Between { arg; low; high; _ } ->
    tables_of_expr high (tables_of_expr low (tables_of_expr arg acc))
  | Ast.In_list { arg; values; _ } ->
    List.fold_left (fun acc e -> tables_of_expr e acc) (tables_of_expr arg acc) values
  | Ast.In_subquery { arg; subquery; _ } ->
    tables_of_query subquery (tables_of_expr arg acc)
  | Ast.Like { arg; pattern; escape; _ } ->
    let acc = tables_of_expr pattern (tables_of_expr arg acc) in
    Option.fold ~none:acc ~some:(fun e -> tables_of_expr e acc) escape
  | Ast.Is_null { arg; _ } -> tables_of_expr arg acc
  | Ast.Is_distinct_from { lhs; rhs; _ } -> tables_of_expr rhs (tables_of_expr lhs acc)
  | Ast.Exists q | Ast.Unique q -> tables_of_query q acc
  | Ast.Not c -> tables_of_cond c acc
  | Ast.And (a, b) | Ast.Or (a, b) -> tables_of_cond b (tables_of_cond a acc)
  | Ast.Is_truth { arg; _ } -> tables_of_cond arg acc
  | Ast.Overlaps (a, b) -> tables_of_expr b (tables_of_expr a acc)
  | Ast.Similar { arg; pattern; _ } -> tables_of_expr pattern (tables_of_expr arg acc)
  | Ast.Bool_expr e -> tables_of_expr e acc

let dedupe names =
  List.rev
    (List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) [] names)

let reads_of_query q = dedupe (tables_of_query q [])

let requirements (stmt : Ast.statement) =
  let select_on tables = List.map (fun t -> { table = t; privilege = Ast.P_select }) tables in
  match stmt with
  | Ast.Query_stmt q | Ast.Explain_stmt q -> Some (select_on (reads_of_query q))
  | Ast.Insert_stmt i ->
    let reads =
      match i.Ast.source with
      | Ast.Insert_query q -> reads_of_query q
      | Ast.Insert_values rows ->
        dedupe
          (List.concat_map (List.concat_map (fun e -> tables_of_expr e [])) rows)
      | Ast.Insert_defaults -> []
    in
    Some
      ({ table = i.Ast.table.Ast.name; privilege = Ast.P_insert } :: select_on reads)
  | Ast.Update_stmt u ->
    let reads =
      dedupe
        (Option.fold ~none:[] ~some:(fun c -> tables_of_cond c []) u.Ast.update_where
         @ List.concat_map
             (fun (sc : Ast.set_clause) ->
               Option.fold ~none:[] ~some:(fun e -> tables_of_expr e []) sc.Ast.value)
             u.Ast.assignments)
    in
    Some
      ({ table = u.Ast.table.Ast.name; privilege = Ast.P_update [] }
       :: select_on (List.filter (fun t -> t <> u.Ast.table.Ast.name) reads))
  | Ast.Delete_stmt d ->
    Some [ { table = d.Ast.table.Ast.name; privilege = Ast.P_delete } ]
  | Ast.Merge_stmt m ->
    Some
      [
        { table = m.Ast.target.Ast.name; privilege = Ast.P_update [] };
        { table = m.Ast.target.Ast.name; privilege = Ast.P_insert };
      ]
  | Ast.Transaction_stmt _ -> Some []
  | Ast.Session_stmt _ ->
    (* Demo semantics: any session may switch its authorization (a real
       system would restrict this to the owner). *)
    Some []
  | Ast.Create_table_stmt _ | Ast.Create_view_stmt _ | Ast.Drop_stmt _
  | Ast.Alter_table_stmt _ | Ast.Grant_stmt _ | Ast.Revoke_stmt _
  | Ast.Schema_stmt _ | Ast.Sequence_stmt _ -> None

let covers (wanted : Ast.privilege) (granted : Ast.privilege) =
  match wanted, granted with
  | _, Ast.P_all -> true
  | Ast.P_select, Ast.P_select -> true
  | Ast.P_insert, Ast.P_insert -> true
  | Ast.P_delete, Ast.P_delete -> true
  | Ast.P_update _, Ast.P_update _ -> true
  | Ast.P_references _, Ast.P_references _ -> true
  | _, _ -> false

let granted_to catalog ~user { table; privilege } =
  List.exists
    (fun (g : Catalog.grant_record) ->
      String.equal g.Catalog.on_table table
      && (match g.Catalog.grantee with
          | Ast.Public -> true
          | Ast.User u -> String.equal u user)
      && List.exists (covers privilege) g.Catalog.privileges)
    (Catalog.grants catalog)

let privilege_name = function
  | Ast.P_select -> "SELECT"
  | Ast.P_insert -> "INSERT"
  | Ast.P_update _ -> "UPDATE"
  | Ast.P_delete -> "DELETE"
  | Ast.P_references _ -> "REFERENCES"
  | Ast.P_all -> "ALL"

let check catalog ~user stmt =
  match requirements stmt with
  | None ->
    Error (Printf.sprintf "user %s may not run definition or control statements" user)
  | Some reqs -> (
    match List.find_opt (fun r -> not (granted_to catalog ~user r)) reqs with
    | None -> Ok ()
    | Some r ->
      Error
        (Printf.sprintf "user %s lacks %s on %s" user (privilege_name r.privilege)
           r.table))
