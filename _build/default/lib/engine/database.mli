(** Database facade: a catalog plus simple transaction support.

    Transactions are snapshot-based: START TRANSACTION snapshots the
    catalog, ROLLBACK restores it, COMMIT discards the snapshot. SAVEPOINT
    pushes named snapshots; ROLLBACK TO SAVEPOINT restores one. This is the
    semantics the embedded-systems workloads need, not a concurrency
    story — the engine is single-session. *)

type t

val create : unit -> t
val catalog : t -> Catalog.t

val execute : t -> Sql_ast.Ast.statement -> (Executor.outcome, string) result
(** Execute any statement, including transaction statements. When a session
    user is set, the statement is first checked against the recorded grants
    (see {!Privileges}). *)

val set_user : t -> string option -> unit
(** [set_user db (Some u)] makes subsequent statements run as [u], enforcing
    GRANT/REVOKE records; [set_user db None] returns to the unrestricted
    owner session. *)

val current_user : t -> string option

val query : t -> Sql_ast.Ast.query -> (Executor.result_set, string) result

val in_transaction : t -> bool
val table_names : t -> string list
