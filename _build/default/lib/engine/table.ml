type t = {
  schema : Schema.t;
  rows : Value.t array Vec.t;
}

let create schema = { schema; rows = Vec.create () }
let row_count t = Vec.length t.rows
let insert t row = Vec.push t.rows row
let rows_list t = Vec.to_list t.rows

let snapshot t =
  let rows = Vec.copy t.rows in
  Vec.map_in_place Array.copy rows;
  { schema = t.schema; rows }
