type 'a t = {
  mutable items : 'a array;
  mutable size : int;
}

let create () = { items = [||]; size = 0 }
let length v = v.size

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  v.items.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  v.items.(i) <- x

let grow v x =
  let capacity = Array.length v.items in
  let fresh = Array.make (max 8 (2 * capacity)) x in
  Array.blit v.items 0 fresh 0 v.size;
  v.items <- fresh

let push v x =
  if v.size = Array.length v.items then grow v x;
  v.items.(v.size) <- x;
  v.size <- v.size + 1

let to_list v = Array.to_list (Array.sub v.items 0 v.size)

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let iter f v =
  for i = 0 to v.size - 1 do
    f v.items.(i)
  done

let filter_in_place keep v =
  let kept = ref 0 in
  for i = 0 to v.size - 1 do
    if keep v.items.(i) then begin
      v.items.(!kept) <- v.items.(i);
      incr kept
    end
  done;
  let removed = v.size - !kept in
  v.size <- !kept;
  removed

let map_in_place f v =
  for i = 0 to v.size - 1 do
    v.items.(i) <- f v.items.(i)
  done

let copy v = { items = Array.copy v.items; size = v.size }
let clear v = v.size <- 0
