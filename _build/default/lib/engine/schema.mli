(** Table schemas derived from CREATE TABLE statements. *)

type column = {
  col_name : string;
  col_type : Sql_ast.Ast.data_type;
  not_null : bool;
  primary_key : bool;
  unique : bool;
  default : Sql_ast.Ast.expr option;
  references : Sql_ast.Ast.references_spec option;
}

type t = {
  name : string;
  columns : column list;
  checks : Sql_ast.Ast.cond list;       (** column and table CHECK conditions *)
  unique_sets : string list list;        (** multi-column UNIQUE/PRIMARY KEY *)
  foreign_keys : (string list * Sql_ast.Ast.references_spec) list;
}

val of_create_table : Sql_ast.Ast.create_table -> (t, string) result
(** Build a schema; fails on duplicate column names, multiple primary keys
    or constraints naming unknown columns. *)

val column_names : t -> string list
val find_column : t -> string -> column option
val column_index : t -> string -> int option
