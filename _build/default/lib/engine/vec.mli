(** Minimal growable array (row storage).

    The standard library gains [Dynarray] only in OCaml 5.2; this is the
    small subset the engine needs, with O(1) amortized append. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val filter_in_place : ('a -> bool) -> 'a t -> int
(** Keep only elements satisfying the predicate, preserving order; returns
    the number of removed elements. *)

val map_in_place : ('a -> 'a) -> 'a t -> unit
val copy : 'a t -> 'a t
val clear : 'a t -> unit
