(** In-memory tables: a schema plus row storage. *)

type t = {
  schema : Schema.t;
  rows : Value.t array Vec.t;
}

val create : Schema.t -> t
val row_count : t -> int
val insert : t -> Value.t array -> unit
val rows_list : t -> Value.t array list
val snapshot : t -> t
(** Deep copy used by the transaction machinery. *)
