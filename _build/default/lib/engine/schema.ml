open Sql_ast

type column = {
  col_name : string;
  col_type : Ast.data_type;
  not_null : bool;
  primary_key : bool;
  unique : bool;
  default : Ast.expr option;
  references : Ast.references_spec option;
}

type t = {
  name : string;
  columns : column list;
  checks : Ast.cond list;
  unique_sets : string list list;
  foreign_keys : (string list * Ast.references_spec) list;
}

let column_of_def (def : Ast.column_def) =
  let has c = List.mem c def.constraints in
  let references =
    List.find_map
      (function Ast.C_references r -> Some r | _ -> None)
      def.constraints
  in
  {
    col_name = def.column;
    col_type = def.ty;
    not_null = has Ast.C_not_null || has Ast.C_primary_key;
    primary_key = has Ast.C_primary_key;
    unique = has Ast.C_unique || has Ast.C_primary_key;
    default = def.default;
    references;
  }

let of_create_table (ct : Ast.create_table) =
  let columns =
    List.filter_map
      (function Ast.Column_element c -> Some (column_of_def c) | _ -> None)
      ct.elements
  in
  let constraints =
    List.filter_map
      (function Ast.Constraint_element tc -> Some tc | _ -> None)
      ct.elements
  in
  let names = List.map (fun c -> c.col_name) columns in
  let dup =
    List.find_opt
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
  in
  match dup with
  | Some n -> Error (Printf.sprintf "duplicate column %S" n)
  | None ->
    let unknown =
      List.concat_map
        (fun (tc : Ast.table_constraint) ->
          let cols =
            match tc.body with
            | Ast.T_unique cs | Ast.T_primary_key cs | Ast.T_foreign_key (cs, _)
              -> cs
            | Ast.T_check _ -> []
          in
          List.filter (fun c -> not (List.mem c names)) cols)
        constraints
    in
    (match unknown with
     | c :: _ -> Error (Printf.sprintf "constraint names unknown column %S" c)
     | [] ->
       let column_checks =
         List.concat_map
           (function
             | Ast.Column_element (def : Ast.column_def) ->
               List.filter_map
                 (function Ast.C_check cond -> Some cond | _ -> None)
                 def.constraints
             | Ast.Constraint_element _ -> [])
           ct.elements
       in
       let table_checks =
         List.filter_map
           (fun (tc : Ast.table_constraint) ->
             match tc.body with Ast.T_check c -> Some c | _ -> None)
           constraints
       in
       let pk_sets =
         List.filter_map
           (fun (tc : Ast.table_constraint) ->
             match tc.body with
             | Ast.T_primary_key cs | Ast.T_unique cs -> Some cs
             | _ -> None)
           constraints
       in
       let pk_count =
         List.length (List.filter (fun c -> c.primary_key) columns)
         + List.length
             (List.filter
                (fun (tc : Ast.table_constraint) ->
                  match tc.body with Ast.T_primary_key _ -> true | _ -> false)
                constraints)
       in
       if pk_count > 1 then Error "multiple primary keys"
       else
         let columns =
           (* A table-level PRIMARY KEY marks its columns NOT NULL. *)
           let pk_cols =
             List.concat_map
               (fun (tc : Ast.table_constraint) ->
                 match tc.body with Ast.T_primary_key cs -> cs | _ -> [])
               constraints
           in
           List.map
             (fun c ->
               if List.mem c.col_name pk_cols then { c with not_null = true }
               else c)
             columns
         in
         Ok
           {
             name = ct.table_name.Ast.name;
             columns;
             checks = column_checks @ table_checks;
             unique_sets = pk_sets;
             foreign_keys =
               List.filter_map
                 (fun (tc : Ast.table_constraint) ->
                   match tc.body with
                   | Ast.T_foreign_key (cs, r) -> Some (cs, r)
                   | _ -> None)
                 constraints;
           })

let column_names t = List.map (fun c -> c.col_name) t.columns
let find_column t name =
  List.find_opt (fun c -> String.equal c.col_name name) t.columns

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: rest -> if String.equal c.col_name name then Some i else go (i + 1) rest
  in
  go 0 t.columns
