(** Binding dynamic parameters.

    A statement parsed from SQL with [?] markers carries
    [Ast.Parameter ordinal] nodes (1-based, lexical order). [bind]
    substitutes literal values for them, yielding an executable statement —
    the prepare/execute split of SQL's dynamic-SQL binding style. *)

val bind :
  Sql_ast.Ast.statement -> Value.t list -> (Sql_ast.Ast.statement, string) result
(** [bind stmt values] replaces [Parameter i] with [List.nth values (i-1)].
    Fails when an ordinal has no value. Extra values are tolerated. *)

val parameter_count : Sql_ast.Ast.statement -> int
(** Highest parameter ordinal occurring in the statement (0 if none). *)
