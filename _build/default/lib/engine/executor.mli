(** Query and statement execution over the catalog.

    The executor is deliberately naive (nested-loop joins, full scans,
    sort-based ORDER BY): it is the semantic substrate behind the generated
    parsers, not a competitive query engine. *)

type result_set = {
  columns : string list;
  rows : Value.t list list;
}

exception Error of string
(** Raised on semantic errors: unknown tables/columns, type errors,
    constraint violations, unsupported constructs. *)

type outcome =
  | Rows of result_set          (** queries *)
  | Affected of int             (** DML row counts *)
  | Done of string              (** DDL/DCL/transaction acknowledgements *)

val run_query : Catalog.t -> Sql_ast.Ast.query -> result_set
val run_statement : Catalog.t -> Sql_ast.Ast.statement -> outcome
(** Executes everything except transaction statements, which the
    {!Database} layer handles (it owns the snapshot machinery). Raises
    {!Error}. *)

val pp_result_set : result_set Fmt.t
