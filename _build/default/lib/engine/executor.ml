open Sql_ast

type result_set = {
  columns : string list;
  rows : Value.t list list;
}

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type outcome =
  | Rows of result_set
  | Affected of int
  | Done of string

(* --- Environments ---------------------------------------------------------- *)

(* A relation in flight: qualified column names plus rows of values. *)
type rel = {
  cols : (string option * string) list;
  rows : Value.t list list;
}

type env = {
  cols : (string option * string) list;
  values : Value.t list;
  outer : env option;
}

let empty_env = { cols = []; values = []; outer = None }

let env_of_row ?outer cols values = { cols; values; outer }

let rec lookup env qualifier name =
  let rec find cols values =
    match cols, values with
    | [], [] -> None
    | (q, c) :: cols', v :: values' ->
      let matches =
        String.equal c name
        && (match qualifier with
            | None -> true
            | Some want -> (match q with Some have -> String.equal want have | None -> false))
      in
      if matches then Some v else find cols' values'
    | _, _ -> err "corrupt environment"
  in
  match find env.cols env.values with
  | Some v -> Some v
  | None -> (
    match env.outer with
    | Some outer -> lookup outer qualifier name
    | None -> None)

let lookup_exn env qualifier name =
  match lookup env qualifier name with
  | Some v -> v
  | None ->
    err "unknown column %s"
      (match qualifier with Some q -> q ^ "." ^ name | None -> name)

(* --- Three-valued logic ----------------------------------------------------- *)

type tv = T | F | U

let tv_of_bool b = if b then T else F
let tv_not = function T -> F | F -> T | U -> U
let tv_and a b =
  match a, b with F, _ | _, F -> F | T, T -> T | _ -> U
let tv_or a b =
  match a, b with T, _ | _, T -> T | F, F -> F | _ -> U
let tv_is_true = function T -> true | F | U -> false

(* --- Aggregate detection ------------------------------------------------------ *)

let rec expr_has_aggregate (e : Ast.expr) =
  match e with
  | Ast.Aggregate _ -> true
  | Ast.Lit _ | Ast.Column _ -> false
  | Ast.Unary (_, e) -> expr_has_aggregate e
  | Ast.Binop (_, a, b) -> expr_has_aggregate a || expr_has_aggregate b
  | Ast.Call (_, args) -> List.exists expr_has_aggregate args
  | Ast.Substring { arg; from_; for_ } ->
    expr_has_aggregate arg || expr_has_aggregate from_
    || Option.fold ~none:false ~some:expr_has_aggregate for_
  | Ast.Position { needle; haystack } ->
    expr_has_aggregate needle || expr_has_aggregate haystack
  | Ast.Trim { removed; arg; _ } ->
    expr_has_aggregate arg || Option.fold ~none:false ~some:expr_has_aggregate removed
  | Ast.Extract { arg; _ } -> expr_has_aggregate arg
  | Ast.Case_simple { operand; branches; else_ } ->
    expr_has_aggregate operand
    || List.exists (fun (w, t) -> expr_has_aggregate w || expr_has_aggregate t) branches
    || Option.fold ~none:false ~some:expr_has_aggregate else_
  | Ast.Case_searched { branches; else_ } ->
    List.exists (fun (_, t) -> expr_has_aggregate t) branches
    || Option.fold ~none:false ~some:expr_has_aggregate else_
  | Ast.Cast (e, _) -> expr_has_aggregate e
  | Ast.Scalar_subquery _ -> false
  | Ast.Next_value _ | Ast.Parameter _ -> false
  | Ast.Overlay { arg; placing; from_; for_ } ->
    expr_has_aggregate arg || expr_has_aggregate placing
    || expr_has_aggregate from_
    || Option.fold ~none:false ~some:expr_has_aggregate for_
  | Ast.Window_call _ -> false

let rec cond_has_aggregate (c : Ast.cond) =
  match c with
  | Ast.Comparison (_, a, b) -> expr_has_aggregate a || expr_has_aggregate b
  | Ast.Quantified_comparison { lhs; _ } -> expr_has_aggregate lhs
  | Ast.Between { arg; low; high; _ } ->
    expr_has_aggregate arg || expr_has_aggregate low || expr_has_aggregate high
  | Ast.In_list { arg; values; _ } ->
    expr_has_aggregate arg || List.exists expr_has_aggregate values
  | Ast.In_subquery { arg; _ } -> expr_has_aggregate arg
  | Ast.Like { arg; pattern; _ } ->
    expr_has_aggregate arg || expr_has_aggregate pattern
  | Ast.Is_null { arg; _ } -> expr_has_aggregate arg
  | Ast.Is_distinct_from { lhs; rhs; _ } ->
    expr_has_aggregate lhs || expr_has_aggregate rhs
  | Ast.Exists _ | Ast.Unique _ -> false
  | Ast.Not c -> cond_has_aggregate c
  | Ast.And (a, b) | Ast.Or (a, b) -> cond_has_aggregate a || cond_has_aggregate b
  | Ast.Is_truth { arg; _ } -> cond_has_aggregate arg
  | Ast.Overlaps (a, b) -> expr_has_aggregate a || expr_has_aggregate b
  | Ast.Similar { arg; pattern; _ } ->
    expr_has_aggregate arg || expr_has_aggregate pattern
  | Ast.Bool_expr e -> expr_has_aggregate e

(* --- LIKE / SIMILAR pattern matching ------------------------------------------- *)

(* SQL LIKE: '%' any sequence, '_' any character, with an optional escape. *)
let like_match ?escape ~pattern s =
  let n = String.length pattern in
  (* Parse the pattern into a token list first. *)
  let rec tokens i =
    if i >= n then []
    else
      let c = pattern.[i] in
      match escape with
      | Some e when c = e && i + 1 < n -> `Lit pattern.[i + 1] :: tokens (i + 2)
      | _ ->
        (match c with
         | '%' -> `Any :: tokens (i + 1)
         | '_' -> `One :: tokens (i + 1)
         | c -> `Lit c :: tokens (i + 1))
  in
  let toks = Array.of_list (tokens 0) in
  let m = String.length s in
  (* Backtracking match over the token array. *)
  let rec go ti si =
    if ti >= Array.length toks then si = m
    else
      match toks.(ti) with
      | `Lit c -> si < m && s.[si] = c && go (ti + 1) (si + 1)
      | `One -> si < m && go (ti + 1) (si + 1)
      | `Any ->
        let rec try_from k = k <= m && (go (ti + 1) k || try_from (k + 1)) in
        try_from si
  in
  go 0 0

(* --- Expression evaluation ------------------------------------------------------ *)

(* [group] is the aggregation context: when set, Aggregate nodes are computed
   over its rows while everything else evaluates against [env] (the group's
   representative row). *)
let rec eval_expr catalog ?group env (e : Ast.expr) : Value.t =
  let recurse = eval_expr catalog ?group env in
  match e with
  | Ast.Lit l -> Value.of_literal l
  | Ast.Column (qualifier, name) -> lookup_exn env qualifier name
  | Ast.Unary (Ast.S_plus, e) -> recurse e
  | Ast.Unary (Ast.S_minus, e) -> Value.sub (Value.Int 0) (recurse e)
  | Ast.Binop (op, a, b) ->
    let va = recurse a and vb = recurse b in
    (match op with
     | Ast.Add -> Value.add va vb
     | Ast.Sub -> Value.sub va vb
     | Ast.Mul -> Value.mul va vb
     | Ast.Div -> Value.div va vb
     | Ast.Concat -> Value.concat va vb)
  | Ast.Aggregate agg -> (
    match group with
    | None -> err "aggregate function outside GROUP BY context"
    | Some rows -> eval_aggregate catalog rows agg)
  | Ast.Call (name, args) -> eval_call catalog ?group env name (List.map recurse args)
  | Ast.Substring { arg; from_; for_ } -> (
    match recurse arg, recurse from_, Option.map recurse for_ with
    | Value.Null, _, _ | _, Value.Null, _ | _, _, Some Value.Null -> Value.Null
    | Value.Str s, Value.Int start, len ->
      let start = max 1 start in
      let avail = String.length s - start + 1 in
      let take =
        match len with
        | Some (Value.Int k) -> min k avail
        | None -> avail
        | Some _ -> err "SUBSTRING length must be an integer"
      in
      if take <= 0 || start > String.length s then Value.Str ""
      else Value.Str (String.sub s (start - 1) take)
    | _, _, _ -> err "SUBSTRING applies to strings")
  | Ast.Position { needle; haystack } -> (
    match recurse needle, recurse haystack with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Str needle, Value.Str hay ->
      let ln = String.length needle and lh = String.length hay in
      if ln = 0 then Value.Int 1
      else
        let rec find i =
          if i + ln > lh then Value.Int 0
          else if String.equal (String.sub hay i ln) needle then Value.Int (i + 1)
          else find (i + 1)
        in
        find 0
    | _, _ -> err "POSITION applies to strings")
  | Ast.Trim { side; removed; arg } -> (
    match recurse arg with
    | Value.Null -> Value.Null
    | Value.Str s ->
      let removed_char =
        match Option.map recurse removed with
        | None -> ' '
        | Some (Value.Str r) when String.length r = 1 -> r.[0]
        | Some Value.Null -> ' '
        | Some _ -> err "TRIM character must be a single-character string"
      in
      let trim_left s =
        let i = ref 0 in
        while !i < String.length s && s.[!i] = removed_char do incr i done;
        String.sub s !i (String.length s - !i)
      in
      let trim_right s =
        let j = ref (String.length s) in
        while !j > 0 && s.[!j - 1] = removed_char do decr j done;
        String.sub s 0 !j
      in
      Value.Str
        (match side with
         | Some Ast.Trim_leading -> trim_left s
         | Some Ast.Trim_trailing -> trim_right s
         | Some Ast.Trim_both | None -> trim_left (trim_right s))
    | _ -> err "TRIM applies to strings")
  | Ast.Extract { field; arg } -> (
    (* Date/time values are ISO-8601 strings: YYYY-MM-DD[ HH:MM:SS]. *)
    match recurse arg with
    | Value.Null -> Value.Null
    | Value.Str s -> extract_field field s
    | _ -> err "EXTRACT applies to datetime strings")
  | Ast.Case_simple { operand; branches; else_ } ->
    let v = recurse operand in
    let rec pick = function
      | [] -> Option.fold ~none:Value.Null ~some:recurse else_
      | (w, t) :: rest -> if Value.equal v (recurse w) then recurse t else pick rest
    in
    pick branches
  | Ast.Case_searched { branches; else_ } ->
    let rec pick = function
      | [] -> Option.fold ~none:Value.Null ~some:recurse else_
      | (w, t) :: rest ->
        if tv_is_true (eval_cond catalog ?group env w) then recurse t else pick rest
    in
    pick branches
  | Ast.Cast (e, ty) -> Value.coerce ty (recurse e)
  | Ast.Window_call { wfunc; _ } ->
    err "window function %s is parse-only (not executed by the engine)" wfunc
  | Ast.Parameter n ->
    err "unbound dynamic parameter ?%d (bind values with Params.bind)" n
  | Ast.Next_value name -> (
    match Catalog.next_value catalog name with
    | Ok v -> Value.Int v
    | Error msg -> err "%s" msg)
  | Ast.Overlay { arg; placing; from_; for_ } -> (
    match recurse arg, recurse placing, recurse from_, Option.map recurse for_ with
    | Value.Null, _, _, _ | _, Value.Null, _, _ | _, _, Value.Null, _
    | _, _, _, Some Value.Null ->
      Value.Null
    | Value.Str s, Value.Str repl, Value.Int from_i, for_v ->
      let from_i = max 1 from_i in
      let take =
        match for_v with
        | Some (Value.Int k) -> k
        | None -> String.length repl
        | Some _ -> err "OVERLAY length must be an integer"
      in
      let prefix = String.sub s 0 (min (from_i - 1) (String.length s)) in
      let rest_start = min (String.length s) (from_i - 1 + max 0 take) in
      let suffix = String.sub s rest_start (String.length s - rest_start) in
      Value.Str (prefix ^ repl ^ suffix)
    | _, _, _, _ -> err "OVERLAY applies to strings")
  | Ast.Scalar_subquery q -> (
    let rs = query catalog ~outer:env q in
    match rs.rows with
    | [] -> Value.Null
    | [ [ v ] ] -> v
    | [ _ ] -> err "scalar subquery returned more than one column"
    | _ -> err "scalar subquery returned more than one row")

and extract_field field s =
  let part ~from ~len =
    if String.length s >= from + len then
      match int_of_string_opt (String.sub s from len) with
      | Some n -> Value.Int n
      | None -> err "malformed datetime string %S" s
    else err "malformed datetime string %S" s
  in
  match String.uppercase_ascii field with
  | "YEAR" -> part ~from:0 ~len:4
  | "MONTH" -> part ~from:5 ~len:2
  | "DAY" -> part ~from:8 ~len:2
  | "HOUR" -> part ~from:11 ~len:2
  | "MINUTE" -> part ~from:14 ~len:2
  | "SECOND" -> part ~from:17 ~len:2
  | f -> err "unknown EXTRACT field %s" f

and eval_call _catalog ?group env name args =
  ignore group;
  ignore env;
  let str1 f =
    match args with
    | [ Value.Null ] -> Value.Null
    | [ Value.Str s ] -> f s
    | _ -> err "%s expects one string argument" name
  in
  match String.uppercase_ascii name, args with
  | "UPPER", _ -> str1 (fun s -> Value.Str (String.uppercase_ascii s))
  | "LOWER", _ -> str1 (fun s -> Value.Str (String.lowercase_ascii s))
  | "CHAR_LENGTH", _ | "CHARACTER_LENGTH", _ | "OCTET_LENGTH", _ ->
    str1 (fun s -> Value.Int (String.length s))
  | "ABS", [ Value.Null ] -> Value.Null
  | "ABS", [ Value.Int n ] -> Value.Int (abs n)
  | "ABS", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "MOD", [ Value.Null; _ ] | "MOD", [ _; Value.Null ] -> Value.Null
  | "MOD", [ Value.Int _; Value.Int 0 ] -> raise Value.Division_by_zero
  | "MOD", [ Value.Int a; Value.Int b ] -> Value.Int (a mod b)
  | "NULLIF", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "COALESCE", args -> (
    match List.find_opt (fun v -> not (Value.is_null v)) args with
    | Some v -> v
    | None -> Value.Null)
  | "CURRENT_DATE", [] -> Value.Str "2008-03-29"
    (* The engine is deterministic: "today" is the paper's workshop date. *)
  | "CURRENT_TIME", [] -> Value.Str "12:00:00"
  | "CURRENT_TIMESTAMP", [] | "LOCALTIMESTAMP", [] ->
    Value.Str "2008-03-29 12:00:00"
  | "LOCALTIME", [] -> Value.Str "12:00:00"
  | "CURRENT_USER", [] | "SESSION_USER", [] | "SYSTEM_USER", [] ->
    Value.Str "sqlpl"
  | other, _ -> err "unknown function %s" other

and eval_aggregate catalog rows (agg : Ast.aggregate) : Value.t =
  let arg_values () =
    match agg.arg with
    | Ast.A_star -> List.map (fun _ -> Value.Int 1) rows
    | Ast.A_expr e -> List.map (fun env -> eval_expr catalog env e) rows
  in
  let values =
    match agg.arg with
    | Ast.A_star -> arg_values ()
    | Ast.A_expr _ ->
      List.filter (fun v -> not (Value.is_null v)) (arg_values ())
  in
  let values =
    match agg.agg_quantifier with
    | Some Ast.Distinct ->
      List.fold_left
        (fun acc v -> if List.exists (Value.equal v) acc then acc else acc @ [ v ])
        [] values
    | Some Ast.All | None -> values
  in
  match agg.func with
  | Ast.F_count -> Value.Int (List.length values)
  | Ast.F_sum ->
    if values = [] then Value.Null
    else List.fold_left Value.add (Value.Int 0) values
  | Ast.F_avg ->
    if values = [] then Value.Null
    else
      Value.div
        (List.fold_left Value.add (Value.Float 0.) values)
        (Value.Float (float_of_int (List.length values)))
  | Ast.F_min ->
    List.fold_left
      (fun acc v ->
        match acc with
        | Value.Null -> v
        | _ -> if Value.compare_total v acc < 0 then v else acc)
      Value.Null values
  | Ast.F_max ->
    List.fold_left
      (fun acc v ->
        match acc with
        | Value.Null -> v
        | _ -> if Value.compare_total v acc > 0 then v else acc)
      Value.Null values
  | Ast.F_every ->
    if values = [] then Value.Null
    else
      Value.Bool
        (List.for_all (function Value.Bool b -> b | _ -> err "EVERY expects booleans") values)
  | Ast.F_any ->
    if values = [] then Value.Null
    else
      Value.Bool
        (List.exists (function Value.Bool b -> b | _ -> err "ANY expects booleans") values)

(* --- Condition evaluation ---------------------------------------------------------- *)

and eval_cond catalog ?group env (c : Ast.cond) : tv =
  let expr e = eval_expr catalog ?group env e in
  let compare_tv op a b =
    match Value.compare_sql a b with
    | None -> U
    | Some c ->
      tv_of_bool
        (match op with
         | Ast.Eq -> c = 0
         | Ast.Neq -> c <> 0
         | Ast.Lt -> c < 0
         | Ast.Gt -> c > 0
         | Ast.Le -> c <= 0
         | Ast.Ge -> c >= 0)
  in
  match c with
  | Ast.Comparison (op, a, b) -> compare_tv op (expr a) (expr b)
  | Ast.Quantified_comparison { op; lhs; quantifier; subquery } ->
    let v = expr lhs in
    let rs = query catalog ~outer:env subquery in
    let results =
      List.map
        (fun row ->
          match row with
          | [ rv ] -> compare_tv op v rv
          | _ -> err "quantified subquery must return one column")
        rs.rows
    in
    (match quantifier with
     | Ast.Q_all -> List.fold_left tv_and T results
     | Ast.Q_some -> List.fold_left tv_or F results)
  | Ast.Between { negated; symmetric; arg; low; high } ->
    let v = expr arg in
    let lo = expr low and hi = expr high in
    let lo, hi =
      (* SYMMETRIC accepts the bounds in either order. *)
      if symmetric && Value.compare_sql lo hi = Some 1 then (hi, lo) else (lo, hi)
    in
    let r = tv_and (compare_tv Ast.Ge v lo) (compare_tv Ast.Le v hi) in
    if negated then tv_not r else r
  | Ast.In_list { negated; arg; values } ->
    let v = expr arg in
    let r =
      List.fold_left (fun acc e -> tv_or acc (compare_tv Ast.Eq v (expr e))) F values
    in
    if negated then tv_not r else r
  | Ast.In_subquery { negated; arg; subquery } ->
    let v = expr arg in
    let rs = query catalog ~outer:env subquery in
    let r =
      List.fold_left
        (fun acc row ->
          match row with
          | [ rv ] -> tv_or acc (compare_tv Ast.Eq v rv)
          | _ -> err "IN subquery must return one column")
        F rs.rows
    in
    if negated then tv_not r else r
  | Ast.Like { negated; arg; pattern; escape } ->
    let r =
      match expr arg, expr pattern, Option.map expr escape with
      | Value.Null, _, _ | _, Value.Null, _ -> U
      | Value.Str s, Value.Str p, esc ->
        let escape =
          match esc with
          | Some (Value.Str e) when String.length e = 1 -> Some e.[0]
          | None -> None
          | Some Value.Null -> None
          | Some _ -> err "ESCAPE must be a single character"
        in
        tv_of_bool (like_match ?escape ~pattern:p s)
      | _, _, _ -> err "LIKE applies to strings"
    in
    if negated then tv_not r else r
  | Ast.Is_null { negated; arg } ->
    let r = tv_of_bool (Value.is_null (expr arg)) in
    if negated then tv_not r else r
  | Ast.Is_distinct_from { negated; lhs; rhs } ->
    let r = tv_of_bool (not (Value.equal (expr lhs) (expr rhs))) in
    if negated then tv_not r else r
  | Ast.Exists q -> tv_of_bool ((query catalog ~outer:env q).rows <> [])
  | Ast.Unique q ->
    let rows = (query catalog ~outer:env q).rows in
    let rec distinct = function
      | [] -> true
      | r :: rest -> (not (List.exists (List.equal Value.equal r) rest)) && distinct rest
    in
    tv_of_bool (distinct rows)
  | Ast.Not c -> tv_not (eval_cond catalog ?group env c)
  | Ast.And (a, b) -> tv_and (eval_cond catalog ?group env a) (eval_cond catalog ?group env b)
  | Ast.Or (a, b) -> tv_or (eval_cond catalog ?group env a) (eval_cond catalog ?group env b)
  | Ast.Is_truth { negated; arg; truth } ->
    let v = eval_cond catalog ?group env arg in
    let r =
      tv_of_bool
        (match truth with
         | Ast.True -> v = T
         | Ast.False -> v = F
         | Ast.Unknown -> v = U)
    in
    if negated then tv_not r else r
  | Ast.Overlaps (a, b) -> compare_tv Ast.Eq (expr a) (expr b)
    (* simplified: full OVERLAPS needs period values, out of engine scope *)
  | Ast.Similar { negated; arg; pattern } ->
    (* Approximated by LIKE semantics over the shared '%'/'_' wildcards. *)
    let r =
      match expr arg, expr pattern with
      | Value.Null, _ | _, Value.Null -> U
      | Value.Str s, Value.Str p -> tv_of_bool (like_match ~pattern:p s)
      | _, _ -> err "SIMILAR applies to strings"
    in
    if negated then tv_not r else r
  | Ast.Bool_expr e -> (
    match expr e with
    | Value.Bool b -> tv_of_bool b
    | Value.Null -> U
    | _ -> err "boolean expression expected in condition")

(* --- FROM clause ----------------------------------------------------------------------- *)

and rel_of_result_set ?alias name (rs : result_set) columns_override =
  let names =
    match columns_override with
    | [] -> rs.columns
    | cols ->
      if List.length cols <> List.length rs.columns then
        err "column list arity mismatch for %s" name
      else cols
  in
  let qualifier = Some (Option.value ~default:name alias) in
  { cols = List.map (fun c -> (qualifier, c)) names; rows = rs.rows }

and rel_of_table_ref catalog ~outer (tr : Ast.table_ref) : rel =
  match tr with
  | Ast.Table (name, corr) -> (
    let alias = Option.map (fun c -> c.Ast.alias) corr in
    let columns_override =
      match corr with Some c -> c.Ast.columns | None -> []
    in
    match Catalog.find catalog name.Ast.name with
    | None -> err "unknown table %s" name.Ast.name
    | Some (Catalog.Base_table table) ->
      let qualifier = Some (Option.value ~default:name.Ast.name alias) in
      let names =
        match columns_override with
        | [] -> Schema.column_names table.Table.schema
        | cols -> cols
      in
      {
        cols = List.map (fun c -> (qualifier, c)) names;
        rows = List.map Array.to_list (Table.rows_list table);
      }
    | Some (Catalog.View view) ->
      let rs = query catalog ?outer view.Ast.view_query in
      let base_override =
        match view.Ast.view_columns with [] -> columns_override | cols -> cols
      in
      rel_of_result_set ?alias name.Ast.name rs base_override)
  | Ast.Derived_table (q, corr) ->
    let rs = query catalog ?outer q in
    rel_of_result_set ~alias:corr.Ast.alias corr.Ast.alias rs corr.Ast.columns
  | Ast.Joined { lhs; kind; rhs; condition } ->
    join catalog ~outer kind condition
      (rel_of_table_ref catalog ~outer lhs)
      (rel_of_table_ref catalog ~outer rhs)

and join catalog ~outer kind condition left right : rel =
  let cols = left.cols @ right.cols in
  let null_right = List.map (fun _ -> Value.Null) right.cols in
  let null_left = List.map (fun _ -> Value.Null) left.cols in
  let matches lrow rrow =
    let env = env_of_row ?outer cols (lrow @ rrow) in
    match kind, condition with
    | Ast.Cross, _ -> true
    | Ast.Natural, _ ->
      let common =
        List.filter
          (fun (_, c) -> List.exists (fun (_, c') -> String.equal c c') right.cols)
          left.cols
      in
      List.for_all
        (fun (_, c) ->
          let lv = lookup_exn (env_of_row left.cols lrow) None c in
          let rv = lookup_exn (env_of_row right.cols rrow) None c in
          Value.equal lv rv && not (Value.is_null lv))
        common
    | _, Some (Ast.On c) -> tv_is_true (eval_cond catalog env c)
    | _, Some (Ast.Using cs) ->
      List.for_all
        (fun c ->
          let lv = lookup_exn (env_of_row left.cols lrow) None c in
          let rv = lookup_exn (env_of_row right.cols rrow) None c in
          Value.equal lv rv && not (Value.is_null lv))
        cs
    | _, None -> err "join requires an ON or USING condition"
  in
  let inner =
    List.concat_map
      (fun lrow ->
        List.filter_map
          (fun rrow -> if matches lrow rrow then Some (lrow @ rrow) else None)
          right.rows)
      left.rows
  in
  let left_padding () =
    List.filter_map
      (fun lrow ->
        if List.exists (fun rrow -> matches lrow rrow) right.rows then None
        else Some (lrow @ null_right))
      left.rows
  in
  let right_padding () =
    List.filter_map
      (fun rrow ->
        if List.exists (fun lrow -> matches lrow rrow) left.rows then None
        else Some (null_left @ rrow))
      right.rows
  in
  let rows =
    match kind with
    | Ast.Inner | Ast.Cross | Ast.Natural -> inner
    | Ast.Left_outer -> inner @ left_padding ()
    | Ast.Right_outer -> inner @ right_padding ()
    | Ast.Full_outer -> inner @ left_padding () @ right_padding ()
  in
  { cols; rows }

and cross_rels (rels : rel list) : rel =
  match rels with
  | [] -> { cols = []; rows = [ [] ] }
  | first :: rest ->
    List.fold_left
      (fun (acc : rel) (r : rel) ->
        {
          cols = acc.cols @ r.cols;
          rows =
            List.concat_map
              (fun arow -> List.map (fun brow -> arow @ brow) r.rows)
              acc.rows;
        })
      first rest

(* --- SELECT ------------------------------------------------------------------------------ *)

and item_column_name item index =
  match item with
  | Ast.Expr_item (_, Some alias) -> alias
  | Ast.Expr_item (Ast.Column (_, name), None) -> name
  | Ast.Expr_item (_, None) | Ast.Star | Ast.Qualified_star _ ->
    Printf.sprintf "column%d" (index + 1)

and projection_columns (sel : Ast.select) (src : rel) =
  List.concat
    (List.mapi
       (fun i item ->
         match item with
         | Ast.Star -> List.map snd src.cols
         | Ast.Qualified_star q ->
           let matching =
             List.filter
               (fun (qual, _) -> qual = Some q)
               src.cols
           in
           if matching = [] then err "unknown qualifier %s" q
           else List.map snd matching
         | Ast.Expr_item _ -> [ item_column_name item i ])
       sel.projection)

and project_row catalog ?group env (sel : Ast.select) =
  List.concat_map
    (fun item ->
      match item with
      | Ast.Star -> env.values
      | Ast.Qualified_star q ->
        List.concat
          (List.map2
             (fun (qual, _) v -> if qual = Some q then [ v ] else [])
             env.cols env.values)
      | Ast.Expr_item (e, _) -> [ eval_expr catalog ?group env e ])
    sel.projection

and dedupe_rows rows =
  List.rev
    (List.fold_left
       (fun acc row ->
         if List.exists (List.equal Value.equal row) acc then acc else row :: acc)
       [] rows)

(* Besides the result rows, [select_rows] returns the evaluation context each
   row was produced from (its source environment and, for aggregated rows,
   the group): ORDER BY resolves sort expressions against the result columns
   first and falls through to these contexts, so both "ORDER BY alias" and
   "ORDER BY unprojected_column" (and "ORDER BY SUM(x)") work. *)
and select_rows catalog ?outer (sel : Ast.select) :
  result_set * (env * env list option) list =
  let src =
    match sel.from with
    | [] -> { cols = []; rows = [ [] ] }  (* SELECT without FROM *)
    | refs -> cross_rels (List.map (rel_of_table_ref catalog ~outer) refs)
  in
  let env_of row = env_of_row ?outer src.cols row in
  let filtered =
    match sel.where with
    | None -> src.rows
    | Some c ->
      List.filter (fun row -> tv_is_true (eval_cond catalog (env_of row) c)) src.rows
  in
  let aggregated =
    sel.group_by <> []
    || List.exists
         (function
           | Ast.Expr_item (e, _) -> expr_has_aggregate e
           | Ast.Star | Ast.Qualified_star _ -> false)
         sel.projection
    || Option.fold ~none:false ~some:cond_has_aggregate sel.having
  in
  let columns = projection_columns sel src in
  let produced =
    if not aggregated then
      List.map
        (fun row ->
          let env = env_of row in
          (project_row catalog env sel, (env, None)))
        filtered
    else begin
      (* Grouping: only plain expression grouping is executable; ROLLUP /
         CUBE / GROUPING SETS parse and lower but are not evaluated. *)
      let key_exprs =
        List.map
          (function
            | Ast.Group_expr e -> e
            | Ast.Rollup _ | Ast.Cube _ | Ast.Grouping_sets _ ->
              err "ROLLUP/CUBE/GROUPING SETS are not supported by the engine")
          sel.group_by
      in
      let groups =
        List.fold_left
          (fun acc row ->
            let env = env_of row in
            let key = List.map (eval_expr catalog env) key_exprs in
            let rec add = function
              | [] -> [ (key, [ env ]) ]
              | (k, envs) :: rest ->
                if List.equal Value.equal k key then (k, envs @ [ env ]) :: rest
                else (k, envs) :: add rest
            in
            add acc)
          [] filtered
      in
      let groups =
        (* Aggregation without GROUP BY yields one (possibly empty) group. *)
        if key_exprs = [] then [ ([], List.map env_of filtered) ] else groups
      in
      List.filter_map
        (fun (_, envs) ->
          let representative =
            match envs with
            | e :: _ -> e
            | [] -> env_of (List.map (fun _ -> Value.Null) src.cols)
          in
          let keep =
            match sel.having with
            | None -> true
            | Some c -> tv_is_true (eval_cond catalog ~group:envs representative c)
          in
          if keep then
            Some
              (project_row catalog ~group:envs representative sel,
               (representative, Some envs))
          else None)
        groups
    end
  in
  let produced =
    match sel.select_quantifier with
    | Some Ast.Distinct ->
      (* Deduplicate on the row values, keeping the first context. *)
      List.rev
        (List.fold_left
           (fun acc (row, ctx) ->
             if List.exists (fun (r, _) -> List.equal Value.equal r row) acc then acc
             else (row, ctx) :: acc)
           [] produced)
    | Some Ast.All | None -> produced
  in
  ({ columns; rows = List.map fst produced }, List.map snd produced)

and select catalog ?outer (sel : Ast.select) : result_set =
  fst (select_rows catalog ?outer sel)

(* --- Query bodies, ordering, fetch --------------------------------------------------------- *)

and query_body catalog ?outer (body : Ast.query_body) : result_set =
  match body with
  | Ast.Select sel -> select catalog ?outer sel
  | Ast.Paren_query q -> query catalog ?outer q
  | Ast.Values rows ->
    let env = Option.value ~default:empty_env outer in
    let evaluated = List.map (List.map (eval_expr catalog env)) rows in
    let width = match evaluated with [] -> 0 | r :: _ -> List.length r in
    {
      columns = List.init width (fun i -> Printf.sprintf "column%d" (i + 1));
      rows = evaluated;
    }
  | Ast.Set_operation { op; quantifier; corresponding; lhs; rhs } ->
    let l = query_body catalog ?outer lhs in
    let r = query_body catalog ?outer rhs in
    let l, r =
      if not corresponding then (l, r)
      else begin
        (* CORRESPONDING: operate on the columns common to both operands
           (by name, in left-operand order). *)
        let common = List.filter (fun c -> List.mem c r.columns) l.columns in
        if common = [] then err "CORRESPONDING: no common columns";
        let project (rs : result_set) =
          let indices =
            List.map
              (fun c ->
                let rec find i = function
                  | [] -> err "CORRESPONDING: missing column %s" c
                  | x :: rest -> if String.equal x c then i else find (i + 1) rest
                in
                find 0 rs.columns)
              common
          in
          {
            columns = common;
            rows = List.map (fun row -> List.map (List.nth row) indices) rs.rows;
          }
        in
        (project l, project r)
      end
    in
    if List.length l.columns <> List.length r.columns then
      err "set operation arity mismatch";
    let distinct = quantifier <> Some Ast.All in
    let rows =
      match op with
      | Ast.Union ->
        let all = l.rows @ r.rows in
        if distinct then dedupe_rows all else all
      | Ast.Intersect ->
        let keep =
          List.filter
            (fun row -> List.exists (List.equal Value.equal row) r.rows)
            l.rows
        in
        if distinct then dedupe_rows keep else keep
      | Ast.Except ->
        let keep =
          List.filter
            (fun row -> not (List.exists (List.equal Value.equal row) r.rows))
            l.rows
        in
        if distinct then dedupe_rows keep else keep
    in
    { columns = l.columns; rows }

(* Materialize WITH-clause results as overlay tables. Non-recursive CTEs
   evaluate once, in order (later CTEs see earlier ones). A recursive CTE
   starts empty and re-evaluates to a fixpoint (bounded, since each round
   must add rows). *)
and materialize_ctes catalog (wc : Ast.with_clause) =
  let cte_table name columns rows =
    let schema =
      {
        Schema.name;
        columns =
          List.map
            (fun c ->
              {
                Schema.col_name = c;
                col_type = Ast.T_varchar None;  (* untyped: rows stored raw *)
                not_null = false;
                primary_key = false;
                unique = false;
                default = None;
                references = None;
              })
            columns;
        checks = [];
        unique_sets = [];
        foreign_keys = [];
      }
    in
    let table = Table.create schema in
    List.iter (fun row -> Table.insert table (Array.of_list row)) rows;
    (name, Catalog.Base_table table)
  in
  List.fold_left
    (fun overlayed (cte : Ast.cte) ->
      let scope = Catalog.overlay catalog overlayed in
      let columns_of rs =
        match cte.Ast.cte_columns with
        | [] -> rs.columns
        | cols ->
          if List.length cols <> List.length rs.columns then
            err "WITH %s: column list arity mismatch" cte.Ast.cte_name
          else cols
      in
      if not wc.Ast.recursive then
        let rs = query scope cte.Ast.cte_query in
        overlayed @ [ cte_table cte.Ast.cte_name (columns_of rs) rs.rows ]
      else begin
        (* Fixpoint: start empty, re-evaluate until the row set is stable. *)
        let current = ref [] in
        let columns = ref cte.Ast.cte_columns in
        let continue = ref true in
        let rounds = ref 0 in
        while !continue do
          incr rounds;
          if !rounds > 256 then err "WITH RECURSIVE %s does not converge" cte.Ast.cte_name;
          let scope =
            Catalog.overlay catalog
              (overlayed
               @ [
                   cte_table cte.Ast.cte_name
                     (if !columns = [] then
                        List.map (fun i -> Printf.sprintf "column%d" (i + 1))
                          (List.init
                             (match !current with r :: _ -> List.length r | [] -> 0)
                             Fun.id)
                      else !columns)
                     !current;
                 ])
          in
          let rs = query scope cte.Ast.cte_query in
          columns := columns_of rs;
          let merged = dedupe_rows (!current @ rs.rows) in
          if List.length merged = List.length !current then continue := false
          else current := merged
        done;
        overlayed @ [ cte_table cte.Ast.cte_name !columns !current ]
      end)
    [] wc.Ast.ctes

and query catalog ?outer (q : Ast.query) : result_set =
  let catalog =
    match q.Ast.with_ with
    | None -> catalog
    | Some wc -> Catalog.overlay catalog (materialize_ctes catalog wc)
  in
  let rs, contexts =
    match q.body with
    | Ast.Select sel when q.order_by <> [] ->
      let rs, contexts = select_rows catalog ?outer sel in
      (rs, Some contexts)
    | body -> (query_body catalog ?outer body, None)
  in
  let rs =
    match q.order_by with
    | [] -> rs
    | specs ->
      let cols = List.map (fun c -> (None, c)) rs.columns in
      let contexts =
        match contexts with
        | Some cs -> List.map (fun c -> Some c) cs
        | None -> List.map (fun _ -> None) rs.rows
      in
      let keyed =
        List.map2
          (fun row context ->
            (* Result columns shadow source columns; the source environment
               (when available) is the fallback scope, and grouped rows keep
               their group for aggregate sort keys. *)
            let source_outer, group =
              match context with
              | Some (env, group) -> (Some env, group)
              | None -> (outer, None)
            in
            let env = env_of_row ?outer:source_outer cols row in
            (List.map (fun s -> eval_expr catalog ?group env s.Ast.sort_expr) specs, row))
          rs.rows contexts
      in
      let compare_keys (ka, _) (kb, _) =
        let rec go specs ka kb =
          match specs, ka, kb with
          | [], [], [] -> 0
          | s :: specs', a :: ka', b :: kb' ->
            let base =
              match a, b with
              | Value.Null, Value.Null -> 0
              | Value.Null, _ ->
                (* Default: NULLs sort last ascending, overridable. *)
                (match s.Ast.nulls_last with Some false -> -1 | _ -> 1)
              | _, Value.Null ->
                (match s.Ast.nulls_last with Some false -> 1 | _ -> -1)
              | _, _ ->
                let c = Value.compare_total a b in
                if s.Ast.descending then -c else c
            in
            if base <> 0 then base else go specs' ka' kb'
          | _, _, _ -> 0
        in
        go specs ka kb
      in
      { rs with rows = List.map snd (List.stable_sort compare_keys keyed) }
  in
  match q.fetch with
  | None -> rs
  | Some (Ast.Fetch_first n) | Some (Ast.Limit n) ->
    { rs with rows = List.filteri (fun i _ -> i < n) rs.rows }

(* --- DML / DDL ------------------------------------------------------------------------------ *)

let find_base_table catalog (name : Ast.object_name) =
  match Catalog.find catalog name.Ast.name with
  | Some (Catalog.Base_table t) -> t
  | Some (Catalog.View _) -> err "%s is a view, not a base table" name.Ast.name
  | None -> err "unknown table %s" name.Ast.name

let check_constraints catalog (table : Table.t) row =
  let schema = table.Table.schema in
  let cols = List.map (fun c -> (Some schema.Schema.name, c)) (Schema.column_names schema) in
  let env = env_of_row cols (Array.to_list row) in
  List.iteri
    (fun i (c : Schema.column) ->
      if c.Schema.not_null && Value.is_null row.(i) then
        err "column %s may not be null" c.Schema.col_name)
    schema.Schema.columns;
  List.iter
    (fun check ->
      match eval_cond catalog env check with
      | F -> err "CHECK constraint violated on %s" schema.Schema.name
      | T | U -> ())
    schema.Schema.checks;
  (* Single-column UNIQUE / PRIMARY KEY. *)
  List.iteri
    (fun i (c : Schema.column) ->
      if c.Schema.unique && not (Value.is_null row.(i)) then
        Vec.iter
          (fun existing ->
            if Value.equal existing.(i) row.(i) then
              err "duplicate value for unique column %s" c.Schema.col_name)
          table.Table.rows)
    schema.Schema.columns;
  (* Multi-column UNIQUE / PRIMARY KEY sets. *)
  List.iter
    (fun set ->
      let indices =
        List.map
          (fun name ->
            match Schema.column_index schema name with
            | Some i -> i
            | None -> err "unknown column %s" name)
          set
      in
      Vec.iter
        (fun existing ->
          if List.for_all (fun i -> Value.equal existing.(i) row.(i)) indices then
            err "duplicate key for unique constraint on %s"
              (String.concat ", " set))
        table.Table.rows)
    schema.Schema.unique_sets;
  (* Foreign keys: the referenced value must exist. *)
  let check_reference cols_here (spec : Ast.references_spec) =
    let target = find_base_table catalog spec.Ast.ref_table in
    let target_cols =
      match spec.Ast.ref_columns with
      | [] ->
        (* Default: the referenced table's primary key columns. *)
        List.filter_map
          (fun (c : Schema.column) ->
            if c.Schema.primary_key then Some c.Schema.col_name else None)
          target.Table.schema.Schema.columns
      | cs -> cs
    in
    let here_indices =
      List.map
        (fun n ->
          match Schema.column_index schema n with
          | Some i -> i
          | None -> err "unknown column %s" n)
        cols_here
    in
    let target_indices =
      List.map
        (fun n ->
          match Schema.column_index target.Table.schema n with
          | Some i -> i
          | None -> err "unknown referenced column %s" n)
        target_cols
    in
    if List.length here_indices <> List.length target_indices then
      err "foreign key arity mismatch";
    let values = List.map (fun i -> row.(i)) here_indices in
    if List.exists Value.is_null values then ()
    else
      let found =
        let ok = ref false in
        Vec.iter
          (fun trow ->
            if
              List.for_all2
                (fun v ti -> Value.equal v trow.(ti))
                values target_indices
            then ok := true)
          target.Table.rows;
        !ok
      in
      if not found then
        err "foreign key violation: no matching row in %s"
          spec.Ast.ref_table.Ast.name
  in
  List.iteri
    (fun i (c : Schema.column) ->
      match c.Schema.references with
      | Some spec ->
        ignore i;
        check_reference [ c.Schema.col_name ] spec
      | None -> ())
    schema.Schema.columns;
  List.iter (fun (cols, spec) -> check_reference cols spec) schema.Schema.foreign_keys

let default_value catalog (c : Schema.column) =
  match c.Schema.default with
  | Some e -> Value.coerce c.Schema.col_type (eval_expr catalog empty_env e)
  | None -> Value.Null

let insert catalog (ins : Ast.insert) =
  let table = find_base_table catalog ins.Ast.table in
  let schema = table.Table.schema in
  let target_columns =
    match ins.Ast.columns with
    | [] -> Schema.column_names schema
    | cols -> cols
  in
  let build_row values =
    if List.length values <> List.length target_columns then
      err "INSERT arity mismatch";
    let row =
      Array.of_list (List.map (default_value catalog) schema.Schema.columns)
    in
    List.iter2
      (fun col v ->
        match Schema.column_index schema col with
        | None -> err "unknown column %s" col
        | Some i ->
          let ty = (List.nth schema.Schema.columns i).Schema.col_type in
          row.(i) <- Value.coerce ty v)
      target_columns values;
    row
  in
  let rows =
    match ins.Ast.source with
    | Ast.Insert_defaults -> [ [] ]
    | Ast.Insert_values rows ->
      List.map (List.map (eval_expr catalog empty_env)) rows
    | Ast.Insert_query q -> (query catalog q).rows
  in
  let built =
    List.map
      (fun values ->
        match ins.Ast.source with
        | Ast.Insert_defaults ->
          Array.of_list (List.map (default_value catalog) schema.Schema.columns)
        | _ -> build_row values)
      rows
  in
  List.iter
    (fun row ->
      check_constraints catalog table row;
      Table.insert table row)
    built;
  List.length built

let update catalog (u : Ast.update) =
  let table = find_base_table catalog u.Ast.table in
  let schema = table.Table.schema in
  let cols = List.map (fun c -> (Some schema.Schema.name, c)) (Schema.column_names schema) in
  let count = ref 0 in
  Vec.map_in_place
    (fun row ->
      let env = env_of_row cols (Array.to_list row) in
      let affected =
        match u.Ast.update_where with
        | None -> true
        | Some c -> tv_is_true (eval_cond catalog env c)
      in
      if not affected then row
      else begin
        incr count;
        let fresh = Array.copy row in
        List.iter
          (fun (sc : Ast.set_clause) ->
            match Schema.column_index schema sc.Ast.target with
            | None -> err "unknown column %s" sc.Ast.target
            | Some i ->
              let column = List.nth schema.Schema.columns i in
              let v =
                match sc.Ast.value with
                | None -> default_value catalog column
                | Some e -> Value.coerce column.Schema.col_type (eval_expr catalog env e)
              in
              fresh.(i) <- v)
          u.Ast.assignments;
        (* NOT NULL and CHECK revalidation (uniqueness is not re-checked on
           update: good enough for the reproduction's workloads). *)
        List.iteri
          (fun i (c : Schema.column) ->
            if c.Schema.not_null && Value.is_null fresh.(i) then
              err "column %s may not be null" c.Schema.col_name)
          schema.Schema.columns;
        let env' = env_of_row cols (Array.to_list fresh) in
        List.iter
          (fun check ->
            match eval_cond catalog env' check with
            | F -> err "CHECK constraint violated on %s" schema.Schema.name
            | T | U -> ())
          schema.Schema.checks;
        fresh
      end)
    table.Table.rows;
  !count

let delete catalog (d : Ast.delete) =
  let table = find_base_table catalog d.Ast.table in
  let schema = table.Table.schema in
  let cols = List.map (fun c -> (Some schema.Schema.name, c)) (Schema.column_names schema) in
  Vec.filter_in_place
    (fun row ->
      let env = env_of_row cols (Array.to_list row) in
      match d.Ast.delete_where with
      | None -> false
      | Some c -> not (tv_is_true (eval_cond catalog env c)))
    table.Table.rows

let merge catalog (m : Ast.merge) =
  let target = find_base_table catalog m.Ast.target in
  let schema = target.Table.schema in
  let target_qualifier =
    Option.value ~default:m.Ast.target.Ast.name m.Ast.target_alias
  in
  let target_cols =
    List.map (fun c -> (Some target_qualifier, c)) (Schema.column_names schema)
  in
  let source = rel_of_table_ref catalog ~outer:None m.Ast.source in
  let affected = ref 0 in
  List.iter
    (fun source_row ->
      let source_env = env_of_row source.cols source_row in
      (* Find matching target rows under the ON condition. *)
      let matched = ref false in
      Vec.map_in_place
        (fun trow ->
          let env =
            env_of_row (target_cols @ source.cols) (Array.to_list trow @ source_row)
          in
          if tv_is_true (eval_cond catalog env m.Ast.on) then begin
            matched := true;
            match
              List.find_opt
                (function Ast.When_matched_update _ -> true | _ -> false)
                m.Ast.actions
            with
            | Some (Ast.When_matched_update sets) ->
              incr affected;
              let fresh = Array.copy trow in
              List.iter
                (fun (sc : Ast.set_clause) ->
                  match Schema.column_index schema sc.Ast.target with
                  | None -> err "unknown column %s" sc.Ast.target
                  | Some i ->
                    let column = List.nth schema.Schema.columns i in
                    let v =
                      match sc.Ast.value with
                      | None -> default_value catalog column
                      | Some e ->
                        Value.coerce column.Schema.col_type (eval_expr catalog env e)
                    in
                    fresh.(i) <- v)
                sets;
              fresh
            | _ -> trow
          end
          else trow)
        target.Table.rows;
      if not !matched then
        match
          List.find_opt
            (function Ast.When_not_matched_insert _ -> true | _ -> false)
            m.Ast.actions
        with
        | Some (Ast.When_not_matched_insert (cols, values)) ->
          incr affected;
          let columns =
            match cols with [] -> Schema.column_names schema | cs -> cs
          in
          let row =
            Array.of_list (List.map (default_value catalog) schema.Schema.columns)
          in
          List.iter2
            (fun col e ->
              match Schema.column_index schema col with
              | None -> err "unknown column %s" col
              | Some i ->
                let column = List.nth schema.Schema.columns i in
                row.(i) <-
                  Value.coerce column.Schema.col_type (eval_expr catalog source_env e))
            columns values;
          check_constraints catalog target row;
          Table.insert target row
        | _ -> ())
    source.rows;
  !affected

(* --- EXPLAIN ------------------------------------------------------------------------ *)

(* A one-column textual description of the (naive) evaluation strategy. *)
let explain catalog (q : Ast.query) : result_set =
  let lines = ref [] in
  let emit depth fmt =
    Printf.ksprintf
      (fun s -> lines := (String.make (2 * depth) ' ' ^ s) :: !lines)
      fmt
  in
  let rec go_query depth (q : Ast.query) =
    (match q.Ast.with_ with
     | None -> ()
     | Some wc ->
       List.iter
         (fun (cte : Ast.cte) ->
           emit depth "materialize CTE %s%s" cte.Ast.cte_name
             (if wc.Ast.recursive then " (recursive fixpoint)" else "");
           go_query (depth + 1) cte.Ast.cte_query)
         wc.Ast.ctes);
    go_body depth q.Ast.body;
    if q.Ast.order_by <> [] then
      emit depth "sort by %d key(s)" (List.length q.Ast.order_by);
    (match q.Ast.fetch with
     | Some (Ast.Fetch_first n) | Some (Ast.Limit n) -> emit depth "take first %d" n
     | None -> ())
  and go_body depth = function
    | Ast.Select s ->
      List.iter (go_ref depth) s.Ast.from;
      (match s.Ast.where with
       | Some c -> emit depth "filter: %s" (Sql_printer.cond c)
       | None -> ());
      if s.Ast.group_by <> [] then
        emit depth "group by %d key(s)" (List.length s.Ast.group_by);
      (match s.Ast.having with
       | Some c -> emit depth "having: %s" (Sql_printer.cond c)
       | None -> ());
      emit depth "project %d item(s)%s"
        (List.length s.Ast.projection)
        (if s.Ast.select_quantifier = Some Ast.Distinct then " distinct" else "")
    | Ast.Set_operation { op; corresponding; lhs; rhs; _ } ->
      emit depth "%s%s of:"
        (match op with
         | Ast.Union -> "union"
         | Ast.Except -> "except"
         | Ast.Intersect -> "intersect")
        (if corresponding then " (corresponding)" else "");
      go_body (depth + 1) lhs;
      go_body (depth + 1) rhs
    | Ast.Values rows -> emit depth "constant table (%d rows)" (List.length rows)
    | Ast.Paren_query q -> go_query depth q
  and go_ref depth = function
    | Ast.Table (name, corr) ->
      let rows =
        match Catalog.find catalog name.Ast.name with
        | Some (Catalog.Base_table t) ->
          Printf.sprintf "%d rows" (Table.row_count t)
        | Some (Catalog.View _) -> "view"
        | None -> "unknown"
      in
      emit depth "scan %s (%s)%s" name.Ast.name rows
        (match corr with
         | Some c -> Printf.sprintf " as %s" c.Ast.alias
         | None -> "")
    | Ast.Derived_table (q, corr) ->
      emit depth "derived table as %s:" corr.Ast.alias;
      go_query (depth + 1) q
    | Ast.Joined { lhs; kind; rhs; condition } ->
      emit depth "nested-loop %s join%s:"
        (match kind with
         | Ast.Inner -> "inner"
         | Ast.Left_outer -> "left outer"
         | Ast.Right_outer -> "right outer"
         | Ast.Full_outer -> "full outer"
         | Ast.Cross -> "cross"
         | Ast.Natural -> "natural")
        (match condition with
         | Some (Ast.On c) -> " on " ^ Sql_printer.cond c
         | Some (Ast.Using cols) -> " using (" ^ String.concat ", " cols ^ ")"
         | None -> "");
      go_ref (depth + 1) lhs;
      go_ref (depth + 1) rhs
  in
  go_query 0 q;
  { columns = [ "plan" ]; rows = List.rev_map (fun l -> [ Value.Str l ]) !lines }

(* --- Statement dispatch ------------------------------------------------------------------------ *)

let run_query catalog q = query catalog q

let run_statement catalog (stmt : Ast.statement) : outcome =
  match stmt with
  | Ast.Query_stmt q -> Rows (query catalog q)
  | Ast.Insert_stmt i -> Affected (insert catalog i)
  | Ast.Update_stmt u -> Affected (update catalog u)
  | Ast.Delete_stmt d -> Affected (delete catalog d)
  | Ast.Merge_stmt m -> Affected (merge catalog m)
  | Ast.Create_table_stmt ct -> (
    match Schema.of_create_table ct with
    | Error msg -> err "%s" msg
    | Ok schema -> (
      match Catalog.add_table catalog (Table.create schema) with
      | Ok () -> Done (Printf.sprintf "table %s created" schema.Schema.name)
      | Error msg -> err "%s" msg))
  | Ast.Create_view_stmt cv -> (
    match Catalog.add_view catalog cv with
    | Ok () -> Done (Printf.sprintf "view %s created" cv.Ast.view_name.Ast.name)
    | Error msg -> err "%s" msg)
  | Ast.Drop_stmt d -> (
    let name = d.Ast.drop_name.Ast.name in
    (match d.Ast.drop_kind, Catalog.find catalog name with
     | _, None -> err "unknown relation %s" name
     | Ast.Drop_table, Some (Catalog.View _) -> err "%s is a view" name
     | Ast.Drop_view, Some (Catalog.Base_table _) -> err "%s is a table" name
     | _, Some _ -> ());
    match Catalog.drop catalog name with
    | Ok () -> Done (Printf.sprintf "%s dropped" name)
    | Error msg -> err "%s" msg)
  | Ast.Alter_table_stmt a -> (
    let table = find_base_table catalog a.Ast.altered in
    let schema = table.Table.schema in
    match a.Ast.action with
    | Ast.Add_column def ->
      if Schema.column_index schema def.Ast.column <> None then
        err "column %s already exists" def.Ast.column
      else begin
        let column =
          {
            Schema.col_name = def.Ast.column;
            col_type = def.Ast.ty;
            not_null = List.mem Ast.C_not_null def.Ast.constraints;
            primary_key = false;
            unique = List.mem Ast.C_unique def.Ast.constraints;
            default = def.Ast.default;
            references = None;
          }
        in
        let fresh_schema =
          { schema with Schema.columns = schema.Schema.columns @ [ column ] }
        in
        let fill = default_value catalog column in
        let fresh = Table.create fresh_schema in
        Vec.iter
          (fun row -> Table.insert fresh (Array.append row [| fill |]))
          table.Table.rows;
        Catalog.replace_table catalog fresh;
        Done (Printf.sprintf "column %s added" def.Ast.column)
      end
    | Ast.Drop_column (name, _) -> (
      match Schema.column_index schema name with
      | None -> err "unknown column %s" name
      | Some i ->
        let fresh_schema =
          {
            schema with
            Schema.columns = List.filteri (fun j _ -> j <> i) schema.Schema.columns;
          }
        in
        let fresh = Table.create fresh_schema in
        Vec.iter
          (fun row ->
            Table.insert fresh
              (Array.of_list
                 (List.filteri (fun j _ -> j <> i) (Array.to_list row))))
          table.Table.rows;
        Catalog.replace_table catalog fresh;
        Done (Printf.sprintf "column %s dropped" name))
    | Ast.Set_column_default (name, e) -> (
      match Schema.column_index schema name with
      | None -> err "unknown column %s" name
      | Some i ->
        let fresh_schema =
          {
            schema with
            Schema.columns =
              List.mapi
                (fun j (c : Schema.column) ->
                  if j = i then { c with Schema.default = Some e } else c)
                schema.Schema.columns;
          }
        in
        Catalog.replace_table catalog { table with Table.schema = fresh_schema };
        Done (Printf.sprintf "default set for %s" name))
    | Ast.Drop_column_default name -> (
      match Schema.column_index schema name with
      | None -> err "unknown column %s" name
      | Some i ->
        let fresh_schema =
          {
            schema with
            Schema.columns =
              List.mapi
                (fun j (c : Schema.column) ->
                  if j = i then { c with Schema.default = None } else c)
                schema.Schema.columns;
          }
        in
        Catalog.replace_table catalog { table with Table.schema = fresh_schema };
        Done (Printf.sprintf "default dropped for %s" name))
    | Ast.Add_constraint tc -> (
      match tc.Ast.body with
      | Ast.T_check c ->
        let fresh_schema =
          { schema with Schema.checks = schema.Schema.checks @ [ c ] }
        in
        Catalog.replace_table catalog { table with Table.schema = fresh_schema };
        Done "constraint added"
      | Ast.T_unique cols | Ast.T_primary_key cols ->
        let fresh_schema =
          { schema with Schema.unique_sets = schema.Schema.unique_sets @ [ cols ] }
        in
        Catalog.replace_table catalog { table with Table.schema = fresh_schema };
        Done "constraint added"
      | Ast.T_foreign_key (cols, spec) ->
        let fresh_schema =
          {
            schema with
            Schema.foreign_keys = schema.Schema.foreign_keys @ [ (cols, spec) ];
          }
        in
        Catalog.replace_table catalog { table with Table.schema = fresh_schema };
        Done "constraint added"))
  | Ast.Grant_stmt g ->
    List.iter
      (fun grantee ->
        Catalog.add_grant catalog
          {
            Catalog.privileges = g.Ast.privileges;
            on_table = g.Ast.grant_on.Ast.name;
            grantee;
            grant_option = g.Ast.with_grant_option;
          })
      g.Ast.grantees;
    Done "granted"
  | Ast.Revoke_stmt r ->
    let removed =
      List.fold_left
        (fun n grantee ->
          n
          + Catalog.remove_grants catalog ~on_table:r.Ast.revoke_on.Ast.name
              ~grantee ~privileges:r.Ast.revoked)
        0 r.Ast.revokees
    in
    Done (Printf.sprintf "revoked (%d grants removed)" removed)
  | Ast.Explain_stmt q -> Rows (explain catalog q)
  | Ast.Schema_stmt _ ->
    (* Single-schema engine: schema statements are accepted and ignored. *)
    Done "ok"
  | Ast.Sequence_stmt (Ast.Create_sequence { seq_name; seq_start; seq_increment }) -> (
    match
      Catalog.create_sequence catalog ~name:seq_name
        ~start:(Option.value ~default:1 seq_start)
        ~increment:(Option.value ~default:1 seq_increment)
    with
    | Ok () -> Done (Printf.sprintf "sequence %s created" seq_name)
    | Error msg -> err "%s" msg)
  | Ast.Sequence_stmt (Ast.Drop_sequence name) -> (
    match Catalog.drop_sequence catalog name with
    | Ok () -> Done (Printf.sprintf "sequence %s dropped" name)
    | Error msg -> err "%s" msg)
  | Ast.Transaction_stmt _ | Ast.Session_stmt _ ->
    err "transaction and session statements are handled by the Database layer"

let pp_result_set ppf rs =
  Fmt.pf ppf "%s@." (String.concat " | " rs.columns);
  List.iter
    (fun row ->
      Fmt.pf ppf "%s@." (String.concat " | " (List.map Value.to_string row)))
    rs.rows
