(** Privilege checking against recorded grants.

    When a session user is set (see {!Database.set_user}), every statement is
    checked against the catalog's grant records before execution: SELECT
    needs [P_select] on every table the statement reads, INSERT/UPDATE/DELETE
    need the corresponding privilege on their target (plus [P_select] on
    tables they read), and DDL/DCL/transaction statements are owner-only.
    Grants to [PUBLIC] apply to every user; [P_all] covers everything. *)

type requirement = {
  table : string;
  privilege : Sql_ast.Ast.privilege;
}

val requirements : Sql_ast.Ast.statement -> requirement list option
(** The privileges a statement needs, or [None] when the statement is
    owner-only (DDL, access control, schema and sequence definition).
    Transaction statements need nothing. *)

val check :
  Catalog.t -> user:string -> Sql_ast.Ast.statement -> (unit, string) result
(** [check catalog ~user stmt] verifies every requirement against the
    recorded grants. *)
