(** The database catalog: tables, views and recorded grants. *)

type relation =
  | Base_table of Table.t
  | View of Sql_ast.Ast.create_view

type grant_record = {
  privileges : Sql_ast.Ast.privilege list;
  on_table : string;
  grantee : Sql_ast.Ast.grantee;
  grant_option : bool;
}

(** Sequence generator state. *)
type sequence = {
  mutable next : int;
  increment : int;
}

type t

val create : unit -> t
val find : t -> string -> relation option
val add_table : t -> Table.t -> (unit, string) result
val add_view : t -> Sql_ast.Ast.create_view -> (unit, string) result
val drop : t -> string -> (unit, string) result
val replace_table : t -> Table.t -> unit
val tables : t -> Table.t list
val relation_names : t -> string list
val add_grant : t -> grant_record -> unit
val remove_grants :
  t -> on_table:string -> grantee:Sql_ast.Ast.grantee ->
  privileges:Sql_ast.Ast.privilege list -> int
val grants : t -> grant_record list
val create_sequence :
  t -> name:string -> start:int -> increment:int -> (unit, string) result

val drop_sequence : t -> string -> (unit, string) result

val next_value : t -> string -> (int, string) result
(** Advance the sequence and return its next value. *)

val sequences : t -> (string * sequence) list

val snapshot : t -> t
val restore : t -> from:t -> unit

val overlay : t -> (string * relation) list -> t
(** [overlay base extra] is a catalog whose lookups see [extra] first (in
    order) and fall back to [base]. Base tables are shared, not copied —
    used to bring WITH-clause results into scope for one query. *)
