open Sql_ast

exception Missing of int

let literal_of_value = function
  | Value.Null -> Ast.L_null
  | Value.Int n -> Ast.L_integer n
  | Value.Float f -> Ast.L_decimal f
  | Value.Str s -> Ast.L_string s
  | Value.Bool b -> Ast.L_bool b

(* One generic traversal, parameterized by what to do at Parameter nodes. *)
let rec map_expr f (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Parameter n -> f n
  | Ast.Lit _ | Ast.Column _ | Ast.Next_value _ -> e
  | Ast.Unary (s, e) -> Ast.Unary (s, map_expr f e)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, map_expr f a, map_expr f b)
  | Ast.Aggregate a ->
    Ast.Aggregate
      {
        a with
        arg = (match a.arg with Ast.A_star -> Ast.A_star | Ast.A_expr e -> Ast.A_expr (map_expr f e));
      }
  | Ast.Call (name, args) -> Ast.Call (name, List.map (map_expr f) args)
  | Ast.Substring { arg; from_; for_ } ->
    Ast.Substring
      { arg = map_expr f arg; from_ = map_expr f from_; for_ = Option.map (map_expr f) for_ }
  | Ast.Position { needle; haystack } ->
    Ast.Position { needle = map_expr f needle; haystack = map_expr f haystack }
  | Ast.Trim { side; removed; arg } ->
    Ast.Trim { side; removed = Option.map (map_expr f) removed; arg = map_expr f arg }
  | Ast.Extract { field; arg } -> Ast.Extract { field; arg = map_expr f arg }
  | Ast.Overlay { arg; placing; from_; for_ } ->
    Ast.Overlay
      {
        arg = map_expr f arg;
        placing = map_expr f placing;
        from_ = map_expr f from_;
        for_ = Option.map (map_expr f) for_;
      }
  | Ast.Case_simple { operand; branches; else_ } ->
    Ast.Case_simple
      {
        operand = map_expr f operand;
        branches = List.map (fun (w, t) -> (map_expr f w, map_expr f t)) branches;
        else_ = Option.map (map_expr f) else_;
      }
  | Ast.Case_searched { branches; else_ } ->
    Ast.Case_searched
      {
        branches = List.map (fun (w, t) -> (map_cond f w, map_expr f t)) branches;
        else_ = Option.map (map_expr f) else_;
      }
  | Ast.Cast (e, ty) -> Ast.Cast (map_expr f e, ty)
  | Ast.Scalar_subquery q -> Ast.Scalar_subquery (map_query f q)
  | Ast.Window_call w ->
    Ast.Window_call
      {
        w with
        partition_by = List.map (map_expr f) w.partition_by;
        win_order_by = List.map (map_expr f) w.win_order_by;
      }

and map_cond f (c : Ast.cond) : Ast.cond =
  match c with
  | Ast.Comparison (op, a, b) -> Ast.Comparison (op, map_expr f a, map_expr f b)
  | Ast.Quantified_comparison q ->
    Ast.Quantified_comparison
      { q with lhs = map_expr f q.lhs; subquery = map_query f q.subquery }
  | Ast.Between b ->
    Ast.Between
      {
        b with
        arg = map_expr f b.arg;
        low = map_expr f b.low;
        high = map_expr f b.high;
      }
  | Ast.In_list i ->
    Ast.In_list
      { i with arg = map_expr f i.arg; values = List.map (map_expr f) i.values }
  | Ast.In_subquery i ->
    Ast.In_subquery { i with arg = map_expr f i.arg; subquery = map_query f i.subquery }
  | Ast.Like l ->
    Ast.Like
      {
        l with
        arg = map_expr f l.arg;
        pattern = map_expr f l.pattern;
        escape = Option.map (map_expr f) l.escape;
      }
  | Ast.Is_null i -> Ast.Is_null { i with arg = map_expr f i.arg }
  | Ast.Is_distinct_from d ->
    Ast.Is_distinct_from { d with lhs = map_expr f d.lhs; rhs = map_expr f d.rhs }
  | Ast.Exists q -> Ast.Exists (map_query f q)
  | Ast.Unique q -> Ast.Unique (map_query f q)
  | Ast.Not c -> Ast.Not (map_cond f c)
  | Ast.And (a, b) -> Ast.And (map_cond f a, map_cond f b)
  | Ast.Or (a, b) -> Ast.Or (map_cond f a, map_cond f b)
  | Ast.Is_truth t -> Ast.Is_truth { t with arg = map_cond f t.arg }
  | Ast.Overlaps (a, b) -> Ast.Overlaps (map_expr f a, map_expr f b)
  | Ast.Similar s ->
    Ast.Similar { s with arg = map_expr f s.arg; pattern = map_expr f s.pattern }
  | Ast.Bool_expr e -> Ast.Bool_expr (map_expr f e)

and map_query f (q : Ast.query) : Ast.query =
  {
    q with
    with_ =
      Option.map
        (fun (wc : Ast.with_clause) ->
          {
            wc with
            ctes =
              List.map
                (fun (cte : Ast.cte) ->
                  { cte with cte_query = map_query f cte.cte_query })
                wc.ctes;
          })
        q.with_;
    body = map_body f q.body;
    order_by =
      List.map (fun s -> { s with Ast.sort_expr = map_expr f s.Ast.sort_expr }) q.order_by;
  }

and map_body f (b : Ast.query_body) : Ast.query_body =
  match b with
  | Ast.Select s ->
    Ast.Select
      {
        s with
        projection =
          List.map
            (function
              | Ast.Expr_item (e, a) -> Ast.Expr_item (map_expr f e, a)
              | (Ast.Star | Ast.Qualified_star _) as item -> item)
            s.projection;
        from = List.map (map_ref f) s.from;
        where = Option.map (map_cond f) s.where;
        group_by =
          List.map
            (function
              | Ast.Group_expr e -> Ast.Group_expr (map_expr f e)
              | Ast.Rollup es -> Ast.Rollup (List.map (map_expr f) es)
              | Ast.Cube es -> Ast.Cube (List.map (map_expr f) es)
              | Ast.Grouping_sets sets ->
                Ast.Grouping_sets (List.map (List.map (map_expr f)) sets))
            s.group_by;
        having = Option.map (map_cond f) s.having;
      }
  | Ast.Set_operation s ->
    Ast.Set_operation { s with lhs = map_body f s.lhs; rhs = map_body f s.rhs }
  | Ast.Values rows -> Ast.Values (List.map (List.map (map_expr f)) rows)
  | Ast.Paren_query q -> Ast.Paren_query (map_query f q)

and map_ref f (r : Ast.table_ref) : Ast.table_ref =
  match r with
  | Ast.Table _ -> r
  | Ast.Derived_table (q, c) -> Ast.Derived_table (map_query f q, c)
  | Ast.Joined j ->
    Ast.Joined
      {
        j with
        lhs = map_ref f j.lhs;
        rhs = map_ref f j.rhs;
        condition =
          Option.map
            (function
              | Ast.On c -> Ast.On (map_cond f c)
              | Ast.Using _ as u -> u)
            j.condition;
      }

let map_statement f (stmt : Ast.statement) : Ast.statement =
  match stmt with
  | Ast.Query_stmt q -> Ast.Query_stmt (map_query f q)
  | Ast.Explain_stmt q -> Ast.Explain_stmt (map_query f q)
  | Ast.Insert_stmt i ->
    Ast.Insert_stmt
      {
        i with
        source =
          (match i.source with
           | Ast.Insert_values rows -> Ast.Insert_values (List.map (List.map (map_expr f)) rows)
           | Ast.Insert_query q -> Ast.Insert_query (map_query f q)
           | Ast.Insert_defaults -> Ast.Insert_defaults);
      }
  | Ast.Update_stmt u ->
    Ast.Update_stmt
      {
        u with
        assignments =
          List.map
            (fun (sc : Ast.set_clause) ->
              { sc with Ast.value = Option.map (map_expr f) sc.Ast.value })
            u.assignments;
        update_where = Option.map (map_cond f) u.update_where;
      }
  | Ast.Delete_stmt d ->
    Ast.Delete_stmt { d with delete_where = Option.map (map_cond f) d.delete_where }
  | Ast.Merge_stmt m ->
    Ast.Merge_stmt
      {
        m with
        source = map_ref f m.source;
        on = map_cond f m.on;
        actions =
          List.map
            (function
              | Ast.When_matched_update sets ->
                Ast.When_matched_update
                  (List.map
                     (fun (sc : Ast.set_clause) ->
                       { sc with Ast.value = Option.map (map_expr f) sc.Ast.value })
                     sets)
              | Ast.When_not_matched_insert (cols, vals) ->
                Ast.When_not_matched_insert (cols, List.map (map_expr f) vals))
            m.actions;
      }
  | Ast.Create_table_stmt _ | Ast.Create_view_stmt _ | Ast.Drop_stmt _
  | Ast.Alter_table_stmt _ | Ast.Grant_stmt _ | Ast.Revoke_stmt _
  | Ast.Transaction_stmt _ | Ast.Schema_stmt _ | Ast.Sequence_stmt _
  | Ast.Session_stmt _ ->
    stmt

let bind stmt values =
  let arr = Array.of_list values in
  match
    map_statement
      (fun n ->
        if n >= 1 && n <= Array.length arr then Ast.Lit (literal_of_value arr.(n - 1))
        else raise (Missing n))
      stmt
  with
  | bound -> Ok bound
  | exception Missing n -> Error (Printf.sprintf "no value bound for parameter ?%d" n)

let parameter_count stmt =
  let highest = ref 0 in
  ignore
    (map_statement
       (fun n ->
         if n > !highest then highest := n;
         Ast.Parameter n)
       stmt);
  !highest
