lib/engine/privileges.ml: Ast Catalog List Option Printf Sql_ast String
