lib/engine/schema.mli: Sql_ast
