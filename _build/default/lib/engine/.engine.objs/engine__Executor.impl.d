lib/engine/executor.ml: Array Ast Catalog Float Fmt Fun List Option Printf Schema Sql_ast Sql_printer String Table Value Vec
