lib/engine/privileges.mli: Catalog Sql_ast
