lib/engine/catalog.mli: Sql_ast Table
