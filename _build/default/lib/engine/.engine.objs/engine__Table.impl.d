lib/engine/table.ml: Array Schema Value Vec
