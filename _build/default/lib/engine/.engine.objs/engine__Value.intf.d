lib/engine/value.mli: Fmt Sql_ast
