lib/engine/params.mli: Sql_ast Value
