lib/engine/vec.mli:
