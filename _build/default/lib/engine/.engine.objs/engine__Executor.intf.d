lib/engine/executor.mli: Catalog Fmt Sql_ast Value
