lib/engine/catalog.ml: List Printf Schema Sql_ast String Table
