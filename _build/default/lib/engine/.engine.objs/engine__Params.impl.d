lib/engine/params.ml: Array Ast List Option Printf Sql_ast Value
