lib/engine/database.mli: Catalog Executor Sql_ast
