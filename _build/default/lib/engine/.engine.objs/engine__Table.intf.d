lib/engine/table.mli: Schema Value Vec
