lib/engine/database.ml: Ast Catalog Executor List Printf Privileges Sql_ast String Value
