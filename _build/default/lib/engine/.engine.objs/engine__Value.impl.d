lib/engine/value.ml: Bool Float Fmt Int Printf Sql_ast String
