lib/engine/schema.ml: Ast List Printf Sql_ast String
