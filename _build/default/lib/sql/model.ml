let regions =
  [
    Features_lexical.region;
    Features_expr.region;
    Features_query.region;
    Features_pred.region;
    Features_types.region;
    Features_dml.region;
    Features_ddl.region;
    Features_dcl.region;
    Features_txn.region;
    Features_ext.region;
  ]

let concept =
  Feature.Tree.feature "SQL:2003" (List.map (fun r -> r.Def.subtree) regions)

let model =
  Feature.Model.make
    ~constraints:(List.concat_map (fun r -> r.Def.constraints) regions)
    concept

let registry =
  Compose.Fragment.registry (List.concat_map (fun r -> r.Def.fragments) regions)

let start_symbol = "sql_statement"

let diagrams =
  let names =
    "SQL:2003" :: List.concat_map (fun r -> r.Def.diagram_names) regions
  in
  List.filter_map
    (fun name ->
      Option.map (fun tree -> (name, tree)) (Feature.Tree.find concept name))
    names

let diagram name = List.assoc_opt name diagrams

type stats = {
  features_in_model : int;
  diagram_count : int;
  features_across_diagrams : int;
  constraint_count : int;
}

let stats =
  {
    features_in_model = Feature.Tree.feature_count concept;
    diagram_count = List.length diagrams;
    features_across_diagrams =
      List.fold_left
        (fun n (_, tree) -> n + Feature.Tree.feature_count tree)
        0 diagrams;
    constraint_count = List.length model.Feature.Model.constraints;
  }

let fragment_rules =
  List.map
    (fun (f : Compose.Fragment.t) -> (f.Compose.Fragment.feature, f.Compose.Fragment.rules))
    (Compose.Fragment.fragments registry)

let compose ?lint config =
  Compose.Composer.compose ?lint ~start:start_symbol model registry config

let lint_hook config (out : Compose.Composer.output) =
  Lint.run ~model ~config ~fragments:fragment_rules
    ~tokens:out.Compose.Composer.tokens out.Compose.Composer.grammar

let compose_linted config = compose ~lint:(lint_hook config) config

let close config = Feature.Config.close model config
let validate config = Feature.Config.validate model config
