(** Queries region: query expressions, the [Query Specification] diagram
    (paper Figure 1), the [Table Expression] diagram (paper Figure 2), table
    references and joins, set operations, ordering and fetch clauses.

    Feature and diagram names follow the paper where it names them. *)

open Feature.Tree
open Grammar.Builder
open Def

(* ------------------------------------------------------------------ *)
(* Diagram subtrees                                                    *)
(* ------------------------------------------------------------------ *)

let set_quantifier_tree =
  feature "Set Quantifier" [ Or_group [ leaf "All"; leaf "Distinct" ] ]

let select_list_tree =
  feature "Select List"
    [
      optional (leaf "Asterisk");
      optional (leaf "Qualified Asterisk");
      mandatory
        (feature ~card:one_or_more "Select Sublist"
           [
             mandatory
               (feature "Derived Column" [ optional (leaf "As Clause") ]);
             optional (leaf "Multiple Select Sublists");
           ]);
    ]

let table_reference_tree =
  feature ~card:one_or_more "Table Reference"
    [
      optional
        (feature "Correlation Name" [ optional (leaf "Derived Column List") ]);
      optional (leaf "Derived Table");
      optional (leaf "Multiple Table References");
      optional
        (feature "Joined Table"
           [
             Or_group
               [
                 leaf "Inner Join";
                 feature "Outer Join"
                   [
                     Or_group
                       [ leaf "Left Join"; leaf "Right Join"; leaf "Full Join" ];
                   ];
                 leaf "Cross Join";
                 leaf "Natural Join";
               ];
             optional
               (feature "Join Specification"
                  [ Or_group [ leaf "On Clause"; leaf "Using Clause" ] ]);
           ]);
    ]

let group_by_tree =
  feature "Group By"
    [
      optional (leaf "Rollup");
      optional (leaf "Cube");
      optional (leaf "Grouping Sets");
    ]

let window_tree = feature "Window" [ optional (leaf "Window Partition") ]

let table_expression_tree =
  feature "Table Expression"
    [
      mandatory (feature "From" [ mandatory table_reference_tree ]);
      optional (leaf "Where");
      optional group_by_tree;
      optional (leaf "Having");
      optional window_tree;
    ]

let query_specification_tree =
  feature "Query Specification"
    [
      optional set_quantifier_tree;
      mandatory select_list_tree;
      mandatory table_expression_tree;
    ]

let order_by_tree =
  feature "Order By"
    [
      optional
        (feature "Ordering Direction" [ Or_group [ leaf "Ascending"; leaf "Descending" ] ]);
      optional (leaf "Nulls Ordering");
    ]

let set_operations_tree =
  feature "Set Operations"
    [
      Or_group
        [
          feature "Union"
            [ optional (leaf "Union Quantifier"); optional (leaf "Union Corresponding") ];
          feature "Except"
            [ optional (leaf "Except Quantifier"); optional (leaf "Except Corresponding") ];
          feature "Intersect"
            [
              optional (leaf "Intersect Quantifier");
              optional (leaf "Intersect Corresponding");
            ];
        ];
    ]

let query_expression_tree =
  feature "Query Expression"
    [
      mandatory query_specification_tree;
      optional set_operations_tree;
      optional (leaf "Parenthesized Query");
      optional (leaf "Table Value Constructor");
      optional (leaf "Subquery");
      optional (feature "With Clause" [ optional (leaf "Recursive With") ]);
      optional order_by_tree;
      optional (feature "Fetch First" []);
      optional (feature "Limit" []);
      optional (feature "Updatability Clause" [ optional (leaf "Update Of Columns") ]);
    ]

let tree = feature "Queries" [ mandatory query_expression_tree ]

(* ------------------------------------------------------------------ *)
(* Fragments                                                           *)
(* ------------------------------------------------------------------ *)

let fragments =
  [
    frag "Queries" [ r1 "sql_statement" [ nt "query_statement" ] ];
    frag "Query Expression"
      [
        r1 "query_statement" [ nt "query_expression" ];
        r1 "query_expression" [ nt "query_term" ];
        r1 "query_term" [ nt "query_primary" ];
        r1 "query_primary" [ nt "query_specification" ];
      ];
    (* --- Figure 1: Query Specification ------------------------------ *)
    frag "Query Specification"
      ~tokens:[ kw "SELECT" ]
      [
        r1 "query_specification"
          [ t "SELECT"; nt "select_list"; nt "table_expression" ];
      ];
    frag "Set Quantifier"
      [
        r1 "query_specification"
          [
            t "SELECT";
            opt [ nt "set_quantifier" ];
            nt "select_list";
            nt "table_expression";
          ];
      ];
    frag "All" ~tokens:[ kw "ALL" ] [ r1 "set_quantifier" [ t "ALL" ] ];
    frag "Distinct" ~tokens:[ kw "DISTINCT" ] [ r1 "set_quantifier" [ t "DISTINCT" ] ];
    frag "Select List" [ r1 "select_list" [ nt "select_sublist" ] ];
    frag "Asterisk"
      ~tokens:[ punct "ASTERISK" "*" ]
      [ r1 "select_list" [ t "ASTERISK" ] ];
    frag "Qualified Asterisk"
      ~tokens:[ punct "ASTERISK" "*"; punct "PERIOD" "." ]
      [ r1 "select_sublist" [ nt "identifier"; t "PERIOD"; t "ASTERISK" ] ];
    frag "Select Sublist" [ r1 "select_sublist" [ nt "derived_column" ] ];
    frag "Multiple Select Sublists"
      ~tokens:[ comma ]
      [ r1 "select_list" (comma_list (nt "select_sublist")) ];
    frag "Derived Column" [ r1 "derived_column" [ nt "value_expression" ] ];
    frag "As Clause"
      ~tokens:[ kw "AS" ]
      [
        r1 "derived_column" [ nt "value_expression"; opt [ nt "as_clause" ] ];
        r1 "as_clause" [ opt [ t "AS" ]; nt "column_name" ];
      ];
    (* --- Figure 2: Table Expression --------------------------------- *)
    frag "Table Expression" [ r1 "table_expression" [ nt "from_clause" ] ];
    frag "From"
      ~tokens:[ kw "FROM" ]
      [ r1 "from_clause" [ t "FROM"; nt "table_reference" ] ];
    frag "Where"
      ~tokens:[ kw "WHERE" ]
      [
        r1 "table_expression"
          [ nt "from_clause"; opt [ nt "where_clause" ] ];
        r1 "where_clause" [ t "WHERE"; nt "search_condition" ];
      ];
    frag "Group By"
      ~tokens:[ kw "GROUP"; kw "BY"; comma ]
      [
        r1 "table_expression"
          [ nt "from_clause"; opt [ nt "group_by_clause" ] ];
        r1 "group_by_clause"
          (t "GROUP" :: t "BY" :: comma_list (nt "grouping_element"));
        r1 "grouping_element" [ nt "value_expression" ];
      ];
    frag "Rollup"
      ~tokens:[ kw "ROLLUP"; lparen; rparen; comma ]
      [
        r1 "grouping_element"
          [ t "ROLLUP"; t "LPAREN"; nt "grouping_column_list"; t "RPAREN" ];
        r1 "grouping_column_list" (comma_list (nt "value_expression"));
      ];
    frag "Cube"
      ~tokens:[ kw "CUBE"; lparen; rparen; comma ]
      [
        r1 "grouping_element"
          [ t "CUBE"; t "LPAREN"; nt "grouping_column_list"; t "RPAREN" ];
        r1 "grouping_column_list" (comma_list (nt "value_expression"));
      ];
    frag "Grouping Sets"
      ~tokens:[ kw "GROUPING"; kw "SETS"; lparen; rparen; comma ]
      [
        r1 "grouping_element"
          (t "GROUPING" :: t "SETS" :: t "LPAREN"
           :: (comma_list (nt "grouping_set") @ [ t "RPAREN" ]));
        r1 "grouping_set"
          [ t "LPAREN"; nt "grouping_column_list"; t "RPAREN" ];
        r1 "grouping_column_list" (comma_list (nt "value_expression"));
      ];
    frag "Having"
      ~tokens:[ kw "HAVING" ]
      [
        r1 "table_expression"
          [ nt "from_clause"; opt [ nt "having_clause" ] ];
        r1 "having_clause" [ t "HAVING"; nt "search_condition" ];
      ];
    frag "Window"
      ~tokens:
        [ kw "WINDOW"; kw "AS"; kw "PARTITION"; kw "ORDER"; kw "BY"; lparen; rparen; comma ]
      [
        r1 "table_expression"
          [ nt "from_clause"; opt [ nt "window_clause" ] ];
        r1 "window_clause"
          (t "WINDOW" :: comma_list (nt "window_definition"));
        r1 "window_definition"
          [
            nt "identifier"; t "AS"; t "LPAREN"; nt "window_specification";
            t "RPAREN";
          ];
        r1 "window_specification"
          [
            opt [ t "PARTITION"; t "BY"; nt "window_column_list" ];
            opt [ t "ORDER"; t "BY"; nt "window_column_list" ];
          ];
        r1 "window_column_list" (comma_list (nt "value_expression"));
      ];
    frag "Window Partition"
      ~tokens:[ kw "PARTITION"; kw "BY" ]
      [
        r1 "window_specification"
          [
            opt [ t "PARTITION"; t "BY"; nt "window_column_list" ];
            opt [ t "ORDER"; t "BY"; nt "window_column_list" ];
          ];
      ];
    (* Window Partition is kept as a diagram feature; its syntax now lives in
       the shared window_specification rule above. *)
    (* --- Table references and joins ---------------------------------- *)
    frag "Table Reference"
      [
        r1 "table_reference" [ nt "table_primary" ];
        r1 "table_primary" [ nt "table_name" ];
      ];
    frag "Correlation Name"
      ~tokens:[ kw "AS" ]
      [
        r1 "table_primary"
          [ nt "table_name"; opt [ nt "correlation_specification" ] ];
        r1 "correlation_specification" [ opt [ t "AS" ]; nt "identifier" ];
      ];
    frag "Derived Column List"
      ~tokens:[ lparen; rparen; comma ]
      [
        r1 "correlation_specification"
          [
            opt [ t "AS" ];
            nt "identifier";
            opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Derived Table"
      [
        rule "table_primary"
          [ [ nt "subquery"; nt "correlation_specification" ] ];
      ];
    frag "Multiple Table References"
      ~tokens:[ comma ]
      [ r1 "from_clause" (t "FROM" :: comma_list (nt "table_reference")) ];
    frag "Joined Table"
      [ r1 "table_reference" [ nt "table_primary"; star [ nt "join_tail" ] ] ];
    frag "Inner Join"
      ~tokens:[ kw "INNER"; kw "JOIN" ]
      [
        r1 "join_tail"
          [
            opt [ t "INNER" ]; t "JOIN"; nt "table_primary";
            nt "join_specification";
          ];
      ];
    frag "Outer Join"
      ~tokens:[ kw "OUTER"; kw "JOIN" ]
      [
        r1 "join_tail"
          [
            nt "outer_join_type"; opt [ t "OUTER" ]; t "JOIN";
            nt "table_primary"; nt "join_specification";
          ];
      ];
    frag "Left Join" ~tokens:[ kw "LEFT" ] [ r1 "outer_join_type" [ t "LEFT" ] ];
    frag "Right Join" ~tokens:[ kw "RIGHT" ] [ r1 "outer_join_type" [ t "RIGHT" ] ];
    frag "Full Join" ~tokens:[ kw "FULL" ] [ r1 "outer_join_type" [ t "FULL" ] ];
    frag "Cross Join"
      ~tokens:[ kw "CROSS"; kw "JOIN" ]
      [ r1 "join_tail" [ t "CROSS"; t "JOIN"; nt "table_primary" ] ];
    frag "Natural Join"
      ~tokens:[ kw "NATURAL"; kw "JOIN" ]
      [ r1 "join_tail" [ t "NATURAL"; t "JOIN"; nt "table_primary" ] ];
    frag "Join Specification" [];
    frag "On Clause"
      ~tokens:[ kw "ON" ]
      [ r1 "join_specification" [ t "ON"; nt "search_condition" ] ];
    frag "Using Clause"
      ~tokens:[ kw "USING"; lparen; rparen; comma ]
      [
        r1 "join_specification"
          [ t "USING"; t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    (* --- Set operations ----------------------------------------------- *)
    frag "Set Operations" [];
    frag "Union"
      ~tokens:[ kw "UNION" ]
      [
        r1 "query_expression" [ nt "query_term"; star [ nt "set_op_tail" ] ];
        r1 "set_op_tail" [ t "UNION"; nt "query_term" ];
      ];
    frag "Union Quantifier"
      [ r1 "set_op_tail" [ t "UNION"; opt [ nt "set_quantifier" ]; nt "query_term" ] ];
    frag "Union Corresponding"
      ~tokens:[ kw "CORRESPONDING" ]
      [ r1 "set_op_tail" [ t "UNION"; opt [ t "CORRESPONDING" ]; nt "query_term" ] ];
    frag "Except"
      ~tokens:[ kw "EXCEPT" ]
      [
        r1 "query_expression" [ nt "query_term"; star [ nt "set_op_tail" ] ];
        r1 "set_op_tail" [ t "EXCEPT"; nt "query_term" ];
      ];
    frag "Except Quantifier"
      [ r1 "set_op_tail" [ t "EXCEPT"; opt [ nt "set_quantifier" ]; nt "query_term" ] ];
    frag "Except Corresponding"
      ~tokens:[ kw "CORRESPONDING" ]
      [ r1 "set_op_tail" [ t "EXCEPT"; opt [ t "CORRESPONDING" ]; nt "query_term" ] ];
    frag "Intersect"
      ~tokens:[ kw "INTERSECT" ]
      [
        r1 "query_term" [ nt "query_primary"; star [ nt "intersect_tail" ] ];
        r1 "intersect_tail" [ t "INTERSECT"; nt "query_primary" ];
      ];
    frag "Intersect Quantifier"
      [
        r1 "intersect_tail"
          [ t "INTERSECT"; opt [ nt "set_quantifier" ]; nt "query_primary" ];
      ];
    frag "Intersect Corresponding"
      ~tokens:[ kw "CORRESPONDING" ]
      [
        r1 "intersect_tail"
          [ t "INTERSECT"; opt [ t "CORRESPONDING" ]; nt "query_primary" ];
      ];
    frag "Parenthesized Query"
      ~tokens:[ lparen; rparen ]
      [ r1 "query_primary" [ t "LPAREN"; nt "query_expression"; t "RPAREN" ] ];
    frag "Table Value Constructor"
      ~tokens:[ kw "VALUES"; lparen; rparen; comma ]
      [
        r1 "query_primary" [ nt "table_value_constructor" ];
        r1 "table_value_constructor" (t "VALUES" :: comma_list (nt "row_value"));
        r1 "row_value"
          (t "LPAREN" :: (comma_list (nt "value_expression") @ [ t "RPAREN" ]));
      ];
    frag "Subquery"
      ~tokens:[ lparen; rparen ]
      [ r1 "subquery" [ t "LPAREN"; nt "query_expression"; t "RPAREN" ] ];
    (* --- Common table expressions -------------------------------------- *)
    frag "With Clause"
      ~tokens:[ kw "WITH"; kw "AS"; lparen; rparen; comma ]
      [
        r1 "query_statement"
          [ opt [ nt "with_clause" ]; nt "query_expression" ];
        r1 "with_clause" (t "WITH" :: comma_list (nt "with_list_element"));
        r1 "with_list_element"
          [
            nt "identifier";
            opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
            t "AS"; nt "subquery";
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Recursive With"
      ~tokens:[ kw "RECURSIVE" ]
      [
        r1 "with_clause"
          (t "WITH" :: opt [ t "RECURSIVE" ] :: comma_list (nt "with_list_element"));
      ];
    (* --- Ordering and fetch -------------------------------------------- *)
    frag "Order By"
      ~tokens:[ kw "ORDER"; kw "BY"; comma ]
      [
        r1 "query_statement"
          [ nt "query_expression"; opt [ nt "order_by_clause" ] ];
        r1 "order_by_clause"
          (t "ORDER" :: t "BY" :: comma_list (nt "sort_specification"));
        r1 "sort_specification" [ nt "value_expression" ];
      ];
    frag "Ordering Direction"
      [
        r1 "sort_specification"
          [ nt "value_expression"; opt [ nt "ordering_specification" ] ];
      ];
    frag "Ascending" ~tokens:[ kw "ASC" ] [ r1 "ordering_specification" [ t "ASC" ] ];
    frag "Descending" ~tokens:[ kw "DESC" ] [ r1 "ordering_specification" [ t "DESC" ] ];
    frag "Nulls Ordering"
      ~tokens:[ kw "NULLS"; kw "FIRST"; kw "LAST" ]
      [
        r1 "sort_specification"
          [ nt "value_expression"; opt [ nt "nulls_ordering" ] ];
        r1 "nulls_ordering" [ t "NULLS"; grp [ [ t "FIRST" ]; [ t "LAST" ] ] ];
      ];
    frag "Fetch First"
      ~tokens:[ kw "FETCH"; kw "FIRST"; kw "ROWS"; kw "ONLY"; integer_tok ]
      [
        r1 "query_statement"
          [ nt "query_expression"; opt [ nt "fetch_clause" ] ];
        r1 "fetch_clause"
          [ t "FETCH"; t "FIRST"; t "UNSIGNED_INTEGER"; t "ROWS"; t "ONLY" ];
      ];
    frag "Limit"
      ~tokens:[ kw "LIMIT"; integer_tok ]
      [
        r1 "query_statement"
          [ nt "query_expression"; opt [ nt "fetch_clause" ] ];
        r1 "fetch_clause" [ t "LIMIT"; t "UNSIGNED_INTEGER" ];
      ];
    frag "Updatability Clause"
      ~tokens:[ kw "FOR"; kw "READ"; kw "ONLY"; kw "UPDATE" ]
      [
        r1 "query_statement"
          [ nt "query_expression"; opt [ nt "updatability_clause" ] ];
        rule "updatability_clause"
          [ [ t "FOR"; t "READ"; t "ONLY" ]; [ t "FOR"; t "UPDATE" ] ];
      ];
    frag "Update Of Columns"
      ~tokens:[ kw "OF"; comma ]
      [
        rule "updatability_clause"
          [ [ t "FOR"; t "UPDATE"; opt [ t "OF"; nt "column_name_list" ] ] ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
  ]

let region =
  {
    subtree = mandatory tree;
    fragments;
    constraints =
      [
        Feature.Model.Requires ("Where", "Search Condition");
        Feature.Model.Requires ("Having", "Search Condition");
        Feature.Model.Requires ("On Clause", "Search Condition");
        Feature.Model.Requires ("Derived Table", "Subquery");
        Feature.Model.Requires ("Derived Table", "Correlation Name");
        Feature.Model.Requires ("Inner Join", "Join Specification");
        Feature.Model.Requires ("Outer Join", "Join Specification");
        Feature.Model.Requires ("Union Quantifier", "Set Quantifier");
        Feature.Model.Requires ("Except Quantifier", "Set Quantifier");
        Feature.Model.Requires ("Intersect Quantifier", "Set Quantifier");
        Feature.Model.Requires ("Qualified Asterisk", "Asterisk");
        Feature.Model.Requires ("With Clause", "Subquery");
      ];
    diagram_names =
      [
        "Queries";
        "Query Expression";
        "Query Specification";
        "Set Quantifier";
        "Select List";
        "Table Expression";
        "Table Reference";
        "Joined Table";
        "Group By";
        "Window";
        "Set Operations";
        "Order By";
      ];
  }
