(** Data Types region: the type grammar used by CAST and DDL. *)

open Feature.Tree
open Grammar.Builder
open Def

let tree =
  feature "Data Types"
    [
      Or_group
        [
          feature "Exact Numeric Types"
            [
              Or_group
                [
                  leaf "Integer Type";
                  leaf "Smallint Type";
                  leaf "Bigint Type";
                  leaf "Decimal Type";
                ];
            ];
          feature "Approximate Numeric Types"
            [ Or_group [ leaf "Float Type"; leaf "Real Type"; leaf "Double Type" ] ];
          feature "Character Types"
            [ Or_group [ leaf "Char Type"; leaf "Varchar Type" ] ];
          leaf "Boolean Type";
          feature "Datetime Types"
            [ Or_group [ leaf "Date Type"; leaf "Time Type"; leaf "Timestamp Type" ] ];
          leaf "Interval Type";
        ];
    ]

let fragments =
  [
    frag "Data Types" [];
    frag "Exact Numeric Types" [];
    frag "Integer Type"
      ~tokens:[ kw "INTEGER"; kw "INT" ]
      [ rule "data_type" [ [ t "INTEGER" ]; [ t "INT" ] ] ];
    frag "Smallint Type"
      ~tokens:[ kw "SMALLINT" ]
      [ rule "data_type" [ [ t "SMALLINT" ] ] ];
    frag "Bigint Type"
      ~tokens:[ kw "BIGINT" ]
      [ rule "data_type" [ [ t "BIGINT" ] ] ];
    frag "Decimal Type"
      ~tokens:[ kw "DECIMAL"; kw "DEC"; kw "NUMERIC"; lparen; rparen; comma; integer_tok ]
      [
        rule "data_type"
          [
            [
              grp [ [ t "DECIMAL" ]; [ t "DEC" ]; [ t "NUMERIC" ] ];
              opt
                [
                  t "LPAREN"; t "UNSIGNED_INTEGER";
                  opt [ t "COMMA"; t "UNSIGNED_INTEGER" ]; t "RPAREN";
                ];
            ];
          ];
      ];
    frag "Approximate Numeric Types" [];
    frag "Float Type"
      ~tokens:[ kw "FLOAT"; lparen; rparen; integer_tok ]
      [
        rule "data_type"
          [ [ t "FLOAT"; opt [ t "LPAREN"; t "UNSIGNED_INTEGER"; t "RPAREN" ] ] ];
      ];
    frag "Real Type" ~tokens:[ kw "REAL" ] [ rule "data_type" [ [ t "REAL" ] ] ];
    frag "Double Type"
      ~tokens:[ kw "DOUBLE"; kw "PRECISION" ]
      [ rule "data_type" [ [ t "DOUBLE"; t "PRECISION" ] ] ];
    frag "Character Types" [];
    frag "Char Type"
      ~tokens:[ kw "CHARACTER"; kw "CHAR"; lparen; rparen; integer_tok ]
      [
        rule "data_type"
          [
            [
              grp [ [ t "CHARACTER" ]; [ t "CHAR" ] ];
              opt [ t "LPAREN"; t "UNSIGNED_INTEGER"; t "RPAREN" ];
            ];
          ];
      ];
    frag "Varchar Type"
      ~tokens:
        [ kw "VARCHAR"; kw "CHARACTER"; kw "CHAR"; kw "VARYING"; lparen; rparen; integer_tok ]
      [
        rule "data_type"
          [
            [
              grp
                [
                  [ t "VARCHAR" ];
                  [ t "CHARACTER"; t "VARYING" ];
                  [ t "CHAR"; t "VARYING" ];
                ];
              opt [ t "LPAREN"; t "UNSIGNED_INTEGER"; t "RPAREN" ];
            ];
          ];
      ];
    frag "Boolean Type"
      ~tokens:[ kw "BOOLEAN" ]
      [ rule "data_type" [ [ t "BOOLEAN" ] ] ];
    frag "Datetime Types" [];
    frag "Date Type" ~tokens:[ kw "DATE" ] [ rule "data_type" [ [ t "DATE" ] ] ];
    frag "Time Type" ~tokens:[ kw "TIME" ] [ rule "data_type" [ [ t "TIME" ] ] ];
    frag "Timestamp Type"
      ~tokens:[ kw "TIMESTAMP" ]
      [ rule "data_type" [ [ t "TIMESTAMP" ] ] ];
    frag "Interval Type"
      ~tokens:
        [
          kw "INTERVAL"; kw "TO"; kw "YEAR"; kw "MONTH"; kw "DAY"; kw "HOUR";
          kw "MINUTE"; kw "SECOND";
        ]
      [
        rule "data_type" [ [ t "INTERVAL"; nt "interval_qualifier" ] ];
        r1 "interval_qualifier"
          [ nt "datetime_field"; opt [ t "TO"; nt "datetime_field" ] ];
        rule "datetime_field"
          [
            [ t "YEAR" ]; [ t "MONTH" ]; [ t "DAY" ]; [ t "HOUR" ];
            [ t "MINUTE" ]; [ t "SECOND" ];
          ];
      ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints = [];
    diagram_names =
      [
        "Data Types";
        "Exact Numeric Types";
        "Approximate Numeric Types";
        "Character Types";
        "Datetime Types";
      ];
  }
