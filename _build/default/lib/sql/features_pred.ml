(** Predicates region: search conditions (boolean structure) and the
    predicate kinds of SQL Foundation. *)

open Feature.Tree
open Grammar.Builder
open Def

let search_condition_tree =
  feature "Search Condition"
    [
      optional (leaf "Or");
      optional (leaf "And");
      optional (leaf "Not");
      optional (leaf "Is Truth Test");
      optional (leaf "Parenthesized Boolean");
    ]

let comparison_tree =
  feature "Comparison Predicate"
    [
      Or_group
        [
          leaf "Equals";
          leaf "Not Equals";
          leaf "Less Than";
          leaf "Greater Than";
          leaf "Less Or Equal";
          leaf "Greater Or Equal";
        ];
      optional (leaf "Quantified Comparison");
    ]

let predicate_tree =
  feature "Predicate"
    [
      Or_group
        [
          comparison_tree;
          feature "Between Predicate" [ optional (leaf "Between Symmetry") ];
          feature "In Predicate" [ optional (leaf "In Subquery") ];
          feature "Like Predicate" [ optional (leaf "Escape Clause") ];
          leaf "Null Predicate";
          leaf "Exists Predicate";
          leaf "Unique Predicate";
          leaf "Distinct Predicate";
          leaf "Overlaps Predicate";
          leaf "Similar Predicate";
          leaf "Boolean Value Expression";
        ];
    ]

let tree =
  feature "Predicates"
    [ mandatory search_condition_tree; mandatory predicate_tree ]

let fragments =
  [
    frag "Predicates" [];
    frag "Search Condition"
      [
        r1 "search_condition" [ nt "boolean_term" ];
        r1 "boolean_term" [ nt "boolean_factor" ];
        r1 "boolean_factor" [ nt "boolean_test" ];
        r1 "boolean_test" [ nt "boolean_primary" ];
        r1 "boolean_primary" [ nt "predicate" ];
      ];
    frag "Or"
      ~tokens:[ kw "OR" ]
      [ r1 "search_condition" [ nt "boolean_term"; star [ t "OR"; nt "boolean_term" ] ] ];
    frag "And"
      ~tokens:[ kw "AND" ]
      [ r1 "boolean_term" [ nt "boolean_factor"; star [ t "AND"; nt "boolean_factor" ] ] ];
    frag "Not"
      ~tokens:[ kw "NOT" ]
      [ r1 "boolean_factor" [ opt [ t "NOT" ]; nt "boolean_test" ] ];
    frag "Is Truth Test"
      ~tokens:[ kw "IS"; kw "NOT"; kw "TRUE"; kw "FALSE"; kw "UNKNOWN" ]
      [
        r1 "boolean_test"
          [ nt "boolean_primary"; opt [ t "IS"; opt [ t "NOT" ]; nt "truth_value" ] ];
        rule "truth_value" [ [ t "TRUE" ]; [ t "FALSE" ]; [ t "UNKNOWN" ] ];
      ];
    frag "Parenthesized Boolean"
      ~tokens:[ lparen; rparen ]
      [ rule "boolean_primary" [ [ t "LPAREN"; nt "search_condition"; t "RPAREN" ] ] ];
    frag "Predicate" [];
    (* --- Comparison ----------------------------------------------------- *)
    frag "Comparison Predicate"
      [
        rule "predicate" [ [ nt "value_expression"; nt "comparison_predicate_tail" ] ];
        r1 "comparison_predicate_tail" [ nt "comp_op"; nt "value_expression" ];
      ];
    frag "Equals" ~tokens:[ punct "EQUALS" "=" ] [ r1 "comp_op" [ t "EQUALS" ] ];
    frag "Not Equals"
      ~tokens:[ punct "NOT_EQUALS" "<>" ]
      [ r1 "comp_op" [ t "NOT_EQUALS" ] ];
    frag "Less Than" ~tokens:[ punct "LESS" "<" ] [ r1 "comp_op" [ t "LESS" ] ];
    frag "Greater Than"
      ~tokens:[ punct "GREATER" ">" ]
      [ r1 "comp_op" [ t "GREATER" ] ];
    frag "Less Or Equal"
      ~tokens:[ punct "LESS_EQ" "<=" ]
      [ r1 "comp_op" [ t "LESS_EQ" ] ];
    frag "Greater Or Equal"
      ~tokens:[ punct "GREATER_EQ" ">=" ]
      [ r1 "comp_op" [ t "GREATER_EQ" ] ];
    frag "Quantified Comparison"
      ~tokens:[ kw "ALL"; kw "SOME"; kw "ANY" ]
      [
        rule "comparison_predicate_tail"
          [ [ nt "comp_op"; nt "comparison_quantifier"; nt "subquery" ] ];
        rule "comparison_quantifier" [ [ t "ALL" ]; [ t "SOME" ]; [ t "ANY" ] ];
      ];
    (* --- Other predicate kinds ------------------------------------------- *)
    frag "Between Predicate"
      ~tokens:[ kw "NOT"; kw "BETWEEN"; kw "AND" ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "between_tail" ] ];
        r1 "between_tail"
          [
            opt [ t "NOT" ]; t "BETWEEN"; nt "value_expression"; t "AND";
            nt "value_expression";
          ];
      ];
    frag "Between Symmetry"
      ~tokens:[ kw "SYMMETRIC"; kw "ASYMMETRIC" ]
      [
        r1 "between_tail"
          [
            opt [ t "NOT" ]; t "BETWEEN"; opt [ nt "between_symmetry" ];
            nt "value_expression"; t "AND"; nt "value_expression";
          ];
        rule "between_symmetry" [ [ t "SYMMETRIC" ]; [ t "ASYMMETRIC" ] ];
      ];
    frag "In Predicate"
      ~tokens:[ kw "NOT"; kw "IN"; lparen; rparen; comma ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "in_tail" ] ];
        r1 "in_tail" [ opt [ t "NOT" ]; t "IN"; nt "in_predicate_value" ];
        r1 "in_predicate_value"
          (t "LPAREN" :: (comma_list (nt "value_expression") @ [ t "RPAREN" ]));
      ];
    frag "In Subquery" [ rule "in_predicate_value" [ [ nt "subquery" ] ] ];
    frag "Like Predicate"
      ~tokens:[ kw "NOT"; kw "LIKE" ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "like_tail" ] ];
        r1 "like_tail" [ opt [ t "NOT" ]; t "LIKE"; nt "value_expression" ];
      ];
    frag "Escape Clause"
      ~tokens:[ kw "ESCAPE" ]
      [
        r1 "like_tail"
          [
            opt [ t "NOT" ]; t "LIKE"; nt "value_expression";
            opt [ t "ESCAPE"; nt "value_expression" ];
          ];
      ];
    frag "Null Predicate"
      ~tokens:[ kw "IS"; kw "NOT"; kw "NULL" ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "null_tail" ] ];
        r1 "null_tail" [ t "IS"; opt [ t "NOT" ]; t "NULL" ];
      ];
    frag "Exists Predicate"
      ~tokens:[ kw "EXISTS" ]
      [ rule "predicate" [ [ t "EXISTS"; nt "subquery" ] ] ];
    frag "Unique Predicate"
      ~tokens:[ kw "UNIQUE" ]
      [ rule "predicate" [ [ t "UNIQUE"; nt "subquery" ] ] ];
    frag "Distinct Predicate"
      ~tokens:[ kw "IS"; kw "NOT"; kw "DISTINCT"; kw "FROM" ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "distinct_tail" ] ];
        r1 "distinct_tail"
          [ t "IS"; opt [ t "NOT" ]; t "DISTINCT"; t "FROM"; nt "value_expression" ];
      ];
    frag "Overlaps Predicate"
      ~tokens:[ kw "OVERLAPS" ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "overlaps_tail" ] ];
        r1 "overlaps_tail" [ t "OVERLAPS"; nt "value_expression" ];
      ];
    frag "Similar Predicate"
      ~tokens:[ kw "NOT"; kw "SIMILAR"; kw "TO" ]
      [
        rule "predicate" [ [ nt "value_expression"; nt "similar_tail" ] ];
        r1 "similar_tail"
          [ opt [ t "NOT" ]; t "SIMILAR"; t "TO"; nt "value_expression" ];
      ];
    frag "Boolean Value Expression"
      [ rule "boolean_primary" [ [ nt "value_expression" ] ] ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints =
      [
        Feature.Model.Requires ("Quantified Comparison", "Subquery");
        Feature.Model.Requires ("In Subquery", "Subquery");
        Feature.Model.Requires ("Exists Predicate", "Subquery");
        Feature.Model.Requires ("Unique Predicate", "Subquery");
      ];
    diagram_names =
      [ "Predicates"; "Search Condition"; "Predicate"; "Comparison Predicate" ];
  }
