(** The assembled SQL:2003 feature model.

    The concept [SQL:2003] groups the regions defined by the [Features_*]
    modules; {!diagrams} publishes the per-construct feature diagrams
    (the paper reports 40 of them with 500+ features for SQL Foundation). *)

val model : Feature.Model.t
(** The full feature model: diagram plus cross-tree constraints. *)

val registry : Compose.Fragment.registry
(** Fragment registry covering every feature of {!model} (organizational
    features own empty fragments). *)

val start_symbol : string
(** Start symbol of composed grammars (["sql_statement"]). *)

val diagrams : (string * Feature.Tree.t) list
(** The published per-construct diagrams: [(name, subtree)] pairs, each the
    feature diagram of one SQL construct (e.g. ["Query Specification"],
    ["Table Expression"]). *)

val diagram : string -> Feature.Tree.t option
(** Look up a published diagram by name. *)

type stats = {
  features_in_model : int;       (** distinct features of the full model *)
  diagram_count : int;           (** published construct diagrams *)
  features_across_diagrams : int;
      (** features summed over the published diagrams — the counting used by
          the paper's "40 feature diagrams, more than 500 features" claim
          (a construct appearing in several diagrams counts in each) *)
  constraint_count : int;
}

val stats : stats

val fragment_rules : (string * Grammar.Production.t list) list
(** [(feature, rules)] view of {!registry} in the dependency-free shape the
    lint subsystem consumes ({!Lint.Model_lint.fragments}). *)

val compose :
  ?lint:(Compose.Composer.output -> Lint.Diagnostic.t list) ->
  Feature.Config.t -> (Compose.Composer.output, Compose.Composer.error) result
(** Compose a configuration of {!model} into a grammar and token set,
    optionally running a static-analysis hook over the result (see
    {!Compose.Composer.compose}). *)

val compose_linted :
  Feature.Config.t -> (Compose.Composer.output, Compose.Composer.error) result
(** {!compose} with the full lint pass attached: grammar, token-set and
    feature-model analyses over all three artifact layers; findings land in
    [output.diagnostics]. *)

val close : Feature.Config.t -> Feature.Config.t
(** Close a seed selection under parents, mandatory children and
    [requires]. *)

val validate : Feature.Config.t -> Feature.Config.violation list
