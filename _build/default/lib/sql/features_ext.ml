(** Extension Packages region: non-Foundation features used by the embedded
    dialects — TinySQL's acquisitional query clauses (TinyDB, sensor
    networks). Other SQL:2003 packages would be decomposed the same way. *)

open Feature.Tree
open Grammar.Builder
open Def

let tree =
  feature "Extension Packages"
    [
      optional
        (feature "Acquisitional Queries"
           [ Or_group [ leaf "Epoch Duration"; leaf "Sample Period" ] ]);
      optional (leaf "Explain Statement");
    ]

let fragments =
  [
    frag "Extension Packages" [];
    frag "Acquisitional Queries" [];
    frag "Epoch Duration"
      ~tokens:[ kw "EPOCH"; kw "DURATION"; integer_tok ]
      [
        r1 "query_statement"
          [ nt "query_expression"; opt [ nt "epoch_clause" ] ];
        r1 "epoch_clause" [ t "EPOCH"; t "DURATION"; t "UNSIGNED_INTEGER" ];
      ];
    frag "Explain Statement"
      ~tokens:[ kw "EXPLAIN" ]
      [
        rule "sql_statement" [ [ nt "explain_statement" ] ];
        r1 "explain_statement" [ t "EXPLAIN"; nt "query_statement" ];
      ];
    frag "Sample Period"
      (* The terminal is named PERIOD_KW because PERIOD already names the
         "." punctuation token. *)
      ~tokens:
        [ kw "SAMPLE"; ("PERIOD_KW", Lexing_gen.Spec.Keyword "PERIOD"); integer_tok ]
      [
        r1 "query_statement"
          [ nt "query_expression"; opt [ nt "sample_clause" ] ];
        r1 "sample_clause" [ t "SAMPLE"; t "PERIOD_KW"; t "UNSIGNED_INTEGER" ];
      ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints = [];
    diagram_names = [ "Extension Packages"; "Acquisitional Queries" ];
  }
