(** Data Definition region: CREATE TABLE (column and table constraints),
    CREATE VIEW, DROP, ALTER TABLE, and schema statements. *)

open Feature.Tree
open Grammar.Builder
open Def

let column_constraints_tree =
  feature "Column Constraints"
    [
      Or_group
        [
          leaf "Not Null";
          leaf "Unique Column";
          leaf "Primary Key Column";
          feature "Column References" [ optional (leaf "Referential Actions") ];
          leaf "Column Check";
        ];
    ]

let table_constraints_tree =
  feature "Table Constraints"
    [
      optional (leaf "Constraint Naming");
      Or_group
        [
          leaf "Unique Constraint";
          leaf "Primary Key Constraint";
          leaf "Foreign Key Constraint";
          leaf "Check Constraint";
        ];
    ]

let table_definition_tree =
  feature "Table Definition"
    [
      mandatory
        (feature "Column Definition" [ optional (leaf "Default Clause") ]);
      optional column_constraints_tree;
      optional table_constraints_tree;
    ]

let view_definition_tree =
  feature "View Definition"
    [ optional (leaf "View Column List"); optional (leaf "Check Option") ]

let drop_tree =
  feature "Drop Statement"
    [
      Or_group [ leaf "Drop Table"; leaf "Drop View" ];
      optional (leaf "Drop Behavior");
    ]

let alter_tree =
  feature "Alter Table"
    [
      Or_group
        [
          leaf "Add Column";
          leaf "Drop Column";
          leaf "Alter Column Default";
          leaf "Add Table Constraint";
        ];
    ]

let schema_tree =
  feature "Schema Statements"
    [ Or_group [ leaf "Create Schema"; leaf "Drop Schema"; leaf "Set Schema" ] ]

let sequence_tree =
  feature "Sequence Generators"
    [
      Or_group [ leaf "Create Sequence"; leaf "Drop Sequence" ];
      optional (leaf "Sequence Start");
      optional (leaf "Sequence Increment");
      optional (leaf "Next Value");
    ]

let tree =
  feature "Data Definition"
    [
      Or_group
        [
          table_definition_tree;
          view_definition_tree;
          drop_tree;
          alter_tree;
          schema_tree;
          sequence_tree;
        ];
    ]

let fragments =
  [
    frag "Data Definition" [];
    frag "Table Definition"
      ~tokens:[ kw "CREATE"; kw "TABLE"; lparen; rparen; comma ]
      [
        r1 "sql_statement" [ nt "create_table_statement" ];
        r1 "create_table_statement"
          (t "CREATE" :: t "TABLE" :: nt "table_name" :: t "LPAREN"
           :: (comma_list (nt "table_element") @ [ t "RPAREN" ]));
        r1 "table_element" [ nt "column_definition" ];
      ];
    frag "Column Definition"
      [ r1 "column_definition" [ nt "column_name"; nt "data_type" ] ];
    frag "Default Clause"
      ~tokens:[ kw "DEFAULT" ]
      [
        r1 "column_definition"
          [ nt "column_name"; nt "data_type"; opt [ nt "default_clause" ] ];
        r1 "default_clause" [ t "DEFAULT"; nt "value_expression" ];
      ];
    frag "Column Constraints"
      [
        r1 "column_definition"
          [ nt "column_name"; nt "data_type"; star [ nt "column_constraint" ] ];
      ];
    frag "Not Null"
      ~tokens:[ kw "NOT"; kw "NULL" ]
      [ rule "column_constraint" [ [ t "NOT"; t "NULL" ] ] ];
    frag "Unique Column"
      ~tokens:[ kw "UNIQUE" ]
      [ rule "column_constraint" [ [ t "UNIQUE" ] ] ];
    frag "Primary Key Column"
      ~tokens:[ kw "PRIMARY"; kw "KEY" ]
      [ rule "column_constraint" [ [ t "PRIMARY"; t "KEY" ] ] ];
    frag "Column References"
      ~tokens:[ kw "REFERENCES"; lparen; rparen; comma ]
      [
        rule "column_constraint" [ [ nt "references_specification" ] ];
        r1 "references_specification"
          [
            t "REFERENCES"; nt "table_name";
            opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Referential Actions"
      ~tokens:
        [
          kw "ON"; kw "DELETE"; kw "UPDATE"; kw "CASCADE"; kw "SET"; kw "NULL";
          kw "DEFAULT"; kw "RESTRICT"; kw "NO"; kw "ACTION";
        ]
      [
        r1 "references_specification"
          [
            t "REFERENCES"; nt "table_name";
            opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
            opt [ t "ON"; t "DELETE"; nt "referential_action" ];
            opt [ t "ON"; t "UPDATE"; nt "referential_action" ];
          ];
        rule "referential_action"
          [
            [ t "CASCADE" ]; [ t "SET"; t "NULL" ]; [ t "SET"; t "DEFAULT" ];
            [ t "RESTRICT" ]; [ t "NO"; t "ACTION" ];
          ];
      ];
    frag "Column Check"
      ~tokens:[ kw "CHECK"; lparen; rparen ]
      [
        rule "column_constraint"
          [ [ t "CHECK"; t "LPAREN"; nt "search_condition"; t "RPAREN" ] ];
      ];
    frag "Table Constraints"
      [
        rule "table_element" [ [ nt "table_constraint_definition" ] ];
        r1 "table_constraint_definition" [ nt "table_constraint" ];
      ];
    frag "Constraint Naming"
      ~tokens:[ kw "CONSTRAINT" ]
      [
        r1 "table_constraint_definition"
          [ opt [ t "CONSTRAINT"; nt "identifier" ]; nt "table_constraint" ];
      ];
    frag "Unique Constraint"
      ~tokens:[ kw "UNIQUE"; lparen; rparen; comma ]
      [
        rule "table_constraint"
          [ [ t "UNIQUE"; t "LPAREN"; nt "column_name_list"; t "RPAREN" ] ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Primary Key Constraint"
      ~tokens:[ kw "PRIMARY"; kw "KEY"; lparen; rparen; comma ]
      [
        rule "table_constraint"
          [
            [
              t "PRIMARY"; t "KEY"; t "LPAREN"; nt "column_name_list"; t "RPAREN";
            ];
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Foreign Key Constraint"
      ~tokens:[ kw "FOREIGN"; kw "KEY"; kw "REFERENCES"; lparen; rparen; comma ]
      [
        rule "table_constraint"
          [
            [
              t "FOREIGN"; t "KEY"; t "LPAREN"; nt "column_name_list";
              t "RPAREN"; nt "references_specification";
            ];
          ];
        r1 "references_specification"
          [
            t "REFERENCES"; nt "table_name";
            opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Check Constraint"
      ~tokens:[ kw "CHECK"; lparen; rparen ]
      [
        rule "table_constraint"
          [ [ t "CHECK"; t "LPAREN"; nt "search_condition"; t "RPAREN" ] ];
      ];
    frag "View Definition"
      ~tokens:[ kw "CREATE"; kw "VIEW"; kw "AS" ]
      [
        r1 "sql_statement" [ nt "create_view_statement" ];
        r1 "create_view_statement"
          [
            t "CREATE"; t "VIEW"; nt "table_name"; t "AS"; nt "query_expression";
          ];
      ];
    frag "View Column List"
      ~tokens:[ lparen; rparen; comma ]
      [
        r1 "create_view_statement"
          [
            t "CREATE"; t "VIEW"; nt "table_name";
            opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ]; t "AS";
            nt "query_expression";
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Check Option"
      ~tokens:[ kw "WITH"; kw "CHECK"; kw "OPTION" ]
      [
        r1 "create_view_statement"
          [
            t "CREATE"; t "VIEW"; nt "table_name"; t "AS"; nt "query_expression";
            opt [ t "WITH"; t "CHECK"; t "OPTION" ];
          ];
      ];
    frag "Drop Statement"
      ~tokens:[ kw "DROP" ]
      [
        r1 "sql_statement" [ nt "drop_statement" ];
        r1 "drop_statement" [ t "DROP"; nt "drop_object" ];
      ];
    frag "Drop Table"
      ~tokens:[ kw "TABLE" ]
      [ rule "drop_object" [ [ t "TABLE"; nt "table_name" ] ] ];
    frag "Drop View"
      ~tokens:[ kw "VIEW" ]
      [ rule "drop_object" [ [ t "VIEW"; nt "table_name" ] ] ];
    frag "Drop Behavior"
      ~tokens:[ kw "CASCADE"; kw "RESTRICT" ]
      [
        r1 "drop_statement"
          [ t "DROP"; nt "drop_object"; opt [ nt "drop_behavior" ] ];
        rule "drop_behavior" [ [ t "CASCADE" ]; [ t "RESTRICT" ] ];
      ];
    frag "Alter Table"
      ~tokens:[ kw "ALTER"; kw "TABLE" ]
      [
        r1 "sql_statement" [ nt "alter_table_statement" ];
        r1 "alter_table_statement"
          [ t "ALTER"; t "TABLE"; nt "table_name"; nt "alter_action" ];
      ];
    frag "Add Column"
      ~tokens:[ kw "ADD"; kw "COLUMN" ]
      [
        rule "alter_action" [ [ t "ADD"; opt [ t "COLUMN" ]; nt "column_definition" ] ];
      ];
    frag "Drop Column"
      ~tokens:[ kw "DROP"; kw "COLUMN"; kw "CASCADE"; kw "RESTRICT" ]
      [
        rule "alter_action"
          [
            [
              t "DROP"; opt [ t "COLUMN" ]; nt "column_name";
              opt [ nt "drop_behavior" ];
            ];
          ];
        rule "drop_behavior" [ [ t "CASCADE" ]; [ t "RESTRICT" ] ];
      ];
    frag "Alter Column Default"
      ~tokens:[ kw "ALTER"; kw "COLUMN"; kw "SET"; kw "DROP"; kw "DEFAULT" ]
      [
        rule "alter_action"
          [
            [
              t "ALTER"; opt [ t "COLUMN" ]; nt "column_name";
              nt "alter_column_action";
            ];
          ];
        rule "alter_column_action"
          [ [ t "SET"; nt "default_clause" ]; [ t "DROP"; t "DEFAULT" ] ];
      ];
    frag "Add Table Constraint"
      ~tokens:[ kw "ADD" ]
      [ rule "alter_action" [ [ t "ADD"; nt "table_constraint_definition" ] ] ];
    frag "Schema Statements" [];
    frag "Sequence Generators" [];
    frag "Create Sequence"
      ~tokens:[ kw "CREATE"; kw "SEQUENCE" ]
      [
        r1 "sql_statement" [ nt "sequence_statement" ];
        rule "sequence_statement"
          [ [ t "CREATE"; t "SEQUENCE"; nt "identifier" ] ];
      ];
    frag "Sequence Start"
      ~tokens:[ kw "START"; kw "WITH"; integer_tok ]
      [
        rule "sequence_statement"
          [
            [
              t "CREATE"; t "SEQUENCE"; nt "identifier";
              opt [ t "START"; t "WITH"; t "UNSIGNED_INTEGER" ];
            ];
          ];
      ];
    frag "Sequence Increment"
      ~tokens:[ kw "INCREMENT"; kw "BY"; integer_tok ]
      [
        rule "sequence_statement"
          [
            [
              t "CREATE"; t "SEQUENCE"; nt "identifier";
              opt [ t "INCREMENT"; t "BY"; t "UNSIGNED_INTEGER" ];
            ];
          ];
      ];
    frag "Drop Sequence"
      ~tokens:[ kw "DROP"; kw "SEQUENCE" ]
      [
        r1 "sql_statement" [ nt "sequence_statement" ];
        rule "sequence_statement" [ [ t "DROP"; t "SEQUENCE"; nt "identifier" ] ];
      ];
    frag "Next Value"
      ~tokens:[ kw "NEXT"; kw "VALUE"; kw "FOR" ]
      [
        r1 "value_expression_primary" [ nt "next_value_expression" ];
        r1 "next_value_expression" [ t "NEXT"; t "VALUE"; t "FOR"; nt "identifier" ];
      ];
    frag "Create Schema"
      ~tokens:[ kw "CREATE"; kw "SCHEMA" ]
      [
        r1 "sql_statement" [ nt "schema_statement" ];
        rule "schema_statement" [ [ t "CREATE"; t "SCHEMA"; nt "identifier" ] ];
      ];
    frag "Drop Schema"
      ~tokens:[ kw "DROP"; kw "SCHEMA"; kw "CASCADE"; kw "RESTRICT" ]
      [
        r1 "sql_statement" [ nt "schema_statement" ];
        rule "schema_statement"
          [ [ t "DROP"; t "SCHEMA"; nt "identifier"; opt [ nt "drop_behavior" ] ] ];
        rule "drop_behavior" [ [ t "CASCADE" ]; [ t "RESTRICT" ] ];
      ];
    frag "Set Schema"
      ~tokens:[ kw "SET"; kw "SCHEMA" ]
      [
        r1 "sql_statement" [ nt "schema_statement" ];
        rule "schema_statement" [ [ t "SET"; t "SCHEMA"; nt "identifier" ] ];
      ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints =
      [
        Feature.Model.Requires ("Table Definition", "Data Types");
        Feature.Model.Requires ("Column Check", "Search Condition");
        Feature.Model.Requires ("Check Constraint", "Search Condition");
        Feature.Model.Requires ("Default Clause", "Literals");
        Feature.Model.Requires ("Alter Table", "Table Definition");
        Feature.Model.Requires ("Alter Column Default", "Default Clause");
        Feature.Model.Requires ("Add Table Constraint", "Table Constraints");
        Feature.Model.Requires ("Sequence Start", "Create Sequence");
        Feature.Model.Requires ("Sequence Increment", "Create Sequence");
        Feature.Model.Requires ("Next Value", "Create Sequence");
      ];
    diagram_names =
      [
        "Data Definition";
        "Table Definition";
        "Column Constraints";
        "Table Constraints";
        "View Definition";
        "Drop Statement";
        "Alter Table";
        "Schema Statements";
        "Sequence Generators";
      ];
  }
