(** Value Expressions region: column references, literals, arithmetic,
    string operations, CASE abbreviations, CAST, aggregate (set) functions,
    scalar functions and subqueries. *)

open Feature.Tree
open Grammar.Builder
open Def

let literals_tree =
  feature "Literals"
    [
      Or_group
        [
          leaf "Integer Literal";
          leaf "Decimal Literal";
          leaf "String Literal";
          leaf "Boolean Literal";
          leaf "Null Literal";
          leaf "Datetime Literal";
          leaf "Interval Literal";
        ];
    ]

let arithmetic_tree =
  feature "Arithmetic"
    [
      Or_group
        [
          leaf "Addition";
          leaf "Subtraction";
          leaf "Multiplication";
          leaf "Division";
        ];
      optional (leaf "Unary Sign");
    ]

let case_tree =
  feature "Case Expression"
    [
      Or_group
        [ leaf "Searched Case"; leaf "Simple Case"; leaf "Nullif"; leaf "Coalesce" ];
    ]

let aggregate_tree =
  feature "Aggregate Functions"
    [
      Or_group
        [
          leaf "Count";
          leaf "Sum";
          leaf "Avg";
          leaf "Min";
          leaf "Max";
          leaf "Every";
          leaf "Any Aggregate";
        ];
      optional (leaf "Count Star");
      optional (leaf "Aggregate Quantifier");
    ]

let string_functions_tree =
  feature "String Functions"
    [
      Or_group
        [
          leaf "Upper";
          leaf "Lower";
          leaf "Char Length";
          leaf "Octet Length";
          leaf "Substring";
          leaf "Overlay";
          leaf "Trim";
          leaf "Position";
        ];
    ]

let numeric_functions_tree =
  feature "Numeric Functions"
    [ Or_group [ leaf "Absolute Value"; leaf "Modulus"; leaf "Extract" ] ]

let datetime_functions_tree =
  feature "Datetime Value Functions"
    [
      Or_group
        [
          leaf "Current Date";
          leaf "Current Time";
          leaf "Current Timestamp";
          leaf "Localtime";
          leaf "Localtimestamp";
        ];
    ]

let identity_functions_tree =
  feature "User Identity Functions"
    [ Or_group [ leaf "Current User"; leaf "Session User"; leaf "System User" ] ]

let value_expression_tree =
  feature "Value Expression"
    [
      mandatory
        (feature "Column Reference"
           [ optional (leaf "Qualified Column Reference") ]);
      optional literals_tree;
      optional arithmetic_tree;
      optional (leaf "String Concatenation");
      optional (leaf "Parenthesized Expression");
      optional (leaf "Scalar Subquery");
      optional case_tree;
      optional (leaf "Cast");
      optional aggregate_tree;
      optional string_functions_tree;
      optional numeric_functions_tree;
      optional datetime_functions_tree;
      optional identity_functions_tree;
      optional
        (feature "Window Functions"
           [ Or_group [ leaf "Rank"; leaf "Dense Rank"; leaf "Row Number" ] ]);
      optional (leaf "Function Call");
      optional (leaf "Dynamic Parameters");
    ]

let tree = feature "Value Expressions" [ mandatory value_expression_tree ]

let fragments =
  [
    frag "Value Expressions" [];
    frag "Value Expression"
      [
        r1 "value_expression" [ nt "numeric_value_expression" ];
        r1 "numeric_value_expression" [ nt "term" ];
        r1 "term" [ nt "factor" ];
        r1 "factor" [ nt "value_expression_primary" ];
      ];
    frag "Column Reference"
      [
        r1 "value_expression_primary" [ nt "column_reference" ];
        r1 "column_reference" [ nt "column_name" ];
      ];
    frag "Qualified Column Reference"
      ~tokens:[ punct "PERIOD" "." ]
      [
        r1 "column_reference"
          [ opt [ nt "identifier"; t "PERIOD" ]; nt "column_name" ];
      ];
    (* --- Literals ------------------------------------------------------ *)
    frag "Literals" [ r1 "value_expression_primary" [ nt "literal" ] ];
    frag "Integer Literal"
      ~tokens:[ integer_tok ]
      [ r1 "literal" [ t "UNSIGNED_INTEGER" ] ];
    frag "Decimal Literal"
      ~tokens:[ decimal_tok ]
      [ r1 "literal" [ t "DECIMAL_LITERAL" ] ];
    frag "String Literal"
      ~tokens:[ string_tok ]
      [ r1 "literal" [ t "STRING_LITERAL" ] ];
    frag "Boolean Literal"
      ~tokens:[ kw "TRUE"; kw "FALSE" ]
      [ rule "literal" [ [ t "TRUE" ]; [ t "FALSE" ] ] ];
    frag "Null Literal" ~tokens:[ kw "NULL" ] [ r1 "literal" [ t "NULL" ] ];
    frag "Datetime Literal"
      ~tokens:[ kw "DATE"; kw "TIME"; kw "TIMESTAMP"; string_tok ]
      [
        r1 "literal" [ nt "datetime_literal" ];
        rule "datetime_literal"
          [
            [ t "DATE"; t "STRING_LITERAL" ];
            [ t "TIME"; t "STRING_LITERAL" ];
            [ t "TIMESTAMP"; t "STRING_LITERAL" ];
          ];
      ];
    frag "Interval Literal"
      ~tokens:
        [
          kw "INTERVAL"; kw "TO"; kw "YEAR"; kw "MONTH"; kw "DAY"; kw "HOUR";
          kw "MINUTE"; kw "SECOND"; string_tok;
        ]
      [
        rule "literal" [ [ nt "interval_literal" ] ];
        r1 "interval_literal"
          [ t "INTERVAL"; t "STRING_LITERAL"; nt "interval_qualifier" ];
        r1 "interval_qualifier"
          [ nt "datetime_field"; opt [ t "TO"; nt "datetime_field" ] ];
        rule "datetime_field"
          [
            [ t "YEAR" ]; [ t "MONTH" ]; [ t "DAY" ]; [ t "HOUR" ];
            [ t "MINUTE" ]; [ t "SECOND" ];
          ];
      ];
    (* --- Arithmetic ----------------------------------------------------- *)
    frag "Arithmetic" [];
    frag "Addition"
      ~tokens:[ punct "PLUS" "+" ]
      [
        r1 "numeric_value_expression" [ nt "term"; star [ nt "additive_tail" ] ];
        r1 "additive_tail" [ t "PLUS"; nt "term" ];
      ];
    frag "Subtraction"
      ~tokens:[ punct "MINUS" "-" ]
      [
        r1 "numeric_value_expression" [ nt "term"; star [ nt "additive_tail" ] ];
        r1 "additive_tail" [ t "MINUS"; nt "term" ];
      ];
    frag "Multiplication"
      ~tokens:[ punct "ASTERISK" "*" ]
      [
        r1 "term" [ nt "factor"; star [ nt "multiplicative_tail" ] ];
        r1 "multiplicative_tail" [ t "ASTERISK"; nt "factor" ];
      ];
    frag "Division"
      ~tokens:[ punct "SOLIDUS" "/" ]
      [
        r1 "term" [ nt "factor"; star [ nt "multiplicative_tail" ] ];
        r1 "multiplicative_tail" [ t "SOLIDUS"; nt "factor" ];
      ];
    frag "Unary Sign"
      ~tokens:[ punct "PLUS" "+"; punct "MINUS" "-" ]
      [
        r1 "factor" [ opt [ nt "sign" ]; nt "value_expression_primary" ];
        rule "sign" [ [ t "PLUS" ]; [ t "MINUS" ] ];
      ];
    frag "String Concatenation"
      ~tokens:[ punct "CONCAT" "||" ]
      [
        r1 "numeric_value_expression" [ nt "term"; star [ nt "additive_tail" ] ];
        r1 "additive_tail" [ t "CONCAT"; nt "term" ];
      ];
    frag "Parenthesized Expression"
      ~tokens:[ lparen; rparen ]
      [
        r1 "value_expression_primary"
          [ t "LPAREN"; nt "value_expression"; t "RPAREN" ];
      ];
    frag "Scalar Subquery" [ r1 "value_expression_primary" [ nt "subquery" ] ];
    (* --- CASE and its abbreviations -------------------------------------- *)
    frag "Case Expression" [ r1 "value_expression_primary" [ nt "case_expression" ] ];
    frag "Searched Case"
      ~tokens:[ kw "CASE"; kw "WHEN"; kw "THEN"; kw "ELSE"; kw "END" ]
      [
        r1 "case_expression"
          [
            t "CASE"; plus [ nt "searched_when_clause" ];
            opt [ nt "else_clause" ]; t "END";
          ];
        r1 "searched_when_clause"
          [ t "WHEN"; nt "search_condition"; t "THEN"; nt "value_expression" ];
        r1 "else_clause" [ t "ELSE"; nt "value_expression" ];
      ];
    frag "Simple Case"
      ~tokens:[ kw "CASE"; kw "WHEN"; kw "THEN"; kw "ELSE"; kw "END" ]
      [
        r1 "case_expression"
          [
            t "CASE"; nt "value_expression"; plus [ nt "simple_when_clause" ];
            opt [ nt "else_clause" ]; t "END";
          ];
        r1 "simple_when_clause"
          [ t "WHEN"; nt "value_expression"; t "THEN"; nt "value_expression" ];
        r1 "else_clause" [ t "ELSE"; nt "value_expression" ];
      ];
    frag "Nullif"
      ~tokens:[ kw "NULLIF"; lparen; rparen; comma ]
      [
        r1 "case_expression"
          [
            t "NULLIF"; t "LPAREN"; nt "value_expression"; t "COMMA";
            nt "value_expression"; t "RPAREN";
          ];
      ];
    frag "Coalesce"
      ~tokens:[ kw "COALESCE"; lparen; rparen; comma ]
      [
        r1 "case_expression"
          (t "COALESCE" :: t "LPAREN"
           :: (comma_list (nt "value_expression") @ [ t "RPAREN" ]));
      ];
    frag "Cast"
      ~tokens:[ kw "CAST"; kw "AS"; lparen; rparen ]
      [
        r1 "value_expression_primary" [ nt "cast_specification" ];
        r1 "cast_specification"
          [
            t "CAST"; t "LPAREN"; nt "value_expression"; t "AS"; nt "data_type";
            t "RPAREN";
          ];
      ];
    (* --- Aggregate (set) functions ---------------------------------------- *)
    frag "Aggregate Functions"
      ~tokens:[ lparen; rparen ]
      [
        r1 "value_expression_primary" [ nt "set_function_specification" ];
        r1 "set_function_specification"
          [
            nt "set_function_type"; t "LPAREN"; nt "value_expression"; t "RPAREN";
          ];
      ];
    frag "Count" ~tokens:[ kw "COUNT" ] [ r1 "set_function_type" [ t "COUNT" ] ];
    frag "Sum" ~tokens:[ kw "SUM" ] [ r1 "set_function_type" [ t "SUM" ] ];
    frag "Avg" ~tokens:[ kw "AVG" ] [ r1 "set_function_type" [ t "AVG" ] ];
    frag "Min" ~tokens:[ kw "MIN" ] [ r1 "set_function_type" [ t "MIN" ] ];
    frag "Max" ~tokens:[ kw "MAX" ] [ r1 "set_function_type" [ t "MAX" ] ];
    frag "Every" ~tokens:[ kw "EVERY" ] [ r1 "set_function_type" [ t "EVERY" ] ];
    frag "Any Aggregate" ~tokens:[ kw "ANY" ] [ r1 "set_function_type" [ t "ANY" ] ];
    frag "Count Star"
      ~tokens:[ kw "COUNT"; punct "ASTERISK" "*"; lparen; rparen ]
      [
        rule "set_function_specification"
          [ [ t "COUNT"; t "LPAREN"; t "ASTERISK"; t "RPAREN" ] ];
      ];
    frag "Aggregate Quantifier"
      [
        r1 "set_function_specification"
          [
            nt "set_function_type"; t "LPAREN"; opt [ nt "set_quantifier" ];
            nt "value_expression"; t "RPAREN";
          ];
      ];
    (* --- Scalar functions --------------------------------------------------- *)
    frag "String Functions" [ r1 "value_expression_primary" [ nt "string_function" ] ];
    frag "Upper"
      ~tokens:[ kw "UPPER"; lparen; rparen ]
      [
        r1 "string_function"
          [ t "UPPER"; t "LPAREN"; nt "value_expression"; t "RPAREN" ];
      ];
    frag "Lower"
      ~tokens:[ kw "LOWER"; lparen; rparen ]
      [
        r1 "string_function"
          [ t "LOWER"; t "LPAREN"; nt "value_expression"; t "RPAREN" ];
      ];
    frag "Char Length"
      ~tokens:[ kw "CHAR_LENGTH"; kw "CHARACTER_LENGTH"; lparen; rparen ]
      [
        r1 "string_function"
          [
            grp [ [ t "CHAR_LENGTH" ]; [ t "CHARACTER_LENGTH" ] ]; t "LPAREN";
            nt "value_expression"; t "RPAREN";
          ];
      ];
    frag "Octet Length"
      ~tokens:[ kw "OCTET_LENGTH"; lparen; rparen ]
      [
        r1 "string_function"
          [ t "OCTET_LENGTH"; t "LPAREN"; nt "value_expression"; t "RPAREN" ];
      ];
    frag "Overlay"
      ~tokens:[ kw "OVERLAY"; kw "PLACING"; kw "FROM"; kw "FOR"; lparen; rparen ]
      [
        r1 "string_function"
          [
            t "OVERLAY"; t "LPAREN"; nt "value_expression"; t "PLACING";
            nt "value_expression"; t "FROM"; nt "value_expression";
            opt [ t "FOR"; nt "value_expression" ]; t "RPAREN";
          ];
      ];
    frag "Substring"
      ~tokens:[ kw "SUBSTRING"; kw "FROM"; kw "FOR"; lparen; rparen ]
      [
        r1 "string_function"
          [
            t "SUBSTRING"; t "LPAREN"; nt "value_expression"; t "FROM";
            nt "value_expression"; opt [ t "FOR"; nt "value_expression" ];
            t "RPAREN";
          ];
      ];
    frag "Trim"
      ~tokens:
        [ kw "TRIM"; kw "LEADING"; kw "TRAILING"; kw "BOTH"; kw "FROM"; lparen; rparen ]
      [
        r1 "string_function" [ t "TRIM"; t "LPAREN"; nt "trim_operands"; t "RPAREN" ];
        rule "trim_operands"
          [
            [
              opt [ nt "trim_specification" ]; opt [ nt "value_expression" ];
              t "FROM"; nt "value_expression";
            ];
            [ nt "value_expression" ];
          ];
        rule "trim_specification"
          [ [ t "LEADING" ]; [ t "TRAILING" ]; [ t "BOTH" ] ];
      ];
    frag "Position"
      ~tokens:[ kw "POSITION"; kw "IN"; lparen; rparen ]
      [
        r1 "string_function"
          [
            t "POSITION"; t "LPAREN"; nt "value_expression"; t "IN";
            nt "value_expression"; t "RPAREN";
          ];
      ];
    frag "Numeric Functions"
      [ r1 "value_expression_primary" [ nt "numeric_function" ] ];
    frag "Absolute Value"
      ~tokens:[ kw "ABS"; lparen; rparen ]
      [
        r1 "numeric_function"
          [ t "ABS"; t "LPAREN"; nt "value_expression"; t "RPAREN" ];
      ];
    frag "Modulus"
      ~tokens:[ kw "MOD"; lparen; rparen; comma ]
      [
        r1 "numeric_function"
          [
            t "MOD"; t "LPAREN"; nt "value_expression"; t "COMMA";
            nt "value_expression"; t "RPAREN";
          ];
      ];
    frag "Extract"
      ~tokens:
        [
          kw "EXTRACT"; kw "FROM"; kw "YEAR"; kw "MONTH"; kw "DAY"; kw "HOUR";
          kw "MINUTE"; kw "SECOND"; lparen; rparen;
        ]
      [
        r1 "numeric_function"
          [
            t "EXTRACT"; t "LPAREN"; nt "extract_field"; t "FROM";
            nt "value_expression"; t "RPAREN";
          ];
        rule "extract_field"
          [
            [ t "YEAR" ]; [ t "MONTH" ]; [ t "DAY" ]; [ t "HOUR" ];
            [ t "MINUTE" ]; [ t "SECOND" ];
          ];
      ];
    frag "Datetime Value Functions"
      [ r1 "value_expression_primary" [ nt "datetime_value_function" ] ];
    frag "Current Date"
      ~tokens:[ kw "CURRENT_DATE" ]
      [ r1 "datetime_value_function" [ t "CURRENT_DATE" ] ];
    frag "Current Time"
      ~tokens:[ kw "CURRENT_TIME" ]
      [ r1 "datetime_value_function" [ t "CURRENT_TIME" ] ];
    frag "Current Timestamp"
      ~tokens:[ kw "CURRENT_TIMESTAMP" ]
      [ r1 "datetime_value_function" [ t "CURRENT_TIMESTAMP" ] ];
    frag "Localtime"
      ~tokens:[ kw "LOCALTIME" ]
      [ r1 "datetime_value_function" [ t "LOCALTIME" ] ];
    frag "Localtimestamp"
      ~tokens:[ kw "LOCALTIMESTAMP" ]
      [ r1 "datetime_value_function" [ t "LOCALTIMESTAMP" ] ];
    frag "User Identity Functions"
      [ r1 "value_expression_primary" [ nt "user_identity_function" ] ];
    frag "Current User"
      ~tokens:[ kw "CURRENT_USER" ]
      [ r1 "user_identity_function" [ t "CURRENT_USER" ] ];
    frag "Session User"
      ~tokens:[ kw "SESSION_USER" ]
      [ r1 "user_identity_function" [ t "SESSION_USER" ] ];
    frag "System User"
      ~tokens:[ kw "SYSTEM_USER" ]
      [ r1 "user_identity_function" [ t "SYSTEM_USER" ] ];
    frag "Window Functions"
      ~tokens:[ kw "OVER"; kw "PARTITION"; kw "ORDER"; kw "BY"; lparen; rparen; comma ]
      [
        r1 "value_expression_primary" [ nt "window_function" ];
        r1 "window_function"
          [
            nt "window_function_type"; t "OVER"; t "LPAREN";
            nt "window_specification"; t "RPAREN";
          ];
        (* The same specification rule the WINDOW clause uses; identical
           redefinition composes to a single copy. *)
        r1 "window_specification"
          [
            opt [ t "PARTITION"; t "BY"; nt "window_column_list" ];
            opt [ t "ORDER"; t "BY"; nt "window_column_list" ];
          ];
        r1 "window_column_list" (comma_list (nt "value_expression"));
      ];
    frag "Rank"
      ~tokens:[ kw "RANK"; lparen; rparen ]
      [ rule "window_function_type" [ [ t "RANK"; t "LPAREN"; t "RPAREN" ] ] ];
    frag "Dense Rank"
      ~tokens:[ kw "DENSE_RANK"; lparen; rparen ]
      [ rule "window_function_type" [ [ t "DENSE_RANK"; t "LPAREN"; t "RPAREN" ] ] ];
    frag "Row Number"
      ~tokens:[ kw "ROW_NUMBER"; lparen; rparen ]
      [ rule "window_function_type" [ [ t "ROW_NUMBER"; t "LPAREN"; t "RPAREN" ] ] ];
    frag "Dynamic Parameters"
      ~tokens:[ punct "QUESTION" "?" ]
      [ rule "value_expression_primary" [ [ t "QUESTION" ] ] ];
    frag "Function Call"
      ~tokens:[ lparen; rparen; comma ]
      [
        r1 "value_expression_primary" [ nt "function_call" ];
        r1 "function_call"
          [
            nt "identifier"; t "LPAREN"; opt [ nt "argument_list" ]; t "RPAREN";
          ];
        r1 "argument_list" (comma_list (nt "value_expression"));
      ];
  ]

let region =
  {
    subtree = mandatory tree;
    fragments;
    constraints =
      [
        Feature.Model.Requires ("Datetime Literal", "String Literal");
        Feature.Model.Requires ("Scalar Subquery", "Subquery");
        Feature.Model.Requires ("Searched Case", "Search Condition");
        Feature.Model.Requires ("Cast", "Data Types");
        Feature.Model.Requires ("Count Star", "Count");
        Feature.Model.Requires ("Aggregate Quantifier", "Set Quantifier");
      ];
    diagram_names =
      [
        "Value Expressions";
        "Window Functions";
        "Value Expression";
        "Literals";
        "Arithmetic";
        "Case Expression";
        "Aggregate Functions";
        "String Functions";
        "Numeric Functions";
        "Datetime Value Functions";
        "User Identity Functions";
      ];
  }
