(** Transaction Management region. *)

open Feature.Tree
open Grammar.Builder
open Def

let session_tree =
  feature "Session Management"
    [ Or_group [ leaf "Set Session Authorization"; leaf "Session Reset" ] ]

let tree =
  feature "Transaction Management"
    [
      Or_group
        [
          leaf "Commit";
          feature "Rollback" [ optional (leaf "Rollback To Savepoint") ];
          leaf "Savepoint";
          feature "Start Transaction" [ optional (leaf "Isolation Levels") ];
          leaf "Set Transaction";
        ];
      optional session_tree;
    ]

let fragments =
  [
    frag "Transaction Management"
      [ r1 "sql_statement" [ nt "transaction_statement" ] ];
    frag "Commit"
      ~tokens:[ kw "COMMIT"; kw "WORK" ]
      [ rule "transaction_statement" [ [ t "COMMIT"; opt [ t "WORK" ] ] ] ];
    frag "Rollback"
      ~tokens:[ kw "ROLLBACK"; kw "WORK" ]
      [ rule "transaction_statement" [ [ t "ROLLBACK"; opt [ t "WORK" ] ] ] ];
    frag "Rollback To Savepoint"
      ~tokens:[ kw "TO"; kw "SAVEPOINT" ]
      [
        rule "transaction_statement"
          [
            [
              t "ROLLBACK"; opt [ t "WORK" ];
              opt [ t "TO"; t "SAVEPOINT"; nt "identifier" ];
            ];
          ];
      ];
    frag "Savepoint"
      ~tokens:[ kw "SAVEPOINT"; kw "RELEASE" ]
      [
        rule "transaction_statement"
          [
            [ t "SAVEPOINT"; nt "identifier" ];
            [ t "RELEASE"; t "SAVEPOINT"; nt "identifier" ];
          ];
      ];
    frag "Start Transaction"
      ~tokens:[ kw "START"; kw "TRANSACTION" ]
      [
        rule "transaction_statement" [ [ t "START"; t "TRANSACTION" ] ];
      ];
    frag "Isolation Levels"
      ~tokens:
        [
          kw "ISOLATION"; kw "LEVEL"; kw "READ"; kw "UNCOMMITTED"; kw "COMMITTED";
          kw "REPEATABLE"; kw "SERIALIZABLE";
        ]
      [
        rule "transaction_statement"
          [ [ t "START"; t "TRANSACTION"; opt [ nt "isolation_spec" ] ] ];
        r1 "isolation_spec" [ t "ISOLATION"; t "LEVEL"; nt "isolation_level" ];
        rule "isolation_level"
          [
            [ t "READ"; t "UNCOMMITTED" ];
            [ t "READ"; t "COMMITTED" ];
            [ t "REPEATABLE"; t "READ" ];
            [ t "SERIALIZABLE" ];
          ];
      ];
    frag "Session Management" [ r1 "sql_statement" [ nt "session_statement" ] ];
    frag "Set Session Authorization"
      ~tokens:[ kw "SET"; kw "SESSION"; kw "AUTHORIZATION" ]
      [
        rule "session_statement"
          [ [ t "SET"; t "SESSION"; t "AUTHORIZATION"; nt "identifier" ] ];
      ];
    frag "Session Reset"
      ~tokens:[ kw "RESET"; kw "SESSION"; kw "AUTHORIZATION" ]
      [
        rule "session_statement"
          [ [ t "RESET"; t "SESSION"; t "AUTHORIZATION" ] ];
      ];
    frag "Set Transaction"
      ~tokens:[ kw "SET"; kw "TRANSACTION" ]
      [
        rule "transaction_statement"
          [ [ t "SET"; t "TRANSACTION"; nt "isolation_spec" ] ];
      ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints =
      [
        Feature.Model.Requires ("Rollback To Savepoint", "Savepoint");
        Feature.Model.Requires ("Set Transaction", "Isolation Levels");
      ];
    diagram_names = [ "Transaction Management"; "Session Management" ];
  }
