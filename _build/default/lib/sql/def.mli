(** Shared helpers for writing the SQL:2003 decomposition.

    Every [Features_*] module describes one region of the feature model: a
    subtree of the diagram, the grammar fragment of each feature, cross-tree
    constraints, and the names of the construct diagrams it publishes. *)

type region = {
  subtree : Feature.Tree.group;
      (** the region's subtree, with its attachment relation to the root *)
  fragments : Compose.Fragment.t list;
  constraints : Feature.Model.constraint_ list;
  diagram_names : string list;
      (** features whose subtrees are published as stand-alone diagrams *)
}

(** Token definition shorthands. *)

val kw : string -> string * Lexing_gen.Spec.def
(** [kw "SELECT"] declares the reserved word [SELECT] under the terminal of
    the same name. *)

val punct : string -> string -> string * Lexing_gen.Spec.def
(** [punct "COMMA" ","]. *)

val ident_tok : string * Lexing_gen.Spec.def
val quoted_ident_tok : string * Lexing_gen.Spec.def
val integer_tok : string * Lexing_gen.Spec.def
val decimal_tok : string * Lexing_gen.Spec.def
val string_tok : string * Lexing_gen.Spec.def

val lparen : string * Lexing_gen.Spec.def
val rparen : string * Lexing_gen.Spec.def
val comma : string * Lexing_gen.Spec.def

val frag :
  string ->
  ?tokens:Lexing_gen.Spec.set ->
  Grammar.Production.t list ->
  Compose.Fragment.t
(** [frag feature ?tokens rules] — fragment owned by [feature]. *)
