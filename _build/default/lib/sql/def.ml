type region = {
  subtree : Feature.Tree.group;
  fragments : Compose.Fragment.t list;
  constraints : Feature.Model.constraint_ list;
  diagram_names : string list;
}

let kw k = (k, Lexing_gen.Spec.Keyword k)
let punct name lit = (name, Lexing_gen.Spec.Punct lit)

let ident_tok = ("IDENT", Lexing_gen.Spec.Class Lexing_gen.Spec.Identifier)

let quoted_ident_tok =
  ("QUOTED_IDENT", Lexing_gen.Spec.Class Lexing_gen.Spec.Quoted_identifier)

let integer_tok =
  ("UNSIGNED_INTEGER", Lexing_gen.Spec.Class Lexing_gen.Spec.Unsigned_integer)

let decimal_tok =
  ("DECIMAL_LITERAL", Lexing_gen.Spec.Class Lexing_gen.Spec.Decimal_number)

let string_tok =
  ("STRING_LITERAL", Lexing_gen.Spec.Class Lexing_gen.Spec.String_literal)

let lparen = punct "LPAREN" "("
let rparen = punct "RPAREN" ")"
let comma = punct "COMMA" ","

let frag feature ?tokens rules = Compose.Fragment.make ~feature ?tokens rules
