(** Data Manipulation region: INSERT, UPDATE, DELETE and MERGE. *)

open Feature.Tree
open Grammar.Builder
open Def

let insert_tree =
  feature "Insert Statement"
    [
      optional (leaf "Insert Column List");
      optional (leaf "Multi-row Insert");
      optional (leaf "Insert From Query");
      optional (leaf "Default Values");
    ]

let update_tree =
  feature "Update Statement"
    [ optional (leaf "Update Where"); optional (leaf "Update To Default") ]

let delete_tree = feature "Delete Statement" [ optional (leaf "Delete Where") ]

let merge_tree =
  feature "Merge Statement"
    [ Or_group [ leaf "Merge Update"; leaf "Merge Insert" ] ]

let tree =
  feature "Data Manipulation"
    [
      Or_group [ insert_tree; update_tree; delete_tree; merge_tree ];
    ]

(* The [where_clause] rule is declared by every feature that uses it (the
   composition keeps a single copy); each such feature requires "Search
   Condition" for the rules below it. *)
let where_clause_rule = r1 "where_clause" [ t "WHERE"; nt "search_condition" ]

let fragments =
  [
    frag "Data Manipulation" [];
    frag "Insert Statement"
      ~tokens:[ kw "INSERT"; kw "INTO"; kw "VALUES"; lparen; rparen; comma ]
      [
        r1 "sql_statement" [ nt "insert_statement" ];
        r1 "insert_statement"
          [ t "INSERT"; t "INTO"; nt "table_name"; nt "insert_source" ];
        r1 "insert_source" [ nt "values_clause" ];
        r1 "values_clause" [ t "VALUES"; nt "row_value" ];
        r1 "row_value"
          (t "LPAREN" :: (comma_list (nt "value_expression") @ [ t "RPAREN" ]));
      ];
    frag "Insert Column List"
      ~tokens:[ lparen; rparen; comma ]
      [
        r1 "insert_statement"
          [
            t "INSERT"; t "INTO"; nt "table_name";
            opt [ nt "insert_column_list" ]; nt "insert_source";
          ];
        r1 "insert_column_list"
          [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Multi-row Insert"
      ~tokens:[ comma ]
      [ r1 "values_clause" (t "VALUES" :: comma_list (nt "row_value")) ];
    frag "Insert From Query" [ rule "insert_source" [ [ nt "query_expression" ] ] ];
    frag "Default Values"
      ~tokens:[ kw "DEFAULT"; kw "VALUES" ]
      [ rule "insert_source" [ [ t "DEFAULT"; t "VALUES" ] ] ];
    frag "Update Statement"
      ~tokens:[ kw "UPDATE"; kw "SET"; punct "EQUALS" "="; comma ]
      [
        r1 "sql_statement" [ nt "update_statement" ];
        r1 "update_statement"
          (t "UPDATE" :: nt "table_name" :: t "SET" :: comma_list (nt "set_clause"));
        r1 "set_clause" [ nt "column_name"; t "EQUALS"; nt "update_source" ];
        r1 "update_source" [ nt "value_expression" ];
      ];
    frag "Update Where"
      ~tokens:[ kw "WHERE" ]
      [
        r1 "update_statement"
          (t "UPDATE" :: nt "table_name" :: t "SET"
           :: (comma_list (nt "set_clause") @ [ opt [ nt "where_clause" ] ]));
        where_clause_rule;
      ];
    frag "Update To Default"
      ~tokens:[ kw "DEFAULT" ]
      [ rule "update_source" [ [ t "DEFAULT" ] ] ];
    frag "Delete Statement"
      ~tokens:[ kw "DELETE"; kw "FROM" ]
      [
        r1 "sql_statement" [ nt "delete_statement" ];
        r1 "delete_statement" [ t "DELETE"; t "FROM"; nt "table_name" ];
      ];
    frag "Delete Where"
      ~tokens:[ kw "WHERE" ]
      [
        r1 "delete_statement"
          [ t "DELETE"; t "FROM"; nt "table_name"; opt [ nt "where_clause" ] ];
        where_clause_rule;
      ];
    frag "Merge Statement"
      ~tokens:[ kw "MERGE"; kw "INTO"; kw "USING"; kw "ON"; kw "AS"; kw "WHEN"; kw "THEN" ]
      [
        r1 "sql_statement" [ nt "merge_statement" ];
        r1 "merge_statement"
          [
            t "MERGE"; t "INTO"; nt "table_name";
            opt [ nt "merge_correlation" ]; t "USING"; nt "table_primary";
            t "ON"; nt "search_condition"; plus [ nt "merge_when_clause" ];
          ];
        r1 "merge_correlation" [ opt [ t "AS" ]; nt "identifier" ];
      ];
    frag "Merge Update"
      ~tokens:[ kw "MATCHED"; kw "UPDATE"; kw "SET"; punct "EQUALS" "="; comma ]
      [
        r1 "merge_when_clause"
          (t "WHEN" :: t "MATCHED" :: t "THEN" :: t "UPDATE" :: t "SET"
           :: comma_list (nt "set_clause"));
        r1 "set_clause" [ nt "column_name"; t "EQUALS"; nt "update_source" ];
        r1 "update_source" [ nt "value_expression" ];
      ];
    frag "Merge Insert"
      ~tokens:[ kw "NOT"; kw "MATCHED"; kw "INSERT"; kw "VALUES"; lparen; rparen; comma ]
      [
        r1 "merge_when_clause"
          [
            t "WHEN"; t "NOT"; t "MATCHED"; t "THEN"; t "INSERT";
            opt [ nt "insert_column_list" ]; t "VALUES"; nt "row_value";
          ];
        r1 "insert_column_list"
          [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ];
        r1 "column_name_list" (comma_list (nt "column_name"));
        r1 "row_value"
          (t "LPAREN" :: (comma_list (nt "value_expression") @ [ t "RPAREN" ]));
      ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints =
      [
        Feature.Model.Requires ("Update Where", "Search Condition");
        Feature.Model.Requires ("Delete Where", "Search Condition");
        Feature.Model.Requires ("Merge Statement", "Search Condition");
      ];
    diagram_names =
      [
        "Data Manipulation";
        "Insert Statement";
        "Update Statement";
        "Delete Statement";
        "Merge Statement";
      ];
  }
