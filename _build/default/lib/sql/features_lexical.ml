(** Lexical Elements region: identifiers and object names.

    Mandatory in every dialect — all statements name tables and columns.
    Delimited (double-quoted) identifiers and schema-qualified names are
    optional features. *)

open Grammar.Builder
open Def

let region =
  let tree =
    Feature.Tree.feature "Lexical Elements"
      [
        Feature.Tree.mandatory (Feature.Tree.leaf "Identifier");
        Feature.Tree.optional (Feature.Tree.leaf "Delimited Identifier");
        Feature.Tree.optional (Feature.Tree.leaf "Qualified Names");
      ]
  in
  {
    subtree = Feature.Tree.mandatory tree;
    fragments =
      [
        frag "Identifier"
          ~tokens:[ ident_tok ]
          [
            r1 "identifier" [ t "IDENT" ];
            r1 "column_name" [ nt "identifier" ];
            r1 "table_name" [ nt "identifier" ];
          ];
        frag "Delimited Identifier"
          ~tokens:[ quoted_ident_tok ]
          [ r1 "identifier" [ t "QUOTED_IDENT" ] ];
        frag "Qualified Names"
          ~tokens:[ punct "PERIOD" "." ]
          [ r1 "table_name" [ nt "identifier"; opt [ t "PERIOD"; nt "identifier" ] ] ];
      ];
    constraints = [];
    diagram_names = [ "Lexical Elements" ];
  }
