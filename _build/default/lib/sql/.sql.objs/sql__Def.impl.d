lib/sql/def.ml: Compose Feature Lexing_gen
