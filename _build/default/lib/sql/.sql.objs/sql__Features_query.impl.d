lib/sql/features_query.ml: Def Feature Grammar
