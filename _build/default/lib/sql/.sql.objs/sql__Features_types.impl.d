lib/sql/features_types.ml: Def Feature Grammar
