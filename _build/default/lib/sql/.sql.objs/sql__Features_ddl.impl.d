lib/sql/features_ddl.ml: Def Feature Grammar
