lib/sql/model.mli: Compose Feature
