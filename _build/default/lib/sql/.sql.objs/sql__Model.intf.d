lib/sql/model.mli: Compose Feature Grammar Lint
