lib/sql/features_lexical.ml: Def Feature Grammar
