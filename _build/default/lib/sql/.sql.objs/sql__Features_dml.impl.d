lib/sql/features_dml.ml: Def Feature Grammar
