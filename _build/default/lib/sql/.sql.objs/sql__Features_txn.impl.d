lib/sql/features_txn.ml: Def Feature Grammar
