lib/sql/features_pred.ml: Def Feature Grammar
