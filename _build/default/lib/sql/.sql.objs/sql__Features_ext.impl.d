lib/sql/features_ext.ml: Def Feature Grammar Lexing_gen
