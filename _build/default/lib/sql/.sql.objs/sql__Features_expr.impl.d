lib/sql/features_expr.ml: Def Feature Grammar
