lib/sql/features_dcl.ml: Def Feature Grammar
