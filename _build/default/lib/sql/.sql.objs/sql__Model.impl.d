lib/sql/model.ml: Compose Def Feature Features_dcl Features_ddl Features_dml Features_expr Features_ext Features_lexical Features_pred Features_query Features_txn Features_types Lint List Option
