lib/sql/def.mli: Compose Feature Grammar Lexing_gen
