(** Access Control region: GRANT and REVOKE. *)

open Feature.Tree
open Grammar.Builder
open Def

let grant_tree =
  feature "Grant Statement"
    [
      Or_group
        [
          leaf "Select Privilege";
          leaf "Insert Privilege";
          leaf "Update Privilege";
          leaf "Delete Privilege";
          leaf "References Privilege";
          leaf "All Privileges";
        ];
      optional (leaf "Public Grantee");
      optional (leaf "Grant Option");
    ]

let tree =
  feature "Access Control"
    [ mandatory grant_tree; optional (leaf "Revoke Statement") ]

let fragments =
  [
    frag "Access Control" [];
    frag "Grant Statement"
      ~tokens:[ kw "GRANT"; kw "ON"; kw "TABLE"; kw "TO"; comma ]
      [
        r1 "sql_statement" [ nt "grant_statement" ];
        r1 "grant_statement"
          (t "GRANT" :: nt "privileges" :: t "ON" :: opt [ t "TABLE" ]
           :: nt "table_name" :: t "TO" :: comma_list (nt "grantee"));
        r1 "privileges" (comma_list (nt "privilege"));
        r1 "grantee" [ nt "identifier" ];
      ];
    frag "Select Privilege"
      ~tokens:[ kw "SELECT" ]
      [ rule "privilege" [ [ t "SELECT" ] ] ];
    frag "Insert Privilege"
      ~tokens:[ kw "INSERT" ]
      [ rule "privilege" [ [ t "INSERT" ] ] ];
    frag "Update Privilege"
      ~tokens:[ kw "UPDATE"; lparen; rparen; comma ]
      [
        rule "privilege"
          [ [ t "UPDATE"; opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ] ] ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "Delete Privilege"
      ~tokens:[ kw "DELETE" ]
      [ rule "privilege" [ [ t "DELETE" ] ] ];
    frag "References Privilege"
      ~tokens:[ kw "REFERENCES"; lparen; rparen; comma ]
      [
        rule "privilege"
          [
            [ t "REFERENCES"; opt [ t "LPAREN"; nt "column_name_list"; t "RPAREN" ] ];
          ];
        r1 "column_name_list" (comma_list (nt "column_name"));
      ];
    frag "All Privileges"
      ~tokens:[ kw "ALL"; kw "PRIVILEGES" ]
      [ rule "privileges" [ [ t "ALL"; t "PRIVILEGES" ] ] ];
    frag "Public Grantee"
      ~tokens:[ kw "PUBLIC" ]
      [ rule "grantee" [ [ t "PUBLIC" ] ] ];
    frag "Grant Option"
      ~tokens:[ kw "WITH"; kw "GRANT"; kw "OPTION" ]
      [
        r1 "grant_statement"
          (t "GRANT" :: nt "privileges" :: t "ON" :: opt [ t "TABLE" ]
           :: nt "table_name" :: t "TO"
           :: (comma_list (nt "grantee")
               @ [ opt [ t "WITH"; t "GRANT"; t "OPTION" ] ]));
      ];
    frag "Revoke Statement"
      ~tokens:
        [
          kw "REVOKE"; kw "GRANT"; kw "OPTION"; kw "FOR"; kw "ON"; kw "TABLE";
          kw "FROM"; kw "CASCADE"; kw "RESTRICT"; comma;
        ]
      [
        r1 "sql_statement" [ nt "revoke_statement" ];
        r1 "revoke_statement"
          (t "REVOKE"
           :: opt [ t "GRANT"; t "OPTION"; t "FOR" ]
           :: nt "privileges" :: t "ON" :: opt [ t "TABLE" ]
           :: nt "table_name" :: t "FROM"
           :: (comma_list (nt "grantee") @ [ opt [ nt "drop_behavior" ] ]));
        rule "drop_behavior" [ [ t "CASCADE" ]; [ t "RESTRICT" ] ];
      ];
  ]

let region =
  {
    subtree = optional tree;
    fragments;
    constraints = [ Feature.Model.Requires ("Revoke Statement", "Grant Statement") ];
    diagram_names = [ "Access Control"; "Grant Statement" ];
  }
