(** Product instances of the SQL product line.

    Each dialect is a feature configuration of {!Sql.Model.model}, written as
    a seed set and closed under the model's structural and [requires]
    constraints. The set mirrors the paper's motivating products: the §3.2
    worked example, smart-card SQL (SCQL, ISO 7816-7), TinySQL (TinyDB,
    sensor networks), an embedded core, an analytics dialect and full SQL
    Foundation. *)

type t = {
  name : string;          (** short CLI-friendly name, e.g. ["tinysql"] *)
  title : string;
  description : string;
  config : Feature.Config.t;  (** closed, valid configuration *)
}

val minimal_select : t
(** The paper's §3.2 worked example: single-column, single-table SELECT with
    optional DISTINCT/ALL and optional WHERE (equality only). *)

val scql : t
(** Smart-card SQL: single-table SELECT/INSERT/UPDATE/DELETE, CREATE/DROP
    TABLE, GRANT/REVOKE — no joins, no aggregation, no subqueries. *)

val tinysql : t
(** Sensor-network SQL: aggregation over a single table with GROUP BY /
    HAVING and the acquisitional EPOCH DURATION / SAMPLE PERIOD clauses; no
    joins, no column aliases, no ORDER BY. *)

val embedded : t
(** A small embedded core: CRUD with WHERE and ORDER BY plus LIMIT, basic
    types and constraints. *)

val analytics : t
(** Query-heavy dialect: joins, subqueries, set operations, grouping
    (including ROLLUP/CUBE), CASE/CAST, string and numeric functions; DDL
    and INSERT for loading, no access control. *)

val full : t
(** Every feature of the model. *)

val all : t list
val find : string -> t option
