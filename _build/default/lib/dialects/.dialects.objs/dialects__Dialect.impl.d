lib/dialects/dialect.ml: Feature List Sql String
