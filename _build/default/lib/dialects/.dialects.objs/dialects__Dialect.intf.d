lib/dialects/dialect.mli: Feature
