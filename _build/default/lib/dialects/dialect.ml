type t = {
  name : string;
  title : string;
  description : string;
  config : Feature.Config.t;
}

let make ~name ~title ~description seeds =
  {
    name;
    title;
    description;
    config = Sql.Model.close (Feature.Config.of_names seeds);
  }

let minimal_select =
  make ~name:"minimal" ~title:"Minimal SELECT (paper §3.2)"
    ~description:
      "Single-column, single-table SELECT with optional DISTINCT/ALL and an \
       optional WHERE clause over equality comparisons."
    [
      "Query Specification"; "Set Quantifier"; "All"; "Distinct"; "Where";
      "Comparison Predicate"; "Equals";
    ]

let comparison_ops =
  [
    "Comparison Predicate"; "Equals"; "Not Equals"; "Less Than"; "Greater Than";
    "Less Or Equal"; "Greater Or Equal";
  ]

let basic_literals =
  [ "Literals"; "Integer Literal"; "Decimal Literal"; "String Literal"; "Null Literal" ]

let scql =
  make ~name:"scql" ~title:"SCQL (smart-card SQL, ISO 7816-7)"
    ~description:
      "Interindustry smart-card commands: single-table CRUD with WHERE, \
       CREATE/DROP TABLE, and GRANT/REVOKE for card security attributes. No \
       joins, no aggregation, no subqueries."
    ([
       "Where"; "And"; "Not";
       "Multiple Select Sublists"; "Asterisk";
       "Insert Statement"; "Insert Column List";
       "Update Statement"; "Update Where";
       "Delete Statement"; "Delete Where";
       "Table Definition"; "Integer Type"; "Char Type"; "Varchar Type";
       "Not Null";
       "Drop Statement"; "Drop Table";
       "Grant Statement"; "Select Privilege"; "Insert Privilege";
       "Update Privilege"; "Delete Privilege"; "Public Grantee";
       "Revoke Statement";
     ]
     @ comparison_ops @ basic_literals)

let tinysql =
  make ~name:"tinysql" ~title:"TinySQL (TinyDB, sensor networks)"
    ~description:
      "Acquisitional queries over a single sensor table: aggregation with \
       GROUP BY/HAVING, WHERE, and the EPOCH DURATION / SAMPLE PERIOD \
       clauses. Single table in FROM, no column aliases, no ORDER BY."
    ([
       "Where"; "And"; "Or";
       "Multiple Select Sublists"; "Asterisk";
       "Group By"; "Having";
       "Aggregate Functions"; "Count"; "Count Star"; "Sum"; "Avg"; "Min"; "Max";
       "Arithmetic"; "Addition"; "Subtraction"; "Multiplication"; "Division";
       "Epoch Duration"; "Sample Period";
     ]
     @ comparison_ops @ basic_literals)

let embedded =
  make ~name:"embedded" ~title:"Embedded core"
    ~description:
      "CRUD for resource-constrained devices: SELECT with WHERE, ORDER BY \
       and LIMIT, INSERT/UPDATE/DELETE, CREATE/DROP TABLE with basic types \
       and NOT NULL / PRIMARY KEY constraints."
    ([
       "Where"; "And"; "Or"; "Not";
       "Multiple Select Sublists"; "Asterisk"; "As Clause";
       "Order By"; "Ordering Direction"; "Ascending"; "Descending"; "Limit";
       "Boolean Literal";
       "Arithmetic"; "Addition"; "Subtraction"; "Multiplication"; "Division";
       "Insert Statement"; "Insert Column List"; "Multi-row Insert";
       "Update Statement"; "Update Where";
       "Delete Statement"; "Delete Where";
       "Table Definition"; "Default Clause"; "Integer Type"; "Varchar Type";
       "Boolean Type"; "Decimal Type"; "Not Null"; "Primary Key Column";
       "Unique Column";
       "Drop Statement"; "Drop Table";
       "Dynamic Parameters"; "Explain Statement";
     ]
     @ comparison_ops @ basic_literals)

let analytics =
  make ~name:"analytics" ~title:"Analytics / warehousing"
    ~description:
      "Query-heavy dialect: joins (inner/outer/cross), subqueries and \
       quantified comparisons, set operations, GROUP BY with ROLLUP/CUBE, \
       HAVING, CASE, CAST, string/numeric functions, ORDER BY and FETCH \
       FIRST; DDL and INSERT for loading."
    ([
       "Where"; "And"; "Or"; "Not"; "Is Truth Test"; "Parenthesized Boolean";
       "Between Predicate"; "In Predicate"; "In Subquery"; "Like Predicate";
       "Escape Clause"; "Null Predicate"; "Exists Predicate";
       "Quantified Comparison"; "Boolean Value Expression";
       "Multiple Select Sublists"; "Asterisk"; "Qualified Asterisk"; "As Clause";
       "Set Quantifier"; "All"; "Distinct";
       "Multiple Table References"; "Correlation Name"; "Derived Column List";
       "Derived Table"; "Joined Table"; "Inner Join"; "Outer Join"; "Left Join";
       "Right Join"; "Full Join"; "Cross Join"; "Natural Join";
       "Join Specification"; "On Clause"; "Using Clause";
       "Group By"; "Rollup"; "Cube"; "Grouping Sets"; "Having";
       "Set Operations"; "Union"; "Union Quantifier"; "Except"; "Intersect";
       "Parenthesized Query"; "Subquery"; "Table Value Constructor";
       "With Clause"; "Recursive With";
       "Order By"; "Ordering Direction"; "Ascending"; "Descending";
       "Nulls Ordering"; "Fetch First";
       "Qualified Column Reference"; "Qualified Names";
       "Boolean Literal"; "Datetime Literal";
       "Arithmetic"; "Addition"; "Subtraction"; "Multiplication"; "Division";
       "Unary Sign"; "String Concatenation"; "Parenthesized Expression";
       "Scalar Subquery";
       "Case Expression"; "Searched Case"; "Simple Case"; "Nullif"; "Coalesce";
       "Cast";
       "Aggregate Functions"; "Count"; "Count Star"; "Sum"; "Avg"; "Min"; "Max";
       "Aggregate Quantifier";
       "String Functions"; "Upper"; "Lower"; "Char Length"; "Substring"; "Trim";
       "Position";
       "Numeric Functions"; "Absolute Value"; "Modulus"; "Extract";
       "Integer Type"; "Smallint Type"; "Bigint Type"; "Decimal Type";
       "Float Type"; "Real Type"; "Double Type"; "Char Type"; "Varchar Type";
       "Boolean Type"; "Date Type"; "Time Type"; "Timestamp Type";
       "Insert Statement"; "Insert Column List"; "Multi-row Insert";
       "Insert From Query";
       "Table Definition"; "Default Clause"; "Not Null"; "Primary Key Column";
       "Unique Column";
       "View Definition"; "View Column List";
       "Drop Statement"; "Drop Table"; "Drop View"; "Drop Behavior";
     ]
     @ comparison_ops @ basic_literals)

let full =
  {
    name = "full";
    title = "Full SQL Foundation";
    description = "Every feature of the model.";
    config = Feature.Config.full Sql.Model.model;
  }

let all = [ minimal_select; scql; tinysql; embedded; analytics; full ]

let find name =
  List.find_opt (fun d -> String.equal d.name name) all
