(** Lowering concrete syntax trees to the SQL AST.

    The lowering navigates the CST by node label and token kind, which makes
    it independent of the exact alternative shapes a feature composition
    produced: a dialect that omits features simply produces CSTs without the
    corresponding nodes. The [WINDOW] clause is recognized by the grammar but
    has no AST counterpart; it is ignored here (parse-only feature). *)

open Sql_ast

type error = {
  construct : string;  (** the CST label being lowered when lowering failed *)
  message : string;
}

val pp_error : error Fmt.t

val statement : Parser_gen.Cst.t -> (Ast.statement, error) result
(** Lower a [sql_statement] CST. *)

val query : Parser_gen.Cst.t -> (Ast.query, error) result
(** Lower a [query_statement] or [query_expression] CST. *)

val expression : Parser_gen.Cst.t -> (Ast.expr, error) result
(** Lower a [value_expression] CST. *)

val condition : Parser_gen.Cst.t -> (Ast.cond, error) result
(** Lower a [search_condition] CST. *)
