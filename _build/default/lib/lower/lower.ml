open Sql_ast

module Cst = Parser_gen.Cst

type error = {
  construct : string;
  message : string;
}

let pp_error ppf e = Fmt.pf ppf "cannot lower <%s>: %s" e.construct e.message

exception Lower_error of error

(* Ordinals for dynamic parameter markers, assigned in lexical order within
   one lowering run (reset per entry point). *)
let parameter_counter = ref 0

let next_parameter () =
  incr parameter_counter;
  !parameter_counter

let fail construct fmt =
  Printf.ksprintf (fun message -> raise (Lower_error { construct; message })) fmt

(* --- CST navigation helpers -------------------------------------------- *)

let child_exn t label =
  match Cst.child t label with
  | Some c -> c
  | None -> fail (Cst.label t) "missing child <%s>" label

let has t label = Cst.child t label <> None
let kids = Cst.children_labelled

let text t =
  match Cst.token_text t with
  | Some s -> s
  | None -> fail (Cst.label t) "expected a token"

(* An <identifier> node holds an IDENT or QUOTED_IDENT leaf. *)
let identifier t =
  match Cst.children t with
  | [ leaf ] -> text leaf
  | _ -> fail (Cst.label t) "malformed identifier"

let column_name t = identifier (child_exn t "identifier")

(* <table_name> : identifier [ PERIOD identifier ] *)
let table_name t =
  match kids t "identifier" with
  | [ single ] -> Ast.simple_name (identifier single)
  | [ qualifier; name ] ->
    { Ast.qualifier = Some (identifier qualifier); name = identifier name }
  | _ -> fail "table_name" "malformed qualified name"

let column_name_list t = List.map column_name (kids t "column_name")

let int_of_leaf t = int_of_string (text t)

(* --- Expressions --------------------------------------------------------- *)

let rec value_expression t : Ast.expr =
  numeric_value_expression (child_exn t "numeric_value_expression")

(* <numeric_value_expression> : term ( additive_tail )* where each tail is
   PLUS/MINUS/CONCAT followed by a term. Folds left-associatively. *)
and numeric_value_expression t =
  let first = term (child_exn t "term") in
  List.fold_left
    (fun acc tail ->
      let rhs = term (child_exn tail "term") in
      let op =
        if has tail "PLUS" then Ast.Add
        else if has tail "MINUS" then Ast.Sub
        else if has tail "CONCAT" then Ast.Concat
        else fail "additive_tail" "unknown operator"
      in
      Ast.Binop (op, acc, rhs))
    first (kids t "additive_tail")

and term t =
  let first = factor (child_exn t "factor") in
  List.fold_left
    (fun acc tail ->
      let rhs = factor (child_exn tail "factor") in
      let op =
        if has tail "ASTERISK" then Ast.Mul
        else if has tail "SOLIDUS" then Ast.Div
        else fail "multiplicative_tail" "unknown operator"
      in
      Ast.Binop (op, acc, rhs))
    first (kids t "multiplicative_tail")

and factor t =
  let prim = primary (child_exn t "value_expression_primary") in
  match Cst.child t "sign" with
  | None -> prim
  | Some sign_node ->
    let sign = if has sign_node "MINUS" then Ast.S_minus else Ast.S_plus in
    Ast.Unary (sign, prim)

and primary t =
  match Cst.children t with
  | [] -> fail "value_expression_primary" "empty"
  | first :: _ -> (
    match Cst.label first with
    | "column_reference" -> column_reference first
    | "literal" -> Ast.Lit (literal first)
    | "LPAREN" -> value_expression (child_exn t "value_expression")
    | "subquery" -> Ast.Scalar_subquery (subquery first)
    | "case_expression" -> case_expression first
    | "cast_specification" ->
      let c = first in
      Ast.Cast
        (value_expression (child_exn c "value_expression"),
         data_type (child_exn c "data_type"))
    | "set_function_specification" -> set_function first
    | "string_function" -> string_function first
    | "numeric_function" -> numeric_function first
    | "datetime_value_function" -> Ast.Call (text_of_single first, [])
    | "user_identity_function" -> Ast.Call (text_of_single first, [])
    | "function_call" -> function_call first
    | "window_function" -> window_function first
    | "next_value_expression" ->
      Ast.Next_value (identifier (child_exn first "identifier"))
    | "QUESTION" -> Ast.Parameter (next_parameter ())
    | other -> fail "value_expression_primary" "unexpected child <%s>" other)

and text_of_single t =
  match Cst.children t with
  | [ leaf ] -> String.uppercase_ascii (text leaf)
  | _ -> fail (Cst.label t) "expected a single keyword"

and column_reference t =
  match kids t "identifier", Cst.child t "column_name" with
  | [ qualifier ], Some name ->
    Ast.Column (Some (identifier qualifier), column_name name)
  | [], Some name -> Ast.Column (None, column_name name)
  | _, _ -> fail "column_reference" "malformed"

and literal t =
  match Cst.children t with
  | [ leaf ] -> (
    match Cst.label leaf with
    | "UNSIGNED_INTEGER" -> Ast.L_integer (int_of_leaf leaf)
    | "DECIMAL_LITERAL" -> Ast.L_decimal (float_of_string (text leaf))
    | "STRING_LITERAL" -> Ast.L_string (text leaf)
    | "TRUE" -> Ast.L_bool true
    | "FALSE" -> Ast.L_bool false
    | "NULL" -> Ast.L_null
    | "datetime_literal" -> datetime_literal leaf
    | "interval_literal" ->
      Ast.L_interval
        ( text (child_exn leaf "STRING_LITERAL"),
          interval_qualifier (child_exn leaf "interval_qualifier") )
    | other -> fail "literal" "unexpected token %s" other)
  | _ -> fail "literal" "malformed"

and interval_qualifier t : Ast.interval_qualifier =
  match kids t "datetime_field" with
  | [ only ] -> { Ast.from_field = text_of_single only; to_field = None }
  | [ from_f; to_f ] ->
    { Ast.from_field = text_of_single from_f; to_field = Some (text_of_single to_f) }
  | _ -> fail "interval_qualifier" "malformed"

and datetime_literal t =
  let s = text (child_exn t "STRING_LITERAL") in
  if has t "DATE" then Ast.L_date s
  else if has t "TIME" then Ast.L_time s
  else if has t "TIMESTAMP" then Ast.L_timestamp s
  else fail "datetime_literal" "unknown kind"

and case_expression t =
  if has t "NULLIF" then
    Ast.Call ("NULLIF", List.map value_expression (kids t "value_expression"))
  else if has t "COALESCE" then
    Ast.Call ("COALESCE", List.map value_expression (kids t "value_expression"))
  else if kids t "searched_when_clause" <> [] then
    Ast.Case_searched
      {
        branches =
          List.map
            (fun w ->
              ( search_condition (child_exn w "search_condition"),
                value_expression (child_exn w "value_expression") ))
            (kids t "searched_when_clause");
        else_ = else_clause t;
      }
  else
    let operand = value_expression (child_exn t "value_expression") in
    Ast.Case_simple
      {
        operand;
        branches =
          List.map
            (fun w ->
              match kids w "value_expression" with
              | [ when_e; then_e ] ->
                (value_expression when_e, value_expression then_e)
              | _ -> fail "simple_when_clause" "malformed")
            (kids t "simple_when_clause");
        else_ = else_clause t;
      }

and else_clause t =
  Option.map
    (fun e -> value_expression (child_exn e "value_expression"))
    (Cst.child t "else_clause")

and set_function t =
  if has t "ASTERISK" then
    Ast.Aggregate { func = Ast.F_count; agg_quantifier = None; arg = Ast.A_star }
  else
    let func =
      match text_of_single (child_exn t "set_function_type") with
      | "COUNT" -> Ast.F_count
      | "SUM" -> Ast.F_sum
      | "AVG" -> Ast.F_avg
      | "MIN" -> Ast.F_min
      | "MAX" -> Ast.F_max
      | "EVERY" -> Ast.F_every
      | "ANY" -> Ast.F_any
      | other -> fail "set_function_type" "unknown function %s" other
    in
    Ast.Aggregate
      {
        func;
        agg_quantifier = Option.map set_quantifier (Cst.child t "set_quantifier");
        arg = Ast.A_expr (value_expression (child_exn t "value_expression"));
      }

and set_quantifier t =
  if has t "DISTINCT" then Ast.Distinct else Ast.All

and string_function t =
  let args () = List.map value_expression (kids t "value_expression") in
  if has t "UPPER" then Ast.Call ("UPPER", args ())
  else if has t "LOWER" then Ast.Call ("LOWER", args ())
  else if has t "CHAR_LENGTH" || has t "CHARACTER_LENGTH" then
    Ast.Call ("CHAR_LENGTH", args ())
  else if has t "SUBSTRING" then
    (match args () with
     | [ arg; from_ ] -> Ast.Substring { arg; from_; for_ = None }
     | [ arg; from_; for_ ] -> Ast.Substring { arg; from_; for_ = Some for_ }
     | _ -> fail "string_function" "malformed SUBSTRING")
  else if has t "POSITION" then
    (match args () with
     | [ needle; haystack ] -> Ast.Position { needle; haystack }
     | _ -> fail "string_function" "malformed POSITION")
  else if has t "TRIM" then trim (child_exn t "trim_operands")
  else if has t "OCTET_LENGTH" then Ast.Call ("OCTET_LENGTH", args ())
  else if has t "OVERLAY" then
    (match args () with
     | [ arg; placing; from_ ] -> Ast.Overlay { arg; placing; from_; for_ = None }
     | [ arg; placing; from_; for_ ] ->
       Ast.Overlay { arg; placing; from_; for_ = Some for_ }
     | _ -> fail "string_function" "malformed OVERLAY")
  else fail "string_function" "unknown function"

and trim t =
  let side =
    Option.map
      (fun s ->
        if has s "LEADING" then Ast.Trim_leading
        else if has s "TRAILING" then Ast.Trim_trailing
        else Ast.Trim_both)
      (Cst.child t "trim_specification")
  in
  match kids t "value_expression" with
  | [ arg ] -> Ast.Trim { side; removed = None; arg = value_expression arg }
  | [ removed; arg ] ->
    Ast.Trim
      { side; removed = Some (value_expression removed); arg = value_expression arg }
  | _ -> fail "trim_operands" "malformed"

and numeric_function t =
  let args () = List.map value_expression (kids t "value_expression") in
  if has t "ABS" then Ast.Call ("ABS", args ())
  else if has t "MOD" then Ast.Call ("MOD", args ())
  else if has t "EXTRACT" then
    Ast.Extract
      {
        field = text_of_single (child_exn t "extract_field");
        arg = value_expression (child_exn t "value_expression");
      }
  else fail "numeric_function" "unknown function"

and window_function t =
  let spec = child_exn t "window_specification" in
  let lists = kids spec "window_column_list" in
  let exprs_of node = List.map value_expression (kids node "value_expression") in
  let partition_by, win_order_by =
    (* Zero, one or two lists; disambiguate single lists by which keyword is
       present. *)
    match lists with
    | [] -> ([], [])
    | [ only ] ->
      if has spec "PARTITION" then (exprs_of only, []) else ([], exprs_of only)
    | [ p; o ] -> (exprs_of p, exprs_of o)
    | _ -> fail "window_specification" "malformed"
  in
  Ast.Window_call
    {
      wfunc =
        (let wft = child_exn t "window_function_type" in
         match Cst.children wft with
         | kw :: _ -> String.uppercase_ascii (text kw)
         | [] -> fail "window_function_type" "empty");
      partition_by;
      win_order_by;
    }

and function_call t =
  let name = identifier (child_exn t "identifier") in
  let args =
    match Cst.child t "argument_list" with
    | None -> []
    | Some al -> List.map value_expression (kids al "value_expression")
  in
  Ast.Call (name, args)

and data_type t : Ast.data_type =
  let length () =
    Option.map int_of_leaf (Cst.child t "UNSIGNED_INTEGER")
  in
  if has t "INTEGER" || has t "INT" then Ast.T_integer
  else if has t "SMALLINT" then Ast.T_smallint
  else if has t "BIGINT" then Ast.T_bigint
  else if has t "DECIMAL" || has t "DEC" || has t "NUMERIC" then
    (match kids t "UNSIGNED_INTEGER" with
     | [] -> Ast.T_decimal None
     | [ p ] -> Ast.T_decimal (Some (int_of_leaf p, None))
     | [ p; s ] -> Ast.T_decimal (Some (int_of_leaf p, Some (int_of_leaf s)))
     | _ -> fail "data_type" "malformed DECIMAL")
  else if has t "FLOAT" then Ast.T_float
  else if has t "REAL" then Ast.T_real
  else if has t "DOUBLE" then Ast.T_double
  else if has t "INTERVAL" then
    Ast.T_interval (interval_qualifier (child_exn t "interval_qualifier"))
  else if has t "VARCHAR" || has t "VARYING" then Ast.T_varchar (length ())
  else if has t "CHARACTER" || has t "CHAR" then Ast.T_char (length ())
  else if has t "BOOLEAN" then Ast.T_boolean
  else if has t "DATE" then Ast.T_date
  else if has t "TIME" then Ast.T_time
  else if has t "TIMESTAMP" then Ast.T_timestamp
  else fail "data_type" "unknown type"

(* --- Conditions ------------------------------------------------------------ *)

and search_condition t : Ast.cond =
  let terms = List.map boolean_term (kids t "boolean_term") in
  match terms with
  | [] -> fail "search_condition" "no boolean term"
  | first :: rest -> List.fold_left (fun acc c -> Ast.Or (acc, c)) first rest

and boolean_term t =
  let factors = List.map boolean_factor (kids t "boolean_factor") in
  match factors with
  | [] -> fail "boolean_term" "no boolean factor"
  | first :: rest -> List.fold_left (fun acc c -> Ast.And (acc, c)) first rest

and boolean_factor t =
  let test = boolean_test (child_exn t "boolean_test") in
  if has t "NOT" then Ast.Not test else test

and boolean_test t =
  let inner = boolean_primary (child_exn t "boolean_primary") in
  match Cst.child t "truth_value" with
  | None -> inner
  | Some tv ->
    let truth =
      if has tv "TRUE" then Ast.True
      else if has tv "FALSE" then Ast.False
      else Ast.Unknown
    in
    Ast.Is_truth { negated = has t "NOT"; arg = inner; truth }

and boolean_primary t =
  match Cst.children t with
  | [ only ] when Cst.label only = "predicate" -> predicate only
  | [ only ] when Cst.label only = "value_expression" ->
    Ast.Bool_expr (value_expression only)
  | _ ->
    if has t "LPAREN" then search_condition (child_exn t "search_condition")
    else fail "boolean_primary" "malformed"

and predicate t : Ast.cond =
  if has t "EXISTS" then Ast.Exists (subquery (child_exn t "subquery"))
  else if has t "UNIQUE" then Ast.Unique (subquery (child_exn t "subquery"))
  else
    let lhs = value_expression (child_exn t "value_expression") in
    match Cst.children t with
    | [ _; tail ] -> predicate_tail lhs tail
    | _ -> fail "predicate" "malformed"

and predicate_tail lhs tail =
  let negated = has tail "NOT" in
  match Cst.label tail with
  | "comparison_predicate_tail" ->
    let op = comp_op (child_exn tail "comp_op") in
    (match Cst.child tail "comparison_quantifier" with
     | Some q ->
       Ast.Quantified_comparison
         {
           op;
           lhs;
           quantifier = (if has q "ALL" then Ast.Q_all else Ast.Q_some);
           subquery = subquery (child_exn tail "subquery");
         }
     | None ->
       Ast.Comparison (op, lhs, value_expression (child_exn tail "value_expression")))
  | "between_tail" ->
    (match kids tail "value_expression" with
     | [ low; high ] ->
       let symmetric =
         match Cst.child tail "between_symmetry" with
         | Some s -> has s "SYMMETRIC"
         | None -> false
       in
       Ast.Between
         {
           negated; symmetric; arg = lhs;
           low = value_expression low; high = value_expression high;
         }
     | _ -> fail "between_tail" "malformed")
  | "in_tail" ->
    let ipv = child_exn tail "in_predicate_value" in
    if has ipv "subquery" then
      Ast.In_subquery { negated; arg = lhs; subquery = subquery (child_exn ipv "subquery") }
    else
      Ast.In_list
        { negated; arg = lhs; values = List.map value_expression (kids ipv "value_expression") }
  | "like_tail" ->
    (match kids tail "value_expression" with
     | [ pattern ] ->
       Ast.Like { negated; arg = lhs; pattern = value_expression pattern; escape = None }
     | [ pattern; escape ] ->
       Ast.Like
         {
           negated;
           arg = lhs;
           pattern = value_expression pattern;
           escape = Some (value_expression escape);
         }
     | _ -> fail "like_tail" "malformed")
  | "null_tail" -> Ast.Is_null { negated; arg = lhs }
  | "distinct_tail" ->
    Ast.Is_distinct_from
      { negated; lhs; rhs = value_expression (child_exn tail "value_expression") }
  | "overlaps_tail" ->
    Ast.Overlaps (lhs, value_expression (child_exn tail "value_expression"))
  | "similar_tail" ->
    Ast.Similar
      { negated; arg = lhs; pattern = value_expression (child_exn tail "value_expression") }
  | other -> fail "predicate" "unknown tail <%s>" other

and comp_op t =
  if has t "EQUALS" then Ast.Eq
  else if has t "NOT_EQUALS" then Ast.Neq
  else if has t "LESS_EQ" then Ast.Le
  else if has t "GREATER_EQ" then Ast.Ge
  else if has t "LESS" then Ast.Lt
  else if has t "GREATER" then Ast.Gt
  else fail "comp_op" "unknown operator"

(* --- Queries --------------------------------------------------------------- *)

and subquery t : Ast.query =
  Ast.query_of_body (query_expression_body (child_exn t "query_expression"))

and query_expression_body t : Ast.query_body =
  let first = query_term_body (child_exn t "query_term") in
  List.fold_left
    (fun acc tail ->
      let rhs = query_term_body (child_exn tail "query_term") in
      let op = if has tail "UNION" then Ast.Union else Ast.Except in
      let quantifier =
        Option.map set_quantifier (Cst.child tail "set_quantifier")
      in
      Ast.Set_operation
        { op; quantifier; corresponding = has tail "CORRESPONDING"; lhs = acc; rhs })
    first (kids t "set_op_tail")

and query_term_body t =
  let first = query_primary_body (child_exn t "query_primary") in
  List.fold_left
    (fun acc tail ->
      let rhs = query_primary_body (child_exn tail "query_primary") in
      let quantifier =
        Option.map set_quantifier (Cst.child tail "set_quantifier")
      in
      Ast.Set_operation
        {
          op = Ast.Intersect; quantifier;
          corresponding = has tail "CORRESPONDING"; lhs = acc; rhs;
        })
    first (kids t "intersect_tail")

and query_primary_body t =
  if has t "query_specification" then
    Ast.Select (query_specification (child_exn t "query_specification"))
  else if has t "LPAREN" then
    Ast.Paren_query
      (Ast.query_of_body (query_expression_body (child_exn t "query_expression")))
  else if has t "table_value_constructor" then
    let tvc = child_exn t "table_value_constructor" in
    Ast.Values (List.map row_value (kids tvc "row_value"))
  else fail "query_primary" "malformed"

and row_value t = List.map value_expression (kids t "value_expression")

and query_specification t : Ast.select =
  let te = child_exn t "table_expression" in
  {
    Ast.select_quantifier =
      Option.map set_quantifier (Cst.child t "set_quantifier");
    projection = select_list (child_exn t "select_list");
    from = from_clause (child_exn te "from_clause");
    where =
      Option.map
        (fun w -> search_condition (child_exn w "search_condition"))
        (Cst.child te "where_clause");
    group_by =
      (match Cst.child te "group_by_clause" with
       | None -> []
       | Some g -> List.map grouping_element (kids g "grouping_element"));
    having =
      Option.map
        (fun h -> search_condition (child_exn h "search_condition"))
        (Cst.child te "having_clause");
  }

and select_list t : Ast.select_item list =
  if has t "ASTERISK" then [ Ast.Star ]
  else List.map select_sublist (kids t "select_sublist")

and select_sublist t =
  if has t "ASTERISK" then
    Ast.Qualified_star (identifier (child_exn t "identifier"))
  else
    let dc = child_exn t "derived_column" in
    let alias =
      Option.map (fun a -> column_name (child_exn a "column_name")) (Cst.child dc "as_clause")
    in
    Ast.Expr_item (value_expression (child_exn dc "value_expression"), alias)

and grouping_element t : Ast.group_element =
  let column_list node =
    List.map value_expression (kids node "value_expression")
  in
  if has t "ROLLUP" then Ast.Rollup (column_list (child_exn t "grouping_column_list"))
  else if has t "CUBE" then Ast.Cube (column_list (child_exn t "grouping_column_list"))
  else if has t "GROUPING" then
    Ast.Grouping_sets
      (List.map
         (fun gs -> column_list (child_exn gs "grouping_column_list"))
         (kids t "grouping_set"))
  else Ast.Group_expr (value_expression (child_exn t "value_expression"))

and from_clause t = List.map table_reference (kids t "table_reference")

and table_reference t : Ast.table_ref =
  let first = table_primary (child_exn t "table_primary") in
  List.fold_left
    (fun acc tail ->
      let rhs = table_primary (child_exn tail "table_primary") in
      let kind =
        if has tail "CROSS" then Ast.Cross
        else if has tail "NATURAL" then Ast.Natural
        else
          match Cst.child tail "outer_join_type" with
          | Some ojt ->
            if has ojt "LEFT" then Ast.Left_outer
            else if has ojt "RIGHT" then Ast.Right_outer
            else Ast.Full_outer
          | None -> Ast.Inner
      in
      let condition =
        Option.map
          (fun js ->
            if has js "ON" then Ast.On (search_condition (child_exn js "search_condition"))
            else Ast.Using (column_name_list (child_exn js "column_name_list")))
          (Cst.child tail "join_specification")
      in
      Ast.Joined { lhs = acc; kind; rhs; condition })
    first (kids t "join_tail")

and correlation t : Ast.correlation =
  {
    Ast.alias = identifier (child_exn t "identifier");
    columns =
      (match Cst.child t "column_name_list" with
       | None -> []
       | Some l -> column_name_list l);
  }

and table_primary t : Ast.table_ref =
  if has t "subquery" then
    Ast.Derived_table
      ( subquery (child_exn t "subquery"),
        correlation (child_exn t "correlation_specification") )
  else
    Ast.Table
      ( table_name (child_exn t "table_name"),
        Option.map correlation (Cst.child t "correlation_specification") )

(* --- Statements ------------------------------------------------------------- *)

let sort_specification t : Ast.sort_spec =
  {
    Ast.sort_expr = value_expression (child_exn t "value_expression");
    descending =
      (match Cst.child t "ordering_specification" with
       | Some o -> has o "DESC"
       | None -> false);
    nulls_last =
      Option.map (fun n -> has n "LAST") (Cst.child t "nulls_ordering");
  }

let with_clause t : Ast.with_clause =
  {
    Ast.recursive = has t "RECURSIVE";
    ctes =
      List.map
        (fun el ->
          {
            Ast.cte_name = identifier (child_exn el "identifier");
            cte_columns =
              (match Cst.child el "column_name_list" with
               | None -> []
               | Some l -> column_name_list l);
            cte_query = subquery (child_exn el "subquery");
          })
        (kids t "with_list_element");
  }

let query_statement t : Ast.query =
  {
    Ast.with_ = Option.map with_clause (Cst.child t "with_clause");
    body = query_expression_body (child_exn t "query_expression");
    order_by =
      (match Cst.child t "order_by_clause" with
       | None -> []
       | Some ob -> List.map sort_specification (kids ob "sort_specification"));
    fetch =
      Option.map
        (fun f ->
          let n = int_of_leaf (child_exn f "UNSIGNED_INTEGER") in
          if has f "LIMIT" then Ast.Limit n else Ast.Fetch_first n)
        (Cst.child t "fetch_clause");
    updatability =
      Option.map
        (fun u ->
          if has u "READ" then Ast.For_read_only
          else
            Ast.For_update
              (match Cst.child u "column_name_list" with
               | None -> []
               | Some l -> column_name_list l))
        (Cst.child t "updatability_clause");
    epoch =
      (let duration =
         Option.map
           (fun e -> int_of_leaf (child_exn e "UNSIGNED_INTEGER"))
           (Cst.child t "epoch_clause")
       and sample_period =
         Option.map
           (fun e -> int_of_leaf (child_exn e "UNSIGNED_INTEGER"))
           (Cst.child t "sample_clause")
       in
       match duration, sample_period with
       | None, None -> None
       | _ -> Some { Ast.duration; sample_period });
  }

let set_clause t : Ast.set_clause =
  let source = child_exn t "update_source" in
  {
    Ast.target = column_name (child_exn t "column_name");
    value =
      (if has source "DEFAULT" then None
       else Some (value_expression (child_exn source "value_expression")));
  }

let insert_statement t : Ast.insert =
  let source = child_exn t "insert_source" in
  {
    Ast.table = table_name (child_exn t "table_name");
    columns =
      (match Cst.child t "insert_column_list" with
       | None -> []
       | Some icl -> column_name_list (child_exn icl "column_name_list"));
    source =
      (if has source "DEFAULT" then Ast.Insert_defaults
       else
         match Cst.child source "values_clause" with
         | Some vc -> Ast.Insert_values (List.map row_value (kids vc "row_value"))
         | None ->
           Ast.Insert_query
             (Ast.query_of_body
                (query_expression_body (child_exn source "query_expression"))));
  }

let update_statement t : Ast.update =
  {
    Ast.table = table_name (child_exn t "table_name");
    assignments = List.map set_clause (kids t "set_clause");
    update_where =
      Option.map
        (fun w -> search_condition (child_exn w "search_condition"))
        (Cst.child t "where_clause");
  }

let delete_statement t : Ast.delete =
  {
    Ast.table = table_name (child_exn t "table_name");
    delete_where =
      Option.map
        (fun w -> search_condition (child_exn w "search_condition"))
        (Cst.child t "where_clause");
  }

let merge_statement t : Ast.merge =
  {
    Ast.target = table_name (child_exn t "table_name");
    target_alias =
      Option.map
        (fun c -> identifier (child_exn c "identifier"))
        (Cst.child t "merge_correlation");
    source = table_primary (child_exn t "table_primary");
    on = search_condition (child_exn t "search_condition");
    actions =
      List.map
        (fun w ->
          if has w "MATCHED" && has w "NOT" then
            Ast.When_not_matched_insert
              ( (match Cst.child w "insert_column_list" with
                 | None -> []
                 | Some icl -> column_name_list (child_exn icl "column_name_list")),
                row_value (child_exn w "row_value") )
          else Ast.When_matched_update (List.map set_clause (kids w "set_clause")))
        (kids t "merge_when_clause");
  }

let references_specification t : Ast.references_spec =
  (* The referential actions are inlined in the rule as
     [ ON DELETE <referential_action> ] [ ON UPDATE <referential_action> ];
     with both present the CST has two <referential_action> children in
     DELETE-then-UPDATE order, with one present the neighbouring DELETE /
     UPDATE keyword disambiguates. *)
  let ras = kids t "referential_action" in
  let lower_ra node =
    if has node "CASCADE" then Ast.Ra_cascade
    else if has node "RESTRICT" then Ast.Ra_restrict
    else if has node "NULL" then Ast.Ra_set_null
    else if has node "DEFAULT" then Ast.Ra_set_default
    else Ast.Ra_no_action
  in
  let on_delete, on_update =
    match ras, has t "DELETE", has t "UPDATE" with
    | [ d; u ], _, _ -> (Some (lower_ra d), Some (lower_ra u))
    | [ one ], true, false -> (Some (lower_ra one), None)
    | [ one ], false, true -> (None, Some (lower_ra one))
    | _, _, _ -> (None, None)
  in
  {
    Ast.ref_table = table_name (child_exn t "table_name");
    ref_columns =
      (match Cst.child t "column_name_list" with
       | None -> []
       | Some l -> column_name_list l);
    on_delete;
    on_update;
  }

let column_constraint t : Ast.column_constraint =
  if has t "NULL" && has t "NOT" then Ast.C_not_null
  else if has t "UNIQUE" then Ast.C_unique
  else if has t "PRIMARY" then Ast.C_primary_key
  else if has t "CHECK" then
    Ast.C_check (search_condition (child_exn t "search_condition"))
  else if has t "references_specification" then
    Ast.C_references (references_specification (child_exn t "references_specification"))
  else fail "column_constraint" "unknown constraint"

let column_definition t : Ast.column_def =
  {
    Ast.column = column_name (child_exn t "column_name");
    ty = data_type (child_exn t "data_type");
    default =
      Option.map
        (fun d -> value_expression (child_exn d "value_expression"))
        (Cst.child t "default_clause");
    constraints = List.map column_constraint (kids t "column_constraint");
  }

let table_constraint t : Ast.table_constraint_body =
  if has t "CHECK" then
    Ast.T_check (search_condition (child_exn t "search_condition"))
  else if has t "UNIQUE" then
    Ast.T_unique (column_name_list (child_exn t "column_name_list"))
  else if has t "PRIMARY" then
    Ast.T_primary_key (column_name_list (child_exn t "column_name_list"))
  else if has t "FOREIGN" then
    Ast.T_foreign_key
      ( column_name_list (child_exn t "column_name_list"),
        references_specification (child_exn t "references_specification") )
  else fail "table_constraint" "unknown constraint"

let table_element t : Ast.table_element =
  match Cst.children t with
  | [ only ] when Cst.label only = "column_definition" ->
    Ast.Column_element (column_definition only)
  | [ only ] when Cst.label only = "table_constraint_definition" ->
    Ast.Constraint_element
      {
        Ast.constraint_name =
          Option.map identifier (Cst.child only "identifier");
        body = table_constraint (child_exn only "table_constraint");
      }
  | _ -> fail "table_element" "malformed"

let create_table_statement t : Ast.create_table =
  {
    Ast.table_name = table_name (child_exn t "table_name");
    elements = List.map table_element (kids t "table_element");
  }

let create_view_statement t : Ast.create_view =
  {
    Ast.view_name = table_name (child_exn t "table_name");
    view_columns =
      (match Cst.child t "column_name_list" with
       | None -> []
       | Some l -> column_name_list l);
    view_query =
      Ast.query_of_body (query_expression_body (child_exn t "query_expression"));
    check_option = has t "WITH";
  }

let drop_behavior t : Ast.drop_behavior =
  if has t "CASCADE" then Ast.Cascade else Ast.Restrict

let drop_statement t : Ast.drop =
  let obj = child_exn t "drop_object" in
  {
    Ast.drop_kind = (if has obj "VIEW" then Ast.Drop_view else Ast.Drop_table);
    drop_name = table_name (child_exn obj "table_name");
    behavior = Option.map drop_behavior (Cst.child t "drop_behavior");
  }

let alter_table_statement t : Ast.alter_table =
  let action = child_exn t "alter_action" in
  let act =
    if has action "column_definition" then
      Ast.Add_column (column_definition (child_exn action "column_definition"))
    else if has action "table_constraint_definition" then
      let tcd = child_exn action "table_constraint_definition" in
      Ast.Add_constraint
        {
          Ast.constraint_name = Option.map identifier (Cst.child tcd "identifier");
          body = table_constraint (child_exn tcd "table_constraint");
        }
    else if has action "alter_column_action" then
      let aca = child_exn action "alter_column_action" in
      let col = column_name (child_exn action "column_name") in
      if has aca "default_clause" then
        Ast.Set_column_default
          ( col,
            value_expression
              (child_exn (child_exn aca "default_clause") "value_expression") )
      else Ast.Drop_column_default col
    else
      Ast.Drop_column
        ( column_name (child_exn action "column_name"),
          Option.map drop_behavior (Cst.child action "drop_behavior") )
  in
  { Ast.altered = table_name (child_exn t "table_name"); action = act }

let privilege t : Ast.privilege =
  let columns () =
    match Cst.child t "column_name_list" with
    | None -> []
    | Some l -> column_name_list l
  in
  if has t "SELECT" then Ast.P_select
  else if has t "INSERT" then Ast.P_insert
  else if has t "UPDATE" then Ast.P_update (columns ())
  else if has t "DELETE" then Ast.P_delete
  else if has t "REFERENCES" then Ast.P_references (columns ())
  else fail "privilege" "unknown privilege"

let privileges t : Ast.privilege list =
  if has t "ALL" then [ Ast.P_all ]
  else List.map privilege (kids t "privilege")

let grantee t : Ast.grantee =
  if has t "PUBLIC" then Ast.Public
  else Ast.User (identifier (child_exn t "identifier"))

let grant_statement t : Ast.grant =
  {
    Ast.privileges = privileges (child_exn t "privileges");
    grant_on = table_name (child_exn t "table_name");
    grantees = List.map grantee (kids t "grantee");
    with_grant_option = has t "WITH";
  }

let revoke_statement t : Ast.revoke =
  {
    Ast.revoked = privileges (child_exn t "privileges");
    revoke_on = table_name (child_exn t "table_name");
    revokees = List.map grantee (kids t "grantee");
    grant_option_for = has t "GRANT";
    revoke_behavior = Option.map drop_behavior (Cst.child t "drop_behavior");
  }

let isolation_level t : Ast.isolation_level =
  if has t "SERIALIZABLE" then Ast.Serializable
  else if has t "REPEATABLE" then Ast.Repeatable_read
  else if has t "UNCOMMITTED" then Ast.Read_uncommitted
  else Ast.Read_committed

let transaction_statement t : Ast.transaction_statement =
  if has t "COMMIT" then Ast.Commit
  else if has t "ROLLBACK" then
    Ast.Rollback (Option.map identifier (Cst.child t "identifier"))
  else if has t "RELEASE" then
    Ast.Release_savepoint (identifier (child_exn t "identifier"))
  else if has t "SAVEPOINT" then
    Ast.Savepoint (identifier (child_exn t "identifier"))
  else if has t "START" then
    Ast.Start_transaction
      (Option.map
         (fun s -> isolation_level (child_exn s "isolation_level"))
         (Cst.child t "isolation_spec"))
  else if has t "SET" then
    Ast.Set_transaction
      (isolation_level (child_exn (child_exn t "isolation_spec") "isolation_level"))
  else fail "transaction_statement" "unknown statement"

let sequence_statement t : Ast.sequence_statement =
  let name = identifier (child_exn t "identifier") in
  if has t "DROP" then Ast.Drop_sequence name
  else
    let numbers = List.map int_of_leaf (kids t "UNSIGNED_INTEGER") in
    let seq_start, seq_increment =
      match numbers, has t "START", has t "INCREMENT" with
      | [ s; i ], _, _ -> (Some s, Some i)
      | [ one ], true, false -> (Some one, None)
      | [ one ], false, true -> (None, Some one)
      | _, _, _ -> (None, None)
    in
    Ast.Create_sequence { seq_name = name; seq_start; seq_increment }

let session_statement t : Ast.session_statement =
  if has t "RESET" then Ast.Reset_session_authorization
  else Ast.Set_session_authorization (identifier (child_exn t "identifier"))

let schema_statement t : Ast.schema_statement =
  let name = identifier (child_exn t "identifier") in
  if has t "CREATE" then Ast.Create_schema name
  else if has t "DROP" then
    Ast.Drop_schema (name, Option.map drop_behavior (Cst.child t "drop_behavior"))
  else Ast.Set_schema name

let statement_exn t : Ast.statement =
  match Cst.children t with
  | [ only ] -> (
    match Cst.label only with
    | "query_statement" -> Ast.Query_stmt (query_statement only)
    | "insert_statement" -> Ast.Insert_stmt (insert_statement only)
    | "update_statement" -> Ast.Update_stmt (update_statement only)
    | "delete_statement" -> Ast.Delete_stmt (delete_statement only)
    | "merge_statement" -> Ast.Merge_stmt (merge_statement only)
    | "create_table_statement" -> Ast.Create_table_stmt (create_table_statement only)
    | "create_view_statement" -> Ast.Create_view_stmt (create_view_statement only)
    | "drop_statement" -> Ast.Drop_stmt (drop_statement only)
    | "alter_table_statement" -> Ast.Alter_table_stmt (alter_table_statement only)
    | "grant_statement" -> Ast.Grant_stmt (grant_statement only)
    | "revoke_statement" -> Ast.Revoke_stmt (revoke_statement only)
    | "transaction_statement" -> Ast.Transaction_stmt (transaction_statement only)
    | "schema_statement" -> Ast.Schema_stmt (schema_statement only)
    | "sequence_statement" -> Ast.Sequence_stmt (sequence_statement only)
    | "session_statement" -> Ast.Session_stmt (session_statement only)
    | "explain_statement" ->
      Ast.Explain_stmt (query_statement (child_exn only "query_statement"))
    | other -> fail "sql_statement" "unknown statement <%s>" other)
  | _ -> fail "sql_statement" "malformed"

let wrap construct f t =
  parameter_counter := 0;
  match f t with
  | v -> Ok v
  | exception Lower_error e -> Error e
  | exception Failure msg -> Error { construct; message = msg }

let statement t = wrap "sql_statement" statement_exn t

let query t =
  let lower t =
    match Cst.label t with
    | "query_statement" -> query_statement t
    | "query_expression" -> Ast.query_of_body (query_expression_body t)
    | other -> fail "query" "expected a query node, got <%s>" other
  in
  wrap "query" lower t

let expression t = wrap "value_expression" value_expression t
let condition t = wrap "search_condition" search_condition t
