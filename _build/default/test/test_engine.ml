(* Tests for the engine substrate: values, row storage, schemas. *)

module Value = Engine.Value
module Vec = Engine.Vec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Value -------------------------------------------------------------- *)

let test_value_equal () =
  check_bool "int/float cross equal" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  check_bool "null equals null (grouping)" true (Value.equal Value.Null Value.Null);
  check_bool "str" true (Value.equal (Value.Str "a") (Value.Str "a"));
  check_bool "cross kind" false (Value.equal (Value.Str "1") (Value.Int 1))

let test_value_compare_sql () =
  Alcotest.(check (option int)) "null incomparable" None
    (Value.compare_sql Value.Null (Value.Int 1));
  check_bool "int lt" true (Value.compare_sql (Value.Int 1) (Value.Int 2) = Some (-1));
  check_bool "mixed numeric" true
    (Value.compare_sql (Value.Int 2) (Value.Float 1.5) = Some 1);
  Alcotest.check_raises "string vs int is a type error"
    (Value.Type_error "comparison between incompatible types") (fun () ->
      ignore (Value.compare_sql (Value.Str "a") (Value.Int 1)))

let test_value_arith () =
  check_bool "int add" true (Value.add (Value.Int 2) (Value.Int 3) = Value.Int 5);
  check_bool "mixed promotes" true
    (Value.mul (Value.Int 2) (Value.Float 1.5) = Value.Float 3.0);
  check_bool "null propagates" true (Value.add Value.Null (Value.Int 1) = Value.Null);
  Alcotest.check_raises "div by zero" Value.Division_by_zero (fun () ->
      ignore (Value.div (Value.Int 1) (Value.Int 0)))

let test_value_concat () =
  check_bool "concat strings" true
    (Value.concat (Value.Str "a") (Value.Str "b") = Value.Str "ab");
  check_bool "concat coerces" true
    (Value.concat (Value.Str "n=") (Value.Int 3) = Value.Str "n=3");
  check_bool "null propagates" true (Value.concat Value.Null (Value.Str "x") = Value.Null)

let test_value_coerce () =
  let open Sql_ast.Ast in
  check_bool "int from string" true (Value.coerce T_integer (Value.Str "42") = Value.Int 42);
  check_bool "float widening" true (Value.coerce T_double (Value.Int 2) = Value.Float 2.0);
  check_bool "char truncation" true
    (Value.coerce (T_char (Some 2)) (Value.Str "abc") = Value.Str "ab");
  check_bool "bool from int" true (Value.coerce T_boolean (Value.Int 0) = Value.Bool false);
  check_bool "null passes through" true (Value.coerce T_integer Value.Null = Value.Null);
  Alcotest.check_raises "bad cast"
    (Value.Type_error "cannot cast 'xyz' to integer") (fun () ->
      ignore (Value.coerce T_integer (Value.Str "xyz")))

let test_value_to_string () =
  check_string "int" "7" (Value.to_string (Value.Int 7));
  check_string "float integral" "2.0" (Value.to_string (Value.Float 2.));
  check_string "null" "NULL" (Value.to_string Value.Null);
  check_string "bool" "TRUE" (Value.to_string (Value.Bool true))

let test_value_total_order () =
  let sorted =
    List.sort Value.compare_total
      [ Value.Str "b"; Value.Int 3; Value.Null; Value.Float 1.5; Value.Str "a" ]
  in
  check_bool "null first" true (List.hd sorted = Value.Null);
  check_bool "numbers before strings" true
    (sorted = [ Value.Null; Value.Float 1.5; Value.Int 3; Value.Str "a"; Value.Str "b" ])

(* --- Vec ------------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do Vec.push v i done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  Vec.set v 42 7;
  check_int "set" 7 (Vec.get v 42)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 2))

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let removed = Vec.filter_in_place (fun x -> x mod 2 = 0) v in
  check_int "removed" 3 removed;
  Alcotest.(check (list int)) "kept order" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_map_copy () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  let w = Vec.copy v in
  Vec.map_in_place (fun x -> x * 10) v;
  Alcotest.(check (list int)) "mapped" [ 10; 20; 30 ] (Vec.to_list v);
  Alcotest.(check (list int)) "copy untouched" [ 1; 2; 3 ] (Vec.to_list w)

(* --- Schema ------------------------------------------------------------------- *)

let full =
  lazy
    (match Core.generate_dialect Dialects.Dialect.full with
     | Ok g -> g
     | Error e -> Alcotest.failf "generate: %a" Core.pp_error e)

let create_table_ast sql =
  match Core.parse_statement (Lazy.force full) sql with
  | Ok (Sql_ast.Ast.Create_table_stmt ct) -> ct
  | Ok _ -> Alcotest.fail "not a create table"
  | Error e -> Alcotest.failf "parse: %a" Core.pp_error e

let test_schema_of_create_table () =
  let ct =
    create_table_ast
      "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(10) NOT NULL, \
       price DECIMAL DEFAULT 0, CONSTRAINT u UNIQUE (name, price), CHECK (id > 0))"
  in
  match Engine.Schema.of_create_table ct with
  | Error e -> Alcotest.fail e
  | Ok schema ->
    Alcotest.(check (list string)) "columns" [ "id"; "name"; "price" ]
      (Engine.Schema.column_names schema);
    check_int "unique set" 1 (List.length schema.Engine.Schema.unique_sets);
    check_int "checks" 1 (List.length schema.Engine.Schema.checks);
    (match Engine.Schema.find_column schema "id" with
     | Some c ->
       check_bool "pk not null" true c.Engine.Schema.not_null;
       check_bool "pk unique" true c.Engine.Schema.unique
     | None -> Alcotest.fail "id column");
    Alcotest.(check (option int)) "index" (Some 2)
      (Engine.Schema.column_index schema "price")

let test_schema_rejects_duplicates () =
  let ct = create_table_ast "CREATE TABLE t (a INTEGER, a INTEGER)" in
  check_bool "duplicate rejected" true
    (Result.is_error (Engine.Schema.of_create_table ct))

let test_schema_rejects_two_pks () =
  let ct =
    create_table_ast "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)"
  in
  check_bool "two pks rejected" true
    (Result.is_error (Engine.Schema.of_create_table ct))

let test_schema_rejects_unknown_constraint_column () =
  let ct = create_table_ast "CREATE TABLE t (a INTEGER, UNIQUE (ghost))" in
  check_bool "unknown column rejected" true
    (Result.is_error (Engine.Schema.of_create_table ct))

let suite =
  [
    Alcotest.test_case "value equality" `Quick test_value_equal;
    Alcotest.test_case "value sql comparison" `Quick test_value_compare_sql;
    Alcotest.test_case "value arithmetic" `Quick test_value_arith;
    Alcotest.test_case "value concat" `Quick test_value_concat;
    Alcotest.test_case "value coercion" `Quick test_value_coerce;
    Alcotest.test_case "value to_string" `Quick test_value_to_string;
    Alcotest.test_case "value total order" `Quick test_value_total_order;
    Alcotest.test_case "vec push/get/set" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec filter in place" `Quick test_vec_filter_in_place;
    Alcotest.test_case "vec map/copy" `Quick test_vec_map_copy;
    Alcotest.test_case "schema from create table" `Quick test_schema_of_create_table;
    Alcotest.test_case "schema duplicate columns" `Quick test_schema_rejects_duplicates;
    Alcotest.test_case "schema two primary keys" `Quick test_schema_rejects_two_pks;
    Alcotest.test_case "schema unknown constraint column" `Quick
      test_schema_rejects_unknown_constraint_column;
  ]
