(* Property-based tests of the substrate invariants. *)

module Gen = QCheck.Gen

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- LIKE matcher vs. a quadratic reference implementation ----------------- *)

(* Reference: classic dynamic programming over (pattern, string). *)
let like_reference ~pattern s =
  let pl = String.length pattern and sl = String.length s in
  let dp = Array.make_matrix (pl + 1) (sl + 1) false in
  dp.(0).(0) <- true;
  for i = 1 to pl do
    if pattern.[i - 1] = '%' then dp.(i).(0) <- dp.(i - 1).(0)
  done;
  for i = 1 to pl do
    for j = 1 to sl do
      dp.(i).(j) <-
        (match pattern.[i - 1] with
         | '%' -> dp.(i - 1).(j) || dp.(i).(j - 1)
         | '_' -> dp.(i - 1).(j - 1)
         | c -> c = s.[j - 1] && dp.(i - 1).(j - 1))
    done
  done;
  dp.(pl).(sl)

(* Expose the engine's LIKE via a full-dialect session. *)
let like_session =
  lazy
    (match Core.generate_dialect Dialects.Dialect.full with
     | Ok g ->
       let s = Core.session g in
       (match Core.run s "CREATE TABLE one_row (x INTEGER)" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%a" Core.pp_error e);
       (match Core.run s "INSERT INTO one_row (x) VALUES (1)" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%a" Core.pp_error e);
       s
     | Error e -> Alcotest.failf "generate: %a" Core.pp_error e)

let engine_like ~pattern s =
  let session = Lazy.force like_session in
  let quote str = String.concat "''" (String.split_on_char '\'' str) in
  let sql =
    Printf.sprintf "SELECT COUNT(*) FROM one_row WHERE '%s' LIKE '%s'" (quote s)
      (quote pattern)
  in
  match Core.run session sql with
  | Ok (Engine.Executor.Rows { rows = [ [ Engine.Value.Int n ] ]; _ }) -> n = 1
  | Ok _ -> Alcotest.fail "unexpected result shape"
  | Error e -> Alcotest.failf "%a" Core.pp_error e

let gen_like_case =
  let chars = [| "a"; "b"; "%"; "_" |] in
  let strchars = [| "a"; "b"; "c" |] in
  Gen.pair
    (Gen.map (String.concat "") (Gen.list_size (Gen.int_bound 6) (Gen.oneofa chars)))
    (Gen.map (String.concat "") (Gen.list_size (Gen.int_bound 8) (Gen.oneofa strchars)))

let like_property =
  QCheck.Test.make ~count:300 ~name:"engine LIKE matches DP reference"
    (QCheck.make
       ~print:(fun (p, s) -> Printf.sprintf "pattern=%S string=%S" p s)
       gen_like_case)
    (fun (pattern, s) -> engine_like ~pattern s = like_reference ~pattern s)

(* --- Bignum vs. native integers ----------------------------------------------- *)

let gen_small = Gen.int_bound 1_000_000

let bignum_add =
  QCheck.Test.make ~count:500 ~name:"bignum add agrees with int"
    (QCheck.make ~print:(fun (a, b) -> Printf.sprintf "%d + %d" a b)
       (Gen.pair gen_small gen_small))
    (fun (a, b) ->
      Feature.Bignum.to_string (Feature.Bignum.add (Feature.Bignum.of_int a) (Feature.Bignum.of_int b))
      = string_of_int (a + b))

let bignum_mul =
  QCheck.Test.make ~count:500 ~name:"bignum mul agrees with int"
    (QCheck.make ~print:(fun (a, b) -> Printf.sprintf "%d * %d" a b)
       (Gen.pair gen_small gen_small))
    (fun (a, b) ->
      Feature.Bignum.to_string (Feature.Bignum.mul (Feature.Bignum.of_int a) (Feature.Bignum.of_int b))
      = string_of_int (a * b))

let bignum_roundtrip =
  QCheck.Test.make ~count:200 ~name:"bignum of_string/to_string"
    (QCheck.make ~print:Fun.id
       (Gen.map
          (fun digits ->
            let s = String.concat "" (List.map string_of_int digits) in
            let s = if s = "" then "0" else s in
            (* strip leading zeros, keep at least one digit *)
            let stripped =
              match String.to_seq s |> Seq.drop_while (fun c -> c = '0') |> String.of_seq with
              | "" -> "0"
              | t -> t
            in
            stripped)
          (Gen.list_size (Gen.int_range 1 40) (Gen.int_bound 9))))
    (fun s -> Feature.Bignum.to_string (Feature.Bignum.of_string s) = s)

let bignum_compare_consistent =
  QCheck.Test.make ~count:300 ~name:"bignum compare agrees with int"
    (QCheck.make ~print:(fun (a, b) -> Printf.sprintf "%d vs %d" a b)
       (Gen.pair gen_small gen_small))
    (fun (a, b) ->
      compare a b
      = Feature.Bignum.compare (Feature.Bignum.of_int a) (Feature.Bignum.of_int b))

(* --- Composition calculus ------------------------------------------------------- *)

let gen_symbol =
  Gen.oneof
    [
      Gen.map (fun n -> Grammar.Symbol.Terminal n) (Gen.oneofa [| "A"; "B"; "C" |]);
      Gen.map (fun n -> Grammar.Symbol.Nonterminal n) (Gen.oneofa [| "x"; "y"; "z" |]);
    ]

let rec gen_term depth =
  if depth = 0 then Gen.map (fun s -> Grammar.Production.Sym s) gen_symbol
  else
    Gen.oneof
      [
        Gen.map (fun s -> Grammar.Production.Sym s) gen_symbol;
        Gen.map (fun ts -> Grammar.Production.Opt ts) (gen_alt (depth - 1));
        Gen.map (fun ts -> Grammar.Production.Star ts) (gen_alt (depth - 1));
      ]

and gen_alt depth = Gen.list_size (Gen.int_range 1 3) (gen_term depth)

let gen_rule =
  Gen.map
    (fun alts -> Grammar.Production.make "r" alts)
    (Gen.list_size (Gen.int_range 1 3) (gen_alt 1))

let print_rule r = Fmt.str "%a" Grammar.Production.pp r

let compose_idempotent =
  QCheck.Test.make ~count:500 ~name:"composing a rule with itself is identity"
    (QCheck.make ~print:print_rule gen_rule)
    (fun r -> Grammar.Production.equal (Compose.Rules.compose_production r r) r)

let merge_idempotent =
  QCheck.Test.make ~count:500 ~name:"anchored merge is idempotent"
    (QCheck.make ~print:(fun a -> Fmt.str "%a" Grammar.Production.pp_alt a) (gen_alt 1))
    (fun a ->
      Compose.Rules.mergeable a a && Grammar.Production.alt_equal (Compose.Rules.merge a a) a)

let contains_reflexive =
  QCheck.Test.make ~count:500 ~name:"containment is reflexive on non-empty alts"
    (QCheck.make ~print:(fun a -> Fmt.str "%a" Grammar.Production.pp_alt a) (gen_alt 1))
    (fun a ->
      let flat = Grammar.Production.flatten a in
      if flat = [] then true else Compose.Rules.contains a a)

let compose_never_loses_language =
  (* Composing can replace alternatives but never produce an empty rule. *)
  QCheck.Test.make ~count:500 ~name:"composition preserves non-emptiness"
    (QCheck.make
       ~print:(fun (a, b) -> print_rule a ^ "  /  " ^ print_rule b)
       (Gen.pair gen_rule gen_rule))
    (fun (a, b) ->
      let composed = Compose.Rules.compose_production a b in
      composed.Grammar.Production.alts <> [])

(* --- Feature closure --------------------------------------------------------------- *)

let gen_seed =
  let names = Array.of_list (Feature.Tree.names Sql.Model.model.Feature.Model.concept) in
  Gen.map Feature.Config.of_names (Gen.list_size (Gen.int_range 1 6) (Gen.oneofa names))

let close_idempotent =
  QCheck.Test.make ~count:200 ~name:"configuration closure is idempotent"
    (QCheck.make
       ~print:(fun c -> String.concat ", " (Feature.Config.to_names c))
       gen_seed)
    (fun seed ->
      let once = Sql.Model.close seed in
      let twice = Sql.Model.close once in
      Feature.Config.to_names once = Feature.Config.to_names twice)

let close_extensive =
  QCheck.Test.make ~count:200 ~name:"closure contains its seed"
    (QCheck.make
       ~print:(fun c -> String.concat ", " (Feature.Config.to_names c))
       gen_seed)
    (fun seed ->
      let closed = Sql.Model.close seed in
      List.for_all (fun n -> Feature.Config.mem n closed) (Feature.Config.to_names seed))

(* --- Vec vs. list reference ----------------------------------------------------------- *)

let vec_filter_matches_list =
  QCheck.Test.make ~count:300 ~name:"Vec.filter_in_place matches List.filter"
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map string_of_int l))
       (Gen.list_size (Gen.int_bound 40) (Gen.int_bound 100)))
    (fun l ->
      let v = Engine.Vec.of_list l in
      let removed = Engine.Vec.filter_in_place (fun x -> x mod 3 = 0) v in
      Engine.Vec.to_list v = List.filter (fun x -> x mod 3 = 0) l
      && removed = List.length l - List.length (List.filter (fun x -> x mod 3 = 0) l))

(* --- Robustness: the front-end never raises on arbitrary input --------------- *)

let full_front_end =
  lazy
    (match Core.generate_dialect Dialects.Dialect.full with
     | Ok g -> g
     | Error e -> Alcotest.failf "generate: %a" Core.pp_error e)

let gen_junk =
  Gen.map (String.concat "")
    (Gen.list_size (Gen.int_bound 60)
       (Gen.oneofa
          [| "SELECT"; "FROM"; "("; ")"; ","; "'"; "*"; "a"; "1"; " "; "--";
             "/*"; "\""; "."; "<"; "="; "WHERE"; ";"; "\n"; "%" |]))

let front_end_total =
  QCheck.Test.make ~count:500 ~name:"scan+parse returns a result on junk"
    (QCheck.make ~print:(Printf.sprintf "%S") gen_junk)
    (fun input ->
      match Core.parse_cst (Lazy.force full_front_end) input with
      | Ok _ -> true
      | Error (Core.Lex_error e) ->
        e.Lexing_gen.Scanner.pos.Lexing_gen.Token.offset <= String.length input
      | Error (Core.Parse_error e) ->
        e.Parser_gen.Engine.expected <> []
        && e.Parser_gen.Engine.pos.Lexing_gen.Token.offset <= String.length input
      | Error _ -> false)

(* Mutations of valid statements: delete one token's worth of text. *)
let gen_mutated =
  let corpus = Array.of_list Corpus.full_accept in
  Gen.map2
    (fun idx cut ->
      let sql = corpus.(idx mod Array.length corpus) in
      if String.length sql < 4 then sql
      else
        let at = cut mod (String.length sql - 2) in
        String.sub sql 0 at ^ String.sub sql (at + 2) (String.length sql - at - 2))
    (Gen.int_bound 1000) (Gen.int_bound 1000)

let mutated_total =
  QCheck.Test.make ~count:500 ~name:"mutated statements never crash the pipeline"
    (QCheck.make ~print:(Printf.sprintf "%S") gen_mutated)
    (fun sql ->
      match Core.parse_statement (Lazy.force full_front_end) sql with
      | Ok _ | Error _ -> true)

let suite =
  List.map to_alcotest
    [
      like_property;
      bignum_add;
      bignum_mul;
      bignum_roundtrip;
      bignum_compare_consistent;
      compose_idempotent;
      merge_idempotent;
      contains_reflexive;
      compose_never_loses_language;
      close_idempotent;
      close_extensive;
      vec_filter_matches_list;
      front_end_total;
      mutated_total;
    ]
