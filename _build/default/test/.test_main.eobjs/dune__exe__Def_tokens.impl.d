test/def_tokens.ml: Alcotest Lexing_gen Scanner Spec
