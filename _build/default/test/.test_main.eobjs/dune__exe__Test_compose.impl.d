test/test_compose.ml: Alcotest Compose Dialects Feature Grammar Lexing_gen List Parser_gen Sql String
