test/test_dialects.ml: Alcotest Core Corpus Dialects Feature Fmt Grammar Lazy List Printf Sql
