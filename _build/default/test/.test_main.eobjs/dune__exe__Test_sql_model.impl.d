test/test_sql_model.ml: Alcotest Astring_contains Compose Feature Fmt List Option Printf Sql String
