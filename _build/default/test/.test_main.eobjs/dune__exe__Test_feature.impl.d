test/test_feature.ml: Alcotest Astring_contains Bignum Config Count Diagram Feature Fmt List Model Printf Sql String Tree
