test/corpus.ml:
