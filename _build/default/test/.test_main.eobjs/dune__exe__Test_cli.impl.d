test/test_cli.ml: Alcotest Astring_contains Filename In_channel List Option Out_channel Printf String Sys
