test/test_grammar.ml: Alcotest Astring_contains Cfg Fmt Grammar List Printer Production Symbol
