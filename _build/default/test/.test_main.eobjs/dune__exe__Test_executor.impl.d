test/test_executor.ml: Alcotest Astring_contains Core Dialects Engine Fmt Lazy List String
