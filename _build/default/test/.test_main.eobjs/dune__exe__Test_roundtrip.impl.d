test/test_roundtrip.ml: Alcotest Ast Core Dialects Lazy QCheck QCheck_alcotest Sql_ast Sql_printer String Test_gen
