test/test_parser_engine.ml: Alcotest Def_tokens Grammar Lexing_gen List Parser_gen Result String
