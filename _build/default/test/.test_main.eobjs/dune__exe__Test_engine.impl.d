test/test_engine.ml: Alcotest Core Dialects Engine Lazy List Result Sql_ast
