test/test_report.ml: Alcotest Astring_contains Core Dialects Feature List Report
