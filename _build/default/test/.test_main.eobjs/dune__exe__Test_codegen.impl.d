test/test_codegen.ml: Alcotest Astring_contains Core Dialects Filename Grammar In_channel Lazy List Parser_gen Printf Sys
