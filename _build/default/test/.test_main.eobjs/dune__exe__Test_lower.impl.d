test/test_lower.ml: Alcotest Ast Core Dialects Lazy List Printf Sql_ast
