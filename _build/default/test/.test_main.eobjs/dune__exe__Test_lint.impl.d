test/test_lint.ml: Alcotest Astring_contains Compose Dialects Feature Grammar Lexing_gen Lint List Printf Sql String
