test/test_properties.ml: Alcotest Array Compose Core Corpus Dialects Engine Feature Fmt Fun Grammar Lazy Lexing_gen List Parser_gen Printf QCheck QCheck_alcotest Seq Sql String
