test/test_printer.ml: Alcotest Ast Sql_ast Sql_printer
