test/test_scanner.ml: Alcotest Astring_contains Def_tokens Lexing_gen List Result Scanner Spec Token
