test/test_analysis.ml: Alcotest Analysis Compose Feature Grammar List Sql String
