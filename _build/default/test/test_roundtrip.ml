(* Property-based round-trip tests: generate random ASTs, print them to SQL,
   re-parse with the full-dialect generated parser, lower, and compare. *)

open Sql_ast
module Gen = QCheck.Gen

let full =
  lazy
    (match Core.generate_dialect Dialects.Dialect.full with
     | Ok g -> g
     | Error e -> Alcotest.failf "generate full: %a" Core.pp_error e)

let arbitrary_statement =
  QCheck.make
    ~print:(fun s -> Sql_printer.statement s)
    (Gen.sized (fun n -> Test_gen.Ast_gen.gen_statement (min n 8)))

let roundtrip_property stmt =
  let sql = Sql_printer.statement stmt in
  match Core.parse_statement (Lazy.force full) sql with
  | Error e -> QCheck.Test.fail_reportf "re-parse failed: %a@.SQL: %s" Core.pp_error e sql
  | Ok reparsed ->
    if Ast.equal_statement stmt reparsed then true
    else
      QCheck.Test.fail_reportf "AST mismatch after round-trip.@.SQL: %s@.Reprinted: %s"
        sql (Sql_printer.statement reparsed)

let roundtrip_test =
  QCheck.Test.make ~count:500 ~name:"print/parse/lower round-trip"
    arbitrary_statement roundtrip_property

(* A second property: printing is stable — print (parse (print s)) = print s. *)
let print_stable_test =
  QCheck.Test.make ~count:200 ~name:"printing is stable" arbitrary_statement
    (fun stmt ->
      let sql = Sql_printer.statement stmt in
      match Core.parse_statement (Lazy.force full) sql with
      | Error _ -> false
      | Ok reparsed -> String.equal sql (Sql_printer.statement reparsed))

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip_test;
    QCheck_alcotest.to_alcotest print_stable_test;
  ]
