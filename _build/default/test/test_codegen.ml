(* Tests for the OCaml parser source emitter (the code-generation face of
   "parser generation"). The emitted module is checked structurally and, when
   an OCaml compiler is available on PATH, actually compiled. *)

open Grammar.Builder

let check_bool = Alcotest.(check bool)
let contains = Astring_contains.contains

let toy =
  grammar ~start:"expr"
    [
      rule "expr" [ [ nt "term"; star [ t "PLUS"; nt "term" ] ] ];
      rule "term" [ [ t "NUM" ]; [ t "LPAREN"; nt "expr"; t "RPAREN" ]; [ opt [ t "MINUS" ]; t "NUM" ] ];
      rule "sign" [ [ grp [ [ t "PLUS" ]; [ t "MINUS" ] ] ] ];
      rule "names" [ [ plus [ t "IDENT" ] ] ];
    ]

let emitted = lazy (Parser_gen.Codegen.emit toy)

let test_structure () =
  let src = Lazy.force emitted in
  check_bool "has parse entry point" true (contains src "let parse tokens");
  List.iter
    (fun nt ->
      check_bool
        (Printf.sprintf "has %s" (Parser_gen.Codegen.rule_function_name nt))
        true
        (contains src (Parser_gen.Codegen.rule_function_name nt)))
    [ "expr"; "term"; "sign"; "names" ];
  check_bool "declares token type" true (contains src "type token");
  check_bool "declares tree type" true (contains src "type tree");
  check_bool "mentions start symbol" true (contains src "Start symbol: expr")

let test_rule_function_name () =
  Alcotest.(check string) "prefix" "p_query_specification"
    (Parser_gen.Codegen.rule_function_name "query_specification")

let test_custom_doc () =
  let src = Parser_gen.Codegen.emit ~module_doc:"My generated parser." toy in
  check_bool "doc included" true (contains src "My generated parser.")

let compile_ocaml source =
  let dir = Filename.temp_file "sqlpl_codegen" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let file = Filename.concat dir "generated_parser.ml" in
  let oc = open_out file in
  output_string oc source;
  close_out oc;
  let log = Filename.concat dir "compile.log" in
  let status =
    Sys.command
      (Printf.sprintf "ocamlfind ocamlc -package fmt -c %s > %s 2>&1"
         (Filename.quote file) (Filename.quote log))
  in
  let log_contents =
    if Sys.file_exists log then In_channel.with_open_text log In_channel.input_all
    else ""
  in
  (status, log_contents)

let ocaml_available =
  lazy (Sys.command "ocamlfind ocamlc -version > /dev/null 2>&1" = 0)

let test_emitted_code_compiles () =
  if not (Lazy.force ocaml_available) then ()
  else
    let status, log = compile_ocaml (Lazy.force emitted) in
    if status <> 0 then Alcotest.failf "emitted toy parser does not compile:\n%s" log

let test_emitted_sql_parser_compiles () =
  if not (Lazy.force ocaml_available) then ()
  else
    match Core.generate_dialect Dialects.Dialect.tinysql with
    | Error e -> Alcotest.failf "generate: %a" Core.pp_error e
    | Ok g ->
      let status, log = compile_ocaml (Core.emit_ocaml_parser g) in
      if status <> 0 then
        Alcotest.failf "emitted TinySQL parser does not compile:\n%s" log

let suite =
  [
    Alcotest.test_case "emitted structure" `Quick test_structure;
    Alcotest.test_case "rule function names" `Quick test_rule_function_name;
    Alcotest.test_case "custom module doc" `Quick test_custom_doc;
    Alcotest.test_case "toy parser compiles" `Slow test_emitted_code_compiles;
    Alcotest.test_case "TinySQL parser compiles" `Slow test_emitted_sql_parser_compiles;
  ]
