(* Tests for the grammar library: symbols, productions, grammars, printers. *)

open Grammar
open Grammar.Builder

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Symbol ------------------------------------------------------------- *)

let test_symbol_basics () =
  check_bool "terminal" true (Symbol.is_terminal (Symbol.Terminal "SELECT"));
  check_bool "nonterminal" true (Symbol.is_nonterminal (Symbol.Nonterminal "query"));
  check Alcotest.string "name" "query" (Symbol.name (Symbol.Nonterminal "query"));
  check_bool "equal" true (Symbol.equal (Symbol.Terminal "A") (Symbol.Terminal "A"));
  check_bool "not equal across kinds" false
    (Symbol.equal (Symbol.Terminal "A") (Symbol.Nonterminal "A"));
  check_bool "terminal sorts before nonterminal" true
    (Symbol.compare (Symbol.Terminal "Z") (Symbol.Nonterminal "A") < 0)

let test_symbol_pp () =
  check Alcotest.string "terminal verbatim" "SELECT"
    (Fmt.str "%a" Symbol.pp (Symbol.Terminal "SELECT"));
  check Alcotest.string "nonterminal in brackets" "<query>"
    (Fmt.str "%a" Symbol.pp (Symbol.Nonterminal "query"))

(* --- Production ----------------------------------------------------------- *)

let test_flatten_plain () =
  let alt = [ t "SELECT"; nt "select_list"; nt "table_expression" ] in
  check_int "three symbols" 3 (List.length (Production.flatten alt))

let test_flatten_looks_through_structure () =
  let alt = [ t "A"; opt [ nt "b"; star [ t "C" ] ]; grp [ [ t "D" ]; [ nt "e" ] ] ] in
  let names = List.map Symbol.name (Production.flatten alt) in
  check Alcotest.(list string) "in order" [ "A"; "b"; "C"; "D"; "e" ] names

let test_required_skips_optionals () =
  let alt = [ opt [ t "X" ]; t "A"; star [ t "Y" ]; plus [ t "B" ] ] in
  let required = Production.required alt in
  check_int "two required terms" 2 (List.length required)

let test_subsequence () =
  let sym n = Symbol.Terminal n in
  check_bool "empty is subsequence" true (Production.subsequence [] [ sym "A" ]);
  check_bool "in order" true
    (Production.subsequence [ sym "A"; sym "C" ] [ sym "A"; sym "B"; sym "C" ]);
  check_bool "out of order" false
    (Production.subsequence [ sym "C"; sym "A" ] [ sym "A"; sym "B"; sym "C" ]);
  check_bool "longer is not subsequence" false
    (Production.subsequence [ sym "A"; sym "B" ] [ sym "A" ])

let test_alt_equal_structural () =
  let a = [ t "A"; opt [ nt "b" ] ] in
  let b = [ t "A"; opt [ nt "b" ] ] in
  let c = [ t "A"; star [ nt "b" ] ] in
  check_bool "equal" true (Production.alt_equal a b);
  check_bool "different structure" false (Production.alt_equal a c)

let test_mentioned () =
  let r =
    rule "x" [ [ t "A"; nt "y" ]; [ nt "z"; nt "y"; t "B" ] ]
  in
  check Alcotest.(list string) "nonterminals dedupe in order" [ "y"; "z" ]
    (Production.mentioned_nonterminals r);
  check Alcotest.(list string) "terminals" [ "A"; "B" ]
    (Production.mentioned_terminals r)

let test_production_pp () =
  let r = rule "set_quantifier" [ [ t "DISTINCT" ]; [ t "ALL" ] ] in
  let rendered = Fmt.str "%a" Production.pp r in
  check_bool "mentions lhs" true
    (Astring_contains.contains rendered "set_quantifier");
  check_bool "mentions choice" true (Astring_contains.contains rendered "|")

(* --- Cfg -------------------------------------------------------------------- *)

let toy_grammar =
  grammar ~start:"s"
    [
      rule "s" [ [ nt "a"; t "END" ] ];
      rule "a" [ [ t "X" ]; [ t "Y"; nt "a" ] ];
    ]

let test_cfg_merge_same_lhs () =
  let g =
    grammar ~start:"s"
      [ rule "s" [ [ t "A" ] ]; rule "s" [ [ t "B" ] ]; rule "s" [ [ t "A" ] ] ]
  in
  check_int "one rule" 1 (Cfg.rule_count g);
  check_int "two distinct alternatives" 2 (Cfg.alternative_count g)

let test_cfg_lookups () =
  check_bool "find defined" true (Cfg.find toy_grammar "a" <> None);
  check_bool "find undefined" true (Cfg.find toy_grammar "zz" = None);
  check Alcotest.(list string) "defined order" [ "s"; "a" ] (Cfg.defined toy_grammar);
  check Alcotest.(list string) "terminals order" [ "END"; "X"; "Y" ]
    (Cfg.terminals toy_grammar)

let test_cfg_check_clean () =
  check_int "no problems" 0 (List.length (Cfg.check toy_grammar))

let test_cfg_check_undefined () =
  let g = grammar ~start:"s" [ rule "s" [ [ nt "ghost" ] ] ] in
  let problems = Cfg.check g in
  check_bool "undefined reported" true
    (List.exists
       (function
         | Cfg.Undefined_nonterminal { nonterminal = "ghost"; referenced_from = "s" } ->
           true
         | _ -> false)
       problems)

let test_cfg_check_unreachable () =
  let g =
    grammar ~start:"s" [ rule "s" [ [ t "A" ] ]; rule "island" [ [ t "B" ] ] ]
  in
  check_bool "unreachable reported" true
    (List.exists
       (function Cfg.Unreachable_rule "island" -> true | _ -> false)
       (Cfg.check g))

let test_cfg_check_missing_start () =
  let g = grammar ~start:"nope" [ rule "s" [ [ t "A" ] ] ] in
  check_bool "undefined start" true
    (List.exists (function Cfg.Undefined_start -> true | _ -> false) (Cfg.check g))

let test_symbol_count () =
  check_int "symbols" 5 (Cfg.symbol_count toy_grammar)

(* --- Printer ------------------------------------------------------------------ *)

let test_printer_ebnf () =
  let s = Printer.to_ebnf toy_grammar in
  check_bool "has rule" true (Astring_contains.contains s "<a>")

let test_printer_bnf_desugars () =
  let g = grammar ~start:"s" [ rule "s" [ [ t "A"; opt [ t "B" ] ] ] ] in
  let s = Printer.to_bnf g in
  check_bool "helper rule created" true (Astring_contains.contains s "s_opt1");
  check_bool "no EBNF brackets" false (Astring_contains.contains s "[ ")

let test_printer_bnf_star () =
  let g = grammar ~start:"s" [ rule "s" [ [ t "A"; star [ t "B" ] ] ] ] in
  let s = Printer.to_bnf g in
  check_bool "list helper" true (Astring_contains.contains s "s_list1")

let test_printer_antlr () =
  let s = Printer.to_antlr toy_grammar in
  check_bool "grammar header" true (Astring_contains.contains s "grammar s;");
  check_bool "token section" true (Astring_contains.contains s "// tokens")

let suite =
  [
    Alcotest.test_case "symbol basics" `Quick test_symbol_basics;
    Alcotest.test_case "symbol pp" `Quick test_symbol_pp;
    Alcotest.test_case "flatten plain" `Quick test_flatten_plain;
    Alcotest.test_case "flatten nested" `Quick test_flatten_looks_through_structure;
    Alcotest.test_case "required skips optionals" `Quick test_required_skips_optionals;
    Alcotest.test_case "subsequence" `Quick test_subsequence;
    Alcotest.test_case "alt structural equality" `Quick test_alt_equal_structural;
    Alcotest.test_case "mentioned symbols" `Quick test_mentioned;
    Alcotest.test_case "production pp" `Quick test_production_pp;
    Alcotest.test_case "cfg merges same lhs" `Quick test_cfg_merge_same_lhs;
    Alcotest.test_case "cfg lookups" `Quick test_cfg_lookups;
    Alcotest.test_case "cfg check clean" `Quick test_cfg_check_clean;
    Alcotest.test_case "cfg undefined nonterminal" `Quick test_cfg_check_undefined;
    Alcotest.test_case "cfg unreachable rule" `Quick test_cfg_check_unreachable;
    Alcotest.test_case "cfg missing start" `Quick test_cfg_check_missing_start;
    Alcotest.test_case "cfg symbol count" `Quick test_symbol_count;
    Alcotest.test_case "printer ebnf" `Quick test_printer_ebnf;
    Alcotest.test_case "printer bnf opt" `Quick test_printer_bnf_desugars;
    Alcotest.test_case "printer bnf star" `Quick test_printer_bnf_star;
    Alcotest.test_case "printer antlr" `Quick test_printer_antlr;
  ]
