(* Tests for CST -> AST lowering, via the full dialect parser. *)

open Sql_ast

let full =
  lazy
    (match Core.generate_dialect Dialects.Dialect.full with
     | Ok g -> g
     | Error e -> Alcotest.failf "generate full: %a" Core.pp_error e)

let stmt sql =
  match Core.parse_statement (Lazy.force full) sql with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse %S: %a" sql Core.pp_error e

let expr_of sql =
  match stmt sql with
  | Ast.Query_stmt { body = Ast.Select { projection = [ Ast.Expr_item (e, _) ]; _ }; _ } ->
    e
  | _ -> Alcotest.failf "%S is not a single-item select" sql

let where_of sql =
  match stmt sql with
  | Ast.Query_stmt { body = Ast.Select { where = Some c; _ }; _ } -> c
  | _ -> Alcotest.failf "%S has no where" sql

let check_expr name expected sql =
  Alcotest.(check bool) name true (Ast.equal_expr expected (expr_of ("SELECT " ^ sql ^ " FROM t")))

let check_cond name expected sql =
  Alcotest.(check bool) name true (expected = where_of ("SELECT a FROM t WHERE " ^ sql))

let col n = Ast.Column (None, n)

let test_literals () =
  check_expr "integer" (Ast.Lit (Ast.L_integer 42)) "42";
  check_expr "decimal" (Ast.Lit (Ast.L_decimal 3.25)) "3.25";
  check_expr "string" (Ast.Lit (Ast.L_string "it's")) "'it''s'";
  check_expr "true" (Ast.Lit (Ast.L_bool true)) "TRUE";
  check_expr "null" (Ast.Lit Ast.L_null) "NULL";
  check_expr "date" (Ast.Lit (Ast.L_date "2008-03-29")) "DATE '2008-03-29'"

let test_columns () =
  check_expr "bare column" (col "a") "a";
  check_expr "qualified column" (Ast.Column (Some "t", "a")) "t.a"

let test_arithmetic_left_assoc_and_precedence () =
  check_expr "left assoc"
    (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, col "a", col "b"), col "c"))
    "a - b - c";
  check_expr "precedence"
    (Ast.Binop (Ast.Add, col "a", Ast.Binop (Ast.Mul, col "b", col "c")))
    "a + b * c";
  check_expr "parens override"
    (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, col "a", col "b"), col "c"))
    "(a + b) * c";
  check_expr "unary minus" (Ast.Unary (Ast.S_minus, col "a")) "- a";
  check_expr "concat" (Ast.Binop (Ast.Concat, col "a", col "b")) "a || b"

let test_functions () =
  check_expr "upper" (Ast.Call ("UPPER", [ col "a" ])) "UPPER(a)";
  check_expr "coalesce"
    (Ast.Call ("COALESCE", [ col "a"; col "b"; Ast.Lit (Ast.L_integer 0) ]))
    "COALESCE(a, b, 0)";
  check_expr "substring"
    (Ast.Substring
       { arg = col "a"; from_ = Ast.Lit (Ast.L_integer 1); for_ = Some (Ast.Lit (Ast.L_integer 3)) })
    "SUBSTRING(a FROM 1 FOR 3)";
  check_expr "position"
    (Ast.Position { needle = Ast.Lit (Ast.L_string "x"); haystack = col "a" })
    "POSITION('x' IN a)";
  check_expr "trim both"
    (Ast.Trim { side = Some Ast.Trim_both; removed = Some (Ast.Lit (Ast.L_string "x")); arg = col "a" })
    "TRIM(BOTH 'x' FROM a)";
  check_expr "extract" (Ast.Extract { field = "YEAR"; arg = col "d" }) "EXTRACT(YEAR FROM d)";
  check_expr "cast" (Ast.Cast (col "a", Ast.T_integer)) "CAST(a AS INTEGER)";
  check_expr "niladic" (Ast.Call ("CURRENT_DATE", [])) "CURRENT_DATE";
  check_expr "user function" (Ast.Call ("myfun", [ col "a"; col "b" ])) "myfun(a, b)"

let test_aggregates () =
  check_expr "count star"
    (Ast.Aggregate { func = Ast.F_count; agg_quantifier = None; arg = Ast.A_star })
    "COUNT(*)";
  check_expr "count distinct"
    (Ast.Aggregate
       { func = Ast.F_count; agg_quantifier = Some Ast.Distinct; arg = Ast.A_expr (col "a") })
    "COUNT(DISTINCT a)";
  check_expr "sum"
    (Ast.Aggregate { func = Ast.F_sum; agg_quantifier = None; arg = Ast.A_expr (col "x") })
    "SUM(x)"

let test_case_expressions () =
  check_expr "searched case"
    (Ast.Case_searched
       {
         branches = [ (Ast.Comparison (Ast.Eq, col "a", Ast.Lit (Ast.L_integer 1)),
                       Ast.Lit (Ast.L_string "one")) ];
         else_ = Some (Ast.Lit (Ast.L_string "other"));
       })
    "CASE WHEN a = 1 THEN 'one' ELSE 'other' END";
  check_expr "simple case"
    (Ast.Case_simple
       {
         operand = col "a";
         branches = [ (Ast.Lit (Ast.L_integer 1), Ast.Lit (Ast.L_string "one")) ];
         else_ = None;
       })
    "CASE a WHEN 1 THEN 'one' END";
  check_expr "nullif" (Ast.Call ("NULLIF", [ col "a"; col "b" ])) "NULLIF(a, b)"

let test_conditions () =
  check_cond "comparison" (Ast.Comparison (Ast.Le, col "a", col "b")) "a <= b";
  check_cond "and-or precedence"
    (Ast.Or
       ( Ast.And (Ast.Comparison (Ast.Eq, col "a", col "b"), Ast.Comparison (Ast.Eq, col "c", col "d")),
         Ast.Comparison (Ast.Eq, col "e", col "f") ))
    "a = b AND c = d OR e = f";
  check_cond "not" (Ast.Not (Ast.Is_null { negated = false; arg = col "a" })) "NOT a IS NULL";
  check_cond "negated null" (Ast.Is_null { negated = true; arg = col "a" }) "a IS NOT NULL";
  check_cond "between"
    (Ast.Between
       { negated = false; symmetric = false; arg = col "a";
         low = Ast.Lit (Ast.L_integer 1); high = Ast.Lit (Ast.L_integer 5) })
    "a BETWEEN 1 AND 5";
  check_cond "between symmetric"
    (Ast.Between
       { negated = true; symmetric = true; arg = col "a";
         low = Ast.Lit (Ast.L_integer 5); high = Ast.Lit (Ast.L_integer 1) })
    "a NOT BETWEEN SYMMETRIC 5 AND 1";
  check_cond "not in list"
    (Ast.In_list { negated = true; arg = col "a"; values = [ Ast.Lit (Ast.L_integer 1); Ast.Lit (Ast.L_integer 2) ] })
    "a NOT IN (1, 2)";
  check_cond "like escape"
    (Ast.Like
       { negated = false; arg = col "a"; pattern = Ast.Lit (Ast.L_string "x%");
         escape = Some (Ast.Lit (Ast.L_string "!")) })
    "a LIKE 'x%' ESCAPE '!'";
  check_cond "is distinct from"
    (Ast.Is_distinct_from { negated = false; lhs = col "a"; rhs = col "b" })
    "a IS DISTINCT FROM b";
  check_cond "is truth"
    (Ast.Is_truth
       { negated = true; arg = Ast.Comparison (Ast.Eq, col "a", col "b"); truth = Ast.Unknown })
    "(a = b) IS NOT UNKNOWN";
  check_cond "boolean column" (Ast.Bool_expr (col "active")) "active"

let test_subquery_conditions () =
  (match where_of "SELECT a FROM t WHERE EXISTS (SELECT b FROM u)" with
   | Ast.Exists _ -> ()
   | _ -> Alcotest.fail "exists expected");
  (match where_of "SELECT a FROM t WHERE a IN (SELECT b FROM u)" with
   | Ast.In_subquery { negated = false; _ } -> ()
   | _ -> Alcotest.fail "in-subquery expected");
  match where_of "SELECT a FROM t WHERE a > ALL (SELECT b FROM u)" with
  | Ast.Quantified_comparison { op = Ast.Gt; quantifier = Ast.Q_all; _ } -> ()
  | _ -> Alcotest.fail "quantified comparison expected"

let test_select_structure () =
  match stmt "SELECT DISTINCT a AS x, t.* FROM t" with
  | Ast.Query_stmt { body = Ast.Select s; _ } ->
    Alcotest.(check bool) "distinct" true (s.select_quantifier = Some Ast.Distinct);
    (match s.projection with
     | [ Ast.Expr_item (_, Some "x"); Ast.Qualified_star "t" ] -> ()
     | _ -> Alcotest.fail "projection shape")
  | _ -> Alcotest.fail "select expected"

let test_from_and_joins () =
  match stmt "SELECT a FROM t AS t1, u LEFT OUTER JOIN v USING (k)" with
  | Ast.Query_stmt { body = Ast.Select { from = [ first; second ]; _ }; _ } ->
    (match first with
     | Ast.Table ({ name = "t"; _ }, Some { alias = "t1"; _ }) -> ()
     | _ -> Alcotest.fail "aliased table expected");
    (match second with
     | Ast.Joined { kind = Ast.Left_outer; condition = Some (Ast.Using [ "k" ]); _ } -> ()
     | _ -> Alcotest.fail "left join expected")
  | _ -> Alcotest.fail "two from items expected"

let test_derived_table () =
  match stmt "SELECT a FROM (SELECT b AS a FROM u) AS d (a)" with
  | Ast.Query_stmt { body = Ast.Select { from = [ Ast.Derived_table (_, corr) ]; _ }; _ } ->
    Alcotest.(check string) "alias" "d" corr.alias;
    Alcotest.(check (list string)) "column list" [ "a" ] corr.columns
  | _ -> Alcotest.fail "derived table expected"

let test_group_order_fetch () =
  match stmt "SELECT a FROM t GROUP BY a, ROLLUP (b, c) HAVING COUNT(*) > 1 ORDER BY a DESC NULLS LAST FETCH FIRST 3 ROWS ONLY" with
  | Ast.Query_stmt q ->
    (match q.body with
     | Ast.Select s ->
       (match s.group_by with
        | [ Ast.Group_expr _; Ast.Rollup [ _; _ ] ] -> ()
        | _ -> Alcotest.fail "group by shape");
       Alcotest.(check bool) "having present" true (s.having <> None)
     | _ -> Alcotest.fail "select expected");
    (match q.order_by with
     | [ { descending = true; nulls_last = Some true; _ } ] -> ()
     | _ -> Alcotest.fail "order spec");
    Alcotest.(check bool) "fetch" true (q.fetch = Some (Ast.Fetch_first 3))
  | _ -> Alcotest.fail "query expected"

let test_set_operations_left_assoc () =
  match stmt "SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v" with
  | Ast.Query_stmt
      { body = Ast.Set_operation { op = Ast.Except; lhs = Ast.Set_operation { op = Ast.Union; quantifier = Some Ast.All; _ }; _ }; _ } ->
    ()
  | _ -> Alcotest.fail "left-associative set ops expected"

let test_epoch () =
  match stmt "SELECT a FROM sensors EPOCH DURATION 1024 SAMPLE PERIOD 10" with
  | Ast.Query_stmt { epoch = Some { duration = Some 1024; sample_period = Some 10 }; _ } -> ()
  | _ -> Alcotest.fail "epoch clause expected"

let test_insert () =
  match stmt "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert_stmt { table = { name = "t"; _ }; columns = [ "a"; "b" ];
                      source = Ast.Insert_values [ [ _; _ ]; [ _; _ ] ] } -> ()
  | _ -> Alcotest.fail "insert shape"

let test_insert_query_and_defaults () =
  (match stmt "INSERT INTO t SELECT a FROM u" with
   | Ast.Insert_stmt { source = Ast.Insert_query _; _ } -> ()
   | _ -> Alcotest.fail "insert from query");
  match stmt "INSERT INTO t DEFAULT VALUES" with
  | Ast.Insert_stmt { source = Ast.Insert_defaults; _ } -> ()
  | _ -> Alcotest.fail "default values"

let test_update_delete () =
  (match stmt "UPDATE t SET a = 1, b = DEFAULT WHERE a < 5" with
   | Ast.Update_stmt { assignments = [ { target = "a"; value = Some _ }; { target = "b"; value = None } ];
                       update_where = Some _; _ } -> ()
   | _ -> Alcotest.fail "update shape");
  match stmt "DELETE FROM t" with
  | Ast.Delete_stmt { delete_where = None; _ } -> ()
  | _ -> Alcotest.fail "delete shape"

let test_create_table () =
  match stmt "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20) DEFAULT 'x' NOT NULL, CONSTRAINT fk FOREIGN KEY (id) REFERENCES u (uid) ON DELETE CASCADE ON UPDATE SET NULL, CHECK (id > 0))" with
  | Ast.Create_table_stmt ct ->
    (match ct.elements with
     | [ Ast.Column_element id_col; Ast.Column_element name_col;
         Ast.Constraint_element fk; Ast.Constraint_element check ] ->
       Alcotest.(check bool) "pk" true (List.mem Ast.C_primary_key id_col.constraints);
       Alcotest.(check bool) "not null" true (List.mem Ast.C_not_null name_col.constraints);
       Alcotest.(check bool) "default" true (name_col.default <> None);
       (match fk.body with
        | Ast.T_foreign_key ([ "id" ], spec) ->
          Alcotest.(check bool) "on delete cascade" true (spec.on_delete = Some Ast.Ra_cascade);
          Alcotest.(check bool) "on update set null" true (spec.on_update = Some Ast.Ra_set_null)
        | _ -> Alcotest.fail "fk shape");
       Alcotest.(check (option string)) "constraint name" (Some "fk") fk.constraint_name;
       (match check.body with Ast.T_check _ -> () | _ -> Alcotest.fail "check shape")
     | _ -> Alcotest.fail "element shapes")
  | _ -> Alcotest.fail "create table expected"

let test_types () =
  let ty sql =
    match stmt (Printf.sprintf "CREATE TABLE t (c %s)" sql) with
    | Ast.Create_table_stmt { elements = [ Ast.Column_element c ]; _ } -> c.ty
    | _ -> Alcotest.fail "column expected"
  in
  Alcotest.(check bool) "int synonym" true (ty "INT" = Ast.T_integer);
  Alcotest.(check bool) "decimal p s" true (ty "DECIMAL(8, 2)" = Ast.T_decimal (Some (8, Some 2)));
  Alcotest.(check bool) "numeric synonym" true (ty "NUMERIC(5)" = Ast.T_decimal (Some (5, None)));
  Alcotest.(check bool) "char varying" true (ty "CHARACTER VARYING (9)" = Ast.T_varchar (Some 9));
  Alcotest.(check bool) "char" true (ty "CHAR(2)" = Ast.T_char (Some 2));
  Alcotest.(check bool) "double" true (ty "DOUBLE PRECISION" = Ast.T_double);
  Alcotest.(check bool) "timestamp" true (ty "TIMESTAMP" = Ast.T_timestamp)

let test_view_drop_alter () =
  (match stmt "CREATE VIEW v (a) AS SELECT x FROM t WITH CHECK OPTION" with
   | Ast.Create_view_stmt { view_columns = [ "a" ]; check_option = true; _ } -> ()
   | _ -> Alcotest.fail "view shape");
  (match stmt "DROP VIEW v RESTRICT" with
   | Ast.Drop_stmt { drop_kind = Ast.Drop_view; behavior = Some Ast.Restrict; _ } -> ()
   | _ -> Alcotest.fail "drop shape");
  match stmt "ALTER TABLE t ALTER COLUMN c SET DEFAULT 0" with
  | Ast.Alter_table_stmt { action = Ast.Set_column_default ("c", _); _ } -> ()
  | _ -> Alcotest.fail "alter shape"

let test_grant_revoke () =
  (match stmt "GRANT SELECT, UPDATE (a, b) ON TABLE t TO alice, PUBLIC WITH GRANT OPTION" with
   | Ast.Grant_stmt g ->
     Alcotest.(check bool) "privileges" true
       (g.privileges = [ Ast.P_select; Ast.P_update [ "a"; "b" ] ]);
     Alcotest.(check bool) "grantees" true (g.grantees = [ Ast.User "alice"; Ast.Public ]);
     Alcotest.(check bool) "wgo" true g.with_grant_option
   | _ -> Alcotest.fail "grant shape");
  match stmt "REVOKE ALL PRIVILEGES ON TABLE t FROM bob CASCADE" with
  | Ast.Revoke_stmt r ->
    Alcotest.(check bool) "all privileges" true (r.revoked = [ Ast.P_all ]);
    Alcotest.(check bool) "behavior" true (r.revoke_behavior = Some Ast.Cascade)
  | _ -> Alcotest.fail "revoke shape"

let test_transactions () =
  let t sql = match stmt sql with Ast.Transaction_stmt t -> t | _ -> Alcotest.fail sql in
  Alcotest.(check bool) "commit" true (t "COMMIT WORK" = Ast.Commit);
  Alcotest.(check bool) "rollback to" true
    (t "ROLLBACK TO SAVEPOINT sp" = Ast.Rollback (Some "sp"));
  Alcotest.(check bool) "savepoint" true (t "SAVEPOINT sp" = Ast.Savepoint "sp");
  Alcotest.(check bool) "release" true
    (t "RELEASE SAVEPOINT sp" = Ast.Release_savepoint "sp");
  Alcotest.(check bool) "start with isolation" true
    (t "START TRANSACTION ISOLATION LEVEL REPEATABLE READ"
     = Ast.Start_transaction (Some Ast.Repeatable_read));
  Alcotest.(check bool) "set transaction" true
    (t "SET TRANSACTION ISOLATION LEVEL READ COMMITTED"
     = Ast.Set_transaction Ast.Read_committed)

let test_merge () =
  match stmt "MERGE INTO t AS x USING u ON t.id = u.id WHEN MATCHED THEN UPDATE SET a = 1 WHEN NOT MATCHED THEN INSERT (id) VALUES (3)" with
  | Ast.Merge_stmt m ->
    Alcotest.(check (option string)) "alias" (Some "x") m.target_alias;
    (match m.actions with
     | [ Ast.When_matched_update _; Ast.When_not_matched_insert ([ "id" ], [ _ ]) ] -> ()
     | _ -> Alcotest.fail "merge actions")
  | _ -> Alcotest.fail "merge expected"

let test_schema_statements () =
  (match stmt "CREATE SCHEMA retail" with
   | Ast.Schema_stmt (Ast.Create_schema "retail") -> ()
   | _ -> Alcotest.fail "create schema");
  match stmt "DROP SCHEMA retail CASCADE" with
  | Ast.Schema_stmt (Ast.Drop_schema ("retail", Some Ast.Cascade)) -> ()
  | _ -> Alcotest.fail "drop schema"

let test_values_statement () =
  match stmt "VALUES (1, 'one'), (2, 'two')" with
  | Ast.Query_stmt { body = Ast.Values [ [ _; _ ]; [ _; _ ] ]; _ } -> ()
  | _ -> Alcotest.fail "values expected"

let test_window_function_lowering () =
  match expr_of "SELECT RANK() OVER (PARTITION BY a ORDER BY b) FROM t" with
  | Ast.Window_call { wfunc = "RANK"; partition_by = [ _ ]; win_order_by = [ _ ] } -> ()
  | _ -> Alcotest.fail "window call shape"

let test_parameters_lowering () =
  match stmt "SELECT a FROM t WHERE a = ? AND b = ?" with
  | Ast.Query_stmt
      { body =
          Ast.Select
            { where =
                Some
                  (Ast.And
                     ( Ast.Comparison (Ast.Eq, _, Ast.Parameter 1),
                       Ast.Comparison (Ast.Eq, _, Ast.Parameter 2) ));
              _ };
        _ } ->
    ()
  | _ -> Alcotest.fail "parameter ordinals in lexical order"

let test_with_clause_lowering () =
  match stmt "WITH RECURSIVE c (x) AS (SELECT a FROM t) SELECT x FROM c" with
  | Ast.Query_stmt
      { with_ = Some { recursive = true; ctes = [ { cte_name = "c"; cte_columns = [ "x" ]; _ } ] };
        _ } ->
    ()
  | _ -> Alcotest.fail "with clause shape"

let test_updatability_lowering () =
  (match stmt "SELECT a FROM t FOR UPDATE OF a, b" with
   | Ast.Query_stmt { updatability = Some (Ast.For_update [ "a"; "b" ]); _ } -> ()
   | _ -> Alcotest.fail "for update of");
  match stmt "SELECT a FROM t FOR READ ONLY" with
  | Ast.Query_stmt { updatability = Some Ast.For_read_only; _ } -> ()
  | _ -> Alcotest.fail "for read only"

let test_corresponding_lowering () =
  match stmt "SELECT a FROM t UNION ALL CORRESPONDING SELECT a FROM u" with
  | Ast.Query_stmt
      { body =
          Ast.Set_operation
            { op = Ast.Union; quantifier = Some Ast.All; corresponding = true; _ };
        _ } ->
    ()
  | _ -> Alcotest.fail "corresponding flag"

let test_sequence_lowering () =
  (match stmt "CREATE SEQUENCE ids START WITH 5 INCREMENT BY 2" with
   | Ast.Sequence_stmt
       (Ast.Create_sequence { seq_name = "ids"; seq_start = Some 5; seq_increment = Some 2 }) ->
     ()
   | _ -> Alcotest.fail "create sequence with both options");
  (match stmt "CREATE SEQUENCE ids INCREMENT BY 2" with
   | Ast.Sequence_stmt
       (Ast.Create_sequence { seq_start = None; seq_increment = Some 2; _ }) -> ()
   | _ -> Alcotest.fail "increment only");
  match expr_of "SELECT NEXT VALUE FOR ids FROM t" with
  | Ast.Next_value "ids" -> ()
  | _ -> Alcotest.fail "next value"

let test_explain_lowering () =
  match stmt "EXPLAIN SELECT a FROM t ORDER BY a ASC" with
  | Ast.Explain_stmt { order_by = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "explain wraps the full query statement"

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "columns" `Quick test_columns;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic_left_assoc_and_precedence;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "case expressions" `Quick test_case_expressions;
    Alcotest.test_case "conditions" `Quick test_conditions;
    Alcotest.test_case "subquery conditions" `Quick test_subquery_conditions;
    Alcotest.test_case "select structure" `Quick test_select_structure;
    Alcotest.test_case "from and joins" `Quick test_from_and_joins;
    Alcotest.test_case "derived table" `Quick test_derived_table;
    Alcotest.test_case "group/order/fetch" `Quick test_group_order_fetch;
    Alcotest.test_case "set operations" `Quick test_set_operations_left_assoc;
    Alcotest.test_case "epoch clause" `Quick test_epoch;
    Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "insert query/defaults" `Quick test_insert_query_and_defaults;
    Alcotest.test_case "update/delete" `Quick test_update_delete;
    Alcotest.test_case "create table" `Quick test_create_table;
    Alcotest.test_case "data types" `Quick test_types;
    Alcotest.test_case "view/drop/alter" `Quick test_view_drop_alter;
    Alcotest.test_case "grant/revoke" `Quick test_grant_revoke;
    Alcotest.test_case "transactions" `Quick test_transactions;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "schema statements" `Quick test_schema_statements;
    Alcotest.test_case "values statement" `Quick test_values_statement;
    Alcotest.test_case "window function" `Quick test_window_function_lowering;
    Alcotest.test_case "dynamic parameters" `Quick test_parameters_lowering;
    Alcotest.test_case "with clause" `Quick test_with_clause_lowering;
    Alcotest.test_case "updatability" `Quick test_updatability_lowering;
    Alcotest.test_case "corresponding" `Quick test_corresponding_lowering;
    Alcotest.test_case "sequences" `Quick test_sequence_lowering;
    Alcotest.test_case "explain" `Quick test_explain_lowering;
  ]
