(* Random AST generators shared by the round-trip property tests and the
   probe executable. *)

(* Property-based round-trip tests: generate random ASTs, print them to SQL,
   re-parse with the full-dialect generated parser, lower, and compare.

   This exercises printer, scanner, composed grammar, parser engine and
   lowering together; any disagreement between them fails with the SQL text
   as counterexample. *)

open Sql_ast
module Gen = QCheck.Gen

(* Identifier pools avoid the full dialect's reserved words. *)
let idents = [| "a"; "b"; "c"; "x1"; "col_a"; "col_b"; "amount"; "label" |]
let table_names = [| "t"; "u"; "v"; "items"; "sales"; "t_2" |]
let gen_ident = Gen.oneofa idents
let gen_table_ident = Gen.oneofa table_names

let gen_object_name =
  Gen.map
    (fun (q, n) -> { Ast.qualifier = q; name = n })
    (Gen.pair (Gen.opt (Gen.return "s1")) gen_table_ident)

let gen_string_lit =
  Gen.map
    (fun chars -> String.concat "" chars)
    (Gen.list_size (Gen.int_bound 6)
       (Gen.oneofa [| "a"; "z"; " "; "'"; "%"; "_"; "9" |]))

let gen_interval_qualifier =
  Gen.map2
    (fun from_field to_field ->
      (* A field never ranges TO itself in the standard; keep them distinct. *)
      let to_field = if to_field = Some from_field then None else to_field in
      { Ast.from_field; to_field })
    (Gen.oneofl [ "YEAR"; "DAY"; "HOUR" ])
    (Gen.opt (Gen.oneofl [ "MONTH"; "MINUTE"; "SECOND" ]))

let gen_literal =
  Gen.oneof
    [
      Gen.map (fun n -> Ast.L_integer n) (Gen.int_bound 9999);
      Gen.map (fun n -> Ast.L_decimal (float_of_int n /. 100.)) (Gen.int_bound 99999);
      Gen.map (fun s -> Ast.L_string s) gen_string_lit;
      Gen.oneofl [ Ast.L_bool true; Ast.L_bool false; Ast.L_null ];
      Gen.return (Ast.L_date "2008-03-29");
      Gen.return (Ast.L_time "12:30:00");
      Gen.return (Ast.L_timestamp "2008-03-29 12:30:00");
      Gen.map
        (fun q -> Ast.L_interval ("5", q))
        gen_interval_qualifier;
    ]

let gen_data_type =
  Gen.oneofl
    [
      Ast.T_integer; Ast.T_smallint; Ast.T_bigint; Ast.T_decimal None;
      Ast.T_decimal (Some (8, None)); Ast.T_decimal (Some (8, Some 2));
      Ast.T_float; Ast.T_real; Ast.T_double; Ast.T_char None;
      Ast.T_char (Some 3); Ast.T_varchar None; Ast.T_varchar (Some 20);
      Ast.T_boolean; Ast.T_date; Ast.T_time; Ast.T_timestamp;
      Ast.T_interval { Ast.from_field = "DAY"; to_field = None };
      Ast.T_interval { Ast.from_field = "YEAR"; to_field = Some "MONTH" };
    ]

let gen_cmpop = Gen.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ]
let gen_binop = Gen.oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Concat ]
let gen_agg_func =
  Gen.oneofl [ Ast.F_count; Ast.F_sum; Ast.F_avg; Ast.F_min; Ast.F_max; Ast.F_every; Ast.F_any ]

let gen_column = Gen.map2 (fun q n -> Ast.Column (q, n)) (Gen.opt gen_table_ident) gen_ident

(* Expressions, conditions and queries are mutually recursive; [size] bounds
   the recursion. Subqueries are generated without ORDER BY/FETCH/EPOCH
   because the <subquery> non-terminal wraps only <query_expression>. *)
let rec gen_expr size : Ast.expr Gen.t =
  if size <= 0 then Gen.oneof [ Gen.map (fun l -> Ast.Lit l) gen_literal; gen_column ]
  else
    let sub = gen_expr (size / 2) in
    Gen.oneof
      [
        Gen.map (fun l -> Ast.Lit l) gen_literal;
        gen_column;
        Gen.map (fun e -> Ast.Unary (Ast.S_minus, e)) sub;
        Gen.map (fun e -> Ast.Unary (Ast.S_plus, e)) sub;
        Gen.map3 (fun op a b -> Ast.Binop (op, a, b)) gen_binop sub sub;
        Gen.map (fun e -> Ast.Call ("UPPER", [ e ])) sub;
        Gen.map (fun e -> Ast.Call ("LOWER", [ e ])) sub;
        Gen.map (fun e -> Ast.Call ("CHAR_LENGTH", [ e ])) sub;
        Gen.map (fun e -> Ast.Call ("ABS", [ e ])) sub;
        Gen.map2 (fun a b -> Ast.Call ("MOD", [ a; b ])) sub sub;
        Gen.map2 (fun a b -> Ast.Call ("NULLIF", [ a; b ])) sub sub;
        Gen.map2 (fun a b -> Ast.Call ("COALESCE", [ a; b ])) sub sub;
        Gen.map (fun n -> Ast.Call (n, [])) (Gen.oneofl [ "CURRENT_DATE"; "CURRENT_USER"; "LOCALTIME" ]);
        Gen.map2 (fun n args -> Ast.Call (n, args))
          (Gen.oneofl [ "myfun"; "f2" ])
          (Gen.list_size (Gen.int_range 1 3) sub);
        Gen.map3
          (fun arg from_ for_ -> Ast.Substring { arg; from_; for_ })
          sub sub (Gen.opt sub);
        Gen.map2 (fun needle haystack -> Ast.Position { needle; haystack }) sub sub;
        Gen.map (fun e -> Ast.Call ("OCTET_LENGTH", [ e ])) sub;
        Gen.map3
          (fun arg (placing, from_) for_ -> Ast.Overlay { arg; placing; from_; for_ })
          sub (Gen.pair sub sub) (Gen.opt sub);
        Gen.map (fun s -> Ast.Next_value s) (Gen.oneofl [ "seq1"; "seq2" ]);
        Gen.map3
          (fun side removed arg -> Ast.Trim { side; removed; arg })
          (Gen.opt (Gen.oneofl [ Ast.Trim_leading; Ast.Trim_trailing; Ast.Trim_both ]))
          (Gen.opt sub) sub;
        Gen.map2
          (fun field arg -> Ast.Extract { field; arg })
          (Gen.oneofl [ "YEAR"; "MONTH"; "DAY"; "HOUR"; "MINUTE"; "SECOND" ])
          sub;
        Gen.map2 (fun e ty -> Ast.Cast (e, ty)) sub gen_data_type;
        gen_aggregate size;
        gen_case size;
        Gen.map3
          (fun wfunc partition_by win_order_by ->
            Ast.Window_call { wfunc; partition_by; win_order_by })
          (Gen.oneofl [ "RANK"; "DENSE_RANK"; "ROW_NUMBER" ])
          (Gen.list_size (Gen.int_bound 2) sub)
          (Gen.list_size (Gen.int_bound 2) sub);
        Gen.map (fun q -> Ast.Scalar_subquery q) (gen_subquery (size / 2));
      ]

and gen_aggregate size =
  let sub = gen_expr (size / 2) in
  Gen.oneof
    [
      Gen.return
        (Ast.Aggregate { func = Ast.F_count; agg_quantifier = None; arg = Ast.A_star });
      Gen.map3
        (fun func quantifier e ->
          Ast.Aggregate { func; agg_quantifier = quantifier; arg = Ast.A_expr e })
        gen_agg_func
        (Gen.opt (Gen.oneofl [ Ast.All; Ast.Distinct ]))
        sub;
    ]

and gen_case size =
  let sub = gen_expr (size / 2) in
  Gen.oneof
    [
      Gen.map3
        (fun operand branches else_ -> Ast.Case_simple { operand; branches; else_ })
        sub
        (Gen.list_size (Gen.int_range 1 2) (Gen.pair sub sub))
        (Gen.opt sub);
      Gen.map2
        (fun branches else_ -> Ast.Case_searched { branches; else_ })
        (Gen.list_size (Gen.int_range 1 2) (Gen.pair (gen_cond (size / 2)) sub))
        (Gen.opt sub);
    ]

and gen_cond size : Ast.cond Gen.t =
  let expr = gen_expr (size / 2) in
  if size <= 0 then Gen.map3 (fun op a b -> Ast.Comparison (op, a, b)) gen_cmpop expr expr
  else
    let sub = gen_cond (size / 2) in
    Gen.oneof
      [
        Gen.map3 (fun op a b -> Ast.Comparison (op, a, b)) gen_cmpop expr expr;
        Gen.map3
          (fun (negated, symmetric) arg (low, high) ->
            Ast.Between { negated; symmetric; arg; low; high })
          (Gen.pair Gen.bool Gen.bool)
          expr (Gen.pair expr expr);
        Gen.map3
          (fun negated arg values -> Ast.In_list { negated; arg; values })
          Gen.bool expr
          (Gen.list_size (Gen.int_range 1 3) expr);
        Gen.map3
          (fun negated arg pattern ->
            Ast.Like { negated; arg; pattern = Ast.Lit (Ast.L_string pattern); escape = None })
          Gen.bool expr gen_string_lit;
        Gen.map2
          (fun arg pattern ->
            Ast.Like
              {
                negated = false;
                arg;
                pattern = Ast.Lit (Ast.L_string pattern);
                escape = Some (Ast.Lit (Ast.L_string "!"));
              })
          expr gen_string_lit;
        Gen.map2 (fun negated arg -> Ast.Is_null { negated; arg }) Gen.bool expr;
        Gen.map3
          (fun negated lhs rhs -> Ast.Is_distinct_from { negated; lhs; rhs })
          Gen.bool expr expr;
        Gen.map (fun c -> Ast.Not c) sub;
        Gen.map2 (fun a b -> Ast.And (a, b)) sub sub;
        Gen.map2 (fun a b -> Ast.Or (a, b)) sub sub;
        Gen.map3
          (fun negated arg truth -> Ast.Is_truth { negated; arg; truth })
          Gen.bool sub
          (Gen.oneofl [ Ast.True; Ast.False; Ast.Unknown ]);
        Gen.map2 (fun a b -> Ast.Overlaps (a, b)) expr expr;
        Gen.map3
          (fun negated arg pattern ->
            Ast.Similar { negated; arg; pattern = Ast.Lit (Ast.L_string pattern) })
          Gen.bool expr gen_string_lit;
        Gen.map (fun c -> Ast.Bool_expr c) gen_column;
        Gen.map (fun q -> Ast.Exists q) (gen_subquery (size / 2));
        Gen.map (fun q -> Ast.Unique q) (gen_subquery (size / 2));
        Gen.map3
          (fun negated arg q -> Ast.In_subquery { negated; arg; subquery = q })
          Gen.bool expr (gen_subquery (size / 2));
        Gen.map3
          (fun op lhs (quantifier, q) ->
            Ast.Quantified_comparison { op; lhs; quantifier; subquery = q })
          gen_cmpop expr
          (Gen.pair (Gen.oneofl [ Ast.Q_all; Ast.Q_some ]) (gen_subquery (size / 2)));
      ]

and gen_correlation ~with_columns =
  Gen.map2
    (fun alias columns -> { Ast.alias; columns })
    (Gen.oneofl [ "d1"; "d2" ])
    (if with_columns then
       Gen.oneof [ Gen.return []; Gen.list_size (Gen.int_range 1 2) gen_ident ]
     else Gen.return [])

and gen_table_ref size : Ast.table_ref Gen.t =
  let base =
    Gen.oneof
      [
        Gen.map2 (fun n c -> Ast.Table (n, c)) gen_object_name
          (Gen.opt (gen_correlation ~with_columns:true));
        (if size > 0 then
           Gen.map2
             (fun q c -> Ast.Derived_table (q, c))
             (gen_plain_query (size / 2))
             (gen_correlation ~with_columns:true)
         else
           Gen.map2 (fun n c -> Ast.Table (n, c)) gen_object_name
             (Gen.opt (gen_correlation ~with_columns:true)));
      ]
  in
  if size <= 0 then base
  else
    Gen.oneof
      [
        base;
        (* Join chains are left-nested, as the parser builds them. *)
        Gen.map3
          (fun lhs rhs kind ->
            let condition =
              match kind with
              | Ast.Cross | Ast.Natural -> None
              | _ -> Some (Ast.Using [ "a" ])
            in
            Ast.Joined { lhs; kind; rhs; condition })
          (gen_table_ref (size / 2))
          base
          (Gen.oneofl
             [ Ast.Inner; Ast.Left_outer; Ast.Right_outer; Ast.Full_outer; Ast.Cross; Ast.Natural ]);
        Gen.map3
          (fun lhs rhs c ->
            Ast.Joined { lhs; kind = Ast.Inner; rhs; condition = Some (Ast.On c) })
          (gen_table_ref (size / 2))
          base (gen_cond (size / 2));
      ]

and gen_select_item size =
  Gen.oneof
    [
      Gen.map2 (fun e alias -> Ast.Expr_item (e, alias)) (gen_expr size) (Gen.opt gen_ident);
      Gen.map (fun q -> Ast.Qualified_star q) gen_table_ident;
    ]

and gen_select size : Ast.select Gen.t =
  let open Gen in
  let* quantifier = opt (oneofl [ Ast.All; Ast.Distinct ]) in
  let* star = Gen.int_bound 9 in
  let* projection =
    if star = 0 then return [ Ast.Star ]
    else list_size (int_range 1 3) (gen_select_item (size / 2))
  in
  let* from = list_size (int_range 1 2) (gen_table_ref (size / 2)) in
  let* where = opt (gen_cond (size / 2)) in
  let* group_by =
    oneof
      [
        return [];
        list_size (int_range 1 2) (map (fun e -> Ast.Group_expr e) (gen_expr (size / 3)));
        ( if size > 1 then
            map (fun es -> [ Ast.Rollup es ])
              (list_size (int_range 1 2) (gen_expr (size / 3)))
          else return [] );
      ]
  in
  let* having = if group_by = [] then return None else opt (gen_cond (size / 3)) in
  return
    { Ast.select_quantifier = quantifier; projection; from; where; group_by; having }

and gen_query_body size : Ast.query_body Gen.t =
  let open Gen in
  (* The base case must not construct [primary]: its Paren_query branch
     recurses through gen_plain_query, which would loop at size 0. *)
  if size <= 1 then map (fun s -> Ast.Select s) (gen_select size)
  else
    let primary =
      oneof
        [
          map (fun s -> Ast.Select s) (gen_select size);
          map (fun q -> Ast.Paren_query q) (gen_plain_query (size / 2));
          map
            (fun rows -> Ast.Values rows)
            (let* width = int_range 1 3 in
             list_size (int_range 1 3)
               (list_repeat width (gen_expr (size / 3))));
        ]
    in
    let* n = int_bound 2 in
    if n = 0 then primary
    else
      (* Build a chain the way the parser associates it: INTERSECT binds
         tighter than UNION/EXCEPT, both left-associative. *)
      let* primaries = list_repeat (n + 1) primary in
      let* ops =
        list_repeat n
          (triple
             (oneofl [ Ast.Union; Ast.Except; Ast.Intersect ])
             (opt (oneofl [ Ast.All; Ast.Distinct ]))
             bool)
      in
      return (build_set_chain primaries ops)

and build_set_chain primaries ops =
  (* First fold INTERSECT runs, then UNION/EXCEPT left to right. *)
  match primaries, ops with
  | [ only ], [] -> only
  | first :: rest, ops ->
    let terms, pending_ops =
      List.fold_left2
        (fun (terms, pending) rhs (op, quantifier, corresponding) ->
          match op with
          | Ast.Intersect ->
            (match terms with
             | current :: others ->
               ( Ast.Set_operation { op; quantifier; corresponding; lhs = current; rhs }
                 :: others,
                 pending )
             | [] -> assert false)
          | Ast.Union | Ast.Except ->
            (rhs :: terms, (op, quantifier, corresponding) :: pending))
        ([ first ], []) rest ops
    in
    let terms = List.rev terms and pending_ops = List.rev pending_ops in
    (match terms with
     | first :: rest ->
       List.fold_left2
         (fun lhs rhs (op, quantifier, corresponding) ->
           Ast.Set_operation { op; quantifier; corresponding; lhs; rhs })
         first rest pending_ops
     | [] -> assert false)
  | [], _ -> assert false

(* A query with no ORDER BY / FETCH / EPOCH — the shape of subqueries. *)
and gen_plain_query size : Ast.query Gen.t =
  Gen.map Ast.query_of_body (gen_query_body size)

(* Subqueries print as [(query)]; a top-level Paren_query inside one prints
   as [((...))], which in expression/IN positions re-parses as something
   else (a parenthesized scalar subquery). Strip top parens wherever a
   subquery is generated. *)
and gen_subquery size : Ast.query Gen.t =
  let rec strip (body : Ast.query_body) =
    match body with
    | Ast.Paren_query (q : Ast.query) -> strip q.body
    | b -> b
  in
  Gen.map (fun (q : Ast.query) -> Ast.query_of_body (strip q.body)) (gen_plain_query size)

let gen_sort_spec size =
  Gen.map3
    (fun sort_expr descending nulls_last -> { Ast.sort_expr; descending; nulls_last })
    (gen_expr (size / 2))
    Gen.bool
    (Gen.opt Gen.bool)

let gen_with_clause size : Ast.with_clause Gen.t =
  let open Gen in
  let* recursive = Gen.bool in
  let* ctes =
    list_size (int_range 1 2)
      (let* cte_name = oneofl [ "cte1"; "cte2" ] in
       let* cte_columns = oneofl [ []; [ "a" ]; [ "a"; "b" ] ] in
       let* cte_query = gen_subquery (size / 2) in
       return { Ast.cte_name; cte_columns; cte_query })
  in
  return { Ast.recursive; ctes }

let gen_query size : Ast.query Gen.t =
  let open Gen in
  let* with_ = opt (gen_with_clause size) in
  let* body = gen_query_body size in
  let* order_by = oneof [ return []; list_size (int_range 1 2) (gen_sort_spec size) ] in
  let* fetch =
    opt (oneof [ map (fun n -> Ast.Fetch_first n) (int_bound 50);
                 map (fun n -> Ast.Limit n) (int_bound 50) ])
  in
  let* epoch =
    opt
      (let* duration = opt (int_range 1 4096) in
       let* sample_period = if duration = None then map Option.some (int_range 1 64) else opt (int_range 1 64) in
       return { Ast.duration; sample_period })
  in
  let* updatability =
    opt
      (oneofl
         [ Ast.For_read_only; Ast.For_update []; Ast.For_update [ "a"; "b" ] ])
  in
  return { Ast.with_; body; order_by; fetch; epoch; updatability }

(* --- Statements -------------------------------------------------------------- *)

let gen_set_clause size =
  Gen.map2
    (fun target value -> { Ast.target; value })
    gen_ident
    (Gen.opt (gen_expr size))

let gen_column_def size =
  let open Gen in
  let* column = gen_ident in
  let* ty = gen_data_type in
  let* default = opt (map (fun l -> Ast.Lit l) gen_literal) in
  let* constraints =
    oneofl
      [
        []; [ Ast.C_not_null ]; [ Ast.C_unique ]; [ Ast.C_primary_key ];
        [ Ast.C_not_null; Ast.C_unique ];
        [ Ast.C_references
            { Ast.ref_table = Ast.simple_name "u"; ref_columns = [ "a" ];
              on_delete = Some Ast.Ra_cascade; on_update = None } ];
        [ Ast.C_references
            { Ast.ref_table = Ast.simple_name "u"; ref_columns = [];
              on_delete = None; on_update = Some Ast.Ra_set_default } ];
      ]
  in
  let* constraints =
    if constraints = [] then
      oneof
        [ return []; map (fun c -> [ Ast.C_check c ]) (gen_cond (size / 2)) ]
    else return constraints
  in
  return { Ast.column; ty; default; constraints }

let gen_statement size : Ast.statement Gen.t =
  let open Gen in
  oneof
    [
      map (fun q -> Ast.Query_stmt q) (gen_query size);
      (* INSERT *)
      (let* table = gen_object_name in
       let* width = int_range 1 3 in
       let* columns =
         oneof [ return []; return (Array.to_list (Array.sub idents 0 width)) ]
       in
       let* source =
         oneof
           [
             map (fun rows -> Ast.Insert_values rows)
               (list_size (int_range 1 3) (list_repeat width (gen_expr (size / 2))));
             map
               (fun q ->
                 (* A bare VALUES body would print identically to
                    Insert_values; parenthesize it so the trees differ only
                    where the syntax does. *)
                 match (q : Ast.query).body with
                 | Ast.Values _ ->
                   Ast.Insert_query (Ast.query_of_body (Ast.Paren_query q))
                 | _ -> Ast.Insert_query q)
               (gen_plain_query (size / 2));
             return Ast.Insert_defaults;
           ]
       in
       return (Ast.Insert_stmt { table; columns; source }));
      (* UPDATE *)
      (let* table = gen_object_name in
       let* assignments = list_size (int_range 1 3) (gen_set_clause (size / 2)) in
       let* update_where = opt (gen_cond (size / 2)) in
       return (Ast.Update_stmt { table; assignments; update_where }));
      (* DELETE *)
      (let* table = gen_object_name in
       let* delete_where = opt (gen_cond (size / 2)) in
       return (Ast.Delete_stmt { table; delete_where }));
      (* CREATE TABLE *)
      (let* table = gen_object_name in
       let* cols = list_size (int_range 1 3) (gen_column_def (size / 2)) in
       let* constraints =
         oneof
           [
             return [];
             map
               (fun name ->
                 [ Ast.Constraint_element
                     { Ast.constraint_name = name; body = Ast.T_unique [ "a" ] } ])
               (opt (return "uq"));
             map
               (fun c ->
                 [ Ast.Constraint_element
                     { Ast.constraint_name = None; body = Ast.T_check c } ])
               (gen_cond (size / 2));
             return
               [ Ast.Constraint_element
                   { Ast.constraint_name = Some "fk";
                     body =
                       Ast.T_foreign_key
                         ( [ "a" ],
                           { Ast.ref_table = Ast.simple_name "u"; ref_columns = [ "b" ];
                             on_delete = Some Ast.Ra_restrict;
                             on_update = Some Ast.Ra_no_action } ) } ];
           ]
       in
       return
         (Ast.Create_table_stmt
            { Ast.table_name = table;
              elements =
                List.map (fun c -> Ast.Column_element c) cols @ constraints }));
      (* CREATE VIEW / DROP / ALTER *)
      (let* name = gen_object_name in
       let* view_columns = oneof [ return []; return [ "a"; "b" ] ] in
       let* view_query = gen_plain_query (size / 2) in
       let* check_option = bool in
       return (Ast.Create_view_stmt { view_name = name; view_columns; view_query; check_option }));
      (let* kind = oneofl [ Ast.Drop_table; Ast.Drop_view ] in
       let* name = gen_object_name in
       let* behavior = opt (oneofl [ Ast.Cascade; Ast.Restrict ]) in
       return (Ast.Drop_stmt { drop_kind = kind; drop_name = name; behavior }));
      (let* table = gen_object_name in
       let* action =
         oneof
           [
             map (fun c -> Ast.Add_column c) (gen_column_def (size / 2));
             map2 (fun c b -> Ast.Drop_column (c, b)) gen_ident
               (opt (oneofl [ Ast.Cascade; Ast.Restrict ]));
             map2 (fun c e -> Ast.Set_column_default (c, e)) gen_ident (gen_expr (size / 2));
             map (fun c -> Ast.Drop_column_default c) gen_ident;
             map
               (fun name ->
                 Ast.Add_constraint
                   { Ast.constraint_name = name; body = Ast.T_primary_key [ "a" ] })
               (opt (return "pk"));
           ]
       in
       return (Ast.Alter_table_stmt { altered = table; action }));
      (* GRANT / REVOKE *)
      (let* privileges =
         oneofl
           [
             [ Ast.P_all ]; [ Ast.P_select ]; [ Ast.P_select; Ast.P_delete ];
             [ Ast.P_update [] ]; [ Ast.P_update [ "a"; "b" ] ];
             [ Ast.P_insert; Ast.P_references [ "a" ] ];
           ]
       in
       let* grant_on = gen_object_name in
       let* grantees =
         oneofl [ [ Ast.User "alice" ]; [ Ast.Public ]; [ Ast.User "bob"; Ast.Public ] ]
       in
       let* with_grant_option = bool in
       return (Ast.Grant_stmt { privileges; grant_on; grantees; with_grant_option }));
      (let* revoked = oneofl [ [ Ast.P_all ]; [ Ast.P_select ]; [ Ast.P_delete ] ] in
       let* revoke_on = gen_object_name in
       let* revokees = oneofl [ [ Ast.User "alice" ]; [ Ast.Public ] ] in
       let* grant_option_for = bool in
       let* revoke_behavior = opt (oneofl [ Ast.Cascade; Ast.Restrict ]) in
       return
         (Ast.Revoke_stmt { revoked; revoke_on; revokees; grant_option_for; revoke_behavior }));
      (* Transactions and schemas *)
      map
        (fun t -> Ast.Transaction_stmt t)
        (oneofl
           [
             Ast.Commit; Ast.Rollback None; Ast.Rollback (Some "sp1");
             Ast.Savepoint "sp1"; Ast.Release_savepoint "sp1";
             Ast.Start_transaction None;
             Ast.Start_transaction (Some Ast.Serializable);
             Ast.Set_transaction Ast.Read_committed;
           ]);
      map
        (fun s -> Ast.Session_stmt s)
        (oneofl
           [
             Ast.Set_session_authorization "alice";
             Ast.Reset_session_authorization;
           ]);
      map
        (fun s -> Ast.Sequence_stmt s)
        (oneof
           [
             (let* seq_name = oneofl [ "seq1"; "seq2" ] in
              let* seq_start = opt (int_bound 1000) in
              let* seq_increment = opt (int_range 1 10) in
              return (Ast.Create_sequence { seq_name; seq_start; seq_increment }));
             map (fun n -> Ast.Drop_sequence n) (oneofl [ "seq1"; "seq2" ]);
           ]);
      map
        (fun s -> Ast.Schema_stmt s)
        (oneofl
           [
             Ast.Create_schema "retail"; Ast.Drop_schema ("retail", None);
             Ast.Drop_schema ("retail", Some Ast.Cascade); Ast.Set_schema "retail";
           ]);
      (* MERGE *)
      (let* target = gen_object_name in
       let* target_alias = opt (return "m1") in
       let* source = map2 (fun n c -> Ast.Table (n, c)) gen_object_name (opt (gen_correlation ~with_columns:false)) in
       let* on = gen_cond (size / 2) in
       let* update_sets = list_size (int_range 1 2) (gen_set_clause (size / 2)) in
       let* insert_vals = list_size (int_range 1 2) (gen_expr (size / 2)) in
       let* actions =
         oneofl
           [
             [ Ast.When_matched_update update_sets ];
             [ Ast.When_not_matched_insert ([ "a"; "b" ], insert_vals) ];
             [ Ast.When_matched_update update_sets;
               Ast.When_not_matched_insert ([], insert_vals) ];
           ]
       in
       return (Ast.Merge_stmt { target; target_alias; source; on; actions }));
    ]

