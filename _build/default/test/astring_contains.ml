(* Tiny substring helper shared by the test suites (no astring dependency). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else String.equal (String.sub haystack i nn) needle || go (i + 1)
    in
    go 0
